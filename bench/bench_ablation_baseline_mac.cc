// Ablation A4 (ours): what exactly makes the Coolest baseline slower?
//
// The baseline model (DESIGN.md §3) differs from ADDC's MAC in three ways:
// a safety-margined sensing range (it lacks Lemma 2/3's tight bound), a
// discrete contention window with sensing latency (same-slot collisions),
// and no PU-slot awareness. This bench re-runs the baseline with each
// sensing-range rule while keeping its conventional contention behaviour,
// on the same deployments as an ADDC reference:
//
//   * margined range (the default model)   — the paper's ~2-3x gap;
//   * ADDC's own PCR                       — the gap mostly closes: the
//     range, not the routing tree, is the decisive lever;
//   * conventional 2r under-sensing        — "faster than ADDC", but only
//     by interfering with primary users (the audit counts the violations),
//     which a cognitive radio is not allowed to do.
#include <iostream>

#include "core/pcr.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "routing/coolest.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  harness::PrintBenchHeader(
      "Ablation A4 — decomposing the baseline's handicap",
      "(ours) the sensing range, not the routing tree, drives the Fig. 6 gap",
      scale, std::cout);

  std::vector<double> addc_delays;
  for (std::int32_t rep = 0; rep < scale.repetitions; ++rep) {
    const core::Scenario scenario(scale.base, rep);
    addc_delays.push_back(core::RunAddc(scenario).delay_ms);
  }
  const auto addc = core::Summarize(addc_delays);
  std::cout << "ADDC reference delay: "
            << harness::FormatMeanStd(addc.mean, addc.stddev, 0) << " ms\n\n";

  struct Variant {
    const char* label;
    double margin;          // >0: Lemma-2/3 range with this margin
    double sensing_factor;  // >0: bare factor·r instead
  };
  const Variant variants[] = {
      {"2x-margin range (default)", 2.0, 0.0},
      {"ADDC's tight PCR", 1.0, 0.0},
      {"conventional 2r (under-senses)", 0.0, 2.0},
  };

  harness::Table table({"baseline sensing rule", "range (m)", "delay (ms)",
                        "vs ADDC", "SU-caused PU violations"});
  for (const Variant& variant : variants) {
    std::vector<double> delays;
    std::int64_t violations = 0;
    double range = 0.0;
    for (std::int32_t rep = 0; rep < scale.repetitions; ++rep) {
      core::ScenarioConfig config = scale.base;
      config.audit_stride = 4;
      if (variant.sensing_factor > 0.0) {
        config.coolest_sensing_factor = variant.sensing_factor;
      } else {
        config.baseline_interference_margin = variant.margin;
      }
      const core::Scenario scenario(config, rep);
      const core::CollectionResult result = core::RunCoolest(scenario);
      delays.push_back(result.delay_ms);
      violations += result.mac.su_caused_violations;
      range = result.pcr;
    }
    const auto delay = core::Summarize(delays);
    table.AddRow({variant.label, harness::FormatDouble(range, 1),
                  harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  harness::FormatDouble(delay.mean / addc.mean, 2) + "x",
                  std::to_string(violations)});
  }
  table.PrintMarkdown(std::cout);
  return 0;
}
