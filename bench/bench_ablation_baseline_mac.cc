// Ablation A4 (ours): what exactly makes the Coolest baseline slower?
//
// The baseline model (DESIGN.md §3) differs from ADDC's MAC in three ways:
// a safety-margined sensing range (it lacks Lemma 2/3's tight bound), a
// discrete contention window with sensing latency (same-slot collisions),
// and no PU-slot awareness. This bench re-runs the baseline with each
// sensing-range rule while keeping its conventional contention behaviour,
// on the same deployments as an ADDC reference:
//
//   * margined range (the default model)   — the paper's ~2-3x gap;
//   * ADDC's own PCR                       — the gap mostly closes: the
//     range, not the routing tree, is the decisive lever;
//   * conventional 2r under-sensing        — "faster than ADDC", but only
//     by interfering with primary users (the audit counts the violations),
//     which a cognitive radio is not allowed to do.
#include <iostream>
#include <vector>

#include "core/pcr.h"
#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "routing/coolest.h"

namespace {

struct Variant {
  const char* label;
  double margin;          // >0: Lemma-2/3 range with this margin
  double sensing_factor;  // >0: bare factor·r instead
};

}  // namespace

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Ablation A4 — decomposing the baseline's handicap",
      "(ours) the sensing range, not the routing tree, drives the Fig. 6 gap",
      options, std::cout);

  const Variant variants[] = {
      {"2x-margin range (default)", 2.0, 0.0},
      {"ADDC's tight PCR", 1.0, 0.0},
      {"conventional 2r (under-senses)", 0.0, 2.0},
  };

  // Cell layout: reps ADDC-reference cells, then 3 × reps baseline cells.
  const std::int64_t reps = options.repetitions;
  std::vector<core::CollectionResult> results(4 * static_cast<std::size_t>(reps));
  const harness::ParallelRunner runner(options.jobs);
  runner.ForEachIndex(4 * reps, [&](std::int64_t index) {
    const auto rep = static_cast<std::uint64_t>(index % reps);
    const std::int64_t variant_index = index / reps;
    if (variant_index == 0) {
      const core::Scenario scenario(options.base, rep);
      results[static_cast<std::size_t>(index)] = core::RunAddc(scenario);
      return;
    }
    const Variant& variant = variants[variant_index - 1];
    core::ScenarioConfig config = options.base;
    config.audit_stride = 4;
    if (variant.sensing_factor > 0.0) {
      config.coolest_sensing_factor = variant.sensing_factor;
    } else {
      config.baseline_interference_margin = variant.margin;
    }
    const core::Scenario scenario(config, rep);
    results[static_cast<std::size_t>(index)] = core::RunCoolest(scenario);
  }, &profiler);

  std::vector<double> addc_delays;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    addc_delays.push_back(results[static_cast<std::size_t>(rep)].delay_ms);
  }
  const auto addc = core::Summarize(addc_delays);
  std::cout << "ADDC reference delay: "
            << harness::FormatMeanStd(addc.mean, addc.stddev, 0) << " ms\n\n";

  harness::Table table({"baseline sensing rule", "range (m)", "delay (ms)",
                        "vs ADDC", "SU-caused PU violations"});
  harness::Json series = harness::Json::Array();
  for (std::size_t variant = 0; variant < 3; ++variant) {
    std::vector<double> delays;
    std::int64_t violations = 0;
    double range = 0.0;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      const core::CollectionResult& result =
          results[(variant + 1) * static_cast<std::size_t>(reps) +
                  static_cast<std::size_t>(rep)];
      delays.push_back(result.delay_ms);
      violations += result.mac.su_caused_violations;
      range = result.pcr;
    }
    const auto delay = core::Summarize(delays);
    table.AddRow({variants[variant].label, harness::FormatDouble(range, 1),
                  harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  harness::FormatDouble(delay.mean / addc.mean, 2) + "x",
                  std::to_string(violations)});
    harness::Json row = harness::Json::Object();
    row["sensing_rule"] = variants[variant].label;
    row["range_m"] = range;
    row["coolest_delay_ms"] = harness::ToJson(delay);
    row["vs_addc_ratio"] = delay.mean / addc.mean;
    row["su_caused_violations"] = violations;
    series.Push(std::move(row));
  }
  table.PrintMarkdown(std::cout);

  harness::Json payload = harness::Json::Object();
  payload["addc_reference_delay_ms"] = harness::ToJson(addc);
  payload["variants"] = std::move(series);
  return harness::WriteBenchJson("ablation_baseline_mac", options,
                                 std::move(payload), timer.Seconds(), std::cout, &profiler)
             ? 0
             : 1;
}
