// Ablation A2 (ours): the paper's printed c2 constant vs the corrected one
// (DESIGN.md §4). The printed constant yields a smaller PCR — faster
// collection but a range too short for Lemma 2's guarantee, which the
// PU-protection audit exposes as SU-caused violations. The corrected
// constant eliminates the violations at the price of a larger PCR and
// longer delay.
//
// Run at p_t = 0.1: with the corrected (larger) PCR the paper's default
// p_t = 0.3 drives p_o below 1e-4 and the run would take days of simulated
// time — that observation is itself a finding recorded in EXPERIMENTS.md.
#include <iostream>
#include <vector>

#include "core/pcr.h"
#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crn;
  harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  options.base.pu_activity = 0.1;
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Ablation A2 — paper vs corrected c2 (run at p_t=0.1)",
      "(ours) the printed c2 under-protects PUs; the corrected one is "
      "violation-free but slower",
      options, std::cout);

  const core::C2Variant variants[] = {core::C2Variant::kPaper,
                                      core::C2Variant::kCorrected};
  const std::int64_t reps = options.repetitions;
  std::vector<core::CollectionResult> results(2 * static_cast<std::size_t>(reps));
  const harness::ParallelRunner runner(options.jobs);
  runner.ForEachIndex(2 * reps, [&](std::int64_t index) {
    core::ScenarioConfig config = options.base;
    config.c2_variant = variants[index / reps];
    config.audit_stride = 4;  // denser audit: violations are the point here
    const core::Scenario scenario(config, static_cast<std::uint64_t>(index % reps));
    results[static_cast<std::size_t>(index)] = core::RunAddc(scenario);
  }, &profiler);

  harness::Table table({"c2 variant", "PCR (m)", "theory p_o", "ADDC delay (ms)",
                        "SU-caused PU violations", "audited"});
  harness::Json series = harness::Json::Array();
  for (std::size_t variant = 0; variant < 2; ++variant) {
    std::vector<double> delays;
    std::int64_t violations = 0;
    std::int64_t audited = 0;
    double pcr = 0.0;
    double theory_po = 0.0;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      const core::CollectionResult& result =
          results[variant * static_cast<std::size_t>(reps) +
                  static_cast<std::size_t>(rep)];
      delays.push_back(result.delay_ms);
      violations += result.mac.su_caused_violations;
      audited += result.mac.audited_pu_receptions;
      pcr = result.pcr;
      theory_po = result.theory_po;
    }
    const auto delay = core::Summarize(delays);
    const std::string name = core::ToString(variants[variant]);
    table.AddRow({name, harness::FormatDouble(pcr, 2),
                  harness::FormatDouble(theory_po, 5),
                  harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  std::to_string(violations), std::to_string(audited)});
    harness::Json row = harness::Json::Object();
    row["c2_variant"] = name;
    row["pcr_m"] = pcr;
    row["theory_po"] = theory_po;
    row["addc_delay_ms"] = harness::ToJson(delay);
    row["su_caused_violations"] = violations;
    row["audited_pu_receptions"] = audited;
    series.Push(std::move(row));
  }
  table.PrintMarkdown(std::cout);
  return harness::WriteBenchJson("ablation_c2", options, std::move(series),
                                 timer.Seconds(), std::cout, &profiler)
             ? 0
             : 1;
}
