// Ablation A2 (ours): the paper's printed c2 constant vs the corrected one
// (DESIGN.md §4). The printed constant yields a smaller PCR — faster
// collection but a range too short for Lemma 2's guarantee, which the
// PU-protection audit exposes as SU-caused violations. The corrected
// constant eliminates the violations at the price of a larger PCR and
// longer delay.
//
// Run at p_t = 0.1: with the corrected (larger) PCR the paper's default
// p_t = 0.3 drives p_o below 1e-4 and the run would take days of simulated
// time — that observation is itself a finding recorded in EXPERIMENTS.md.
#include <iostream>

#include "core/pcr.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  scale.base.pu_activity = 0.1;
  harness::PrintBenchHeader(
      "Ablation A2 — paper vs corrected c2 (run at p_t=0.1)",
      "(ours) the printed c2 under-protects PUs; the corrected one is "
      "violation-free but slower",
      scale, std::cout);

  harness::Table table({"c2 variant", "PCR (m)", "theory p_o", "ADDC delay (ms)",
                        "SU-caused PU violations", "audited"});
  for (core::C2Variant variant :
       {core::C2Variant::kPaper, core::C2Variant::kCorrected}) {
    core::ScenarioConfig config = scale.base;
    config.c2_variant = variant;
    config.audit_stride = 4;  // denser audit: violations are the point here
    std::vector<double> delays;
    std::int64_t violations = 0;
    std::int64_t audited = 0;
    double pcr = 0.0;
    double theory_po = 0.0;
    for (std::int32_t rep = 0; rep < scale.repetitions; ++rep) {
      const core::Scenario scenario(config, rep);
      const core::CollectionResult result = core::RunAddc(scenario);
      delays.push_back(result.delay_ms);
      violations += result.mac.su_caused_violations;
      audited += result.mac.audited_pu_receptions;
      pcr = result.pcr;
      theory_po = result.theory_po;
    }
    const auto delay = core::Summarize(delays);
    table.AddRow({core::ToString(variant), harness::FormatDouble(pcr, 2),
                  harness::FormatDouble(theory_po, 5),
                  harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  std::to_string(violations), std::to_string(audited)});
  }
  table.PrintMarkdown(std::cout);
  return 0;
}
