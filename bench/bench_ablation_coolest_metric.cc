// Ablation A3 (ours): which Coolest-path metric [17] the baseline uses —
// accumulated, highest (bottleneck), or mixed. The paper only says Coolest
// prefers "the most balanced and/or the lowest spectrum utilization" path;
// this bench shows ADDC's advantage is robust to that modeling choice.
#include <iostream>

#include "harness/sweep.h"
#include "harness/table.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  harness::PrintBenchHeader(
      "Ablation A3 — Coolest metric choice",
      "(ours) ADDC wins against all three Coolest metrics of [17]", scale,
      std::cout);

  // One shared ADDC reference per repetition (same deployments).
  std::vector<double> addc_delays;
  for (std::int32_t rep = 0; rep < scale.repetitions; ++rep) {
    const core::Scenario scenario(scale.base, rep);
    addc_delays.push_back(core::RunAddc(scenario).delay_ms);
  }
  const auto addc = core::Summarize(addc_delays);
  std::cout << "ADDC reference delay: "
            << harness::FormatMeanStd(addc.mean, addc.stddev, 0) << " ms\n\n";

  harness::Table table({"Coolest metric", "delay (ms)", "vs ADDC", "avg hops",
                        "max route depth"});
  for (routing::TemperatureMetric metric :
       {routing::TemperatureMetric::kAccumulated, routing::TemperatureMetric::kHighest,
        routing::TemperatureMetric::kMixed}) {
    std::vector<double> delays, hops;
    std::int32_t depth = 0;
    for (std::int32_t rep = 0; rep < scale.repetitions; ++rep) {
      const core::Scenario scenario(scale.base, rep);
      const core::CollectionResult result = core::RunCoolest(scenario, metric);
      delays.push_back(result.delay_ms);
      hops.push_back(result.avg_hops);
      depth = std::max(depth, result.max_route_depth);
    }
    const auto delay = core::Summarize(delays);
    table.AddRow({routing::ToString(metric),
                  harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  harness::FormatDouble(delay.mean / addc.mean, 2) + "x",
                  harness::FormatDouble(core::Summarize(hops).mean, 2),
                  std::to_string(depth)});
  }
  table.PrintMarkdown(std::cout);
  return 0;
}
