// Ablation A3 (ours): which Coolest-path metric [17] the baseline uses —
// accumulated, highest (bottleneck), or mixed. The paper only says Coolest
// prefers "the most balanced and/or the lowest spectrum utilization" path;
// this bench shows ADDC's advantage is robust to that modeling choice.
#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Ablation A3 — Coolest metric choice",
      "(ours) ADDC wins against all three Coolest metrics of [17]", options,
      std::cout);

  // Cell layout: reps ADDC-reference cells, then 3 × reps Coolest cells —
  // every variant runs on the same per-repetition deployments.
  const routing::TemperatureMetric metrics[] = {
      routing::TemperatureMetric::kAccumulated, routing::TemperatureMetric::kHighest,
      routing::TemperatureMetric::kMixed};
  const std::int64_t reps = options.repetitions;
  std::vector<core::CollectionResult> results(4 * static_cast<std::size_t>(reps));
  const harness::ParallelRunner runner(options.jobs);
  runner.ForEachIndex(4 * reps, [&](std::int64_t index) {
    const auto rep = static_cast<std::uint64_t>(index % reps);
    const core::Scenario scenario(options.base, rep);
    const std::int64_t variant = index / reps;
    results[static_cast<std::size_t>(index)] =
        variant == 0 ? core::RunAddc(scenario)
                     : core::RunCoolest(scenario, metrics[variant - 1]);
  }, &profiler);

  std::vector<double> addc_delays;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    addc_delays.push_back(results[static_cast<std::size_t>(rep)].delay_ms);
  }
  const auto addc = core::Summarize(addc_delays);
  std::cout << "ADDC reference delay: "
            << harness::FormatMeanStd(addc.mean, addc.stddev, 0) << " ms\n\n";

  harness::Table table({"Coolest metric", "delay (ms)", "vs ADDC", "avg hops",
                        "max route depth"});
  harness::Json series = harness::Json::Array();
  for (std::size_t variant = 0; variant < 3; ++variant) {
    std::vector<double> delays, hops;
    std::int32_t depth = 0;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      const core::CollectionResult& result =
          results[(variant + 1) * static_cast<std::size_t>(reps) +
                  static_cast<std::size_t>(rep)];
      delays.push_back(result.delay_ms);
      hops.push_back(result.avg_hops);
      depth = std::max(depth, result.max_route_depth);
    }
    const auto delay = core::Summarize(delays);
    const double avg_hops = core::Summarize(hops).mean;
    const std::string name = routing::ToString(metrics[variant]);
    table.AddRow({name, harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  harness::FormatDouble(delay.mean / addc.mean, 2) + "x",
                  harness::FormatDouble(avg_hops, 2), std::to_string(depth)});
    harness::Json row = harness::Json::Object();
    row["metric"] = name;
    row["coolest_delay_ms"] = harness::ToJson(delay);
    row["vs_addc_ratio"] = delay.mean / addc.mean;
    row["avg_hops"] = avg_hops;
    row["max_route_depth"] = static_cast<std::int64_t>(depth);
    series.Push(std::move(row));
  }
  table.PrintMarkdown(std::cout);

  harness::Json payload = harness::Json::Object();
  payload["addc_reference_delay_ms"] = harness::ToJson(addc);
  payload["metrics"] = std::move(series);
  return harness::WriteBenchJson("ablation_coolest_metric", options,
                                 std::move(payload), timer.Seconds(), std::cout, &profiler)
             ? 0
             : 1;
}
