// Ablation A1 (ours): the fairness rule of Algorithm 1 line 12 — after a
// transmission with backoff t_i, wait τ_c − t_i before re-contending — on
// vs off. The paper argues this prevents one SU from monopolizing the
// spectrum (Theorem 1's "at most two packets before mine" property). This
// bench quantifies the cost/benefit: delay and Jain delivery fairness with
// the rule enabled and disabled.
#include <iostream>

#include "harness/sweep.h"
#include "harness/table.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  harness::PrintBenchHeader(
      "Ablation A1 — fairness wait on/off",
      "(ours) line 12 trades little delay for per-flow fairness", scale,
      std::cout);

  harness::Table table({"fairness wait", "ADDC delay (ms)", "Jain index",
                        "capacity (·W)", "completed"});
  for (bool enabled : {true, false}) {
    core::ScenarioConfig config = scale.base;
    config.fairness_wait = enabled;
    std::vector<double> delays, jains, capacities;
    std::int32_t completed = 0;
    for (std::int32_t rep = 0; rep < scale.repetitions; ++rep) {
      const core::Scenario scenario(config, rep);
      const core::CollectionResult result = core::RunAddc(scenario);
      delays.push_back(result.delay_ms);
      jains.push_back(result.jain_delivery_fairness);
      capacities.push_back(result.capacity_fraction);
      completed += result.completed ? 1 : 0;
    }
    const auto delay = core::Summarize(delays);
    table.AddRow({enabled ? "on (Algorithm 1)" : "off",
                  harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  harness::FormatDouble(core::Summarize(jains).mean, 3),
                  harness::FormatDouble(core::Summarize(capacities).mean, 4),
                  std::to_string(completed) + "/" + std::to_string(scale.repetitions)});
  }
  table.PrintMarkdown(std::cout);
  return 0;
}
