// Ablation A1 (ours): the fairness rule of Algorithm 1 line 12 — after a
// transmission with backoff t_i, wait τ_c − t_i before re-contending — on
// vs off. The paper argues this prevents one SU from monopolizing the
// spectrum (Theorem 1's "at most two packets before mine" property). This
// bench quantifies the cost/benefit: delay and Jain delivery fairness with
// the rule enabled and disabled.
#include <iostream>
#include <vector>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Ablation A1 — fairness wait on/off",
      "(ours) line 12 trades little delay for per-flow fairness", options,
      std::cout);

  const bool cases[] = {true, false};
  const std::int64_t reps = options.repetitions;
  std::vector<core::CollectionResult> results(2 * static_cast<std::size_t>(reps));
  const harness::ParallelRunner runner(options.jobs);
  runner.ForEachIndex(2 * reps, [&](std::int64_t index) {
    core::ScenarioConfig config = options.base;
    config.fairness_wait = cases[index / reps];
    const core::Scenario scenario(config, static_cast<std::uint64_t>(index % reps));
    results[static_cast<std::size_t>(index)] = core::RunAddc(scenario);
  }, &profiler);

  harness::Table table({"fairness wait", "ADDC delay (ms)", "Jain index",
                        "capacity (·W)", "completed"});
  harness::Json series = harness::Json::Array();
  for (std::size_t variant = 0; variant < 2; ++variant) {
    std::vector<double> delays, jains, capacities;
    std::int32_t completed = 0;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      const core::CollectionResult& result =
          results[variant * static_cast<std::size_t>(reps) +
                  static_cast<std::size_t>(rep)];
      delays.push_back(result.delay_ms);
      jains.push_back(result.jain_delivery_fairness);
      capacities.push_back(result.capacity_fraction);
      completed += result.completed ? 1 : 0;
    }
    const bool enabled = cases[variant];
    const auto delay = core::Summarize(delays);
    const double jain = core::Summarize(jains).mean;
    const double capacity = core::Summarize(capacities).mean;
    table.AddRow({enabled ? "on (Algorithm 1)" : "off",
                  harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  harness::FormatDouble(jain, 3), harness::FormatDouble(capacity, 4),
                  std::to_string(completed) + "/" +
                      std::to_string(options.repetitions)});
    harness::Json row = harness::Json::Object();
    row["fairness_wait"] = enabled;
    row["addc_delay_ms"] = harness::ToJson(delay);
    row["jain_mean"] = jain;
    row["capacity_mean"] = capacity;
    row["completed"] = static_cast<std::int64_t>(completed);
    series.Push(std::move(row));
  }
  table.PrintMarkdown(std::cout);
  return harness::WriteBenchJson("ablation_fairness", options, std::move(series),
                                 timer.Seconds(), std::cout, &profiler)
             ? 0
             : 1;
}
