// Ablation A6 (ours): PU traffic burstiness. The paper's §III allows "a
// generalized probabilistic model" but evaluates only i.i.d. Bernoulli
// slots; real licensed users are bursty. A two-state Markov (Gilbert)
// process with the *same* stationary p_t but growing mean burst length
// leaves the per-slot opportunity probability p_o of Lemma 7 unchanged
// while reshaping the waiting-time distribution: long busy runs stall whole
// neighborhoods, long free runs let the backlog flush. This bench measures
// how far Fig. 6's delays move when only burstiness changes.
#include <iostream>
#include <vector>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

namespace {

struct Case {
  crn::pu::ActivityProcess process;
  double burst;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Ablation A6 — PU activity burstiness at fixed duty cycle",
      "(ours) Lemma 7's p_o is burst-invariant; delay is not", options,
      std::cout);

  const Case cases[] = {{pu::ActivityProcess::kIid, 1.0},
                        {pu::ActivityProcess::kMarkov, 2.0},
                        {pu::ActivityProcess::kMarkov, 4.0},
                        {pu::ActivityProcess::kMarkov, 8.0},
                        {pu::ActivityProcess::kMarkov, 16.0}};
  const std::int64_t reps = options.repetitions;
  std::vector<core::ComparisonResult> results(5 * static_cast<std::size_t>(reps));
  const harness::ParallelRunner runner(options.jobs);
  runner.ForEachIndex(5 * reps, [&](std::int64_t index) {
    const Case& c = cases[index / reps];
    core::ScenarioConfig config = options.base;
    config.pu_activity_process = c.process;
    config.pu_mean_burst_slots = c.burst;
    results[static_cast<std::size_t>(index)] =
        core::RunComparison(config, static_cast<std::uint64_t>(index % reps));
  }, &profiler);

  harness::Table table({"activity process", "mean burst (slots)", "ADDC delay (ms)",
                        "Coolest delay (ms)", "measured p_o (ADDC)"});
  harness::Json series = harness::Json::Array();
  for (std::size_t variant = 0; variant < 5; ++variant) {
    std::vector<double> addc_delays, coolest_delays, pos;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      const core::ComparisonResult& result =
          results[variant * static_cast<std::size_t>(reps) +
                  static_cast<std::size_t>(rep)];
      addc_delays.push_back(result.addc.delay_ms);
      coolest_delays.push_back(result.coolest.delay_ms);
      pos.push_back(result.addc.measured_po);
    }
    const Case& c = cases[variant];
    const auto addc = core::Summarize(addc_delays);
    const auto coolest = core::Summarize(coolest_delays);
    const double measured_po = core::Summarize(pos).mean;
    const double mean_burst = c.process == pu::ActivityProcess::kIid
                                  ? 1.0 / (1.0 - options.base.pu_activity)
                                  : c.burst;
    table.AddRow({pu::ToString(c.process), harness::FormatDouble(mean_burst, 1),
                  harness::FormatMeanStd(addc.mean, addc.stddev, 0),
                  harness::FormatMeanStd(coolest.mean, coolest.stddev, 0),
                  harness::FormatDouble(measured_po, 4)});
    harness::Json row = harness::Json::Object();
    row["activity_process"] = std::string(pu::ToString(c.process));
    row["mean_burst_slots"] = mean_burst;
    row["addc_delay_ms"] = harness::ToJson(addc);
    row["coolest_delay_ms"] = harness::ToJson(coolest);
    row["measured_po"] = measured_po;
    series.Push(std::move(row));
  }
  table.PrintMarkdown(std::cout);
  return harness::WriteBenchJson("ablation_pu_burstiness", options,
                                 std::move(series), timer.Seconds(), std::cout, &profiler)
             ? 0
             : 1;
}
