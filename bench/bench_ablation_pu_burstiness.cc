// Ablation A6 (ours): PU traffic burstiness. The paper's §III allows "a
// generalized probabilistic model" but evaluates only i.i.d. Bernoulli
// slots; real licensed users are bursty. A two-state Markov (Gilbert)
// process with the *same* stationary p_t but growing mean burst length
// leaves the per-slot opportunity probability p_o of Lemma 7 unchanged
// while reshaping the waiting-time distribution: long busy runs stall whole
// neighborhoods, long free runs let the backlog flush. This bench measures
// how far Fig. 6's delays move when only burstiness changes.
#include <iostream>

#include "harness/sweep.h"
#include "harness/table.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  harness::PrintBenchHeader(
      "Ablation A6 — PU activity burstiness at fixed duty cycle",
      "(ours) Lemma 7's p_o is burst-invariant; delay is not", scale,
      std::cout);

  harness::Table table({"activity process", "mean burst (slots)", "ADDC delay (ms)",
                        "Coolest delay (ms)", "measured p_o (ADDC)"});
  struct Case {
    pu::ActivityProcess process;
    double burst;
  };
  const Case cases[] = {{pu::ActivityProcess::kIid, 1.0},
                        {pu::ActivityProcess::kMarkov, 2.0},
                        {pu::ActivityProcess::kMarkov, 4.0},
                        {pu::ActivityProcess::kMarkov, 8.0},
                        {pu::ActivityProcess::kMarkov, 16.0}};
  for (const Case& c : cases) {
    core::ScenarioConfig config = scale.base;
    config.pu_activity_process = c.process;
    config.pu_mean_burst_slots = c.burst;
    std::vector<double> addc_delays, coolest_delays, pos;
    for (std::int32_t rep = 0; rep < scale.repetitions; ++rep) {
      const core::ComparisonResult result = core::RunComparison(config, rep);
      addc_delays.push_back(result.addc.delay_ms);
      coolest_delays.push_back(result.coolest.delay_ms);
      pos.push_back(result.addc.measured_po);
    }
    const auto addc = core::Summarize(addc_delays);
    const auto coolest = core::Summarize(coolest_delays);
    table.AddRow({pu::ToString(c.process),
                  harness::FormatDouble(c.process == pu::ActivityProcess::kIid ? 1.0 / (1.0 - scale.base.pu_activity) : c.burst, 1),
                  harness::FormatMeanStd(addc.mean, addc.stddev, 0),
                  harness::FormatMeanStd(coolest.mean, coolest.stddev, 0),
                  harness::FormatDouble(core::Summarize(pos).mean, 4)});
  }
  table.PrintMarkdown(std::cout);
  return 0;
}
