// Ablation A5 (ours): imperfect spectrum sensing. The paper assumes perfect
// detection; the sensing literature it cites (§II) does not. Missed
// detections make SUs transmit over active PUs — the PU-protection audit
// counts the harm — while false alarms waste spectrum opportunities and
// inflate delay. This bench quantifies both failure axes around the
// perfect-sensing operating point.
#include <iostream>
#include <vector>

#include "core/collection.h"
#include "graph/cds_tree.h"
#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

namespace {

crn::core::CollectionResult RunWithSensingErrors(const crn::core::Scenario& scenario,
                                                 double false_alarm,
                                                 double missed_detection) {
  using namespace crn;
  const graph::CdsTree& tree = scenario.collection_tree();
  std::vector<graph::NodeId> next_hop(tree.node_count(), scenario.sink());
  for (graph::NodeId v = 0; v < tree.node_count(); ++v) {
    next_hop[v] = v == scenario.sink() ? scenario.sink() : tree.parent(v);
  }
  core::RunOptions options;
  options.sensing_false_alarm = false_alarm;
  options.sensing_missed_detection = missed_detection;
  return core::RunWithNextHops(scenario, std::move(next_hop), "ADDC/errors", options);
}

struct Case {
  double fa;
  double md;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace crn;
  harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  options.base.audit_stride = 4;
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Ablation A5 — imperfect spectrum sensing",
      "(ours) missed detections harm PUs; false alarms cost delay", options,
      std::cout);

  const Case cases[] = {{0.0, 0.0}, {0.1, 0.0}, {0.3, 0.0},
                        {0.0, 0.05}, {0.0, 0.15}, {0.1, 0.05}};
  const std::int64_t reps = options.repetitions;
  std::vector<core::CollectionResult> results(6 * static_cast<std::size_t>(reps));
  const harness::ParallelRunner runner(options.jobs);
  runner.ForEachIndex(6 * reps, [&](std::int64_t index) {
    const Case& c = cases[index / reps];
    const core::Scenario scenario(options.base,
                                  static_cast<std::uint64_t>(index % reps));
    results[static_cast<std::size_t>(index)] =
        RunWithSensingErrors(scenario, c.fa, c.md);
  }, &profiler);

  harness::Table table({"P(false alarm)", "P(missed detection)", "ADDC delay (ms)",
                        "SU-caused PU violations", "SIR failures"});
  harness::Json series = harness::Json::Array();
  for (std::size_t variant = 0; variant < 6; ++variant) {
    std::vector<double> delays;
    std::int64_t violations = 0;
    std::int64_t sir_failures = 0;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      const core::CollectionResult& result =
          results[variant * static_cast<std::size_t>(reps) +
                  static_cast<std::size_t>(rep)];
      delays.push_back(result.delay_ms);
      violations += result.mac.su_caused_violations;
      sir_failures +=
          result.mac.outcomes[static_cast<int>(mac::TxOutcome::kSirFailure)];
    }
    const Case& c = cases[variant];
    const auto delay = core::Summarize(delays);
    table.AddRow({harness::FormatDouble(c.fa, 2), harness::FormatDouble(c.md, 2),
                  harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  std::to_string(violations), std::to_string(sir_failures)});
    harness::Json row = harness::Json::Object();
    row["false_alarm"] = c.fa;
    row["missed_detection"] = c.md;
    row["addc_delay_ms"] = harness::ToJson(delay);
    row["su_caused_violations"] = violations;
    row["sir_failures"] = sir_failures;
    series.Push(std::move(row));
  }
  table.PrintMarkdown(std::cout);
  return harness::WriteBenchJson("ablation_sensing_errors", options,
                                 std::move(series), timer.Seconds(), std::cout, &profiler)
             ? 0
             : 1;
}
