// Ablation A5 (ours): imperfect spectrum sensing. The paper assumes perfect
// detection; the sensing literature it cites (§II) does not. Missed
// detections make SUs transmit over active PUs — the PU-protection audit
// counts the harm — while false alarms waste spectrum opportunities and
// inflate delay. This bench quantifies both failure axes around the
// perfect-sensing operating point.
#include <iostream>

#include "core/collection.h"
#include "graph/cds_tree.h"
#include "harness/sweep.h"
#include "harness/table.h"

namespace {

crn::core::CollectionResult RunWithSensingErrors(const crn::core::Scenario& scenario,
                                                 double false_alarm,
                                                 double missed_detection) {
  using namespace crn;
  const graph::CdsTree tree(scenario.secondary_graph(), scenario.sink());
  std::vector<graph::NodeId> next_hop(tree.node_count(), scenario.sink());
  for (graph::NodeId v = 0; v < tree.node_count(); ++v) {
    next_hop[v] = v == scenario.sink() ? scenario.sink() : tree.parent(v);
  }
  core::RunOptions options;
  options.sensing_false_alarm = false_alarm;
  options.sensing_missed_detection = missed_detection;
  return core::RunWithNextHops(scenario, std::move(next_hop), "ADDC/errors", options);
}

}  // namespace

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  core::ScenarioConfig config = scale.base;
  config.audit_stride = 4;
  harness::PrintBenchHeader(
      "Ablation A5 — imperfect spectrum sensing",
      "(ours) missed detections harm PUs; false alarms cost delay", scale,
      std::cout);

  struct Case {
    double fa;
    double md;
  };
  const Case cases[] = {{0.0, 0.0}, {0.1, 0.0}, {0.3, 0.0},
                        {0.0, 0.05}, {0.0, 0.15}, {0.1, 0.05}};
  harness::Table table({"P(false alarm)", "P(missed detection)", "ADDC delay (ms)",
                        "SU-caused PU violations", "SIR failures"});
  for (const Case& c : cases) {
    std::vector<double> delays;
    std::int64_t violations = 0;
    std::int64_t sir_failures = 0;
    for (std::int32_t rep = 0; rep < scale.repetitions; ++rep) {
      const core::Scenario scenario(config, rep);
      const core::CollectionResult result = RunWithSensingErrors(scenario, c.fa, c.md);
      delays.push_back(result.delay_ms);
      violations += result.mac.su_caused_violations;
      sir_failures +=
          result.mac.outcomes[static_cast<int>(mac::TxOutcome::kSirFailure)];
    }
    const auto delay = core::Summarize(delays);
    table.AddRow({harness::FormatDouble(c.fa, 2), harness::FormatDouble(c.md, 2),
                  harness::FormatMeanStd(delay.mean, delay.stddev, 0),
                  std::to_string(violations), std::to_string(sir_failures)});
  }
  table.PrintMarkdown(std::cout);
  return 0;
}
