// Capacity validation (ours): Theorem 2 is a statement about *capacity* —
// the base station can absorb snapshots at rate Ω(p_o·W/(2β_κ+24β_{κ+1}−1))
// — but Fig. 6 only ever shows single-snapshot delay. This bench runs
// *continuous* collection (a new snapshot every `interval`) and locates the
// sustainability boundary: per-snapshot completion delays stay flat when
// the offered rate is inside capacity and diverge linearly when outside.
//
// The interval sweep is anchored at the measured single-snapshot delay D:
// offered load factor f means interval = D/f, so f < 1 should be
// sustainable (pipelining across snapshots helps) and f >> 1 cannot be.
#include <iostream>
#include <vector>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crn;
  harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  // Continuous runs multiply the packet count by the number of rounds;
  // shrink the instance (density preserved) and lighten the PU load so the
  // boundary search stays fast.
  if (!options.full_scale) {
    const std::uint64_t seed = options.base.seed;
    options.base = core::ScenarioConfig::ScaledDefaults(0.1);
    options.base.seed = seed;
  }
  options.base.pu_activity = 0.2;
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Capacity (Theorem 2) — continuous collection sustainability",
      "(ours) snapshot delays stay flat inside capacity, diverge outside",
      options, std::cout);

  // The anchor run is serial: every load factor's interval derives from it.
  const core::Scenario scenario(options.base, 0);
  const core::CollectionResult single = core::RunAddc(scenario);
  std::cout << "single-snapshot delay D = " << harness::FormatDouble(single.delay_ms, 0)
            << " ms; achieved capacity " << harness::FormatDouble(single.capacity_fraction, 4)
            << "·W (Theorem 2 lower bound "
            << harness::FormatDouble(single.theorem2_capacity_fraction, 6) << "·W)\n\n";

  const std::int32_t rounds = 8;
  const double factors[] = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
  std::vector<core::ContinuousResult> results(6);
  const harness::ParallelRunner runner(options.jobs);
  runner.ForEachIndex(6, [&](std::int64_t index) {
    const auto interval = static_cast<sim::TimeNs>(
        sim::FromMilliseconds(single.delay_ms / factors[index]));
    results[static_cast<std::size_t>(index)] =
        core::RunAddcContinuous(scenario, interval, rounds);
  }, &profiler);

  harness::Table table({"load factor f", "interval (ms)", "mean snapshot delay (ms)",
                        "drift (ms/round)", "sustainable", "achieved rate (·W)"});
  harness::Json series = harness::Json::Array();
  for (std::size_t variant = 0; variant < 6; ++variant) {
    const double factor = factors[variant];
    const auto interval = static_cast<sim::TimeNs>(
        sim::FromMilliseconds(single.delay_ms / factor));
    const core::ContinuousResult& result = results[variant];
    table.AddRow({harness::FormatDouble(factor, 2),
                  harness::FormatDouble(sim::ToMilliseconds(interval), 0),
                  harness::FormatDouble(result.mean_snapshot_delay_ms, 0),
                  harness::FormatDouble(result.delay_drift_ms_per_round, 1),
                  result.sustainable ? "yes" : "NO",
                  harness::FormatDouble(result.aggregate.capacity_fraction, 4)});
    harness::Json row = harness::Json::Object();
    row["load_factor"] = factor;
    row["interval_ms"] = sim::ToMilliseconds(interval);
    row["mean_snapshot_delay_ms"] = result.mean_snapshot_delay_ms;
    row["delay_drift_ms_per_round"] = result.delay_drift_ms_per_round;
    row["sustainable"] = result.sustainable;
    row["achieved_rate_w"] = result.aggregate.capacity_fraction;
    series.Push(std::move(row));
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\n(f ≤ 1: inter-snapshot pipelining keeps delays flat; f > 1: the\n"
               "offered rate exceeds the collection capacity and delay diverges.)\n";

  harness::Json payload = harness::Json::Object();
  payload["single_snapshot_delay_ms"] = single.delay_ms;
  payload["achieved_capacity_w"] = single.capacity_fraction;
  payload["theorem2_capacity_w"] = single.theorem2_capacity_fraction;
  payload["rounds"] = static_cast<std::int64_t>(rounds);
  payload["load_factors"] = std::move(series);
  return harness::WriteBenchJson("capacity_continuous", options,
                                 std::move(payload), timer.Seconds(), std::cout, &profiler)
             ? 0
             : 1;
}
