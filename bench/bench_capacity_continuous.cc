// Capacity validation (ours): Theorem 2 is a statement about *capacity* —
// the base station can absorb snapshots at rate Ω(p_o·W/(2β_κ+24β_{κ+1}−1))
// — but Fig. 6 only ever shows single-snapshot delay. This bench runs
// *continuous* collection (a new snapshot every `interval`) and locates the
// sustainability boundary: per-snapshot completion delays stay flat when
// the offered rate is inside capacity and diverge linearly when outside.
//
// The interval sweep is anchored at the measured single-snapshot delay D:
// offered load factor f means interval = D/f, so f < 1 should be
// sustainable (pipelining across snapshots helps) and f >> 1 cannot be.
#include <iostream>

#include "harness/sweep.h"
#include "harness/table.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  // Continuous runs multiply the packet count by the number of rounds;
  // shrink the instance (density preserved) and lighten the PU load so the
  // boundary search stays fast.
  core::ScenarioConfig config =
      scale.full_scale ? scale.base : core::ScenarioConfig::ScaledDefaults(0.1);
  config.pu_activity = 0.2;
  harness::PrintBenchHeader(
      "Capacity (Theorem 2) — continuous collection sustainability",
      "(ours) snapshot delays stay flat inside capacity, diverge outside",
      scale, std::cout);

  const core::Scenario scenario(config, 0);
  const core::CollectionResult single = core::RunAddc(scenario);
  std::cout << "single-snapshot delay D = " << harness::FormatDouble(single.delay_ms, 0)
            << " ms; achieved capacity " << harness::FormatDouble(single.capacity_fraction, 4)
            << "·W (Theorem 2 lower bound "
            << harness::FormatDouble(single.theorem2_capacity_fraction, 6) << "·W)\n\n";

  const std::int32_t rounds = 8;
  harness::Table table({"load factor f", "interval (ms)", "mean snapshot delay (ms)",
                        "drift (ms/round)", "sustainable", "achieved rate (·W)"});
  for (double factor : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    const auto interval = static_cast<sim::TimeNs>(
        sim::FromMilliseconds(single.delay_ms / factor));
    const core::ContinuousResult result =
        core::RunAddcContinuous(scenario, interval, rounds);
    table.AddRow({harness::FormatDouble(factor, 2),
                  harness::FormatDouble(sim::ToMilliseconds(interval), 0),
                  harness::FormatDouble(result.mean_snapshot_delay_ms, 0),
                  harness::FormatDouble(result.delay_drift_ms_per_round, 1),
                  result.sustainable ? "yes" : "NO",
                  harness::FormatDouble(result.aggregate.capacity_fraction, 4)});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\n(f ≤ 1: inter-snapshot pipelining keeps delays flat; f > 1: the\n"
               "offered rate exceeds the collection capacity and delay diverges.)\n";
  return 0;
}
