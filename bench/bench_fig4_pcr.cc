// Reproduces Fig. 4: the PCR value as a function of P_p, P_s, η_p, η_s for
// α ∈ {3.0, 4.0}. Defaults per the figure caption: α = 4, P_p = 10, R = 12,
// η_p = 10 dB, P_s = 10, r = 10, η_s = 10 dB.
//
// The paper's claims to verify: (i) the PCR at α = 3 exceeds the PCR at
// α = 4 everywhere, and (ii) the PCR is non-decreasing in each of P_p, P_s,
// η_p, η_s. Both c2 variants are printed (DESIGN.md §4): "paper" is what
// Fig. 4 plots; "corrected" is the constant the concurrency guarantee
// actually needs.
//
// This bench is formula-only (no simulation), so --jobs, --scale and --reps
// do not change its output; the flags are still accepted so the whole suite
// shares one CLI, and the four tables are also emitted as BENCH_fig4.json.
#include <iostream>
#include <string>
#include <vector>

#include "core/pcr.h"
#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

namespace {

using crn::core::C2Variant;
using crn::core::PcrParams;
using crn::core::ProperCarrierSensingRange;
using crn::harness::FormatDouble;
using crn::harness::Table;

PcrParams Fig4Defaults(double alpha) {
  PcrParams params;
  params.pu_power = 10.0;
  params.su_power = 10.0;
  params.pu_radius = 12.0;
  params.su_radius = 10.0;
  params.eta_p = crn::SirThreshold::FromDb(10.0);
  params.eta_s = crn::SirThreshold::FromDb(10.0);
  params.alpha = alpha;
  return params;
}

template <typename Setter>
crn::harness::Json SweepTable(const std::string& title, const std::string& parameter,
                              const std::vector<double>& values, Setter&& set) {
  std::cout << "== Fig. 4: PCR vs " << title << " ==\n";
  Table table({parameter, "PCR α=3 paper (m)", "PCR α=4 paper (m)",
               "PCR α=3 corrected (m)", "PCR α=4 corrected (m)"});
  crn::harness::Json rows = crn::harness::Json::Array();
  for (double value : values) {
    PcrParams p3 = Fig4Defaults(3.0);
    PcrParams p4 = Fig4Defaults(4.0);
    set(p3, value);
    set(p4, value);
    const double a3_paper = ProperCarrierSensingRange(p3, C2Variant::kPaper);
    const double a4_paper = ProperCarrierSensingRange(p4, C2Variant::kPaper);
    const double a3_corrected = ProperCarrierSensingRange(p3, C2Variant::kCorrected);
    const double a4_corrected = ProperCarrierSensingRange(p4, C2Variant::kCorrected);
    table.AddRow({FormatDouble(value, 1), FormatDouble(a3_paper, 2),
                  FormatDouble(a4_paper, 2), FormatDouble(a3_corrected, 2),
                  FormatDouble(a4_corrected, 2)});
    crn::harness::Json row = crn::harness::Json::Object();
    row["value"] = value;
    row["pcr_alpha3_paper_m"] = a3_paper;
    row["pcr_alpha4_paper_m"] = a4_paper;
    row["pcr_alpha3_corrected_m"] = a3_corrected;
    row["pcr_alpha4_corrected_m"] = a4_corrected;
    rows.Push(std::move(row));
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\n";
  crn::harness::Json sweep = crn::harness::Json::Object();
  sweep["parameter"] = parameter;
  sweep["rows"] = std::move(rows);
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  std::cout << "# Reproduction of Fig. 4 — Cai et al., ICDCS 2012\n"
            << "# Paper claims: PCR(α=3) > PCR(α=4); PCR non-decreasing in "
               "P_p, P_s, η_p, η_s\n\n";

  const std::vector<double> powers{5, 10, 15, 20, 25, 30};
  const std::vector<double> thresholds_db{4, 6, 8, 10, 12, 14, 16};

  harness::Json sweeps = harness::Json::Array();
  sweeps.Push(SweepTable("P_p (PU power)", "P_p", powers,
                         [](PcrParams& p, double v) { p.pu_power = v; }));
  sweeps.Push(SweepTable("P_s (SU power)", "P_s", powers,
                         [](PcrParams& p, double v) { p.su_power = v; }));
  sweeps.Push(SweepTable("η_p (PU SIR threshold, dB)", "η_p (dB)", thresholds_db,
                         [](PcrParams& p, double v) {
                           p.eta_p = crn::SirThreshold::FromDb(v);
                         }));
  sweeps.Push(SweepTable("η_s (SU SIR threshold, dB)", "η_s (dB)", thresholds_db,
                         [](PcrParams& p, double v) {
                           p.eta_s = crn::SirThreshold::FromDb(v);
                         }));
  return harness::WriteBenchJson("fig4", options, std::move(sweeps),
                                 timer.Seconds(), std::cout, &profiler)
             ? 0
             : 1;
}
