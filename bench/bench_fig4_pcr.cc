// Reproduces Fig. 4: the PCR value as a function of P_p, P_s, η_p, η_s for
// α ∈ {3.0, 4.0}. Defaults per the figure caption: α = 4, P_p = 10, R = 12,
// η_p = 10 dB, P_s = 10, r = 10, η_s = 10 dB.
//
// The paper's claims to verify: (i) the PCR at α = 3 exceeds the PCR at
// α = 4 everywhere, and (ii) the PCR is non-decreasing in each of P_p, P_s,
// η_p, η_s. Both c2 variants are printed (DESIGN.md §4): "paper" is what
// Fig. 4 plots; "corrected" is the constant the concurrency guarantee
// actually needs.
#include <iostream>
#include <vector>

#include "core/pcr.h"
#include "harness/table.h"

namespace {

using crn::core::C2Variant;
using crn::core::PcrParams;
using crn::core::ProperCarrierSensingRange;
using crn::harness::FormatDouble;
using crn::harness::Table;

PcrParams Fig4Defaults(double alpha) {
  PcrParams params;
  params.pu_power = 10.0;
  params.su_power = 10.0;
  params.pu_radius = 12.0;
  params.su_radius = 10.0;
  params.eta_p = crn::SirThreshold::FromDb(10.0);
  params.eta_s = crn::SirThreshold::FromDb(10.0);
  params.alpha = alpha;
  return params;
}

template <typename Setter>
void SweepTable(const std::string& title, const std::string& parameter,
                const std::vector<double>& values, Setter&& set) {
  std::cout << "== Fig. 4: PCR vs " << title << " ==\n";
  Table table({parameter, "PCR α=3 paper (m)", "PCR α=4 paper (m)",
               "PCR α=3 corrected (m)", "PCR α=4 corrected (m)"});
  for (double value : values) {
    PcrParams p3 = Fig4Defaults(3.0);
    PcrParams p4 = Fig4Defaults(4.0);
    set(p3, value);
    set(p4, value);
    table.AddRow(
        {FormatDouble(value, 1),
         FormatDouble(ProperCarrierSensingRange(p3, C2Variant::kPaper), 2),
         FormatDouble(ProperCarrierSensingRange(p4, C2Variant::kPaper), 2),
         FormatDouble(ProperCarrierSensingRange(p3, C2Variant::kCorrected), 2),
         FormatDouble(ProperCarrierSensingRange(p4, C2Variant::kCorrected), 2)});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "# Reproduction of Fig. 4 — Cai et al., ICDCS 2012\n"
            << "# Paper claims: PCR(α=3) > PCR(α=4); PCR non-decreasing in "
               "P_p, P_s, η_p, η_s\n\n";

  const std::vector<double> powers{5, 10, 15, 20, 25, 30};
  const std::vector<double> thresholds_db{4, 6, 8, 10, 12, 14, 16};

  SweepTable("P_p (PU power)", "P_p", powers,
             [](PcrParams& p, double v) { p.pu_power = v; });
  SweepTable("P_s (SU power)", "P_s", powers,
             [](PcrParams& p, double v) { p.su_power = v; });
  SweepTable("η_p (PU SIR threshold, dB)", "η_p (dB)", thresholds_db,
             [](PcrParams& p, double v) { p.eta_p = crn::SirThreshold::FromDb(v); });
  SweepTable("η_s (SU SIR threshold, dB)", "η_s (dB)", thresholds_db,
             [](PcrParams& p, double v) { p.eta_s = crn::SirThreshold::FromDb(v); });
  return 0;
}
