// Reproduces Fig. 6(a): data-collection delay vs the number of PUs (N) for
// ADDC and Coolest. Paper claims: delay increases with N (fast — the wait
// for spectrum opportunities dominates), and ADDC beats Coolest (~2.7x on
// average across the sweep).
#include <iostream>

#include "harness/sweep.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  harness::PrintBenchHeader(
      "Fig. 6(a) — delay vs number of PUs N",
      "delay grows quickly with N; ADDC ~2.7x lower than Coolest", scale,
      std::cout);

  // The paper sweeps N to 2x its default; with the baseline's margined
  // sensing range that point exceeds the simulation-time ceiling (p_o is
  // exponential in N), so the default sweep stops at 1.5x — the growth
  // shape is already unambiguous there.
  std::vector<harness::SweepPoint> points;
  for (double factor : {0.25, 0.5, 0.75, 1.0, 1.5}) {
    core::ScenarioConfig config = scale.base;
    config.num_pus =
        static_cast<std::int32_t>(std::lround(scale.base.num_pus * factor));
    points.push_back({std::to_string(config.num_pus), config});
  }
  harness::RunDelaySweep("Fig. 6(a): delay vs N", "N", points, scale.repetitions,
                         std::cout);
  return 0;
}
