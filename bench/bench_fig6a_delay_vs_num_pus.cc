// Reproduces Fig. 6(a): data-collection delay vs the number of PUs (N) for
// ADDC and Coolest. Paper claims: delay increases with N (fast — the wait
// for spectrum opportunities dominates), and ADDC beats Coolest (~2.7x on
// average across the sweep).
#include <cmath>
#include <iostream>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Fig. 6(a) — delay vs number of PUs N",
      "delay grows quickly with N; ADDC ~2.7x lower than Coolest", options,
      std::cout);

  // The paper sweeps N to 2x its default; with the baseline's margined
  // sensing range that point exceeds the simulation-time ceiling (p_o is
  // exponential in N), so the default sweep stops at 1.5x — the growth
  // shape is already unambiguous there.
  harness::SweepSpec spec;
  spec.title = "Fig. 6(a): delay vs N";
  spec.parameter_name = "N";
  spec.repetitions = options.repetitions;
  spec.jobs = options.jobs;
  spec.profiler = &profiler;
  for (double factor : {0.25, 0.5, 0.75, 1.0, 1.5}) {
    core::ScenarioConfig config = options.base;
    config.num_pus =
        static_cast<std::int32_t>(std::lround(options.base.num_pus * factor));
    spec.points.push_back({std::to_string(config.num_pus), config});
  }
  const harness::SweepResult result = harness::RunSweep(spec);
  harness::RenderDelayTable(result, std::cout);
  return harness::WriteBenchJson("fig6a", options, {result}, timer.Seconds(),
                                 std::cout, &profiler)
             ? 0
             : 1;
}
