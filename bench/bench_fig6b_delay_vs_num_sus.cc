// Reproduces Fig. 6(b): data-collection delay vs the number of SUs (n) for
// ADDC and Coolest, with the area fixed (the paper's Fig. 6 caption pins
// A = 250x250 while n varies). Paper claims: delay increases with n (more
// slowly than with N), and ADDC beats Coolest (~2.8x).
#include <cmath>
#include <iostream>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Fig. 6(b) — delay vs number of SUs n",
      "delay grows with n (slower than Fig. 6(a)); ADDC ~2.8x lower", options,
      std::cout);

  // With A fixed, n below the default is sub-critical for unit-disk
  // connectivity (≈5 expected neighbors at 0.5x — the paper's standing
  // connectedness assumption fails there, at full scale too), so the sweep
  // grows n upward from the default.
  harness::SweepSpec spec;
  spec.title = "Fig. 6(b): delay vs n";
  spec.parameter_name = "n";
  spec.repetitions = options.repetitions;
  spec.jobs = options.jobs;
  spec.profiler = &profiler;
  for (double factor : {1.0, 1.25, 1.5, 1.75, 2.0}) {
    core::ScenarioConfig config = options.base;
    config.num_sus =
        static_cast<std::int32_t>(std::lround(options.base.num_sus * factor));
    spec.points.push_back({std::to_string(config.num_sus), config});
  }
  const harness::SweepResult result = harness::RunSweep(spec);
  harness::RenderDelayTable(result, std::cout);
  return harness::WriteBenchJson("fig6b", options, {result}, timer.Seconds(),
                                 std::cout, &profiler)
             ? 0
             : 1;
}
