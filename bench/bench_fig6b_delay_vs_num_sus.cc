// Reproduces Fig. 6(b): data-collection delay vs the number of SUs (n) for
// ADDC and Coolest, with the area fixed (the paper's Fig. 6 caption pins
// A = 250x250 while n varies). Paper claims: delay increases with n (more
// slowly than with N), and ADDC beats Coolest (~2.8x).
#include <iostream>

#include "harness/sweep.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  harness::PrintBenchHeader(
      "Fig. 6(b) — delay vs number of SUs n",
      "delay grows with n (slower than Fig. 6(a)); ADDC ~2.8x lower", scale,
      std::cout);

  // With A fixed, n below the default is sub-critical for unit-disk
  // connectivity (≈5 expected neighbors at 0.5x — the paper's standing
  // connectedness assumption fails there, at full scale too), so the sweep
  // grows n upward from the default.
  std::vector<harness::SweepPoint> points;
  for (double factor : {1.0, 1.25, 1.5, 1.75, 2.0}) {
    core::ScenarioConfig config = scale.base;
    config.num_sus =
        static_cast<std::int32_t>(std::lround(scale.base.num_sus * factor));
    points.push_back({std::to_string(config.num_sus), config});
  }
  harness::RunDelaySweep("Fig. 6(b): delay vs n", "n", points, scale.repetitions,
                         std::cout);
  return 0;
}
