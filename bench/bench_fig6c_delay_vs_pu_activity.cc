// Reproduces Fig. 6(c): data-collection delay vs the PU activity p_t for
// ADDC and Coolest. Paper claims: delay rises very fast with p_t (spectrum
// opportunities shrink as (1 - p_t)^{πR_pcr²N/A}), ADDC ~3.1x lower.
#include <iostream>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Fig. 6(c) — delay vs PU transmission probability p_t",
      "delay increases very fast with p_t; ADDC ~3.1x lower", options, std::cout);

  // p_t = 0.5 drives the baseline past the simulation-time ceiling
  // (expected waits grow as (1-p_t)^{-πR²N/A}), so the sweep tops out at
  // 0.45; the "very fast increase" the paper reports is fully visible.
  harness::SweepSpec spec;
  spec.title = "Fig. 6(c): delay vs p_t";
  spec.parameter_name = "p_t";
  spec.repetitions = options.repetitions;
  spec.jobs = options.jobs;
  spec.profiler = &profiler;
  for (double pt : {0.1, 0.2, 0.3, 0.4, 0.45}) {
    core::ScenarioConfig config = options.base;
    config.pu_activity = pt;
    spec.points.push_back({harness::FormatDouble(pt, 2), config});
  }
  const harness::SweepResult result = harness::RunSweep(spec);
  harness::RenderDelayTable(result, std::cout);
  return harness::WriteBenchJson("fig6c", options, {result}, timer.Seconds(),
                                 std::cout, &profiler)
             ? 0
             : 1;
}
