// Reproduces Fig. 6(c): data-collection delay vs the PU activity p_t for
// ADDC and Coolest. Paper claims: delay rises very fast with p_t (spectrum
// opportunities shrink as (1 - p_t)^{πR_pcr²N/A}), ADDC ~3.1x lower.
#include <iostream>

#include "harness/sweep.h"
#include "harness/table.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  harness::PrintBenchHeader(
      "Fig. 6(c) — delay vs PU transmission probability p_t",
      "delay increases very fast with p_t; ADDC ~3.1x lower", scale, std::cout);

  // p_t = 0.5 drives the baseline past the simulation-time ceiling
  // (expected waits grow as (1-p_t)^{-πR²N/A}), so the sweep tops out at
  // 0.45; the "very fast increase" the paper reports is fully visible.
  std::vector<harness::SweepPoint> points;
  for (double pt : {0.1, 0.2, 0.3, 0.4, 0.45}) {
    core::ScenarioConfig config = scale.base;
    config.pu_activity = pt;
    points.push_back({harness::FormatDouble(pt, 2), config});
  }
  harness::RunDelaySweep("Fig. 6(c): delay vs p_t", "p_t", points,
                         scale.repetitions, std::cout);
  return 0;
}
