// Reproduces Fig. 6(d): data-collection delay vs the path-loss exponent α
// for ADDC and Coolest. Paper claims: delay decreases as α grows (less
// interference -> smaller PCR -> more spectrum opportunities and more
// spatial reuse); ADDC ~1.7x lower.
//
// Feasibility note (documented in EXPERIMENTS.md): at the paper's default
// p_t = 0.3, α = 3 yields p_o ≈ 1e-6 — per-packet waits of ~10^6 slots that
// no simulation can sit through. We run the sweep at p_t = 0.15 (override
// with CRN_PT), which preserves the claimed monotone shape while keeping
// every point finishable.
#include <iostream>

#include "common/env.h"
#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crn;
  harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  options.base.pu_activity = GetEnvDouble("CRN_PT", 0.15);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Fig. 6(d) — delay vs path-loss exponent α",
      "delay decreases with α; ADDC ~1.7x lower (run at p_t=0.15, see header)",
      options, std::cout);

  harness::SweepSpec spec;
  spec.title = "Fig. 6(d): delay vs alpha";
  spec.parameter_name = "alpha";
  spec.repetitions = options.repetitions;
  spec.jobs = options.jobs;
  spec.profiler = &profiler;
  for (double alpha : {3.0, 3.25, 3.5, 3.75, 4.0}) {
    core::ScenarioConfig config = options.base;
    config.alpha = alpha;
    spec.points.push_back({harness::FormatDouble(alpha, 2), config});
  }
  const harness::SweepResult result = harness::RunSweep(spec);
  harness::RenderDelayTable(result, std::cout);
  return harness::WriteBenchJson("fig6d", options, {result}, timer.Seconds(),
                                 std::cout, &profiler)
             ? 0
             : 1;
}
