// Reproduces Fig. 6(d): data-collection delay vs the path-loss exponent α
// for ADDC and Coolest. Paper claims: delay decreases as α grows (less
// interference -> smaller PCR -> more spectrum opportunities and more
// spatial reuse); ADDC ~1.7x lower.
//
// Feasibility note (documented in EXPERIMENTS.md): at the paper's default
// p_t = 0.3, α = 3 yields p_o ≈ 1e-6 — per-packet waits of ~10^6 slots that
// no simulation can sit through. We run the sweep at p_t = 0.15 (override
// with CRN_PT), which preserves the claimed monotone shape while keeping
// every point finishable.
#include <iostream>

#include "common/env.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  scale.base.pu_activity = GetEnvDouble("CRN_PT", 0.15);
  harness::PrintBenchHeader(
      "Fig. 6(d) — delay vs path-loss exponent α",
      "delay decreases with α; ADDC ~1.7x lower (run at p_t=0.15, see header)",
      scale, std::cout);

  std::vector<harness::SweepPoint> points;
  for (double alpha : {3.0, 3.25, 3.5, 3.75, 4.0}) {
    core::ScenarioConfig config = scale.base;
    config.alpha = alpha;
    points.push_back({harness::FormatDouble(alpha, 2), config});
  }
  harness::RunDelaySweep("Fig. 6(d): delay vs alpha", "alpha", points,
                         scale.repetitions, std::cout);
  return 0;
}
