// Reproduces Fig. 6(e): data-collection delay vs the PU power P_p for ADDC
// and Coolest. Paper claims: delay increases with P_p (stronger primary
// interference shrinks concurrency and opportunities); ADDC ~2.6x lower.
#include <iostream>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Fig. 6(e) — delay vs PU transmission power P_p",
      "delay increases with P_p; ADDC ~2.6x lower", options, std::cout);

  // Swept upward from P_p = P_s = 10: below the other network's power the
  // PCR formula is U-shaped in P_p (c1 = P_p/max(P_p,P_s)), which would
  // invert the trend — Fig. 4 sweeps the same way.
  harness::SweepSpec spec;
  spec.title = "Fig. 6(e): delay vs P_p";
  spec.parameter_name = "P_p";
  spec.repetitions = options.repetitions;
  spec.jobs = options.jobs;
  spec.profiler = &profiler;
  for (double power : {10.0, 15.0, 20.0, 25.0, 30.0}) {
    core::ScenarioConfig config = options.base;
    config.pu_power = power;
    spec.points.push_back({harness::FormatDouble(power, 0), config});
  }
  const harness::SweepResult result = harness::RunSweep(spec);
  harness::RenderDelayTable(result, std::cout);
  return harness::WriteBenchJson("fig6e", options, {result}, timer.Seconds(),
                                 std::cout, &profiler)
             ? 0
             : 1;
}
