// Reproduces Fig. 6(e): data-collection delay vs the PU power P_p for ADDC
// and Coolest. Paper claims: delay increases with P_p (stronger primary
// interference shrinks concurrency and opportunities); ADDC ~2.6x lower.
#include <iostream>

#include "harness/sweep.h"
#include "harness/table.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  harness::PrintBenchHeader(
      "Fig. 6(e) — delay vs PU transmission power P_p",
      "delay increases with P_p; ADDC ~2.6x lower", scale, std::cout);

  // Swept upward from P_p = P_s = 10: below the other network's power the
  // PCR formula is U-shaped in P_p (c1 = P_p/max(P_p,P_s)), which would
  // invert the trend — Fig. 4 sweeps the same way.
  std::vector<harness::SweepPoint> points;
  for (double power : {10.0, 15.0, 20.0, 25.0, 30.0}) {
    core::ScenarioConfig config = scale.base;
    config.pu_power = power;
    points.push_back({harness::FormatDouble(power, 0), config});
  }
  harness::RunDelaySweep("Fig. 6(e): delay vs P_p", "P_p", points,
                         scale.repetitions, std::cout);
  return 0;
}
