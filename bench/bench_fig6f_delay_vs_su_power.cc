// Reproduces Fig. 6(f): data-collection delay vs the SU power P_s for ADDC
// and Coolest. Paper claims: delay increases with P_s (SUs interfere more
// with each other and must defer more broadly); ADDC ~2.7x lower.
#include <iostream>

#include "harness/sweep.h"
#include "harness/table.h"

int main() {
  using namespace crn;
  harness::BenchScale scale = harness::ResolveBenchScale();
  harness::PrintBenchHeader(
      "Fig. 6(f) — delay vs SU transmission power P_s",
      "delay increases with P_s; ADDC ~2.7x lower", scale, std::cout);

  // Swept upward from P_s = P_p = 10 for the same reason as Fig. 6(e): the
  // PCR formula is U-shaped around equal powers.
  std::vector<harness::SweepPoint> points;
  for (double power : {10.0, 15.0, 20.0, 25.0, 30.0}) {
    core::ScenarioConfig config = scale.base;
    config.su_power = power;
    points.push_back({harness::FormatDouble(power, 0), config});
  }
  harness::RunDelaySweep("Fig. 6(f): delay vs P_s", "P_s", points,
                         scale.repetitions, std::cout);
  return 0;
}
