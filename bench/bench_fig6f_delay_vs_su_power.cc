// Reproduces Fig. 6(f): data-collection delay vs the SU power P_s for ADDC
// and Coolest. Paper claims: delay increases with P_s (SUs interfere more
// with each other and must defer more broadly); ADDC ~2.7x lower.
#include <iostream>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crn;
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Fig. 6(f) — delay vs SU transmission power P_s",
      "delay increases with P_s; ADDC ~2.7x lower", options, std::cout);

  // Swept upward from P_s = P_p = 10 for the same reason as Fig. 6(e): the
  // PCR formula is U-shaped around equal powers.
  harness::SweepSpec spec;
  spec.title = "Fig. 6(f): delay vs P_s";
  spec.parameter_name = "P_s";
  spec.repetitions = options.repetitions;
  spec.jobs = options.jobs;
  spec.profiler = &profiler;
  for (double power : {10.0, 15.0, 20.0, 25.0, 30.0}) {
    core::ScenarioConfig config = options.base;
    config.su_power = power;
    spec.points.push_back({harness::FormatDouble(power, 0), config});
  }
  const harness::SweepResult result = harness::RunSweep(spec);
  harness::RenderDelayTable(result, std::cout);
  return harness::WriteBenchJson("fig6f", options, {result}, timer.Seconds(),
                                 std::cout, &profiler)
             ? 0
             : 1;
}
