// Resilience benchmark (ours): how gracefully does the collection degrade
// when the network actually misbehaves? A seeded fault plan — Poisson SU
// crashes with later recovery, network-wide sensing-error bursts — is
// injected into ADDC's MAC and into the conventional baseline MAC on the
// *identical* deployments, routing tree, and fault timeline (the injector
// draws from the scenario rng, so both arms see the same adversity). The
// self-healing layer (local repair escalating to cascade re-rooting,
// DESIGN.md §9) keeps delivery high for Algorithm 1; the table reports
// delay, delivery ratio, and repair traffic per fault intensity.
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/collection.h"
#include "faults/fault_plan.h"
#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"

namespace {

using namespace crn;

struct Case {
  double crash_rate_per_s;  // 0 = no churn
  bool sensing_bursts;      // inject fa=0.3 / md=0.1 bursts
};

struct Cell {
  core::CollectionResult result;
  faults::FaultReport faults;
};

faults::FaultPlan MakePlan(const Case& c) {
  faults::FaultPlan plan;
  plan.horizon = 2 * sim::kSecond;
  plan.repair_delay = 2 * sim::kMillisecond;
  plan.retx_budget = 8;  // drop toward dead hops: degrade, never hang
  if (c.crash_rate_per_s > 0.0) {
    faults::CrashGenerator crashes;
    crashes.rate_per_s = c.crash_rate_per_s;
    crashes.recover_after = 150 * sim::kMillisecond;
    plan.crash_generators.push_back(crashes);
  }
  if (c.sensing_bursts) {
    faults::SensingBurstGenerator bursts;
    bursts.rate_per_s = 4.0;
    bursts.false_alarm = 0.3;
    bursts.missed_detection = 0.1;
    bursts.duration = 50 * sim::kMillisecond;
    plan.burst_generators.push_back(bursts);
  }
  return plan;
}

Cell RunArm(const core::Scenario& scenario, const faults::FaultPlan& plan,
            bool conventional_mac) {
  core::RunOptions options;
  if (conventional_mac) {
    // The baseline MAC of DESIGN.md §3 on the same routing tree: discrete
    // contention slots, carrier-detection lag, no PU-slot awareness.
    options.backoff_granularity = scenario.config().baseline_backoff_granularity;
    options.sensing_latency = scenario.config().baseline_sensing_latency;
    options.slot_aware_defer = false;
  }
  Cell cell;
  options.faults = &plan;
  options.fault_report = &cell.faults;
  cell.result = core::RunAddc(scenario, options);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  options.base.audit_stride = 0;  // fault load, not PU protection, is the topic
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "Resilience — collection under churn and sensing bursts",
      "(ours) self-healing ADDC vs the conventional MAC on identical fault plans",
      options, std::cout);

  constexpr Case kCases[] = {{0.0, false}, {0.0, true},  {2.0, false},
                             {2.0, true},  {5.0, false}, {5.0, true}};
  constexpr std::int64_t kCaseCount = 6;
  const std::int64_t reps = options.repetitions;
  // Layout: [case][arm][rep]; arm 0 = ADDC, arm 1 = conventional MAC.
  std::vector<Cell> cells(static_cast<std::size_t>(kCaseCount * 2 * reps));
  const harness::ParallelRunner runner(options.jobs);
  runner.ForEachIndex(kCaseCount * 2 * reps, [&](std::int64_t index) {
    const Case& c = kCases[index / (2 * reps)];
    const bool conventional = (index / reps) % 2 == 1;
    const core::Scenario scenario(options.base,
                                  static_cast<std::uint64_t>(index % reps));
    cells[static_cast<std::size_t>(index)] =
        RunArm(scenario, MakePlan(c), conventional);
  }, &profiler);

  harness::Table table({"crash rate (/s)", "sensing bursts", "ADDC delay (ms)",
                        "ADDC delivery", "baseline delay (ms)", "baseline delivery",
                        "reattached", "orphaned"});
  harness::Json series = harness::Json::Array();
  for (std::int64_t variant = 0; variant < kCaseCount; ++variant) {
    const Case& c = kCases[variant];
    std::vector<double> delay[2];
    std::vector<double> delivery[2];
    std::int64_t reattached = 0;
    std::int64_t orphaned = 0;
    std::int64_t escalations = 0;
    std::int64_t injected = 0;
    for (std::int64_t arm = 0; arm < 2; ++arm) {
      for (std::int64_t rep = 0; rep < reps; ++rep) {
        const Cell& cell =
            cells[static_cast<std::size_t>((variant * 2 + arm) * reps + rep)];
        delay[arm].push_back(cell.result.delay_ms);
        delivery[arm].push_back(cell.result.delivery_ratio);
        if (arm == 0) {
          reattached += cell.faults.reattached_total;
          orphaned += cell.faults.orphaned_now;
          escalations += cell.faults.cascade_escalations;
          injected += cell.faults.injected_total();
        }
      }
    }
    const auto addc_delay = core::Summarize(delay[0]);
    const auto base_delay = core::Summarize(delay[1]);
    const auto addc_delivery = core::Summarize(delivery[0]);
    const auto base_delivery = core::Summarize(delivery[1]);
    table.AddRow({harness::FormatDouble(c.crash_rate_per_s, 1),
                  c.sensing_bursts ? "on" : "off",
                  harness::FormatMeanStd(addc_delay.mean, addc_delay.stddev, 0),
                  harness::FormatDouble(addc_delivery.mean, 3),
                  harness::FormatMeanStd(base_delay.mean, base_delay.stddev, 0),
                  harness::FormatDouble(base_delivery.mean, 3),
                  std::to_string(reattached), std::to_string(orphaned)});
    harness::Json row = harness::Json::Object();
    row["crash_rate_per_s"] = c.crash_rate_per_s;
    row["sensing_bursts"] = c.sensing_bursts;
    row["injected_fault_events"] = injected;
    row["addc_delay_ms"] = harness::ToJson(addc_delay);
    row["addc_delivery_ratio"] = harness::ToJson(addc_delivery);
    row["baseline_delay_ms"] = harness::ToJson(base_delay);
    row["baseline_delivery_ratio"] = harness::ToJson(base_delivery);
    row["reattached_total"] = reattached;
    row["orphaned_total"] = orphaned;
    row["cascade_escalations"] = escalations;
    series.Push(std::move(row));
  }
  table.PrintMarkdown(std::cout);
  return harness::WriteBenchJson("resilience", options, std::move(series),
                                 timer.Seconds(), std::cout, &profiler)
             ? 0
             : 1;
}
