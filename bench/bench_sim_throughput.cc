// Microbenchmarks (google-benchmark): raw performance of the simulator
// substrate — event-queue throughput, unit-disk graph + CDS construction,
// and end-to-end collection wall time vs network size. These guard against
// performance regressions that would make the figure benches unusable.
#include <benchmark/benchmark.h>

#include "core/collection.h"
#include "core/scenario.h"
#include "graph/cds_tree.h"
#include "sim/simulator.h"

namespace {

using namespace crn;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto count = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::int64_t fired = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      simulator.ScheduleAt(i % 1000, sim::EventPriority::kDefault,
                           [&fired] { ++fired; });
    }
    simulator.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 12)->Arg(1 << 16);

void BM_CdsTreeConstruction(benchmark::State& state) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(
      static_cast<double>(state.range(0)) / 100.0);
  const core::Scenario scenario(config, 0);
  for (auto _ : state) {
    graph::CdsTree tree(scenario.secondary_graph(), scenario.sink());
    benchmark::DoNotOptimize(tree.dominator_count());
  }
  state.SetLabel("n=" + std::to_string(config.num_sus));
}
BENCHMARK(BM_CdsTreeConstruction)->Arg(10)->Arg(25)->Arg(50);

void BM_AddcCollectionEndToEnd(benchmark::State& state) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(
      static_cast<double>(state.range(0)) / 100.0);
  config.audit_stride = 0;  // measure the MAC, not the audit
  const core::Scenario scenario(config, 0);
  for (auto _ : state) {
    const core::CollectionResult result = core::RunAddc(scenario);
    benchmark::DoNotOptimize(result.delay_ms);
  }
  state.SetLabel("n=" + std::to_string(config.num_sus));
}
BENCHMARK(BM_AddcCollectionEndToEnd)->Arg(5)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
