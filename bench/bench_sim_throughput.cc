// Simulator throughput bench: end-to-end ADDC collection wall time and
// deterministic work accounting (perf.* counters) across network sizes, for
// both interference-field engines (spectrum/interference_field.h) and both
// event-scheduler backends (sim/simulator.h).
//
// Three jobs in one binary:
//   1. Verification sweeps at the smallest size: (a) the cached and the
//      direct SIR engine, and (b) the calendar-queue and the reference-heap
//      scheduler, each run the same scenarios with trace digests on, and
//      the bench FAILS (exit 1) if any pair of digests differs — the
//      bit-identity contracts, checked in the artifact itself. The
//      scheduler pair must also agree on every perf.sched_* work counter
//      except bucket resizes (a calendar-only notion).
//   2. Per-(n, engine) timing sweeps with audits off: one sweep per cell so
//      wall_seconds and the perf.* counters are attributable to exactly one
//      engine at one size. tools/bench_delta.py compares these sections
//      against bench/baselines/BENCH_sim_throughput.json in CI.
//   3. Horizon-capped scale rungs (n = 10000; n = 100000 under
//      --full-scale): a full collection at these sizes takes minutes of
//      simulated time, so the rung instead runs a fixed sim horizon —
//      timeout by design — keeping wall bounded while still exercising the
//      event core and MAC at scale. Counters stay exact functions of
//      (scenario, seed), so bench_delta budgets apply unchanged.
//
// At the default --scale=0.25 the size ladder {0.2x, 0.8x, 3.2x} of the base
// instance gives n = 100 / 400 / 1600 (density preserved, so connectivity
// and contention stay representative at every rung).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace {

using namespace crn;

// Density-preserving rescale of `base` by `factor` (same law as
// ScenarioConfig::ScaledDefaults): node counts scale linearly, the area
// side by sqrt(factor).
core::ScenarioConfig ScaledBy(const core::ScenarioConfig& base, double factor) {
  core::ScenarioConfig config = base;
  config.num_sus =
      static_cast<std::int32_t>(std::lround(base.num_sus * factor));
  config.num_pus =
      static_cast<std::int32_t>(std::lround(base.num_pus * factor));
  config.area_side = base.area_side * std::sqrt(factor);
  return config;
}

const char* EngineLabel(bool direct) { return direct ? "direct" : "cached"; }

const char* SchedulerLabel(bool reference) {
  return reference ? "reference" : "calendar";
}

// Looks up one counter in a sweep's captured metric state; 0 when the key
// was never touched (e.g. cache counters under the direct engine).
std::int64_t Metric(const harness::SweepResult& sweep, const std::string& key) {
  for (const auto& [name, value] : sweep.metric_values) {
    if (name == key) return value;
  }
  return 0;
}

std::int64_t EngineMetric(const harness::SweepResult& sweep,
                          const std::string& name, bool direct) {
  return Metric(sweep, name + "{engine=" + EngineLabel(direct) + "}");
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "simulator throughput — SIR engine work accounting",
      "cached interference field is bit-identical to direct evaluation "
      "while doing several times fewer SIR term evaluations",
      options, std::cout);

  const std::vector<double> factors = {0.2, 0.8, 3.2};
  std::vector<harness::SweepResult> sweeps;

  // --- 1. Verification sweep: cached vs direct, digests on, smallest n. ---
  obs::MetricsRegistry verify_metrics;
  harness::SweepSpec verify;
  const core::ScenarioConfig smallest = ScaledBy(options.base, factors.front());
  verify.title = "engine verification n=" + std::to_string(smallest.num_sus);
  verify.parameter_name = "engine";
  verify.repetitions = options.repetitions;
  verify.jobs = options.jobs;
  verify.collect_digests = true;
  verify.addc_only = true;
  verify.metrics = &verify_metrics;
  verify.profiler = &profiler;
  for (const bool direct : {false, true}) {
    core::ScenarioConfig config = smallest;
    config.direct_sir_engine = direct;
    verify.points.push_back({EngineLabel(direct), config});
  }
  const harness::SweepResult verified = harness::RunSweep(verify);
  const std::uint64_t cached_digest = verified.summaries[0].addc_trace_digest;
  const std::uint64_t direct_digest = verified.summaries[1].addc_trace_digest;
  const bool digests_match = cached_digest == direct_digest;
  // Identical triggers ⇒ every evaluation the cached engine skips (via the
  // change-epoch or the SIR-bound check) must have been counted:
  // evals(cached) + skips(cached) == evals(direct).
  const std::int64_t cached_evals =
      EngineMetric(verified, "perf.sir_evaluations", false);
  const std::int64_t cached_skipped =
      EngineMetric(verified, "perf.reeval_skipped", false) +
      EngineMetric(verified, "perf.bound_skips", false);
  const std::int64_t direct_evals =
      EngineMetric(verified, "perf.sir_evaluations", true);
  const bool work_invariant = cached_evals + cached_skipped == direct_evals;
  sweeps.push_back(verified);

  // --- 1b. Scheduler verification sweep: calendar queue vs reference heap,
  // digests on. Identical digests prove the calendar queue pops the exact
  // same (time, priority, seq) total order; identical sched work counters
  // prove it did so with the same push/pop/cancel traffic. ---
  obs::MetricsRegistry sched_metrics;
  harness::SweepSpec sched_verify;
  sched_verify.title =
      "scheduler verification n=" + std::to_string(smallest.num_sus);
  sched_verify.parameter_name = "scheduler";
  sched_verify.repetitions = options.repetitions;
  sched_verify.jobs = options.jobs;
  sched_verify.collect_digests = true;
  sched_verify.addc_only = true;
  sched_verify.metrics = &sched_metrics;
  sched_verify.profiler = &profiler;
  for (const bool reference : {false, true}) {
    core::ScenarioConfig config = smallest;
    config.reference_scheduler = reference;
    sched_verify.points.push_back({SchedulerLabel(reference), config});
  }
  const harness::SweepResult sched_verified = harness::RunSweep(sched_verify);
  const std::uint64_t calendar_digest =
      sched_verified.summaries[0].addc_trace_digest;
  const std::uint64_t reference_digest =
      sched_verified.summaries[1].addc_trace_digest;
  const bool sched_digests_match = calendar_digest == reference_digest;
  bool sched_work_invariant = true;
  for (const char* counter :
       {"perf.sched_pushes", "perf.sched_pops", "perf.sched_cancels",
        "perf.sched_stale_skips"}) {
    const std::string name(counter);
    sched_work_invariant =
        sched_work_invariant &&
        Metric(sched_verified, name + "{scheduler=calendar}") ==
            Metric(sched_verified, name + "{scheduler=reference}");
  }
  sweeps.push_back(sched_verified);

  // --- 2. Timing sweeps: one per (size, alpha, engine), audits off. The
  // extra alpha=3.5 rung (middle size: non-default alpha changes the
  // interference dynamics and slows the whole simulation, so the largest
  // size would dominate bench wall time) exercises the general std::pow
  // path-loss path alongside the alpha=4 fast path. ---
  struct Rung {
    double factor;
    double alpha;
  };
  std::vector<Rung> rungs;
  for (const double factor : factors) rungs.push_back({factor, 0.0});
  rungs.push_back({factors[1], 3.5});
  harness::Table table({"n", "alpha", "engine", "wall (s)", "SIR evals",
                        "SIR terms", "cache hits", "cache misses", "skips",
                        "bound skips", "PU reuse", "resumes"});
  std::vector<std::string> ratio_lines;
  for (const Rung& rung : rungs) {
    core::ScenarioConfig sized = ScaledBy(options.base, rung.factor);
    std::string alpha_tag;
    if (rung.alpha > 0.0) {
      sized.alpha = rung.alpha;
      alpha_tag = " a" + harness::FormatDouble(rung.alpha, 1);
    }
    std::int64_t terms_by_engine[2] = {0, 0};
    double wall_by_engine[2] = {0.0, 0.0};
    for (const bool direct : {false, true}) {
      obs::MetricsRegistry metrics;
      harness::SweepSpec spec;
      spec.title = "throughput n=" + std::to_string(sized.num_sus) + alpha_tag +
                   " (" + EngineLabel(direct) + ")";
      spec.parameter_name = "n";
      spec.repetitions = options.repetitions;
      spec.jobs = options.jobs;
      spec.addc_only = true;
      spec.metrics = &metrics;
      spec.profiler = &profiler;
      core::ScenarioConfig config = sized;
      config.direct_sir_engine = direct;
      config.audit_stride = 0;  // timing runs: no audit receptions in wall time
      spec.points.push_back({std::to_string(config.num_sus), config});
      const harness::SweepResult result = harness::RunSweep(spec);
      const std::int64_t terms =
          EngineMetric(result, "perf.sir_terms_evaluated", direct);
      terms_by_engine[direct ? 1 : 0] = terms;
      wall_by_engine[direct ? 1 : 0] = result.wall_seconds;
      table.AddRow(
          {std::to_string(sized.num_sus),
           harness::FormatDouble(sized.alpha, 1), EngineLabel(direct),
           harness::FormatDouble(result.wall_seconds, 3),
           std::to_string(EngineMetric(result, "perf.sir_evaluations", direct)),
           std::to_string(terms),
           std::to_string(EngineMetric(result, "perf.gain_cache_hits", direct)),
           std::to_string(
               EngineMetric(result, "perf.gain_cache_misses", direct)),
           std::to_string(EngineMetric(result, "perf.reeval_skipped", direct)),
           std::to_string(EngineMetric(result, "perf.bound_skips", direct)),
           std::to_string(
               EngineMetric(result, "perf.pu_partials_reused", direct)),
           std::to_string(EngineMetric(result, "perf.su_resumes", direct))});
      sweeps.push_back(result);
    }
    const double term_ratio =
        terms_by_engine[0] > 0
            ? static_cast<double>(terms_by_engine[1]) /
                  static_cast<double>(terms_by_engine[0])
            : 0.0;
    const double wall_ratio =
        wall_by_engine[0] > 0.0 ? wall_by_engine[1] / wall_by_engine[0] : 0.0;
    ratio_lines.push_back("n=" + std::to_string(sized.num_sus) + alpha_tag +
                          ": direct/cached SIR terms " +
                          harness::FormatDouble(term_ratio, 2) + "x, wall " +
                          harness::FormatDouble(wall_ratio, 2) + "x");
  }

  // --- 3. Horizon-capped scale rungs (timeout by design; see header). ---
  struct BigRung {
    std::int32_t target_n;
    sim::TimeNs horizon;
  };
  std::vector<BigRung> big_rungs = {{10'000, 10 * sim::kSecond}};
  if (options.full_scale) big_rungs.push_back({100'000, 2 * sim::kSecond});
  for (const BigRung& rung : big_rungs) {
    const double factor =
        static_cast<double>(rung.target_n) /
        static_cast<double>(options.base.num_sus);
    core::ScenarioConfig config = ScaledBy(options.base, factor);
    config.max_sim_time = rung.horizon;
    config.audit_stride = 0;
    obs::MetricsRegistry metrics;
    harness::SweepSpec spec;
    spec.title = "throughput n=" + std::to_string(config.num_sus) +
                 " horizon-capped";
    spec.parameter_name = "n";
    spec.repetitions = options.repetitions;
    spec.jobs = options.jobs;
    spec.addc_only = true;
    spec.metrics = &metrics;
    spec.profiler = &profiler;
    spec.points.push_back({std::to_string(config.num_sus), config});
    const harness::SweepResult result = harness::RunSweep(spec);
    table.AddRow(
        {std::to_string(config.num_sus), harness::FormatDouble(config.alpha, 1),
         "cached", harness::FormatDouble(result.wall_seconds, 3),
         std::to_string(EngineMetric(result, "perf.sir_evaluations", false)),
         std::to_string(EngineMetric(result, "perf.sir_terms_evaluated", false)),
         std::to_string(EngineMetric(result, "perf.gain_cache_hits", false)),
         std::to_string(EngineMetric(result, "perf.gain_cache_misses", false)),
         std::to_string(EngineMetric(result, "perf.reeval_skipped", false)),
         std::to_string(EngineMetric(result, "perf.bound_skips", false)),
         std::to_string(EngineMetric(result, "perf.pu_partials_reused", false)),
         std::to_string(EngineMetric(result, "perf.su_resumes", false))});
    ratio_lines.push_back(
        "n=" + std::to_string(config.num_sus) + " horizon-capped: " +
        harness::FormatDouble(result.wall_seconds, 3) + "s wall, sched pushes " +
        std::to_string(Metric(result, "perf.sched_pushes{scheduler=calendar}")) +
        ", pops " +
        std::to_string(Metric(result, "perf.sched_pops{scheduler=calendar}")));
    sweeps.push_back(result);
  }

  table.PrintMarkdown(std::cout);
  std::cout << "\n";
  for (const std::string& line : ratio_lines) std::cout << line << "\n";
  std::cout << "digest check (cached vs direct, n=" << smallest.num_sus
            << "): " << (digests_match ? "IDENTICAL " : "MISMATCH ")
            << harness::DigestHex(cached_digest) << " vs "
            << harness::DigestHex(direct_digest) << "\n";
  std::cout << "digest check (calendar vs reference scheduler, n="
            << smallest.num_sus
            << "): " << (sched_digests_match ? "IDENTICAL " : "MISMATCH ")
            << harness::DigestHex(calendar_digest) << " vs "
            << harness::DigestHex(reference_digest) << "\n";
  std::cout << "work invariant (evals_cached + skipped == evals_direct): "
            << (work_invariant ? "OK" : "VIOLATED") << " (" << cached_evals
            << " + " << cached_skipped << " vs " << direct_evals << ")\n";
  std::cout << "sched work invariant (calendar == reference counters): "
            << (sched_work_invariant ? "OK" : "VIOLATED") << "\n\n";

  const bool wrote = harness::WriteBenchJson(
      "sim_throughput", options, sweeps, timer.Seconds(), std::cout, &profiler);
  return (wrote && digests_match && sched_digests_match && work_invariant &&
          sched_work_invariant)
             ? 0
             : 1;
}
