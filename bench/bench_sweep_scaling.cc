// Sweep-engine scaling bench: the work-stealing executor plus the shared
// scenario-prefab cache (DESIGN.md §15) against the legacy mutex-FIFO
// ThreadPool engine with per-cell geometry rebuilds, on the same
// multi-point delay-vs-p_t sweep.
//
// Three jobs in one binary:
//   1. Engine verification: each engine runs a two-point sweep of the same
//      configuration with trace digests on. Digests must agree inside each
//      sweep (per-engine determinism, re-checkable from the artifact by
//      tools/bench_delta.py --verify-digests) and across the engines — the
//      bench FAILS (exit 1) on any mismatch.
//   2. Headline A/B at jobs=4: the horizon-capped delay sweep once per
//      configuration — work stealing + prefab cache vs ThreadPool +
//      rebuild-every-cell. The sweeps carry the deterministic prefab.*
//      counters (exact functions of the instance, gated 1:1 in CI) and the
//      "pool" scheduling diagnostics (steals budget only — they depend on
//      OS scheduling). The bench fails unless the cache actually shared
//      work (prefab.hits > 0).
//   3. Strong-scaling rows at jobs in {1, 2, 4}: cells/second under the new
//      engine, for EXPERIMENTS.md's scaling table and the CI artifact.
//
// The cells are horizon-capped (a full collection at this size would
// dominate wall time and dilute what this bench isolates: per-cell setup
// cost). With P points sharing one geometry per repetition, the cache
// builds R geometries instead of P*R — that, not thread count, is the
// headline ratio on a small runner.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "harness/json_writer.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace {

using namespace crn;

// Density-preserving rescale (same law as ScenarioConfig::ScaledDefaults).
core::ScenarioConfig ScaledBy(const core::ScenarioConfig& base, double factor) {
  core::ScenarioConfig config = base;
  config.num_sus =
      static_cast<std::int32_t>(std::lround(base.num_sus * factor));
  config.num_pus =
      static_cast<std::int32_t>(std::lround(base.num_pus * factor));
  config.area_side = base.area_side * std::sqrt(factor);
  return config;
}

const char* EngineLabel(bool stealing) {
  return stealing ? "stealing+prefab" : "pool+rebuild";
}

// The shared workload: a horizon-capped delay-vs-p_t sweep (the Fig. 6(c)
// axis — p_t does not key the prefab, so all points of one repetition share
// a geometry). Digests and sinks are attached by the callers.
harness::SweepSpec DelaySweep(const core::ScenarioConfig& sized,
                              std::int32_t repetitions, std::int32_t jobs,
                              std::int64_t grain, bool stealing) {
  harness::SweepSpec spec;
  spec.parameter_name = "p_t";
  spec.repetitions = repetitions;
  spec.jobs = jobs;
  spec.grain = grain;
  spec.engine = stealing ? harness::ExecutionEngine::kWorkStealing
                         : harness::ExecutionEngine::kThreadPool;
  spec.prefab_cache = stealing;
  spec.addc_only = true;
  for (const double p_t : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    core::ScenarioConfig config = sized;
    config.pu_activity = p_t;
    config.max_sim_time = 5 * sim::kMillisecond;  // horizon-capped by design
    config.audit_stride = 0;  // timing runs: no audit receptions in wall time
    spec.points.push_back({harness::FormatDouble(p_t, 1), config});
  }
  return spec;
}

std::int64_t Metric(const harness::SweepResult& sweep, const std::string& key) {
  for (const auto& [name, value] : sweep.metric_values) {
    if (name == key) return value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchOptions options = harness::ResolveBenchOptions(argc, argv);
  const harness::WallTimer timer;
  harness::RunProfiler profiler;
  harness::PrintBenchHeader(
      "sweep-engine scaling — work stealing + scenario-prefab cache",
      "the work-stealing engine with shared prefabs runs the same delay "
      "sweep bit-identically to the ThreadPool engine with per-cell "
      "rebuilds, and >= 1.3x faster at jobs=4",
      options, std::cout);

  // The headline instance: 4x the base scale (the paper's full n = 2000 at
  // the default --scale=0.25), where deployment + UnitDiskGraph + CDS-tree
  // construction dominates a horizon-capped cell.
  const core::ScenarioConfig sized = ScaledBy(options.base, 4.0);
  std::vector<harness::SweepResult> sweeps;

  // --- 1. Engine verification: same two identical points per engine,
  // digests on. Within a sweep the two points must agree (determinism of
  // that engine); across the sweeps the engines must agree with each other.
  std::uint64_t digest_by_engine[2] = {0, 0};
  for (const bool stealing : {false, true}) {
    harness::SweepSpec verify;
    verify.title =
        std::string("engine verification (") + EngineLabel(stealing) + ")";
    verify.parameter_name = "run";
    verify.repetitions = options.repetitions;
    verify.jobs = 4;
    verify.grain = options.grain;
    verify.engine = stealing ? harness::ExecutionEngine::kWorkStealing
                             : harness::ExecutionEngine::kThreadPool;
    verify.prefab_cache = stealing;
    verify.collect_digests = true;
    verify.addc_only = true;
    verify.profiler = &profiler;
    core::ScenarioConfig small = ScaledBy(options.base, 0.2);
    small.max_sim_time = 5 * sim::kMillisecond;
    verify.points.push_back({"first", small});
    verify.points.push_back({"again", small});
    const harness::SweepResult verified = harness::RunSweep(verify);
    digest_by_engine[stealing ? 1 : 0] =
        verified.summaries[0].addc_trace_digest;
    sweeps.push_back(verified);
  }
  const bool digests_match =
      digest_by_engine[0] != 0 && digest_by_engine[0] == digest_by_engine[1];

  // --- 2. Headline A/B at jobs=4 on the horizon-capped delay sweep. ---
  double wall_by_engine[2] = {0.0, 0.0};
  std::int64_t prefab_hits = 0;
  for (const bool stealing : {false, true}) {
    obs::MetricsRegistry metrics;
    harness::SweepSpec spec =
        DelaySweep(sized, options.repetitions, /*jobs=*/4, options.grain,
                   stealing);
    spec.title = std::string("delay sweep jobs=4 (") + EngineLabel(stealing) +
                 ") n=" + std::to_string(sized.num_sus);
    spec.metrics = &metrics;
    spec.profiler = &profiler;
    const harness::SweepResult result = harness::RunSweep(spec);
    wall_by_engine[stealing ? 1 : 0] = result.wall_seconds;
    if (stealing) prefab_hits = Metric(result, "prefab.hits");
    sweeps.push_back(result);
  }
  const double speedup = wall_by_engine[1] > 0.0
                             ? wall_by_engine[0] / wall_by_engine[1]
                             : 0.0;

  // --- 3. Strong scaling under the new engine: cells/sec at jobs 1/2/4. ---
  harness::Table table({"jobs", "engine", "cells", "wall (s)", "cells/s",
                        "chunks", "steals", "prefab hits", "prefab misses"});
  for (const std::int32_t jobs : {1, 2, 4}) {
    obs::MetricsRegistry metrics;
    harness::SweepSpec spec = DelaySweep(sized, options.repetitions, jobs,
                                         options.grain, /*stealing=*/true);
    spec.title = "scaling jobs=" + std::to_string(jobs) +
                 " n=" + std::to_string(sized.num_sus);
    spec.metrics = &metrics;
    spec.profiler = &profiler;
    const harness::SweepResult result = harness::RunSweep(spec);
    const double cells_per_second =
        result.wall_seconds > 0.0
            ? static_cast<double>(result.pool.tasks) / result.wall_seconds
            : 0.0;
    table.AddRow({std::to_string(jobs), EngineLabel(true),
                  std::to_string(result.pool.tasks),
                  harness::FormatDouble(result.wall_seconds, 3),
                  harness::FormatDouble(cells_per_second, 1),
                  std::to_string(result.pool.chunks),
                  std::to_string(result.pool.steals),
                  std::to_string(Metric(result, "prefab.hits")),
                  std::to_string(Metric(result, "prefab.misses"))});
    sweeps.push_back(result);
  }

  table.PrintMarkdown(std::cout);
  std::cout << "\n";
  std::cout << "digest check (" << EngineLabel(false) << " vs "
            << EngineLabel(true)
            << "): " << (digests_match ? "IDENTICAL " : "MISMATCH ")
            << harness::DigestHex(digest_by_engine[0]) << " vs "
            << harness::DigestHex(digest_by_engine[1]) << "\n";
  std::cout << "headline jobs=4: " << EngineLabel(false) << " "
            << harness::FormatDouble(wall_by_engine[0], 3) << "s vs "
            << EngineLabel(true) << " "
            << harness::FormatDouble(wall_by_engine[1], 3) << "s — "
            << harness::FormatDouble(speedup, 2) << "x\n";
  std::cout << "prefab sharing: " << prefab_hits
            << " cache hits (must be > 0)\n\n";

  const bool wrote = harness::WriteBenchJson(
      "sweep_scaling", options, sweeps, timer.Seconds(), std::cout, &profiler);
  return (wrote && digests_match && prefab_hits > 0) ? 0 : 1;
}
