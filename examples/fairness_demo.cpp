// Fairness demo: watch Algorithm 1's line-12 rule (wait τ_c − t_i after
// every transmission) keep two competing SUs interleaved — Theorem 1's
// property 𝔓 in action — and see what the schedule looks like without it.
//
// Run: ./build/examples/fairness_demo
#include <iomanip>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "core/metrics.h"
#include "mac/collection_mac.h"
#include "sim/simulator.h"

namespace {

using namespace crn;
using mac::NodeId;

struct DemoResult {
  std::vector<NodeId> success_order;
  double duration_ms = 0.0;
  double jain = 0.0;
};

DemoResult RunDuel(bool fairness_wait, std::int32_t packets_each) {
  const geom::Aabb area = geom::Aabb::Square(300.0);
  const std::vector<geom::Vec2> positions{{150, 150}, {155, 150}, {150, 155}};
  const std::vector<NodeId> next_hop{0, 0, 0};

  mac::MacConfig config;
  config.pcr = 40.0;
  config.audit_stride = 0;
  config.fairness_wait = fairness_wait;

  pu::PrimaryConfig pu_config;
  pu_config.count = 0;  // quiet licensed band: pure SU-vs-SU contention
  pu_config.activity = 0.0;
  pu_config.slot = config.slot;

  sim::Simulator simulator;
  pu::PrimaryNetwork primary(pu_config, area, std::vector<geom::Vec2>{});
  mac::CollectionMac mac(simulator, primary, positions, area, 0, next_hop, config,
                         Rng(7));

  DemoResult result;
  std::vector<double> completion(2, 0.0);
  mac.AddTxObserver([&](const mac::TxEvent& event) {
    if (event.outcome == mac::TxOutcome::kSuccess) {
      result.success_order.push_back(event.transmitter);
      completion[event.transmitter - 1] = sim::ToMilliseconds(event.end);
    }
  });
  std::vector<NodeId> producers;
  for (std::int32_t i = 0; i < packets_each; ++i) {
    producers.push_back(1);
    producers.push_back(2);
  }
  mac.StartCollection(producers);
  simulator.Run();
  result.duration_ms = sim::ToMilliseconds(simulator.now());
  // Jain over per-flow completion times: 1.0 = both drained together.
  result.jain = core::JainIndex(completion);
  return result;
}

void Describe(const char* title, const DemoResult& result) {
  std::cout << title << "\n  order: ";
  for (NodeId node : result.success_order) {
    std::cout << (node == 1 ? 'A' : 'B');
  }
  std::int32_t longest = 0;
  std::int32_t current = 0;
  NodeId prev = -1;
  for (NodeId node : result.success_order) {
    current = node == prev ? current + 1 : 1;
    prev = node;
    longest = std::max(longest, current);
  }
  std::cout << "\n  finished in " << std::fixed << std::setprecision(1)
            << result.duration_ms << " ms; longest same-SU run " << longest
            << "; Jain completion index " << std::setprecision(4) << result.jain
            << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Two SUs (A, B) beside the base station, 25 packets each, one\n"
               "contention cell. Successful transmissions in order:\n\n";
  Describe("With the fairness wait (Algorithm 1):", RunDuel(true, 25));
  Describe("Without it (line 12 removed):", RunDuel(false, 25));
  std::cout << "Theorem 1 guarantees a competitor transmits at most two packets\n"
               "before a contending neighbor transmits one — visible above as\n"
               "runs of length <= 2 when the fairness wait is on.\n";
  return 0;
}
