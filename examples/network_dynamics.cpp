// Network dynamics: SUs leaving mid-collection, with the local route
// repair of graph/repair.h — the §I scenario ("some existing SUs might leave
// the network ... at any time") that motivates distributed operation in
// the first place. A centralized scheduler would have to recompute the
// global plan; here each orphaned SU just re-attaches to a live
// lower-level neighbor and the collection keeps flowing.
//
// Run: ./build/examples/network_dynamics
#include <iostream>
#include <vector>

#include "graph/repair.h"
#include "core/scenario.h"
#include "graph/cds_tree.h"
#include "mac/collection_mac.h"
#include "sim/simulator.h"

int main() {
  using namespace crn;

  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.1);
  config.seed = 99;
  config.pu_activity = 0.15;
  const core::Scenario scenario(config, 0);
  const graph::UnitDiskGraph& graph = scenario.secondary_graph();
  const graph::BfsLayering bfs = BreadthFirstLayering(graph, scenario.sink());
  const graph::CdsTree tree(graph, scenario.sink());

  std::vector<graph::NodeId> next_hop(tree.node_count());
  for (graph::NodeId v = 0; v < tree.node_count(); ++v) {
    next_hop[v] = v == scenario.sink() ? scenario.sink() : tree.parent(v);
  }

  // Victims: the three busiest connectors (most children) — the worst
  // single-point losses the backbone has.
  std::vector<graph::NodeId> victims;
  for (graph::NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.role(v) == graph::NodeRole::kConnector && !tree.children(v).empty()) {
      victims.push_back(v);
    }
  }
  std::sort(victims.begin(), victims.end(), [&](graph::NodeId a, graph::NodeId b) {
    return tree.children(a).size() > tree.children(b).size();
  });
  victims.resize(std::min<std::size_t>(3, victims.size()));

  sim::Simulator simulator;
  pu::PrimaryNetwork primary = scenario.MakePrimaryNetwork();
  mac::MacConfig mac_config;
  mac_config.pcr = scenario.pcr();
  mac_config.audit_stride = 0;
  mac_config.max_sim_time = 1200 * sim::kSecond;
  mac::CollectionMac mac(simulator, primary, scenario.su_positions(),
                         scenario.area(), scenario.sink(), next_hop, mac_config,
                         scenario.MakeRunRng().Stream("dynamics"));
  mac.StartSnapshotCollection();

  std::cout << "Collecting " << config.num_sus << " packets; "
            << victims.size() << " busiest connectors will fail mid-run.\n";

  std::vector<char> alive(graph.node_count(), 1);
  sim::TimeNs when = 50 * sim::kMillisecond;
  for (graph::NodeId victim : victims) {
    simulator.ScheduleOnce(when, sim::EventPriority::kDefault, [&, victim] {
      alive[victim] = 0;
      graph::RepairPlan plan =
          graph::PlanLocalRepair(graph, bfs, next_hop, alive, victim);
      // One-hop knowledge may not be enough once several connectors are
      // gone; escalate to the multi-hop cascade rather than stranding them.
      if (!plan.complete()) {
        plan = graph::PlanCascadeRepair(graph, next_hop, alive, scenario.sink());
      }
      mac.FailNode(victim);
      for (const auto& [node, new_hop] : plan.repaired) {
        next_hop[node] = new_hop;  // keep the local table in sync
        mac.UpdateNextHop(node, new_hop);
      }
      std::cout << "t=" << sim::ToMilliseconds(simulator.now()) << " ms: connector "
                << victim << " left; " << plan.repaired.size()
                << " orphans re-attached, " << plan.orphaned.size()
                << " partitioned\n";
    });
    when += 100 * sim::kMillisecond;
  }

  simulator.Run();

  const auto& stats = mac.stats();
  std::cout << "\ncollected " << stats.delivered << " of " << config.num_sus
            << " packets in " << sim::ToMilliseconds(stats.finish_time)
            << " ms (" << config.num_sus - stats.delivered
            << " were lost aboard the departed nodes — the rest survived the "
               "churn)\n";
  return mac.finished() ? 0 : 1;
}
