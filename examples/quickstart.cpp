// Quickstart: deploy a small cognitive radio network, run ADDC once, and
// print what happened. This is the 60-second tour of the public API:
//
//   ScenarioConfig  — the paper's parameter vector (§V defaults)
//   Scenario        — one concrete deployment (SUs + PUs + CDS-ready graph)
//   RunAddc()       — Algorithm 1 end to end; returns delay, capacity,
//                     fairness, theory bounds, and MAC diagnostics
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <iostream>

#include "core/collection.h"
#include "core/scenario.h"

int main() {
  using namespace crn;

  // A laptop-friendly network: 200 SUs + base station and 40 PUs on a
  // 79x79 m area — the paper's densities (n/A, N/A) at 1/10 scale.
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.1);
  config.seed = 42;

  std::cout << "Deploying n=" << config.num_sus << " SUs and N=" << config.num_pus
            << " PUs on a " << config.area_side << "x" << config.area_side
            << " m area (p_t=" << config.pu_activity << ")...\n";

  const core::Scenario scenario(config, /*repetition=*/0);
  std::cout << "Proper carrier-sensing range: " << scenario.pcr()
            << " m (kappa=" << scenario.kappa() << ")\n";

  const core::CollectionResult result = core::RunAddc(scenario);

  std::cout << "\n-- ADDC collection of one snapshot (" << config.num_sus
            << " packets) --\n";
  std::cout << "completed:            " << (result.completed ? "yes" : "NO") << "\n";
  std::cout << "delay:                " << result.delay_ms << " ms\n";
  std::cout << "capacity:             " << result.capacity_fraction
            << " of the channel bandwidth W\n";
  std::cout << "mean hops/packet:     " << result.avg_hops << "\n";
  std::cout << "Jain delivery index:  " << result.jain_delivery_fairness << "\n";
  std::cout << "tree: " << result.dominators << " dominators, " << result.connectors
            << " connectors, depth " << result.max_route_depth << "\n";
  std::cout << "spectrum opportunity: theory p_o=" << result.theory_po
            << ", measured=" << result.measured_po << "\n";
  std::cout << "Theorem 2 delay bound: " << result.theorem2_delay_bound_ms
            << " ms (measured " << result.delay_ms << " ms)\n";
  std::cout << "PU protection: " << result.mac.su_caused_violations
            << " SU-caused violations in " << result.mac.audited_pu_receptions
            << " audited primary receptions\n";

  const auto& oc = result.mac.outcomes;
  std::cout << "tx attempts: " << result.mac.attempts << " (success " << oc[0]
            << ", pu-handoff " << oc[1] << ", sir-fail " << oc[2]
            << ", rx-busy " << oc[3] << ", capture-lost " << oc[4] << ")\n";
  return result.completed ? 0 : 1;
}
