// Smart-meter data collection over TV white space — the kind of deployment
// the paper's introduction motivates: a utility reads every meter in a
// neighborhood over licensed spectrum left idle by broadcasters (the PUs),
// without a backhaul and without time synchronization.
//
// Unlike quickstart (which uses the paper's uniform deployment via
// Scenario), this example drives the *composable* layer directly:
//   * meters deployed in clusters (apartment blocks) via ClusteredDeployment
//   * a CDS collection tree built over the resulting unit-disk graph
//   * PCR from core::ProperCarrierSensingRange
//   * mac::CollectionMac run on a hand-assembled PrimaryNetwork
//
// Run: ./build/examples/smart_metering
#include <iostream>

#include "common/rng.h"
#include "core/pcr.h"
#include "core/theory.h"
#include "geom/deployment.h"
#include "graph/cds_tree.h"
#include "mac/collection_mac.h"
#include "pu/primary_network.h"
#include "sim/simulator.h"

int main() {
  using namespace crn;

  const geom::Aabb area = geom::Aabb::Square(150.0);
  Rng rng(2026);

  // --- deploy 300 meters in 12 blocks around a substation sink ----------
  Rng deploy_rng = rng.Stream("meters");
  std::vector<geom::Vec2> nodes;
  do {
    nodes.assign(1, area.Center());  // node 0: the data concentrator (sink)
    const auto meters =
        geom::ClusteredDeployment(300, /*cluster_count=*/12,
                                  /*cluster_radius=*/18.0, area, deploy_rng);
    nodes.insert(nodes.end(), meters.begin(), meters.end());
  } while (!geom::IsUnitDiskConnected(nodes, area, /*radius=*/12.0));
  std::cout << "Deployed " << nodes.size() - 1 << " meters in 12 blocks on a "
            << area.Width() << " m square.\n";

  // --- routing structure: the paper's CDS tree --------------------------
  const graph::UnitDiskGraph network(nodes, area, 12.0);
  const graph::CdsTree tree(network, /*root=*/0);
  tree.Validate(network);
  std::cout << "CDS tree: " << tree.dominator_count() << " dominators, "
            << tree.connector_count() << " connectors, depth "
            << tree.max_depth() << ".\n";

  // --- primary network: 8 broadcast towers, mostly idle -----------------
  pu::PrimaryConfig pu_config;
  pu_config.count = 8;
  pu_config.power = 30.0;   // towers are loud...
  pu_config.radius = 25.0;  // ...and reach far
  pu_config.activity = 0.15;
  pu::PrimaryNetwork towers(pu_config, area, rng.Stream("towers"));

  // --- PCR for this parameter set ---------------------------------------
  core::PcrParams pcr_params;
  pcr_params.pu_power = pu_config.power;
  pcr_params.su_power = 10.0;
  pcr_params.pu_radius = pu_config.radius;
  pcr_params.su_radius = 12.0;
  pcr_params.eta_p = SirThreshold::FromDb(8.0);
  pcr_params.eta_s = SirThreshold::FromDb(8.0);
  const double pcr =
      core::ProperCarrierSensingRange(pcr_params, core::C2Variant::kPaper);
  std::cout << "Proper carrier-sensing range: " << pcr << " m\n";

  // --- run one metering round (one packet per meter) --------------------
  std::vector<graph::NodeId> next_hop(network.node_count(), 0);
  for (graph::NodeId v = 1; v < network.node_count(); ++v) {
    next_hop[v] = tree.parent(v);
  }
  mac::MacConfig mac_config;
  mac_config.pcr = pcr;
  mac_config.su_power = 10.0;
  mac_config.eta_s = SirThreshold::FromDb(8.0);
  mac_config.eta_p = SirThreshold::FromDb(8.0);
  mac_config.audit_stride = 8;

  sim::Simulator simulator;
  mac::CollectionMac mac(simulator, towers, nodes, area, 0, next_hop, mac_config,
                         rng.Stream("round"));
  mac.StartSnapshotCollection();
  simulator.Run();

  const auto& stats = mac.stats();
  std::cout << "\n-- metering round --\n";
  std::cout << "collected " << stats.delivered << "/" << mac.expected_packets()
            << " readings in " << sim::ToMilliseconds(stats.finish_time) << " ms ("
            << stats.attempts << " transmissions, "
            << stats.outcomes[static_cast<int>(mac::TxOutcome::kSirFailure)]
            << " SIR failures, "
            << stats.outcomes[static_cast<int>(mac::TxOutcome::kAbortedPuReturn)]
            << " tower handoffs)\n";
  std::cout << "tower protection: " << stats.su_caused_violations
            << " violations in " << stats.audited_pu_receptions
            << " audited receptions\n";
  return mac.finished() ? 0 : 1;
}
