// Spectrum-opportunity survey: the planning calculation an operator would
// run before deploying a secondary network — how the Proper Carrier-sensing
// Range, the spectrum-opportunity probability p_o (Lemma 7), and the
// Theorem 1/2 delay bounds respond to the environment, before any packet
// is simulated.
//
// Everything here is closed-form (src/core/pcr.h + src/core/theory.h), so
// the survey covers parameter grids instantly.
//
// Run: ./build/examples/spectrum_survey
#include <iostream>

#include "core/pcr.h"
#include "core/theory.h"
#include "harness/table.h"
#include "sim/time.h"

int main() {
  using namespace crn;
  using core::C2Variant;

  core::PcrParams params;  // Fig. 6 defaults: P = 10, R = r = 10, η = 8 dB
  params.eta_p = SirThreshold::FromDb(8.0);
  params.eta_s = SirThreshold::FromDb(8.0);

  const double area = 62500.0;      // 250 x 250 m
  const std::int64_t num_pus = 400;
  const std::int64_t num_sus = 2000;
  const sim::TimeNs slot = sim::kMillisecond;

  std::cout << "Survey area: 250x250 m, N=" << num_pus << " PUs, n=" << num_sus
            << " SUs, slot 1 ms.\n\n";

  {
    std::cout << "== How PU activity shapes the opportunity landscape ==\n";
    harness::Table table({"p_t", "p_o (Lemma 7)", "E[wait] (ms)",
                          "Theorem 2 delay bound (s)", "capacity bound (·W)"});
    const double kappa = core::Kappa(params, C2Variant::kPaper);
    const double pcr = kappa * params.su_radius;
    for (double pt : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
      const double p_o =
          core::SpectrumOpportunityProbability(pcr, num_pus, area, pt);
      const double delta = core::MaxTreeDegreeBound(num_sus, params.su_radius,
                                                    area / num_sus);
      table.AddRow(
          {harness::FormatDouble(pt, 2), harness::FormatDouble(p_o, 5),
           harness::FormatDouble(sim::ToMilliseconds(core::ExpectedOpportunityWait(slot, p_o)), 1),
           harness::FormatDouble(
               sim::ToSeconds(core::Theorem2DelayBound(num_sus, delta, 15, kappa, slot, p_o)), 1),
           harness::FormatDouble(core::Theorem2CapacityFraction(kappa, p_o), 6)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "== The cost of sensing-range conservatism ==\n";
    std::cout << "(p_o is exponential in the sensed area: a 2x aggregate-\n"
                 "interference margin — the conventional design — costs ~3x\n"
                 "in opportunities; the corrected-c2 range makes the paper's\n"
                 "default p_t untenable. This is why §IV-B objective (iii)\n"
                 "insists the range be as small as possible.)\n";
    harness::Table table({"range rule", "PCR (m)", "p_o @ p_t=0.3", "E[wait] (ms)"});
    struct Row {
      const char* label;
      double pcr;
    };
    const Row rows[] = {
        {"paper c2 (tight)", core::ProperCarrierSensingRange(params, C2Variant::kPaper)},
        {"paper c2, 2x margin",
         core::ProperCarrierSensingRange(params, C2Variant::kPaper, 2.0)},
        {"corrected c2", core::ProperCarrierSensingRange(params, C2Variant::kCorrected)},
    };
    for (const Row& row : rows) {
      const double p_o =
          core::SpectrumOpportunityProbability(row.pcr, num_pus, area, 0.3);
      table.AddRow({row.label, harness::FormatDouble(row.pcr, 1),
                    harness::FormatDouble(p_o, 7),
                    harness::FormatDouble(
                        sim::ToMilliseconds(core::ExpectedOpportunityWait(slot, p_o)), 0)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "== Protection headroom vs throughput: the η_p dial ==\n";
    harness::Table table({"η_p (dB)", "PCR (m)", "p_o", "capacity bound (·W)"});
    for (double eta_db : {4.0, 6.0, 8.0, 10.0, 12.0}) {
      core::PcrParams p = params;
      p.eta_p = SirThreshold::FromDb(eta_db);
      const double kappa = core::Kappa(p, C2Variant::kPaper);
      const double p_o = core::SpectrumOpportunityProbability(
          kappa * p.su_radius, num_pus, area, 0.3);
      table.AddRow({harness::FormatDouble(eta_db, 0),
                    harness::FormatDouble(kappa * p.su_radius, 1),
                    harness::FormatDouble(p_o, 5),
                    harness::FormatDouble(core::Theorem2CapacityFraction(kappa, p_o), 6)});
    }
    table.PrintMarkdown(std::cout);
  }
  return 0;
}
