#include "common/check.h"

#include <sstream>

namespace crn::internal {

void FailCheck(const char* file, int line, const char* expr,
               const std::string& message) {
  std::ostringstream out;
  out << "CRN_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw ContractViolation(out.str());
}

}  // namespace crn::internal
