#include "common/check.h"

#include <cstdio>
#include <exception>
#include <sstream>

namespace crn::internal {

namespace {

std::string FormatFailure(const char* file, int line, const char* expr,
                          const std::string& message) {
  std::ostringstream out;
  out << "CRN_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) {
    out << " — " << message;
  }
  return out.str();
}

}  // namespace

void FailCheck(const char* file, int line, const char* expr,
               const std::string& message) {
  throw ContractViolation(FormatFailure(file, line, expr, message));
}

void FailCheckDuringUnwind(const char* file, int line, const char* expr,
                           const std::string& message) {
  const std::string what = FormatFailure(file, line, expr, message);
  std::fprintf(stderr, "%s (during active stack unwinding — terminating)\n",
               what.c_str());
  std::fflush(stderr);
  std::terminate();
}

}  // namespace crn::internal
