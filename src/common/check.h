// Lightweight runtime-contract macros.
//
// CRN_CHECK is always on (it guards logic errors that would silently corrupt
// a simulation); CRN_DCHECK compiles away in NDEBUG builds and is meant for
// hot paths. Both throw crn::ContractViolation so tests can assert on
// misuse and so failures unwind cleanly through RAII types.
//
// Exception contract: a failing check normally throws. The one place it
// cannot is during active stack unwinding (a CRN_CHECK inside a destructor
// that runs because another exception is in flight, or a streamed value
// whose operator<< throws mid-message): a second in-flight exception would
// call std::terminate with the diagnostic lost. The builder detects that
// case via std::uncaught_exceptions() and instead prints the full failure
// message to stderr before terminating deliberately — the process still
// dies (the contract is broken either way), but never silently.
#ifndef CRN_COMMON_CHECK_H_
#define CRN_COMMON_CHECK_H_

#include <exception>
#include <sstream>
#include <stdexcept>
#include <string>

namespace crn {

// Thrown when a CRN_CHECK / CRN_DCHECK contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] void FailCheck(const char* file, int line, const char* expr,
                            const std::string& message);

// Non-throwing failure path: prints the diagnostic to stderr and calls
// std::terminate(). Used when the failure surfaces while an exception is
// already unwinding the stack (see the contract at the top of this file).
[[noreturn]] void FailCheckDuringUnwind(const char* file, int line,
                                        const char* expr,
                                        const std::string& message);

// Stream-style message builder: CRN_CHECK(x) << "context " << v;
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() noexcept(false) {
    if (std::uncaught_exceptions() > 0) {
      FailCheckDuringUnwind(file_, line_, expr_, stream_.str());
    }
    FailCheck(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crn

#define CRN_CHECK(cond)                                                   \
  if (cond) {                                                             \
  } else /* NOLINT */                                                     \
    ::crn::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
// Release builds: the condition stays compiled (so it cannot rot, and
// variables it references stay odr-used under -Werror) but is never
// evaluated — `true ||` short-circuits before any side effect.
#define CRN_DCHECK(cond)  \
  if (true || (cond)) {   \
  } else /* NOLINT */     \
    ::crn::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)
#else
#define CRN_DCHECK(cond) CRN_CHECK(cond)
#endif

#endif  // CRN_COMMON_CHECK_H_
