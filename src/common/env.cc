#include "common/env.h"

#include <cstdlib>
#include <iostream>

namespace crn {

std::optional<std::string> GetEnv(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') {
    return std::nullopt;
  }
  return std::string(value);
}

std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback) {
  const auto raw = GetEnv(name);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(*raw, &pos);
    if (pos == raw->size()) return parsed;
  } catch (const std::exception&) {
  }
  // Silently ignoring an operator typo is worse than a line of stderr.
  std::cerr << "warning: ignoring malformed "  // crn-lint-ok: operator-facing warning
            << name << "=" << *raw << "\n";
  return fallback;
}

double GetEnvDouble(const std::string& name, double fallback) {
  const auto raw = GetEnv(name);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*raw, &pos);
    if (pos == raw->size()) return parsed;
  } catch (const std::exception&) {
  }
  // Silently ignoring an operator typo is worse than a line of stderr.
  std::cerr << "warning: ignoring malformed "  // crn-lint-ok: operator-facing warning
            << name << "=" << *raw << "\n";
  return fallback;
}

bool GetEnvBool(const std::string& name, bool fallback) {
  const auto raw = GetEnv(name);
  if (!raw) return fallback;
  if (*raw == "1" || *raw == "true" || *raw == "yes" || *raw == "on") return true;
  if (*raw == "0" || *raw == "false" || *raw == "no" || *raw == "off") return false;
  // Silently ignoring an operator typo is worse than a line of stderr.
  std::cerr << "warning: ignoring malformed "  // crn-lint-ok: operator-facing warning
            << name << "=" << *raw << "\n";
  return fallback;
}

}  // namespace crn
