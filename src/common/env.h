// Environment-variable helpers used by the bench binaries to pick between
// scaled-down and full paper-scale configurations (see DESIGN.md §2).
#ifndef CRN_COMMON_ENV_H_
#define CRN_COMMON_ENV_H_

#include <cstdint>
#include <optional>
#include <string>

namespace crn {

// Returns the raw value of `name`, or nullopt when unset/empty.
std::optional<std::string> GetEnv(const std::string& name);

// Parses `name` as the given type; returns `fallback` when unset or
// unparsable (a malformed value is reported on stderr, never fatal).
std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback);
double GetEnvDouble(const std::string& name, double fallback);
bool GetEnvBool(const std::string& name, bool fallback);

}  // namespace crn

#endif  // CRN_COMMON_ENV_H_
