// Deterministic, stream-splittable random number generation.
//
// Every piece of randomness in a simulation flows from a single root seed,
// split into independent named streams (e.g. "deployment", "pu-activity",
// "backoff"). Two runs with the same root seed are bit-identical regardless
// of platform, which the integration tests rely on.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded via SplitMix64 —
// small, fast, and with well-studied statistical quality; we deliberately do
// not use std::mt19937 because its distributions are not
// implementation-stable across standard libraries.
#ifndef CRN_COMMON_RNG_H_
#define CRN_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <string_view>

#include "common/check.h"

namespace crn {

// SplitMix64 step; used for seeding and stream derivation.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// 64-bit FNV-1a hash, used to derive independent streams from names.
constexpr std::uint64_t HashName(std::string_view name) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : name) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
    // xoshiro's all-zero state is invalid; SplitMix64 cannot produce four
    // zero outputs in a row, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
      state_[0] = 1;
    }
  }

  // Derives an independent generator for the named sub-stream.
  [[nodiscard]] Rng Stream(std::string_view name) const {
    return Rng(state_[0] ^ (HashName(name) * 0x9E3779B97F4A7C15ULL));
  }

  // Derives an independent generator for an indexed sub-stream (e.g. one
  // per repetition of an experiment).
  [[nodiscard]] Rng Stream(std::string_view name, std::uint64_t index) const {
    std::uint64_t mix = HashName(name) + 0x9E3779B97F4A7C15ULL * (index + 1);
    return Rng(state_[0] ^ SplitMix64(mix));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1): 53 random bits scaled.
  double UniformDouble() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    CRN_DCHECK(lo <= hi) << "lo=" << lo << " hi=" << hi;
    return lo + (hi - lo) * UniformDouble();
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t UniformInt(std::uint64_t bound) {
    CRN_DCHECK(bound > 0);
    // 128-bit multiply keeps the distribution exactly uniform.
    __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(operator()()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    CRN_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(UniformInt(span));
  }

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  // Checkpoint support: expose/restore the raw xoshiro state words so a
  // resumed run continues the exact stream. Plain accessors by design —
  // common/ must not depend on the sim checkpoint envelope.
  [[nodiscard]] std::uint64_t state_word(int i) const {
    CRN_DCHECK(i >= 0 && i < 4);
    return state_[i];
  }
  void RestoreState(std::uint64_t s0, std::uint64_t s1, std::uint64_t s2,
                    std::uint64_t s3) {
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
    // Preserve the xoshiro non-zero-state invariant even for hostile input.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
      state_[0] = 1;
    }
  }

  // Integer threshold T such that, for p in (0, 1) and any raw draw x,
  //   (x >> 11) < T  ⟺  UniformDouble-from-x < p  (i.e. Bernoulli(p)).
  // Exact, not approximate: (x >> 11) is a 53-bit integer, so both the
  // int→double conversion and the 2⁻⁵³ scale in UniformDouble are exact,
  // and k·2⁻⁵³ < p ⟺ k < p·2⁵³ ⟺ k < ⌈p·2⁵³⌉ (p·2⁵³ is a power-of-two
  // rescale of a double, also exact). Hot loops hoist this out and replace
  // a convert+multiply+compare per draw with one integer compare; note the
  // caller must still special-case p ≤ 0 / p ≥ 1, where Bernoulli consumes
  // no draw at all.
  static std::uint64_t BernoulliThreshold(double p) {
    CRN_DCHECK(p > 0.0 && p < 1.0) << "p=" << p;
    return static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace crn

#endif  // CRN_COMMON_RNG_H_
