// Unit helpers shared across the library.
//
// Distances are in meters, powers in linear (dimensionless) units matching
// the paper's P_p / P_s parameters, and SIR thresholds are given in dB in
// the paper's figures but consumed in linear form by the physical model.
#ifndef CRN_COMMON_UNITS_H_
#define CRN_COMMON_UNITS_H_

#include <cmath>

#include "common/check.h"

namespace crn {

// Converts a decibel quantity to its linear ratio: 8 dB -> 10^{0.8}.
inline double DbToLinear(double db) { return std::pow(10.0, db / 10.0); }

// Converts a linear ratio to decibels.
inline double LinearToDb(double linear) {
  CRN_DCHECK(linear > 0.0) << "linear=" << linear;
  return 10.0 * std::log10(linear);
}

// Strongly-typed SIR threshold: constructed from either domain and read in
// linear form by the interference model.
class SirThreshold {
 public:
  static SirThreshold FromDb(double db) { return SirThreshold(DbToLinear(db)); }
  static SirThreshold FromLinear(double linear) {
    CRN_CHECK(linear > 0.0) << "SIR threshold must be positive";
    return SirThreshold(linear);
  }

  [[nodiscard]] double linear() const { return linear_; }
  [[nodiscard]] double db() const { return LinearToDb(linear_); }

 private:
  explicit SirThreshold(double linear) : linear_(linear) {}
  double linear_;
};

}  // namespace crn

#endif  // CRN_COMMON_UNITS_H_
