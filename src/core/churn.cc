#include "core/churn.h"

#include <utility>

#include "common/check.h"

namespace crn::core {

std::vector<std::pair<graph::NodeId, graph::NodeId>> PlanLocalRepair(
    const graph::UnitDiskGraph& graph, const graph::BfsLayering& bfs,
    const std::vector<graph::NodeId>& next_hop, const std::vector<char>& alive,
    graph::NodeId failed_node) {
  CRN_CHECK(!alive[failed_node]) << "node " << failed_node << " is still alive";
  const auto n = graph.node_count();

  // Working routing table: repaired hops land here so later orphans can
  // route through earlier repairs (the "rounds" below emulate neighbors
  // gossiping their recovered routes).
  std::vector<graph::NodeId> working(next_hop);

  // True when u's route under `working` reaches the base station without
  // touching the departed node, `avoid` (no cycles through the orphan), or
  // another still-broken node.
  auto route_is_clean = [&](graph::NodeId u, graph::NodeId avoid) {
    graph::NodeId cursor = u;
    std::int32_t steps = 0;
    while (bfs.level[cursor] != 0) {  // until the base station
      if (cursor == failed_node || cursor == avoid || !alive[cursor]) return false;
      cursor = working[cursor];
      if (++steps > n) return false;
    }
    return true;
  };

  // Orphans: every live node whose current route passes through the
  // departed node — the entire subtree below it, not just its direct
  // children. (A node learns this locally the same way: its upstream stops
  // acknowledging.)
  std::vector<graph::NodeId> orphans;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!alive[v] || v == failed_node || bfs.level[v] == 0) continue;
    if (!route_is_clean(v, /*avoid=*/failed_node)) orphans.push_back(v);
  }

  // Each round, an orphan re-attaches to the (level, id)-smallest live
  // neighbor that currently has a verified route to the base station;
  // orphans deeper in the dead subtree succeed in later rounds, once the
  // boundary has healed — the fixed point of the local gossip. Every
  // adopted hop has a clean route at adoption time and repaired hops never
  // change again, so no cycle can form.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> repairs;
  std::vector<char> repaired(orphans.size(), 0);
  std::size_t remaining = orphans.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < orphans.size(); ++i) {
      if (repaired[i]) continue;
      const graph::NodeId v = orphans[i];
      graph::NodeId best = graph::kInvalidNode;
      for (graph::NodeId u : graph.Neighbors(v)) {
        if (!alive[u] || u == v || u == failed_node) continue;
        if (!route_is_clean(u, v)) continue;
        if (best == graph::kInvalidNode ||
            std::make_pair(bfs.level[u], u) < std::make_pair(bfs.level[best], best)) {
          best = u;
        }
      }
      if (best == graph::kInvalidNode) continue;  // retry next round
      working[v] = best;
      repairs.emplace_back(v, best);
      repaired[i] = 1;
      --remaining;
      progress = true;
    }
  }
  CRN_CHECK(remaining == 0)
      << remaining << " orphan(s) of node " << failed_node
      << " have no live neighbor with a clean route; the network around "
      << "them is partitioned";
  return repairs;
}

}  // namespace crn::core
