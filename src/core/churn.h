// Distributed route repair under SU churn (§I: "some existing SUs might
// leave the network ... at any time. In this case, centralized and
// synchronized algorithms cannot adapt").
//
// The repair rule is the local decision each orphaned SU can take with
// one-hop knowledge: re-attach to a live neighbor strictly closer to the
// base station (smaller BFS level), preferring dominators — the same
// preference the original tree construction used. Level-monotone
// re-attachment can never create a routing cycle.
#ifndef CRN_CORE_CHURN_H_
#define CRN_CORE_CHURN_H_

#include <vector>

#include "graph/unit_disk_graph.h"

namespace crn::core {

// Computes the repair for every node whose next hop is `failed_node`:
// each picks its live neighbor with the smallest (BFS level, id) among
// strictly-lower-level neighbors. Returns (node, new_next_hop) pairs;
// throws if some orphan has no live lower-level neighbor (the network
// around it is partitioned — a cascade repair or re-deployment is needed).
std::vector<std::pair<graph::NodeId, graph::NodeId>> PlanLocalRepair(
    const graph::UnitDiskGraph& graph, const graph::BfsLayering& bfs,
    const std::vector<graph::NodeId>& next_hop, const std::vector<char>& alive,
    graph::NodeId failed_node);

}  // namespace crn::core

#endif  // CRN_CORE_CHURN_H_
