#include "core/collection.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/check.h"
#include "core/invariant_auditor.h"
#include "core/metrics.h"
#include "obs/mac_metrics.h"
#include "core/theory.h"
#include "graph/cds_tree.h"
#include "sim/checkpoint.h"
#include "sim/simulator.h"

namespace crn::core {

namespace {

// Depth of every node in the next-hop forest (steps to the sink).
std::vector<std::int32_t> RouteDepths(const std::vector<graph::NodeId>& next_hop,
                                      graph::NodeId sink) {
  const auto n = static_cast<std::int32_t>(next_hop.size());
  std::vector<std::int32_t> depth(n, -1);
  depth[sink] = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    // Walk up until a memoized node, then unwind.
    std::vector<graph::NodeId> path;
    graph::NodeId cursor = v;
    while (depth[cursor] < 0) {
      path.push_back(cursor);
      cursor = next_hop[cursor];
      CRN_CHECK(static_cast<std::int32_t>(path.size()) <= n) << "route cycle";
    }
    std::int32_t d = depth[cursor];
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      depth[*it] = ++d;
    }
  }
  return depth;
}

}  // namespace

namespace {

mac::MacConfig MakeMacConfig(const ScenarioConfig& config, double sensing_range,
                             const RunOptions& options) {
  mac::MacConfig mac_config;
  mac_config.su_power = config.su_power;
  mac_config.eta_s = SirThreshold::FromDb(config.eta_s_db);
  mac_config.eta_p = SirThreshold::FromDb(config.eta_p_db);
  mac_config.pcr = sensing_range;
  mac_config.alpha = config.alpha;
  mac_config.slot = config.slot;
  mac_config.contention_window = config.contention_window;
  mac_config.tx_duration = config.slot - config.contention_window;
  mac_config.fairness_wait = config.fairness_wait;
  mac_config.audit_stride = config.audit_stride;
  mac_config.max_sim_time = config.max_sim_time;
  mac_config.backoff_granularity = options.backoff_granularity;
  mac_config.sensing_latency = options.sensing_latency;
  mac_config.slot_aware_defer = options.slot_aware_defer;
  mac_config.sensing_false_alarm = options.sensing_false_alarm;
  mac_config.sensing_missed_detection = options.sensing_missed_detection;
  mac_config.sir_engine = config.direct_sir_engine
                              ? spectrum::SirEngine::kDirect
                              : spectrum::SirEngine::kCached;
  if (options.faults != nullptr) {
    mac_config.dead_hop_retx_budget = options.faults->retx_budget;
  }
  return mac_config;
}

// Binds a checkpoint blob to the run that produced it. Restore reconstructs
// the run from scratch, so the caller must hand back the same scenario,
// next-hop label, and attachment set — this section is how a mismatch fails
// with a message instead of a silent digest fork (or a CRN_CHECK deep in
// some component's LoadState).
void WriteRunSection(sim::StateWriter& writer, const Scenario& scenario,
                     const std::string& label, const RunOptions& options) {
  writer.BeginSection("run");
  writer.WriteString(label);
  writer.WriteU64(scenario.config().seed);
  writer.WriteU64(scenario.repetition());
  writer.WriteI32(scenario.config().num_sus);
  writer.WriteI32(scenario.config().num_pus);
  writer.WriteBool(options.audit_report != nullptr);
  writer.WriteBool(options.metrics != nullptr);
  writer.WriteBool(options.faults != nullptr);
  writer.WriteBool(options.flight_recorder != nullptr);
  writer.EndSection();
}

void CheckRunSection(sim::StateReader& reader, const Scenario& scenario,
                     const std::string& label, const RunOptions& options) {
  if (!reader.OpenSection("run")) return;
  const std::string saved_label = reader.ReadString();
  const std::uint64_t saved_seed = reader.ReadU64();
  const std::uint64_t saved_rep = reader.ReadU64();
  const std::int32_t saved_sus = reader.ReadI32();
  const std::int32_t saved_pus = reader.ReadI32();
  const bool saved_audit = reader.ReadBool();
  const bool saved_metrics = reader.ReadBool();
  const bool saved_faults = reader.ReadBool();
  const bool saved_flight = reader.ReadBool();
  reader.EndSection();
  if (!reader.ok()) return;
  CRN_CHECK(saved_label == label)
      << "checkpoint was taken from a '" << saved_label
      << "' run but restore was asked to resume '" << label << "'";
  CRN_CHECK(saved_seed == scenario.config().seed &&
            saved_rep == scenario.repetition() &&
            saved_sus == scenario.config().num_sus &&
            saved_pus == scenario.config().num_pus)
      << "checkpoint scenario (seed " << saved_seed << ", repetition "
      << saved_rep << ", " << saved_sus << " SUs, " << saved_pus
      << " PUs) does not match the scenario handed to restore (seed "
      << scenario.config().seed << ", repetition " << scenario.repetition()
      << ", " << scenario.config().num_sus << " SUs, "
      << scenario.config().num_pus << " PUs)";
  CRN_CHECK(saved_audit == (options.audit_report != nullptr) &&
            saved_metrics == (options.metrics != nullptr) &&
            saved_faults == (options.faults != nullptr) &&
            saved_flight == (options.flight_recorder != nullptr))
      << "checkpoint attachment set (audit=" << saved_audit
      << ", metrics=" << saved_metrics << ", faults=" << saved_faults
      << ", flight=" << saved_flight
      << ") does not match the restore options — attach the same sinks the "
         "checkpointed run had";
}

}  // namespace

CollectionResult RunWithNextHops(const Scenario& scenario,
                                 std::vector<graph::NodeId> next_hop,
                                 const std::string& algorithm_label,
                                 const RunOptions& options) {
  const ScenarioConfig& config = scenario.config();
  const double sensing_range =
      options.sensing_range > 0.0 ? options.sensing_range : scenario.pcr();

  const bool checkpointing = options.checkpoint_every_events > 0;
  const bool restoring = options.restore_blob != nullptr;
  if (checkpointing) {
    CRN_CHECK(options.checkpoint_sink)
        << "checkpoint_every_events is set but checkpoint_sink is empty";
  }
  if (checkpointing || restoring) {
    CRN_CHECK(options.spans == nullptr)
        << "packet-span tracing is not checkpointable — detach the span "
           "tracer from checkpointed or restored runs";
  }

  sim::Simulator simulator(config.reference_scheduler
                               ? sim::SchedulerKind::kReference
                               : sim::SchedulerKind::kCalendar);
  // Restore phase 1 (sim/simulator.h): validate the blob, bind it to this
  // run, and pre-populate the kind registry so components re-binding in the
  // original construction order get their original kind ids back.
  std::optional<sim::StateReader> reader;
  if (restoring) {
    reader.emplace(*options.restore_blob);
    CRN_CHECK(reader->ok()) << "cannot restore: " << reader->error();
    CheckRunSection(*reader, scenario, algorithm_label, options);
    CRN_CHECK(reader->ok()) << "cannot restore: " << reader->error();
    simulator.LoadRegistry(*reader);
    CRN_CHECK(reader->ok()) << "cannot restore: " << reader->error();
  }
  // Attach the recorder before the MAC binds its timers so every registered
  // event kind is mirrored into the recorder's name table (on restore,
  // attaching after LoadRegistry syncs the pre-populated names; the
  // recorder's own ring/counters are restored last, after FinishRestore).
  if (options.flight_recorder != nullptr) {
    simulator.AttachFlightRecorder(options.flight_recorder);
  }
  // Restore phase 2: load the clock/counters/calendar geometry and stage the
  // saved queue. Components constructed below re-bind their timers and their
  // LoadStates re-claim every pending event under its original seq.
  if (restoring) {
    simulator.BeginRestore(*reader);
    CRN_CHECK(reader->ok()) << "cannot restore: " << reader->error();
    if (options.metrics != nullptr) {
      // Restore the registry before any component creates instruments so
      // the instrument creation order (= export order) matches the saved
      // run's, not the attach order of this process.
      options.metrics->LoadState(*reader);
    }
  }
  pu::PrimaryNetwork primary = scenario.MakePrimaryNetwork();
  const mac::MacConfig mac_config = MakeMacConfig(config, sensing_range, options);

  const std::vector<std::int32_t> depths = RouteDepths(next_hop, scenario.sink());

  mac::CollectionMac mac(simulator, primary, scenario.su_positions(),
                         scenario.area(), scenario.sink(), std::move(next_hop),
                         mac_config, scenario.MakeRunRng().Stream("mac"));
  std::optional<InvariantAuditor> auditor;
  if (options.audit_report != nullptr) {
    AuditConfig audit_config = options.audit;
    // Conventional-MAC emulation collides same-slot winners on purpose; the
    // R-set separation property only holds for Algorithm 1's regime.
    if (mac_config.backoff_granularity > 0 || mac_config.sensing_latency > 0) {
      audit_config.check_min_separation = false;
    }
    auditor.emplace(audit_config);
    auditor->Attach(simulator, mac, &primary);
    if (options.metrics != nullptr) auditor->BindMetrics(*options.metrics);
    if (options.flight_recorder != nullptr) {
      auditor->BindFlightRecorder(options.flight_recorder);
    }
  }
  // Observability sinks: attaching is opt-in and passive — with no sink the
  // MAC's lifecycle emits early-out and the run is byte-identical.
  std::optional<obs::MacMetricsCollector> metrics_collector;
  if (options.metrics != nullptr) {
    metrics_collector.emplace(*options.metrics, options.metrics_series_stride);
    metrics_collector->Attach(mac);
  }
  if (options.spans != nullptr) {
    options.spans->Attach(mac);
  }
  // Fault injection: seeded from the run rng so one scenario seed fixes the
  // whole faulted run. An empty compiled timeline attaches nothing and the
  // run is byte-identical to an uninjected one.
  std::optional<faults::FaultInjector> injector;
  if (options.faults != nullptr) {
    injector.emplace(*options.faults, scenario.MakeRunRng().Stream("faults"));
    injector->Attach(simulator, mac, scenario.secondary_graph(), &primary,
                     options.metrics);
    if (auditor.has_value() && injector->armed()) {
      // Re-audit routing acyclicity after every self-healing pass, not just
      // at the end — a transiently cyclic table would go unseen otherwise.
      injector->AddRepairObserver([&auditor] { auditor->VerifyRouting(); });
    }
  }
  if (restoring) {
    // Restore phase 3: component LoadStates re-claim pending events between
    // BeginRestore and FinishRestore. Order mirrors the save order below;
    // the collector and auditor load after their Attach/Bind calls above.
    primary.LoadState(*reader);
    mac.LoadState(*reader);  // chains the interference field's section
    if (metrics_collector.has_value()) metrics_collector->LoadState(*reader);
    if (auditor.has_value()) auditor->LoadState(*reader);
    if (injector.has_value() && injector->armed()) injector->LoadState(*reader);
    // Restore phase 4: push the staged queue against the re-claimed slots.
    simulator.FinishRestore();
    if (options.flight_recorder != nullptr) {
      options.flight_recorder->LoadState(*reader);
    }
    CRN_CHECK(reader->ok()) << "cannot restore: " << reader->error();
  } else {
    // A restored run resumes mid-collection; LoadState replaced this.
    mac.StartSnapshotCollection();
  }

  // Serializes the full run — every section a restored run reads above, in
  // the same order. SaveState is only legal between events; the run loop
  // below pauses there before calling this.
  const auto save_checkpoint = [&] {
    sim::StateWriter writer;
    WriteRunSection(writer, scenario, algorithm_label, options);
    simulator.SaveState(writer);  // "sim.registry" + "sim.core"
    primary.SaveState(writer);
    mac.SaveState(writer);
    if (options.metrics != nullptr) options.metrics->SaveState(writer);
    if (metrics_collector.has_value()) metrics_collector->SaveState(writer);
    if (auditor.has_value()) auditor->SaveState(writer);
    if (injector.has_value() && injector->armed()) injector->SaveState(writer);
    if (options.flight_recorder != nullptr) {
      options.flight_recorder->SaveState(writer);
    }
    options.checkpoint_sink(writer.Finish(), simulator.events_executed());
  };
  const auto run_event_loop = [&] {
    if (!checkpointing) {
      simulator.Run();
      return;
    }
    // Segment the run at event-count boundaries. Pausing is pure
    // observation (RunUntilEvents decides paused-vs-drained without
    // touching the queue), so a checkpointed run's digests match an
    // uninterrupted one's.
    sim::RunStatus status = sim::RunStatus::kPaused;
    while (status == sim::RunStatus::kPaused) {
      status = simulator.RunUntilEvents(
          simulator.events_executed() +
          static_cast<std::uint64_t>(options.checkpoint_every_events));
      if (status == sim::RunStatus::kPaused) save_checkpoint();
    }
  };
  if (options.flight_recorder != nullptr) {
    // An exception escaping the event loop (e.g. the runaway-loop guard)
    // leaves no usable state behind; rethrow it with the decoded causal
    // trail appended so the failure arrives with its event history. The
    // rethrow happens in the run orchestrator, after the callback stack has
    // fully unwound — no MAC state is left half-applied by *this* frame.
    try {
      run_event_loop();
    } catch (const std::exception& e) {
      throw ContractViolation(  // crn-lint-ok: run-loop forensics rethrow,
                                // outside any event callback
          std::string(e.what()) + "\n" +
          options.flight_recorder->FormatTrail(32));
    }
  } else {
    run_event_loop();
  }
  if (auditor.has_value()) {
    *options.audit_report = auditor->Finalize();
  }
  if (options.metrics != nullptr) {
    // Exact SIR work accounting (DESIGN.md §10): seed-stable operation
    // counts, labeled by engine so cached and direct runs stay separable
    // inside one merged registry (bench_sim_throughput, bench_delta.py).
    const spectrum::FieldWork& work = mac.sir_work();
    const obs::Labels engine{{"engine", spectrum::ToString(mac_config.sir_engine)}};
    options.metrics->GetCounter("perf.sir_evaluations", engine)
        .Add(work.sir_evaluations);
    options.metrics->GetCounter("perf.sir_terms_evaluated", engine)
        .Add(work.sir_terms_evaluated);
    options.metrics->GetCounter("perf.gain_cache_hits", engine)
        .Add(work.gain_cache_hits);
    options.metrics->GetCounter("perf.gain_cache_misses", engine)
        .Add(work.gain_cache_misses);
    options.metrics->GetCounter("perf.reeval_skipped", engine)
        .Add(work.reeval_skipped);
    options.metrics->GetCounter("perf.pu_partials_reused", engine)
        .Add(work.pu_partials_reused);
    options.metrics->GetCounter("perf.su_resumes", engine).Add(work.su_resumes);
    options.metrics->GetCounter("perf.bound_skips", engine).Add(work.bound_skips);
    // Scheduler work accounting (sim/simulator.h): exact, seed-stable queue
    // operation counts, labeled by backend so calendar and reference runs
    // stay separable — the same A/B pattern as the SIR engine above.
    const sim::SchedStats& sched_stats = simulator.sched_stats();
    const obs::Labels sched{{"scheduler", sim::ToString(simulator.scheduler_kind())}};
    options.metrics->GetCounter("perf.sched_pushes", sched).Add(sched_stats.pushes);
    options.metrics->GetCounter("perf.sched_pops", sched).Add(sched_stats.pops);
    options.metrics->GetCounter("perf.sched_cancels", sched)
        .Add(sched_stats.cancels);
    options.metrics->GetCounter("perf.sched_stale_skips", sched)
        .Add(sched_stats.stale_skips);
    options.metrics->GetCounter("perf.sched_bucket_resizes", sched)
        .Add(sched_stats.bucket_resizes);
    // Per-event-kind scheduler counters (flight recorder attached only):
    // exact, seed-stable action counts per registered kind. Kinds with no
    // activity are skipped so the registry carries signal, not schema.
    if (options.flight_recorder != nullptr) {
      const sim::FlightRecorder& recorder = *options.flight_recorder;
      const std::vector<std::string>& kind_names = recorder.kind_names();
      const std::vector<sim::KindCounters>& kind_counts = recorder.counters();
      for (std::size_t k = 0; k < kind_counts.size(); ++k) {
        const sim::KindCounters& counts = kind_counts[k];
        if (counts.arms == 0 && counts.reschedules == 0 &&
            counts.disarms == 0 && counts.fires == 0) {
          continue;
        }
        const std::string& name = k < kind_names.size() && !kind_names[k].empty()
                                      ? kind_names[k]
                                      : kind_names[0];
        const obs::Labels kind{{"kind", name}};
        options.metrics->GetCounter("sched.arms", kind).Add(counts.arms);
        options.metrics->GetCounter("sched.reschedules", kind)
            .Add(counts.reschedules);
        options.metrics->GetCounter("sched.disarms", kind).Add(counts.disarms);
        options.metrics->GetCounter("sched.fires", kind).Add(counts.fires);
      }
    }
  }
  if (injector.has_value()) {
    if (options.fault_report != nullptr) *options.fault_report = injector->report();
    if (options.metrics != nullptr && injector->armed()) {
      options.metrics->GetGauge("mac.delivery_ratio_ppm")
          .Set(static_cast<std::int64_t>(mac.stats().delivery_ratio() * 1e6 + 0.5));
    }
  }

  CollectionResult result;
  result.algorithm = algorithm_label;
  result.mac = mac.stats();
  result.completed = mac.finished();
  result.delay_ms = sim::ToMilliseconds(result.mac.finish_time);
  if (result.mac.finish_time > 0) {
    result.capacity_fraction = static_cast<double>(result.mac.delivered) *
                               static_cast<double>(config.slot) /
                               static_cast<double>(result.mac.finish_time);
  }
  if (result.mac.delivered > 0) {
    result.avg_hops = static_cast<double>(result.mac.delivered_hops_total) /
                      static_cast<double>(result.mac.delivered);
  }
  result.delivery_ratio = result.mac.delivery_ratio();

  std::vector<double> delivery_ms;
  delivery_ms.reserve(mac.delivery_time().size());
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(mac.delivery_time().size()); ++v) {
    if (v == scenario.sink()) continue;
    const sim::TimeNs t = mac.delivery_time()[v];
    if (t >= 0) delivery_ms.push_back(sim::ToMilliseconds(t));
  }
  result.jain_delivery_fairness = JainIndex(delivery_ms);

  result.pcr = sensing_range;
  result.kappa = scenario.kappa();
  result.theory_po = SpectrumOpportunityProbability(
      sensing_range, config.num_pus, config.area(), config.pu_activity);
  result.measured_po = result.mac.measured_spectrum_opportunity();
  result.max_route_depth = *std::max_element(depths.begin(), depths.end());
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(depths.size()); ++v) {
    if (v != scenario.sink() && depths[v] == 1) ++result.sink_degree;
  }
  return result;
}

CollectionResult RunAddc(const Scenario& scenario, const RunOptions& options) {
  // The CDS tree ships with the scenario's prefab: runs on a shared prefab
  // (sweep cells differing only in MAC/spectrum parameters) reuse one build.
  const graph::CdsTree& tree = scenario.collection_tree();
  const auto n = tree.node_count();
  std::vector<graph::NodeId> next_hop(n, scenario.sink());
  for (graph::NodeId v = 0; v < n; ++v) {
    next_hop[v] = v == scenario.sink() ? scenario.sink() : tree.parent(v);
  }
  CollectionResult result =
      RunWithNextHops(scenario, std::move(next_hop), "ADDC", options);
  result.dominators = tree.dominator_count();
  result.connectors = tree.connector_count();

  // Paper bounds for this instance. Δ is the maximum tree degree (children
  // plus the parent edge); Δ_b the base station's degree.
  const ScenarioConfig& config = scenario.config();
  const double delta = std::max(1, tree.max_children() + 1);
  const auto sink_degree =
      static_cast<std::int64_t>(tree.children(scenario.sink()).size());
  const double p_o = result.theory_po;
  if (p_o > 0.0) {
    result.theorem1_service_bound_ms = sim::ToMilliseconds(
        Theorem1ServiceBound(delta, scenario.kappa(), config.slot, p_o));
    result.theorem2_delay_bound_ms = sim::ToMilliseconds(
        Theorem2DelayBound(config.num_sus, delta, sink_degree, scenario.kappa(),
                           config.slot, p_o));
    result.theorem2_capacity_fraction =
        Theorem2CapacityFraction(scenario.kappa(), p_o);
  }
  return result;
}

CollectionResult RunCoolest(const Scenario& scenario,
                            routing::TemperatureMetric metric) {
  const ScenarioConfig& config = scenario.config();
  RunOptions options;
  // PU protection is mandatory; lacking Lemma 2/3's tight packing bound the
  // baseline budgets a safety margin on aggregate interference when sizing
  // its sensing range (see ScenarioConfig). The ablation knob can override
  // it to a bare factor·r instead. Its conventional MAC contends in
  // discrete slots with a carrier-detection lag and no PU-slot awareness.
  options.sensing_range =
      config.coolest_sensing_factor > 0.0
          ? config.coolest_sensing_factor * config.su_radius
          : ProperCarrierSensingRange(config.MakePcrParams(), config.c2_variant,
                                      config.baseline_interference_margin);
  options.backoff_granularity = config.baseline_backoff_granularity;
  options.sensing_latency = config.baseline_sensing_latency;
  // A conventional MAC is oblivious to the primary network's slot phase.
  options.slot_aware_defer = false;

  const pu::PrimaryNetwork primary = scenario.MakePrimaryNetwork();
  const std::vector<double> temperatures = routing::NodeTemperatures(
      scenario.su_positions(), primary, options.sensing_range);
  std::vector<graph::NodeId> next_hop = routing::CoolestNextHops(
      scenario.secondary_graph(), temperatures, scenario.sink(), metric);
  std::string label = std::string("Coolest/") + routing::ToString(metric);
  return RunWithNextHops(scenario, std::move(next_hop), label, options);
}

DeterminismReport CheckAddcDeterminism(const Scenario& scenario,
                                       const RunOptions& options) {
  RunOptions audited = options;
  AuditReport first;
  AuditReport second;
  audited.audit_report = &first;
  RunAddc(scenario, audited);
  audited.audit_report = &second;
  RunAddc(scenario, audited);
  DeterminismReport report;
  report.first_digest = first.trace_digest;
  report.second_digest = second.trace_digest;
  report.identical = first.trace_digest == second.trace_digest;
  return report;
}

ComparisonResult RunComparison(const ScenarioConfig& config, std::uint64_t repetition,
                               routing::TemperatureMetric metric) {
  const Scenario scenario(config, repetition);
  ComparisonResult result{RunAddc(scenario), RunCoolest(scenario, metric)};
  return result;
}

ContinuousResult RunAddcContinuous(const Scenario& scenario, sim::TimeNs interval,
                                   std::int32_t snapshot_count) {
  const ScenarioConfig& config = scenario.config();
  const graph::CdsTree& tree = scenario.collection_tree();
  std::vector<graph::NodeId> next_hop(tree.node_count(), scenario.sink());
  for (graph::NodeId v = 0; v < tree.node_count(); ++v) {
    next_hop[v] = v == scenario.sink() ? scenario.sink() : tree.parent(v);
  }

  sim::Simulator simulator(config.reference_scheduler
                               ? sim::SchedulerKind::kReference
                               : sim::SchedulerKind::kCalendar);
  pu::PrimaryNetwork primary = scenario.MakePrimaryNetwork();
  const mac::MacConfig mac_config =
      MakeMacConfig(config, scenario.pcr(), RunOptions{});
  mac::CollectionMac mac(simulator, primary, scenario.su_positions(),
                         scenario.area(), scenario.sink(), next_hop, mac_config,
                         scenario.MakeRunRng().Stream("mac"));
  std::vector<graph::NodeId> producers;
  for (graph::NodeId v = 0; v < tree.node_count(); ++v) {
    if (v != scenario.sink()) producers.push_back(v);
  }
  mac.StartContinuousCollection(producers, interval, snapshot_count);
  simulator.Run();

  ContinuousResult result;
  result.aggregate.algorithm = "ADDC/continuous";
  result.aggregate.mac = mac.stats();
  result.aggregate.completed = mac.finished();
  result.aggregate.delay_ms = sim::ToMilliseconds(result.aggregate.mac.finish_time);
  if (result.aggregate.mac.finish_time > 0) {
    result.aggregate.capacity_fraction =
        static_cast<double>(result.aggregate.mac.delivered) *
        static_cast<double>(config.slot) /
        static_cast<double>(result.aggregate.mac.finish_time);
  }
  result.aggregate.pcr = scenario.pcr();
  result.aggregate.kappa = scenario.kappa();
  result.aggregate.theory_po = SpectrumOpportunityProbability(
      scenario.pcr(), config.num_pus, config.area(), config.pu_activity);
  result.aggregate.theorem2_capacity_fraction =
      result.aggregate.theory_po > 0.0
          ? Theorem2CapacityFraction(scenario.kappa(), result.aggregate.theory_po)
          : 0.0;

  for (std::int32_t k = 0; k < snapshot_count; ++k) {
    const sim::TimeNs finish = mac.snapshot_finish_time()[k];
    const sim::TimeNs created = mac.snapshot_created_time()[k];
    if (finish >= 0 && created >= 0) {
      result.snapshot_delay_ms.push_back(sim::ToMilliseconds(finish - created));
    }
  }
  if (!result.snapshot_delay_ms.empty()) {
    result.mean_snapshot_delay_ms =
        Summarize(result.snapshot_delay_ms).mean;
  }
  // Drift: compare the first and last third of completed rounds.
  const auto completed = static_cast<std::int32_t>(result.snapshot_delay_ms.size());
  if (completed >= 3) {
    const std::int32_t third = completed / 3;
    double head = 0.0;
    double tail = 0.0;
    for (std::int32_t i = 0; i < third; ++i) head += result.snapshot_delay_ms[i];
    for (std::int32_t i = completed - third; i < completed; ++i) {
      tail += result.snapshot_delay_ms[i];
    }
    head /= third;
    tail /= third;
    result.delay_drift_ms_per_round =
        (tail - head) / static_cast<double>(completed - third);
  }
  result.sustainable =
      result.aggregate.completed && completed == snapshot_count &&
      result.delay_drift_ms_per_round <
          0.1 * sim::ToMilliseconds(interval);
  return result;
}

}  // namespace crn::core
