// Collection orchestrators — the library's top-level entry points.
//
// RunAddc() executes the paper's full pipeline on one deployed scenario:
// CDS tree construction (§IV-A), PCR configuration (§IV-B), and the
// asynchronous CSMA collection of Algorithm 1, returning the measured delay
// and capacity together with the Theorem 1/2 bounds for the same instance.
// RunCoolest() runs the baseline of §V on the identical deployment and MAC,
// differing only in the routing structure.
#ifndef CRN_CORE_COLLECTION_H_
#define CRN_CORE_COLLECTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/invariant_auditor.h"
#include "core/scenario.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "mac/collection_mac.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "routing/coolest.h"
#include "sim/flight_recorder.h"
#include "sim/time.h"

namespace crn::core {

struct CollectionResult {
  std::string algorithm;
  bool completed = false;           // all packets reached the base station
  double delay_ms = 0.0;            // data-collection delay (§III definition)
  double capacity_fraction = 0.0;   // achieved rate / W (W = 1 packet/slot)
  double jain_delivery_fairness = 0.0;  // Jain index over delivery times
  double avg_hops = 0.0;            // mean per-packet hop count at delivery
  // delivered / seeded: 1.0 on fault-free runs, < 1 when churn partitioned
  // the network or the retransmission budget dropped packets (graceful
  // degradation — see DESIGN.md §9).
  double delivery_ratio = 1.0;

  // Spectrum-side diagnostics.
  double theory_po = 0.0;           // Lemma 7's p_o
  double measured_po = 0.0;         // slot-boundary sampling during the run
  double pcr = 0.0;                 // configured carrier-sensing range
  double kappa = 0.0;

  // Routing-structure diagnostics (tree stats are ADDC-only; Coolest
  // reports depth of its next-hop forest instead).
  std::int32_t dominators = 0;
  std::int32_t connectors = 0;
  std::int32_t max_route_depth = 0;
  std::int32_t sink_degree = 0;

  // Paper bounds for this instance (ADDC only; 0 otherwise).
  double theorem1_service_bound_ms = 0.0;
  double theorem2_delay_bound_ms = 0.0;
  double theorem2_capacity_fraction = 0.0;

  mac::MacStats mac;
};

// MAC-model overrides for a single run (defaults reproduce Algorithm 1).
struct RunOptions {
  double sensing_range = 0.0;               // 0 = the scenario's PCR
  sim::TimeNs backoff_granularity = 0;      // 0 = continuous backoff
  sim::TimeNs sensing_latency = 0;          // carrier-detection lag
  bool slot_aware_defer = true;             // false = fire on expiry
  double sensing_false_alarm = 0.0;         // detector error axes (A5)
  double sensing_missed_detection = 0.0;
  // When non-null, an InvariantAuditor runs alongside the collection and
  // its finalized report is written here. The pairwise-separation check is
  // auto-disabled under conventional-MAC emulation (nonzero backoff
  // granularity or sensing latency), whose same-slot collisions are
  // modelled deliberately. Attaching the auditor never changes the run's
  // behaviour or trace digest (invariant_auditor.h).
  AuditReport* audit_report = nullptr;
  AuditConfig audit;

  // --- observability sinks (DESIGN.md §"Observability") -----------------
  // All null by default: with no sink attached the MAC's emit helpers
  // early-out and the run's behaviour, digests, and stdout are byte-
  // identical to an uninstrumented build. When set, both must outlive the
  // call. `metrics` collects the MAC instrument set (and, when the auditor
  // runs, mirrors its violation counters as audit.violations_total{...});
  // `spans` records per-packet lifecycle spans for trace export.
  obs::MetricsRegistry* metrics = nullptr;
  obs::PacketSpanTracer* spans = nullptr;
  // Registry series stride in slots (metrics != nullptr only).
  std::int32_t metrics_series_stride = 64;

  // --- fault injection (DESIGN.md §9) -----------------------------------
  // When non-null, a faults::FaultInjector drives the plan through the run
  // (seeded from the scenario's run rng, stream "faults") and self-heals the
  // routing table after every crash/recovery. A plan with an empty compiled
  // timeline attaches nothing — the run stays byte-identical to one without
  // `faults` set (pinned by tests/faults/fault_injector_test.cc). The plan's
  // retx_budget is forwarded into MacConfig::dead_hop_retx_budget.
  // `fault_report` (optional) receives the injector's accounting.
  const faults::FaultPlan* faults = nullptr;
  faults::FaultReport* fault_report = nullptr;

  // --- scheduler flight recorder (DESIGN.md §13) ------------------------
  // When non-null, the recorder is attached to the run's simulator: every
  // scheduler action (arm/reschedule/disarm/fire) appends one record to its
  // ring, per-kind deterministic counters are exported into `metrics` (when
  // also set) as sched.{arms,reschedules,disarms,fires}{kind=...}, the
  // auditor (when attached) captures a decoded last-N trail into
  // AuditReport::flight_trail on its first violation, and an exception
  // unwinding out of the event loop is rethrown with the trail appended.
  // Recording is pure observation — attaching never changes the run's
  // behaviour or trace digest — and the recorder must outlive the call.
  sim::FlightRecorder* flight_recorder = nullptr;

  // --- checkpoint / restore (sim/checkpoint.h, DESIGN.md §14) -----------
  // checkpoint_every_events > 0: the run pauses between events every N
  // executed events and hands `checkpoint_sink` the serialized CRNCKPT1
  // blob plus the cumulative event count it was taken at. The sink owns
  // persistence (the harness writes it atomically); taking checkpoints
  // never changes the run's behaviour or digests — RunUntilEvents pauses
  // without touching the queue.
  //
  // restore_blob non-null: instead of starting fresh, the run resumes from
  // the blob. The caller must rebuild the *same* run — same scenario
  // (seed, repetition, sizes), same next-hop label, and the same
  // attachment set (audit/metrics/faults/flight recorder all matching the
  // checkpointed run); mismatches fail with an actionable error, never a
  // silent digest fork. `metrics` must be a fresh registry (its saved
  // contents are restored into it). A resumed run is bit-identical — trace
  // digest, metrics digest, audit report — to the uninterrupted one.
  // Packet-span tracing is not checkpointable; `spans` must be null when
  // either field is set.
  std::int64_t checkpoint_every_events = 0;
  std::function<void(const std::string& blob, std::uint64_t events_executed)>
      checkpoint_sink;
  const std::string* restore_blob = nullptr;
};

// Runs ADDC on the given deployed scenario. `options` passes MAC-model
// overrides and (via audit_report) attaches the runtime invariant auditor.
CollectionResult RunAddc(const Scenario& scenario, const RunOptions& options = {});

// Runs the Coolest-path baseline on the same deployment/MAC.
CollectionResult RunCoolest(const Scenario& scenario,
                            routing::TemperatureMetric metric =
                                routing::TemperatureMetric::kAccumulated);

// Shared plumbing: run a CSMA collection over an arbitrary next-hop table.
// Exposed for tests and custom examples (e.g. hand-crafted routes).
CollectionResult RunWithNextHops(const Scenario& scenario,
                                 std::vector<graph::NodeId> next_hop,
                                 const std::string& algorithm_label,
                                 const RunOptions& options = {});

// Convenience: build the scenario for (config, repetition) and run both
// algorithms on the identical deployment.
struct ComparisonResult {
  CollectionResult addc;
  CollectionResult coolest;
};
ComparisonResult RunComparison(const ScenarioConfig& config, std::uint64_t repetition,
                               routing::TemperatureMetric metric =
                                   routing::TemperatureMetric::kAccumulated);

// --- continuous data collection ---------------------------------------
// Repeats the snapshot workload every `interval` for `snapshot_count`
// rounds over the ADDC tree. The offered load is sustainable iff
// per-snapshot completion delays stabilize instead of growing round over
// round — the operational meaning of Theorem 2's capacity bound. The
// smallest sustainable interval ≈ n·B/capacity.
struct ContinuousResult {
  CollectionResult aggregate;           // whole-run MAC stats and diagnostics
  std::vector<double> snapshot_delay_ms;  // completion − creation, per round
  double mean_snapshot_delay_ms = 0.0;
  // Linear-drift estimate: (mean delay of last third − first third) per
  // round; ≈ 0 when the load is inside capacity, strongly positive when the
  // backlog diverges.
  double delay_drift_ms_per_round = 0.0;
  bool sustainable = false;  // completed and drift below 10% of the interval
};
ContinuousResult RunAddcContinuous(const Scenario& scenario, sim::TimeNs interval,
                                   std::int32_t snapshot_count);

// --- determinism verification -----------------------------------------
// Dual-run trace-digest check: executes the identical ADDC run twice and
// compares the auditor's FNV digests. `identical` is the machine-checked
// form of the repo's "same seed ⇒ bit-identical behaviour" claim, which
// every figure-regeneration bench relies on. Used by the integration tests
// and `addc_sim --audit`.
struct DeterminismReport {
  std::uint64_t first_digest = 0;
  std::uint64_t second_digest = 0;
  bool identical = false;
};
DeterminismReport CheckAddcDeterminism(const Scenario& scenario,
                                       const RunOptions& options = {});

}  // namespace crn::core

#endif  // CRN_CORE_COLLECTION_H_
