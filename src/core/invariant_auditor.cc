#include "core/invariant_auditor.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "sim/checkpoint.h"
#include "spectrum/interference.h"

namespace crn::core {

std::string AuditReport::Summary() const {
  std::ostringstream out;
  out << (ok() ? "OK" : "VIOLATIONS") << " — events=" << events_observed
      << " tx_starts=" << tx_starts << " time_violations=" << time_violations
      << " separation=" << separation_violations << "/" << separation_checks
      << " su_sir=" << su_sir_violations << "/" << receptions_checked
      << " pu_protection=" << pu_protection_violations << "/" << pu_checks
      << " routing=" << routing_violations << "/" << routing_audits
      << " digest=" << trace_digest;
  return out.str();
}

InvariantAuditor::InvariantAuditor(const AuditConfig& config)
    : config_(config), receiver_rng_(config.rng_seed) {}

void InvariantAuditor::Attach(sim::Simulator& simulator, mac::CollectionMac& mac,
                              pu::PrimaryNetwork* primary) {
  CRN_CHECK(mac_ == nullptr) << "InvariantAuditor attached twice";
  simulator_ = &simulator;
  mac_ = &mac;
  primary_ = primary;
  if (config_.check_event_time) {
    time_auditor_.Attach(simulator);
  }
  mac.AddTxStartObserver(
      [this](mac::NodeId transmitter, mac::NodeId receiver, sim::TimeNs start,
             sim::TimeNs end) { OnTxStart(transmitter, receiver, start, end); });
  mac.AddTxObserver([this](const mac::TxEvent& event) { OnTxEnd(event); });
}

void InvariantAuditor::BindMetrics(obs::MetricsRegistry& registry) {
  viol_time_ =
      &registry.GetCounter("audit.violations_total", {{"invariant", "event-time"}});
  viol_separation_ =
      &registry.GetCounter("audit.violations_total", {{"invariant", "separation"}});
  viol_su_sir_ =
      &registry.GetCounter("audit.violations_total", {{"invariant", "su-sir"}});
  viol_pu_protection_ = &registry.GetCounter("audit.violations_total",
                                             {{"invariant", "pu-protection"}});
  viol_routing_ =
      &registry.GetCounter("audit.violations_total", {{"invariant", "routing"}});
}

void InvariantAuditor::OnTxStart(mac::NodeId transmitter, mac::NodeId receiver,
                                 sim::TimeNs start, sim::TimeNs end) {
  (void)receiver;
  (void)start;
  (void)end;
  ++report_.tx_starts;
  const geom::Vec2 position = mac_->position(transmitter);
  if (config_.check_min_separation) {
    const double min_separation = config_.min_separation > 0.0
                                      ? config_.min_separation
                                      : mac_->config().pcr;
    const double min_separation_sq = min_separation * min_separation;
    for (const ActiveTx& other : active_) {
      ++report_.separation_checks;
      if (geom::DistanceSquared(other.position, position) < min_separation_sq) {
        ++report_.separation_violations;
        if (viol_separation_ != nullptr) viol_separation_->Add();
        std::ostringstream out;
        out << "t=" << simulator_->now() << ": transmitters " << transmitter
            << " and " << other.transmitter << " concurrently active "
            << geom::Distance(other.position, position) << " m apart (< R_pcr "
            << min_separation << " m)";
        RecordViolation(out.str());
      }
    }
  }
  active_.push_back(ActiveTx{transmitter, position});
  if (config_.check_pu_protection && primary_ != nullptr &&
      config_.pu_check_stride > 0 &&
      report_.tx_starts % config_.pu_check_stride == 0) {
    CheckPuProtection();
  }
}

void InvariantAuditor::CheckPuProtection() {
  // Mirrors CollectionMac::AuditPrimaryReceptions, but re-derived here from
  // first principles (and at transmission starts rather than sampled slots)
  // so a bug in the MAC's own audit cannot mask a protection failure. A
  // violation is counted only when secondary interference flips a PU
  // reception from success to failure — PU-on-PU interference is the
  // primary network's own business (Lemma 2 scopes the guarantee to SUs).
  primary_->SampleReceiverPositions(receiver_rng_);
  const spectrum::PathLoss loss(mac_->config().alpha);
  const double eta = mac_->config().eta_p.linear();
  const double su_power = mac_->config().su_power;
  const double pu_power = primary_->config().power;
  const std::vector<pu::PuId>& active_pus = primary_->active_transmitters();
  for (pu::PuId p : active_pus) {
    const geom::Vec2 rx = primary_->receiver_position(p);
    const double signal = loss.ReceivedPowerSquared(
        pu_power, geom::DistanceSquared(primary_->position(p), rx));
    double interference_pu = 0.0;
    for (pu::PuId q : active_pus) {
      if (q == p) continue;
      interference_pu += loss.ReceivedPowerSquared(
          pu_power, geom::DistanceSquared(primary_->position(q), rx));
    }
    double interference_su = 0.0;
    for (const ActiveTx& tx : active_) {
      interference_su +=
          loss.ReceivedPowerSquared(su_power, geom::DistanceSquared(tx.position, rx));
    }
    ++report_.pu_checks;
    const bool ok_without_su =
        interference_pu <= 0.0 || signal / interference_pu >= eta;
    const bool ok_with_su =
        signal / (interference_pu + interference_su) >= eta;
    if (ok_without_su && !ok_with_su) {
      ++report_.pu_protection_violations;
      if (viol_pu_protection_ != nullptr) viol_pu_protection_->Add();
      std::ostringstream out;
      out << "t=" << simulator_->now() << ": SU interference flipped PU " << p
          << "'s reception below eta_p";
      RecordViolation(out.str());
    }
  }
}

void InvariantAuditor::OnTxEnd(const mac::TxEvent& event) {
  // The trace digest folds in every field a regression could silently skew;
  // a single reordered, re-timed, or re-scored attempt changes it.
  digest_.MixSigned(event.transmitter);
  digest_.MixSigned(event.receiver);
  digest_.MixSigned(event.start);
  digest_.MixSigned(event.end);
  digest_.Mix(static_cast<std::uint64_t>(event.outcome));
  digest_.MixSigned(event.packet.origin);
  digest_.MixSigned(event.packet.created);
  digest_.MixSigned(event.packet.hops);
  digest_.MixSigned(event.packet.snapshot);
  digest_.MixDouble(event.min_sir);

  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].transmitter == event.transmitter) {
      active_[i] = active_.back();
      active_.pop_back();
      break;
    }
  }

  if (!config_.check_su_sir) return;
  // Aborted handoffs (PU returned mid-transmission) and half-duplex /
  // capture losses are modelled behaviours, not SIR-invariant breaches; the
  // Lemma 3 claim is about receptions the physical model scored.
  if (event.outcome == mac::TxOutcome::kSuccess ||
      event.outcome == mac::TxOutcome::kSirFailure) {
    ++report_.receptions_checked;
    if (event.outcome == mac::TxOutcome::kSirFailure ||
        event.min_sir < mac_->config().eta_s.linear()) {
      ++report_.su_sir_violations;
      if (viol_su_sir_ != nullptr) viol_su_sir_->Add();
      std::ostringstream out;
      out << "t=" << simulator_->now() << ": reception " << event.transmitter
          << "->" << event.receiver << " SIR floor " << event.min_sir
          << " below eta_s " << mac_->config().eta_s.linear();
      RecordViolation(out.str());
    }
  }
}

void InvariantAuditor::VerifyRouting() {
  if (!config_.check_routing || mac_ == nullptr) return;
  ++report_.routing_audits;
  const std::int32_t n = mac_->node_count();
  const mac::NodeId sink = mac_->sink();
  for (mac::NodeId v = 0; v < n; ++v) {
    if (v == sink || mac_->IsFailed(v)) continue;
    mac::NodeId cursor = v;
    std::int32_t steps = 0;
    // A live node's route must reach the sink — or dead-end at a failed
    // node awaiting repair — in < n hops; anything longer is a cycle.
    while (cursor != sink && !mac_->IsFailed(cursor)) {
      cursor = mac_->next_hop(cursor);
      if (++steps >= n) {
        ++report_.routing_violations;
        if (viol_routing_ != nullptr) viol_routing_->Add();
        std::ostringstream out;
        out << "t=" << simulator_->now() << ": routing cycle reachable from node "
            << v;
        RecordViolation(out.str());
        break;
      }
    }
  }
}

void InvariantAuditor::BindFlightRecorder(const sim::FlightRecorder* recorder,
                                          std::size_t trail_depth) {
  flight_recorder_ = recorder;
  flight_trail_depth_ = trail_depth;
}

void InvariantAuditor::RecordViolation(std::string message) {
  if (flight_recorder_ != nullptr && report_.flight_trail.empty()) {
    // First violation: snapshot the causal trail before further events
    // rotate it out of the ring.
    report_.flight_trail = flight_recorder_->FormatTrail(flight_trail_depth_);
  }
  if (report_.first_violations.size() < config_.max_recorded_violations) {
    report_.first_violations.push_back(std::move(message));
  }
}

void InvariantAuditor::SaveState(sim::StateWriter& writer) const {
  writer.BeginSection("audit");
  writer.WriteU64(time_auditor_.events_observed());
  writer.WriteU64(time_auditor_.violations());
  writer.WriteI64(time_auditor_.last_time());
  writer.WriteU64(digest_.value());
  sim::WriteRng(writer, receiver_rng_);
  writer.WriteI64(report_.tx_starts);
  writer.WriteI64(report_.separation_checks);
  writer.WriteI64(report_.separation_violations);
  writer.WriteI64(report_.receptions_checked);
  writer.WriteI64(report_.su_sir_violations);
  writer.WriteI64(report_.pu_checks);
  writer.WriteI64(report_.pu_protection_violations);
  writer.WriteI64(report_.routing_audits);
  writer.WriteI64(report_.routing_violations);
  writer.WriteU32(static_cast<std::uint32_t>(report_.first_violations.size()));
  for (const std::string& violation : report_.first_violations) {
    writer.WriteString(violation);
  }
  writer.WriteString(report_.flight_trail);
  writer.WriteU32(static_cast<std::uint32_t>(active_.size()));
  for (const ActiveTx& tx : active_) {
    writer.WriteI32(tx.transmitter);
    writer.WriteDouble(tx.position.x);
    writer.WriteDouble(tx.position.y);
  }
  writer.EndSection();
}

void InvariantAuditor::LoadState(sim::StateReader& reader) {
  CRN_CHECK(simulator_ != nullptr) << "LoadState before Attach()";
  if (!reader.OpenSection("audit")) return;
  const std::uint64_t events_observed = reader.ReadU64();
  const std::uint64_t time_violations = reader.ReadU64();
  const sim::TimeNs last_time = reader.ReadI64();
  const std::uint64_t digest = reader.ReadU64();
  Rng rng;
  sim::ReadRng(reader, rng);
  AuditReport report;
  report.tx_starts = reader.ReadI64();
  report.separation_checks = reader.ReadI64();
  report.separation_violations = reader.ReadI64();
  report.receptions_checked = reader.ReadI64();
  report.su_sir_violations = reader.ReadI64();
  report.pu_checks = reader.ReadI64();
  report.pu_protection_violations = reader.ReadI64();
  report.routing_audits = reader.ReadI64();
  report.routing_violations = reader.ReadI64();
  const std::uint32_t violation_count = reader.ReadU32();
  for (std::uint32_t i = 0; i < violation_count && reader.ok(); ++i) {
    report.first_violations.push_back(reader.ReadString());
  }
  report.flight_trail = reader.ReadString();
  std::vector<ActiveTx> active;
  const std::uint32_t active_count = reader.ReadU32();
  for (std::uint32_t i = 0; i < active_count && reader.ok(); ++i) {
    ActiveTx tx;
    tx.transmitter = reader.ReadI32();
    tx.position.x = reader.ReadDouble();
    tx.position.y = reader.ReadDouble();
    active.push_back(tx);
  }
  reader.EndSection();
  if (!reader.ok()) return;
  time_auditor_.RestoreState(events_observed, time_violations, last_time);
  digest_.RestoreValue(digest);
  receiver_rng_ = rng;
  report_ = std::move(report);
  active_ = std::move(active);
}

const AuditReport& InvariantAuditor::Finalize() {
  CRN_CHECK(mac_ != nullptr) << "Finalize() before Attach()";
  if (finalized_) return report_;
  finalized_ = true;
  VerifyRouting();
  if (config_.check_event_time) {
    report_.events_observed = time_auditor_.events_observed();
    report_.time_violations = static_cast<std::int64_t>(time_auditor_.violations());
    if (viol_time_ != nullptr) viol_time_->Add(report_.time_violations);
  }
  report_.trace_digest = digest_.value();
  return report_;
}

}  // namespace crn::core
