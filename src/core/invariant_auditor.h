// Runtime invariant auditor — the always-on verification layer of the
// correctness tooling (DESIGN.md §"Correctness tooling").
//
// The repo's credibility rests on two machine-checkable claims: the PCR
// theory guarantees every concurrent transmission set satisfies both
// networks' SIR constraints (Lemmas 2–3), and the simulator is
// bit-deterministic per seed. Attached to a Simulator + CollectionMac pair
// before a run, the auditor verifies while the simulation executes:
//
//  * the event clock never decreases (sim::EventTimeAuditor);
//  * concurrently active SU transmitters stay pairwise ≥ R_pcr apart — the
//    R-set precondition carrier sensing must enforce in Algorithm 1's
//    continuous-backoff regime (auto-disabled for the conventional-MAC
//    emulation, whose same-slot collisions are modelled deliberately);
//  * every completed SU reception held SIR ≥ η_s for its whole airtime
//    (Lemma 3's concurrent-set guarantee, via the recorded SIR floor);
//  * SU transmissions never flip an active PU reception from success to
//    failure (Lemma 2), re-derived from the physical interference model at
//    sampled transmission starts with an isolated RNG stream;
//  * the routing table stays acyclic and sink-reaching over live nodes
//    across churn (FailNode / UpdateNextHop) — a route may legitimately
//    dead-end at a failed node awaiting repair, but never cycle.
//
// It also folds every terminated transmission attempt into an
// order-sensitive FNV-1a digest (sim::TraceDigest), so two runs of the same
// seed can be compared bit-for-bit without storing either trace — the
// dual-run determinism check in collection.h and `addc_sim --audit` both
// consume that digest.
//
// The auditor is strictly passive with respect to the simulation: it draws
// randomness only from its own seeded stream and never schedules, cancels,
// or reorders events, so attaching it cannot change a run's behaviour or
// its digest.
#ifndef CRN_CORE_INVARIANT_AUDITOR_H_
#define CRN_CORE_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geom/vec2.h"
#include "mac/collection_mac.h"
#include "obs/metrics.h"
#include "pu/primary_network.h"
#include "sim/audit.h"
#include "sim/flight_recorder.h"
#include "sim/simulator.h"

namespace crn::core {

struct AuditConfig {
  bool check_event_time = true;
  // Pairwise transmitter separation. min_separation 0 uses the MAC's
  // configured R_pcr.
  bool check_min_separation = true;
  double min_separation = 0.0;
  bool check_su_sir = true;
  // PU protection needs a PrimaryNetwork* at Attach (receiver sampling);
  // checked at every `pu_check_stride`-th transmission start.
  bool check_pu_protection = true;
  std::int32_t pu_check_stride = 4;
  bool check_routing = true;
  // Seed of the auditor's private receiver-sampling stream — isolated from
  // every run stream so auditing never perturbs the simulation.
  std::uint64_t rng_seed = 0x5EEDA0D17ULL;
  // Human-readable descriptions are kept for the first few violations only;
  // the counters below are always exact.
  std::size_t max_recorded_violations = 8;
};

struct AuditReport {
  std::uint64_t events_observed = 0;
  std::int64_t time_violations = 0;
  std::int64_t tx_starts = 0;
  std::int64_t separation_checks = 0;
  std::int64_t separation_violations = 0;
  std::int64_t receptions_checked = 0;
  std::int64_t su_sir_violations = 0;
  std::int64_t pu_checks = 0;
  std::int64_t pu_protection_violations = 0;
  std::int64_t routing_audits = 0;
  std::int64_t routing_violations = 0;
  // FNV-1a digest of the TxEvent trace (same seed ⇒ same digest).
  std::uint64_t trace_digest = 0;
  std::vector<std::string> first_violations;
  // Decoded flight-recorder trail captured at the *first* violation — the
  // last-N causal event history leading into it. Empty unless a recorder
  // was bound (BindFlightRecorder) and a violation occurred.
  std::string flight_trail;

  [[nodiscard]] std::int64_t total_violations() const {
    return time_violations + separation_violations + su_sir_violations +
           pu_protection_violations + routing_violations;
  }
  [[nodiscard]] bool ok() const { return total_violations() == 0; }
  // One-line counters summary for CLI / test-failure output.
  [[nodiscard]] std::string Summary() const;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(const AuditConfig& config = {});
  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  // Registers the audit hooks; call once, before the run starts. `primary`
  // may be null, which disables the PU-protection check (it needs mutable
  // access for receiver sampling). The auditor must outlive the run.
  void Attach(sim::Simulator& simulator, mac::CollectionMac& mac,
              pu::PrimaryNetwork* primary = nullptr);

  // Mirrors every violation counter into `registry` as
  // audit.violations_total{invariant=...} — one labeled counter per audited
  // invariant, kept exactly in sync with the report (the addc_sim
  // regression test cross-checks the totals). Call before the run; the
  // registry must outlive the auditor's Finalize().
  void BindMetrics(obs::MetricsRegistry& registry);

  // Binds a flight recorder for violation forensics: the first recorded
  // violation snapshots the recorder's decoded last-N trail into
  // AuditReport::flight_trail, so "separation violated at t=..." arrives
  // with the causal event history that led into it. Purely observational —
  // the recorder is read, never written. Call before the run.
  void BindFlightRecorder(const sim::FlightRecorder* recorder,
                          std::size_t trail_depth = 32);

  // Re-validates the routing table immediately — call after FailNode /
  // UpdateNextHop churn; Finalize() runs it once more regardless.
  void VerifyRouting();

  // Folds the simulator-side counters in and returns the completed report.
  // Idempotent; the run must be finished.
  const AuditReport& Finalize();

  [[nodiscard]] const AuditReport& report() const { return report_; }

  // Checkpoint protocol (sim/checkpoint.h, section "audit"): the report
  // counters, the trace digest accumulator, the private receiver-sampling
  // stream, and the active-transmission watch list. Attach/Bind* must still
  // be called on the fresh run before LoadState.
  void SaveState(sim::StateWriter& writer) const;
  void LoadState(sim::StateReader& reader);

 private:
  struct ActiveTx {
    mac::NodeId transmitter = graph::kInvalidNode;
    geom::Vec2 position;
  };

  void OnTxStart(mac::NodeId transmitter, mac::NodeId receiver, sim::TimeNs start,
                 sim::TimeNs end);
  void OnTxEnd(const mac::TxEvent& event);
  void CheckPuProtection();
  void RecordViolation(std::string message);

  AuditConfig config_;
  AuditReport report_;
  sim::EventTimeAuditor time_auditor_;
  sim::TraceDigest digest_;
  sim::Simulator* simulator_ = nullptr;
  mac::CollectionMac* mac_ = nullptr;
  pu::PrimaryNetwork* primary_ = nullptr;
  Rng receiver_rng_;
  std::vector<ActiveTx> active_;
  bool finalized_ = false;
  // Optional violation-forensics source (BindFlightRecorder).
  const sim::FlightRecorder* flight_recorder_ = nullptr;
  std::size_t flight_trail_depth_ = 32;
  // Optional metric mirrors (BindMetrics); null when no registry is bound.
  obs::Counter* viol_time_ = nullptr;
  obs::Counter* viol_separation_ = nullptr;
  obs::Counter* viol_su_sir_ = nullptr;
  obs::Counter* viol_pu_protection_ = nullptr;
  obs::Counter* viol_routing_ = nullptr;
};

}  // namespace crn::core

#endif  // CRN_CORE_INVARIANT_AUDITOR_H_
