#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace crn::core {

double JainIndex(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    CRN_CHECK(v >= 0.0) << "Jain index expects non-negative values, got " << v;
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero: every flow equally (un)served
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

SampleStats Summarize(std::span<const double> values) {
  SampleStats stats;
  stats.count = values.size();
  if (values.empty()) return stats;
  stats.min = *std::min_element(values.begin(), values.end());
  stats.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - stats.mean) * (v - stats.mean);
    stats.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return stats;
}

}  // namespace crn::core
