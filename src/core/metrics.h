// Small metric helpers shared by the orchestrators, tests, and benches.
#ifndef CRN_CORE_METRICS_H_
#define CRN_CORE_METRICS_H_

#include <span>
#include <vector>

namespace crn::core {

// Jain's fairness index: (Σx)² / (k·Σx²) over non-negative values; 1.0 is
// perfectly fair, 1/k is maximally unfair. Empty input yields 1.0.
double JainIndex(std::span<const double> values);

// Sample mean / unbiased standard deviation / extrema.
struct SampleStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

SampleStats Summarize(std::span<const double> values);

}  // namespace crn::core

#endif  // CRN_CORE_METRICS_H_
