#include "core/pcr.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace crn::core {

const char* ToString(C2Variant variant) {
  switch (variant) {
    case C2Variant::kPaper:
      return "paper";
    case C2Variant::kCorrected:
      return "corrected";
  }
  return "unknown";
}

double C2(double alpha, C2Variant variant) {
  CRN_CHECK(alpha > 2.0) << "alpha=" << alpha;
  const double hex = 6.0 * std::pow(std::sqrt(3.0) / 2.0, -alpha);
  double c2 = 0.0;
  switch (variant) {
    case C2Variant::kPaper:
      c2 = 6.0 + hex * (1.0 / (alpha - 2.0) - 1.0);
      CRN_CHECK(c2 > 0.0) << "the paper's printed c2 is non-positive at alpha="
                          << alpha << " (see DESIGN.md §4); use kCorrected";
      break;
    case C2Variant::kCorrected:
      c2 = 6.0 + hex / (alpha - 2.0);
      break;
  }
  return c2;
}

namespace {

double RangeFromConstraint(double c_power, double eta_linear, double alpha,
                           double radius, C2Variant variant, double margin) {
  CRN_CHECK(margin >= 1.0) << "interference_margin=" << margin;
  const double c2 = C2(alpha, variant);
  return (1.0 + std::pow(margin * c2 * eta_linear / c_power, 1.0 / alpha)) * radius;
}

}  // namespace

double PrimaryProtectionRange(const PcrParams& params, C2Variant variant,
                              double interference_margin) {
  const double c1 = params.pu_power / std::max(params.pu_power, params.su_power);
  return RangeFromConstraint(c1, params.eta_p.linear(), params.alpha,
                             params.pu_radius, variant, interference_margin);
}

double SecondarySuccessRange(const PcrParams& params, C2Variant variant,
                             double interference_margin) {
  const double c3 = params.su_power / std::max(params.pu_power, params.su_power);
  return RangeFromConstraint(c3, params.eta_s.linear(), params.alpha,
                             params.su_radius, variant, interference_margin);
}

double Kappa(const PcrParams& params, C2Variant variant, double interference_margin) {
  CRN_CHECK(params.pu_power > 0.0 && params.su_power > 0.0);
  CRN_CHECK(params.pu_radius > 0.0 && params.su_radius > 0.0);
  return std::max(
      PrimaryProtectionRange(params, variant, interference_margin) / params.su_radius,
      SecondarySuccessRange(params, variant, interference_margin) / params.su_radius);
}

double ProperCarrierSensingRange(const PcrParams& params, C2Variant variant,
                                 double interference_margin) {
  return Kappa(params, variant, interference_margin) * params.su_radius;
}

}  // namespace crn::core
