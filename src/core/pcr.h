// Proper Carrier-sensing Range (PCR), §IV-B of the paper.
//
// Definitions 4.1–4.3: R_pcr is *proper* when every R-set (nodes pairwise
// ≥ R_pcr apart) is a concurrent set (all can transmit simultaneously and
// successfully). Lemmas 2 and 3 derive sufficient conditions:
//
//   R_pcr ≥ (1 + (c2·η_p / c1)^{1/α}) · R      (primary protection)
//   R_pcr ≥ (1 + (c2·η_s / c3)^{1/α}) · r      (secondary success)
//
// with c1 = P_p/max(P_p,P_s), c3 = P_s/max(P_p,P_s), and a constant c2
// bounding the hexagon-packing interference sum. The paper sets
// κ = max of the two normalized bounds and uses R_pcr = κ·r (eq. (16)).
//
// ERRATUM (DESIGN.md §4): the paper prints
//   c2 = 6 + 6·(√3/2)^{-α}·(1/(α−2) − 1),
// but the inequality it invokes is ζ(α−1) − 1 ≤ 1/(α−2), which yields
//   c2 = 6 + 6·(√3/2)^{-α}·(1/(α−2)).
// The printed constant is negative for α ≳ 4.3 and, even where positive,
// yields a range too small to guarantee concurrency (the property tests
// exhibit a counterexample). We expose both variants; all simulation
// defaults use the corrected one.
#ifndef CRN_CORE_PCR_H_
#define CRN_CORE_PCR_H_

#include "common/units.h"

namespace crn::core {

enum class C2Variant {
  kPaper,      // as printed in Lemma 2 (valid only where it stays positive)
  kCorrected,  // with the zeta-function bound applied correctly
};

const char* ToString(C2Variant variant);

struct PcrParams {
  double pu_power = 10.0;   // P_p
  double su_power = 10.0;   // P_s
  double pu_radius = 10.0;  // R
  double su_radius = 10.0;  // r
  SirThreshold eta_p = SirThreshold::FromDb(8.0);
  SirThreshold eta_s = SirThreshold::FromDb(8.0);
  double alpha = 4.0;       // must exceed 2
};

// The packing constant c2 of Lemma 2 for the given variant. Throws when the
// paper variant is non-positive at this α (α ≳ 4.3), where the printed
// formula stops being meaningful.
double C2(double alpha, C2Variant variant);

// κ of eq. (16): PCR in units of the SU radius r.
//
// `interference_margin` scales the aggregate-interference budget (the c2·η
// product) before the range is solved: 1.0 is the paper's tight
// hexagon-packing bound — §IV-B objective (iii), "the carrier-sensing range
// is as small as possible, which implies SUs can obtain more spectrum
// opportunities". A designer without that analysis protects PUs with a
// conventional safety margin instead (2.0 = budget twice the worst-case
// aggregate), which is how the Coolest baseline's sensing range is modeled;
// because p_o is exponential in the sensed area, even that modest margin
// costs the baseline ~2–3x in spectrum opportunities.
double Kappa(const PcrParams& params, C2Variant variant,
             double interference_margin = 1.0);

// R_pcr = κ·r in meters — the carrier-sensing range ADDC configures.
double ProperCarrierSensingRange(const PcrParams& params, C2Variant variant,
                                 double interference_margin = 1.0);

// The two individual lemma bounds (useful for Fig. 4, which shows how each
// constraint responds to its own parameters).
double PrimaryProtectionRange(const PcrParams& params, C2Variant variant,
                              double interference_margin = 1.0);  // Lemma 2
double SecondarySuccessRange(const PcrParams& params, C2Variant variant,
                             double interference_margin = 1.0);   // Lemma 3

}  // namespace crn::core

#endif  // CRN_CORE_PCR_H_
