#include "core/scenario.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace crn::core {

PcrParams ScenarioConfig::MakePcrParams() const {
  PcrParams params;
  params.pu_power = pu_power;
  params.su_power = su_power;
  params.pu_radius = pu_radius;
  params.su_radius = su_radius;
  params.eta_p = SirThreshold::FromDb(eta_p_db);
  params.eta_s = SirThreshold::FromDb(eta_s_db);
  params.alpha = alpha;
  return params;
}

pu::PrimaryConfig ScenarioConfig::MakePrimaryConfig() const {
  pu::PrimaryConfig config;
  config.count = num_pus;
  config.power = pu_power;
  config.radius = pu_radius;
  config.activity = pu_activity;
  config.slot = slot;
  config.process = pu_activity_process;
  config.mean_burst_slots = pu_mean_burst_slots;
  return config;
}

ScenarioConfig ScenarioConfig::PaperDefaults() { return ScenarioConfig{}; }

ScenarioConfig ScenarioConfig::ScaledDefaults(double scale) {
  CRN_CHECK(scale > 0.0 && scale <= 1.0) << "scale=" << scale;
  ScenarioConfig config;
  config.num_sus = static_cast<std::int32_t>(std::lround(config.num_sus * scale));
  config.num_pus = static_cast<std::int32_t>(std::lround(config.num_pus * scale));
  config.area_side *= std::sqrt(scale);  // area scales linearly with n and N
  return config;
}

Scenario::Scenario(const ScenarioConfig& config, std::uint64_t repetition)
    : Scenario(config, repetition, ScenarioPrefab::Build(config, repetition)) {}

Scenario::Scenario(const ScenarioConfig& config, std::uint64_t repetition,
                   std::shared_ptr<const ScenarioPrefab> prefab)
    : config_(config), repetition_(repetition), prefab_(std::move(prefab)) {
  CRN_CHECK(prefab_ != nullptr);
  CRN_CHECK(prefab_->key == PrefabKey::Of(config, repetition))
      << "prefab key mismatch: the supplied prefab was built for a different "
      << "geometry than (config, repetition=" << repetition
      << ") — sharing it would simulate the wrong deployment";
  kappa_ = Kappa(config.MakePcrParams(), config.c2_variant);
  pcr_ = kappa_ * config.su_radius;
}

pu::PrimaryNetwork Scenario::MakePrimaryNetwork() const {
  return pu::PrimaryNetwork(config_.MakePrimaryConfig(), prefab_->area,
                            prefab_->pu_positions);
}

Rng Scenario::MakeRunRng() const {
  return Rng(config_.seed).Stream("run", repetition_);
}

}  // namespace crn::core
