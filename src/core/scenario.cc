#include "core/scenario.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "geom/deployment.h"

namespace crn::core {

PcrParams ScenarioConfig::MakePcrParams() const {
  PcrParams params;
  params.pu_power = pu_power;
  params.su_power = su_power;
  params.pu_radius = pu_radius;
  params.su_radius = su_radius;
  params.eta_p = SirThreshold::FromDb(eta_p_db);
  params.eta_s = SirThreshold::FromDb(eta_s_db);
  params.alpha = alpha;
  return params;
}

pu::PrimaryConfig ScenarioConfig::MakePrimaryConfig() const {
  pu::PrimaryConfig config;
  config.count = num_pus;
  config.power = pu_power;
  config.radius = pu_radius;
  config.activity = pu_activity;
  config.slot = slot;
  config.process = pu_activity_process;
  config.mean_burst_slots = pu_mean_burst_slots;
  return config;
}

ScenarioConfig ScenarioConfig::PaperDefaults() { return ScenarioConfig{}; }

ScenarioConfig ScenarioConfig::ScaledDefaults(double scale) {
  CRN_CHECK(scale > 0.0 && scale <= 1.0) << "scale=" << scale;
  ScenarioConfig config;
  config.num_sus = static_cast<std::int32_t>(std::lround(config.num_sus * scale));
  config.num_pus = static_cast<std::int32_t>(std::lround(config.num_pus * scale));
  config.area_side *= std::sqrt(scale);  // area scales linearly with n and N
  return config;
}

Scenario::Scenario(const ScenarioConfig& config, std::uint64_t repetition)
    : config_(config),
      repetition_(repetition),
      area_(geom::Aabb::Square(config.area_side)) {
  CRN_CHECK(config.num_sus > 0);
  CRN_CHECK(config.num_pus >= 0);
  CRN_CHECK(config.area_side > 0.0);
  CRN_CHECK(config.su_radius > 0.0);

  kappa_ = Kappa(config.MakePcrParams(), config.c2_variant);
  pcr_ = kappa_ * config.su_radius;

  const Rng root(config.seed);
  Rng su_rng = root.Stream("su-deployment", repetition);
  Rng pu_rng = root.Stream("pu-deployment", repetition);

  // Resample the SU layout until the unit-disk graph is connected. At the
  // paper's densities (~16 expected neighbors) a disconnected draw is rare;
  // the attempt cap turns a mis-parameterized config into a clear error
  // instead of a hang.
  for (std::int32_t attempt = 0;; ++attempt) {
    CRN_CHECK(attempt < config.max_deployment_attempts)
        << "could not draw a connected secondary network in "
        << config.max_deployment_attempts << " attempts; the configured "
        << "density (n=" << config.num_sus << ", A=" << config.area()
        << ", r=" << config.su_radius << ") is likely sub-critical";
    su_positions_.clear();
    su_positions_.push_back(area_.Center());  // base station
    auto sus = geom::UniformDeployment(config.num_sus, area_, su_rng);
    su_positions_.insert(su_positions_.end(), sus.begin(), sus.end());
    if (geom::IsUnitDiskConnected(su_positions_, area_, config.su_radius)) break;
  }
  graph_ = std::make_unique<graph::UnitDiskGraph>(su_positions_, area_,
                                                  config.su_radius);
  pu_positions_ = geom::UniformDeployment(config.num_pus, area_, pu_rng);
}

pu::PrimaryNetwork Scenario::MakePrimaryNetwork() const {
  return pu::PrimaryNetwork(config_.MakePrimaryConfig(), area_, pu_positions_);
}

Rng Scenario::MakeRunRng() const {
  return Rng(config_.seed).Stream("run", repetition_);
}

}  // namespace crn::core
