// Scenario assembly: turns one ScenarioConfig (the paper's parameter vector)
// plus a repetition index into a concrete deployed network — SU positions
// with the base station at the area center, a connected unit-disk secondary
// graph, PU positions, and the PCR — ready for a collection run.
#ifndef CRN_CORE_SCENARIO_H_
#define CRN_CORE_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/pcr.h"
#include "core/scenario_prefab.h"
#include "geom/vec2.h"
#include "graph/cds_tree.h"
#include "graph/unit_disk_graph.h"
#include "pu/primary_network.h"
#include "sim/time.h"

namespace crn::core {

// The full parameter vector of §V. Defaults are the paper's Fig. 6 caption
// values; ScaledDefaults() shrinks the instance preserving every density
// (n/A, N/A), which is what keeps the delay *shape* intact at lower cost.
struct ScenarioConfig {
  // Secondary network.
  std::int32_t num_sus = 2000;  // n (base station excluded)
  double area_side = 250.0;     // A = area_side²
  double su_power = 10.0;       // P_s
  double su_radius = 10.0;      // r
  double eta_s_db = 8.0;        // η_s in dB
  // Primary network.
  std::int32_t num_pus = 400;   // N
  double pu_power = 10.0;       // P_p
  double pu_radius = 10.0;      // R
  double pu_activity = 0.3;     // p_t
  double eta_p_db = 8.0;        // η_p in dB
  // Activity process: the paper's evaluation uses i.i.d. Bernoulli slots;
  // kMarkov keeps the same stationary p_t but bursty on/off runs (A6).
  pu::ActivityProcess pu_activity_process = pu::ActivityProcess::kIid;
  double pu_mean_burst_slots = 4.0;
  // Shared physical parameters.
  double alpha = 4.0;
  sim::TimeNs slot = sim::kMillisecond;                    // τ
  sim::TimeNs contention_window = sim::kMillisecond / 2;   // τ_c
  // Algorithmic knobs. Simulations default to the paper's printed c2 (the
  // operating point its evaluation used — the corrected constant inflates
  // the PCR until p_o ~ 1e-5 and no evaluation, the authors' included,
  // could finish; see DESIGN.md §4 and ablation A2).
  C2Variant c2_variant = C2Variant::kPaper;
  bool fairness_wait = true;
  // --- Coolest-baseline MAC model (DESIGN.md §3, EXPERIMENTS.md) --------
  // The baseline is a routing protocol [17] over a conventional CSMA MAC.
  // PU protection is mandatory for every CRN, so it must carrier-sense far
  // enough to protect primary receivers — but deriving the *minimal* safe
  // range is exactly ADDC's §IV-B contribution (objective (iii)). The
  // baseline therefore budgets a standard 2x aggregate-interference safety
  // margin in the same Lemma-2/3 construction; since p_o shrinks
  // exponentially in the sensed area, that margin costs it ~2-3x in
  // spectrum opportunities. Setting coolest_sensing_factor > 0 overrides
  // the range to factor·r outright (ablation A4: under-sensing "wins" on
  // delay only by violating PU protection). The discrete contention slots
  // plus carrier-detection latency produce the same-slot collisions and
  // retransmissions of §I challenge 3, which Algorithm 1's continuous
  // backoff avoids by construction.
  double baseline_interference_margin = 2.0;
  double coolest_sensing_factor = 0.0;
  sim::TimeNs baseline_backoff_granularity = 50 * sim::kMicrosecond;
  sim::TimeNs baseline_sensing_latency = 10 * sim::kMicrosecond;
  std::int32_t audit_stride = 16;
  sim::TimeNs max_sim_time = 7'200 * sim::kSecond;
  // SIR evaluation engine selector (spectrum/interference_field.h). The
  // cached engine is bit-identical to the direct one on every scenario —
  // this knob exists for the property tests and for before/after work
  // accounting in bench_sim_throughput, not for accuracy trade-offs.
  bool direct_sir_engine = false;
  // Scheduler backend selector (sim/simulator.h). The calendar queue is
  // bit-identical to the reference heap on every scenario — this knob exists
  // for the determinism A/B tests and the throughput bench's before/after
  // comparison, mirroring direct_sir_engine.
  bool reference_scheduler = false;
  // Reproducibility.
  std::uint64_t seed = 0x5EEDADDCULL;
  std::int32_t max_deployment_attempts = 500;

  [[nodiscard]] double area() const { return area_side * area_side; }
  [[nodiscard]] double c0() const { return area() / static_cast<double>(num_sus); }
  [[nodiscard]] PcrParams MakePcrParams() const;
  [[nodiscard]] pu::PrimaryConfig MakePrimaryConfig() const;

  // Fig. 6 caption parameters (n = 2000, A = 250×250, N = 400, ...).
  static ScenarioConfig PaperDefaults();
  // Density-preserving shrink: n, N, and A scale together by `scale`.
  static ScenarioConfig ScaledDefaults(double scale = 0.25);
};

// One deployed instance. The geometry (positions, graph, CDS tree) lives in
// an immutable ScenarioPrefab: the single-argument constructor builds a
// private one (deployment resamples SU positions until the secondary
// unit-disk graph is connected — the paper's standing assumption; PU
// positions need no such constraint), while the prefab-taking constructor
// shares one across scenarios that differ only in MAC/spectrum parameters
// (see ScenarioPrefabCache). The derived quantities that do depend on those
// parameters — κ and the PCR — stay per-Scenario.
class Scenario {
 public:
  Scenario(const ScenarioConfig& config, std::uint64_t repetition);
  // Shares `prefab` instead of deploying. CRN_CHECKs that the prefab's key
  // matches PrefabKey::Of(config, repetition) — a mismatched prefab would
  // silently simulate the wrong geometry.
  Scenario(const ScenarioConfig& config, std::uint64_t repetition,
           std::shared_ptr<const ScenarioPrefab> prefab);

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t repetition() const { return repetition_; }
  [[nodiscard]] geom::Aabb area() const { return prefab_->area; }
  // Index 0 is the base station (area center); 1..n are SUs.
  [[nodiscard]] const std::vector<geom::Vec2>& su_positions() const {
    return prefab_->su_positions;
  }
  [[nodiscard]] graph::NodeId sink() const { return 0; }
  [[nodiscard]] const graph::UnitDiskGraph& secondary_graph() const {
    return *prefab_->graph;
  }
  // CDS collection tree rooted at the sink (§IV-A) — prebuilt with the
  // geometry so ADDC runs on shared prefabs never rebuild it.
  [[nodiscard]] const graph::CdsTree& collection_tree() const {
    return *prefab_->tree;
  }
  [[nodiscard]] const std::vector<geom::Vec2>& pu_positions() const {
    return prefab_->pu_positions;
  }
  [[nodiscard]] const std::shared_ptr<const ScenarioPrefab>& prefab() const {
    return prefab_;
  }
  [[nodiscard]] double pcr() const { return pcr_; }
  [[nodiscard]] double kappa() const { return kappa_; }

  // Fresh primary network (activity state is mutable, so each run builds
  // its own from the deployed positions).
  [[nodiscard]] pu::PrimaryNetwork MakePrimaryNetwork() const;

  // Root RNG for this (seed, repetition); runs derive named streams.
  [[nodiscard]] Rng MakeRunRng() const;

 private:
  ScenarioConfig config_;
  std::uint64_t repetition_;
  std::shared_ptr<const ScenarioPrefab> prefab_;
  double pcr_ = 0.0;
  double kappa_ = 0.0;
};

}  // namespace crn::core

#endif  // CRN_CORE_SCENARIO_H_
