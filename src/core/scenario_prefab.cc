#include "core/scenario_prefab.h"

#include <bit>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "core/scenario.h"
#include "geom/deployment.h"

namespace crn::core {

PrefabKey PrefabKey::Of(const ScenarioConfig& config,
                        std::uint64_t repetition) {
  PrefabKey key;
  key.seed = config.seed;
  key.repetition = repetition;
  key.num_sus = config.num_sus;
  key.num_pus = config.num_pus;
  key.area_side_bits = std::bit_cast<std::uint64_t>(config.area_side);
  key.su_radius_bits = std::bit_cast<std::uint64_t>(config.su_radius);
  key.max_deployment_attempts = config.max_deployment_attempts;
  return key;
}

std::shared_ptr<const ScenarioPrefab> ScenarioPrefab::Build(
    const ScenarioConfig& config, std::uint64_t repetition) {
  CRN_CHECK(config.num_sus > 0);
  CRN_CHECK(config.num_pus >= 0);
  CRN_CHECK(config.area_side > 0.0);
  CRN_CHECK(config.su_radius > 0.0);

  auto prefab = std::make_shared<ScenarioPrefab>();
  prefab->key = PrefabKey::Of(config, repetition);
  prefab->area = geom::Aabb::Square(config.area_side);

  const Rng root(config.seed);
  Rng su_rng = root.Stream("su-deployment", repetition);
  Rng pu_rng = root.Stream("pu-deployment", repetition);

  // Resample the SU layout until the unit-disk graph is connected. At the
  // paper's densities (~16 expected neighbors) a disconnected draw is rare;
  // the attempt cap turns a mis-parameterized config into a clear error
  // instead of a hang.
  for (std::int32_t attempt = 0;; ++attempt) {
    CRN_CHECK(attempt < config.max_deployment_attempts)
        << "could not draw a connected secondary network in "
        << config.max_deployment_attempts << " attempts; the configured "
        << "density (n=" << config.num_sus << ", A=" << config.area()
        << ", r=" << config.su_radius << ") is likely sub-critical";
    prefab->su_positions.clear();
    prefab->su_positions.push_back(prefab->area.Center());  // base station
    auto sus = geom::UniformDeployment(config.num_sus, prefab->area, su_rng);
    prefab->su_positions.insert(prefab->su_positions.end(), sus.begin(),
                                sus.end());
    if (geom::IsUnitDiskConnected(prefab->su_positions, prefab->area,
                                  config.su_radius)) {
      break;
    }
  }
  prefab->graph = std::make_unique<const graph::UnitDiskGraph>(
      prefab->su_positions, prefab->area, config.su_radius);
  prefab->tree = std::make_unique<const graph::CdsTree>(*prefab->graph,
                                                        /*root=*/0);
  prefab->pu_positions =
      geom::UniformDeployment(config.num_pus, prefab->area, pu_rng);
  return prefab;
}

std::uint64_t ScenarioPrefab::GeometryDigest() const {
  // SU positions are covered by the graph digest (the graph stores them);
  // fold in the PU layout and the tree on top.
  std::uint64_t hash = graph->StructureDigest();
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFFU;
      hash *= 0x100000001B3ULL;
    }
  };
  mix(tree->StructureDigest());
  mix(static_cast<std::uint64_t>(pu_positions.size()));
  for (const geom::Vec2& p : pu_positions) {
    mix(std::bit_cast<std::uint64_t>(p.x));
    mix(std::bit_cast<std::uint64_t>(p.y));
  }
  return hash;
}

std::int64_t ScenarioPrefab::ApproxBytes() const {
  const auto n = static_cast<std::int64_t>(su_positions.size());
  std::int64_t bytes = 0;
  // Position vectors: the prefab's own copies plus the graph's.
  bytes += static_cast<std::int64_t>(
      (su_positions.size() * 2 + pu_positions.size()) * sizeof(geom::Vec2));
  // Graph CSR: offsets (n + 1) plus both directions of every edge.
  bytes += (n + 1) * static_cast<std::int64_t>(sizeof(std::int32_t));
  bytes += 2 * graph->edge_count() *
           static_cast<std::int64_t>(sizeof(graph::NodeId));
  // Tree arrays: role + parent + depth per node, one child id per tree edge,
  // one child-vector header per node.
  bytes += n * static_cast<std::int64_t>(sizeof(graph::NodeRole) +
                                         2 * sizeof(graph::NodeId) +
                                         sizeof(std::vector<graph::NodeId>));
  bytes += (n > 0 ? n - 1 : 0) *
           static_cast<std::int64_t>(sizeof(graph::NodeId));
  return bytes;
}

std::shared_ptr<const ScenarioPrefab> ScenarioPrefabCache::Get(
    const ScenarioConfig& config, std::uint64_t repetition) {
  const PrefabKey key = PrefabKey::Of(config, repetition);
  Entry* entry = nullptr;
  bool first_request = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Entry>& slot = entries_[key];
    if (slot == nullptr) {
      // Counted at insertion, not at build completion, so the split is a
      // pure function of the request sequence's key set: misses = distinct
      // keys, hits = requests - misses, at every jobs value.
      slot = std::make_unique<Entry>();
      first_request = true;
      ++stats_.misses;
    } else {
      ++stats_.hits;
    }
    entry = slot.get();
  }
  std::call_once(entry->once, [&] {
    std::shared_ptr<const ScenarioPrefab> built =
        ScenarioPrefab::Build(config, repetition);
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.bytes += built->ApproxBytes();
    entry->prefab = std::move(built);
  });
  if (verify_ && !first_request) {
    const std::shared_ptr<const ScenarioPrefab> fresh =
        ScenarioPrefab::Build(config, repetition);
    CRN_CHECK(fresh->GeometryDigest() == entry->prefab->GeometryDigest())
        << "prefab cache equivalence violated (seed=" << config.seed
        << ", repetition=" << repetition
        << "): cached geometry differs from a fresh build";
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.verified;
  }
  return entry->prefab;
}

ScenarioPrefabCache::Stats ScenarioPrefabCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace crn::core
