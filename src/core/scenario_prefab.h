// Scenario prefab: the deployment-determined, immutable part of a scenario
// — SU/PU positions, the connected unit-disk secondary graph, and the CDS
// collection tree — split out of Scenario so sweep cells that share the
// same geometry can share one build.
//
// Keying rule (DESIGN.md §15): geometry is a pure function of exactly
// (seed, repetition, num_sus, num_pus, area_side, su_radius,
// max_deployment_attempts). Every other ScenarioConfig field — powers, SIR
// thresholds, PU activity, MAC timing, algorithmic knobs — feeds the
// simulation but never the deployment RNG streams, the connectivity
// resampling loop, the graph, or the tree. PrefabKey captures that subset
// bit-exactly (doubles by bit pattern), so four of the six Fig.-6 sweep
// axes (τ_c, p_a, PU power, SIR thresholds) map every point of a sweep to
// the same prefab.
//
// Invalidation is by immutability: a prefab is never mutated after Build(),
// so a cache needs no eviction or versioning — a key either names exactly
// this geometry forever or is a different key.
#ifndef CRN_CORE_SCENARIO_PREFAB_H_
#define CRN_CORE_SCENARIO_PREFAB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "geom/vec2.h"
#include "graph/cds_tree.h"
#include "graph/unit_disk_graph.h"

namespace crn::core {

struct ScenarioConfig;  // core/scenario.h

// The geometry-determining subset of (ScenarioConfig, repetition). Doubles
// are compared by bit pattern: prefab reuse requires *identical* geometry,
// not approximately-equal geometry.
struct PrefabKey {
  std::uint64_t seed = 0;
  std::uint64_t repetition = 0;
  std::int32_t num_sus = 0;
  std::int32_t num_pus = 0;
  std::uint64_t area_side_bits = 0;
  std::uint64_t su_radius_bits = 0;
  std::int32_t max_deployment_attempts = 0;

  static PrefabKey Of(const ScenarioConfig& config, std::uint64_t repetition);

  friend auto operator<=>(const PrefabKey&, const PrefabKey&) = default;
};

// One immutable deployed geometry. Shared across Scenario instances via
// shared_ptr<const ScenarioPrefab>; nothing here is mutated after Build().
struct ScenarioPrefab {
  PrefabKey key;
  geom::Aabb area;
  // Index 0 is the base station (area center); 1..n are SUs.
  std::vector<geom::Vec2> su_positions;
  std::vector<geom::Vec2> pu_positions;
  std::unique_ptr<const graph::UnitDiskGraph> graph;
  std::unique_ptr<const graph::CdsTree> tree;  // rooted at the base station

  // Deploys (resampling until the secondary graph is connected), builds the
  // graph and the CDS tree. Pure function of the key fields — the CHECKed
  // contract the cache's equivalence mode re-verifies.
  static std::shared_ptr<const ScenarioPrefab> Build(
      const ScenarioConfig& config, std::uint64_t repetition);

  // FNV-1a digest over positions, graph CSR, and tree structure; equal
  // digests certify a bit-identical prefab.
  [[nodiscard]] std::uint64_t GeometryDigest() const;

  // Heap footprint estimate for the prefab.bytes counter: vector payloads
  // and CSR arrays, not allocator overhead. Deterministic given the key.
  [[nodiscard]] std::int64_t ApproxBytes() const;
};

// Content-addressed, thread-safe prefab cache for sweep engines. Each
// distinct PrefabKey is built exactly once (concurrent requesters block on
// the builder); the counters are therefore deterministic at every jobs
// value: misses = number of distinct keys requested, hits = requests -
// misses, bytes = sum of ApproxBytes over built prefabs — all independent
// of scheduling, so they are safe to export through the digest-compared
// MetricsRegistry.
class ScenarioPrefabCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t bytes = 0;
    // Equivalence mode only: cache hits re-verified against a fresh build.
    std::int64_t verified = 0;
  };

  // `verify` turns on the digest-verified equivalence mode: every cache hit
  // rebuilds the prefab from scratch and CRN_CHECKs GeometryDigest()
  // equality — cached ≡ rebuilt, proven per hit. Test/CI mode; the rebuild
  // obviously forfeits the cache's speedup.
  explicit ScenarioPrefabCache(bool verify = false) : verify_(verify) {}

  ScenarioPrefabCache(const ScenarioPrefabCache&) = delete;
  ScenarioPrefabCache& operator=(const ScenarioPrefabCache&) = delete;

  // Returns the shared prefab for (config, repetition), building it if this
  // is the first request for its key.
  std::shared_ptr<const ScenarioPrefab> Get(const ScenarioConfig& config,
                                            std::uint64_t repetition);

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const ScenarioPrefab> prefab;
  };

  bool verify_;
  mutable std::mutex mutex_;
  std::map<PrefabKey, std::unique_ptr<Entry>> entries_;
  Stats stats_;
};

}  // namespace crn::core

#endif  // CRN_CORE_SCENARIO_PREFAB_H_
