#include "core/theory.h"

#include <cmath>

#include "common/check.h"
#include "geom/packing.h"

namespace crn::core {

double BetaX(double x) { return geom::Beta(x); }

double BackboneWithinPcrBound(double kappa) {
  CRN_CHECK(kappa > 0.0);
  return BetaX(kappa) + 12.0 * BetaX(kappa + 1.0);
}

double MaxTreeDegreeBound(std::int64_t num_sus, double su_radius, double c0) {
  CRN_CHECK(num_sus > 0);
  CRN_CHECK(su_radius > 0.0);
  CRN_CHECK(c0 > 0.0);
  const double e2 = std::exp(2.0);
  return std::log(static_cast<double>(num_sus)) +
         M_PI * su_radius * su_radius * (e2 - 1.0) / (2.0 * c0);
}

double SpectrumOpportunityProbability(double pcr, std::int64_t num_pus,
                                      double area, double pu_activity) {
  CRN_CHECK(pcr > 0.0);
  CRN_CHECK(num_pus >= 0);
  CRN_CHECK(area > 0.0);
  CRN_CHECK(pu_activity >= 0.0 && pu_activity <= 1.0);
  if (pu_activity >= 1.0 && num_pus > 0) return 0.0;
  const double expected_pus_in_pcr =
      M_PI * pcr * pcr * static_cast<double>(num_pus) / area;
  return std::pow(1.0 - pu_activity, expected_pus_in_pcr);
}

sim::TimeNs ExpectedOpportunityWait(sim::TimeNs slot, double p_o) {
  CRN_CHECK(p_o > 0.0) << "an SU needs a positive spectrum-access probability";
  return static_cast<sim::TimeNs>(static_cast<double>(slot) / p_o);
}

namespace {

double ServiceSlots(double delta, double kappa) {
  // 2Δβ_κ + 24β_{κ+1} − 1 from Theorem 1 (Δ = 1 recovers Lemma 8).
  return 2.0 * delta * BetaX(kappa) + 24.0 * BetaX(kappa + 1.0) - 1.0;
}

}  // namespace

sim::TimeNs Theorem1ServiceBound(double delta, double kappa, sim::TimeNs slot,
                                 double p_o) {
  CRN_CHECK(delta >= 1.0);
  CRN_CHECK(p_o > 0.0);
  return static_cast<sim::TimeNs>(ServiceSlots(delta, kappa) *
                                  static_cast<double>(slot) / p_o);
}

sim::TimeNs Lemma8ServiceBound(double kappa, sim::TimeNs slot, double p_o) {
  return Theorem1ServiceBound(1.0, kappa, slot, p_o);
}

sim::TimeNs Theorem2DelayBound(std::int64_t num_sus, double delta,
                               std::int64_t sink_degree, double kappa,
                               sim::TimeNs slot, double p_o) {
  CRN_CHECK(num_sus > 0);
  CRN_CHECK(sink_degree >= 0 && sink_degree <= num_sus);
  const double tail = static_cast<double>(num_sus - sink_degree);
  return Theorem1ServiceBound(delta, kappa, slot, p_o) +
         static_cast<sim::TimeNs>(tail) * Lemma8ServiceBound(kappa, slot, p_o);
}

double Theorem2CapacityFraction(double kappa, double p_o) {
  CRN_CHECK(p_o > 0.0);
  return p_o / ServiceSlots(1.0, kappa);
}

}  // namespace crn::core
