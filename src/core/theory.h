// Closed-form performance bounds of §IV-D (Lemmas 5–8, Theorems 1–2).
// These functions are the paper's analysis, not the simulation; tests
// compare simulated behaviour against them.
#ifndef CRN_CORE_THEORY_H_
#define CRN_CORE_THEORY_H_

#include <cstdint>

#include "sim/time.h"

namespace crn::core {

// β_x of Lemma 4/5: maximum number of points with mutual distance ≥ 1 in a
// disk of radius x (β_x = 2πx²/√3 + πx + 1).
double BetaX(double x);

// Lemma 5: upper bound on dominators + connectors within an SU's PCR,
// β_κ + 12·β_{κ+1}.
double BackboneWithinPcrBound(double kappa);

// Lemma 6: Δ ≤ log n + π r²(e² − 1)/(2 c0) with probability 1, where Δ is
// the maximum degree of the CDS-based collection tree and c0 = A/n.
double MaxTreeDegreeBound(std::int64_t num_sus, double su_radius, double c0);

// Lemma 7: p_o = (1 − p_t)^{π (κ r)² N / A}, the per-slot probability that
// no PU within the PCR is active; the expected wait for a spectrum
// opportunity is τ / p_o.
double SpectrumOpportunityProbability(double pcr, std::int64_t num_pus,
                                      double area, double pu_activity);
sim::TimeNs ExpectedOpportunityWait(sim::TimeNs slot, double p_o);

// Theorem 1: any SU with data transmits at least one packet to its parent
// within (2Δβ_κ + 24β_{κ+1} − 1)·τ/p_o.
sim::TimeNs Theorem1ServiceBound(double delta, double kappa, sim::TimeNs slot,
                                 double p_o);

// Lemma 8: once only backbone nodes hold packets, per-packet service is
// bounded by (2β_κ + 24β_{κ+1} − 1)·τ/p_o.
sim::TimeNs Lemma8ServiceBound(double kappa, sim::TimeNs slot, double p_o);

// Theorem 2: total collection delay is bounded by
//   Theorem1ServiceBound + (n − Δ_b)·Lemma8ServiceBound,
// where Δ_b is the degree of the base station in the tree. Capacity is then
// n·B/delay ≥ p_o·W/(2β_κ + 24β_{κ+1} − 1) — order-optimal since W is the
// trivial upper bound.
sim::TimeNs Theorem2DelayBound(std::int64_t num_sus, double delta,
                               std::int64_t sink_degree, double kappa,
                               sim::TimeNs slot, double p_o);

// Capacity lower bound as a fraction of the bandwidth W.
double Theorem2CapacityFraction(double kappa, double p_o);

}  // namespace crn::core

#endif  // CRN_CORE_THEORY_H_
