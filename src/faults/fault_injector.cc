#include "faults/fault_injector.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "graph/repair.h"
#include "sim/checkpoint.h"

namespace crn::faults {

std::int64_t FaultReport::injected_total() const {
  std::int64_t total = 0;
  for (const std::int64_t count : injected) total += count;
  return total;
}

std::string FaultReport::Summary() const {
  std::ostringstream out;
  out << "injected " << injected_total() << " fault events (";
  bool first = true;
  for (int k = 0; k < kFaultKindCount; ++k) {
    if (injected[k] == 0) continue;
    if (!first) out << ", ";
    out << ToString(static_cast<FaultKind>(k)) << " " << injected[k];
    first = false;
  }
  if (first) out << "none";
  out << "); " << repairs_attempted << " repair passes, " << reattached_total
      << " reattached, " << cascade_escalations << " cascade escalations, "
      << orphaned_now << " orphaned";
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan, Rng rng)
    : plan_(std::move(plan)), rng_(rng) {}

void FaultInjector::AddRepairObserver(std::function<void()> observer) {
  CRN_CHECK(observer != nullptr);
  repair_observers_.push_back(std::move(observer));
}

void FaultInjector::Attach(sim::Simulator& simulator, mac::CollectionMac& mac,
                           const graph::UnitDiskGraph& graph,
                           pu::PrimaryNetwork* primary, obs::MetricsRegistry* metrics) {
  CRN_CHECK(simulator_ == nullptr) << "FaultInjector attached twice";
  CRN_CHECK(graph.node_count() == mac.node_count())
      << "graph has " << graph.node_count() << " nodes, mac has "
      << mac.node_count();
  timeline_ = CompileFaultTimeline(plan_, rng_, graph.node_count(), mac.sink());
  if (timeline_.empty()) return;  // contract: empty plan == injector absent

  simulator_ = &simulator;
  mac_ = &mac;
  graph_ = &graph;
  primary_ = primary;
  metrics_ = metrics;

  bfs_ = graph::BreadthFirstLayering(graph, mac.sink());
  broken_since_.assign(static_cast<std::size_t>(graph.node_count()), -1);
  base_false_alarm_ = mac.config().sensing_false_alarm;
  base_missed_detection_ = mac.config().sensing_missed_detection;
  if (primary_ != nullptr) base_pu_activity_ = primary_->config().activity;

  for (const FaultEvent& event : timeline_) {
    if (event.kind == FaultKind::kPuActivityStart ||
        event.kind == FaultKind::kPuActivityEnd) {
      CRN_CHECK(primary_ != nullptr)
          << "fault plan perturbs PU activity but no primary network attached";
    }
  }
  timeline_seqs_.assign(timeline_.size(), 0);
  // Under restore the same timeline recompiles from the same stream; the
  // still-pending events are re-claimed by LoadState instead of scheduled.
  if (simulator.restoring()) return;
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    const FaultEvent& event = timeline_[i];
    timeline_seqs_[i] = simulator.ScheduleOnce(
        event.time, sim::EventPriority::kDefault, "faults.timeline", event.node,
        [this, i] { OnTimelineFire(i); });
  }
}

void FaultInjector::OnTimelineFire(std::size_t index) {
  timeline_seqs_[index] = 0;
  Apply(timeline_[index]);
}

void FaultInjector::OnRepairFire(graph::NodeId trigger) {
  // FIFO per node: every repair uses the same delay, so the first matching
  // entry is always the earliest-scheduled pass.
  const auto it = std::find_if(
      pending_repairs_.begin(), pending_repairs_.end(),
      [trigger](const auto& p) { return p.first == trigger; });
  CRN_DCHECK(it != pending_repairs_.end());
  pending_repairs_.erase(it);
  RunRepairPass(trigger);
}

void FaultInjector::Apply(const FaultEvent& event) {
  ++report_.injected[static_cast<int>(event.kind)];
  if (metrics_ != nullptr) {
    metrics_->GetCounter("faults.injected_total", {{"kind", ToString(event.kind)}})
        .Add(1);
  }
  switch (event.kind) {
    case FaultKind::kCrash: {
      const graph::NodeId node = event.node;
      mac_->FailNode(node);
      broken_since_[node] = simulator_->now();
      // The whole subtree below the crash loses its route at this instant;
      // stamp it so time-to-repair is measured from the break, not from the
      // repair pass that heals it.
      const graph::NodeId n = graph_->node_count();
      for (graph::NodeId v = 0; v < n; ++v) {
        if (mac_->IsFailed(v) || broken_since_[v] >= 0 || v == mac_->sink()) continue;
        graph::NodeId cursor = v;
        std::int32_t steps = 0;
        while (cursor != mac_->sink()) {
          if (mac_->IsFailed(cursor) || ++steps > n) {
            broken_since_[v] = simulator_->now();
            break;
          }
          cursor = mac_->next_hop(cursor);
        }
      }
      pending_repairs_.emplace_back(
          node, simulator_->ScheduleOnceAfter(
                    plan_.repair_delay, sim::EventPriority::kDefault,
                    "faults.repair", node, [this, node] { OnRepairFire(node); }));
      break;
    }
    case FaultKind::kRecover:
      mac_->RecoverNode(event.node);
      ++report_.recoveries;
      // The rejoined node's stored next hop may be stale, and orphans may
      // now have a path through it — reconcile the whole table.
      RunRepairPass(graph::kInvalidNode);
      break;
    case FaultKind::kSensingBurstStart:
      ++active_bursts_;
      mac_->SetSensingErrorRates(event.false_alarm, event.missed_detection);
      break;
    case FaultKind::kSensingBurstEnd:
      CRN_DCHECK(active_bursts_ > 0);
      if (--active_bursts_ == 0) {
        mac_->SetSensingErrorRates(base_false_alarm_, base_missed_detection_);
      }
      break;
    case FaultKind::kPuActivityStart:
      ++active_pu_perturbations_;
      primary_->OverrideActivity(event.pu_activity);
      break;
    case FaultKind::kPuActivityEnd:
      CRN_DCHECK(active_pu_perturbations_ > 0);
      if (--active_pu_perturbations_ == 0) {
        primary_->OverrideActivity(base_pu_activity_);
      }
      break;
  }
}

void FaultInjector::RunRepairPass(graph::NodeId trigger) {
  ++report_.repairs_attempted;
  const graph::NodeId n = graph_->node_count();
  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  std::vector<graph::NodeId> next_hop(static_cast<std::size_t>(n));
  std::int32_t failed_count = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    alive[v] = mac_->IsFailed(v) ? 0 : 1;
    next_hop[v] = mac_->next_hop(v);
    if (!alive[v]) ++failed_count;
  }

  // Local repair handles the common case — one standing failure — with
  // one-hop knowledge; anything harder (orphans left behind, simultaneous
  // failures, post-recovery reconciliation) escalates to the cascade.
  graph::RepairPlan plan;
  bool escalated = false;
  if (trigger != graph::kInvalidNode && failed_count == 1 && mac_->IsFailed(trigger)) {
    plan = graph::PlanLocalRepair(*graph_, bfs_, next_hop, alive, trigger);
    if (!plan.complete()) {
      escalated = true;
      plan = graph::PlanCascadeRepair(*graph_, next_hop, alive, mac_->sink());
    }
  } else {
    escalated = failed_count > 0;  // reconciliation after a recovery is not one
    plan = graph::PlanCascadeRepair(*graph_, next_hop, alive, mac_->sink());
  }
  if (escalated) ++report_.cascade_escalations;

  for (const auto& [node, new_hop] : plan.repaired) {
    mac_->UpdateNextHop(node, new_hop);
  }
  report_.reattached_total += static_cast<std::int64_t>(plan.repaired.size());
  report_.orphaned_now = static_cast<std::int64_t>(plan.orphaned.size());

  // Every marked node whose route is clean again (reattached by this pass,
  // or healed by an earlier recovery) closes its outage window now.
  std::vector<char> orphaned(static_cast<std::size_t>(n), 0);
  for (const graph::NodeId v : plan.orphaned) orphaned[v] = 1;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (broken_since_[v] < 0 || orphaned[v] || !alive[v]) continue;
    if (metrics_ != nullptr) {
      metrics_->GetHistogram("repair.time_to_repair_ns")
          .Record(simulator_->now() - broken_since_[v]);
    }
    broken_since_[v] = -1;
  }

  if (metrics_ != nullptr) {
    metrics_->GetCounter("repair.passes_total").Add(1);
    metrics_->GetCounter("repair.reattached_total")
        .Add(static_cast<std::int64_t>(plan.repaired.size()));
    metrics_->GetCounter("repair.escalations_total").Add(escalated ? 1 : 0);
    metrics_->GetGauge("repair.orphaned_now")
        .Set(static_cast<std::int64_t>(plan.orphaned.size()));
  }
  for (const auto& observer : repair_observers_) observer();
}

void FaultInjector::SaveState(sim::StateWriter& writer) const {
  writer.BeginSection("faults");
  sim::WriteRng(writer, rng_);
  for (const std::int64_t count : report_.injected) writer.WriteI64(count);
  writer.WriteI64(report_.repairs_attempted);
  writer.WriteI64(report_.reattached_total);
  writer.WriteI64(report_.cascade_escalations);
  writer.WriteI64(report_.recoveries);
  writer.WriteI64(report_.orphaned_now);
  writer.WriteDouble(base_false_alarm_);
  writer.WriteDouble(base_missed_detection_);
  writer.WriteDouble(base_pu_activity_);
  writer.WriteI32(active_bursts_);
  writer.WriteI32(active_pu_perturbations_);
  writer.WriteU32(static_cast<std::uint32_t>(broken_since_.size()));
  for (const sim::TimeNs since : broken_since_) writer.WriteI64(since);
  std::uint32_t pending_timeline = 0;
  for (const sim::EventId seq : timeline_seqs_) {
    if (seq != 0) ++pending_timeline;
  }
  writer.WriteU32(pending_timeline);
  for (std::size_t i = 0; i < timeline_seqs_.size(); ++i) {
    if (timeline_seqs_[i] == 0) continue;
    writer.WriteU32(static_cast<std::uint32_t>(i));
    writer.WriteU64(timeline_seqs_[i]);
  }
  writer.WriteU32(static_cast<std::uint32_t>(pending_repairs_.size()));
  for (const auto& [node, seq] : pending_repairs_) {
    writer.WriteI32(node);
    writer.WriteU64(seq);
  }
  writer.EndSection();
}

void FaultInjector::LoadState(sim::StateReader& reader) {
  if (!reader.OpenSection("faults")) return;
  std::array<std::uint64_t, 4> rng_words{};
  for (std::uint64_t& word : rng_words) word = reader.ReadU64();
  FaultReport report;
  for (std::int64_t& count : report.injected) count = reader.ReadI64();
  report.repairs_attempted = reader.ReadI64();
  report.reattached_total = reader.ReadI64();
  report.cascade_escalations = reader.ReadI64();
  report.recoveries = reader.ReadI64();
  report.orphaned_now = reader.ReadI64();
  const double base_false_alarm = reader.ReadDouble();
  const double base_missed_detection = reader.ReadDouble();
  const double base_pu_activity = reader.ReadDouble();
  const std::int32_t active_bursts = reader.ReadI32();
  const std::int32_t active_pu_perturbations = reader.ReadI32();
  const std::uint32_t broken_count = reader.ReadU32();
  if (reader.ok() && broken_count != broken_since_.size()) {
    reader.EndSection();
    return;
  }
  std::vector<sim::TimeNs> broken_since(broken_count, -1);
  for (sim::TimeNs& since : broken_since) since = reader.ReadI64();
  const std::uint32_t pending_timeline = reader.ReadU32();
  std::vector<std::pair<std::uint32_t, sim::EventId>> timeline_pending(
      pending_timeline);
  for (std::uint32_t i = 0; i < pending_timeline && reader.ok(); ++i) {
    timeline_pending[i].first = reader.ReadU32();
    timeline_pending[i].second = reader.ReadU64();
  }
  const std::uint32_t repair_count = reader.ReadU32();
  std::vector<std::pair<graph::NodeId, sim::EventId>> pending_repairs(
      repair_count);
  for (std::uint32_t i = 0; i < repair_count && reader.ok(); ++i) {
    pending_repairs[i].first = reader.ReadI32();
    pending_repairs[i].second = reader.ReadU64();
  }
  reader.EndSection();
  if (!reader.ok()) return;
  for (const auto& [index, seq] : timeline_pending) {
    CRN_CHECK(index < timeline_.size())
        << "checkpoint references fault-timeline event " << index
        << " but the recompiled timeline has " << timeline_.size()
        << " — the restored run used a different fault plan or seed";
  }

  rng_.RestoreState(rng_words[0], rng_words[1], rng_words[2], rng_words[3]);
  report_ = report;
  base_false_alarm_ = base_false_alarm;
  base_missed_detection_ = base_missed_detection;
  base_pu_activity_ = base_pu_activity;
  active_bursts_ = active_bursts;
  active_pu_perturbations_ = active_pu_perturbations;
  broken_since_ = std::move(broken_since);
  for (const auto& [index, seq] : timeline_pending) {
    timeline_seqs_[index] = seq;
    const std::size_t i = index;
    simulator_->RestoreOnce(seq, sim::EventPriority::kDefault,
                            "faults.timeline", timeline_[i].node,
                            sim::EventFn([this, i] { OnTimelineFire(i); }));
  }
  pending_repairs_ = std::move(pending_repairs);
  for (const auto& [node, seq] : pending_repairs_) {
    const graph::NodeId trigger = node;
    simulator_->RestoreOnce(seq, sim::EventPriority::kDefault, "faults.repair",
                            trigger,
                            sim::EventFn([this, trigger] { OnRepairFire(trigger); }));
  }
}

}  // namespace crn::faults
