#include "faults/fault_injector.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "graph/repair.h"

namespace crn::faults {

std::int64_t FaultReport::injected_total() const {
  std::int64_t total = 0;
  for (const std::int64_t count : injected) total += count;
  return total;
}

std::string FaultReport::Summary() const {
  std::ostringstream out;
  out << "injected " << injected_total() << " fault events (";
  bool first = true;
  for (int k = 0; k < kFaultKindCount; ++k) {
    if (injected[k] == 0) continue;
    if (!first) out << ", ";
    out << ToString(static_cast<FaultKind>(k)) << " " << injected[k];
    first = false;
  }
  if (first) out << "none";
  out << "); " << repairs_attempted << " repair passes, " << reattached_total
      << " reattached, " << cascade_escalations << " cascade escalations, "
      << orphaned_now << " orphaned";
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan, Rng rng)
    : plan_(std::move(plan)), rng_(rng) {}

void FaultInjector::AddRepairObserver(std::function<void()> observer) {
  CRN_CHECK(observer != nullptr);
  repair_observers_.push_back(std::move(observer));
}

void FaultInjector::Attach(sim::Simulator& simulator, mac::CollectionMac& mac,
                           const graph::UnitDiskGraph& graph,
                           pu::PrimaryNetwork* primary, obs::MetricsRegistry* metrics) {
  CRN_CHECK(simulator_ == nullptr) << "FaultInjector attached twice";
  CRN_CHECK(graph.node_count() == mac.node_count())
      << "graph has " << graph.node_count() << " nodes, mac has "
      << mac.node_count();
  timeline_ = CompileFaultTimeline(plan_, rng_, graph.node_count(), mac.sink());
  if (timeline_.empty()) return;  // contract: empty plan == injector absent

  simulator_ = &simulator;
  mac_ = &mac;
  graph_ = &graph;
  primary_ = primary;
  metrics_ = metrics;

  bfs_ = graph::BreadthFirstLayering(graph, mac.sink());
  broken_since_.assign(static_cast<std::size_t>(graph.node_count()), -1);
  base_false_alarm_ = mac.config().sensing_false_alarm;
  base_missed_detection_ = mac.config().sensing_missed_detection;
  if (primary_ != nullptr) base_pu_activity_ = primary_->config().activity;

  for (const FaultEvent& event : timeline_) {
    if (event.kind == FaultKind::kPuActivityStart ||
        event.kind == FaultKind::kPuActivityEnd) {
      CRN_CHECK(primary_ != nullptr)
          << "fault plan perturbs PU activity but no primary network attached";
    }
    simulator.ScheduleOnce(event.time, sim::EventPriority::kDefault,
                           "faults.timeline", event.node,
                           [this, event] { Apply(event); });
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  ++report_.injected[static_cast<int>(event.kind)];
  if (metrics_ != nullptr) {
    metrics_->GetCounter("faults.injected_total", {{"kind", ToString(event.kind)}})
        .Add(1);
  }
  switch (event.kind) {
    case FaultKind::kCrash: {
      const graph::NodeId node = event.node;
      mac_->FailNode(node);
      broken_since_[node] = simulator_->now();
      // The whole subtree below the crash loses its route at this instant;
      // stamp it so time-to-repair is measured from the break, not from the
      // repair pass that heals it.
      const graph::NodeId n = graph_->node_count();
      for (graph::NodeId v = 0; v < n; ++v) {
        if (mac_->IsFailed(v) || broken_since_[v] >= 0 || v == mac_->sink()) continue;
        graph::NodeId cursor = v;
        std::int32_t steps = 0;
        while (cursor != mac_->sink()) {
          if (mac_->IsFailed(cursor) || ++steps > n) {
            broken_since_[v] = simulator_->now();
            break;
          }
          cursor = mac_->next_hop(cursor);
        }
      }
      simulator_->ScheduleOnceAfter(plan_.repair_delay,
                                    sim::EventPriority::kDefault,
                                    "faults.repair", node,
                                    [this, node] { RunRepairPass(node); });
      break;
    }
    case FaultKind::kRecover:
      mac_->RecoverNode(event.node);
      ++report_.recoveries;
      // The rejoined node's stored next hop may be stale, and orphans may
      // now have a path through it — reconcile the whole table.
      RunRepairPass(graph::kInvalidNode);
      break;
    case FaultKind::kSensingBurstStart:
      ++active_bursts_;
      mac_->SetSensingErrorRates(event.false_alarm, event.missed_detection);
      break;
    case FaultKind::kSensingBurstEnd:
      CRN_DCHECK(active_bursts_ > 0);
      if (--active_bursts_ == 0) {
        mac_->SetSensingErrorRates(base_false_alarm_, base_missed_detection_);
      }
      break;
    case FaultKind::kPuActivityStart:
      ++active_pu_perturbations_;
      primary_->OverrideActivity(event.pu_activity);
      break;
    case FaultKind::kPuActivityEnd:
      CRN_DCHECK(active_pu_perturbations_ > 0);
      if (--active_pu_perturbations_ == 0) {
        primary_->OverrideActivity(base_pu_activity_);
      }
      break;
  }
}

void FaultInjector::RunRepairPass(graph::NodeId trigger) {
  ++report_.repairs_attempted;
  const graph::NodeId n = graph_->node_count();
  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  std::vector<graph::NodeId> next_hop(static_cast<std::size_t>(n));
  std::int32_t failed_count = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    alive[v] = mac_->IsFailed(v) ? 0 : 1;
    next_hop[v] = mac_->next_hop(v);
    if (!alive[v]) ++failed_count;
  }

  // Local repair handles the common case — one standing failure — with
  // one-hop knowledge; anything harder (orphans left behind, simultaneous
  // failures, post-recovery reconciliation) escalates to the cascade.
  graph::RepairPlan plan;
  bool escalated = false;
  if (trigger != graph::kInvalidNode && failed_count == 1 && mac_->IsFailed(trigger)) {
    plan = graph::PlanLocalRepair(*graph_, bfs_, next_hop, alive, trigger);
    if (!plan.complete()) {
      escalated = true;
      plan = graph::PlanCascadeRepair(*graph_, next_hop, alive, mac_->sink());
    }
  } else {
    escalated = failed_count > 0;  // reconciliation after a recovery is not one
    plan = graph::PlanCascadeRepair(*graph_, next_hop, alive, mac_->sink());
  }
  if (escalated) ++report_.cascade_escalations;

  for (const auto& [node, new_hop] : plan.repaired) {
    mac_->UpdateNextHop(node, new_hop);
  }
  report_.reattached_total += static_cast<std::int64_t>(plan.repaired.size());
  report_.orphaned_now = static_cast<std::int64_t>(plan.orphaned.size());

  // Every marked node whose route is clean again (reattached by this pass,
  // or healed by an earlier recovery) closes its outage window now.
  std::vector<char> orphaned(static_cast<std::size_t>(n), 0);
  for (const graph::NodeId v : plan.orphaned) orphaned[v] = 1;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (broken_since_[v] < 0 || orphaned[v] || !alive[v]) continue;
    if (metrics_ != nullptr) {
      metrics_->GetHistogram("repair.time_to_repair_ns")
          .Record(simulator_->now() - broken_since_[v]);
    }
    broken_since_[v] = -1;
  }

  if (metrics_ != nullptr) {
    metrics_->GetCounter("repair.passes_total").Add(1);
    metrics_->GetCounter("repair.reattached_total")
        .Add(static_cast<std::int64_t>(plan.repaired.size()));
    metrics_->GetCounter("repair.escalations_total").Add(escalated ? 1 : 0);
    metrics_->GetGauge("repair.orphaned_now")
        .Set(static_cast<std::int64_t>(plan.orphaned.size()));
  }
  for (const auto& observer : repair_observers_) observer();
}

}  // namespace crn::faults
