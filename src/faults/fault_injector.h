// FaultInjector — drives a compiled fault timeline through a running
// collection and heals what it breaks (DESIGN.md §9).
//
// Attach() compiles the plan against the run's topology and schedules one
// simulator event per fault at kDefault priority. Crashes call
// CollectionMac::FailNode and, `repair_delay` later, a self-healing pass:
// graph::PlanLocalRepair for a single standing failure, escalating to
// graph::PlanCascadeRepair (multi-hop re-rooting) whenever local repair
// leaves orphans or several failures/recoveries overlap. Repairs are applied
// through UpdateNextHop in plan order, so the routing table is acyclic at
// every step. Sensing bursts swap the MAC's detector error rates; PU
// perturbations override the primary duty cycle. Everything is accounted in
// a FaultReport and (optionally) an obs::MetricsRegistry.
//
// Contract: an empty plan compiles to an empty timeline and Attach() becomes
// a no-op — a run with such an injector is byte-identical to a run without
// one (pinned by tests/faults/fault_injector_test.cc).
#ifndef CRN_FAULTS_FAULT_INJECTOR_H_
#define CRN_FAULTS_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "faults/fault_plan.h"
#include "graph/unit_disk_graph.h"
#include "mac/collection_mac.h"
#include "obs/metrics.h"
#include "pu/primary_network.h"
#include "sim/simulator.h"

namespace crn::faults {

// What the injector did to one run. All counters are totals over the run.
struct FaultReport {
  std::array<std::int64_t, kFaultKindCount> injected{};  // by FaultKind
  std::int64_t repairs_attempted = 0;    // self-healing passes run
  std::int64_t reattached_total = 0;     // next-hop updates applied
  std::int64_t cascade_escalations = 0;  // passes that needed cascade repair
  std::int64_t recoveries = 0;           // nodes brought back
  std::int64_t orphaned_now = 0;         // partition size after the last pass

  [[nodiscard]] std::int64_t injected_total() const;
  // One-line human summary ("injected 12 faults (8 crash, ...), ...").
  [[nodiscard]] std::string Summary() const;
};

class FaultInjector {
 public:
  // Compiles nothing yet; the plan is captured by value so callers may
  // discard theirs. `rng` seeds the generator streams (pass the run rng's
  // "faults" stream for reproducibility from the scenario seed).
  FaultInjector(FaultPlan plan, Rng rng);

  // Compiles the timeline against the attached topology and schedules every
  // fault. No-op (and schedules nothing) when the timeline is empty.
  // `primary` may be null iff the plan has no PU perturbations; `metrics`
  // may be null. All referenced objects must outlive the injector.
  void Attach(sim::Simulator& simulator, mac::CollectionMac& mac,
              const graph::UnitDiskGraph& graph, pu::PrimaryNetwork* primary,
              obs::MetricsRegistry* metrics);

  // Fires after every completed self-healing pass (repairs applied, report
  // updated) — the invariant auditor hooks VerifyRouting() here.
  void AddRepairObserver(std::function<void()> observer);

  // True when Attach() scheduled at least one fault.
  [[nodiscard]] bool armed() const { return !timeline_.empty(); }
  [[nodiscard]] const std::vector<FaultEvent>& timeline() const { return timeline_; }
  [[nodiscard]] const FaultReport& report() const { return report_; }

  // Checkpoint protocol (sim/checkpoint.h, section "faults"): the report,
  // per-node outage windows, burst/perturbation nesting depths, the
  // generator stream, and every pending timeline/repair event. Call Attach
  // first on the restored run — under Simulator::restoring() it compiles
  // the timeline but leaves scheduling to LoadState's re-claims.
  void SaveState(sim::StateWriter& writer) const;
  void LoadState(sim::StateReader& reader);

 private:
  void Apply(const FaultEvent& event);
  void OnTimelineFire(std::size_t index);
  void OnRepairFire(graph::NodeId trigger);
  void RunRepairPass(graph::NodeId trigger);

  FaultPlan plan_;
  Rng rng_;
  std::vector<FaultEvent> timeline_;
  FaultReport report_;

  sim::Simulator* simulator_ = nullptr;
  mac::CollectionMac* mac_ = nullptr;
  const graph::UnitDiskGraph* graph_ = nullptr;
  pu::PrimaryNetwork* primary_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;

  graph::BfsLayering bfs_;  // static hop levels for local repair
  std::vector<sim::TimeNs> broken_since_;  // -1 = not currently broken
  double base_false_alarm_ = 0.0;
  double base_missed_detection_ = 0.0;
  double base_pu_activity_ = 0.0;
  std::int32_t active_bursts_ = 0;
  std::int32_t active_pu_perturbations_ = 0;
  std::vector<std::function<void()>> repair_observers_;
  // Checkpoint bookkeeping: each timeline event's pending sequence number
  // (0 once fired, parallel to timeline_) and the in-flight repair passes.
  std::vector<sim::EventId> timeline_seqs_;
  std::vector<std::pair<graph::NodeId, sim::EventId>> pending_repairs_;
};

}  // namespace crn::faults

#endif  // CRN_FAULTS_FAULT_INJECTOR_H_
