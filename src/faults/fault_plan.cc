#include "faults/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <queue>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "sim/event_key.h"

namespace crn::faults {

namespace {

// Converts a millisecond count (possibly fractional) to TimeNs. Plans are
// authored in ms; all internal arithmetic is integral nanoseconds.
sim::TimeNs MsToNs(double ms) {
  return static_cast<sim::TimeNs>(ms * static_cast<double>(sim::kMillisecond));
}

// Exponential inter-arrival draw for a Poisson process at `rate_per_s`,
// in nanoseconds. Uses 1 - U so the log argument is never zero.
sim::TimeNs ExponentialGapNs(Rng& rng, double rate_per_s) {
  const double seconds = -std::log(1.0 - rng.UniformDouble()) / rate_per_s;
  return static_cast<sim::TimeNs>(seconds * static_cast<double>(sim::kSecond));
}

}  // namespace

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kSensingBurstStart:
      return "sensing_burst_start";
    case FaultKind::kSensingBurstEnd:
      return "sensing_burst_end";
    case FaultKind::kPuActivityStart:
      return "pu_activity_start";
    case FaultKind::kPuActivityEnd:
      return "pu_activity_end";
  }
  return "unknown";
}

bool ParsePlanText(const std::string& text, FaultPlan& plan, std::string& error) {
  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  // Cursor-based tokenizer so every error carries the 1-based column of the
  // offending construct: `token_start` tracks where the token most recently
  // looked at begins (or the line end when a token was missing entirely).
  std::size_t cursor = 0;
  std::size_t token_start = 0;
  auto next_token = [&](std::string& token) {
    while (cursor < line.size() &&
           std::isspace(static_cast<unsigned char>(line[cursor]))) {
      ++cursor;
    }
    token_start = cursor;
    if (cursor >= line.size()) return false;
    while (cursor < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[cursor]))) {
      ++cursor;
    }
    token = line.substr(token_start, cursor - token_start);
    return true;
  };
  auto fail = [&](const std::string& message) {
    std::ostringstream out;
    out << "line " << line_number << ", column " << (token_start + 1) << ": "
        << message;
    error = out.str();
    return false;
  };
  auto read_double = [&](double& value, const std::string& usage) {
    std::string token;
    if (!next_token(token)) return fail(usage);
    char* end = nullptr;
    value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return fail("'" + token + "' is not a number (" + usage + ")");
    }
    return true;
  };
  auto read_int = [&](std::int64_t& value, const std::string& usage) {
    std::string token;
    if (!next_token(token)) return fail(usage);
    char* end = nullptr;
    value = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size()) {
      return fail("'" + token + "' is not an integer (" + usage + ")");
    }
    return true;
  };
  while (std::getline(lines, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    cursor = 0;
    token_start = 0;
    std::string word;
    if (!next_token(word)) continue;  // blank / comment-only line

    if (word == "at") {
      double ms = 0.0;
      std::string what;
      if (!read_double(ms, "expected: at <ms> <fault> ...")) return false;
      if (ms < 0.0) return fail("fault time must be >= 0 ms");
      if (!next_token(what)) return fail("expected: at <ms> <fault> ...");
      const sim::TimeNs when = MsToNs(ms);
      if (what == "crash" || what == "recover") {
        std::int64_t node = 0;
        if (!read_int(node, "expected: at <ms> " + what + " <node>")) return false;
        FaultEvent event;
        event.time = when;
        event.kind = what == "crash" ? FaultKind::kCrash : FaultKind::kRecover;
        event.node = static_cast<graph::NodeId>(node);
        plan.scripted.push_back(event);
      } else if (what == "sensing_burst") {
        const std::string usage =
            "expected: at <ms> sensing_burst <fa> <md> <duration_ms>";
        double fa = 0.0;
        double md = 0.0;
        double duration_ms = 0.0;
        if (!read_double(fa, usage)) return false;
        if (fa < 0.0 || fa > 1.0) return fail("sensing rates must be in [0, 1]");
        if (!read_double(md, usage)) return false;
        if (md < 0.0 || md > 1.0) return fail("sensing rates must be in [0, 1]");
        if (!read_double(duration_ms, usage)) return false;
        if (duration_ms <= 0.0) return fail("burst duration must be > 0 ms");
        FaultEvent start;
        start.time = when;
        start.kind = FaultKind::kSensingBurstStart;
        start.false_alarm = fa;
        start.missed_detection = md;
        plan.scripted.push_back(start);
        FaultEvent end;
        end.time = when + MsToNs(duration_ms);
        end.kind = FaultKind::kSensingBurstEnd;
        plan.scripted.push_back(end);
      } else if (what == "pu_activity") {
        const std::string usage = "expected: at <ms> pu_activity <p> <duration_ms>";
        double activity = 0.0;
        double duration_ms = 0.0;
        if (!read_double(activity, usage)) return false;
        if (activity < 0.0 || activity > 1.0) {
          return fail("pu activity must be in [0, 1]");
        }
        if (!read_double(duration_ms, usage)) return false;
        if (duration_ms <= 0.0) return fail("perturbation duration must be > 0 ms");
        FaultEvent start;
        start.time = when;
        start.kind = FaultKind::kPuActivityStart;
        start.pu_activity = activity;
        plan.scripted.push_back(start);
        FaultEvent end;
        end.time = when + MsToNs(duration_ms);
        end.kind = FaultKind::kPuActivityEnd;
        plan.scripted.push_back(end);
      } else {
        return fail("unknown fault '" + what +
                    "' (want crash|recover|sensing_burst|pu_activity)");
      }
    } else if (word == "gen") {
      std::string what;
      if (!next_token(what)) return fail("expected: gen <generator> ...");
      if (what == "crash") {
        const std::string usage = "expected: gen crash <rate_per_s> <recover_after_ms>";
        CrashGenerator gen;
        double recover_after_ms = 0.0;
        if (!read_double(gen.rate_per_s, usage)) return false;
        if (gen.rate_per_s <= 0.0) return fail("crash rate must be > 0 /s");
        if (!read_double(recover_after_ms, usage)) return false;
        gen.recover_after = recover_after_ms < 0.0 ? -1 : MsToNs(recover_after_ms);
        plan.crash_generators.push_back(gen);
      } else if (what == "sensing_burst") {
        const std::string usage =
            "expected: gen sensing_burst <rate_per_s> <fa> <md> <duration_ms>";
        SensingBurstGenerator gen;
        double duration_ms = 0.0;
        if (!read_double(gen.rate_per_s, usage)) return false;
        if (gen.rate_per_s <= 0.0) return fail("burst rate must be > 0 /s");
        if (!read_double(gen.false_alarm, usage)) return false;
        if (gen.false_alarm < 0.0 || gen.false_alarm > 1.0) {
          return fail("sensing rates must be in [0, 1]");
        }
        if (!read_double(gen.missed_detection, usage)) return false;
        if (gen.missed_detection < 0.0 || gen.missed_detection > 1.0) {
          return fail("sensing rates must be in [0, 1]");
        }
        if (!read_double(duration_ms, usage)) return false;
        if (duration_ms <= 0.0) return fail("burst duration must be > 0 ms");
        gen.duration = MsToNs(duration_ms);
        plan.burst_generators.push_back(gen);
      } else {
        return fail("unknown generator '" + what + "' (want crash|sensing_burst)");
      }
    } else if (word == "option") {
      std::string name;
      if (!next_token(name)) return fail("expected: option <name> <value>");
      if (name == "horizon_ms") {
        double ms = 0.0;
        if (!read_double(ms, "expected: option horizon_ms <ms>")) return false;
        if (ms <= 0.0) return fail("horizon_ms wants a value > 0");
        plan.horizon = MsToNs(ms);
      } else if (name == "repair_delay_ms") {
        double ms = 0.0;
        if (!read_double(ms, "expected: option repair_delay_ms <ms>")) return false;
        if (ms < 0.0) return fail("repair_delay_ms wants a value >= 0");
        plan.repair_delay = MsToNs(ms);
      } else if (name == "retx_budget") {
        std::int64_t k = 0;
        if (!read_int(k, "expected: option retx_budget <k>")) return false;
        if (k < 0) return fail("retx_budget wants an integer >= 0");
        plan.retx_budget = static_cast<std::int32_t>(k);
      } else {
        return fail("unknown option '" + name +
                    "' (want horizon_ms|repair_delay_ms|retx_budget)");
      }
    } else {
      return fail("unknown directive '" + word + "' (want at|gen|option)");
    }
    std::string extra;
    if (next_token(extra)) return fail("trailing token '" + extra + "'");
  }
  return true;
}

FaultPlan LoadPlanFile(const std::string& path) {
  std::ifstream in(path);
  CRN_CHECK(in.good()) << "cannot open fault plan '" << path << "'";
  std::ostringstream contents;
  contents << in.rdbuf();
  FaultPlan plan;
  std::string error;
  CRN_CHECK(ParsePlanText(contents.str(), plan, error))
      << "fault plan '" << path << "': " << error;
  return plan;
}

namespace {

// Heap item during compilation, ordered through the repo's one shared event
// key (sim/event_key.h) — the same (time, class, sequence) total order the
// simulator's scheduler backends use, with FaultKind as the class band and
// the deterministic insertion order as the sequence tie-break.
struct PendingEvent {
  FaultEvent event;
  std::int64_t seq = 0;
  // kCrash events from a generator have no victim yet; it is drawn at pop
  // time so the live set reflects every earlier crash and recovery.
  std::int32_t crash_generator = -1;

  [[nodiscard]] sim::EventKey key() const {
    return sim::EventKey{event.time, static_cast<std::int32_t>(event.kind),
                         static_cast<std::uint64_t>(seq)};
  }

  bool operator>(const PendingEvent& other) const { return key() > other.key(); }
};

}  // namespace

std::vector<FaultEvent> CompileFaultTimeline(const FaultPlan& plan, const Rng& rng,
                                             graph::NodeId node_count,
                                             graph::NodeId sink) {
  CRN_CHECK(node_count > 0) << "node_count=" << node_count;
  CRN_CHECK(sink >= 0 && sink < node_count) << "sink " << sink << " out of range";
  CRN_CHECK(plan.horizon > 0) << "horizon=" << plan.horizon;
  CRN_CHECK(plan.repair_delay >= 0) << "repair_delay=" << plan.repair_delay;
  CRN_CHECK(plan.retx_budget >= 0) << "retx_budget=" << plan.retx_budget;

  std::priority_queue<PendingEvent, std::vector<PendingEvent>, std::greater<>> heap;
  std::int64_t seq = 0;
  auto push = [&](const FaultEvent& event, std::int32_t crash_generator = -1) {
    heap.push(PendingEvent{event, seq++, crash_generator});
  };

  for (const FaultEvent& event : plan.scripted) {
    CRN_CHECK(event.time >= 0) << "scripted fault at t=" << event.time << " ns";
    if (event.kind == FaultKind::kCrash || event.kind == FaultKind::kRecover) {
      CRN_CHECK(event.node >= 0 && event.node < node_count)
          << "scripted " << ToString(event.kind) << " of node " << event.node
          << ": out of range [0, " << node_count << ")";
      CRN_CHECK(event.node != sink) << "the base station (node " << sink
                                    << ") cannot crash";
    }
    push(event);
  }

  // Crash arrivals (victims resolved during the chronological scan below).
  for (std::size_t g = 0; g < plan.crash_generators.size(); ++g) {
    const CrashGenerator& gen = plan.crash_generators[g];
    CRN_CHECK(gen.rate_per_s > 0.0) << "crash generator rate=" << gen.rate_per_s;
    Rng times = rng.Stream("fault-crash-times", g);
    const sim::TimeNs end = gen.end < 0 ? plan.horizon : gen.end;
    sim::TimeNs t = gen.start;
    while (true) {
      t += ExponentialGapNs(times, gen.rate_per_s);
      if (t >= end) break;
      FaultEvent event;
      event.time = t;
      event.kind = FaultKind::kCrash;
      push(event, static_cast<std::int32_t>(g));
    }
  }

  // Sensing bursts need no aliveness context; expand directly.
  for (std::size_t g = 0; g < plan.burst_generators.size(); ++g) {
    const SensingBurstGenerator& gen = plan.burst_generators[g];
    CRN_CHECK(gen.rate_per_s > 0.0) << "burst generator rate=" << gen.rate_per_s;
    CRN_CHECK(gen.duration > 0) << "burst duration=" << gen.duration;
    CRN_CHECK(gen.false_alarm >= 0.0 && gen.false_alarm <= 1.0);
    CRN_CHECK(gen.missed_detection >= 0.0 && gen.missed_detection <= 1.0);
    Rng times = rng.Stream("fault-burst-times", g);
    const sim::TimeNs end = gen.end < 0 ? plan.horizon : gen.end;
    sim::TimeNs t = gen.start;
    while (true) {
      t += ExponentialGapNs(times, gen.rate_per_s);
      if (t >= end) break;
      FaultEvent start;
      start.time = t;
      start.kind = FaultKind::kSensingBurstStart;
      start.false_alarm = gen.false_alarm;
      start.missed_detection = gen.missed_detection;
      push(start);
      FaultEvent stop;
      stop.time = t + gen.duration;
      stop.kind = FaultKind::kSensingBurstEnd;
      push(stop);
    }
  }

  // Chronological scan: resolve generated crash victims against the live
  // set, validate scripted crash/recover consistency, emit in pop order
  // (sorted by time, then kind, then insertion). The emitted timeline is
  // therefore already sorted the way the injector will schedule it.
  Rng victims = rng.Stream("fault-crash-victims");
  std::vector<char> alive(static_cast<std::size_t>(node_count), 1);
  std::vector<graph::NodeId> eligible;
  std::vector<FaultEvent> timeline;
  while (!heap.empty()) {
    PendingEvent pending = heap.top();
    heap.pop();
    FaultEvent& event = pending.event;
    switch (event.kind) {
      case FaultKind::kCrash: {
        if (pending.crash_generator >= 0) {
          eligible.clear();
          for (graph::NodeId v = 0; v < node_count; ++v) {
            if (alive[v] && v != sink) eligible.push_back(v);
          }
          if (eligible.empty()) continue;  // nobody left to kill; skip arrival
          event.node = eligible[victims.UniformInt(eligible.size())];
          const CrashGenerator& gen =
              plan.crash_generators[static_cast<std::size_t>(pending.crash_generator)];
          if (gen.recover_after >= 0) {
            FaultEvent recover;
            recover.time = event.time + gen.recover_after;
            recover.kind = FaultKind::kRecover;
            recover.node = event.node;
            push(recover, pending.crash_generator);
          }
        } else {
          CRN_CHECK(alive[event.node])
              << "scripted crash of node " << event.node << " at t=" << event.time
              << " ns: node is already down";
        }
        alive[event.node] = 0;
        break;
      }
      case FaultKind::kRecover:
        if (pending.crash_generator >= 0) {
          // Generator-paired recovery: drop it silently if a scripted event
          // already brought the node back (plans may race the generator).
          if (alive[event.node]) continue;
        } else {
          CRN_CHECK(!alive[event.node])
              << "scripted recovery of node " << event.node << " at t=" << event.time
              << " ns: node is not down";
        }
        alive[event.node] = 1;
        break;
      case FaultKind::kSensingBurstStart:
      case FaultKind::kSensingBurstEnd:
      case FaultKind::kPuActivityStart:
      case FaultKind::kPuActivityEnd:
        break;
    }
    timeline.push_back(event);
  }
  return timeline;
}

}  // namespace crn::faults
