// Deterministic fault plans (DESIGN.md §9): a declarative description of
// everything that goes wrong during a run — SU crashes and recoveries,
// sensing-error bursts, primary-activity perturbations — either scripted on
// an explicit timeline or drawn from seeded stochastic generators. A plan is
// pure data; CompileFaultTimeline() turns it into a sorted event list that
// is bit-reproducible from (plan, seed), so any faulted run can be replayed
// exactly and two MACs can be benchmarked under the *same* adversity.
#ifndef CRN_FAULTS_FAULT_PLAN_H_
#define CRN_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/unit_disk_graph.h"
#include "sim/time.h"

namespace crn::faults {

enum class FaultKind : std::uint8_t {
  kCrash = 0,             // SU leaves the network (queue contents are lost)
  kRecover,               // a crashed SU rejoins, empty-handed
  kSensingBurstStart,     // spectrum-sensing error rates jump for a window
  kSensingBurstEnd,
  kPuActivityStart,       // primary duty cycle p_t is perturbed for a window
  kPuActivityEnd,
};
inline constexpr int kFaultKindCount = 6;

const char* ToString(FaultKind kind);

// One compiled fault. Which payload fields are meaningful depends on `kind`:
// crashes/recoveries name a node; sensing bursts carry the error rates the
// window imposes; PU perturbations carry the replacement activity.
struct FaultEvent {
  sim::TimeNs time = 0;
  FaultKind kind = FaultKind::kCrash;
  graph::NodeId node = graph::kInvalidNode;
  double false_alarm = 0.0;
  double missed_detection = 0.0;
  double pu_activity = 0.0;
};

// Poisson crash process: victims arrive at `rate_per_s` over [start, end),
// each drawn uniformly from the currently-live non-sink SUs. A non-negative
// `recover_after` schedules the matching recovery that much later (< 0 means
// crashes are permanent).
struct CrashGenerator {
  double rate_per_s = 0.0;
  sim::TimeNs recover_after = -1;
  sim::TimeNs start = 0;
  sim::TimeNs end = -1;  // -1: the plan horizon
};

// Poisson process of network-wide sensing-error bursts: while a burst is
// active every SU senses with the given false-alarm / missed-detection
// rates. Overlapping bursts extend each other (rates are not additive).
struct SensingBurstGenerator {
  double rate_per_s = 0.0;
  double false_alarm = 0.1;
  double missed_detection = 0.1;
  sim::TimeNs duration = 0;
  sim::TimeNs start = 0;
  sim::TimeNs end = -1;  // -1: the plan horizon
};

// The full plan. `scripted` events are taken verbatim; generators are
// expanded by CompileFaultTimeline() using dedicated RNG streams. An empty
// plan (no scripted events, no generators) compiles to an empty timeline and
// a run with such a plan attached is byte-identical to one without.
struct FaultPlan {
  std::vector<FaultEvent> scripted;
  std::vector<CrashGenerator> crash_generators;
  std::vector<SensingBurstGenerator> burst_generators;

  // Generators draw arrivals in [0, horizon).
  sim::TimeNs horizon = 10 * sim::kSecond;
  // Delay between a crash and the self-healing pass it triggers (models the
  // time neighbors need to notice the silence).
  sim::TimeNs repair_delay = sim::kMillisecond;
  // Consecutive failed transmissions toward a dead next hop before the head
  // packet is dropped (0 = retry forever); forwarded into MacConfig.
  std::int32_t retx_budget = 0;

  [[nodiscard]] bool empty() const {
    return scripted.empty() && crash_generators.empty() && burst_generators.empty();
  }
};

// Parses the textual plan format (one directive per line, '#' comments):
//
//   at <ms> crash <node>
//   at <ms> recover <node>
//   at <ms> sensing_burst <false_alarm> <missed_detection> <duration_ms>
//   at <ms> pu_activity <p> <duration_ms>
//   gen crash <rate_per_s> <recover_after_ms>        (< 0: permanent)
//   gen sensing_burst <rate_per_s> <fa> <md> <duration_ms>
//   option horizon_ms <ms>
//   option repair_delay_ms <ms>
//   option retx_budget <k>
//
// Returns false and fills `error` (with a line number) on malformed input.
bool ParsePlanText(const std::string& text, FaultPlan& plan, std::string& error);

// ParsePlanText over the contents of `path`; CRN_CHECK-fails if the file
// cannot be read or does not parse.
FaultPlan LoadPlanFile(const std::string& path);

// Expands generators and merges them with the scripted events into one
// timeline sorted by (time, kind, node). Deterministic in (plan, rng seed):
// each generator consumes its own named stream. Crash victims are drawn
// uniformly from nodes in [0, node_count) that are alive at arrival time,
// never `sink`; an arrival that finds no eligible victim is skipped.
// Scripted crashes of dead nodes / recoveries of live nodes are rejected
// with CRN_CHECK — a plan that contradicts itself is a bug in the plan.
std::vector<FaultEvent> CompileFaultTimeline(const FaultPlan& plan, const Rng& rng,
                                             graph::NodeId node_count,
                                             graph::NodeId sink);

}  // namespace crn::faults

#endif  // CRN_FAULTS_FAULT_PLAN_H_
