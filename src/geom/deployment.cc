#include "geom/deployment.h"

#include <cmath>
#include <queue>

#include "common/check.h"
#include "geom/spatial_grid.h"

namespace crn::geom {

std::vector<Vec2> UniformDeployment(std::int32_t count, Aabb area, Rng& rng) {
  CRN_CHECK(count >= 0);
  std::vector<Vec2> points;
  points.reserve(count);
  for (std::int32_t i = 0; i < count; ++i) {
    points.push_back({rng.UniformDouble(area.min.x, area.max.x),
                      rng.UniformDouble(area.min.y, area.max.y)});
  }
  return points;
}

std::vector<Vec2> JitteredGridDeployment(std::int32_t count, Aabb area, Rng& rng) {
  CRN_CHECK(count >= 0);
  if (count == 0) return {};
  // Pick a grid of ceil(sqrt(count)) columns; fill row-major, jittering each
  // point within its cell.
  const auto cols = static_cast<std::int32_t>(std::ceil(std::sqrt(static_cast<double>(count))));
  const auto rows = (count + cols - 1) / cols;
  const double cell_w = area.Width() / cols;
  const double cell_h = area.Height() / rows;
  std::vector<Vec2> points;
  points.reserve(count);
  for (std::int32_t i = 0; i < count; ++i) {
    const std::int32_t cx = i % cols;
    const std::int32_t cy = i / cols;
    points.push_back({area.min.x + (cx + rng.UniformDouble()) * cell_w,
                      area.min.y + (cy + rng.UniformDouble()) * cell_h});
  }
  return points;
}

std::vector<Vec2> ClusteredDeployment(std::int32_t count, std::int32_t cluster_count,
                                      double cluster_radius, Aabb area, Rng& rng) {
  CRN_CHECK(count >= 0);
  CRN_CHECK(cluster_count > 0);
  CRN_CHECK(cluster_radius > 0.0);
  const std::vector<Vec2> centers = UniformDeployment(cluster_count, area, rng);
  std::vector<Vec2> points;
  points.reserve(count);
  for (std::int32_t i = 0; i < count; ++i) {
    const Vec2 center = centers[rng.UniformInt(static_cast<std::uint64_t>(cluster_count))];
    // Uniform point in a disk: sqrt-radius trick.
    const double rho = cluster_radius * std::sqrt(rng.UniformDouble());
    const double theta = rng.UniformDouble(0.0, 2.0 * M_PI);
    Vec2 p{center.x + rho * std::cos(theta), center.y + rho * std::sin(theta)};
    // Clamp into the area so downstream grids stay well-formed.
    p.x = std::clamp(p.x, area.min.x, area.max.x);
    p.y = std::clamp(p.y, area.min.y, area.max.y);
    points.push_back(p);
  }
  return points;
}

bool IsUnitDiskConnected(const std::vector<Vec2>& points, Aabb area, double radius) {
  if (points.size() <= 1) return true;
  CRN_CHECK(radius > 0.0);
  const SpatialGrid grid(points, area, radius);
  std::vector<char> visited(points.size(), 0);
  std::queue<std::int32_t> frontier;
  frontier.push(0);
  visited[0] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::int32_t node = frontier.front();
    frontier.pop();
    grid.ForEachInDisk(points[node], radius, [&](std::int32_t neighbor) {
      if (!visited[neighbor]) {
        visited[neighbor] = 1;
        ++reached;
        frontier.push(neighbor);
      }
    });
  }
  return reached == points.size();
}

}  // namespace crn::geom
