// Node deployment generators.
//
// The paper deploys both networks i.i.d. uniformly over a square of size
// A = c0·n. For the secondary network the induced unit-disk graph must be
// connected (a standing assumption of the paper, §III), so the generator
// resamples until connectivity holds — see deployment.cc for the bound on
// retry count.
#ifndef CRN_GEOM_DEPLOYMENT_H_
#define CRN_GEOM_DEPLOYMENT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/vec2.h"

namespace crn::geom {

// Samples `count` points i.i.d. uniformly in `area`.
std::vector<Vec2> UniformDeployment(std::int32_t count, Aabb area, Rng& rng);

// Samples `count` points on a jittered grid covering `area`: one point per
// grid cell, uniformly placed within the cell. Produces connected, evenly
// covered topologies for tests/examples that need them deterministically.
std::vector<Vec2> JitteredGridDeployment(std::int32_t count, Aabb area, Rng& rng);

// Samples `count` points in `cluster_count` Gaussian-ish clusters (uniform
// disks around uniformly placed centers). Models the clustered SU
// populations the paper's introduction motivates (e.g. dense urban cells).
std::vector<Vec2> ClusteredDeployment(std::int32_t count, std::int32_t cluster_count,
                                      double cluster_radius, Aabb area, Rng& rng);

// True when the unit-disk graph over `points` with communication radius
// `radius` is connected (single component). O(n · neighbors) via BFS over a
// spatial grid.
bool IsUnitDiskConnected(const std::vector<Vec2>& points, Aabb area, double radius);

}  // namespace crn::geom

#endif  // CRN_GEOM_DEPLOYMENT_H_
