#include "geom/packing.h"

#include <cmath>

#include "common/check.h"

namespace crn::geom {

double Beta(double x) {
  CRN_CHECK(x >= 0.0);
  return 2.0 * M_PI * x * x / std::sqrt(3.0) + M_PI * x + 1.0;
}

double HexLayerMinDistance(std::int64_t l, double separation) {
  CRN_CHECK(l >= 1);
  CRN_CHECK(separation > 0.0);
  if (l == 1) return separation;
  return std::sqrt(3.0) / 2.0 * static_cast<double>(l) * separation;
}

std::vector<Vec2> HexPacking(std::int64_t layers, double separation) {
  CRN_CHECK(layers >= 0);
  CRN_CHECK(separation > 0.0);
  std::vector<Vec2> points;
  // Triangular lattice with spacing `separation`: basis vectors
  // a = (s, 0), b = (s/2, s·√3/2). Ring k of the lattice has 6k points, all
  // at distance ≥ (√3/2)·k·s — the canonical densest packing.
  const Vec2 a{separation, 0.0};
  const Vec2 b{separation / 2.0, separation * std::sqrt(3.0) / 2.0};
  for (std::int64_t ring = 1; ring <= layers; ++ring) {
    // Walk the hexagonal ring: start at ring·a, take `ring` steps along each
    // of the six lattice directions.
    const Vec2 directions[6] = {
        {b.x - a.x, b.y - a.y},  // a -> b
        {-a.x, -a.y},            // b -> b - a
        {-b.x, -b.y},            // ...
        {a.x - b.x, a.y - b.y},
        {a.x, a.y},
        {b.x, b.y},
    };
    Vec2 cursor = a * static_cast<double>(ring);
    for (const Vec2& step : directions) {
      for (std::int64_t i = 0; i < ring; ++i) {
        points.push_back(cursor);
        cursor = cursor + step;
      }
    }
  }
  return points;
}

double HexInterferenceSum(std::int64_t layers, double separation,
                          double receiver_offset, double alpha) {
  CRN_CHECK(layers >= 0);
  CRN_CHECK(separation > receiver_offset)
      << "separation=" << separation << " must exceed receiver_offset=" << receiver_offset
      << " for the layer distances to stay positive";
  CRN_CHECK(alpha > 2.0);
  double sum = 0.0;
  for (std::int64_t l = 1; l <= layers; ++l) {
    const double d = HexLayerMinDistance(l, separation) - receiver_offset;
    sum += static_cast<double>(HexLayerCount(l)) * std::pow(d, -alpha);
  }
  return sum;
}

}  // namespace crn::geom
