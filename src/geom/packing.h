// Disk/hexagon packing bounds used throughout the paper's analysis.
//
// * Lemma 4 (from Wan et al. [25]): at most beta(r_d) = 2π·r_d²/√3 + π·r_d + 1
//   points of pairwise distance ≥ 1 fit in a disk of radius r_d. The paper's
//   β_x is exactly Beta(x).
// * Lemma 2's interference sum: in the densest ("hexagon") packing of points
//   with pairwise distance ≥ F around a reference point, layer l ≥ 1 holds
//   at most 6l points at distance ≥ (√3/2)·l·F (layer 1 at distance ≥ F).
//   HexLayerInterferenceBound sums P·d^{-α} over that packing — the quantity
//   the paper bounds with its c2 constant.
#ifndef CRN_GEOM_PACKING_H_
#define CRN_GEOM_PACKING_H_

#include <cstdint>
#include <vector>

#include "geom/vec2.h"

namespace crn::geom {

// Lemma 4 / the paper's β_x: maximum number of points with mutual distance
// ≥ 1 inside a disk of radius x.
double Beta(double x);

// Number of points in layer `l` (l ≥ 1) of a worst-case hexagon packing.
constexpr std::int64_t HexLayerCount(std::int64_t l) { return 6 * l; }

// Lower bound on the distance from the reference point to layer `l` of a
// hexagon packing with minimum separation F: F for l = 1, (√3/2)·l·F after.
double HexLayerMinDistance(std::int64_t l, double separation);

// Generates an explicit worst-case hexagonal packing around the origin with
// the given separation, out to `layers` layers. Used by the property tests
// that check Lemma 2/3 (R-set ⇒ concurrent set) against an adversarial
// transmitter placement.
std::vector<Vec2> HexPacking(std::int64_t layers, double separation);

// Σ_{layers l≥1} 6l · (max(HexLayerMinDistance(l, F) - receiver_offset, eps))^{-α}:
// a numeric upper bound on aggregate interference from a hexagon packing of
// unit-power transmitters at a receiver `receiver_offset` away from the
// reference point, truncated at `layers` layers.
double HexInterferenceSum(std::int64_t layers, double separation,
                          double receiver_offset, double alpha);

}  // namespace crn::geom

#endif  // CRN_GEOM_PACKING_H_
