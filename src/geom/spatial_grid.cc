#include "geom/spatial_grid.h"

#include <cmath>
#include <utility>

namespace crn::geom {

namespace {

std::int32_t GridDim(double extent, double cell_size) {
  return std::max<std::int32_t>(1, static_cast<std::int32_t>(std::ceil(extent / cell_size)));
}

}  // namespace

SpatialGrid::SpatialGrid(std::vector<Vec2> points, Aabb bounds, double cell_size)
    : points_(std::move(points)), bounds_(bounds), cell_size_(cell_size) {
  CRN_CHECK(cell_size > 0.0) << "cell_size=" << cell_size;
  CRN_CHECK(bounds.Width() > 0.0 && bounds.Height() > 0.0);
  cols_ = GridDim(bounds.Width(), cell_size_);
  rows_ = GridDim(bounds.Height(), cell_size_);

  const std::int32_t num_cells = cols_ * rows_;
  std::vector<std::int32_t> counts(num_cells, 0);
  for (const Vec2& p : points_) {
    ++counts[CellOf(p)];
  }
  cell_start_.assign(num_cells + 1, 0);
  for (std::int32_t c = 0; c < num_cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  cell_points_.resize(points_.size());
  std::vector<std::int32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(points_.size()); ++i) {
    cell_points_[cursor[CellOf(points_[i])]++] = i;
  }
}

std::vector<std::int32_t> SpatialGrid::QueryDisk(Vec2 center, double radius) const {
  std::vector<std::int32_t> result;
  ForEachInDisk(center, radius, [&](std::int32_t index) { result.push_back(index); });
  return result;
}

DynamicSpatialGrid::DynamicSpatialGrid(std::vector<Vec2> points, Aabb bounds,
                                       double cell_size)
    : points_(std::move(points)), bounds_(bounds), cell_size_(cell_size) {
  CRN_CHECK(cell_size > 0.0) << "cell_size=" << cell_size;
  CRN_CHECK(bounds.Width() > 0.0 && bounds.Height() > 0.0);
  cols_ = GridDim(bounds.Width(), cell_size_);
  rows_ = GridDim(bounds.Height(), cell_size_);
  cells_.resize(static_cast<std::size_t>(cols_) * rows_);
  slot_.assign(points_.size(), -1);
}

void DynamicSpatialGrid::Insert(std::int32_t index) {
  CRN_DCHECK(index >= 0 && index < static_cast<std::int32_t>(points_.size()));
  if (slot_[index] >= 0) return;  // already a member
  auto& cell = cells_[CellOf(points_[index])];
  slot_[index] = static_cast<std::int32_t>(cell.size());
  cell.push_back(index);
  ++member_count_;
}

void DynamicSpatialGrid::Erase(std::int32_t index) {
  CRN_DCHECK(index >= 0 && index < static_cast<std::int32_t>(points_.size()));
  const std::int32_t pos = slot_[index];
  if (pos < 0) return;  // not a member
  auto& cell = cells_[CellOf(points_[index])];
  // Swap-erase, fixing the slot of the element moved into `pos`.
  const std::int32_t moved = cell.back();
  cell[pos] = moved;
  slot_[moved] = pos;
  cell.pop_back();
  slot_[index] = -1;
  --member_count_;
}

}  // namespace crn::geom
