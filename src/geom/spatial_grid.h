// Uniform spatial hash grid over a fixed point set, supporting fast
// "all points within radius d of q" queries.
//
// Positions are fixed at construction (nodes do not move in this model);
// what changes at runtime is *membership* of dynamic subsets (e.g. the set
// of SUs currently carrier-sensing), which callers track separately and
// filter in the visit callback. A dynamic variant (DynamicSpatialGrid)
// supports insert/erase for exactly that use case.
#ifndef CRN_GEOM_SPATIAL_GRID_H_
#define CRN_GEOM_SPATIAL_GRID_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "geom/vec2.h"

namespace crn::geom {

// Immutable point index. Query cost is O(points in the covering cells).
class SpatialGrid {
 public:
  // `cell_size` should be on the order of the typical query radius.
  SpatialGrid(std::vector<Vec2> points, Aabb bounds, double cell_size);

  // Calls visit(index) for every point with Distance(point, center) <= radius.
  template <typename Visitor>
  void ForEachInDisk(Vec2 center, double radius, Visitor&& visit) const {
    const double r2 = radius * radius;
    ForEachCellInRange(center, radius, [&](std::int32_t cell) {
      for (std::int32_t i = cell_start_[cell]; i < cell_start_[cell + 1]; ++i) {
        const std::int32_t point = cell_points_[i];
        if (DistanceSquared(points_[point], center) <= r2) {
          visit(point);
        }
      }
    });
  }

  // Convenience: collects indices of all points within `radius` of `center`.
  [[nodiscard]] std::vector<std::int32_t> QueryDisk(Vec2 center, double radius) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] Vec2 position(std::int32_t index) const { return points_[index]; }

 private:
  template <typename CellVisitor>
  void ForEachCellInRange(Vec2 center, double radius, CellVisitor&& visit) const {
    const std::int32_t cx_lo = CellCoordClamped((center.x - radius - bounds_.min.x) / cell_size_, cols_);
    const std::int32_t cx_hi = CellCoordClamped((center.x + radius - bounds_.min.x) / cell_size_, cols_);
    const std::int32_t cy_lo = CellCoordClamped((center.y - radius - bounds_.min.y) / cell_size_, rows_);
    const std::int32_t cy_hi = CellCoordClamped((center.y + radius - bounds_.min.y) / cell_size_, rows_);
    for (std::int32_t cy = cy_lo; cy <= cy_hi; ++cy) {
      for (std::int32_t cx = cx_lo; cx <= cx_hi; ++cx) {
        visit(cy * cols_ + cx);
      }
    }
  }

  static std::int32_t CellCoordClamped(double raw, std::int32_t limit) {
    const auto cell = static_cast<std::int32_t>(raw);
    return std::clamp(cell, std::int32_t{0}, limit - 1);
  }

  [[nodiscard]] std::int32_t CellOf(Vec2 p) const {
    const std::int32_t cx = CellCoordClamped((p.x - bounds_.min.x) / cell_size_, cols_);
    const std::int32_t cy = CellCoordClamped((p.y - bounds_.min.y) / cell_size_, rows_);
    return cy * cols_ + cx;
  }

  std::vector<Vec2> points_;
  Aabb bounds_;
  double cell_size_;
  std::int32_t cols_ = 0;
  std::int32_t rows_ = 0;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into cell_points_.
  std::vector<std::int32_t> cell_start_;
  std::vector<std::int32_t> cell_points_;
};

// Mutable membership grid over the same fixed positions: supports
// Insert/Erase of point indices and radius queries over current members.
// Used for the set of actively-sensing SUs, which shrinks as collection
// progresses.
class DynamicSpatialGrid {
 public:
  DynamicSpatialGrid(std::vector<Vec2> points, Aabb bounds, double cell_size);

  void Insert(std::int32_t index);
  void Erase(std::int32_t index);
  [[nodiscard]] bool Contains(std::int32_t index) const { return slot_[index] >= 0; }
  [[nodiscard]] std::size_t member_count() const { return member_count_; }

  // Members in (cell-major, in-cell) order — the exact order disk queries
  // visit them. In-cell order is history-dependent (Erase swap-removes), so
  // a checkpointed grid is rebuilt by re-Inserting members in this order
  // into a fresh grid (Insert appends, reproducing the layout bit-exactly).
  [[nodiscard]] std::vector<std::int32_t> MembersInIterationOrder() const {
    std::vector<std::int32_t> members;
    members.reserve(member_count_);
    for (const std::vector<std::int32_t>& cell : cells_) {
      members.insert(members.end(), cell.begin(), cell.end());
    }
    return members;
  }

  template <typename Visitor>
  void ForEachMemberInDisk(Vec2 center, double radius, Visitor&& visit) const {
    const double r2 = radius * radius;
    const std::int32_t cx_lo = Clamp((center.x - radius - bounds_.min.x) / cell_size_, cols_);
    const std::int32_t cx_hi = Clamp((center.x + radius - bounds_.min.x) / cell_size_, cols_);
    const std::int32_t cy_lo = Clamp((center.y - radius - bounds_.min.y) / cell_size_, rows_);
    const std::int32_t cy_hi = Clamp((center.y + radius - bounds_.min.y) / cell_size_, rows_);
    for (std::int32_t cy = cy_lo; cy <= cy_hi; ++cy) {
      for (std::int32_t cx = cx_lo; cx <= cx_hi; ++cx) {
        for (std::int32_t member : cells_[cy * cols_ + cx]) {
          if (DistanceSquared(points_[member], center) <= r2) {
            visit(member);
          }
        }
      }
    }
  }

 private:
  static std::int32_t Clamp(double raw, std::int32_t limit) {
    const auto cell = static_cast<std::int32_t>(raw);
    return std::clamp(cell, std::int32_t{0}, limit - 1);
  }

  [[nodiscard]] std::int32_t CellOf(Vec2 p) const {
    const std::int32_t cx = Clamp((p.x - bounds_.min.x) / cell_size_, cols_);
    const std::int32_t cy = Clamp((p.y - bounds_.min.y) / cell_size_, rows_);
    return cy * cols_ + cx;
  }

  std::vector<Vec2> points_;
  Aabb bounds_;
  double cell_size_;
  std::int32_t cols_ = 0;
  std::int32_t rows_ = 0;
  std::vector<std::vector<std::int32_t>> cells_;
  // slot_[i] = position of i within its cell vector, or -1 when absent.
  std::vector<std::int32_t> slot_;
  std::size_t member_count_ = 0;
};

}  // namespace crn::geom

#endif  // CRN_GEOM_SPATIAL_GRID_H_
