// 2-D point/vector type used for node positions throughout the library.
#ifndef CRN_GEOM_VEC2_H_
#define CRN_GEOM_VEC2_H_

#include <cmath>
#include <ostream>

namespace crn::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  [[nodiscard]] constexpr double Dot(Vec2 other) const { return x * other.x + y * other.y; }
  [[nodiscard]] constexpr double NormSquared() const { return x * x + y * y; }
  [[nodiscard]] double Norm() const { return std::sqrt(NormSquared()); }

  friend std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << "(" << v.x << ", " << v.y << ")";
  }
};

// Euclidean distance between two points (the paper's D(·,·)).
inline double Distance(Vec2 a, Vec2 b) { return (a - b).Norm(); }

// Squared distance; preferred in hot paths to avoid the sqrt.
constexpr double DistanceSquared(Vec2 a, Vec2 b) { return (a - b).NormSquared(); }

// Axis-aligned bounding box [min, max] used for deployment areas.
struct Aabb {
  Vec2 min;
  Vec2 max;

  [[nodiscard]] constexpr double Width() const { return max.x - min.x; }
  [[nodiscard]] constexpr double Height() const { return max.y - min.y; }
  [[nodiscard]] constexpr double Area() const { return Width() * Height(); }
  [[nodiscard]] constexpr Vec2 Center() const {
    return {(min.x + max.x) / 2.0, (min.y + max.y) / 2.0};
  }
  [[nodiscard]] constexpr bool Contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  // Square area of the given side length anchored at the origin, matching
  // the paper's "square area with size A".
  static constexpr Aabb Square(double side) { return {{0.0, 0.0}, {side, side}}; }
};

}  // namespace crn::geom

#endif  // CRN_GEOM_VEC2_H_
