#include "graph/cds_tree.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "common/check.h"

namespace crn::graph {

const char* ToString(NodeRole role) {
  switch (role) {
    case NodeRole::kDominator:
      return "dominator";
    case NodeRole::kConnector:
      return "connector";
    case NodeRole::kDominatee:
      return "dominatee";
  }
  return "unknown";
}

std::vector<char> MaximalIndependentSet(const UnitDiskGraph& graph,
                                        const BfsLayering& bfs) {
  const auto n = graph.node_count();
  // Rank nodes by (BFS level, id); the BFS visitation order from a FIFO
  // queue over sorted adjacency lists is exactly that order per level, but
  // we sort explicitly to make the invariant independent of queue details.
  std::vector<NodeId> ranked(bfs.order);
  std::sort(ranked.begin(), ranked.end(), [&](NodeId a, NodeId b) {
    return std::make_pair(bfs.level[a], a) < std::make_pair(bfs.level[b], b);
  });
  std::vector<char> in_mis(n, 0);
  std::vector<char> dominated(n, 0);
  for (NodeId v : ranked) {
    if (dominated[v]) continue;
    in_mis[v] = 1;
    dominated[v] = 1;
    for (NodeId u : graph.Neighbors(v)) {
      dominated[u] = 1;
    }
  }
  return in_mis;
}

CdsTree::CdsTree(const UnitDiskGraph& graph, NodeId root) : root_(root) {
  const auto n = graph.node_count();
  CRN_CHECK(root >= 0 && root < n);
  const BfsLayering bfs = BreadthFirstLayering(graph, root);
  const std::vector<char> in_mis = MaximalIndependentSet(graph, bfs);
  CRN_CHECK(in_mis[root]) << "root has BFS rank 0 and must be a dominator";

  role_.assign(n, NodeRole::kDominatee);
  parent_.assign(n, kInvalidNode);
  std::vector<std::int64_t> rank(n, 0);
  {
    std::vector<NodeId> ranked(bfs.order);
    std::sort(ranked.begin(), ranked.end(), [&](NodeId a, NodeId b) {
      return std::make_pair(bfs.level[a], a) < std::make_pair(bfs.level[b], b);
    });
    for (std::int32_t i = 0; i < n; ++i) rank[ranked[i]] = i;
    // Connect dominators in rank order. `connected[w]` means w is a
    // dominator already attached to the tree.
    std::vector<char> connected(n, 0);
    connected[root] = 1;
    for (NodeId u : ranked) {
      if (!in_mis[u]) continue;
      role_[u] = NodeRole::kDominator;
      if (u == root) continue;
      // Find connector c adjacent to u whose neighborhood contains a
      // connected dominator w; among candidates prefer the (level, id)
      // smallest w, then the smallest c, to keep the tree shallow and the
      // construction deterministic.
      NodeId best_c = kInvalidNode;
      NodeId best_w = kInvalidNode;
      auto better = [&](NodeId w, NodeId c) {
        if (best_w == kInvalidNode) return true;
        const auto lhs = std::make_tuple(bfs.level[w], w, bfs.level[c], c);
        const auto rhs = std::make_tuple(bfs.level[best_w], best_w, bfs.level[best_c], best_c);
        return lhs < rhs;
      };
      for (NodeId c : graph.Neighbors(u)) {
        if (in_mis[c]) continue;  // connectors are never dominators
        for (NodeId w : graph.Neighbors(c)) {
          if (w != u && in_mis[w] && connected[w] && better(w, c)) {
            best_c = c;
            best_w = w;
          }
        }
      }
      CRN_CHECK(best_c != kInvalidNode)
          << "no connector found for dominator " << u
          << "; the greedy-by-BFS-rank MIS guarantees one exists";
      role_[best_c] = NodeRole::kConnector;
      // A connector may serve several dominators; its parent is fixed by
      // the first dominator that claims it (parents must be unique).
      if (parent_[best_c] == kInvalidNode) {
        parent_[best_c] = best_w;
      }
      parent_[u] = best_c;
      connected[u] = 1;
    }
  }

  // Dominatees: attach to the adjacent dominator with the smallest
  // (level, id).
  for (NodeId v = 0; v < n; ++v) {
    if (role_[v] != NodeRole::kDominatee) continue;
    NodeId best = kInvalidNode;
    for (NodeId u : graph.Neighbors(v)) {
      if (role_[u] != NodeRole::kDominator) continue;
      if (best == kInvalidNode ||
          std::make_pair(bfs.level[u], u) < std::make_pair(bfs.level[best], best)) {
        best = u;
      }
    }
    CRN_CHECK(best != kInvalidNode)
        << "node " << v << " has no adjacent dominator; MIS must dominate";
    parent_[v] = best;
  }

  // Children lists, depths, counts.
  children_.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    if (v == root_) continue;
    CRN_CHECK(parent_[v] != kInvalidNode) << "node " << v << " is unattached";
    children_[parent_[v]].push_back(v);
  }
  depth_.assign(n, -1);
  depth_[root_] = 0;
  std::queue<NodeId> frontier;
  frontier.push(root_);
  std::int32_t reached = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    max_depth_ = std::max(max_depth_, depth_[v]);
    max_children_ = std::max(max_children_, static_cast<std::int32_t>(children_[v].size()));
    for (NodeId c : children_[v]) {
      depth_[c] = depth_[v] + 1;
      frontier.push(c);
      ++reached;
    }
  }
  CRN_CHECK(reached == n) << "parent pointers contain a cycle";

  for (NodeId v = 0; v < n; ++v) {
    switch (role_[v]) {
      case NodeRole::kDominator:
        ++dominator_count_;
        break;
      case NodeRole::kConnector:
        ++connector_count_;
        break;
      case NodeRole::kDominatee:
        ++dominatee_count_;
        break;
    }
  }
}

void CdsTree::Validate(const UnitDiskGraph& graph) const {
  const auto n = node_count();
  CRN_CHECK(role_[root_] == NodeRole::kDominator);
  CRN_CHECK(parent_[root_] == kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (v == root_) continue;
    const NodeId p = parent_[v];
    CRN_CHECK(p != kInvalidNode) << "node " << v;
    CRN_CHECK(graph.HasEdge(v, p)) << "tree edge " << v << "->" << p
                                   << " is not a graph edge";
    CRN_CHECK(depth_[v] == depth_[p] + 1) << "node " << v;
    switch (role_[v]) {
      case NodeRole::kDominatee:
        CRN_CHECK(role_[p] == NodeRole::kDominator)
            << "dominatee " << v << " must attach to a dominator";
        break;
      case NodeRole::kDominator:
        CRN_CHECK(role_[p] == NodeRole::kConnector)
            << "dominator " << v << " must attach through a connector";
        break;
      case NodeRole::kConnector:
        CRN_CHECK(role_[p] == NodeRole::kDominator)
            << "connector " << v << " must attach to a dominator";
        break;
    }
  }
  // Backbone forms a dominating set: every node is a dominator or adjacent
  // to one.
  for (NodeId v = 0; v < n; ++v) {
    if (role_[v] == NodeRole::kDominator) continue;
    bool dominated = false;
    for (NodeId u : graph.Neighbors(v)) {
      if (role_[u] == NodeRole::kDominator) {
        dominated = true;
        break;
      }
    }
    CRN_CHECK(dominated) << "node " << v << " not dominated";
  }
  // Backbone connectivity: BFS over backbone-induced subgraph from root.
  std::vector<char> visited(n, 0);
  std::queue<NodeId> frontier;
  frontier.push(root_);
  visited[root_] = 1;
  std::int32_t backbone_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (IsBackbone(v)) ++backbone_total;
  }
  std::int32_t backbone_reached = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId u : graph.Neighbors(v)) {
      if (IsBackbone(u) && !visited[u]) {
        visited[u] = 1;
        ++backbone_reached;
        frontier.push(u);
      }
    }
  }
  CRN_CHECK(backbone_reached == backbone_total)
      << "CDS backbone is not connected: " << backbone_reached << " of "
      << backbone_total;
}

std::uint64_t CdsTree::StructureDigest() const {
  // Same FNV-1a fold as UnitDiskGraph::StructureDigest.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFFU;
      hash *= 0x100000001B3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(root_));
  mix(static_cast<std::uint64_t>(parent_.size()));
  for (std::size_t v = 0; v < parent_.size(); ++v) {
    mix(static_cast<std::uint64_t>(role_[v]));
    mix(static_cast<std::uint64_t>(parent_[v]));
    mix(static_cast<std::uint64_t>(depth_[v]));
  }
  return hash;
}

}  // namespace crn::graph
