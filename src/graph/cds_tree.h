// CDS-based data-collection tree (§IV-A), following the construction of
// Wan et al., "Minimum-Latency Aggregation Scheduling in Multihop Wireless
// Networks" (MOBIHOC 2009), the paper's reference [25]:
//
//  1. BFS from the base station; rank nodes by (BFS level, id).
//  2. Greedy MIS in rank order — the *dominators* (the base station first).
//  3. For each non-root dominator u in rank order, pick a neighbor c that is
//     adjacent to an already-connected dominator w of smaller rank (such a c
//     always exists via u's BFS parent); c becomes a *connector* with
//     parent w, and u's parent is c.
//  4. Every remaining node is a *dominatee* and picks an adjacent dominator
//     (lowest level, then lowest id) as parent.
//
// The resulting parent pointers form a tree rooted at the base station in
// which dominatees attach to dominators and dominators interleave with
// connectors — exactly the routing structure ADDC runs on.
#ifndef CRN_GRAPH_CDS_TREE_H_
#define CRN_GRAPH_CDS_TREE_H_

#include <cstdint>
#include <vector>

#include "graph/unit_disk_graph.h"

namespace crn::graph {

enum class NodeRole : std::uint8_t {
  kDominator,
  kConnector,
  kDominatee,
};

const char* ToString(NodeRole role);

// Maximal independent set greedily in (level, id) rank order; the root is
// always selected first. Returned as a membership mask.
std::vector<char> MaximalIndependentSet(const UnitDiskGraph& graph,
                                        const BfsLayering& bfs);

class CdsTree {
 public:
  // Builds the tree; `graph` must be connected from `root`.
  CdsTree(const UnitDiskGraph& graph, NodeId root);

  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] std::int32_t node_count() const {
    return static_cast<std::int32_t>(parent_.size());
  }
  [[nodiscard]] NodeRole role(NodeId node) const { return role_[node]; }
  [[nodiscard]] NodeId parent(NodeId node) const { return parent_[node]; }
  [[nodiscard]] const std::vector<NodeId>& children(NodeId node) const {
    return children_[node];
  }
  // Hop distance to the root along tree edges.
  [[nodiscard]] std::int32_t depth(NodeId node) const { return depth_[node]; }
  [[nodiscard]] std::int32_t max_depth() const { return max_depth_; }

  // Maximum number of children over all nodes (the Δ of Lemma 6 is this +1
  // counting the parent edge; we expose children count and let the theory
  // module add the +1).
  [[nodiscard]] std::int32_t max_children() const { return max_children_; }

  [[nodiscard]] std::int32_t dominator_count() const { return dominator_count_; }
  [[nodiscard]] std::int32_t connector_count() const { return connector_count_; }
  [[nodiscard]] std::int32_t dominatee_count() const { return dominatee_count_; }

  // Nodes on the CDS backbone (dominators + connectors).
  [[nodiscard]] bool IsBackbone(NodeId node) const {
    return role_[node] != NodeRole::kDominatee;
  }

  // Structural self-check used by tests: every node reaches the root through
  // parents, every tree edge is a graph edge, roles alternate as specified,
  // and the backbone is a connected dominating set. Throws ContractViolation
  // on the first violated invariant.
  void Validate(const UnitDiskGraph& graph) const;

  // Order-sensitive FNV-1a digest over roles, parents, and depths. Equal
  // digests certify a bit-identical tree; the scenario-prefab cache's
  // equivalence mode compares cached against freshly built trees with it.
  [[nodiscard]] std::uint64_t StructureDigest() const;

 private:
  NodeId root_;
  std::vector<NodeRole> role_;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<std::int32_t> depth_;
  std::int32_t max_depth_ = 0;
  std::int32_t max_children_ = 0;
  std::int32_t dominator_count_ = 0;
  std::int32_t connector_count_ = 0;
  std::int32_t dominatee_count_ = 0;
};

}  // namespace crn::graph

#endif  // CRN_GRAPH_CDS_TREE_H_
