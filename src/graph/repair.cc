#include "graph/repair.h"

#include <utility>

#include "common/check.h"

namespace crn::graph {

RepairPlan PlanLocalRepair(const UnitDiskGraph& graph,
                           const BfsLayering& bfs,
                           const std::vector<NodeId>& next_hop,
                           const std::vector<char>& alive,
                           NodeId failed_node) {
  CRN_CHECK(!alive[failed_node]) << "node " << failed_node << " is still alive";
  const auto n = graph.node_count();

  // Working routing table: repaired hops land here so later orphans can
  // route through earlier repairs (the "rounds" below emulate neighbors
  // gossiping their recovered routes).
  std::vector<NodeId> working(next_hop);

  // True when u's route under `working` reaches the base station without
  // touching the departed node, `avoid` (no cycles through the orphan), or
  // another still-broken node.
  auto route_is_clean = [&](NodeId u, NodeId avoid) {
    NodeId cursor = u;
    std::int32_t steps = 0;
    while (bfs.level[cursor] != 0) {  // until the base station
      if (cursor == failed_node || cursor == avoid || !alive[cursor]) return false;
      cursor = working[cursor];
      if (++steps > n) return false;
    }
    return true;
  };

  // Orphans: every live node whose current route passes through the
  // departed node — the entire subtree below it, not just its direct
  // children. (A node learns this locally the same way: its upstream stops
  // acknowledging.)
  std::vector<NodeId> orphans;
  for (NodeId v = 0; v < n; ++v) {
    if (!alive[v] || v == failed_node || bfs.level[v] == 0) continue;
    if (!route_is_clean(v, /*avoid=*/failed_node)) orphans.push_back(v);
  }

  // Each round, an orphan re-attaches to the (level, id)-smallest live
  // neighbor that currently has a verified route to the base station;
  // orphans deeper in the dead subtree succeed in later rounds, once the
  // boundary has healed — the fixed point of the local gossip. Every
  // adopted hop has a clean route at adoption time and repaired hops never
  // change again, so no cycle can form.
  RepairPlan plan;
  std::vector<char> repaired(orphans.size(), 0);
  std::size_t remaining = orphans.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < orphans.size(); ++i) {
      if (repaired[i]) continue;
      const NodeId v = orphans[i];
      NodeId best = kInvalidNode;
      for (NodeId u : graph.Neighbors(v)) {
        if (!alive[u] || u == v || u == failed_node) continue;
        if (!route_is_clean(u, v)) continue;
        if (best == kInvalidNode ||
            std::make_pair(bfs.level[u], u) < std::make_pair(bfs.level[best], best)) {
          best = u;
        }
      }
      if (best == kInvalidNode) continue;  // retry next round
      working[v] = best;
      plan.repaired.emplace_back(v, best);
      repaired[i] = 1;
      --remaining;
      progress = true;
    }
  }
  // Whatever the gossip could not re-attach is partitioned from the base
  // station; the caller decides whether that degrades or fails the run.
  for (std::size_t i = 0; i < orphans.size(); ++i) {
    if (!repaired[i]) plan.orphaned.push_back(orphans[i]);
  }
  return plan;
}

RepairPlan PlanCascadeRepair(const UnitDiskGraph& graph,
                             const std::vector<NodeId>& next_hop,
                             const std::vector<char>& alive, NodeId sink) {
  const auto n = graph.node_count();
  CRN_CHECK(sink >= 0 && sink < n) << "sink " << sink << " out of range";
  CRN_CHECK(alive[sink]) << "the base station cannot be dead";
  CRN_CHECK(static_cast<NodeId>(next_hop.size()) == n);
  CRN_CHECK(static_cast<NodeId>(alive.size()) == n);

  // Memoized route classification: kClean routes reach the sink over live
  // nodes, kBroken ones dead-end at a failed node or cycle.
  enum class Route : char { kUnknown, kClean, kBroken };
  std::vector<Route> route(static_cast<std::size_t>(n), Route::kUnknown);
  route[sink] = Route::kClean;
  std::vector<NodeId> path;
  for (NodeId v = 0; v < n; ++v) {
    if (!alive[v] || route[v] != Route::kUnknown) continue;
    path.clear();
    NodeId cursor = v;
    while (route[cursor] == Route::kUnknown && alive[cursor] &&
           static_cast<NodeId>(path.size()) <= n) {
      path.push_back(cursor);
      cursor = next_hop[cursor];
    }
    const Route verdict = (alive[cursor] && route[cursor] == Route::kClean)
                              ? Route::kClean
                              : Route::kBroken;
    for (NodeId u : path) route[u] = verdict;
  }

  // Multi-source BFS from the clean set across live edges: each broken node
  // reached adopts its BFS predecessor, so the repaired region is layered by
  // distance-to-clean-set and applying the pairs in discovery order keeps
  // every intermediate table acyclic.
  RepairPlan plan;
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (alive[v] && route[v] == Route::kClean) frontier.push_back(v);
  }
  std::vector<NodeId> next_frontier;
  while (!frontier.empty()) {
    next_frontier.clear();
    for (NodeId u : frontier) {
      for (NodeId v : graph.Neighbors(u)) {
        if (!alive[v] || route[v] != Route::kBroken) continue;
        route[v] = Route::kClean;
        plan.repaired.emplace_back(v, u);
        next_frontier.push_back(v);
      }
    }
    frontier.swap(next_frontier);
  }

  for (NodeId v = 0; v < n; ++v) {
    if (alive[v] && route[v] == Route::kBroken) plan.orphaned.push_back(v);
  }
  return plan;
}

}  // namespace crn::graph
