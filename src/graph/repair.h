// Distributed route repair under SU churn (§I: "some existing SUs might
// leave the network ... at any time. In this case, centralized and
// synchronized algorithms cannot adapt").
//
// Two repair rules, escalating in scope:
//
//  * PlanLocalRepair — the local decision each orphaned SU can take with
//    one-hop knowledge: re-attach to a live neighbor strictly closer to the
//    base station (smaller BFS level), preferring dominators — the same
//    preference the original tree construction used. Level-monotone
//    re-attachment can never create a routing cycle.
//  * PlanCascadeRepair — multi-hop re-rooting of every broken subtree: a
//    deterministic multi-source BFS grows the set of clean-routed nodes
//    outward across live edges, so orphans deep inside a dead region (or
//    under several simultaneous failures) re-attach through each other in
//    shortest-hop order. Strictly more powerful than local repair, needs no
//    BFS layering, and costs O(V + E).
//
// Neither rule throws on partition: nodes with no live path to the base
// station are reported as `orphaned` and the caller decides whether that is
// graceful degradation (delivery ratio < 1) or a test failure.
#ifndef CRN_GRAPH_REPAIR_H_
#define CRN_GRAPH_REPAIR_H_

#include <utility>
#include <vector>

#include "graph/unit_disk_graph.h"

namespace crn::graph {

// Result of a repair planning pass. Applying `repaired` in order keeps the
// routing table acyclic at every step (each adopted hop already has a clean
// route when its pair is applied). `orphaned` lists live nodes left without
// any live route to the base station — the network around them is
// partitioned until a node recovers or is redeployed.
struct RepairPlan {
  std::vector<std::pair<NodeId, NodeId>> repaired;
  std::vector<NodeId> orphaned;

  [[nodiscard]] bool complete() const { return orphaned.empty(); }
};

// Computes the repair for every node whose route passes through
// `failed_node`: each picks its live neighbor with the smallest (BFS level,
// id) among neighbors holding a verified clean route, iterated to the
// gossip fixed point. Orphans that no round can re-attach are reported in
// `orphaned` (never thrown on).
RepairPlan PlanLocalRepair(const UnitDiskGraph& graph,
                           const BfsLayering& bfs,
                           const std::vector<NodeId>& next_hop,
                           const std::vector<char>& alive,
                           NodeId failed_node);

// Re-roots every live node whose current route fails to reach `sink` over
// live nodes (any number of simultaneous failures and recoveries): a
// multi-source BFS from the clean-routed set across live edges assigns each
// reached node its BFS predecessor as next hop — shortest-hop re-rooting.
// Unreached nodes are `orphaned`. Deterministic: sources seed in id order
// and neighbors expand in the graph's CSR order.
RepairPlan PlanCascadeRepair(const UnitDiskGraph& graph,
                             const std::vector<NodeId>& next_hop,
                             const std::vector<char>& alive, NodeId sink);

}  // namespace crn::graph

#endif  // CRN_GRAPH_REPAIR_H_
