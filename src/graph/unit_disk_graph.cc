#include "graph/unit_disk_graph.h"

#include <algorithm>
#include <bit>
#include <queue>
#include <utility>

#include "common/check.h"
#include "geom/spatial_grid.h"

namespace crn::graph {

UnitDiskGraph::UnitDiskGraph(std::vector<geom::Vec2> positions, geom::Aabb area,
                             double radius)
    : positions_(std::move(positions)), area_(area), radius_(radius) {
  CRN_CHECK(radius > 0.0);
  const auto n = static_cast<std::int32_t>(positions_.size());
  offsets_.assign(n + 1, 0);
  if (n == 0) return;

  const geom::SpatialGrid grid(positions_, area_, radius_);
  // First pass: degrees; second pass: fill CSR.
  std::vector<std::int32_t> degree(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    grid.ForEachInDisk(positions_[v], radius_, [&](NodeId u) {
      if (u != v) ++degree[v];
    });
  }
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v];
  }
  adjacency_.resize(offsets_[n]);
  std::vector<std::int32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    grid.ForEachInDisk(positions_[v], radius_, [&](NodeId u) {
      if (u != v) adjacency_[cursor[v]++] = u;
    });
    // Sorted neighbor lists make HasEdge O(log d) and iteration
    // deterministic regardless of grid cell order.
    std::sort(adjacency_.begin() + offsets_[v], adjacency_.begin() + offsets_[v + 1]);
  }
}

bool UnitDiskGraph::HasEdge(NodeId a, NodeId b) const {
  const auto neighbors = Neighbors(a);
  return std::binary_search(neighbors.begin(), neighbors.end(), b);
}

bool UnitDiskGraph::IsConnected(NodeId root) const {
  const auto n = node_count();
  if (n == 0) return true;
  std::vector<char> visited(n, 0);
  std::queue<NodeId> frontier;
  frontier.push(root);
  visited[root] = 1;
  std::int32_t reached = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId u : Neighbors(v)) {
      if (!visited[u]) {
        visited[u] = 1;
        ++reached;
        frontier.push(u);
      }
    }
  }
  return reached == n;
}

namespace {

// Order-sensitive FNV-1a fold, byte-wise over 64-bit values — the same
// construction as sim::TraceDigest, local because src/graph sits below
// src/sim in the layering.
struct FnvFold {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  void Mix(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFFU;
      hash *= 0x100000001B3ULL;
    }
  }
};

}  // namespace

std::uint64_t UnitDiskGraph::StructureDigest() const {
  FnvFold fold;
  fold.Mix(static_cast<std::uint64_t>(positions_.size()));
  for (const geom::Vec2& p : positions_) {
    fold.Mix(std::bit_cast<std::uint64_t>(p.x));
    fold.Mix(std::bit_cast<std::uint64_t>(p.y));
  }
  for (const std::int32_t offset : offsets_) {
    fold.Mix(static_cast<std::uint64_t>(offset));
  }
  for (const NodeId neighbor : adjacency_) {
    fold.Mix(static_cast<std::uint64_t>(neighbor));
  }
  return fold.hash;
}

BfsLayering BreadthFirstLayering(const UnitDiskGraph& graph, NodeId root) {
  const auto n = graph.node_count();
  CRN_CHECK(root >= 0 && root < n);
  BfsLayering result;
  result.level.assign(n, -1);
  result.parent.assign(n, kInvalidNode);
  result.order.reserve(n);

  std::queue<NodeId> frontier;
  frontier.push(root);
  result.level[root] = 0;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    result.order.push_back(v);
    result.max_level = std::max(result.max_level, result.level[v]);
    for (NodeId u : graph.Neighbors(v)) {
      if (result.level[u] < 0) {
        result.level[u] = result.level[v] + 1;
        result.parent[u] = v;
        frontier.push(u);
      }
    }
  }
  CRN_CHECK(static_cast<std::int32_t>(result.order.size()) == n)
      << "secondary network graph must be connected (paper §III assumption); "
      << "reached " << result.order.size() << " of " << n << " nodes";
  return result;
}

}  // namespace crn::graph
