// Unit-disk graph over the secondary network (§III): nodes are the base
// station plus n SUs; an edge exists whenever two nodes are within the SU
// transmission radius r. Adjacency is stored in CSR form and built in
// O(n · avg_degree) with a spatial grid.
#ifndef CRN_GRAPH_UNIT_DISK_GRAPH_H_
#define CRN_GRAPH_UNIT_DISK_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.h"

namespace crn::graph {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

class UnitDiskGraph {
 public:
  // Builds the graph; `area` must contain all points.
  UnitDiskGraph(std::vector<geom::Vec2> positions, geom::Aabb area, double radius);

  [[nodiscard]] std::int32_t node_count() const {
    return static_cast<std::int32_t>(positions_.size());
  }
  [[nodiscard]] std::int64_t edge_count() const {
    return static_cast<std::int64_t>(adjacency_.size()) / 2;
  }
  [[nodiscard]] geom::Vec2 position(NodeId node) const { return positions_[node]; }
  [[nodiscard]] const std::vector<geom::Vec2>& positions() const { return positions_; }
  [[nodiscard]] geom::Aabb area() const { return area_; }
  [[nodiscard]] double radius() const { return radius_; }

  [[nodiscard]] std::span<const NodeId> Neighbors(NodeId node) const {
    return {adjacency_.data() + offsets_[node],
            static_cast<std::size_t>(offsets_[node + 1] - offsets_[node])};
  }
  [[nodiscard]] std::int32_t Degree(NodeId node) const {
    return offsets_[node + 1] - offsets_[node];
  }
  [[nodiscard]] bool HasEdge(NodeId a, NodeId b) const;

  // True when every node is reachable from `root`.
  [[nodiscard]] bool IsConnected(NodeId root = 0) const;

  // Order-sensitive FNV-1a digest over the position bit patterns, the CSR
  // offsets, and the adjacency list. Equal digests certify a bit-identical
  // graph — the scenario-prefab cache's equivalence mode compares a cached
  // graph against a freshly built one through this value.
  [[nodiscard]] std::uint64_t StructureDigest() const;

 private:
  std::vector<geom::Vec2> positions_;
  geom::Aabb area_;
  double radius_;
  std::vector<std::int32_t> offsets_;  // size node_count()+1
  std::vector<NodeId> adjacency_;
};

// BFS layering from a root (the base station). levels[v] = hop distance,
// parent[v] = BFS predecessor, order = nodes in nondecreasing-level
// visitation order. All nodes must be reachable (checked).
struct BfsLayering {
  std::vector<std::int32_t> level;
  std::vector<NodeId> parent;
  std::vector<NodeId> order;
  std::int32_t max_level = 0;
};

BfsLayering BreadthFirstLayering(const UnitDiskGraph& graph, NodeId root);

}  // namespace crn::graph

#endif  // CRN_GRAPH_UNIT_DISK_GRAPH_H_
