#include "harness/atomic_file.h"

#include <cstdio>
#include <fstream>

namespace crn::harness {

bool WriteFileAtomic(const std::string& path, std::string_view contents,
                     std::string* error) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp,  // crn-lint-ok: the one sanctioned ofstream —
                             // this *is* the atomic-write helper
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + temp + " for writing";
      return false;
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      if (error != nullptr) {
        *error = "short write to " + temp + " (disk full?)";
      }
      std::remove(temp.c_str());
      return false;
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + temp + " to " + path;
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

}  // namespace crn::harness
