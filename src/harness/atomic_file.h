// Atomic artifact persistence: write-temp-then-rename, so a concurrent
// reader — or a run killed mid-write — never observes a truncated
// BENCH_*.json, metrics export, trace, checkpoint, or journal record.
// Every artifact writer in the repo goes through this helper; the
// crn_analyze `raw-artifact-write` rule flags direct std::ofstream writes
// that bypass it.
#ifndef CRN_HARNESS_ATOMIC_FILE_H_
#define CRN_HARNESS_ATOMIC_FILE_H_

#include <string>
#include <string_view>

namespace crn::harness {

// Writes `contents` to `path` atomically: the bytes land in `path + ".tmp"`
// and the temp file is renamed over `path` only after a successful write
// and close. POSIX rename(2) within one filesystem is atomic, so readers
// see either the old file or the complete new one — never a prefix. On
// failure the destination is untouched, the temp file is removed on a
// best-effort basis, `error` (when non-null) receives an actionable
// message naming the path and the failing step, and false is returned.
// Concurrent writers of the *same* path race on the temp name and must be
// serialized by the caller (the parallel runner gives every journal cell
// its own file for exactly this reason).
bool WriteFileAtomic(const std::string& path, std::string_view contents,
                     std::string* error = nullptr);

}  // namespace crn::harness

#endif  // CRN_HARNESS_ATOMIC_FILE_H_
