#include "harness/flags.h"

namespace crn::harness {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      errors_.push_back("bare '--' is not a flag");
      continue;
    }
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --name value, unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.contains(name);
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double FlagParser::GetDouble(const std::string& name, double fallback) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(it->second, &pos);
    if (pos == it->second.size()) return parsed;
  } catch (const std::exception&) {
  }
  errors_.push_back("--" + name + "=" + it->second + " is not a number");
  return fallback;
}

std::int64_t FlagParser::GetInt(const std::string& name, std::int64_t fallback) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(it->second, &pos);
    if (pos == it->second.size()) return parsed;
  } catch (const std::exception&) {
  }
  errors_.push_back("--" + name + "=" + it->second + " is not an integer");
  return fallback;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  errors_.push_back("--" + name + "=" + v + " is not a boolean");
  return fallback;
}

std::vector<std::string> FlagParser::UnconsumedFlags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (!consumed_.contains(name)) unknown.push_back("--" + name);
  }
  return unknown;
}

}  // namespace crn::harness
