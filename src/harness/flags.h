// Minimal command-line flag parsing for the CLI tools: --key=value and
// --key value forms, typed getters with defaults, and strict detection of
// unknown or malformed flags (a tool should fail loudly on a typo, not
// silently simulate the wrong configuration).
#ifndef CRN_HARNESS_FLAGS_H_
#define CRN_HARNESS_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace crn::harness {

class FlagParser {
 public:
  // Parses argv; flags are --name=value or --name value; a bare --name is a
  // boolean true. Non-flag arguments are collected as positionals.
  FlagParser(int argc, const char* const* argv);

  [[nodiscard]] bool Has(const std::string& name) const;

  // Typed getters; consume marks the flag as recognized. Malformed values
  // are reported via errors().
  std::string GetString(const std::string& name, const std::string& fallback);
  double GetDouble(const std::string& name, double fallback);
  std::int64_t GetInt(const std::string& name, std::int64_t fallback);
  bool GetBool(const std::string& name, bool fallback);

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  // Flags present on the command line but never consumed by a getter, plus
  // parse errors — call after all getters and refuse to run if non-empty.
  [[nodiscard]] std::vector<std::string> UnconsumedFlags() const;
  [[nodiscard]] const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
  std::vector<std::string> positionals_;
  std::vector<std::string> errors_;
};

}  // namespace crn::harness

#endif  // CRN_HARNESS_FLAGS_H_
