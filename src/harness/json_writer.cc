#include "harness/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "harness/atomic_file.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"

namespace crn::harness {

Json Json::Object() {
  Json json;
  json.value_ = JsonObject{};
  return json;
}

Json Json::Array() {
  Json json;
  json.value_ = JsonArray{};
  return json;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  auto* object = std::get_if<JsonObject>(&value_);
  CRN_CHECK(object != nullptr) << "Json::operator[] on a non-object";
  for (auto& [existing_key, value] : *object) {
    if (existing_key == key) return value;
  }
  object->emplace_back(key, Json());
  return object->back().second;
}

void Json::Push(Json element) {
  if (is_null()) value_ = JsonArray{};
  auto* array = std::get_if<JsonArray>(&value_);
  CRN_CHECK(array != nullptr) << "Json::Push on a non-array";
  array->push_back(std::move(element));
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FormatJsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  CRN_CHECK(ec == std::errc());
  return std::string(buffer, end);
}

std::string DigestHex(std::uint64_t digest) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

void Json::DumpValue(std::ostream& out, int depth) const {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(depth + 1) * 2, ' ');
  if (const auto* object = std::get_if<JsonObject>(&value_)) {
    if (object->empty()) {
      out << "{}";
      return;
    }
    out << "{\n";
    for (std::size_t i = 0; i < object->size(); ++i) {
      out << inner_pad << '"' << JsonEscape((*object)[i].first) << "\": ";
      (*object)[i].second.DumpValue(out, depth + 1);
      out << (i + 1 < object->size() ? ",\n" : "\n");
    }
    out << pad << '}';
  } else if (const auto* array = std::get_if<JsonArray>(&value_)) {
    if (array->empty()) {
      out << "[]";
      return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < array->size(); ++i) {
      out << inner_pad;
      (*array)[i].DumpValue(out, depth + 1);
      out << (i + 1 < array->size() ? ",\n" : "\n");
    }
    out << pad << ']';
  } else if (const auto* text = std::get_if<std::string>(&value_)) {
    out << '"' << JsonEscape(*text) << '"';
  } else if (const auto* boolean = std::get_if<bool>(&value_)) {
    out << (*boolean ? "true" : "false");
  } else if (const auto* signed_int = std::get_if<std::int64_t>(&value_)) {
    out << *signed_int;
  } else if (const auto* unsigned_int = std::get_if<std::uint64_t>(&value_)) {
    out << *unsigned_int;
  } else if (const auto* real = std::get_if<double>(&value_)) {
    out << FormatJsonNumber(*real);
  } else {
    out << "null";
  }
}

void Json::Dump(std::ostream& out) const { DumpValue(out, 0); }

std::string Json::ToString() const {
  std::ostringstream out;
  Dump(out);
  return out.str();
}

namespace {

double Ci95HalfWidth(const core::SampleStats& stats) {
  if (stats.count < 2) return 0.0;
  // Normal approximation; repetition counts are small, so this is a
  // readability aid, not an inference claim.
  return 1.96 * stats.stddev / std::sqrt(static_cast<double>(stats.count));
}

}  // namespace

Json ToJson(const core::SampleStats& stats) {
  Json json = Json::Object();
  json["mean"] = stats.mean;
  json["stddev"] = stats.stddev;
  json["min"] = stats.min;
  json["max"] = stats.max;
  json["count"] = static_cast<std::uint64_t>(stats.count);
  json["ci95"] = Ci95HalfWidth(stats);
  return json;
}

Json ToJson(const ComparisonSummary& summary, const std::string& label) {
  Json json = Json::Object();
  json["label"] = label;
  json["addc_delay_ms"] = ToJson(summary.addc_delay_ms);
  json["coolest_delay_ms"] = ToJson(summary.coolest_delay_ms);
  json["delay_ratio"] = summary.delay_ratio;
  json["addc_capacity"] = ToJson(summary.addc_capacity);
  json["coolest_capacity"] = ToJson(summary.coolest_capacity);
  json["addc_jain_mean"] = summary.addc_jain_mean;
  json["coolest_jain_mean"] = summary.coolest_jain_mean;
  json["addc_completed"] = static_cast<std::int64_t>(summary.addc_completed);
  json["coolest_completed"] = static_cast<std::int64_t>(summary.coolest_completed);
  json["su_caused_violations"] = summary.su_caused_violations;
  json["theorem2_bound_ms_mean"] = summary.theorem2_bound_ms_mean;
  if (summary.addc_trace_digest != 0) {
    json["addc_trace_digest"] = DigestHex(summary.addc_trace_digest);
  }
  return json;
}

Json ToJson(const SweepResult& result) {
  Json json = Json::Object();
  json["title"] = result.title;
  json["parameter"] = result.parameter_name;
  json["repetitions"] = static_cast<std::int64_t>(result.repetitions);
  json["jobs"] = static_cast<std::int64_t>(result.jobs);
  json["seed"] = result.seed;
  if (result.trace_digest != 0) {
    json["trace_digest"] = DigestHex(result.trace_digest);
  }
  json["wall_seconds"] = result.wall_seconds;
  Json points = Json::Array();
  for (std::size_t i = 0; i < result.summaries.size(); ++i) {
    points.Push(ToJson(result.summaries[i], result.labels[i]));
  }
  json["points"] = std::move(points);
  if (!result.metric_values.empty()) {
    // Merged registry state (SweepSpec.metrics), sorted keys — the
    // machine-readable work accounting bench_delta.py compares.
    Json metrics = Json::Object();
    for (const auto& [key, value] : result.metric_values) {
      metrics[key] = value;
    }
    json["metrics"] = std::move(metrics);
  }
  if (result.pool.tasks > 0) {
    // Scheduling diagnostics from the fan-out engine. Kept out of "metrics"
    // deliberately: steals depends on OS scheduling, so it must never enter
    // the digest-compared registry state. bench_delta.py gates it here with
    // the chunk count as its natural upper bound.
    Json pool = Json::Object();
    pool["tasks"] = result.pool.tasks;
    pool["chunks"] = result.pool.chunks;
    pool["steals"] = result.pool.steals;
    pool["workers"] = static_cast<std::int64_t>(result.pool.workers);
    json["pool"] = std::move(pool);
  }
  return json;
}

Json ToJson(const RunProfiler& profiler) {
  Json json = Json::Object();
  json["spans_total"] = static_cast<std::uint64_t>(profiler.spans().size());
  Json phases = Json::Array();
  for (const RunProfiler::PhaseStats& stats : profiler.PhaseSummary()) {
    Json phase = Json::Object();
    phase["phase"] = stats.phase;
    phase["count"] = stats.count;
    phase["total_s"] = stats.total_s;
    phase["mean_s"] =
        stats.count > 0 ? stats.total_s / static_cast<double>(stats.count) : 0.0;
    phase["min_s"] = stats.min_s;
    phase["max_s"] = stats.max_s;
    phases.Push(std::move(phase));
  }
  json["phases"] = std::move(phases);
  return json;
}

Json BenchEnvelope(const std::string& name, const BenchOptions& options) {
  Json json = Json::Object();
  // v2 = v1 plus the optional "profile" section (ToJson(RunProfiler)).
  json["schema_version"] = 2;
  json["bench"] = name;
  json["source"] = "Cai et al., ICDCS 2012 (ADDC reproduction)";
  Json scale = Json::Object();
  scale["full_scale"] = options.full_scale;
  scale["num_sus"] = static_cast<std::int64_t>(options.base.num_sus);
  scale["num_pus"] = static_cast<std::int64_t>(options.base.num_pus);
  scale["area_side"] = options.base.area_side;
  scale["pu_activity"] = options.base.pu_activity;
  scale["repetitions"] = static_cast<std::int64_t>(options.repetitions);
  scale["seed"] = options.base.seed;
  json["scale"] = std::move(scale);
  json["jobs"] = static_cast<std::int64_t>(ResolveJobs(options.jobs));
  return json;
}

bool WriteJsonFile(const Json& root, const std::string& path) {
  // Render in memory, land atomically: a bench killed mid-write (or a
  // sweep consumer racing the writer) must never see a truncated JSON.
  std::ostringstream out;
  root.Dump(out);
  out << "\n";
  std::string error;
  if (!WriteFileAtomic(path, out.str(), &error)) {
    std::cerr << "json_writer: " << error << "\n";
    return false;
  }
  return true;
}

namespace {

std::string BenchJsonPath(const std::string& name, const BenchOptions& options) {
  return options.json_out.empty() ? "BENCH_" + name + ".json" : options.json_out;
}

bool FinishBenchJson(const std::string& name, const BenchOptions& options,
                     Json root, double wall_seconds, std::ostream& log,
                     const RunProfiler* profiler) {
  if (profiler != nullptr) root["profile"] = ToJson(*profiler);
  root["wall_seconds"] = wall_seconds;
  const std::string path = BenchJsonPath(name, options);
  if (!WriteJsonFile(root, path)) return false;
  log << "BENCH json: " << path << "\n";
  if (profiler != nullptr && !options.trace_out.empty()) {
    std::ostringstream trace;
    profiler->WriteChromeTrace(trace);
    std::string error;
    if (!WriteFileAtomic(options.trace_out, trace.str(), &error)) {
      std::cerr << "json_writer: " << error << "\n";
      return false;
    }
    log << "BENCH trace: " << options.trace_out << "\n";
  }
  return true;
}

}  // namespace

bool WriteBenchJson(const std::string& name, const BenchOptions& options,
                    const std::vector<SweepResult>& sweeps, double wall_seconds,
                    std::ostream& log, const RunProfiler* profiler) {
  Json root = BenchEnvelope(name, options);
  Json array = Json::Array();
  for (const SweepResult& sweep : sweeps) array.Push(ToJson(sweep));
  root["sweeps"] = std::move(array);
  return FinishBenchJson(name, options, std::move(root), wall_seconds, log,
                         profiler);
}

bool WriteBenchJson(const std::string& name, const BenchOptions& options,
                    Json series, double wall_seconds, std::ostream& log,
                    const RunProfiler* profiler) {
  Json root = BenchEnvelope(name, options);
  root["series"] = std::move(series);
  return FinishBenchJson(name, options, std::move(root), wall_seconds, log,
                         profiler);
}

}  // namespace crn::harness
