// Structured results emission: every bench binary writes BENCH_<name>.json
// next to its Markdown tables, giving the repo a machine-readable perf and
// accuracy trajectory (per-point mean/std/CI, ratios, wall time, scale,
// seed, trace digest).
//
// Json is a small insertion-ordered value tree — enough to serialize bench
// results deterministically (object keys keep insertion order, doubles use
// shortest-round-trip formatting, non-finite doubles become null). It is a
// writer only; nothing in the repo needs to parse JSON back.
#ifndef CRN_HARNESS_JSON_WRITER_H_
#define CRN_HARNESS_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/metrics.h"
#include "harness/sweep.h"

namespace crn::harness {

class RunProfiler;  // profiler.h

class Json {
 public:
  Json() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): scalar literals are values.
  Json(std::nullptr_t) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(bool value) : value_(value) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(double value) : value_(value) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(std::int64_t value) : value_(value) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(std::uint64_t value) : value_(value) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(int value) : value_(static_cast<std::int64_t>(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(const char* value) : value_(std::string(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(std::string value) : value_(std::move(value)) {}

  static Json Object();
  static Json Array();

  // Object access: inserts the key (preserving insertion order) when
  // missing. The value must be an object (or null, which becomes one).
  Json& operator[](const std::string& key);

  // Array append. The value must be an array (or null, which becomes one).
  void Push(Json element);

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }

  // Serializes with 2-space indentation and a deterministic layout.
  void Dump(std::ostream& out) const;
  [[nodiscard]] std::string ToString() const;

 private:
  using JsonArray = std::vector<Json>;
  using JsonObject = std::vector<std::pair<std::string, Json>>;

  void DumpValue(std::ostream& out, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, JsonArray, JsonObject>
      value_ = nullptr;
};

// "\" and control characters escaped per RFC 8259; exposed for tests.
std::string JsonEscape(const std::string& text);

// Shortest round-trip decimal for a double; NaN/Inf serialize as "null".
std::string FormatJsonNumber(double value);

// 64-bit digests as "0x%016x" strings (JSON numbers above 2^53 are lossy).
std::string DigestHex(std::uint64_t digest);

// mean/stddev/min/max/count plus a normal-approximation 95% CI half-width.
Json ToJson(const core::SampleStats& stats);
Json ToJson(const ComparisonSummary& summary, const std::string& label);
Json ToJson(const SweepResult& result);

// Per-phase wall-clock aggregates: {"spans_total": N, "phases": [...]}
// (the schema-v2 "profile" section).
Json ToJson(const RunProfiler& profiler);

// Scale/seed/jobs envelope shared by every bench JSON. schema_version 2:
// v2 adds the optional "profile" section; every v1 field is unchanged, so
// v1 consumers keep working.
Json BenchEnvelope(const std::string& name, const BenchOptions& options);

// Writes `root` (plus trailing newline); false + stderr note on I/O error.
bool WriteJsonFile(const Json& root, const std::string& path);

// Standard emission for sweep benches: envelope + "sweeps" array, written
// to options.json_out (default BENCH_<name>.json), announced on `log`.
// A non-null profiler adds the "profile" section and, when
// options.trace_out is set, also writes its Chrome trace there.
bool WriteBenchJson(const std::string& name, const BenchOptions& options,
                    const std::vector<SweepResult>& sweeps, double wall_seconds,
                    std::ostream& log, const RunProfiler* profiler = nullptr);

// Emission for benches with bespoke tables: envelope + "series" payload.
bool WriteBenchJson(const std::string& name, const BenchOptions& options,
                    Json series, double wall_seconds, std::ostream& log,
                    const RunProfiler* profiler = nullptr);

}  // namespace crn::harness

#endif  // CRN_HARNESS_JSON_WRITER_H_
