#include "harness/obs_export.h"

#include <utility>

namespace crn::harness {

Json ToJson(const obs::SnapshotEntry& entry) {
  Json json = Json::Object();
  json["key"] = entry.key;
  json["kind"] = obs::ToString(entry.kind);
  if (entry.kind == obs::MetricKind::kHistogram) {
    json["count"] = entry.count;
    json["sum"] = entry.sum;
    json["min"] = entry.min;
    json["max"] = entry.max;
    json["mean"] = entry.count == 0 ? 0.0
                                    : static_cast<double>(entry.sum) /
                                          static_cast<double>(entry.count);
    Json buckets = Json::Array();
    for (const auto& [bucket, count] : entry.buckets) {
      Json pair = Json::Array();
      pair.Push(static_cast<std::int64_t>(bucket));
      pair.Push(count);
      buckets.Push(std::move(pair));
    }
    json["buckets"] = std::move(buckets);
  } else {
    json["value"] = entry.value;
  }
  return json;
}

Json ToJson(const obs::Snapshot& snapshot) {
  Json json = Json::Object();
  json["at_ns"] = static_cast<std::int64_t>(snapshot.at);
  Json entries = Json::Array();
  for (const obs::SnapshotEntry& entry : snapshot.entries) {
    entries.Push(ToJson(entry));
  }
  json["entries"] = std::move(entries);
  return json;
}

Json ToJsonCompact(const obs::Snapshot& snapshot) {
  Json json = Json::Object();
  json["at_ns"] = static_cast<std::int64_t>(snapshot.at);
  Json values = Json::Array();
  for (const obs::SnapshotEntry& entry : snapshot.entries) {
    Json row = Json::Array();
    row.Push(entry.key);
    if (entry.kind == obs::MetricKind::kHistogram) {
      row.Push(entry.count);
      row.Push(entry.sum);
    } else {
      row.Push(entry.value);
    }
    values.Push(std::move(row));
  }
  json["values"] = std::move(values);
  return json;
}

Json ToJson(const obs::MetricsRegistry& registry, sim::TimeNs final_at) {
  Json json = Json::Object();
  json["schema_version"] = 1;
  json["digest"] = DigestHex(registry.Digest());
  json["final"] = ToJson(registry.Capture(final_at));
  Json series = Json::Array();
  for (const obs::Snapshot& snapshot : registry.series()) {
    series.Push(ToJsonCompact(snapshot));
  }
  json["series"] = std::move(series);
  return json;
}

bool WriteMetricsJson(const obs::MetricsRegistry& registry,
                      sim::TimeNs final_at, const std::string& path,
                      std::ostream& log) {
  if (!WriteJsonFile(ToJson(registry, final_at), path)) return false;
  log << "metrics json: " << path << "\n";
  return true;
}

}  // namespace crn::harness
