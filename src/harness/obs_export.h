// JSON emission for the observability layer: renders a MetricsRegistry
// (final state plus any recorded sim-time series) through the same Json
// value tree the bench writers use, for `addc_sim --metrics-out` and tests.
//
// Layout (deterministic: entries in sorted key order, series in record
// order):
//   {
//     "schema_version": 1,
//     "digest": "0x...",            // MetricsRegistry::Digest()
//     "final": {"at_ns": T, "entries": [...]},
//     "series": [{"at_ns": t0, "values": [...]}, ...]
//   }
// Final counter/gauge entries carry {"key","kind","value"}; histogram
// entries carry {"key","kind","count","sum","min","max","mean","buckets"}
// where buckets is [[bucket_index, count], ...] for non-empty buckets only.
// Series snapshots are compact — one row per instrument, [key, value] for
// counters/gauges and [key, count, sum] for histograms — because a run can
// record thousands of them.
#ifndef CRN_HARNESS_OBS_EXPORT_H_
#define CRN_HARNESS_OBS_EXPORT_H_

#include <ostream>
#include <string>

#include "harness/json_writer.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace crn::harness {

Json ToJson(const obs::SnapshotEntry& entry);
Json ToJson(const obs::Snapshot& snapshot);

// The compact per-series-point form described above.
Json ToJsonCompact(const obs::Snapshot& snapshot);

// Full registry document: Capture(final_at) as "final" plus the recorded
// series and the registry digest.
Json ToJson(const obs::MetricsRegistry& registry, sim::TimeNs final_at);

// Writes ToJson(registry, final_at) to `path`, announcing it on `log` as
// "metrics json: <path>". Returns false (with a stderr note) on I/O error.
bool WriteMetricsJson(const obs::MetricsRegistry& registry,
                      sim::TimeNs final_at, const std::string& path,
                      std::ostream& log);

}  // namespace crn::harness

#endif  // CRN_HARNESS_OBS_EXPORT_H_
