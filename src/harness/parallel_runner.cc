#include "harness/parallel_runner.h"

#include <algorithm>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "harness/profiler.h"
#include "harness/thread_pool.h"

namespace crn::harness {

std::int32_t ResolveJobs(std::int32_t requested) {
  if (requested >= 1) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::max<std::int32_t>(1, static_cast<std::int32_t>(hardware));
}

ParallelRunner::ParallelRunner(std::int32_t jobs, std::int64_t grain,
                               ExecutionEngine engine)
    : jobs_(ResolveJobs(jobs)), grain_(grain), engine_(engine) {}

WorkStealingStats ParallelRunner::ForEachIndex(
    std::int64_t count, const std::function<void(std::int64_t)>& fn,
    RunProfiler* profiler, const std::string& phase) const {
  if (count <= 0) return {};
  // Same call for every engine: a profiled cell is one span labelled
  // "<phase>[i]" on whichever worker ran it.
  const auto run_cell = [&fn, profiler, &phase](std::int64_t i) {
    if (profiler == nullptr) {
      fn(i);
      return;
    }
    RunProfiler::Scope scope(profiler, phase,
                             phase + "[" + std::to_string(i) + "]");
    fn(i);
  };

  if (engine_ == ExecutionEngine::kWorkStealing) {
    return RunWorkStealing(count, std::min<std::int64_t>(jobs_, count),
                           grain_, run_cell);
  }

  // Legacy ThreadPool engine (A/B baseline): one heap-allocated closure and
  // one future per cell through the mutex-FIFO queue.
  WorkStealingStats stats;
  stats.tasks = count;
  stats.chunks = count;
  if (jobs_ == 1) {
    stats.workers = 1;
    for (std::int64_t i = 0; i < count; ++i) run_cell(i);
    return stats;
  }
  // One pool per fan-out: experiment cells are seconds-long simulations, so
  // thread startup is noise, and a fresh pool keeps the runner stateless.
  ThreadPool pool(static_cast<std::size_t>(
      std::min<std::int64_t>(jobs_, count)));
  stats.workers = static_cast<std::int32_t>(pool.thread_count());
  std::vector<std::future<void>> cells;
  cells.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    cells.push_back(
        pool.Submit(  // crn-lint-ok: jobs only call run_cell, which writes
                      // a distinct per-cell slot keyed by its own index i.
            [&run_cell, i] { run_cell(i); }));
  }
  // Collect in index order: every cell finishes (no abandoned work), and
  // the lowest-index exception is the one that propagates.
  std::exception_ptr first_error;
  for (std::future<void>& cell : cells) {
    try {
      cell.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

}  // namespace crn::harness
