// Deterministic fan-out of independent experiment cells.
//
// Every (sweep point × repetition × algorithm) cell of an experiment is an
// independent simulation: each one builds (or shares, via the scenario-
// prefab cache) its own Scenario and derives all randomness from
// (config.seed, repetition), never from shared state. The runner therefore
// only has to execute cells and let the caller reduce the per-index results
// in a fixed order — the output is bit-identical at every jobs value, which
// tests/harness/parallel_sweep_test.cc pins against the inline (jobs = 1)
// engine via the auditor's trace digests.
//
// The default engine is the work-stealing executor (work_stealing.h); the
// legacy mutex-FIFO ThreadPool engine is kept selectable so
// bench_sweep_scaling can A/B the two on identical work.
#ifndef CRN_HARNESS_PARALLEL_RUNNER_H_
#define CRN_HARNESS_PARALLEL_RUNNER_H_

#include <chrono>  // crn-lint-ok: harness wall-time only, never simulation state
#include <cstdint>
#include <functional>
#include <string>

#include "harness/work_stealing.h"

namespace crn::harness {

class RunProfiler;  // profiler.h (which includes this header for WallTimer)

// Maps a jobs request to a worker count: values >= 1 are taken literally,
// 0 (and negatives) mean "auto" — the hardware concurrency, floored at 1.
std::int32_t ResolveJobs(std::int32_t requested);

class ParallelRunner {
 public:
  // `jobs` is taken through ResolveJobs(); a resolved value of 1 runs every
  // cell inline on the calling thread (the serial engine — no pool, no
  // synchronization). `grain` follows ResolveGrain() (work_stealing.h):
  // >= 1 cells per chunk literally, 0 = auto; the ThreadPool engine
  // ignores it (it submits per cell).
  explicit ParallelRunner(std::int32_t jobs, std::int64_t grain = 0,
                          ExecutionEngine engine = ExecutionEngine::kWorkStealing);

  [[nodiscard]] std::int32_t jobs() const { return jobs_; }
  [[nodiscard]] std::int64_t grain() const { return grain_; }
  [[nodiscard]] ExecutionEngine engine() const { return engine_; }

  // Runs fn(0) .. fn(count - 1), all indices exactly once. Parallel
  // execution order is unspecified; callers must write results only to
  // their own index. If cells throw, the lowest-index exception is
  // rethrown after every cell has finished.
  //
  // When `profiler` is non-null every cell is recorded as one wall-clock
  // span "<phase>[i]" under `phase`, tagged with the worker that ran it.
  // Profiling is observation-only: it never changes scheduling, execution
  // order, or any result, and a null profiler costs one branch per cell.
  //
  // Returns scheduling diagnostics (never digested: steals depend on OS
  // scheduling). Under the ThreadPool engine, chunks == tasks and
  // steals == 0 — every cell is its own submission.
  WorkStealingStats ForEachIndex(std::int64_t count,
                                 const std::function<void(std::int64_t)>& fn,
                                 RunProfiler* profiler = nullptr,
                                 const std::string& phase = "cells") const;

 private:
  std::int32_t jobs_;
  std::int64_t grain_;
  ExecutionEngine engine_;
};

// Wall-clock stopwatch for experiment timing (bench JSON, speedup
// reporting). Quarantined here so simulation code keeps depending on
// sim::TimeNs only — the crn_lint wall-clock rule still guards src/.
class WallTimer {
 public:
  WallTimer()
      : start_(std::chrono::steady_clock::now()) {}  // crn-lint-ok: harness timing

  [[nodiscard]] double Seconds() const {
    const auto now = std::chrono::steady_clock::now();  // crn-lint-ok: harness timing
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;  // crn-lint-ok: harness timing
};

}  // namespace crn::harness

#endif  // CRN_HARNESS_PARALLEL_RUNNER_H_
