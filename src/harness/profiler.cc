#include "harness/profiler.h"

#include <algorithm>
#include <map>
#include <utility>

#include "harness/thread_pool.h"

namespace crn::harness {

void RunProfiler::RecordSpan(std::string phase, std::string label,
                             double begin_s, double end_s, std::int32_t worker) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(
      Span{std::move(phase), std::move(label), begin_s, end_s, worker});
}

RunProfiler::Scope::Scope(RunProfiler* profiler, std::string phase,
                          std::string label)
    : profiler_(profiler), phase_(std::move(phase)), label_(std::move(label)) {
  if (profiler_ != nullptr) begin_s_ = profiler_->Now();
}

RunProfiler::Scope::~Scope() {
  if (profiler_ == nullptr) return;
  profiler_->RecordSpan(std::move(phase_), std::move(label_), begin_s_,
                        profiler_->Now(), ThreadPool::current_worker_index());
}

std::vector<RunProfiler::Span> RunProfiler::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<RunProfiler::PhaseStats> RunProfiler::PhaseSummary() const {
  // std::map: phases come out sorted by name regardless of the wall-clock
  // completion order the spans were recorded in.
  std::map<std::string, PhaseStats> by_phase;
  for (const Span& span : spans()) {
    PhaseStats& stats = by_phase[span.phase];
    const double duration = span.end_s - span.begin_s;
    if (stats.count == 0) {
      stats.phase = span.phase;
      stats.min_s = duration;
      stats.max_s = duration;
    } else {
      stats.min_s = std::min(stats.min_s, duration);
      stats.max_s = std::max(stats.max_s, duration);
    }
    ++stats.count;
    stats.total_s += duration;
  }
  std::vector<PhaseStats> result;
  result.reserve(by_phase.size());
  for (auto& [name, stats] : by_phase) result.push_back(std::move(stats));
  return result;
}

std::vector<obs::ChromeTraceEvent> RunProfiler::ToChromeEvents() const {
  const std::vector<Span> all = spans();
  std::vector<obs::ChromeTraceEvent> events;
  events.reserve(all.size() + 1);
  std::int32_t max_worker = 0;
  for (const Span& span : all) {
    obs::ChromeTraceEvent event;
    event.name = span.label.empty() ? span.phase : span.label;
    event.category = span.phase;
    event.phase = obs::ChromeTraceEvent::Phase::kComplete;
    event.ts_us = span.begin_s * 1e6;
    event.dur_us = (span.end_s - span.begin_s) * 1e6;
    event.pid = 2;  // distinct from the sim-time trace's pid 1
    event.tid = span.worker;
    events.push_back(std::move(event));
    max_worker = std::max(max_worker, span.worker);
  }
  for (std::int32_t worker = 0; worker <= max_worker; ++worker) {
    obs::ChromeTraceEvent meta;
    meta.name = "thread_name";
    meta.category = "__metadata";
    meta.phase = obs::ChromeTraceEvent::Phase::kMetadata;
    meta.pid = 2;
    meta.tid = worker;
    meta.args.emplace_back(
        "name", worker == 0 ? std::string("main") : "worker-" + std::to_string(worker));
    events.push_back(std::move(meta));
  }
  return events;
}

void RunProfiler::WriteChromeTrace(std::ostream& out) const {
  obs::WriteChromeTrace(ToChromeEvents(), out);
}

void AttachFlightRecorderProbe(RunProfiler& profiler,
                               sim::FlightRecorder& recorder) {
  recorder.set_wall_probe([&profiler] { return profiler.Now(); });
}

void FoldFlightRecorderIntoProfiler(const sim::FlightRecorder& recorder,
                                    RunProfiler& profiler) {
  const std::vector<std::string>& names = recorder.kind_names();
  const std::vector<sim::KindCounters>& counters = recorder.counters();
  for (std::size_t k = 0; k < counters.size(); ++k) {
    const double wall =
        recorder.fire_wall_seconds(static_cast<std::uint16_t>(k));
    if (counters[k].fires == 0 && wall <= 0.0) continue;
    const std::string& name =
        k < names.size() && !names[k].empty() ? names[k] : names[0];
    profiler.RecordSpan("sched.fire:" + name,
                        "fires=" + std::to_string(counters[k].fires),
                        /*begin_s=*/0.0, /*end_s=*/wall, /*worker=*/0);
  }
}

}  // namespace crn::harness
