// Wall-clock run profiler for the experiment harness — the third leg of
// the observability layer (DESIGN.md §"Observability").
//
// RunProfiler collects named wall-clock spans (phase + label + begin/end
// seconds since the profiler's epoch + worker id) from the sweep engine,
// ParallelRunner, and bench mainlines. The aggregate per-phase summary goes
// into BENCH_<name>.json (schema v2 "profile" section, json_writer.h); the
// raw spans render as a Chrome trace via obs/chrome_trace.h (--trace-out).
//
// Wall-clock readings live only here, in the harness sink layer, and are
// never folded into any digest or simulation-visible state — the registry /
// trace-digest determinism contract is untouched. RecordSpan is
// thread-safe; with no profiler attached (null pointer everywhere) the
// hooks cost one branch.
#ifndef CRN_HARNESS_PROFILER_H_
#define CRN_HARNESS_PROFILER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "harness/parallel_runner.h"
#include "obs/chrome_trace.h"
#include "sim/flight_recorder.h"

namespace crn::harness {

class RunProfiler {
 public:
  struct Span {
    std::string phase;   // coarse stage, e.g. "cells", "reduce", "render"
    std::string label;   // instance, e.g. "point=40 rep=2 algo=addc"
    double begin_s = 0;  // seconds since the profiler's construction
    double end_s = 0;
    std::int32_t worker = 0;  // ThreadPool worker index; 0 = caller thread
  };

  // Per-phase aggregate, sorted by phase name for deterministic layout
  // (the timing values themselves are wall-clock, never digested).
  struct PhaseStats {
    std::string phase;
    std::int64_t count = 0;
    double total_s = 0;
    double min_s = 0;
    double max_s = 0;
  };

  RunProfiler() = default;
  RunProfiler(const RunProfiler&) = delete;
  RunProfiler& operator=(const RunProfiler&) = delete;

  // Seconds since construction (the epoch all spans share).
  [[nodiscard]] double Now() const { return timer_.Seconds(); }

  // Thread-safe append of a closed span.
  void RecordSpan(std::string phase, std::string label, double begin_s,
                  double end_s, std::int32_t worker);

  // RAII span bound to the calling thread's pool worker index.
  class Scope {
   public:
    // `profiler` may be null — the scope then does nothing.
    Scope(RunProfiler* profiler, std::string phase, std::string label = "");
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RunProfiler* profiler_;
    std::string phase_;
    std::string label_;
    double begin_s_ = 0;
  };

  [[nodiscard]] std::vector<Span> spans() const;           // snapshot copy
  [[nodiscard]] std::vector<PhaseStats> PhaseSummary() const;

  // Chrome trace rendering: one "X" slice per span, tid = worker index,
  // plus thread-name metadata. ts is wall-clock microseconds since the
  // profiler epoch.
  [[nodiscard]] std::vector<obs::ChromeTraceEvent> ToChromeEvents() const;
  void WriteChromeTrace(std::ostream& out) const;

 private:
  WallTimer timer_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
};

// --- flight-recorder integration (sim/flight_recorder.h) -----------------
// The sim layer cannot read wall clocks, so the harness hands the recorder
// the profiler's epoch clock as its probe. Install before the run.
void AttachFlightRecorderProbe(RunProfiler& profiler,
                               sim::FlightRecorder& recorder);

// Folds the recorder's per-kind fire wall attribution into the profiler as
// one closed "sched.fire:<kind>" span per active kind (label carries the
// deterministic fire count). PhaseSummary() and the BENCH json `profile`
// section then report scheduler callback wall time broken down by event
// kind. Call after the run; kinds with no fires and no wall are skipped.
void FoldFlightRecorderIntoProfiler(const sim::FlightRecorder& recorder,
                                    RunProfiler& profiler);

}  // namespace crn::harness

#endif  // CRN_HARNESS_PROFILER_H_
