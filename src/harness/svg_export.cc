#include "harness/svg_export.h"

#include "common/check.h"

namespace crn::harness {

namespace {

const char* RoleColor(graph::NodeRole role) {
  switch (role) {
    case graph::NodeRole::kDominator:
      return "#1a1a1a";  // black, as in the paper's Fig. 2
    case graph::NodeRole::kConnector:
      return "#2a6fdb";  // blue
    case graph::NodeRole::kDominatee:
      return "#ffffff";  // white with outline
  }
  return "#888888";
}

}  // namespace

void WriteSvg(std::ostream& out, const graph::UnitDiskGraph& graph,
              const graph::CdsTree* tree,
              const std::vector<geom::Vec2>& pu_positions,
              const SvgOptions& options) {
  CRN_CHECK(options.pixels_per_meter > 0.0);
  const geom::Aabb area = graph.area();
  const double scale = options.pixels_per_meter;
  const double margin = options.margin_m;
  const double width = (area.Width() + 2 * margin) * scale;
  const double height = (area.Height() + 2 * margin) * scale;
  // SVG y grows downward; flip so the plot reads like the paper's figures.
  auto px = [&](geom::Vec2 p) { return (p.x - area.min.x + margin) * scale; };
  auto py = [&](geom::Vec2 p) { return height - (p.y - area.min.y + margin) * scale; };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " " << height
      << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"#fbfaf7\"/>\n";
  out << "<rect x=\"" << margin * scale << "\" y=\"" << margin * scale << "\" width=\""
      << area.Width() * scale << "\" height=\"" << area.Height() * scale
      << "\" fill=\"none\" stroke=\"#b9b2a4\" stroke-width=\"1\"/>\n";

  if (options.draw_pcr_disk && options.pcr_m > 0.0 && graph.node_count() > 0) {
    const geom::Vec2 sink = graph.position(0);
    out << "<circle cx=\"" << px(sink) << "\" cy=\"" << py(sink) << "\" r=\""
        << options.pcr_m * scale
        << "\" fill=\"#2a6fdb\" fill-opacity=\"0.06\" stroke=\"#2a6fdb\" "
           "stroke-opacity=\"0.35\" stroke-dasharray=\"6 4\"/>\n";
  }

  if (tree != nullptr && options.draw_tree_edges) {
    out << "<g stroke=\"#8a8377\" stroke-width=\"0.8\" stroke-opacity=\"0.7\">\n";
    for (graph::NodeId v = 0; v < graph.node_count(); ++v) {
      if (v == tree->root()) continue;
      const geom::Vec2 a = graph.position(v);
      const geom::Vec2 b = graph.position(tree->parent(v));
      out << "<line x1=\"" << px(a) << "\" y1=\"" << py(a) << "\" x2=\"" << px(b)
          << "\" y2=\"" << py(b) << "\"/>\n";
    }
    out << "</g>\n";
  }

  // Primary users: red squares.
  out << "<g fill=\"#c33d35\">\n";
  for (const geom::Vec2& p : pu_positions) {
    out << "<rect x=\"" << px(p) - 3 << "\" y=\"" << py(p) - 3
        << "\" width=\"6\" height=\"6\"/>\n";
  }
  out << "</g>\n";

  // Secondary nodes by role; the base station last, as a larger ring.
  for (graph::NodeId v = 0; v < graph.node_count(); ++v) {
    const geom::Vec2 p = graph.position(v);
    const char* fill =
        tree != nullptr ? RoleColor(tree->role(v)) : "#666666";
    out << "<circle cx=\"" << px(p) << "\" cy=\"" << py(p)
        << "\" r=\"3\" fill=\"" << fill
        << "\" stroke=\"#1a1a1a\" stroke-width=\"0.6\"/>\n";
  }
  if (graph.node_count() > 0) {
    const geom::Vec2 sink = graph.position(0);
    out << "<circle cx=\"" << px(sink) << "\" cy=\"" << py(sink)
        << "\" r=\"7\" fill=\"none\" stroke=\"#c33d35\" stroke-width=\"2\"/>\n";
  }
  out << "</svg>\n";
}

}  // namespace crn::harness
