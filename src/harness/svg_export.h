// SVG rendering of a deployed scenario: the primary users, the secondary
// nodes colored by CDS role, and the collection-tree edges — the picture
// worth having when debugging a topology or presenting a run. Pure string
// generation, no graphics dependency.
#ifndef CRN_HARNESS_SVG_EXPORT_H_
#define CRN_HARNESS_SVG_EXPORT_H_

#include <ostream>
#include <vector>

#include "geom/vec2.h"
#include "graph/cds_tree.h"
#include "graph/unit_disk_graph.h"

namespace crn::harness {

struct SvgOptions {
  double pixels_per_meter = 4.0;
  double margin_m = 5.0;
  bool draw_tree_edges = true;
  bool draw_pcr_disk = true;   // sensing disk around the base station
  double pcr_m = 0.0;          // radius of that disk (0 = skip)
};

// Renders the network. `tree` may be null (nodes only, no roles/edges);
// `pu_positions` may be empty.
void WriteSvg(std::ostream& out, const graph::UnitDiskGraph& graph,
              const graph::CdsTree* tree,
              const std::vector<geom::Vec2>& pu_positions,
              const SvgOptions& options = {});

}  // namespace crn::harness

#endif  // CRN_HARNESS_SVG_EXPORT_H_
