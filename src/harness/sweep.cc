#include "harness/sweep.h"

#include "common/env.h"
#include "harness/table.h"

namespace crn::harness {

ComparisonSummary RunRepeatedComparison(const core::ScenarioConfig& config,
                                        std::int32_t repetitions,
                                        routing::TemperatureMetric metric) {
  std::vector<double> addc_delay, coolest_delay;
  std::vector<double> addc_capacity, coolest_capacity;
  std::vector<double> addc_jain, coolest_jain;
  std::vector<double> bounds;
  ComparisonSummary summary;
  for (std::int32_t rep = 0; rep < repetitions; ++rep) {
    const core::ComparisonResult result = core::RunComparison(config, rep, metric);
    addc_delay.push_back(result.addc.delay_ms);
    coolest_delay.push_back(result.coolest.delay_ms);
    addc_capacity.push_back(result.addc.capacity_fraction);
    coolest_capacity.push_back(result.coolest.capacity_fraction);
    addc_jain.push_back(result.addc.jain_delivery_fairness);
    coolest_jain.push_back(result.coolest.jain_delivery_fairness);
    bounds.push_back(result.addc.theorem2_delay_bound_ms);
    summary.addc_completed += result.addc.completed ? 1 : 0;
    summary.coolest_completed += result.coolest.completed ? 1 : 0;
    summary.su_caused_violations += result.addc.mac.su_caused_violations +
                                    result.coolest.mac.su_caused_violations;
  }
  summary.addc_delay_ms = core::Summarize(addc_delay);
  summary.coolest_delay_ms = core::Summarize(coolest_delay);
  summary.delay_ratio = summary.addc_delay_ms.mean > 0.0
                            ? summary.coolest_delay_ms.mean / summary.addc_delay_ms.mean
                            : 0.0;
  summary.addc_capacity = core::Summarize(addc_capacity);
  summary.coolest_capacity = core::Summarize(coolest_capacity);
  summary.addc_jain_mean = core::Summarize(addc_jain).mean;
  summary.coolest_jain_mean = core::Summarize(coolest_jain).mean;
  summary.theorem2_bound_ms_mean = core::Summarize(bounds).mean;
  return summary;
}

std::vector<ComparisonSummary> RunDelaySweep(const std::string& title,
                                             const std::string& parameter_name,
                                             const std::vector<SweepPoint>& points,
                                             std::int32_t repetitions,
                                             std::ostream& out,
                                             routing::TemperatureMetric metric) {
  out << "== " << title << " ==\n";
  Table table({parameter_name, "ADDC delay (ms)", "Coolest delay (ms)",
               "Coolest/ADDC", "ADDC capacity (·W)", "violations"});
  std::vector<ComparisonSummary> summaries;
  summaries.reserve(points.size());
  for (const SweepPoint& point : points) {
    const ComparisonSummary s = RunRepeatedComparison(point.config, repetitions, metric);
    table.AddRow({point.label,
                  FormatMeanStd(s.addc_delay_ms.mean, s.addc_delay_ms.stddev, 0),
                  FormatMeanStd(s.coolest_delay_ms.mean, s.coolest_delay_ms.stddev, 0),
                  FormatDouble(s.delay_ratio, 2),
                  FormatDouble(s.addc_capacity.mean, 4),
                  std::to_string(s.su_caused_violations)});
    summaries.push_back(s);
  }
  table.PrintMarkdown(out);
  out << "\n";
  return summaries;
}

BenchScale ResolveBenchScale() {
  BenchScale scale;
  scale.full_scale = GetEnvBool("CRN_FULL_SCALE", false);
  if (scale.full_scale) {
    scale.base = core::ScenarioConfig::PaperDefaults();
    scale.repetitions = 10;  // the paper repeats each point 10 times
  } else {
    const double factor = GetEnvDouble("CRN_SCALE", 0.25);
    scale.base = core::ScenarioConfig::ScaledDefaults(factor);
    scale.repetitions = 3;
  }
  scale.repetitions =
      static_cast<std::int32_t>(GetEnvInt("CRN_REPS", scale.repetitions));
  return scale;
}

void PrintBenchHeader(const std::string& figure, const std::string& claim,
                      const BenchScale& scale, std::ostream& out) {
  out << "# Reproduction of " << figure << " — Cai et al., ICDCS 2012\n";
  out << "# Paper claim: " << claim << "\n";
  out << "# Scale: " << (scale.full_scale ? "FULL (paper)" : "scaled-down")
      << "  n=" << scale.base.num_sus << "  N=" << scale.base.num_pus
      << "  A=" << scale.base.area_side << "x" << scale.base.area_side
      << "  reps=" << scale.repetitions
      << "  (set CRN_FULL_SCALE=1 for the paper configuration)\n\n";
}

}  // namespace crn::harness
