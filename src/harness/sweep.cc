#include "harness/sweep.h"

#include <cstdlib>
#include <iostream>

#include "common/env.h"
#include "harness/flags.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/table.h"

namespace crn::harness {

namespace {

// Order-sensitive FNV-1a fold of a 64-bit value into an accumulator; used
// to combine per-cell trace digests into point- and sweep-level digests.
constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;

std::uint64_t FoldDigest(std::uint64_t accumulator, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    accumulator ^= (value >> (8 * byte)) & 0xFFU;
    accumulator *= 0x100000001B3ULL;
  }
  return accumulator;
}

// One experiment cell: (point, repetition, algorithm). Cells are laid out
// point-major, repetition next, ADDC before Coolest — the same order the
// serial reduction consumes, so results are independent of which worker
// finishes first.
struct CellOutcome {
  core::CollectionResult result;
  std::uint64_t digest = 0;
  // Cell-local registry (ADDC cells, SweepSpec.metrics only): filled by the
  // worker that ran the cell, folded into the caller's registry by the
  // serial reduction below — never touched concurrently.
  obs::MetricsRegistry metrics;
};

}  // namespace

SweepResult RunSweep(const SweepSpec& spec) {
  const WallTimer timer;
  SweepResult sweep;
  sweep.title = spec.title;
  sweep.parameter_name = spec.parameter_name;
  sweep.repetitions = spec.repetitions;
  sweep.jobs = ResolveJobs(spec.jobs);
  if (!spec.points.empty()) sweep.seed = spec.points.front().config.seed;

  const auto reps = static_cast<std::int64_t>(spec.repetitions);
  const std::int64_t algorithms = spec.addc_only ? 1 : 2;
  const std::int64_t cells_per_point = algorithms * reps;
  const std::int64_t cell_count =
      cells_per_point * static_cast<std::int64_t>(spec.points.size());
  std::vector<CellOutcome> cells(static_cast<std::size_t>(cell_count));

  // Geometry sharing across cells: the cache hands every cell whose
  // (geometry key, rep) matches the same immutable prefab. Deployment is a
  // pure function of (config, rep) either way, so cached and rebuilt
  // geometry are bit-identical (verify_prefabs re-proves it per hit).
  core::ScenarioPrefabCache prefab_cache(spec.verify_prefabs);
  const ParallelRunner runner(spec.jobs, spec.grain, spec.engine);
  sweep.pool = runner.ForEachIndex(
      cell_count,
      [&](std::int64_t index) {
        const auto point = static_cast<std::size_t>(index / cells_per_point);
        const std::int64_t rest = index % cells_per_point;
        const auto rep = static_cast<std::uint64_t>(rest / algorithms);
        const bool is_addc = spec.addc_only || rest % 2 == 0;
        const core::ScenarioConfig& config = spec.points[point].config;
        const core::Scenario scenario =
            spec.prefab_cache
                ? core::Scenario(config, rep, prefab_cache.Get(config, rep))
                : core::Scenario(config, rep);
        CellOutcome& cell = cells[static_cast<std::size_t>(index)];
        if (is_addc) {
          core::RunOptions options;
          core::AuditReport report;
          if (spec.collect_digests) options.audit_report = &report;
          if (spec.metrics != nullptr) {
            options.metrics = &cell.metrics;
            // The sweep fold is state-only: per-cell series would interleave
            // unrelated timelines in the merged registry.
            options.metrics_series_stride = 0;
          }
          cell.result = core::RunAddc(scenario, options);
          if (spec.collect_digests) cell.digest = report.trace_digest;
        } else {
          cell.result = core::RunCoolest(scenario, spec.metric);
        }
      },
      spec.profiler, "cells");

  // Reduction, strictly in (point, repetition) order: identical floating-
  // point summation order at every jobs value. Cell registries fold into
  // the caller's registry in the same fixed order, so merged metric state
  // (and its digest) is jobs-invariant too.
  const RunProfiler::Scope reduce_scope(spec.profiler, "reduce", "");
  std::uint64_t sweep_digest = kFnvOffsetBasis;
  sweep.labels.reserve(spec.points.size());
  sweep.summaries.reserve(spec.points.size());
  for (std::size_t point = 0; point < spec.points.size(); ++point) {
    std::vector<double> addc_delay, coolest_delay;
    std::vector<double> addc_capacity, coolest_capacity;
    std::vector<double> addc_jain, coolest_jain;
    std::vector<double> bounds;
    ComparisonSummary summary;
    std::uint64_t point_digest = kFnvOffsetBasis;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      const std::size_t base = static_cast<std::size_t>(
          static_cast<std::int64_t>(point) * cells_per_point + algorithms * rep);
      const core::CollectionResult& addc = cells[base].result;
      addc_delay.push_back(addc.delay_ms);
      addc_capacity.push_back(addc.capacity_fraction);
      addc_jain.push_back(addc.jain_delivery_fairness);
      bounds.push_back(addc.theorem2_delay_bound_ms);
      summary.addc_completed += addc.completed ? 1 : 0;
      summary.su_caused_violations += addc.mac.su_caused_violations;
      if (!spec.addc_only) {
        const core::CollectionResult& coolest = cells[base + 1].result;
        coolest_delay.push_back(coolest.delay_ms);
        coolest_capacity.push_back(coolest.capacity_fraction);
        coolest_jain.push_back(coolest.jain_delivery_fairness);
        summary.coolest_completed += coolest.completed ? 1 : 0;
        summary.su_caused_violations += coolest.mac.su_caused_violations;
      }
      point_digest = FoldDigest(point_digest, cells[base].digest);
      sweep_digest = FoldDigest(sweep_digest, cells[base].digest);
      if (spec.metrics != nullptr) spec.metrics->Merge(cells[base].metrics);
    }
    summary.addc_delay_ms = core::Summarize(addc_delay);
    summary.coolest_delay_ms = core::Summarize(coolest_delay);
    summary.delay_ratio =
        summary.addc_delay_ms.mean > 0.0
            ? summary.coolest_delay_ms.mean / summary.addc_delay_ms.mean
            : 0.0;
    summary.addc_capacity = core::Summarize(addc_capacity);
    summary.coolest_capacity = core::Summarize(coolest_capacity);
    summary.addc_jain_mean = core::Summarize(addc_jain).mean;
    summary.coolest_jain_mean = core::Summarize(coolest_jain).mean;
    summary.theorem2_bound_ms_mean = core::Summarize(bounds).mean;
    if (spec.collect_digests) summary.addc_trace_digest = point_digest;
    sweep.labels.push_back(spec.points[point].label);
    sweep.summaries.push_back(summary);
  }
  if (spec.collect_digests) sweep.trace_digest = sweep_digest;
  if (spec.metrics != nullptr && spec.prefab_cache) {
    // Deterministic at every jobs/grain value (misses = distinct keys, hits
    // = requests - misses, bytes = Σ built prefabs), so safe to fold into
    // the digest-compared registry. The scheduling-dependent pool.steals
    // stays out — it reports through SweepResult.pool instead.
    const core::ScenarioPrefabCache::Stats stats = prefab_cache.stats();
    spec.metrics->GetCounter("prefab.hits").Add(stats.hits);
    spec.metrics->GetCounter("prefab.misses").Add(stats.misses);
    spec.metrics->GetCounter("prefab.bytes").Add(stats.bytes);
    if (spec.verify_prefabs) {
      spec.metrics->GetCounter("prefab.verified").Add(stats.verified);
    }
  }
  if (spec.metrics != nullptr) {
    // Counter/gauge state snapshot for the BENCH json "metrics" section.
    // Capture iterates sorted keys, so the pairs are already in the
    // deterministic order the json writer and bench_delta.py rely on.
    const obs::Snapshot snapshot = spec.metrics->Capture(0);
    for (const obs::SnapshotEntry& entry : snapshot.entries) {
      if (entry.kind == obs::MetricKind::kHistogram) continue;
      sweep.metric_values.emplace_back(entry.key, entry.value);
    }
  }
  sweep.wall_seconds = timer.Seconds();
  return sweep;
}

ComparisonSummary RunRepeatedComparison(const core::ScenarioConfig& config,
                                        std::int32_t repetitions,
                                        routing::TemperatureMetric metric) {
  SweepSpec spec;
  spec.points.push_back({"", config});
  spec.repetitions = repetitions;
  spec.metric = metric;
  spec.jobs = 1;
  return RunSweep(spec).summaries.front();
}

void RenderDelayTable(const SweepResult& result, std::ostream& out) {
  out << "== " << result.title << " ==\n";
  Table table({result.parameter_name, "ADDC delay (ms)", "Coolest delay (ms)",
               "Coolest/ADDC", "ADDC capacity (·W)", "violations"});
  for (std::size_t i = 0; i < result.summaries.size(); ++i) {
    const ComparisonSummary& s = result.summaries[i];
    table.AddRow({result.labels[i],
                  FormatMeanStd(s.addc_delay_ms.mean, s.addc_delay_ms.stddev, 0),
                  FormatMeanStd(s.coolest_delay_ms.mean, s.coolest_delay_ms.stddev, 0),
                  FormatDouble(s.delay_ratio, 2),
                  FormatDouble(s.addc_capacity.mean, 4),
                  std::to_string(s.su_caused_violations)});
  }
  table.PrintMarkdown(out);
  out << "\n";
}

namespace {

constexpr const char* kBenchUsage =
    R"(Common bench flags (environment fallback in parentheses):
  --full-scale        the paper's exact configuration (CRN_FULL_SCALE=1)
  --scale=F           density-preserving scale factor, default 0.25 (CRN_SCALE)
  --reps=K            repetitions per point (CRN_REPS)
  --jobs=J            worker threads; 0 = hardware concurrency (CRN_JOBS)
  --grain=G           cells per work-stealing chunk; 0 = auto, i.e.
                      cells/(4*jobs) floored at 1 (CRN_GRAIN). Any grain is
                      bit-identical; this only tunes scheduling granularity
  --seed=S            root scenario seed (CRN_SEED)
  --json-out=PATH     BENCH json path, default BENCH_<name>.json (CRN_JSON_OUT)
  --trace-out=PATH    Chrome trace-event JSON of harness wall-clock spans
                      (CRN_TRACE_OUT); load in Perfetto / chrome://tracing
  --help              this message
)";

}  // namespace

BenchOptions ResolveBenchOptions(int argc, const char* const* argv) {
  FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::cout << kBenchUsage;
    std::exit(0);
  }
  BenchOptions options;
  options.full_scale =
      flags.GetBool("full-scale", GetEnvBool("CRN_FULL_SCALE", false));
  if (options.full_scale) {
    options.base = core::ScenarioConfig::PaperDefaults();
    options.repetitions = 10;  // the paper repeats each point 10 times
  } else {
    const double factor = flags.GetDouble("scale", GetEnvDouble("CRN_SCALE", 0.25));
    options.base = core::ScenarioConfig::ScaledDefaults(factor);
    options.repetitions = 3;
  }
  options.repetitions = static_cast<std::int32_t>(
      flags.GetInt("reps", GetEnvInt("CRN_REPS", options.repetitions)));
  options.jobs =
      static_cast<std::int32_t>(flags.GetInt("jobs", GetEnvInt("CRN_JOBS", 0)));
  options.grain = flags.GetInt("grain", GetEnvInt("CRN_GRAIN", 0));
  options.base.seed = static_cast<std::uint64_t>(flags.GetInt(
      "seed", GetEnvInt("CRN_SEED", static_cast<std::int64_t>(options.base.seed))));
  options.json_out = flags.GetString("json-out", GetEnv("CRN_JSON_OUT").value_or(""));
  options.trace_out =
      flags.GetString("trace-out", GetEnv("CRN_TRACE_OUT").value_or(""));
  if (!flags.errors().empty() || !flags.UnconsumedFlags().empty()) {
    for (const std::string& error : flags.errors()) {
      std::cerr << "error: " << error << "\n";
    }
    for (const std::string& unknown : flags.UnconsumedFlags()) {
      std::cerr << "error: unknown flag " << unknown << "\n";
    }
    std::cerr << kBenchUsage;
    std::exit(2);
  }
  return options;
}

void PrintBenchHeader(const std::string& figure, const std::string& claim,
                      const BenchOptions& options, std::ostream& out) {
  out << "# Reproduction of " << figure << " — Cai et al., ICDCS 2012\n";
  out << "# Paper claim: " << claim << "\n";
  out << "# Scale: " << (options.full_scale ? "FULL (paper)" : "scaled-down")
      << "  n=" << options.base.num_sus << "  N=" << options.base.num_pus
      << "  A=" << options.base.area_side << "x" << options.base.area_side
      << "  reps=" << options.repetitions << "  jobs=" << ResolveJobs(options.jobs)
      << "  (--full-scale for the paper configuration, --help for flags)\n\n";
}

}  // namespace crn::harness
