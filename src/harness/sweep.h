// Experiment sweep runner: repeats ADDC-vs-Coolest comparisons over a list
// of configurations and prints the Fig.-6-style series (parameter value,
// mean ± std delay for each algorithm, ratio). This is the engine behind
// every bench binary.
#ifndef CRN_HARNESS_SWEEP_H_
#define CRN_HARNESS_SWEEP_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/collection.h"
#include "core/metrics.h"
#include "core/scenario.h"
#include "routing/coolest.h"

namespace crn::harness {

// Repetition summary for one configuration.
struct ComparisonSummary {
  core::SampleStats addc_delay_ms;
  core::SampleStats coolest_delay_ms;
  double delay_ratio = 0.0;  // coolest mean / addc mean
  core::SampleStats addc_capacity;
  core::SampleStats coolest_capacity;
  double addc_jain_mean = 0.0;
  double coolest_jain_mean = 0.0;
  std::int32_t addc_completed = 0;
  std::int32_t coolest_completed = 0;
  std::int64_t su_caused_violations = 0;  // summed over both algorithms
  double theorem2_bound_ms_mean = 0.0;
};

ComparisonSummary RunRepeatedComparison(
    const core::ScenarioConfig& config, std::int32_t repetitions,
    routing::TemperatureMetric metric = routing::TemperatureMetric::kAccumulated);

// One point of a sweep: label shown in the table plus its configuration.
struct SweepPoint {
  std::string label;
  core::ScenarioConfig config;
};

// Runs every point and prints the delay table; returns the summaries in
// point order for further processing (EXPERIMENTS.md extraction, tests).
std::vector<ComparisonSummary> RunDelaySweep(
    const std::string& title, const std::string& parameter_name,
    const std::vector<SweepPoint>& points, std::int32_t repetitions,
    std::ostream& out,
    routing::TemperatureMetric metric = routing::TemperatureMetric::kAccumulated);

// Bench scaling resolved from the environment (DESIGN.md §2):
//   CRN_FULL_SCALE=1 -> the paper's exact configuration, 10 repetitions;
//   CRN_SCALE=<f>    -> density-preserving scale factor (default 0.25);
//   CRN_REPS=<k>     -> repetition override.
struct BenchScale {
  core::ScenarioConfig base;
  std::int32_t repetitions = 3;
  bool full_scale = false;
};
BenchScale ResolveBenchScale();

// Standard bench banner: what is being reproduced and at what scale.
void PrintBenchHeader(const std::string& figure, const std::string& claim,
                      const BenchScale& scale, std::ostream& out);

}  // namespace crn::harness

#endif  // CRN_HARNESS_SWEEP_H_
