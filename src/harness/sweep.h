// Experiment sweep engine: repeats ADDC-vs-Coolest comparisons over a list
// of configurations — the engine behind every bench binary.
//
// The API is split into a compute phase and a render phase. RunSweep()
// takes a SweepSpec (what to run, how many repetitions, how many worker
// threads) and returns a SweepResult value; RenderDelayTable() and the
// json_writer consume that value afterwards. No entry point here touches an
// std::ostream while computing.
//
// Parallelism never changes results: every (point × repetition × algorithm)
// cell is an independent simulation keyed by (config.seed, point, rep,
// algorithm) — each cell deploys its own Scenario and derives every RNG
// stream from (config.seed, rep), so a sweep is bit-identical at any jobs
// value. tests/harness/parallel_sweep_test.cc pins jobs=1 against jobs=4,
// summaries and trace digests both.
#ifndef CRN_HARNESS_SWEEP_H_
#define CRN_HARNESS_SWEEP_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/collection.h"
#include "core/metrics.h"
#include "core/scenario.h"
#include "harness/work_stealing.h"
#include "obs/metrics.h"
#include "routing/coolest.h"

namespace crn::harness {

class RunProfiler;  // profiler.h

// Repetition summary for one configuration.
struct ComparisonSummary {
  core::SampleStats addc_delay_ms;
  core::SampleStats coolest_delay_ms;
  double delay_ratio = 0.0;  // coolest mean / addc mean
  core::SampleStats addc_capacity;
  core::SampleStats coolest_capacity;
  double addc_jain_mean = 0.0;
  double coolest_jain_mean = 0.0;
  std::int32_t addc_completed = 0;
  std::int32_t coolest_completed = 0;
  std::int64_t su_caused_violations = 0;  // summed over both algorithms
  double theorem2_bound_ms_mean = 0.0;
  // FNV fold of the per-repetition ADDC trace digests (invariant_auditor.h),
  // in repetition order; 0 unless SweepSpec.collect_digests was set.
  std::uint64_t addc_trace_digest = 0;
};

// One point of a sweep: label shown in the table plus its configuration.
struct SweepPoint {
  std::string label;
  core::ScenarioConfig config;
};

// The compute request. `jobs` follows ResolveJobs() (parallel_runner.h):
// >= 1 literal, 0 = hardware concurrency; 1 runs inline (the serial
// engine). collect_digests attaches the invariant auditor to every ADDC
// cell and folds its trace digests into the result — attaching the auditor
// never changes a run's behaviour or digest.
struct SweepSpec {
  std::string title;
  std::string parameter_name;
  std::vector<SweepPoint> points;
  std::int32_t repetitions = 1;
  routing::TemperatureMetric metric = routing::TemperatureMetric::kAccumulated;
  std::int32_t jobs = 1;
  bool collect_digests = false;
  // Skip the Coolest baseline cell of every (point, rep): pure-ADDC sweeps
  // (throughput benches) halve their cell count and keep wall_seconds
  // attributable to one algorithm. Coolest summary fields stay zero.
  bool addc_only = false;
  // Cells per work-stealing chunk; 0 = auto (cells / (4 · jobs), floored at
  // 1 — ResolveGrain in work_stealing.h). Any value yields bit-identical
  // results; grain trades scheduling flexibility against claim traffic.
  std::int64_t grain = 0;
  // Execution engine (parallel_runner.h). The legacy ThreadPool engine is
  // selectable only for A/B benchmarking — results are bit-identical.
  ExecutionEngine engine = ExecutionEngine::kWorkStealing;
  // Share deployment geometry (positions + graph + CDS tree) across cells
  // whose geometry-determining parameters match (core/scenario_prefab.h):
  // points varying only MAC/spectrum parameters skip the rebuild entirely.
  // Off rebuilds per cell (the legacy behaviour, kept for A/B benches).
  // Either way the simulated geometry is bit-identical.
  bool prefab_cache = true;
  // Equivalence mode: every prefab-cache hit is digest-checked against a
  // freshly built prefab (cached ≡ rebuilt, CRN_CHECK). Forfeits the
  // cache's speedup; used by tests and CI, not benches.
  bool verify_prefabs = false;

  // Observability (both optional, both jobs-invariant):
  // `metrics` — every ADDC cell runs with its own MetricsRegistry; the
  // reduction folds them into this registry in the fixed (point, rep)
  // order, so the merged state is bit-identical at any jobs value.
  // `profiler` — wall-clock spans per cell and per sweep phase (compute /
  // reduce) for BENCH profile sections and --trace-out; wall-clock values
  // never enter results or digests.
  obs::MetricsRegistry* metrics = nullptr;
  RunProfiler* profiler = nullptr;
};

// The compute result, consumed by RenderDelayTable() / json_writer.
struct SweepResult {
  std::string title;
  std::string parameter_name;
  std::vector<std::string> labels;             // one per point
  std::vector<ComparisonSummary> summaries;    // one per point, point order
  std::int32_t repetitions = 0;
  std::int32_t jobs = 1;                       // resolved worker count used
  std::uint64_t seed = 0;                      // points.front().config.seed
  std::uint64_t trace_digest = 0;              // fold over all cells; 0 if off
  double wall_seconds = 0.0;
  // Counter/gauge state of SweepSpec.metrics after the reduce, rendered as
  // (sorted key, value) pairs — the BENCH json "metrics" section. Empty
  // when no registry was attached; histograms are presentation-layer and
  // stay out. Includes the deterministic prefab.{hits,misses,bytes}
  // counters when the prefab cache was on and a registry was attached.
  std::vector<std::pair<std::string, std::int64_t>> metric_values;
  // Scheduling diagnostics from the cell fan-out (the BENCH json "pool"
  // section). tasks/chunks/workers are deterministic given (spec, jobs);
  // steals depends on OS scheduling and is bounded by chunks — which is why
  // these live here and never in the digest-compared metrics above.
  WorkStealingStats pool;
};

SweepResult RunSweep(const SweepSpec& spec);

// Serial single-point convenience used by tests and custom benches.
ComparisonSummary RunRepeatedComparison(
    const core::ScenarioConfig& config, std::int32_t repetitions,
    routing::TemperatureMetric metric = routing::TemperatureMetric::kAccumulated);

// Render phase: the Fig.-6-style Markdown delay table for a computed sweep.
void RenderDelayTable(const SweepResult& result, std::ostream& out);

// Bench configuration, resolved exactly once from CLI flags with
// environment-variable fallback (DESIGN.md §2):
//   --full-scale / CRN_FULL_SCALE=1   the paper's configuration, 10 reps;
//   --scale=F    / CRN_SCALE=F        density-preserving factor (def. 0.25);
//   --reps=K     / CRN_REPS=K         repetition override;
//   --jobs=J     / CRN_JOBS=J         worker threads (0 = hardware, def.);
//   --grain=G    / CRN_GRAIN=G        cells per work-stealing chunk
//                                     (0 = auto: cells/(4·jobs), min 1);
//   --seed=S     / CRN_SEED=S         root scenario seed;
//   --json-out=P / CRN_JSON_OUT=P     BENCH json path (def. BENCH_<name>.json);
//   --trace-out=P / CRN_TRACE_OUT=P   Chrome trace (profiler spans) path.
struct BenchOptions {
  core::ScenarioConfig base;
  std::int32_t repetitions = 3;
  bool full_scale = false;
  std::int32_t jobs = 0;   // 0 = auto (ResolveJobs)
  std::int64_t grain = 0;  // 0 = auto (ResolveGrain)
  std::string json_out;    // "" = default path
  std::string trace_out;  // "" = no trace emission
};

// Parses argv (strictly: unknown flags are fatal) and the environment.
// Handles --help itself. Exits the process on usage errors.
BenchOptions ResolveBenchOptions(int argc, const char* const* argv);

// Standard bench banner: what is being reproduced and at what scale.
void PrintBenchHeader(const std::string& figure, const std::string& claim,
                      const BenchOptions& options, std::ostream& out);

}  // namespace crn::harness

#endif  // CRN_HARNESS_SWEEP_H_
