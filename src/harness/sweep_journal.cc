#include "harness/sweep_journal.h"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "harness/atomic_file.h"
#include "sim/checkpoint.h"  // Crc32

namespace crn::harness {

namespace {

constexpr std::string_view kJournalMagic = "CRNJRNL1";

// cell_<index>.rec → index, or -1 for anything else (including .tmp
// leftovers from a write that was killed before its rename).
std::int64_t ParseCellName(const std::string& name) {
  constexpr std::string_view prefix = "cell_";
  constexpr std::string_view suffix = ".rec";
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return -1;
  }
  const char* begin = name.data() + prefix.size();
  const char* end = name.data() + name.size() - suffix.size();
  std::int64_t index = -1;
  const auto [ptr, ec] = std::from_chars(begin, end, index);
  if (ec != std::errc() || ptr != end || index < 0) return -1;
  return index;
}

// Parses one record file; returns true and fills `payload` iff every check
// (magic, fingerprint, CRC) passes. Failures are not diagnosed — a torn or
// foreign record is simply "not complete".
bool ReadRecord(const std::filesystem::path& path,
                std::string_view fingerprint, std::string& payload) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  // Three header lines, then the raw payload bytes.
  std::size_t cursor = 0;
  const auto next_line = [&](std::string_view& line) {
    const std::size_t eol = contents.find('\n', cursor);
    if (eol == std::string::npos) return false;
    line = std::string_view(contents).substr(cursor, eol - cursor);
    cursor = eol + 1;
    return true;
  };
  std::string_view magic;
  std::string_view saved_fingerprint;
  std::string_view crc_text;
  if (!next_line(magic) || !next_line(saved_fingerprint) ||
      !next_line(crc_text)) {
    return false;
  }
  if (magic != kJournalMagic || saved_fingerprint != fingerprint) return false;
  std::uint32_t saved_crc = 0;
  const auto [ptr, ec] = std::from_chars(
      crc_text.data(), crc_text.data() + crc_text.size(), saved_crc, 16);
  if (ec != std::errc() || ptr != crc_text.data() + crc_text.size()) {
    return false;
  }
  const std::string_view body = std::string_view(contents).substr(cursor);
  if (sim::Crc32(body) != saved_crc) return false;
  payload.assign(body);
  return true;
}

}  // namespace

SweepJournal::SweepJournal(std::string dir, std::string fingerprint)
    : dir_(std::move(dir)), fingerprint_(std::move(fingerprint)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  CRN_CHECK(!ec) << "cannot create journal directory " << dir_ << ": "
                 << ec.message();
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::int64_t index = ParseCellName(entry.path().filename().string());
    if (index < 0) continue;
    std::string payload;
    if (ReadRecord(entry.path(), fingerprint_, payload)) {
      records_.emplace(index, std::move(payload));
    }
  }
}

const std::string* SweepJournal::Payload(std::int64_t index) const {
  const auto it = records_.find(index);
  return it == records_.end() ? nullptr : &it->second;
}

std::string SweepJournal::CellPath(std::int64_t index) const {
  return dir_ + "/cell_" + std::to_string(index) + ".rec";
}

bool SweepJournal::Record(std::int64_t index, std::string_view payload) const {
  std::ostringstream record;
  record << kJournalMagic << "\n" << fingerprint_ << "\n" << std::hex
         << sim::Crc32(payload) << "\n";
  record << payload;
  std::string error;
  if (!WriteFileAtomic(CellPath(index), record.str(), &error)) {
    std::cerr << "sweep_journal: " << error << "\n";
    return false;
  }
  return true;
}

std::int64_t RunJournaled(
    const ParallelRunner& runner, const SweepJournal& journal,
    std::int64_t count, const std::function<std::string(std::int64_t)>& run_cell,
    const std::function<void(std::int64_t, const std::string&)>& replay) {
  std::vector<std::int64_t> fresh;
  std::int64_t replayed = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    if (const std::string* payload = journal.Payload(i)) {
      replay(i, *payload);
      ++replayed;
    } else {
      fresh.push_back(i);
    }
  }
  runner.ForEachIndex(static_cast<std::int64_t>(fresh.size()),
                      [&](std::int64_t slot) {
                        const std::int64_t index =
                            fresh[static_cast<std::size_t>(slot)];
                        journal.Record(index, run_cell(index));
                      });
  return replayed;
}

}  // namespace crn::harness
