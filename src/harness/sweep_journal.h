// Crash-safe sweep bookkeeping: one completion record per experiment cell,
// written atomically (harness/atomic_file.h), so a sweep killed mid-flight
// — power loss, OOM kill, SIGKILL in the crash-recovery soak — resumes by
// re-running only the cells whose records are missing or torn.
//
// A record is a small self-validating file `cell_<index>.rec` inside the
// journal directory: magic, the sweep fingerprint, a CRC-32 of the payload,
// and the payload itself (whatever the caller needs to replay the cell's
// contribution — typically its rendered output block). Records that fail
// any check are treated as absent, never as errors: the worst a torn or
// foreign record can cause is one re-run, the same cost as no record.
//
// The fingerprint scopes a journal to one experiment shape (config, flags,
// cell count): resuming with different parameters ignores every stale
// record instead of replaying results from a different sweep.
#ifndef CRN_HARNESS_SWEEP_JOURNAL_H_
#define CRN_HARNESS_SWEEP_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "harness/parallel_runner.h"

namespace crn::harness {

class SweepJournal {
 public:
  // Opens `dir` (created if missing) and scans it for valid records
  // matching `fingerprint`. CRN_CHECK-fails only if the directory cannot
  // be created; unreadable or invalid records are silently skipped.
  SweepJournal(std::string dir, std::string fingerprint);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::size_t complete_count() const { return records_.size(); }
  [[nodiscard]] bool IsComplete(std::int64_t index) const {
    return records_.count(index) != 0;
  }
  // Payload of a valid record, or nullptr. The pointer is stable until the
  // journal is destroyed (Record() does not mutate the loaded map).
  [[nodiscard]] const std::string* Payload(std::int64_t index) const;

  // Atomically records cell `index` complete with `payload`. Safe to call
  // concurrently for distinct indices (each cell is its own file). Returns
  // false (with a message on stderr) if the write failed — the sweep can
  // continue; that cell just re-runs on the next resume.
  bool Record(std::int64_t index, std::string_view payload) const;

  [[nodiscard]] std::string CellPath(std::int64_t index) const;

 private:
  std::string dir_;
  std::string fingerprint_;
  std::map<std::int64_t, std::string> records_;
};

// Crash-safe fan-out: journaled cells replay through `replay` (in index
// order, before the fresh cells run) and are never re-executed; the rest
// run on `runner`, each recording its returned payload on completion.
// Returns the number of cells replayed from the journal.
std::int64_t RunJournaled(
    const ParallelRunner& runner, const SweepJournal& journal,
    std::int64_t count, const std::function<std::string(std::int64_t)>& run_cell,
    const std::function<void(std::int64_t, const std::string&)>& replay);

}  // namespace crn::harness

#endif  // CRN_HARNESS_SWEEP_JOURNAL_H_
