#include "harness/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace crn::harness {

void Table::AddRow(std::vector<std::string> cells) {
  CRN_CHECK(cells.size() == columns_.size())
      << "row has " << cells.size() << " cells, table has " << columns_.size()
      << " columns";
  rows_.push_back(std::move(cells));
}

void Table::PrintMarkdown(std::ostream& out) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << " " << cells[c] << std::string(width[c] - cells[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  print_row(columns_);
  out << "|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ",";
      out << cells[c];
    }
    out << "\n";
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string FormatMeanStd(double mean, double stddev, int precision) {
  return FormatDouble(mean, precision) + " ± " + FormatDouble(stddev, precision);
}

}  // namespace crn::harness
