// Minimal table formatting for bench/example output: aligned plain-text
// (markdown-compatible) tables plus CSV, so results can be read in the
// terminal and piped into plotting tools.
#ifndef CRN_HARNESS_TABLE_H_
#define CRN_HARNESS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace crn::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells);

  // | a | b | with aligned pipes.
  void PrintMarkdown(std::ostream& out) const;
  void PrintCsv(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting ("12.35"); trims to integers cleanly.
std::string FormatDouble(double value, int precision = 2);

// "mean ± stddev" with the given precision.
std::string FormatMeanStd(double mean, double stddev, int precision = 1);

}  // namespace crn::harness

#endif  // CRN_HARNESS_TABLE_H_
