#include "harness/thread_pool.h"

#include <stdexcept>

namespace crn::harness {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { Worker(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool::Submit after Shutdown");
    }
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::Worker() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Exceptions are captured by the packaged_task inside `job`; a raw job
    // that throws would terminate, exactly like an unhandled exception on
    // the main thread.
    job();
  }
}

void ThreadPool::Shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace crn::harness
