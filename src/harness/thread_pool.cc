#include "harness/thread_pool.h"

#include "common/check.h"

namespace crn::harness {

namespace {

// 0 on any non-pool thread; workers overwrite it with their 1-based index.
thread_local std::int32_t t_worker_index = 0;

}  // namespace

namespace internal {

void SetCurrentWorkerIndex(std::int32_t index) { t_worker_index = index; }

}  // namespace internal

std::int32_t ThreadPool::current_worker_index() { return t_worker_index; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    const auto index = static_cast<std::int32_t>(i + 1);
    workers_.emplace_back([this, index] { Worker(index); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    CRN_CHECK(!shutting_down_)
        << "ThreadPool::Submit after Shutdown(): the workers are draining "
        << "and joining, so this job would never run — submit before "
        << "Shutdown(), or use a fresh pool";
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::Worker(std::int32_t index) {
  internal::SetCurrentWorkerIndex(index);
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Exceptions are captured by the packaged_task inside `job`; a raw job
    // that throws would terminate, exactly like an unhandled exception on
    // the main thread.
    job();
  }
}

void ThreadPool::Shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace crn::harness
