// Fixed-size worker pool behind the parallel experiment engine.
//
// Workers drain a FIFO queue, so a single-threaded pool executes jobs in
// exact submission order. Submit() returns a std::future that either yields
// the job's result or rethrows the exception it died with — the engine
// propagates the lowest-index failure to the caller. The destructor (and
// Shutdown()) finishes every queued job before joining; work is never
// silently dropped.
#ifndef CRN_HARNESS_THREAD_POOL_H_
#define CRN_HARNESS_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace crn::harness {

namespace internal {
// Writes the calling thread's 1-based worker index (0 = not a worker).
// Shared by ThreadPool and the work-stealing engine so profiler spans tag
// the executing worker identically under either engine.
void SetCurrentWorkerIndex(std::int32_t index);
}  // namespace internal

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  // 1-based index of the pool worker running the calling thread; 0 when the
  // caller is not a pool worker (the main thread). Profiling hooks use this
  // as a stable Chrome-trace tid — it never feeds simulation state.
  [[nodiscard]] static std::int32_t current_worker_index();

  // Enqueues `fn`; the future yields its return value or rethrows.
  // Submitting after Shutdown() is a contract violation (CRN_CHECK): the
  // pool's workers have been told to drain and join, so the job could never
  // run — failing loudly beats a future that never resolves.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> Submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  // Completes all queued jobs, then joins every worker. Idempotent; also
  // run by the destructor.
  void Shutdown();

 private:
  void Enqueue(std::function<void()> job);
  void Worker(std::int32_t index);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace crn::harness

#endif  // CRN_HARNESS_THREAD_POOL_H_
