#include "harness/work_stealing.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "harness/thread_pool.h"

namespace crn::harness {

namespace {

// One pre-materialized task: a contiguous index range plus its claim flag.
// Plain data — building the task array allocates one vector total, not one
// closure per cell like the legacy ThreadPool path did.
struct Chunk {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::atomic<bool> claimed{false};
};

// Contiguous block of chunk ids owned by one worker.
struct Block {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

// Per-worker failure slot, written only by its own worker: the lowest cell
// index that threw, plus the exception itself.
struct Failure {
  std::int64_t index = std::numeric_limits<std::int64_t>::max();
  std::exception_ptr error;
};

// Fixed stream root for the victim-order RNG. The randomized visit order is
// a performance policy (it de-correlates thieves so they don't all hammer
// the same victim); claims make any order correct, and no simulation state
// ever derives from this generator.
constexpr std::uint64_t kVictimSeed = 0x57EA15EEDULL;

}  // namespace

std::int64_t ResolveGrain(std::int64_t requested, std::int64_t count,
                          std::int32_t workers) {
  if (requested >= 1) return requested;
  const std::int64_t spread = 4 * std::max<std::int64_t>(1, workers);
  return std::max<std::int64_t>(1, count / spread);
}

WorkStealingStats RunWorkStealing(
    std::int64_t count, std::int32_t workers, std::int64_t grain,
    const std::function<void(std::int64_t)>& fn) {
  WorkStealingStats stats;
  if (count <= 0) {
    stats.workers = 1;
    return stats;
  }
  grain = ResolveGrain(grain, count, workers);
  const std::int64_t chunk_count = (count + grain - 1) / grain;
  stats.tasks = count;
  stats.chunks = chunk_count;
  stats.workers = static_cast<std::int32_t>(
      std::min<std::int64_t>(std::max(workers, 1), chunk_count));

  if (stats.workers <= 1) {
    // Serial reference engine: in-order inline execution, no threads, no
    // atomics — the digests every parallel configuration is pinned against.
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return stats;
  }

  std::vector<Chunk> chunks(static_cast<std::size_t>(chunk_count));
  for (std::int64_t c = 0; c < chunk_count; ++c) {
    chunks[static_cast<std::size_t>(c)].begin = c * grain;
    chunks[static_cast<std::size_t>(c)].end = std::min(count, (c + 1) * grain);
  }

  // Block partition: worker w owns a contiguous run of chunks, so its LIFO
  // drain touches adjacent indices (prefab-key locality) and a thief's FIFO
  // scan takes the oldest — farthest from the owner's end — first.
  const std::int32_t worker_count = stats.workers;
  std::vector<Block> blocks(static_cast<std::size_t>(worker_count));
  const std::int64_t per = chunk_count / worker_count;
  const std::int64_t extra = chunk_count % worker_count;
  std::int64_t next = 0;
  for (std::int32_t w = 0; w < worker_count; ++w) {
    blocks[static_cast<std::size_t>(w)].begin = next;
    next += per + (w < extra ? 1 : 0);
    blocks[static_cast<std::size_t>(w)].end = next;
  }

  std::atomic<std::int64_t> steals{0};
  std::vector<Failure> failures(static_cast<std::size_t>(worker_count));

  const auto run_chunk = [&fn](Chunk& chunk, Failure& failure) {
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      try {
        fn(i);
      } catch (...) {
        // Contract: every cell finishes; the lowest-index failure wins.
        if (i < failure.index) {
          failure.index = i;
          failure.error = std::current_exception();
        }
      }
    }
  };

  const auto worker_body = [&](std::int32_t w) {
    internal::SetCurrentWorkerIndex(w + 1);
    Failure& failure = failures[static_cast<std::size_t>(w)];
    const Block own = blocks[static_cast<std::size_t>(w)];
    // Phase 1: drain the own block LIFO.
    for (std::int64_t c = own.end - 1; c >= own.begin; --c) {
      Chunk& chunk = chunks[static_cast<std::size_t>(c)];
      if (!chunk.claimed.exchange(true, std::memory_order_acq_rel)) {
        run_chunk(chunk, failure);
      }
    }
    // Phase 2: steal. Visit victims in randomized order; scan each block
    // FIFO and claim the first open chunk. A full pass that observes every
    // claim flag set means all work is claimed (flags never reset), and
    // each claimer finishes its chunk before exiting — so exit.
    Rng rng = Rng(kVictimSeed).Stream("victim-order", static_cast<std::uint64_t>(w));
    std::vector<std::int32_t> victims;
    victims.reserve(static_cast<std::size_t>(worker_count) - 1);
    for (std::int32_t v = 0; v < worker_count; ++v) {
      if (v != w) victims.push_back(v);
    }
    for (;;) {
      // Fisher–Yates with crn::Rng (std <random> engines are banned).
      for (std::size_t i = victims.size(); i > 1; --i) {
        std::swap(victims[i - 1], victims[rng.UniformInt(i)]);
      }
      bool claimed_one = false;
      bool saw_open = false;
      for (const std::int32_t v : victims) {
        const Block victim = blocks[static_cast<std::size_t>(v)];
        for (std::int64_t c = victim.begin; c < victim.end && !claimed_one;
             ++c) {
          Chunk& chunk = chunks[static_cast<std::size_t>(c)];
          if (chunk.claimed.load(std::memory_order_acquire)) continue;
          saw_open = true;
          if (!chunk.claimed.exchange(true, std::memory_order_acq_rel)) {
            steals.fetch_add(1, std::memory_order_relaxed);
            run_chunk(chunk, failure);
            claimed_one = true;
          }
        }
        if (claimed_one) break;
      }
      if (!claimed_one && !saw_open) break;
    }
    internal::SetCurrentWorkerIndex(0);
  };

  // All workers are spawned threads (the caller just joins), mirroring the
  // legacy pool so profiler worker tags mean the same thing in both engines.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(worker_count));
  for (std::int32_t w = 0; w < worker_count; ++w) {
    threads.emplace_back(worker_body, w);
  }
  for (std::thread& thread : threads) thread.join();

  stats.steals = steals.load(std::memory_order_relaxed);

  const Failure* first = nullptr;
  for (const Failure& failure : failures) {
    if (failure.error &&
        (first == nullptr || failure.index < first->index)) {
      first = &failure;
    }
  }
  if (first != nullptr) std::rethrow_exception(first->error);
  return stats;
}

}  // namespace crn::harness
