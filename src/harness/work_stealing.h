// Work-stealing fan-out engine behind ParallelRunner (DESIGN.md §15).
//
// The index range [0, count) is pre-materialized into a flat array of
// grain-sized chunks — plain {begin, end, claim-flag} records, no per-cell
// std::function, no queue allocation on the dispatch path. Chunks are
// block-partitioned across workers; each worker drains its own block LIFO
// (newest-first, so adjacent indices — which share scenario prefabs — stay
// on one worker) and then steals FIFO from victims visited in randomized
// order. Exactly-once execution is enforced by a per-chunk atomic claim, so
// the deque discipline is purely a performance policy, never a correctness
// mechanism: any interleaving of owners and thieves runs every index
// exactly once.
//
// Determinism contract: the engine decides only *where and when* fn(i)
// runs, never *what* it computes — cells write results only at their own
// index and the caller reduces in fixed order, so results are bit-identical
// at every workers/grain value. The steal counter is the one scheduling-
// dependent quantity and is reported out-of-band (WorkStealingStats), never
// through the digest-compared MetricsRegistry.
#ifndef CRN_HARNESS_WORK_STEALING_H_
#define CRN_HARNESS_WORK_STEALING_H_

#include <cstdint>
#include <functional>

namespace crn::harness {

// Fan-out engine selector (ParallelRunner, SweepSpec). The legacy pool is
// kept only so bench_sweep_scaling can A/B the engines on identical work —
// both produce bit-identical results.
enum class ExecutionEngine : std::uint8_t {
  kWorkStealing,  // default: flat chunk array + owner-LIFO / thief-FIFO
  kThreadPool,    // legacy: per-cell std::function over the mutex-FIFO pool
};

// Scheduling diagnostics for one fan-out. tasks/chunks/workers are exact
// functions of (count, workers, grain); steals depends on OS scheduling and
// is bounded above by chunks.
struct WorkStealingStats {
  std::int64_t tasks = 0;   // indices executed (== count)
  std::int64_t chunks = 0;  // grain-sized ranges materialized
  std::int64_t steals = 0;  // chunks executed by a non-owner worker
  std::int32_t workers = 1;
};

// Maps a grain request to a chunk size for `count` cells on `workers`
// workers: values >= 1 are taken literally; 0 (and negatives) mean auto —
// count / (4 * workers), floored at 1, i.e. ~4 chunks per worker so the
// last-finisher imbalance is bounded by a quarter of a worker's share while
// claim traffic stays O(workers).
std::int64_t ResolveGrain(std::int64_t requested, std::int64_t count,
                          std::int32_t workers);

// Runs fn(0) .. fn(count - 1), each exactly once, on min(workers, chunks)
// threads. Every cell finishes even if some throw; the lowest-index
// exception is rethrown after the join. workers <= 1 runs inline on the
// calling thread (the serial reference engine digests are pinned against).
WorkStealingStats RunWorkStealing(std::int64_t count, std::int32_t workers,
                                  std::int64_t grain,
                                  const std::function<void(std::int64_t)>& fn);

}  // namespace crn::harness

#endif  // CRN_HARNESS_WORK_STEALING_H_
