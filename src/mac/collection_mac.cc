#include "mac/collection_mac.h"

#include <algorithm>
#include <array>
#include <utility>

#include "common/check.h"
#include "sim/checkpoint.h"

namespace crn::mac {

namespace {

// Grid cell size for the sensing grid: the PCR is the only query radius.
double SensingCellSize(double pcr) { return std::max(pcr, 1.0); }

// Dense PU-sensing masks are built while a per-agent row spans at most this
// many 64-bit words (≤ 1024 PUs, two cache lines per agent). Beyond that the
// rows outgrow cache and the sparse id scan wins back.
constexpr std::size_t kDensePuSenseWordsMax = 16;

}  // namespace

const MacConfig& CollectionMac::ValidatedConfig(const MacConfig& config) {
  CRN_CHECK(config.pcr > 0.0)
      << "pcr=" << config.pcr
      << ": the carrier-sensing range must be positive — configure it from "
      << "ProperCarrierSensingRange() or set it explicitly";
  CRN_CHECK(config.su_power > 0.0)
      << "su_power=" << config.su_power << ": transmit power must be positive";
  CRN_CHECK(config.alpha > 0.0)
      << "alpha=" << config.alpha << ": the path-loss exponent must be positive";
  CRN_CHECK(config.slot > 0) << "slot=" << config.slot
                             << " ns: the PU slot duration must be positive";
  CRN_CHECK(config.contention_window > 0 && config.contention_window <= config.slot)
      << "contention_window=" << config.contention_window << " ns must be in (0, slot="
      << config.slot << " ns]";
  CRN_CHECK(config.tx_duration > 0)
      << "tx_duration=" << config.tx_duration
      << " ns: the packet airtime must be positive (typically slot - "
      << "contention_window)";
  CRN_CHECK(config.sensing_false_alarm >= 0.0 && config.sensing_false_alarm <= 1.0)
      << "sensing_false_alarm=" << config.sensing_false_alarm
      << " is a probability; pass a value in [0, 1]";
  CRN_CHECK(config.sensing_missed_detection >= 0.0 &&
            config.sensing_missed_detection <= 1.0)
      << "sensing_missed_detection=" << config.sensing_missed_detection
      << " is a probability; pass a value in [0, 1]";
  CRN_CHECK(config.sensing_latency >= 0)
      << "sensing_latency=" << config.sensing_latency
      << " ns: a detection lag cannot be negative (0 = instantaneous sensing)";
  CRN_CHECK(config.backoff_granularity >= 0)
      << "backoff_granularity=" << config.backoff_granularity
      << " ns: pass 0 for Algorithm 1's continuous backoff or a positive "
      << "contention-slot width for the conventional-MAC emulation";
  CRN_CHECK(config.dead_hop_retx_budget >= 0)
      << "dead_hop_retx_budget=" << config.dead_hop_retx_budget
      << ": pass 0 for unbounded retries or a positive per-packet budget";
  return config;
}

CollectionMac::CollectionMac(sim::Simulator& simulator, pu::PrimaryNetwork& primary,
                             std::vector<geom::Vec2> positions, geom::Aabb area,
                             NodeId sink, std::vector<NodeId> next_hop,
                             const MacConfig& config, Rng rng)
    : simulator_(simulator),
      primary_(primary),
      positions_(std::move(positions)),
      area_(area),
      sink_(sink),
      next_hop_(std::move(next_hop)),
      config_(ValidatedConfig(config)),
      backoff_rng_(rng.Stream("backoff")),
      activity_rng_(rng.Stream("pu-activity")),
      audit_rng_(rng.Stream("pu-audit")),
      sensing_rng_(rng.Stream("sensing")),
      sir_(spectrum::PathLoss(config.alpha)),
      field_(spectrum::PathLoss(config.alpha), config.sir_engine, positions_,
             config.su_power, primary.positions(), primary.config().power),
      sensing_grid_(positions_, area, SensingCellSize(config.pcr)),
      carrier_grid_(positions_, area, SensingCellSize(config.pcr)) {
  const auto n = node_count();
  CRN_CHECK(n > 0);
  CRN_CHECK(sink_ >= 0 && sink_ < n);
  CRN_CHECK(static_cast<std::int32_t>(next_hop_.size()) == n);

  // Every node must reach the sink through next hops in < n steps (no
  // cycles, no dangling routes).
  for (NodeId v = 0; v < n; ++v) {
    if (v == sink_) continue;
    NodeId cursor = v;
    std::int32_t steps = 0;
    while (cursor != sink_) {
      const NodeId next = next_hop_[cursor];
      CRN_CHECK(next != cursor && next >= 0 && next < n)
          << "bad next hop " << next << " at node " << cursor;
      cursor = next;
      CRN_CHECK(++steps < n) << "next-hop cycle involving node " << v;
    }
  }

  agents_.resize(n);
  agent_phase_.assign(n, Phase::kIdle);
  agent_frozen_.assign(n, 1);
  agent_pu_busy_.assign(n, 0);
  agent_su_busy_.assign(n, 0);
  failed_.assign(n, 0);
  carrier_count_.assign(n, 0);
  contending_slot_.assign(n, -1);
  active_tx_slot_.assign(n, -1);
  delivery_time_.assign(n, -1);
  expected_per_origin_.assign(n, 0);
  delivered_per_origin_.assign(n, 0);
  success_tx_count_.assign(n, 0);

  // Precompute each node's static "PUs within my PCR" list (carrier sensing
  // targets, Lemma 7's disk of radius κ·r), and bind each agent's two
  // timers once — arming/cancelling them later is O(1) and allocation-free.
  const std::size_t pu_words = (primary_.positions().size() + 63) / 64;
  if (pu_words <= kDensePuSenseWordsMax) {
    pu_mask_words_ = pu_words;
    agent_pu_mask_.assign(static_cast<std::size_t>(n) * pu_words, 0);
  }
  for (NodeId v = 0; v < n; ++v) {
    primary_.grid().ForEachInDisk(positions_[v], config_.pcr, [&](pu::PuId p) {
      agents_[v].nearby_pus.push_back(p);
      if (pu_mask_words_ > 0) {
        agent_pu_mask_[static_cast<std::size_t>(v) * pu_mask_words_ +
                       (static_cast<std::size_t>(p) >> 6)] |=
            std::uint64_t{1} << (p & 63);
      }
    });
    agents_[v].expiry_timer.Bind(simulator_, sim::EventPriority::kTimerExpiry,
                                 "mac.backoff_expiry", v,
                                 [this, v] { OnBackoffExpired(v); });
    agents_[v].wait_timer.Bind(simulator_, sim::EventPriority::kDefault,
                               "mac.post_tx_wait", v,
                               [this, v] { OnPostTxWaitDone(v); });
  }
}

void CollectionMac::StartCollection(const std::vector<NodeId>& producers) {
  StartContinuousCollection(producers, config_.slot, /*snapshot_count=*/1);
}

void CollectionMac::StartSnapshotCollection() {
  std::vector<NodeId> producers;
  producers.reserve(node_count() - 1);
  for (NodeId v = 0; v < node_count(); ++v) {
    if (v != sink_) producers.push_back(v);
  }
  StartCollection(producers);
}

void CollectionMac::StartContinuousCollection(const std::vector<NodeId>& producers,
                                              sim::TimeNs interval,
                                              std::int32_t snapshot_count) {
  CRN_CHECK(!running_) << "collection already started";
  CRN_CHECK(snapshot_count >= 1);
  CRN_CHECK(interval > 0);
  CRN_CHECK(!producers.empty());
  for (NodeId v : producers) {
    CRN_CHECK(v != sink_) << "the base station does not produce packets";
    CRN_CHECK(v >= 0 && v < node_count()) << "producer " << v << " out of range";
  }
  running_ = true;
  expected_packets_ =
      static_cast<std::int64_t>(producers.size()) * snapshot_count;
  snapshot_created_.assign(snapshot_count, -1);
  snapshot_finish_.assign(snapshot_count, -1);
  snapshot_remaining_.assign(snapshot_count,
                             static_cast<std::int64_t>(producers.size()));
  const sim::TimeNs now = simulator_.now();
  // Slot boundary first (samples the initial PU state); snapshot seeding
  // events run at default priority, so producers always see a sampled slot.
  slot_timer_.Bind(simulator_, sim::EventPriority::kSlotBoundary,
                   "mac.slot_boundary", sink_, [this] { OnSlotBoundary(); });
  slot_timer_.Start(now, config_.slot);
  audit_timer_.Bind(simulator_, sim::EventPriority::kDefault, "mac.pu_audit",
                    sink_, [this] { AuditPrimaryReceptions(); });
  seed_producers_ = producers;
  for (std::int32_t k = 0; k < snapshot_count; ++k) {
    const sim::EventId seq =
        simulator_.ScheduleOnce(  // crn-lint-ok: one-time cold-path seeding
                                  // burst; each one-shot carries a distinct
                                  // snapshot payload, which a bind-once
                                  // Timer cannot.
            now + k * interval, sim::EventPriority::kDefault,
            "mac.seed_snapshot", sink_, [this, k] { OnSeedSnapshot(k); });
    pending_seeds_.push_back({k, seq});
  }
}

void CollectionMac::OnSeedSnapshot(std::int32_t snapshot) {
  const auto it = std::find_if(
      pending_seeds_.begin(), pending_seeds_.end(),
      [snapshot](const PendingSeed& p) { return p.snapshot == snapshot; });
  CRN_DCHECK(it != pending_seeds_.end());
  pending_seeds_.erase(it);
  SeedSnapshot(seed_producers_, snapshot);
}

void CollectionMac::SeedSnapshot(const std::vector<NodeId>& producers,
                                 std::int32_t snapshot) {
  const sim::TimeNs now = simulator_.now();
  snapshot_created_[snapshot] = now;
  for (NodeId v : producers) {
    ++stats_.packets_seeded;
    ++expected_per_origin_[v];
    if (failed_[v]) {
      // A producer that is down when its snapshot fires loses that reading
      // on the spot — otherwise the run would wait forever for a packet no
      // one holds (continuous collection under churn).
      const Packet packet{v, now, 0, snapshot};
      EmitLifecycle(LifecycleEvent::Kind::kPacketCreated, v, &packet, 0);
      LosePacket(v, packet, 0);
      continue;
    }
    agents_[v].queue.push_back(Packet{v, now, 0, snapshot});
    EmitLifecycle(LifecycleEvent::Kind::kPacketCreated, v,
                  &agents_[v].queue.back(),
                  static_cast<std::int64_t>(agents_[v].queue.size()));
  }
  for (NodeId v : producers) {
    if (!failed_[v]) ActivateIfIdle(v);
  }
  CheckTermination();
}

// --- agent lifecycle ------------------------------------------------------

void CollectionMac::ActivateIfIdle(NodeId node) {
  if (!failed_[node] && agent_phase_[node] == Phase::kIdle &&
      !agents_[node].queue.empty()) {
    BeginContention(node);
  }
}

void CollectionMac::FailNode(NodeId node) {
  CRN_CHECK(node != sink_) << "the base station cannot fail";
  CRN_CHECK(!failed_[node]) << "node " << node << " already failed";
  Agent& agent = agents_[node];
  // Cut any transmission it is sending; the packet returns to the queue
  // first and is then lost with the node below.
  if (agent_phase_[node] == Phase::kTransmitting) {
    FinishTransmission(node, /*aborted=*/true);
    // FinishTransmission put the node into PostTxWait with a pending event.
  }
  agent.wait_timer.Disarm();
  if (agent_phase_[node] == Phase::kContending) {
    LeaveContention(node);
  }
  agent_phase_[node] = Phase::kIdle;
  failed_[node] = 1;
  // In-flight transmissions toward the node lose their receiver.
  for (Transmission& tx : active_tx_) {
    if (tx.receiver == node && tx.receiver_ok) {
      tx.receiver_ok = false;
      tx.forced_outcome = TxOutcome::kReceiverBusy;
    }
  }
  // Its queue is lost with it: shrink the expectations so termination and
  // snapshot accounting stay exact.
  std::int64_t left = static_cast<std::int64_t>(agent.queue.size());
  for (const Packet& packet : agent.queue) {
    LosePacket(node, packet, --left);
  }
  agent.queue.clear();
  agent.dead_hop_failures = 0;
  CheckTermination();
}

void CollectionMac::RecoverNode(NodeId node) {
  CRN_CHECK(failed_[node]) << "node " << node << " is not failed";
  Agent& agent = agents_[node];
  CRN_DCHECK(agent_phase_[node] == Phase::kIdle && agent.queue.empty());
  failed_[node] = 0;
  agent.dead_hop_failures = 0;
  // Nothing to activate: the node rejoins empty-handed and wakes up on its
  // next received packet or seeded snapshot.
}

void CollectionMac::UpdateNextHop(NodeId node, NodeId next_hop) {
  CRN_CHECK(node != sink_ && !failed_[node]) << "node " << node;
  CRN_CHECK(next_hop != node) << "self-loop at " << node;
  CRN_CHECK(!failed_[next_hop]) << "next hop " << next_hop << " has failed";
  next_hop_[node] = next_hop;
  agents_[node].dead_hop_failures = 0;  // the repaired route gets a fresh budget
  // The re-route must still reach the base station acyclically.
  NodeId cursor = node;
  std::int32_t steps = 0;
  while (cursor != sink_) {
    cursor = next_hop_[cursor];
    CRN_CHECK(++steps < node_count()) << "re-route created a cycle at " << node;
  }
}

void CollectionMac::SetSensingErrorRates(double false_alarm,
                                         double missed_detection) {
  CRN_CHECK(false_alarm >= 0.0 && false_alarm <= 1.0)
      << "false_alarm=" << false_alarm << " is a probability; pass [0, 1]";
  CRN_CHECK(missed_detection >= 0.0 && missed_detection <= 1.0)
      << "missed_detection=" << missed_detection << " is a probability; pass [0, 1]";
  config_.sensing_false_alarm = false_alarm;
  config_.sensing_missed_detection = missed_detection;
}

void CollectionMac::BeginContention(NodeId node) {
  Agent& agent = agents_[node];
  CRN_DCHECK(agent_phase_[node] == Phase::kIdle ||
             agent_phase_[node] == Phase::kPostTxWait);
  CRN_DCHECK(!agent.queue.empty());
  agent_phase_[node] = Phase::kContending;
  if (config_.backoff_granularity <= 0) {
    // Algorithm 1: t_i uniform over (0, τ_c] at nanosecond granularity —
    // simultaneous expiries among neighbors have probability ~0.
    agent.backoff_drawn =
        1 + static_cast<sim::TimeNs>(
                backoff_rng_.UniformInt(static_cast<std::uint64_t>(config_.contention_window)));
  } else {
    // Conventional MAC: pick one of the few discrete contention slots. The
    // small backward jitter keeps event timestamps distinct while leaving
    // same-slot picks inside each other's sensing-latency blind window, so
    // they genuinely collide.
    const auto slots = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(config_.contention_window / config_.backoff_granularity));
    const sim::TimeNs pick =
        config_.backoff_granularity *
        static_cast<sim::TimeNs>(1 + backoff_rng_.UniformInt(slots));
    const sim::TimeNs jitter_range = std::max<sim::TimeNs>(
        2, std::min<sim::TimeNs>(sim::kMicrosecond, config_.backoff_granularity / 4));
    agent.backoff_drawn =
        pick - static_cast<sim::TimeNs>(backoff_rng_.UniformInt(
                   static_cast<std::uint64_t>(jitter_range)));
  }
  agent.remaining = agent.backoff_drawn;
  agent_frozen_[node] = 1;
  // Emitted before UpdateFreezeState below so lifecycle consumers see
  // contention-started strictly before any same-instant resume.
  EmitLifecycle(LifecycleEvent::Kind::kContentionStarted, node,
                &agent.queue.front(), agent.backoff_drawn);

  // Join the sensing set.
  CRN_DCHECK(contending_slot_[node] < 0);
  contending_slot_[node] = static_cast<std::int32_t>(contending_list_.size());
  contending_list_.push_back(node);
  sensing_grid_.Insert(node);

  // Fresh busy snapshot: stored counts are stale after an absence.
  agent_pu_busy_[node] = SensePuBusy(node) ? 1 : 0;
  agent_su_busy_[node] = ComputeSuBusyCount(node);
  UpdateFreezeState(node);
  for (const auto& observer : contention_observers_) {
    observer(node, simulator_.now());
  }
}

void CollectionMac::LeaveContention(NodeId node) {
  if (agent_frozen_[node] == 0) FreezeTimer(node);
  const std::int32_t pos = contending_slot_[node];
  CRN_DCHECK(pos >= 0);
  const NodeId moved = contending_list_.back();
  contending_list_[pos] = moved;
  contending_slot_[moved] = pos;
  contending_list_.pop_back();
  contending_slot_[node] = -1;
  sensing_grid_.Erase(node);
}

void CollectionMac::FreezeTimer(NodeId node) {
  Agent& agent = agents_[node];
  CRN_DCHECK(agent_frozen_[node] == 0);
  agent.remaining -= simulator_.now() - agent.resume_time;
  CRN_DCHECK(agent.remaining >= 0);
  agent_frozen_[node] = 1;
  agent.expiry_timer.Disarm();
  EmitLifecycle(LifecycleEvent::Kind::kFrozen, node, nullptr, agent.remaining);
}

void CollectionMac::ResumeTimer(NodeId node) {
  Agent& agent = agents_[node];
  CRN_DCHECK(agent_frozen_[node] != 0);
  agent_frozen_[node] = 0;
  agent.resume_time = simulator_.now();
  agent.expiry_timer.ArmAfter(agent.remaining);
  EmitLifecycle(LifecycleEvent::Kind::kResumed, node, nullptr, agent.remaining);
}

void CollectionMac::UpdateFreezeState(NodeId node) {
  if (agent_phase_[node] != Phase::kContending) return;
  const bool busy = agent_pu_busy_[node] != 0 || agent_su_busy_[node] > 0;
  if (busy && agent_frozen_[node] == 0) {
    FreezeTimer(node);
  } else if (!busy && agent_frozen_[node] != 0) {
    ResumeTimer(node);
  }
}

bool CollectionMac::ComputePuBusy(NodeId node) const {
  if (pu_mask_words_ > 0) {
    // Dense path: intersect this node's static "PUs near me" mask row with
    // the slot's activity mask. A handful of unconditional word ops beats
    // the early-exit id scan, whose data-dependent branch mispredicts ~every
    // slot at moderate p_t. Same truth value, so behavior is bit-identical.
    const std::uint64_t* row = agent_pu_mask_.data() +
                               static_cast<std::size_t>(node) * pu_mask_words_;
    const std::uint64_t* act = primary_.activity_mask().data();
    std::uint64_t hit = 0;
    for (std::size_t w = 0; w < pu_mask_words_; ++w) hit |= row[w] & act[w];
    return hit != 0;
  }
  for (pu::PuId p : agents_[node].nearby_pus) {
    if (primary_.IsActive(p)) return true;
  }
  return false;
}

bool CollectionMac::SensePuBusy(NodeId node) {
  const bool truth = ComputePuBusy(node);
  if (truth) {
    if (config_.sensing_missed_detection > 0.0 &&
        sensing_rng_.Bernoulli(config_.sensing_missed_detection)) {
      return false;
    }
    return true;
  }
  return config_.sensing_false_alarm > 0.0 &&
         sensing_rng_.Bernoulli(config_.sensing_false_alarm);
}

std::int32_t CollectionMac::ComputeSuBusyCount(NodeId node) const {
  // Counts carriers this node can currently *sense*: announced active
  // transmissions plus ended-but-not-yet-faded ones, mirroring exactly the
  // increments/decrements the notification events will deliver later. The
  // carrier grid holds every node with carrier_count_ > 0, maintained by
  // NotifySensorsTxStart/End; summing the integer counts over the PCR disk
  // is order-independent, so the result is bit-identical to a linear scan
  // over active_tx_ and fading_tx_.
  std::int32_t count = 0;
  carrier_grid_.ForEachMemberInDisk(positions_[node], config_.pcr,
                                    [&](NodeId carrier) {
                                      count += carrier_count_[carrier];
                                    });
  return count;
}

void CollectionMac::OnBackoffExpired(NodeId node) {
  Agent& agent = agents_[node];
  CRN_DCHECK(agent_phase_[node] == Phase::kContending);
  // Defensive re-check: a same-instant busy transition processed earlier in
  // the event order freezes the timer and cancels this event, but if the
  // spectrum turned busy through a path that did not touch this agent the
  // conservative move is to wait for the next free period.
  if (agent_pu_busy_[node] != 0 || agent_su_busy_[node] > 0) {
    agent_frozen_[node] = 1;
    agent.remaining = 0;
    return;
  }
  // Line 11 of Algorithm 1: transmit when a spectrum opportunity appears.
  // A packet that cannot finish before the next slot boundary would ride
  // through a PU re-sample; instead the SU holds until the boundary and
  // senses again. All deferred SUs re-fire at exactly the boundary: the
  // event queue's deterministic sequence order preserves their expiry order
  // (Theorem 1's fairness property rides on that order), the first to fire
  // freezes the rest through carrier sensing before their events pop, and a
  // fresh backoff drawn after the boundary (≥ 1 ns) can never leapfrog a
  // deferred winner. Conventional MACs (slot_aware_defer = false) just fire.
  const sim::TimeNs slot_end = slot_start_time_ + config_.slot;
  if (config_.slot_aware_defer &&
      simulator_.now() + config_.tx_duration > slot_end) {
    agent_frozen_[node] = 0;
    agent.resume_time = simulator_.now();
    agent.remaining = slot_end - simulator_.now();
    agent.expiry_timer.ArmAfter(agent.remaining);
    EmitLifecycle(LifecycleEvent::Kind::kDeferred, node, nullptr, agent.remaining);
    return;
  }
  // The timer is fully consumed: record it as frozen-at-zero so
  // LeaveContention does not re-freeze and subtract the elapsed wait again
  // (which would drive `remaining` negative).
  agent.remaining = 0;
  agent_frozen_[node] = 1;
  LeaveContention(node);
  StartTransmission(node);
}

void CollectionMac::OnPostTxWaitDone(NodeId node) {
  CRN_DCHECK(agent_phase_[node] == Phase::kPostTxWait);
  if (agents_[node].queue.empty()) {
    agent_phase_[node] = Phase::kIdle;
  } else {
    BeginContention(node);
  }
}

// --- transmissions ----------------------------------------------------------

void CollectionMac::StartTransmission(NodeId node) {
  CRN_DCHECK(!agents_[node].queue.empty());
  agent_phase_[node] = Phase::kTransmitting;

  const NodeId receiver = next_hop_[node];
  Transmission tx;
  tx.transmitter = node;
  tx.receiver = receiver;
  tx.start = simulator_.now();
  tx.end = tx.start + config_.tx_duration;
  tx.signal_power = field_.SuGain(node, receiver);

  // Half-duplex: a receiver that is itself on the air cannot receive; a
  // failed receiver is simply gone.
  if (active_tx_slot_[receiver] >= 0 || failed_[receiver]) {
    tx.receiver_ok = false;
    tx.forced_outcome = TxOutcome::kReceiverBusy;
  } else {
    // RS (Re-Start) mode: if the receiver is already locked onto another
    // transmission, the stronger signal wins the radio.
    for (Transmission& other : active_tx_) {
      if (other.receiver != receiver || !other.receiver_ok) continue;
      if (tx.signal_power > other.signal_power) {
        other.receiver_ok = false;
        other.forced_outcome = TxOutcome::kCaptureLost;
      } else {
        tx.receiver_ok = false;
        tx.forced_outcome = TxOutcome::kReceiverBusy;
      }
      break;
    }
  }

  tx.end_timer.Bind(simulator_, sim::EventPriority::kTransmissionEnd,
                    "mac.tx_end", node,
                    [this, node] { FinishTransmission(node, /*aborted=*/false); });
  tx.end_timer.ArmAfter(config_.tx_duration);
  if (config_.sensing_latency <= 0) {
    tx.announced = true;
  } else {
    tx.announce_timer.Bind(simulator_, sim::EventPriority::kDefault,
                           "mac.tx_announce", node,
                           [this, node] { AnnounceTxStart(node); });
    tx.announce_timer.ArmAfter(config_.sensing_latency);
  }

  const bool announced_now = tx.announced;
  const sim::TimeNs tx_start = tx.start;
  const sim::TimeNs tx_end = tx.end;
  active_tx_slot_[node] = static_cast<std::int32_t>(active_tx_.size());
  active_tx_.push_back(std::move(tx));
  ++stats_.attempts;
  for (const auto& observer : tx_start_observers_) {
    observer(node, receiver, tx_start, tx_end);
  }

  if (announced_now) NotifySensorsTxStart(node);
  // A new interferer appeared: refresh the SIR floor of every ongoing
  // reception, including the new one.
  field_.NoteSuInterfererAdded();
  ReevaluateOngoingSirs();
}

void CollectionMac::AnnounceTxStart(NodeId transmitter) {
  const std::int32_t pos = active_tx_slot_[transmitter];
  CRN_DCHECK(pos >= 0) << "announce for a vanished transmission";
  Transmission& tx = active_tx_[pos];
  tx.announced = true;
  NotifySensorsTxStart(transmitter);
}

void CollectionMac::FinishTransmission(NodeId node, bool aborted) {
  const std::int32_t pos = active_tx_slot_[node];
  CRN_DCHECK(pos >= 0);
  // Move the transmission out: its timers ride along, and the local's
  // destructor cancels whatever is still pending (the end event on an
  // abort, the announcement on an early end) — including when this call
  // *is* the end timer's own fire, where the slot release is deferred
  // until the callback returns.
  Transmission tx = std::move(active_tx_[pos]);
  // Remove from the active set first so our own signal is not counted as
  // interference in any further evaluation.
  const NodeId moved = active_tx_.back().transmitter;
  active_tx_[pos] = std::move(active_tx_.back());
  active_tx_slot_[moved] = pos;
  active_tx_.pop_back();
  active_tx_slot_[node] = -1;
  field_.NoteSuInterfererRemoved();
  if (tx.announced) {
    if (config_.sensing_latency <= 0) {
      NotifySensorsTxEnd(node);
    } else {
      // End of carrier is sensed sensing_latency later; until then new
      // contenders must still count it (fading_tx_).
      fading_tx_.push_back(node);
      fading_seqs_.push_back(
          simulator_.ScheduleOnceAfter(  // crn-lint-ok: per-transmission node
                                         // payload with dynamic multiplicity;
                                         // a bind-once Timer would drop a fade
                                         // re-armed while one is pending.
              config_.sensing_latency, sim::EventPriority::kDefault,
              "mac.carrier_fade", node, [this, node] { OnCarrierFade(node); }));
    }
  }
  // else: the carrier vanished before anyone could sense it; the pending
  // announcement dies with `tx`, so increments and decrements stay paired.

  Agent& agent = agents_[node];
  TxOutcome outcome = TxOutcome::kSuccess;
  if (aborted) {
    outcome = TxOutcome::kAbortedPuReturn;
  } else if (!tx.receiver_ok) {
    outcome = tx.forced_outcome;
  } else if (tx.min_sir < config_.eta_s.linear()) {
    outcome = TxOutcome::kSirFailure;
  }
  ++stats_.outcomes[static_cast<std::int32_t>(outcome)];

  CRN_DCHECK(!agent.queue.empty());
  const Packet attempted = agent.queue.front();
  if (outcome == TxOutcome::kSuccess) {
    Packet packet = attempted;
    agent.queue.pop_front();
    ++packet.hops;
    ++success_tx_count_[node];
    agent.dead_hop_failures = 0;
    DeliverOrEnqueue(tx.receiver, packet);
  } else if (config_.dead_hop_retx_budget > 0 && failed_[next_hop_[node]] &&
             ++agent.dead_hop_failures >= config_.dead_hop_retx_budget) {
    // The next hop is gone and no repair has re-pointed the route within
    // the retransmission budget: drop the head packet instead of burning
    // airtime into the void forever (graceful degradation — the loss shows
    // up as delivery ratio < 1, not as a hung run).
    agent.queue.pop_front();
    agent.dead_hop_failures = 0;
    LosePacket(node, attempted, static_cast<std::int64_t>(agent.queue.size()));
    CheckTermination();
  }
  tx.end = simulator_.now();
  EmitTxEvent(tx, outcome, attempted);

  // Fairness rule (Algorithm 1, line 12): wait out the remainder of the
  // contention window before the next attempt.
  agent_phase_[node] = Phase::kPostTxWait;
  const sim::TimeNs wait =
      config_.fairness_wait
          ? std::max<sim::TimeNs>(0, config_.contention_window - agent.backoff_drawn)
          : 0;
  agent.wait_timer.ArmAfter(wait);
}

void CollectionMac::OnCarrierFade(NodeId node) {
  // FIFO per node: equal fade delays mean the first occurrence is always the
  // earliest-scheduled fade, so the parallel seq entry shares its index.
  const auto it = std::find(fading_tx_.begin(), fading_tx_.end(), node);
  CRN_DCHECK(it != fading_tx_.end());
  fading_seqs_.erase(fading_seqs_.begin() + (it - fading_tx_.begin()));
  fading_tx_.erase(it);
  NotifySensorsTxEnd(node);
}

void CollectionMac::AbortOnPuReturn(NodeId node) {
  CRN_DCHECK(active_tx_slot_[node] >= 0);
  FinishTransmission(node, /*aborted=*/true);
}

void CollectionMac::NotifySensorsTxStart(NodeId transmitter) {
  if (carrier_count_[transmitter]++ == 0) carrier_grid_.Insert(transmitter);
  // Hot loop: touches only the SoA flag arrays, never the Agent structs.
  sensing_grid_.ForEachMemberInDisk(
      positions_[transmitter], config_.pcr, [&](NodeId sensor) {
        ++agent_su_busy_[sensor];
        UpdateFreezeState(sensor);
      });
}

void CollectionMac::NotifySensorsTxEnd(NodeId transmitter) {
  CRN_DCHECK(carrier_count_[transmitter] > 0);
  if (--carrier_count_[transmitter] == 0) carrier_grid_.Erase(transmitter);
  sensing_grid_.ForEachMemberInDisk(
      positions_[transmitter], config_.pcr, [&](NodeId sensor) {
        CRN_DCHECK(agent_su_busy_[sensor] > 0);
        --agent_su_busy_[sensor];
        UpdateFreezeState(sensor);
      });
}

double CollectionMac::EvaluateSir(Transmission& tx) {
  // Fixed summation order — PU terms (ascending PU id, the active-list
  // order) first, then SU terms in active_tx_ order — so the field's
  // per-receiver PU memo continues into the exact operation sequence a
  // from-scratch recomputation would run, and cached and direct engines
  // stay bit-identical.
  spectrum::FieldWork& work = field_.work();
  ++work.sir_evaluations;
  const NodeId rx = tx.receiver;
  const bool cached = field_.engine() == spectrum::SirEngine::kCached;
  double interference = 0.0;
  std::size_t from = 0;
  if (cached && tx.itf_count >= 0 &&
      tx.itf_shrink_epoch == field_.shrink_epoch() &&
      tx.itf_pu_epoch == field_.pu_epoch()) {
    // Entries [0, itf_count) are the same transmissions in the same order
    // as when the memo was stored (no removal reordered the list, PU set
    // unchanged), so resuming from the stored sum and appending the new
    // tail reproduces a from-scratch re-sum bit for bit.
    interference = tx.itf_sum;
    from = static_cast<std::size_t>(tx.itf_count);
    ++work.su_resumes;
  } else {
    interference = field_.PuInterference(rx, primary_.active_transmitters());
  }
  for (std::size_t i = from; i < active_tx_.size(); ++i) {
    const Transmission& other = active_tx_[i];
    if (other.transmitter == tx.transmitter) continue;
    interference += field_.SuGain(other.transmitter, rx);
  }
  if (cached) {
    tx.itf_sum = interference;
    tx.itf_count = static_cast<std::int32_t>(active_tx_.size());
    tx.itf_pu_epoch = field_.pu_epoch();
    tx.itf_shrink_epoch = field_.shrink_epoch();
    tx.itf_ub = interference;  // exact again: the bound's slack resets
    tx.itf_ub_pu_epoch = field_.pu_epoch();
  }
  if (interference <= 0.0) return std::numeric_limits<double>::infinity();
  return tx.signal_power / interference;
}

void CollectionMac::ReevaluateOngoingSirs() {
  const bool cached = field_.engine() == spectrum::SirEngine::kCached;
  for (Transmission& tx : active_tx_) {
    if (!tx.receiver_ok) continue;  // verdict already sealed
    if (cached && tx.last_eval_epoch == field_.change_epoch()) {
      // No SIR-lowering event since this floor was set: interferers have
      // only dropped out, the SIR only rose, and min() would return the
      // stored floor unchanged — skipping is bit-exact.
      ++field_.work().reeval_skipped;
      continue;
    }
    if (cached && TrySirBoundSkip(tx)) {
      tx.last_eval_epoch = field_.change_epoch();
      continue;
    }
    tx.min_sir = std::min(tx.min_sir, EvaluateSir(tx));
    tx.last_eval_epoch = field_.change_epoch();
  }
}

bool CollectionMac::TrySirBoundSkip(Transmission& tx) {
  // Sound only when the single SIR-lowering event since this floor's last
  // visit is one SU start (the blanket refloor visits every unsealed
  // transmission at every change_epoch bump, so the gap is at most one
  // event): fold the newcomer's gain into the interference upper bound and
  // test the implied SIR lower bound against the stored floor.
  if (tx.itf_ub_pu_epoch != field_.pu_epoch() ||
      tx.last_eval_epoch + 1 != field_.change_epoch()) {
    return false;
  }
  const Transmission& newest = active_tx_.back();
  CRN_DCHECK(newest.transmitter != tx.transmitter);
  spectrum::FieldWork& work = field_.work();
  tx.itf_ub += field_.SuGain(newest.transmitter, tx.receiver);
  // itf_ub ≥ the true interference (removals since the last full evaluation
  // only widen the slack), so signal/itf_ub is a SIR lower bound. The
  // margin absorbs FP reordering error — the bound and a from-scratch
  // canonical-order sum may round differently, by at most ~k·2^-53
  // relatively for k summed terms — so clearing it proves the exact
  // refloor would leave min() returning the stored floor unchanged:
  // skipping is bit-exact, never approximate.
  constexpr double kSirSkipMargin = 1.0 + 1e-9;
  if (tx.signal_power / tx.itf_ub >= tx.min_sir * kSirSkipMargin) {
    ++work.bound_skips;
    return true;
  }
  return false;
}

// --- slot machinery ---------------------------------------------------------

void CollectionMac::OnSlotBoundary() {
  const sim::TimeNs now = simulator_.now();
  if (now >= config_.max_sim_time) {
    stats_.timed_out = true;
    stats_.finish_time = now;
    slot_timer_.Stop();  // suppress the re-arm: no sequence number consumed
    simulator_.Stop();
    return;
  }
  primary_.ResampleSlot(activity_rng_);
  field_.NotePuSample(primary_.active_transmitters());
  ++slot_index_;
  slot_start_time_ = now;
  EmitLifecycle(LifecycleEvent::Kind::kSlotBoundary, graph::kInvalidNode, nullptr,
                static_cast<std::int64_t>(primary_.active_transmitters().size()));

  // Spectrum handoff: transmitters sense the PU comeback and abort at once
  // (a missed detection lets the transmission ride on, harming the PU —
  // which the audit then observes).
  if (!active_tx_.empty()) {
    std::vector<NodeId> to_abort;
    for (const Transmission& tx : active_tx_) {
      if (SensePuBusy(tx.transmitter)) to_abort.push_back(tx.transmitter);
    }
    for (NodeId node : to_abort) AbortOnPuReturn(node);
  }

  // Refresh every contending SU's PU-side busy flag; each check doubles as
  // one spectrum-opportunity observation (Lemma 7 validation).
  for (NodeId node : contending_list_) {
    const bool pu_busy = SensePuBusy(node);
    ++stats_.slot_checks_total;
    if (!pu_busy) ++stats_.slot_checks_free;
    if (pu_busy != (agent_pu_busy_[node] != 0)) {
      agent_pu_busy_[node] = pu_busy ? 1 : 0;
      UpdateFreezeState(node);
    }
  }

  // The interference field changed wholesale; refresh reception SIR floors.
  ReevaluateOngoingSirs();

  // The audit snapshots the air mid-slot: deferred SUs transmit right after
  // the boundary and direct expiries within the first τ − tx_duration, so
  // 40% into the slot intersects most on-air intervals; at the boundary
  // itself the secondary network is always silent.
  if (config_.audit_stride > 0 && slot_index_ % config_.audit_stride == 0) {
    audit_timer_.ArmAfter(config_.slot * 2 / 5);
  }
  // slot_timer_ re-arms the next boundary after this body returns, taking
  // the same sequence number the explicit self-reschedule used to.
}

void CollectionMac::AuditPrimaryReceptions() {
  if (active_tx_.empty()) return;  // SUs silent: nothing to audit
  primary_.SampleReceiverPositions(audit_rng_);
  const spectrum::PathLoss& loss = sir_.path_loss();
  const double audit_radius = config_.audit_proximity_factor * config_.pcr;
  const double audit_radius2 = audit_radius * audit_radius;
  const double pu_power = primary_.config().power;
  const auto& active_pus = primary_.active_transmitters();
  for (pu::PuId p : active_pus) {
    const geom::Vec2 rx = primary_.receiver_position(p);
    // Only PU receptions with secondary activity nearby can possibly be
    // harmed by SUs; skip the rest to keep the audit cheap.
    bool su_nearby = false;
    for (const Transmission& tx : active_tx_) {
      if (geom::DistanceSquared(positions_[tx.transmitter], rx) <= audit_radius2) {
        su_nearby = true;
        break;
      }
    }
    if (!su_nearby) continue;

    const double signal = loss.ReceivedPowerSquared(
        pu_power, geom::DistanceSquared(primary_.position(p), rx));
    double interference_pu = 0.0;
    for (pu::PuId q : active_pus) {
      if (q == p) continue;
      interference_pu += loss.ReceivedPowerSquared(
          pu_power, geom::DistanceSquared(primary_.position(q), rx));
    }
    double interference_su = 0.0;
    for (const Transmission& tx : active_tx_) {
      interference_su += loss.ReceivedPowerSquared(
          config_.su_power, geom::DistanceSquared(positions_[tx.transmitter], rx));
    }
    ++stats_.audited_pu_receptions;
    const double eta = config_.eta_p.linear();
    const bool ok_without_su =
        interference_pu <= 0.0 || signal / interference_pu >= eta;
    const bool ok_with_su = signal / (interference_pu + interference_su) >= eta;
    if (!ok_without_su) {
      ++stats_.pu_only_failures;
    } else if (!ok_with_su) {
      ++stats_.su_caused_violations;
    }
  }
}

void CollectionMac::LosePacket(NodeId node, const Packet& packet,
                               std::int64_t queue_left) {
  --expected_per_origin_[packet.origin];
  if (--snapshot_remaining_[packet.snapshot] == 0 &&
      snapshot_finish_[packet.snapshot] < 0) {
    snapshot_finish_[packet.snapshot] = simulator_.now();
  }
  --expected_packets_;
  ++stats_.packets_lost;
  EmitLifecycle(LifecycleEvent::Kind::kPacketDropped, node, &packet, queue_left);
}

void CollectionMac::DeliverOrEnqueue(NodeId receiver, const Packet& packet) {
  if (receiver == sink_) {
    ++stats_.delivered;
    stats_.delivered_hops_total += packet.hops;
    ++delivered_per_origin_[packet.origin];
    CRN_CHECK(delivered_per_origin_[packet.origin] <= expected_per_origin_[packet.origin])
        << "origin " << packet.origin << " over-delivered: packets must reach "
        << "the base station exactly once";
    if (delivery_time_[packet.origin] < 0) {
      delivery_time_[packet.origin] = simulator_.now();
    }
    if (--snapshot_remaining_[packet.snapshot] == 0) {
      snapshot_finish_[packet.snapshot] = simulator_.now();
    }
    EmitLifecycle(LifecycleEvent::Kind::kPacketDelivered, receiver, &packet,
                  packet.hops);
    CheckTermination();
    return;
  }
  agents_[receiver].queue.push_back(packet);
  EmitLifecycle(LifecycleEvent::Kind::kPacketEnqueued, receiver, &packet,
                static_cast<std::int64_t>(agents_[receiver].queue.size()));
  ActivateIfIdle(receiver);
}

void CollectionMac::EmitTxEvent(const Transmission& tx, TxOutcome outcome,
                                const Packet& packet) {
  if (observers_.empty()) return;
  TxEvent event;
  event.transmitter = tx.transmitter;
  event.receiver = tx.receiver;
  event.start = tx.start;
  event.end = tx.end;
  event.outcome = outcome;
  event.packet = packet;
  event.min_sir = tx.min_sir;
  for (const auto& observer : observers_) observer(event);
}

void CollectionMac::EmitLifecycle(LifecycleEvent::Kind kind, NodeId node,
                                  const Packet* packet, std::int64_t value) {
  if (lifecycle_observers_.empty()) return;
  LifecycleEvent event;
  event.kind = kind;
  event.node = node;
  event.time = simulator_.now();
  if (packet != nullptr) event.packet = *packet;
  event.value = value;
  for (const auto& observer : lifecycle_observers_) observer(event);
}

void CollectionMac::CheckTermination() {
  if (stats_.delivered == expected_packets_) {
    stats_.finish_time = simulator_.now();
    simulator_.Stop();
  }
}

// --- checkpointing ----------------------------------------------------------

void CollectionMac::SaveState(sim::StateWriter& writer) const {
  writer.BeginSection("mac");
  sim::WriteRng(writer, backoff_rng_);
  sim::WriteRng(writer, activity_rng_);
  sim::WriteRng(writer, audit_rng_);
  sim::WriteRng(writer, sensing_rng_);
  // The only config fields mutable mid-run (SetSensingErrorRates); the rest
  // is rebuilt from the scenario before LoadState.
  writer.WriteDouble(config_.sensing_false_alarm);
  writer.WriteDouble(config_.sensing_missed_detection);
  writer.WriteBool(running_);
  writer.WriteI64(expected_packets_);
  writer.WriteI64(slot_index_);
  writer.WriteI64(slot_start_time_);

  writer.WriteI64(stats_.attempts);
  for (const std::int64_t n : stats_.outcomes) writer.WriteI64(n);
  writer.WriteI64(stats_.delivered);
  writer.WriteI64(stats_.finish_time);
  writer.WriteBool(stats_.timed_out);
  writer.WriteI64(stats_.slot_checks_total);
  writer.WriteI64(stats_.slot_checks_free);
  writer.WriteI64(stats_.audited_pu_receptions);
  writer.WriteI64(stats_.pu_only_failures);
  writer.WriteI64(stats_.su_caused_violations);
  writer.WriteI64(stats_.delivered_hops_total);
  writer.WriteI64(stats_.packets_seeded);
  writer.WriteI64(stats_.packets_lost);

  const std::int32_t n = node_count();
  writer.WriteU32(static_cast<std::uint32_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const Agent& agent = agents_[static_cast<std::size_t>(v)];
    writer.WriteI32(next_hop_[static_cast<std::size_t>(v)]);
    writer.WriteU8(static_cast<std::uint8_t>(failed_[static_cast<std::size_t>(v)]));
    writer.WriteU8(static_cast<std::uint8_t>(agent_phase_[static_cast<std::size_t>(v)]));
    writer.WriteU8(agent_frozen_[static_cast<std::size_t>(v)]);
    writer.WriteU8(agent_pu_busy_[static_cast<std::size_t>(v)]);
    writer.WriteI32(agent_su_busy_[static_cast<std::size_t>(v)]);
    writer.WriteI32(carrier_count_[static_cast<std::size_t>(v)]);
    writer.WriteI64(delivery_time_[static_cast<std::size_t>(v)]);
    writer.WriteI64(expected_per_origin_[static_cast<std::size_t>(v)]);
    writer.WriteI64(delivered_per_origin_[static_cast<std::size_t>(v)]);
    writer.WriteI64(success_tx_count_[static_cast<std::size_t>(v)]);
    writer.WriteI64(agent.backoff_drawn);
    writer.WriteI64(agent.remaining);
    writer.WriteI64(agent.resume_time);
    writer.WriteI32(agent.dead_hop_failures);
    writer.WriteU64(agent.expiry_timer.pending_seq());
    writer.WriteU64(agent.wait_timer.pending_seq());
    writer.WriteU32(static_cast<std::uint32_t>(agent.queue.size()));
    for (const Packet& packet : agent.queue) {
      writer.WriteI32(packet.origin);
      writer.WriteI64(packet.created);
      writer.WriteI32(packet.hops);
      writer.WriteI32(packet.snapshot);
    }
  }

  writer.WriteU32(static_cast<std::uint32_t>(contending_list_.size()));
  for (const NodeId v : contending_list_) writer.WriteI32(v);
  // Both dynamic grids in their exact iteration order: in-cell member order
  // decides the visit order of the sensing-notification loops, which decides
  // the sequence numbers their freeze/resume re-arms draw. Re-inserting in
  // this order reproduces the layout bit for bit (Insert appends).
  const std::vector<std::int32_t> sensing_members =
      sensing_grid_.MembersInIterationOrder();
  writer.WriteU32(static_cast<std::uint32_t>(sensing_members.size()));
  for (const std::int32_t v : sensing_members) writer.WriteI32(v);
  const std::vector<std::int32_t> carrier_members =
      carrier_grid_.MembersInIterationOrder();
  writer.WriteU32(static_cast<std::uint32_t>(carrier_members.size()));
  for (const std::int32_t v : carrier_members) writer.WriteI32(v);

  // Active transmissions in active_tx_ order — the append-incremental SIR
  // memos are defined relative to this exact order.
  writer.WriteU32(static_cast<std::uint32_t>(active_tx_.size()));
  for (const Transmission& tx : active_tx_) {
    writer.WriteI32(tx.transmitter);
    writer.WriteI32(tx.receiver);
    writer.WriteI64(tx.start);
    writer.WriteI64(tx.end);
    writer.WriteDouble(tx.signal_power);
    writer.WriteDouble(tx.min_sir);
    writer.WriteBool(tx.receiver_ok);
    writer.WriteBool(tx.announced);
    writer.WriteU8(static_cast<std::uint8_t>(tx.forced_outcome));
    writer.WriteI64(tx.last_eval_epoch);
    writer.WriteDouble(tx.itf_sum);
    writer.WriteI32(tx.itf_count);
    writer.WriteI64(tx.itf_pu_epoch);
    writer.WriteI64(tx.itf_shrink_epoch);
    writer.WriteDouble(tx.itf_ub);
    writer.WriteI64(tx.itf_ub_pu_epoch);
    writer.WriteU64(tx.end_timer.pending_seq());
    writer.WriteU64(tx.announce_timer.pending_seq());
  }

  writer.WriteU32(static_cast<std::uint32_t>(fading_tx_.size()));
  for (std::size_t i = 0; i < fading_tx_.size(); ++i) {
    writer.WriteI32(fading_tx_[i]);
    writer.WriteU64(fading_seqs_[i]);
  }

  writer.WriteU32(static_cast<std::uint32_t>(seed_producers_.size()));
  for (const NodeId v : seed_producers_) writer.WriteI32(v);
  writer.WriteU32(static_cast<std::uint32_t>(pending_seeds_.size()));
  for (const PendingSeed& seed : pending_seeds_) {
    writer.WriteI32(seed.snapshot);
    writer.WriteU64(seed.seq);
  }

  writer.WriteU32(static_cast<std::uint32_t>(snapshot_created_.size()));
  for (std::size_t k = 0; k < snapshot_created_.size(); ++k) {
    writer.WriteI64(snapshot_created_[k]);
    writer.WriteI64(snapshot_finish_[k]);
    writer.WriteI64(snapshot_remaining_[k]);
  }

  writer.WriteBool(slot_timer_.running());
  writer.WriteI64(slot_timer_.period());
  writer.WriteU64(slot_timer_.pending_seq());
  writer.WriteU64(audit_timer_.pending_seq());
  writer.EndSection();

  field_.SaveState(writer);
}

void CollectionMac::LoadState(sim::StateReader& reader) {
  if (!reader.OpenSection("mac")) return;
  std::array<std::array<std::uint64_t, 4>, 4> rng_words{};
  for (auto& stream : rng_words) {
    for (std::uint64_t& word : stream) word = reader.ReadU64();
  }
  const double sensing_false_alarm = reader.ReadDouble();
  const double sensing_missed_detection = reader.ReadDouble();
  const bool running = reader.ReadBool();
  const std::int64_t expected_packets = reader.ReadI64();
  const std::int64_t slot_index = reader.ReadI64();
  const sim::TimeNs slot_start_time = reader.ReadI64();

  MacStats stats;
  stats.attempts = reader.ReadI64();
  for (std::int64_t& n : stats.outcomes) n = reader.ReadI64();
  stats.delivered = reader.ReadI64();
  stats.finish_time = reader.ReadI64();
  stats.timed_out = reader.ReadBool();
  stats.slot_checks_total = reader.ReadI64();
  stats.slot_checks_free = reader.ReadI64();
  stats.audited_pu_receptions = reader.ReadI64();
  stats.pu_only_failures = reader.ReadI64();
  stats.su_caused_violations = reader.ReadI64();
  stats.delivered_hops_total = reader.ReadI64();
  stats.packets_seeded = reader.ReadI64();
  stats.packets_lost = reader.ReadI64();

  const std::uint32_t saved_nodes = reader.ReadU32();
  if (reader.ok() && saved_nodes != static_cast<std::uint32_t>(node_count())) {
    // Different scenario size: EndSection's unread-bytes check produces the
    // actionable layout-mismatch error.
    reader.EndSection();
    return;
  }
  struct SavedAgent {
    NodeId next_hop = graph::kInvalidNode;
    std::uint8_t failed = 0;
    std::uint8_t phase = 0;
    std::uint8_t frozen = 0;
    std::uint8_t pu_busy = 0;
    std::int32_t su_busy = 0;
    std::int32_t carrier_count = 0;
    sim::TimeNs delivery_time = -1;
    std::int64_t expected_per_origin = 0;
    std::int64_t delivered_per_origin = 0;
    std::int64_t success_tx_count = 0;
    sim::TimeNs backoff_drawn = 0;
    sim::TimeNs remaining = 0;
    sim::TimeNs resume_time = 0;
    std::int32_t dead_hop_failures = 0;
    sim::EventId expiry_seq = 0;
    sim::EventId wait_seq = 0;
    std::deque<Packet> queue;
  };
  std::vector<SavedAgent> saved_agents(saved_nodes);
  for (std::uint32_t v = 0; v < saved_nodes && reader.ok(); ++v) {
    SavedAgent& a = saved_agents[v];
    a.next_hop = reader.ReadI32();
    a.failed = reader.ReadU8();
    a.phase = reader.ReadU8();
    a.frozen = reader.ReadU8();
    a.pu_busy = reader.ReadU8();
    a.su_busy = reader.ReadI32();
    a.carrier_count = reader.ReadI32();
    a.delivery_time = reader.ReadI64();
    a.expected_per_origin = reader.ReadI64();
    a.delivered_per_origin = reader.ReadI64();
    a.success_tx_count = reader.ReadI64();
    a.backoff_drawn = reader.ReadI64();
    a.remaining = reader.ReadI64();
    a.resume_time = reader.ReadI64();
    a.dead_hop_failures = reader.ReadI32();
    a.expiry_seq = reader.ReadU64();
    a.wait_seq = reader.ReadU64();
    const std::uint32_t queue_size = reader.ReadU32();
    for (std::uint32_t i = 0; i < queue_size && reader.ok(); ++i) {
      Packet packet;
      packet.origin = reader.ReadI32();
      packet.created = reader.ReadI64();
      packet.hops = reader.ReadI32();
      packet.snapshot = reader.ReadI32();
      a.queue.push_back(packet);
    }
  }

  const std::uint32_t contender_count = reader.ReadU32();
  std::vector<NodeId> contending_list(contender_count);
  for (NodeId& v : contending_list) v = reader.ReadI32();
  const std::uint32_t sensing_count = reader.ReadU32();
  std::vector<std::int32_t> sensing_members(sensing_count);
  for (std::int32_t& v : sensing_members) v = reader.ReadI32();
  const std::uint32_t carrier_member_count = reader.ReadU32();
  std::vector<std::int32_t> carrier_members(carrier_member_count);
  for (std::int32_t& v : carrier_members) v = reader.ReadI32();

  struct SavedTx {
    NodeId transmitter = graph::kInvalidNode;
    NodeId receiver = graph::kInvalidNode;
    sim::TimeNs start = 0;
    sim::TimeNs end = 0;
    double signal_power = 0.0;
    double min_sir = 0.0;
    bool receiver_ok = true;
    bool announced = false;
    std::uint8_t forced_outcome = 0;
    std::int64_t last_eval_epoch = -1;
    double itf_sum = 0.0;
    std::int32_t itf_count = -1;
    std::int64_t itf_pu_epoch = -1;
    std::int64_t itf_shrink_epoch = -1;
    double itf_ub = 0.0;
    std::int64_t itf_ub_pu_epoch = -1;
    sim::EventId end_seq = 0;
    sim::EventId announce_seq = 0;
  };
  const std::uint32_t tx_count = reader.ReadU32();
  std::vector<SavedTx> saved_txs(tx_count);
  for (std::uint32_t i = 0; i < tx_count && reader.ok(); ++i) {
    SavedTx& t = saved_txs[i];
    t.transmitter = reader.ReadI32();
    t.receiver = reader.ReadI32();
    t.start = reader.ReadI64();
    t.end = reader.ReadI64();
    t.signal_power = reader.ReadDouble();
    t.min_sir = reader.ReadDouble();
    t.receiver_ok = reader.ReadBool();
    t.announced = reader.ReadBool();
    t.forced_outcome = reader.ReadU8();
    t.last_eval_epoch = reader.ReadI64();
    t.itf_sum = reader.ReadDouble();
    t.itf_count = reader.ReadI32();
    t.itf_pu_epoch = reader.ReadI64();
    t.itf_shrink_epoch = reader.ReadI64();
    t.itf_ub = reader.ReadDouble();
    t.itf_ub_pu_epoch = reader.ReadI64();
    t.end_seq = reader.ReadU64();
    t.announce_seq = reader.ReadU64();
  }

  const std::uint32_t fading_count = reader.ReadU32();
  std::vector<NodeId> fading_tx(fading_count);
  std::vector<sim::EventId> fading_seqs(fading_count);
  for (std::uint32_t i = 0; i < fading_count && reader.ok(); ++i) {
    fading_tx[i] = reader.ReadI32();
    fading_seqs[i] = reader.ReadU64();
  }

  const std::uint32_t producer_count = reader.ReadU32();
  std::vector<NodeId> seed_producers(producer_count);
  for (NodeId& v : seed_producers) v = reader.ReadI32();
  const std::uint32_t pending_seed_count = reader.ReadU32();
  std::vector<PendingSeed> pending_seeds(pending_seed_count);
  for (std::uint32_t i = 0; i < pending_seed_count && reader.ok(); ++i) {
    pending_seeds[i].snapshot = reader.ReadI32();
    pending_seeds[i].seq = reader.ReadU64();
  }

  const std::uint32_t snapshot_count = reader.ReadU32();
  std::vector<sim::TimeNs> snapshot_created(snapshot_count);
  std::vector<sim::TimeNs> snapshot_finish(snapshot_count);
  std::vector<std::int64_t> snapshot_remaining(snapshot_count);
  for (std::uint32_t k = 0; k < snapshot_count && reader.ok(); ++k) {
    snapshot_created[k] = reader.ReadI64();
    snapshot_finish[k] = reader.ReadI64();
    snapshot_remaining[k] = reader.ReadI64();
  }

  const bool slot_timer_running = reader.ReadBool();
  const sim::TimeNs slot_timer_period = reader.ReadI64();
  const sim::EventId slot_timer_seq = reader.ReadU64();
  const sim::EventId audit_seq = reader.ReadU64();
  reader.EndSection();
  if (!reader.ok()) return;

  backoff_rng_.RestoreState(rng_words[0][0], rng_words[0][1], rng_words[0][2],
                            rng_words[0][3]);
  activity_rng_.RestoreState(rng_words[1][0], rng_words[1][1], rng_words[1][2],
                             rng_words[1][3]);
  audit_rng_.RestoreState(rng_words[2][0], rng_words[2][1], rng_words[2][2],
                          rng_words[2][3]);
  sensing_rng_.RestoreState(rng_words[3][0], rng_words[3][1], rng_words[3][2],
                            rng_words[3][3]);
  config_.sensing_false_alarm = sensing_false_alarm;
  config_.sensing_missed_detection = sensing_missed_detection;
  running_ = running;
  expected_packets_ = expected_packets;
  slot_index_ = slot_index;
  slot_start_time_ = slot_start_time;
  stats_ = stats;

  for (std::uint32_t v = 0; v < saved_nodes; ++v) {
    SavedAgent& a = saved_agents[v];
    Agent& agent = agents_[v];
    next_hop_[v] = a.next_hop;
    failed_[v] = static_cast<char>(a.failed);
    agent_phase_[v] = static_cast<Phase>(a.phase);
    agent_frozen_[v] = a.frozen;
    agent_pu_busy_[v] = a.pu_busy;
    agent_su_busy_[v] = a.su_busy;
    carrier_count_[v] = a.carrier_count;
    delivery_time_[v] = a.delivery_time;
    expected_per_origin_[v] = a.expected_per_origin;
    delivered_per_origin_[v] = a.delivered_per_origin;
    success_tx_count_[v] = a.success_tx_count;
    agent.backoff_drawn = a.backoff_drawn;
    agent.remaining = a.remaining;
    agent.resume_time = a.resume_time;
    agent.dead_hop_failures = a.dead_hop_failures;
    agent.queue = std::move(a.queue);
    if (a.expiry_seq != 0) agent.expiry_timer.RestoreArm(a.expiry_seq);
    if (a.wait_seq != 0) agent.wait_timer.RestoreArm(a.wait_seq);
  }

  contending_list_ = std::move(contending_list);
  for (std::size_t i = 0; i < contending_list_.size(); ++i) {
    contending_slot_[static_cast<std::size_t>(contending_list_[i])] =
        static_cast<std::int32_t>(i);
  }
  for (const std::int32_t v : sensing_members) sensing_grid_.Insert(v);
  for (const std::int32_t v : carrier_members) carrier_grid_.Insert(v);

  active_tx_.clear();
  active_tx_.reserve(saved_txs.size());
  for (const SavedTx& t : saved_txs) {
    Transmission tx;
    tx.transmitter = t.transmitter;
    tx.receiver = t.receiver;
    tx.start = t.start;
    tx.end = t.end;
    tx.signal_power = t.signal_power;
    tx.min_sir = t.min_sir;
    tx.receiver_ok = t.receiver_ok;
    tx.announced = t.announced;
    tx.forced_outcome = static_cast<TxOutcome>(t.forced_outcome);
    tx.last_eval_epoch = t.last_eval_epoch;
    tx.itf_sum = t.itf_sum;
    tx.itf_count = t.itf_count;
    tx.itf_pu_epoch = t.itf_pu_epoch;
    tx.itf_shrink_epoch = t.itf_shrink_epoch;
    tx.itf_ub = t.itf_ub;
    tx.itf_ub_pu_epoch = t.itf_ub_pu_epoch;
    const NodeId node = t.transmitter;
    tx.end_timer.Bind(simulator_, sim::EventPriority::kTransmissionEnd,
                      "mac.tx_end", node,
                      [this, node] { FinishTransmission(node, false); });
    tx.end_timer.RestoreArm(t.end_seq);
    if (t.announce_seq != 0) {
      tx.announce_timer.Bind(simulator_, sim::EventPriority::kDefault,
                             "mac.tx_announce", node,
                             [this, node] { AnnounceTxStart(node); });
      tx.announce_timer.RestoreArm(t.announce_seq);
    }
    active_tx_slot_[static_cast<std::size_t>(node)] =
        static_cast<std::int32_t>(active_tx_.size());
    active_tx_.push_back(std::move(tx));
  }

  fading_tx_ = std::move(fading_tx);
  fading_seqs_ = std::move(fading_seqs);
  for (std::size_t i = 0; i < fading_tx_.size(); ++i) {
    const NodeId node = fading_tx_[i];
    simulator_.RestoreOnce(fading_seqs_[i], sim::EventPriority::kDefault,
                           "mac.carrier_fade", node,
                           sim::EventFn([this, node] { OnCarrierFade(node); }));
  }

  seed_producers_ = std::move(seed_producers);
  pending_seeds_ = std::move(pending_seeds);
  for (const PendingSeed& seed : pending_seeds_) {
    const std::int32_t k = seed.snapshot;
    simulator_.RestoreOnce(seed.seq, sim::EventPriority::kDefault,
                           "mac.seed_snapshot", sink_,
                           sim::EventFn([this, k] { OnSeedSnapshot(k); }));
  }

  snapshot_created_ = std::move(snapshot_created);
  snapshot_finish_ = std::move(snapshot_finish);
  snapshot_remaining_ = std::move(snapshot_remaining);

  if (running_) {
    slot_timer_.Bind(simulator_, sim::EventPriority::kSlotBoundary,
                     "mac.slot_boundary", sink_, [this] { OnSlotBoundary(); });
    if (slot_timer_running) {
      slot_timer_.RestoreRunning(slot_timer_period, slot_timer_seq);
    }
    audit_timer_.Bind(simulator_, sim::EventPriority::kDefault, "mac.pu_audit",
                      sink_, [this] { AuditPrimaryReceptions(); });
    if (audit_seq != 0) audit_timer_.RestoreArm(audit_seq);
  }

  field_.LoadState(reader);
}

}  // namespace crn::mac
