// CollectionMac — the asynchronous CSMA medium-access layer of Algorithm 1,
// shared by ADDC and the Coolest baseline (they differ only in the next-hop
// table handed to the constructor).
//
// Per-SU behaviour (paper §IV-C):
//   * with data queued, draw a backoff t_i uniformly from (0, τ_c];
//   * carrier-sense with range R_pcr: the countdown runs only while no PU
//     and no SU transmitter is active within R_pcr, freezing otherwise;
//   * on expiry, transmit one packet (duration τ = B/W) to the next hop;
//   * if a PU becomes active within R_pcr mid-transmission, hand off the
//     spectrum immediately (abort, retry later);
//   * after any attempt, wait the remaining τ_c − t_i before re-contending
//     (the paper's fairness rule; disable via config for ablation A1).
//
// Receptions follow the physical interference model with the RS
// (Re-Start) receiver mode [22]: the receiver locks onto the strongest
// signal, and a reception succeeds iff its SIR stays ≥ η_s at every
// interference-change instant and the receiver was never captured away.
//
// The class also runs the PU-protection audit described in DESIGN.md §5:
// sampled primary receptions are SIR-checked with and without the secondary
// network's interference; a violation is counted only when SU interference
// flips a PU reception from success to failure.
#ifndef CRN_MAC_COLLECTION_MAC_H_
#define CRN_MAC_COLLECTION_MAC_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "geom/spatial_grid.h"
#include "geom/vec2.h"
#include "mac/packet.h"
#include "pu/primary_network.h"
#include "sim/simulator.h"
#include "spectrum/interference.h"
#include "spectrum/interference_field.h"

namespace crn::mac {

struct MacConfig {
  double su_power = 10.0;                           // P_s
  SirThreshold eta_s = SirThreshold::FromDb(8.0);   // η_s
  SirThreshold eta_p = SirThreshold::FromDb(8.0);   // η_p (audit only)
  double pcr = 0.0;                                 // carrier-sensing range R_pcr
  double alpha = 4.0;                               // path-loss exponent
  sim::TimeNs slot = sim::kMillisecond;             // τ
  sim::TimeNs contention_window = sim::kMillisecond / 2;  // τ_c
  // Packet airtime. §V: "the propagation time of a data packet ... is less
  // than 1 ms" — a packet fits inside one slot, so a transmission never
  // straddles a PU re-sample boundary. The default τ − τ_c realizes
  // Algorithm 1's within-slot contend-then-transmit cycle.
  sim::TimeNs tx_duration = sim::kMillisecond / 2;
  bool fairness_wait = true;                        // Algorithm 1 line 12

  // --- conventional-MAC emulation (the Coolest baseline) ---------------
  // ADDC draws backoffs at nanosecond granularity, so two neighbors never
  // expire together (the paper's standing assumption). A commodity CSMA MAC
  // draws from a small number of discrete contention slots instead; set
  // backoff_granularity > 0 to emulate it. Combined with a non-zero
  // carrier-sensing latency (detection lag), same-slot winners cannot hear
  // each other, transmit concurrently, and collide — the "many data
  // collisions ... and retransmissions" of §I that Algorithm 1 is designed
  // to avoid. Collisions are not special-cased: the colliding transmissions
  // simply fail the physical SIR check at their receivers.
  sim::TimeNs backoff_granularity = 0;  // 0 = continuous (Algorithm 1)
  sim::TimeNs sensing_latency = 0;      // busy/idle detection lag

  // --- imperfect spectrum sensing ---------------------------------------
  // Real detectors miss active PUs and fire on noise (the sensing
  // literature of §II); applied independently to every PU-sensing decision
  // (slot-boundary checks, contention entry, and the transmitter's handoff
  // check). Missed detections surface as PU-protection violations and SIR
  // failures; false alarms as lost spectrum opportunities. 0/0 reproduces
  // the paper's perfect-sensing assumption.
  double sensing_false_alarm = 0.0;       // P(busy reading | spectrum free)
  double sensing_missed_detection = 0.0;  // P(free reading | PU active in PCR)
  // Algorithm 1 waits for a *spectrum opportunity* (line 11): it knows the
  // primary network is slotted (Lemma 7) and never launches a packet that
  // would ride through the next PU re-sample. A conventional asynchronous
  // MAC has no notion of the PU slot phase: it transmits the moment its
  // backoff expires, and a boundary-crossing packet is killed by returning
  // PUs with probability ≈ 1 − p_o — the §I "retransmissions" failure mode.
  bool slot_aware_defer = true;
  std::int32_t audit_stride = 16;                   // 0 disables the PU audit
  double audit_proximity_factor = 4.0;  // audit PUs with an SU tx within factor·pcr
  sim::TimeNs max_sim_time = 3'600 * sim::kSecond;  // hard timeout

  // --- churn degradation (DESIGN.md §9) ---------------------------------
  // How many consecutive failed attempts toward a *failed* next hop a node
  // tolerates before dropping the head packet (graceful degradation:
  // delivery ratio < 1 instead of burning airtime into the void forever).
  // 0 keeps retrying indefinitely — the fault-free default, where a repair
  // is expected to re-point the route.
  std::int32_t dead_hop_retx_budget = 0;

  // SIR evaluation engine (interference_field.h). kCached is bit-identical
  // to kDirect on every scenario — the direct engine exists as the property
  // tests' reference and the throughput bench's before/after baseline.
  spectrum::SirEngine sir_engine = spectrum::SirEngine::kCached;
};

// Aggregate counters for one collection run.
struct MacStats {
  std::int64_t attempts = 0;
  std::array<std::int64_t, kTxOutcomeCount> outcomes{};  // indexed by TxOutcome
  std::int64_t delivered = 0;
  sim::TimeNs finish_time = 0;
  bool timed_out = false;

  // Spectrum-opportunity sampling: at each slot boundary, every contending
  // SU contributes one observation of "is my PCR free of active PUs".
  std::int64_t slot_checks_total = 0;
  std::int64_t slot_checks_free = 0;

  // PU-protection audit.
  std::int64_t audited_pu_receptions = 0;
  std::int64_t pu_only_failures = 0;       // failed even without SUs
  std::int64_t su_caused_violations = 0;   // SU interference flipped the verdict

  // Sum of per-packet hop counts at delivery (for mean path length).
  std::int64_t delivered_hops_total = 0;

  // Degradation accounting under churn: packets seeded over the whole run
  // and packets lost (queued aboard a failed node, seeded at a node that
  // was down, or dropped after exhausting dead_hop_retx_budget).
  std::int64_t packets_seeded = 0;
  std::int64_t packets_lost = 0;

  // Delivered fraction of everything seeded — 1.0 on a fault-free run, < 1
  // under unrepaired churn (the graceful-degradation contract: a
  // partitioned network reports the loss instead of aborting).
  [[nodiscard]] double delivery_ratio() const {
    return packets_seeded == 0
               ? 1.0
               : static_cast<double>(delivered) / static_cast<double>(packets_seeded);
  }

  [[nodiscard]] double measured_spectrum_opportunity() const {
    return slot_checks_total == 0
               ? 1.0
               : static_cast<double>(slot_checks_free) / slot_checks_total;
  }
};

class CollectionMac {
 public:
  // `positions[sink]` is the base station; `next_hop[v]` must eventually
  // lead every packet-producing node to `sink` (validated). The MAC keeps
  // references to `simulator` and `primary` — both must outlive it.
  CollectionMac(sim::Simulator& simulator, pu::PrimaryNetwork& primary,
                std::vector<geom::Vec2> positions, geom::Aabb area, NodeId sink,
                std::vector<NodeId> next_hop, const MacConfig& config, Rng rng);

  // Seeds one packet per entry of `producers` (created at current sim
  // time) and schedules the network to run; a node listed k times produces
  // k packets (multi-packet workloads in tests and examples). Call before
  // Simulator::Run().
  void StartCollection(const std::vector<NodeId>& producers);

  // Convenience: every node except the sink produces one packet (the
  // paper's snapshot model).
  void StartSnapshotCollection();

  // Continuous data collection: `snapshot_count` snapshots are produced,
  // one every `interval` (the first at the current time); each snapshot
  // seeds one packet per entry of `producers`. The run finishes when every
  // packet of every snapshot has reached the base station. Per-snapshot
  // completion times are exposed below — their growth across snapshots
  // tells whether the offered rate is inside the network's collection
  // capacity (Theorem 2).
  void StartContinuousCollection(const std::vector<NodeId>& producers,
                                 sim::TimeNs interval, std::int32_t snapshot_count);

  // Completion time of each snapshot (-1 while incomplete) and its
  // creation time.
  [[nodiscard]] const std::vector<sim::TimeNs>& snapshot_finish_time() const {
    return snapshot_finish_;
  }
  [[nodiscard]] const std::vector<sim::TimeNs>& snapshot_created_time() const {
    return snapshot_created_;
  }

  [[nodiscard]] const MacStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t expected_packets() const { return expected_packets_; }
  [[nodiscard]] bool finished() const { return stats_.delivered == expected_packets_; }

  // Delivery time per origin node (-1 while undelivered).
  [[nodiscard]] const std::vector<sim::TimeNs>& delivery_time() const {
    return delivery_time_;
  }
  // Successful transmissions per node (fairness analyses).
  [[nodiscard]] const std::vector<std::int64_t>& success_tx_count() const {
    return success_tx_count_;
  }

  // Observers fire when a transmission attempt terminates (any outcome) —
  // used by tests (Theorem 1 fairness property) and detailed metrics.
  void AddTxObserver(std::function<void(const TxEvent&)> observer) {
    observers_.push_back(std::move(observer));
  }

  // Fires when a node sets a fresh backoff timer (Algorithm 1 line 3) —
  // the reference instant of Theorem 1's property 𝔓.
  void AddContentionObserver(std::function<void(NodeId, sim::TimeNs)> observer) {
    contention_observers_.push_back(std::move(observer));
  }

  // Fires the instant a transmission goes on the air, before any outcome is
  // known; paired with the TxEvent observer above this brackets every
  // attempt. The invariant auditor (core/invariant_auditor.h) uses the pair
  // to track the concurrently active transmitter set.
  void AddTxStartObserver(
      std::function<void(NodeId transmitter, NodeId receiver, sim::TimeNs start,
                         sim::TimeNs end)>
          observer) {
    tx_start_observers_.push_back(std::move(observer));
  }

  // Fires on every packet/contention lifecycle transition (packet.h's
  // LifecycleEvent) — the observability layer's feed. Zero-cost when no
  // observer is attached: the emit helper bails out before building the
  // event, exactly like EmitTxEvent.
  void AddLifecycleObserver(std::function<void(const LifecycleEvent&)> observer) {
    lifecycle_observers_.push_back(std::move(observer));
  }

  // --- network dynamics (§I: SUs may leave at any time) -----------------
  // Permanently removes an SU at the current simulation time: any in-flight
  // transmission is cut, its queued packets are lost with it (the expected
  // total shrinks accordingly), and transmissions toward it fail. Re-route
  // its former children via UpdateNextHop; until then their retries burn
  // airtime into the void.
  void FailNode(NodeId node);

  // Brings a failed SU back at the current simulation time: it rejoins with
  // an empty queue and resumes relaying/producing. Its routing-table entry
  // is whatever it held at failure — the caller (normally the fault
  // injector's cascade repair) must re-validate routes before counting on
  // it as a relay.
  void RecoverNode(NodeId node);

  // Re-points a live node's next hop (distributed route repair). The new
  // hop must be live and must not create a routing cycle.
  void UpdateNextHop(NodeId node, NodeId next_hop);

  // Swaps the detector error rates mid-run (sensing-error burst faults).
  // Takes effect from the next sensing decision; both must be in [0, 1].
  void SetSensingErrorRates(double false_alarm, double missed_detection);

  [[nodiscard]] bool IsFailed(NodeId node) const { return failed_[node] != 0; }

  // Current routing table entry (audit layers verify reachability/acyclicity
  // through these after churn).
  [[nodiscard]] NodeId next_hop(NodeId node) const { return next_hop_[node]; }
  [[nodiscard]] NodeId sink() const { return sink_; }

  // Exact SIR work tally (interference_field.h): pure function of the
  // (scenario, seed) pair, exported as perf.* counters by RunWithNextHops.
  [[nodiscard]] const spectrum::FieldWork& sir_work() const { return field_.work(); }

  [[nodiscard]] const MacConfig& config() const { return config_; }
  [[nodiscard]] geom::Vec2 position(NodeId node) const { return positions_[node]; }
  [[nodiscard]] std::int32_t node_count() const {
    return static_cast<std::int32_t>(positions_.size());
  }

  // Checkpoint protocol (sim/checkpoint.h, section "mac" plus the
  // interference field's "field"): all dynamic MAC state — agent queues and
  // contention timers, the active/fading transmission sets with their SIR
  // memos, both dynamic grids in exact iteration order, the four RNG
  // streams, and the not-yet-fired seed-snapshot one-shots. Construct the
  // fresh MAC from the same scenario first; LoadState must run between
  // Simulator::BeginRestore and FinishRestore (it re-claims saved sequence
  // numbers) and replaces Start*Collection on the restored run.
  void SaveState(sim::StateWriter& writer) const;
  void LoadState(sim::StateReader& reader);

 private:
  enum class Phase : std::uint8_t { kIdle, kContending, kTransmitting, kPostTxWait };

  // Rejects out-of-domain MacConfig values with a CRN_CHECK naming the field
  // and the offending value. Runs in the initializer list (config_) so it
  // fires before any member (path-loss model, sensing grid) consumes a bad
  // parameter with a less actionable message.
  static const MacConfig& ValidatedConfig(const MacConfig& config);

  // Cold per-agent state. The hot flags the sensing-notification storms
  // touch (phase / frozen / pu_busy / su_busy_count) live in the packed SoA
  // arrays below instead, so those loops never drag a whole Agent — queue,
  // timers, PU list — through the cache.
  struct Agent {
    std::deque<Packet> queue;
    // Contention state (valid in kContending).
    sim::TimeNs backoff_drawn = 0;  // t_i of the current attempt
    sim::TimeNs remaining = 0;
    sim::TimeNs resume_time = 0;
    sim::Timer expiry_timer;  // fires OnBackoffExpired(node)
    sim::Timer wait_timer;    // fires OnPostTxWaitDone(node)
    std::vector<pu::PuId> nearby_pus;  // PUs within the PCR (static)
    // Consecutive failed attempts while the next hop was failed; reset by
    // any success or route repair (dead_hop_retx_budget).
    std::int32_t dead_hop_failures = 0;
  };

  struct Transmission {
    NodeId transmitter = graph::kInvalidNode;
    NodeId receiver = graph::kInvalidNode;
    sim::TimeNs start = 0;
    sim::TimeNs end = 0;
    sim::Timer end_timer;  // fires FinishTransmission(tx, /*aborted=*/false)
    double signal_power = 0.0;  // received power at the receiver
    double min_sir = std::numeric_limits<double>::infinity();
    bool receiver_ok = true;    // false on half-duplex clash / capture loss
    bool announced = false;     // sensing notification delivered (latency)
    sim::Timer announce_timer;  // fires AnnounceTxStart after sensing_latency
    TxOutcome forced_outcome = TxOutcome::kSuccess;  // when !receiver_ok
    // Dirty-set reevaluation state (interference_field.h): the change epoch
    // at the last min-SIR floor update.
    std::int64_t last_eval_epoch = -1;
    // Append-incremental interference memo (kCached engine): the full
    // interference sum — PU terms plus the SU terms of active_tx_[0,
    // itf_count) — valid while no swap-and-pop reordered the list
    // (itf_shrink_epoch) and the active-PU set is unchanged (itf_pu_epoch).
    // New interferers only ever append, so extending the stored double by
    // the tail [itf_count, size) runs the exact operation sequence a
    // from-scratch re-sum would.
    double itf_sum = 0.0;
    std::int32_t itf_count = -1;
    std::int64_t itf_pu_epoch = -1;
    std::int64_t itf_shrink_epoch = -1;
    // Interference upper bound (kCached engine): exact at the last full
    // evaluation, then grown by each new interferer's gain while the PU set
    // is unchanged. Removals only widen the slack, so signal/itf_ub is a
    // SIR lower bound — when it clears min_sir (with an FP-safety margin)
    // the refloor provably cannot move the floor and is skipped.
    double itf_ub = 0.0;
    std::int64_t itf_ub_pu_epoch = -1;
  };

  // --- agent lifecycle -------------------------------------------------
  void SeedSnapshot(const std::vector<NodeId>& producers, std::int32_t snapshot);
  // One-shot entry points that also maintain the checkpoint bookkeeping
  // (pending_seeds_ / fading_seqs_) before running the original handler.
  void OnSeedSnapshot(std::int32_t snapshot);
  void OnCarrierFade(NodeId node);
  void ActivateIfIdle(NodeId node);           // node gained a packet
  void BeginContention(NodeId node);          // draw backoff, start sensing
  void LeaveContention(NodeId node);          // out of the sensing set
  void FreezeTimer(NodeId node);
  void ResumeTimer(NodeId node);
  void UpdateFreezeState(NodeId node);        // after busy flags changed
  void OnBackoffExpired(NodeId node);
  void OnPostTxWaitDone(NodeId node);
  // Ground truth: any PU inside the PCR currently transmitting.
  [[nodiscard]] bool ComputePuBusy(NodeId node) const;
  // What the detector reports: ground truth filtered through the
  // false-alarm / missed-detection probabilities.
  [[nodiscard]] bool SensePuBusy(NodeId node);
  [[nodiscard]] std::int32_t ComputeSuBusyCount(NodeId node) const;

  // --- transmissions ----------------------------------------------------
  void StartTransmission(NodeId node);
  void FinishTransmission(NodeId node, bool aborted);
  void AbortOnPuReturn(NodeId node);
  void AnnounceTxStart(NodeId transmitter);  // after sensing_latency
  void NotifySensorsTxStart(NodeId transmitter);
  void NotifySensorsTxEnd(NodeId transmitter);
  void ReevaluateOngoingSirs();
  bool TrySirBoundSkip(Transmission& tx);
  double EvaluateSir(Transmission& tx);

  // --- slot machinery ----------------------------------------------------
  void OnSlotBoundary();
  void AuditPrimaryReceptions();

  void DeliverOrEnqueue(NodeId receiver, const Packet& packet);
  // Central loss accounting: shrinks the expected totals (termination and
  // snapshot bookkeeping stay exact), counts the loss, and emits
  // kPacketDropped with `queue_left` as the event value. Callers follow up
  // with CheckTermination().
  void LosePacket(NodeId node, const Packet& packet, std::int64_t queue_left);
  void EmitTxEvent(const Transmission& tx, TxOutcome outcome, const Packet& packet);
  // `packet` may be null for non-packet kinds (frozen/resumed/defer/slot).
  void EmitLifecycle(LifecycleEvent::Kind kind, NodeId node, const Packet* packet,
                     std::int64_t value);
  void CheckTermination();

  sim::Simulator& simulator_;
  pu::PrimaryNetwork& primary_;
  std::vector<geom::Vec2> positions_;
  geom::Aabb area_;
  NodeId sink_;
  std::vector<NodeId> next_hop_;
  MacConfig config_;
  // Separate streams so the PU activity sequence is identical across
  // algorithms fed the same root rng (paired comparisons), regardless of
  // how many backoff draws each algorithm makes. The audit stream isolates
  // receiver-position draws the same way.
  Rng backoff_rng_;
  Rng activity_rng_;
  Rng audit_rng_;
  Rng sensing_rng_;
  spectrum::SirEvaluator sir_;
  spectrum::InterferenceField field_;

  std::vector<Agent> agents_;
  // Hot per-agent MAC state, split out of Agent into packed parallel arrays
  // (SoA). The sensing-notification storms — NotifySensorsTxStart/End and the
  // slot-boundary PU refresh — read and write only these four arrays, so a
  // cache line holds 64 nodes' flags instead of one node's whole Agent.
  std::vector<Phase> agent_phase_;
  std::vector<std::uint8_t> agent_frozen_;
  std::vector<std::uint8_t> agent_pu_busy_;
  std::vector<std::int32_t> agent_su_busy_;
  // Per-agent "PUs within my PCR" as bitmasks over PU ids, flattened
  // (pu_mask_words_ words per agent). ComputePuBusy intersects an agent's
  // row with PrimaryNetwork::activity_mask() — branch-free, no early-exit
  // mispredicts — instead of walking Agent::nearby_pus. Built only while
  // the PU population is small enough (kDensePuSenseWordsMax) that a row
  // stays a few cache lines; empty otherwise, falling back to the id scan.
  std::size_t pu_mask_words_ = 0;
  std::vector<std::uint64_t> agent_pu_mask_;
  std::vector<char> failed_;
  // Sensing set: nodes currently in kContending, as both an iterable list
  // (slot-boundary PU refresh) and a spatial grid (tx start/stop
  // notifications).
  std::vector<NodeId> contending_list_;
  std::vector<std::int32_t> contending_slot_;  // node -> index in list, -1 absent
  geom::DynamicSpatialGrid sensing_grid_;

  // Active transmissions, indexed by transmitter.
  std::vector<Transmission> active_tx_;
  std::vector<std::int32_t> active_tx_slot_;  // node -> index in active_tx_, -1
  // Announced transmissions that ended but whose end-of-carrier has not yet
  // been sensed (sensing_latency > 0). Counted as busy by new contenders so
  // the deferred decrement never underflows. fading_seqs_ holds each fade
  // event's sequence number, parallel to fading_tx_, so a checkpoint can
  // re-claim the pending fades.
  std::vector<NodeId> fading_tx_;
  std::vector<sim::EventId> fading_seqs_;
  // Sensable carriers (announced active + fading), as a spatial grid for
  // O(disk) ComputeSuBusyCount queries. A node can carry more than one
  // sensable emission at once (a fresh announced transmission while an old
  // one is still fading), so membership is by carrier_count_ > 0 and
  // queries sum the counts — integer sums, visit order irrelevant.
  geom::DynamicSpatialGrid carrier_grid_;
  std::vector<std::int32_t> carrier_count_;

  std::vector<sim::TimeNs> delivery_time_;
  std::vector<std::int64_t> expected_per_origin_;
  std::vector<std::int64_t> delivered_per_origin_;
  std::vector<std::int64_t> success_tx_count_;
  // Continuous-mode accounting (single-snapshot runs use index 0).
  std::vector<sim::TimeNs> snapshot_created_;
  std::vector<sim::TimeNs> snapshot_finish_;
  std::vector<std::int64_t> snapshot_remaining_;
  // Seed-snapshot bookkeeping for checkpointing: the producers list the
  // one-shots read and each not-yet-fired seeding event's sequence number.
  struct PendingSeed {
    std::int32_t snapshot = 0;
    sim::EventId seq = 0;
  };
  std::vector<NodeId> seed_producers_;
  std::vector<PendingSeed> pending_seeds_;
  std::vector<std::function<void(const TxEvent&)>> observers_;
  std::vector<std::function<void(NodeId, sim::TimeNs)>> contention_observers_;
  std::vector<std::function<void(NodeId, NodeId, sim::TimeNs, sim::TimeNs)>>
      tx_start_observers_;
  std::vector<std::function<void(const LifecycleEvent&)>> lifecycle_observers_;

  MacStats stats_;
  std::int64_t expected_packets_ = 0;
  std::int64_t slot_index_ = 0;
  sim::TimeNs slot_start_time_ = 0;  // start of the current slot
  bool running_ = false;
  // Drives OnSlotBoundary every τ; re-arms after the handler body so events
  // scheduled inside a slot keep their pre-refactor sequence numbers.
  sim::PeriodicTimer slot_timer_;
  // Mid-slot PU-protection audit (at most one pending: armed from the slot
  // boundary, fires at 0.4τ into the same slot).
  sim::Timer audit_timer_;
};

}  // namespace crn::mac

#endif  // CRN_MAC_COLLECTION_MAC_H_
