#include "mac/packet.h"

namespace crn::mac {

const char* ToString(TxOutcome outcome) {
  switch (outcome) {
    case TxOutcome::kSuccess:
      return "success";
    case TxOutcome::kAbortedPuReturn:
      return "aborted-pu-return";
    case TxOutcome::kSirFailure:
      return "sir-failure";
    case TxOutcome::kReceiverBusy:
      return "receiver-busy";
    case TxOutcome::kCaptureLost:
      return "capture-lost";
  }
  return "unknown";
}

}  // namespace crn::mac
