#include "mac/packet.h"

namespace crn::mac {

const char* ToString(TxOutcome outcome) {
  switch (outcome) {
    case TxOutcome::kSuccess:
      return "success";
    case TxOutcome::kAbortedPuReturn:
      return "aborted-pu-return";
    case TxOutcome::kSirFailure:
      return "sir-failure";
    case TxOutcome::kReceiverBusy:
      return "receiver-busy";
    case TxOutcome::kCaptureLost:
      return "capture-lost";
  }
  return "unknown";
}

const char* ToString(LifecycleEvent::Kind kind) {
  switch (kind) {
    case LifecycleEvent::Kind::kPacketCreated:
      return "packet-created";
    case LifecycleEvent::Kind::kPacketEnqueued:
      return "packet-enqueued";
    case LifecycleEvent::Kind::kPacketDelivered:
      return "packet-delivered";
    case LifecycleEvent::Kind::kPacketDropped:
      return "packet-dropped";
    case LifecycleEvent::Kind::kContentionStarted:
      return "contention-started";
    case LifecycleEvent::Kind::kFrozen:
      return "frozen";
    case LifecycleEvent::Kind::kResumed:
      return "resumed";
    case LifecycleEvent::Kind::kDeferred:
      return "deferred";
    case LifecycleEvent::Kind::kSlotBoundary:
      return "slot-boundary";
  }
  return "unknown";
}

}  // namespace crn::mac
