// Packet and transmission-event types shared by the MAC and the metric
// observers.
#ifndef CRN_MAC_PACKET_H_
#define CRN_MAC_PACKET_H_

#include <cstdint>

#include "graph/unit_disk_graph.h"
#include "sim/time.h"

namespace crn::mac {

using NodeId = graph::NodeId;

// A data-collection payload. Packets are never aggregated (§III: "without
// any data aggregation"), so identity is just the producing SU plus
// bookkeeping for metrics.
struct Packet {
  NodeId origin = graph::kInvalidNode;
  sim::TimeNs created = 0;
  std::int32_t hops = 0;
  std::int32_t snapshot = 0;  // which snapshot produced it (continuous mode)
};

// Terminal outcome of one SU transmission attempt.
enum class TxOutcome : std::uint8_t {
  kSuccess = 0,
  kAbortedPuReturn,  // spectrum handoff: a PU became active inside the PCR
  kSirFailure,       // physical-model SIR dropped below η_s during reception
  kReceiverBusy,     // receiver was transmitting (half-duplex violation)
  kCaptureLost,      // RS mode: receiver switched to a stronger signal
};
inline constexpr std::int32_t kTxOutcomeCount = 5;

const char* ToString(TxOutcome outcome);

// Observer record emitted when a transmission attempt terminates.
struct TxEvent {
  NodeId transmitter = graph::kInvalidNode;
  NodeId receiver = graph::kInvalidNode;
  sim::TimeNs start = 0;
  sim::TimeNs end = 0;
  TxOutcome outcome = TxOutcome::kSuccess;
  Packet packet;
  double min_sir = 0.0;  // +inf when unopposed
};

}  // namespace crn::mac

#endif  // CRN_MAC_PACKET_H_
