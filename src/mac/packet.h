// Packet and transmission-event types shared by the MAC and the metric
// observers.
#ifndef CRN_MAC_PACKET_H_
#define CRN_MAC_PACKET_H_

#include <cstdint>

#include "graph/unit_disk_graph.h"
#include "sim/time.h"

namespace crn::mac {

using NodeId = graph::NodeId;

// A data-collection payload. Packets are never aggregated (§III: "without
// any data aggregation"), so identity is just the producing SU plus
// bookkeeping for metrics.
struct Packet {
  NodeId origin = graph::kInvalidNode;
  sim::TimeNs created = 0;
  std::int32_t hops = 0;
  std::int32_t snapshot = 0;  // which snapshot produced it (continuous mode)
};

// Terminal outcome of one SU transmission attempt.
enum class TxOutcome : std::uint8_t {
  kSuccess = 0,
  kAbortedPuReturn,  // spectrum handoff: a PU became active inside the PCR
  kSirFailure,       // physical-model SIR dropped below η_s during reception
  kReceiverBusy,     // receiver was transmitting (half-duplex violation)
  kCaptureLost,      // RS mode: receiver switched to a stronger signal
};
inline constexpr std::int32_t kTxOutcomeCount = 5;

const char* ToString(TxOutcome outcome);

// Observer record emitted when a transmission attempt terminates.
struct TxEvent {
  NodeId transmitter = graph::kInvalidNode;
  NodeId receiver = graph::kInvalidNode;
  sim::TimeNs start = 0;
  sim::TimeNs end = 0;
  TxOutcome outcome = TxOutcome::kSuccess;
  Packet packet;
  double min_sir = 0.0;  // +inf when unopposed
};

// Observer record for the packet/contention lifecycle — the feed the
// observability layer (obs::PacketSpanTracer, obs::MacMetricsCollector)
// consumes. Together with TxEvent/tx-start observers it covers a packet's
// whole life: created → enqueued per hop → contention (backoff, freeze,
// resume, defer) → transmit → delivered or dropped.
struct LifecycleEvent {
  enum class Kind : std::uint8_t {
    kPacketCreated,      // seeded at its origin; value = queue depth after
    kPacketEnqueued,     // arrived at a relay; value = queue depth after
    kPacketDelivered,    // reached the base station; value = hop count
    kPacketDropped,      // lost with a failed node; value = queue depth left
    kContentionStarted,  // backoff drawn (Alg. 1 line 3); value = t_i in ns
    kFrozen,             // countdown paused (busy spectrum); value = remaining ns
    kResumed,            // countdown resumed (free spectrum); value = remaining ns
    kDeferred,           // slot-aware hold until the boundary; value = hold ns
    kSlotBoundary,       // PU re-sample; node = -1, value = active PU count
  };

  Kind kind = Kind::kSlotBoundary;
  NodeId node = graph::kInvalidNode;
  sim::TimeNs time = 0;
  // Valid for the four packet kinds and kContentionStarted (queue head).
  Packet packet;
  std::int64_t value = 0;  // kind-specific, see above
};

const char* ToString(LifecycleEvent::Kind kind);
inline constexpr std::int32_t kLifecycleKindCount = 9;

}  // namespace crn::mac

#endif  // CRN_MAC_PACKET_H_
