#include "mac/trace.h"

#include <cmath>

namespace crn::mac {

void TraceRecorder::Attach(CollectionMac& mac) {
  mac.AddTxObserver([this](const TxEvent& event) { Record(event); });
}

void TraceRecorder::WriteCsv(std::ostream& out) const {
  out << "start_ms,end_ms,transmitter,receiver,outcome,origin,snapshot,hops,min_sir\n";
  for (const TxEvent& event : events_) {
    out << sim::ToMilliseconds(event.start) << "," << sim::ToMilliseconds(event.end)
        << "," << event.transmitter << "," << event.receiver << ","
        << ToString(event.outcome) << "," << event.packet.origin << ","
        << event.packet.snapshot << "," << event.packet.hops << ",";
    if (std::isinf(event.min_sir)) {
      out << "inf";
    } else {
      out << event.min_sir;
    }
    out << "\n";
  }
}

TraceRecorder::Summary TraceRecorder::Summarize() const {
  Summary summary;
  summary.attempts = static_cast<std::int64_t>(events_.size());
  sim::TimeNs airtime = 0;
  sim::TimeNs useful = 0;
  bool first = true;
  for (const TxEvent& event : events_) {
    ++summary.per_outcome[static_cast<std::int32_t>(event.outcome)];
    const sim::TimeNs duration = event.end - event.start;
    airtime += duration;
    if (event.outcome == TxOutcome::kSuccess) useful += duration;
    if (first || event.start < summary.first_start) summary.first_start = event.start;
    if (event.end > summary.last_end) summary.last_end = event.end;
    first = false;
  }
  // airtime can legitimately be zero with a non-empty trace (every attempt
  // sharing one instant); the guard keeps the fraction 0 instead of NaN.
  if (airtime > 0) {
    summary.useful_airtime_fraction =
        static_cast<double>(useful) / static_cast<double>(airtime);
  }
  if (summary.attempts > 0) {
    for (std::int32_t outcome = 0; outcome < kTxOutcomeCount; ++outcome) {
      summary.per_outcome_fraction[outcome] =
          static_cast<double>(summary.per_outcome[outcome]) /
          static_cast<double>(summary.attempts);
    }
  }
  return summary;
}

}  // namespace crn::mac
