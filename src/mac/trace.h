// Transmission trace recording: attach to a CollectionMac before the run,
// then export every transmission attempt as CSV for offline analysis
// (gnuplot/pandas) or summarize it in-process. Examples and the CLI tool
// use this; the simulator itself never pays for it unless attached.
#ifndef CRN_MAC_TRACE_H_
#define CRN_MAC_TRACE_H_

#include <ostream>
#include <vector>

#include "mac/collection_mac.h"
#include "mac/packet.h"

namespace crn::mac {

class TraceRecorder {
 public:
  // Registers observers on `mac`; the recorder must outlive the run.
  void Attach(CollectionMac& mac);

  // Appends one attempt — what the attached observer calls. Public so
  // synthetic traces can be summarized without driving a simulation.
  void Record(const TxEvent& event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TxEvent>& events() const { return events_; }

  // One row per transmission attempt:
  // start_ms,end_ms,transmitter,receiver,outcome,origin,snapshot,hops,min_sir
  void WriteCsv(std::ostream& out) const;

  struct Summary {
    std::int64_t attempts = 0;
    std::int64_t per_outcome[kTxOutcomeCount] = {};
    // per_outcome / attempts; all zeros when the trace is empty.
    double per_outcome_fraction[kTxOutcomeCount] = {};
    // Valid whenever attempts > 0 — including the degenerate trace where
    // every attempt shares one timestamp (first_start == last_end).
    sim::TimeNs first_start = 0;
    sim::TimeNs last_end = 0;
    // Airtime efficiency: fraction of transmission time that carried a
    // packet which ultimately succeeded. 0 (never NaN) when the trace is
    // empty or every attempt has zero duration.
    double useful_airtime_fraction = 0.0;
  };
  [[nodiscard]] Summary Summarize() const;

 private:
  std::vector<TxEvent> events_;
};

}  // namespace crn::mac

#endif  // CRN_MAC_TRACE_H_
