#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <tuple>

namespace crn::obs {
namespace {

const char* PhaseString(ChromeTraceEvent::Phase phase) {
  switch (phase) {
    case ChromeTraceEvent::Phase::kComplete: return "X";
    case ChromeTraceEvent::Phase::kAsyncBegin: return "b";
    case ChromeTraceEvent::Phase::kAsyncEnd: return "e";
    case ChromeTraceEvent::Phase::kInstant: return "i";
    case ChromeTraceEvent::Phase::kMetadata: return "M";
  }
  return "i";
}

void WriteEscaped(const std::string& text, std::ostream& out) {
  out << '"';
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Fixed-point microseconds with nanosecond resolution: ts values originate
// either from TimeNs (exact thirds of decimal digits) or wall-clock seconds;
// three fractional digits round-trip both without scientific notation.
void WriteTs(double us, std::ostream& out) {
  const bool negative = us < 0;
  if (negative) us = -us;
  const auto nanos = static_cast<unsigned long long>(us * 1000.0 + 0.5);
  if (negative) out << '-';
  out << nanos / 1000 << '.';
  const unsigned long long frac = nanos % 1000;
  out << static_cast<char>('0' + frac / 100)
      << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
}

void WriteEvent(const ChromeTraceEvent& event, std::ostream& out) {
  out << "{\"name\":";
  WriteEscaped(event.name, out);
  out << ",\"cat\":";
  WriteEscaped(event.category.empty() ? "crn" : event.category, out);
  out << ",\"ph\":\"" << PhaseString(event.phase) << "\",\"ts\":";
  WriteTs(event.ts_us, out);
  if (event.phase == ChromeTraceEvent::Phase::kComplete) {
    out << ",\"dur\":";
    WriteTs(event.dur_us, out);
  }
  out << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid;
  if (event.phase == ChromeTraceEvent::Phase::kAsyncBegin ||
      event.phase == ChromeTraceEvent::Phase::kAsyncEnd) {
    out << ",\"id\":" << event.id;
  }
  if (event.phase == ChromeTraceEvent::Phase::kInstant) {
    out << ",\"s\":\"t\"";
  }
  if (!event.args.empty()) {
    out << ",\"args\":{";
    for (std::size_t i = 0; i < event.args.size(); ++i) {
      if (i > 0) out << ',';
      WriteEscaped(event.args[i].first, out);
      out << ':';
      WriteEscaped(event.args[i].second, out);
    }
    out << '}';
  }
  out << '}';
}

}  // namespace

void WriteChromeTrace(const std::vector<ChromeTraceEvent>& events,
                      std::ostream& out) {
  // Metadata is normalized, not just sorted first: merged streams (span
  // tracer + profiler + crn_trace rows) may each announce the same thread,
  // so exactly one metadata event survives per (pid, tid, name) — first
  // emission wins — emitted in (pid, tid, name) order with args sorted by
  // key. The rendered bytes are therefore identical however the producers'
  // event vectors were concatenated.
  std::map<std::tuple<std::int64_t, std::int64_t, std::string>,
           const ChromeTraceEvent*>
      metadata;
  std::vector<const ChromeTraceEvent*> order;
  order.reserve(events.size());
  for (const ChromeTraceEvent& event : events) {
    if (event.phase == ChromeTraceEvent::Phase::kMetadata) {
      metadata.emplace(std::make_tuple(event.pid, event.tid, event.name),
                       &event);
    } else {
      order.push_back(&event);
    }
  }
  // Stable sort keeps the producer's deterministic emit order among equal
  // timestamps.
  std::stable_sort(order.begin(), order.end(),
                   [](const ChromeTraceEvent* a, const ChromeTraceEvent* b) {
                     return a->ts_us < b->ts_us;
                   });
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::size_t written = 0;
  auto separator = [&] {
    if (written++ > 0) out << ',';
    out << "\n";
  };
  for (const auto& [key, event] : metadata) {
    ChromeTraceEvent normalized = *event;
    std::sort(normalized.args.begin(), normalized.args.end());
    separator();
    WriteEvent(normalized, out);
  }
  for (const ChromeTraceEvent* event : order) {
    separator();
    WriteEvent(*event, out);
  }
  out << "\n]}\n";
}

}  // namespace crn::obs
