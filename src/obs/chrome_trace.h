// Chrome trace-event JSON emission (the "JSON Array/Object Format" that
// chrome://tracing and Perfetto both load). Shared by the packet-lifecycle
// span tracer (sim-time spans) and the harness profiler (wall-clock spans):
// both reduce their records to ChromeTraceEvent values and hand them to
// WriteChromeTrace(), which sorts by timestamp and serializes.
//
// Timestamps are microseconds (the format's unit). Sim-time producers
// convert TimeNs exactly (ns / 1000.0 — every TimeNs fits a double);
// wall-clock producers convert seconds since their epoch.
#ifndef CRN_OBS_CHROME_TRACE_H_
#define CRN_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace crn::obs {

struct ChromeTraceEvent {
  // Subset of phases the repo emits: complete spans, async (flow) spans,
  // instants, and thread-name metadata.
  enum class Phase : std::uint8_t {
    kComplete,    // "X": ts + dur
    kAsyncBegin,  // "b": needs id
    kAsyncEnd,    // "e": needs id
    kInstant,     // "i"
    kMetadata,    // "M": thread_name (args: {"name": <first arg value>})
  };

  std::string name;
  std::string category;
  Phase phase = Phase::kInstant;
  double ts_us = 0.0;
  double dur_us = 0.0;  // kComplete only
  std::int64_t pid = 1;
  std::int64_t tid = 0;
  std::uint64_t id = 0;  // async span correlation id
  // Rendered verbatim as string args (insertion order).
  std::vector<std::pair<std::string, std::string>> args;
};

// Writes the object form: {"traceEvents": [...], "displayTimeUnit": "ms"}.
// Events are emitted in (ts, insertion order) — monotone timestamps, which
// the CI trace validator asserts. Metadata is normalized before the
// timeline: exactly one event per (pid, tid, name) — the first emission
// wins — ordered by (pid, tid, name) with args sorted by key, so merged
// event streams render byte-identically regardless of producer
// concatenation order.
void WriteChromeTrace(const std::vector<ChromeTraceEvent>& events,
                      std::ostream& out);

}  // namespace crn::obs

#endif  // CRN_OBS_CHROME_TRACE_H_
