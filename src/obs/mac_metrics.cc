#include "obs/mac_metrics.h"

#include "common/check.h"
#include "sim/checkpoint.h"

namespace crn::obs {

std::string NodeLabel(mac::NodeId node) {
  std::string digits = std::to_string(node);
  if (digits.size() < 4) digits.insert(0, 4 - digits.size(), '0');
  return digits;
}

MacMetricsCollector::MacMetricsCollector(MetricsRegistry& registry,
                                         std::int32_t series_stride)
    : registry_(registry), series_stride_(series_stride) {}

void MacMetricsCollector::Attach(mac::CollectionMac& mac) {
  packets_created_ = &registry_.GetCounter("mac.packets_created_total");
  packets_enqueued_ = &registry_.GetCounter("mac.packets_enqueued_total");
  packets_delivered_ = &registry_.GetCounter("mac.packets_delivered_total");
  packets_dropped_ = &registry_.GetCounter("mac.packets_dropped_total");
  backoff_restarts_ = &registry_.GetCounter("mac.backoff_restarts_total");
  slot_defers_ = &registry_.GetCounter("mac.slot_defers_total");
  slots_ = &registry_.GetCounter("mac.slots_total");
  pu_active_ = &registry_.GetGauge("pu.active_transmitters");
  pu_active_per_slot_ = &registry_.GetHistogram("pu.active_per_slot");
  backoff_drawn_ns_ = &registry_.GetHistogram("mac.backoff_drawn_ns");
  freeze_time_ns_ = &registry_.GetHistogram("mac.freeze_time_ns");
  delivery_delay_ns_ = &registry_.GetHistogram("mac.delivery_delay_ns");
  delivery_hops_ = &registry_.GetHistogram("mac.delivery_hops");
  for (std::int32_t i = 0; i < mac::kTxOutcomeCount; ++i) {
    tx_attempts_[static_cast<std::size_t>(i)] = &registry_.GetCounter(
        "mac.tx_attempts_total",
        {{"outcome", mac::ToString(static_cast<mac::TxOutcome>(i))}});
  }
  queue_depth_.resize(static_cast<std::size_t>(mac.node_count()));
  for (mac::NodeId v = 0; v < mac.node_count(); ++v) {
    queue_depth_[static_cast<std::size_t>(v)] =
        &registry_.GetGauge("mac.queue_depth", {{"node", NodeLabel(v)}});
  }
  freeze_begin_.assign(static_cast<std::size_t>(mac.node_count()), -1);

  mac.AddLifecycleObserver(
      [this](const mac::LifecycleEvent& event) { OnLifecycle(event); });
  mac.AddTxObserver([this](const mac::TxEvent& event) { OnTxEvent(event); });
}

void MacMetricsCollector::SaveState(sim::StateWriter& writer) const {
  writer.BeginSection("mac_metrics");
  writer.WriteI64(slots_seen_);
  writer.WriteU32(static_cast<std::uint32_t>(freeze_begin_.size()));
  for (const sim::TimeNs begin : freeze_begin_) writer.WriteI64(begin);
  writer.EndSection();
}

void MacMetricsCollector::LoadState(sim::StateReader& reader) {
  if (!reader.OpenSection("mac_metrics")) return;
  const std::int64_t slots_seen = reader.ReadI64();
  const std::uint32_t node_count = reader.ReadU32();
  if (reader.ok() && node_count != freeze_begin_.size()) {
    reader.EndSection();
    return;
  }
  std::vector<sim::TimeNs> freeze_begin(freeze_begin_.size(), -1);
  for (sim::TimeNs& begin : freeze_begin) begin = reader.ReadI64();
  reader.EndSection();
  if (!reader.ok()) return;
  slots_seen_ = slots_seen;
  freeze_begin_ = std::move(freeze_begin);
}

void MacMetricsCollector::OnLifecycle(const mac::LifecycleEvent& event) {
  using Kind = mac::LifecycleEvent::Kind;
  switch (event.kind) {
    case Kind::kPacketCreated:
      packets_created_->Add();
      queue_depth_[static_cast<std::size_t>(event.node)]->Set(event.value);
      break;
    case Kind::kPacketEnqueued:
      packets_enqueued_->Add();
      queue_depth_[static_cast<std::size_t>(event.node)]->Set(event.value);
      break;
    case Kind::kPacketDelivered:
      packets_delivered_->Add();
      delivery_delay_ns_->Record(event.time - event.packet.created);
      delivery_hops_->Record(event.packet.hops);
      break;
    case Kind::kPacketDropped:
      packets_dropped_->Add();
      queue_depth_[static_cast<std::size_t>(event.node)]->Set(event.value);
      break;
    case Kind::kContentionStarted:
      backoff_restarts_->Add();
      backoff_drawn_ns_->Record(event.value);
      freeze_begin_[static_cast<std::size_t>(event.node)] = event.time;
      break;
    case Kind::kFrozen:
      freeze_begin_[static_cast<std::size_t>(event.node)] = event.time;
      break;
    case Kind::kResumed: {
      sim::TimeNs& begin = freeze_begin_[static_cast<std::size_t>(event.node)];
      if (begin >= 0) {
        if (event.time > begin) freeze_time_ns_->Record(event.time - begin);
        begin = -1;
      }
      break;
    }
    case Kind::kDeferred:
      slot_defers_->Add();
      break;
    case Kind::kSlotBoundary:
      slots_->Add();
      ++slots_seen_;
      pu_active_->Set(event.value);
      pu_active_per_slot_->Record(event.value);
      if (series_stride_ > 0 && slots_seen_ % series_stride_ == 0) {
        registry_.RecordSeriesPoint(event.time);
      }
      break;
  }
}

void MacMetricsCollector::OnTxEvent(const mac::TxEvent& event) {
  tx_attempts_[static_cast<std::size_t>(event.outcome)]->Add();
}

}  // namespace crn::obs
