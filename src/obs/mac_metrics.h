// MacMetricsCollector — bridges the MAC's lifecycle/TxEvent feeds into a
// MetricsRegistry. Instrument handles are resolved once at Attach, so the
// per-event cost is a few integer bumps; with no collector attached the MAC
// pays nothing at all (collection_mac.h's empty-observer early-out).
//
// Registry naming scheme (DESIGN.md §"Observability"):
//   <subsystem>.<measure>[_<unit>][{label=value,...}]
// e.g. mac.freeze_time_ns, mac.tx_attempts_total{outcome=success},
// mac.queue_depth{node=0007}, pu.active_transmitters. Counter names end in
// _total, durations carry a _ns suffix, node labels are zero-padded to keep
// the registry's lexicographic order numeric.
#ifndef CRN_OBS_MAC_METRICS_H_
#define CRN_OBS_MAC_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mac/collection_mac.h"
#include "mac/packet.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace crn::obs {

// Zero-padded node label ("0007") so lexicographic key order matches
// numeric node order. Exposed for tests and exporters.
std::string NodeLabel(mac::NodeId node);

class MacMetricsCollector {
 public:
  // Snapshot the whole registry into its time series every `stride` slot
  // boundaries (0 disables the series; instruments still accumulate).
  explicit MacMetricsCollector(MetricsRegistry& registry,
                               std::int32_t series_stride = 64);

  // Resolves instrument handles and registers observers on `mac`; call
  // before the run. Both the registry and the collector must outlive it.
  void Attach(mac::CollectionMac& mac);

  // Checkpoint protocol (sim/checkpoint.h, section "mac_metrics"): the
  // collector's own cursor state — slot counter and open freeze windows.
  // Instrument values live in the registry's own section; load the registry
  // before Attach so the cached handles bind to the restored instruments.
  void SaveState(sim::StateWriter& writer) const;
  void LoadState(sim::StateReader& reader);

 private:
  void OnLifecycle(const mac::LifecycleEvent& event);
  void OnTxEvent(const mac::TxEvent& event);

  MetricsRegistry& registry_;
  std::int32_t series_stride_;
  std::int64_t slots_seen_ = 0;

  // Cached handles (valid for the registry's lifetime).
  Counter* packets_created_ = nullptr;
  Counter* packets_enqueued_ = nullptr;
  Counter* packets_delivered_ = nullptr;
  Counter* packets_dropped_ = nullptr;
  Counter* backoff_restarts_ = nullptr;
  Counter* slot_defers_ = nullptr;
  Counter* slots_ = nullptr;
  Gauge* pu_active_ = nullptr;
  Histogram* pu_active_per_slot_ = nullptr;
  Histogram* backoff_drawn_ns_ = nullptr;
  Histogram* freeze_time_ns_ = nullptr;
  Histogram* delivery_delay_ns_ = nullptr;
  Histogram* delivery_hops_ = nullptr;
  std::array<Counter*, mac::kTxOutcomeCount> tx_attempts_{};
  std::vector<Gauge*> queue_depth_;       // per node, resolved at Attach
  std::vector<sim::TimeNs> freeze_begin_;  // open freeze start, -1 if none
};

}  // namespace crn::obs

#endif  // CRN_OBS_MAC_METRICS_H_
