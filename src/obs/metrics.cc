#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "sim/audit.h"
#include "sim/checkpoint.h"

namespace crn::obs {

const char* ToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void Histogram::Record(std::int64_t value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const std::int32_t bucket =
      value <= 0 ? 0 : std::bit_width(static_cast<std::uint64_t>(value));
  ++buckets_[static_cast<std::size_t>(std::min(bucket, kBucketCount - 1))];
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::int32_t b = 0; b < kBucketCount; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
}

std::string RenderMetricKey(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key.push_back('{');
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key.push_back(',');
    key += sorted[i].first;
    key.push_back('=');
    key += sorted[i].second;
  }
  key.push_back('}');
  return key;
}

MetricsRegistry::Instrument& MetricsRegistry::GetOrCreate(const std::string& name,
                                                          const Labels& labels,
                                                          MetricKind kind) {
  const std::string key = RenderMetricKey(name, labels);
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    auto instrument = std::make_unique<Instrument>();
    instrument->kind = kind;
    it = instruments_.emplace(key, std::move(instrument)).first;
  }
  CRN_CHECK(it->second->kind == kind)
      << "metric '" << key << "' registered as " << ToString(it->second->kind)
      << ", requested as " << ToString(kind);
  return *it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const Labels& labels) {
  return GetOrCreate(name, labels, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  return GetOrCreate(name, labels, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  return GetOrCreate(name, labels, MetricKind::kHistogram).histogram;
}

Snapshot MetricsRegistry::Capture(sim::TimeNs at) const {
  Snapshot snapshot;
  snapshot.at = at;
  snapshot.entries.reserve(instruments_.size());
  for (const auto& [key, instrument] : instruments_) {
    SnapshotEntry entry;
    entry.key = key;
    entry.kind = instrument->kind;
    switch (instrument->kind) {
      case MetricKind::kCounter:
        entry.value = instrument->counter.value();
        break;
      case MetricKind::kGauge:
        entry.value = instrument->gauge.value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = instrument->histogram;
        entry.count = h.count();
        entry.sum = h.sum();
        entry.min = h.min();
        entry.max = h.max();
        for (std::int32_t b = 0; b < Histogram::kBucketCount; ++b) {
          const std::int64_t n = h.buckets()[static_cast<std::size_t>(b)];
          if (n != 0) entry.buckets.emplace_back(b, n);
        }
        break;
      }
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [key, theirs] : other.instruments_) {
    auto it = instruments_.find(key);
    if (it == instruments_.end()) {
      auto instrument = std::make_unique<Instrument>();
      instrument->kind = theirs->kind;
      it = instruments_.emplace(key, std::move(instrument)).first;
    }
    Instrument& mine = *it->second;
    CRN_CHECK(mine.kind == theirs->kind)
        << "metric '" << key << "' kind mismatch on merge";
    switch (theirs->kind) {
      case MetricKind::kCounter:
        mine.counter.Add(theirs->counter.value());
        break;
      case MetricKind::kGauge:
        mine.gauge.Set(theirs->gauge.value());
        break;
      case MetricKind::kHistogram:
        mine.histogram.MergeFrom(theirs->histogram);
        break;
    }
  }
  for (const Snapshot& point : other.series_) {
    series_.push_back(point);
  }
}

std::uint64_t SnapshotDigest(const Snapshot& snapshot) {
  sim::TraceDigest digest;
  digest.MixSigned(snapshot.at);
  for (const SnapshotEntry& entry : snapshot.entries) {
    digest.MixString(entry.key);
    digest.Mix(static_cast<std::uint64_t>(entry.kind));
    digest.MixSigned(entry.value);
    digest.MixSigned(entry.count);
    digest.MixSigned(entry.sum);
    digest.MixSigned(entry.min);
    digest.MixSigned(entry.max);
    for (const auto& [bucket, n] : entry.buckets) {
      digest.MixSigned(bucket);
      digest.MixSigned(n);
    }
  }
  return digest.value();
}

namespace {

void WriteSnapshot(sim::StateWriter& writer, const Snapshot& snapshot) {
  writer.WriteI64(snapshot.at);
  writer.WriteU32(static_cast<std::uint32_t>(snapshot.entries.size()));
  for (const SnapshotEntry& entry : snapshot.entries) {
    writer.WriteString(entry.key);
    writer.WriteU8(static_cast<std::uint8_t>(entry.kind));
    writer.WriteI64(entry.value);
    writer.WriteI64(entry.count);
    writer.WriteI64(entry.sum);
    writer.WriteI64(entry.min);
    writer.WriteI64(entry.max);
    writer.WriteU32(static_cast<std::uint32_t>(entry.buckets.size()));
    for (const auto& [bucket, n] : entry.buckets) {
      writer.WriteI32(bucket);
      writer.WriteI64(n);
    }
  }
}

Snapshot ReadSnapshot(sim::StateReader& reader) {
  Snapshot snapshot;
  snapshot.at = reader.ReadI64();
  const std::uint32_t entry_count = reader.ReadU32();
  for (std::uint32_t i = 0; i < entry_count && reader.ok(); ++i) {
    SnapshotEntry entry;
    entry.key = reader.ReadString();
    entry.kind = static_cast<MetricKind>(reader.ReadU8());
    entry.value = reader.ReadI64();
    entry.count = reader.ReadI64();
    entry.sum = reader.ReadI64();
    entry.min = reader.ReadI64();
    entry.max = reader.ReadI64();
    const std::uint32_t bucket_count = reader.ReadU32();
    for (std::uint32_t b = 0; b < bucket_count && reader.ok(); ++b) {
      const std::int32_t bucket = reader.ReadI32();
      const std::int64_t n = reader.ReadI64();
      entry.buckets.emplace_back(bucket, n);
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

}  // namespace

void MetricsRegistry::SaveState(sim::StateWriter& writer) const {
  writer.BeginSection("metrics");
  writer.WriteU32(static_cast<std::uint32_t>(instruments_.size()));
  for (const auto& [key, instrument] : instruments_) {
    writer.WriteString(key);
    writer.WriteU8(static_cast<std::uint8_t>(instrument->kind));
    switch (instrument->kind) {
      case MetricKind::kCounter:
        writer.WriteI64(instrument->counter.value());
        break;
      case MetricKind::kGauge:
        writer.WriteI64(instrument->gauge.value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = instrument->histogram;
        writer.WriteI64(h.count());
        writer.WriteI64(h.sum());
        writer.WriteI64(h.min());
        writer.WriteI64(h.max());
        for (const std::int64_t n : h.buckets()) writer.WriteI64(n);
        break;
      }
    }
  }
  writer.WriteU32(static_cast<std::uint32_t>(series_.size()));
  for (const Snapshot& point : series_) WriteSnapshot(writer, point);
  writer.EndSection();
}

void MetricsRegistry::LoadState(sim::StateReader& reader) {
  if (!reader.OpenSection("metrics")) return;
  const std::uint32_t instrument_count = reader.ReadU32();
  for (std::uint32_t i = 0; i < instrument_count && reader.ok(); ++i) {
    const std::string key = reader.ReadString();
    const auto kind = static_cast<MetricKind>(reader.ReadU8());
    if (!reader.ok()) break;
    auto it = instruments_.find(key);
    if (it == instruments_.end()) {
      auto instrument = std::make_unique<Instrument>();
      instrument->kind = kind;
      it = instruments_.emplace(key, std::move(instrument)).first;
    }
    Instrument& instrument = *it->second;
    CRN_CHECK(instrument.kind == kind)
        << "metric '" << key << "' kind mismatch on checkpoint restore";
    switch (kind) {
      case MetricKind::kCounter: {
        const std::int64_t value = reader.ReadI64();
        instrument.counter.Add(value - instrument.counter.value());
        break;
      }
      case MetricKind::kGauge:
        instrument.gauge.Set(reader.ReadI64());
        break;
      case MetricKind::kHistogram: {
        const std::int64_t count = reader.ReadI64();
        const std::int64_t sum = reader.ReadI64();
        const std::int64_t min = reader.ReadI64();
        const std::int64_t max = reader.ReadI64();
        std::array<std::int64_t, Histogram::kBucketCount> buckets{};
        for (std::int64_t& n : buckets) n = reader.ReadI64();
        instrument.histogram.RestoreState(count, sum, min, max, buckets);
        break;
      }
    }
  }
  const std::uint32_t series_count = reader.ReadU32();
  for (std::uint32_t i = 0; i < series_count && reader.ok(); ++i) {
    series_.push_back(ReadSnapshot(reader));
  }
  reader.EndSection();
}

std::uint64_t MetricsRegistry::Digest() const {
  // The final state digest deliberately ignores the series: two runs that
  // agree on every instrument but sampled at different strides still match.
  // Series determinism is pinned separately by the tests, via the series'
  // own SnapshotDigest values.
  return SnapshotDigest(Capture(0));
}

}  // namespace crn::obs
