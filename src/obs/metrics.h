// Deterministic sim-time metrics registry — the counters/gauges/histograms
// half of the observability layer (DESIGN.md §"Observability").
//
// Instruments are keyed by a stable name plus a canonical (sorted) label
// set, live for the registry's lifetime, and hand out cheap handles so hot
// paths pay one pointer bump per event — the map lookup happens once, at
// attach time. Nothing here reads a wall clock: snapshots are stamped with
// the simulation time the caller passes in, so a registry's contents (and
// its digest) are a pure function of the simulated run. Two design rules
// keep the parallel experiment engine bit-identical at any --jobs value:
//
//  * iteration is always in sorted-key order (std::map), never insertion
//    or hash order;
//  * cross-cell aggregation goes through Merge(), which the sweep engine
//    calls in the fixed (point, repetition) reduction order — counters and
//    histograms add, gauges take the merged-in value (last write wins in
//    reduction order).
#ifndef CRN_OBS_METRICS_H_
#define CRN_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace crn::sim {
class StateReader;
class StateWriter;
}  // namespace crn::sim

namespace crn::obs {

// Label set as passed by instrument users; canonicalized (sorted by label
// name) before it becomes part of the key.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* ToString(MetricKind kind);

// Monotone 64-bit event count.
class Counter {
 public:
  void Add(std::int64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

// Last-written 64-bit level (queue depth, active-PU count, ...).
class Gauge {
 public:
  void Set(std::int64_t value) { value_ = value; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

// Log-bucketed histogram over non-negative 64-bit samples: bucket 0 holds
// values <= 0, bucket b >= 1 holds values v with 2^(b-1) <= v < 2^b.
// Power-of-two buckets keep Record() branch-free (std::bit_width) and make
// merged histograms exact — no rebinning, ever.
class Histogram {
 public:
  static constexpr std::int32_t kBucketCount = 64;

  void Record(std::int64_t value);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  // min/max are 0 until the first sample.
  [[nodiscard]] std::int64_t min() const { return min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] const std::array<std::int64_t, kBucketCount>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  void MergeFrom(const Histogram& other);

  // Checkpoint restore: reload the exact saved state.
  void RestoreState(std::int64_t count, std::int64_t sum, std::int64_t min,
                    std::int64_t max,
                    const std::array<std::int64_t, kBucketCount>& buckets) {
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
    buckets_ = buckets;
  }

 private:
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::array<std::int64_t, kBucketCount> buckets_{};
};

// One instrument's state at snapshot time. Counter/gauge use `value`;
// histograms use the count/sum/min/max/buckets fields (only non-empty
// buckets are kept, as (bucket index, count) pairs in index order).
struct SnapshotEntry {
  std::string key;  // rendered "name{label=value,...}"
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::vector<std::pair<std::int32_t, std::int64_t>> buckets;
};

// The registry's full state at one simulation instant, entries in sorted
// key order.
struct Snapshot {
  sim::TimeNs at = 0;
  std::vector<SnapshotEntry> entries;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  // Find-or-create. Handles stay valid for the registry's lifetime; asking
  // for an existing key with a different kind is a programming error
  // (CRN_CHECK). Labels are canonicalized by sorting on label name.
  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  Histogram& GetHistogram(const std::string& name, const Labels& labels = {});

  [[nodiscard]] std::size_t instrument_count() const { return instruments_.size(); }

  // Current state of every instrument, stamped with `at` (a simulation
  // time, not a wall clock).
  [[nodiscard]] Snapshot Capture(sim::TimeNs at) const;

  // Appends Capture(at) to the in-registry time series — call at sim-time
  // boundaries (the MAC collector does, every snapshot-stride slots).
  void RecordSeriesPoint(sim::TimeNs at) { series_.push_back(Capture(at)); }
  [[nodiscard]] const std::vector<Snapshot>& series() const { return series_; }

  // Folds `other` into this registry: counters and histograms add, gauges
  // take the merged-in value, missing instruments are created. The caller
  // fixes the fold order (the sweep engine merges cells in (point, rep)
  // order); the per-key behaviour is order-independent for counters and
  // histograms. Series points are appended in merge order.
  void Merge(const MetricsRegistry& other);

  // Order-sensitive FNV-1a digest over sorted keys, kinds, and integer
  // values. No wall-clock quantity ever enters a registry, so equal digests
  // certify bit-identical metric state across runs or jobs values.
  [[nodiscard]] std::uint64_t Digest() const;

  // Checkpoint protocol (sim/checkpoint.h, section "metrics"): every
  // instrument (by rendered key) plus the recorded series. Load before
  // components attach their handles — find-or-create then binds them to the
  // restored instruments.
  void SaveState(sim::StateWriter& writer) const;
  void LoadState(sim::StateReader& reader);

 private:
  struct Instrument {
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Instrument& GetOrCreate(const std::string& name, const Labels& labels,
                          MetricKind kind);

  // Sorted by rendered key: deterministic iteration everywhere.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_;
  std::vector<Snapshot> series_;
};

// Canonical instrument key: name, then labels sorted by label name, as
// "name{a=x,b=y}" (bare "name" when unlabeled). Exposed for tests.
std::string RenderMetricKey(const std::string& name, const Labels& labels);

// FNV-1a digest of a snapshot (same scheme as MetricsRegistry::Digest).
std::uint64_t SnapshotDigest(const Snapshot& snapshot);

}  // namespace crn::obs

#endif  // CRN_OBS_METRICS_H_
