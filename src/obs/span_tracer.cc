#include "obs/span_tracer.h"

#include <string>

#include "sim/audit.h"

namespace crn::obs {
namespace {

double ToMicros(sim::TimeNs t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

void PacketSpanTracer::Attach(mac::CollectionMac& mac) {
  freeze_begin_.assign(static_cast<std::size_t>(mac.node_count()), -1);
  mac.AddLifecycleObserver(
      [this](const mac::LifecycleEvent& event) { OnLifecycle(event); });
  mac.AddTxObserver([this](const mac::TxEvent& event) { OnTxEvent(event); });
}

void PacketSpanTracer::OnLifecycle(const mac::LifecycleEvent& event) {
  using Kind = mac::LifecycleEvent::Kind;
  switch (event.kind) {
    case Kind::kPacketCreated: {
      PacketSpan& span =
          packets_[PacketId(event.packet.origin, event.packet.snapshot)];
      span.origin = event.packet.origin;
      span.snapshot = event.packet.snapshot;
      span.created = event.time;
      break;
    }
    case Kind::kPacketEnqueued: {
      PacketSpan& span =
          packets_[PacketId(event.packet.origin, event.packet.snapshot)];
      span.enqueues.push_back(Hop{event.node, event.time, event.value});
      break;
    }
    case Kind::kPacketDelivered: {
      PacketSpan& span =
          packets_[PacketId(event.packet.origin, event.packet.snapshot)];
      span.delivered = event.time;
      span.hops = event.packet.hops;
      break;
    }
    case Kind::kPacketDropped: {
      PacketSpan& span =
          packets_[PacketId(event.packet.origin, event.packet.snapshot)];
      span.dropped = event.time;
      break;
    }
    case Kind::kContentionStarted:
    case Kind::kFrozen: {
      // A fresh contention starts frozen (BeginContention's busy snapshot);
      // a same-instant resume closes it as a zero-length interval, dropped
      // below.
      const auto node = static_cast<std::size_t>(event.node);
      if (node < freeze_begin_.size()) freeze_begin_[node] = event.time;
      break;
    }
    case Kind::kResumed: {
      const auto node = static_cast<std::size_t>(event.node);
      if (node < freeze_begin_.size() && freeze_begin_[node] >= 0) {
        if (event.time > freeze_begin_[node]) {
          freezes_.push_back(FreezeSpan{event.node, freeze_begin_[node], event.time});
        }
        freeze_begin_[node] = -1;
      }
      break;
    }
    case Kind::kDeferred:
    case Kind::kSlotBoundary:
      break;
  }
}

void PacketSpanTracer::OnTxEvent(const mac::TxEvent& event) {
  Attempt attempt;
  attempt.transmitter = event.transmitter;
  attempt.receiver = event.receiver;
  attempt.start = event.start;
  attempt.end = event.end;
  attempt.outcome = event.outcome;
  attempt.packet_origin = event.packet.origin;
  attempt.packet_snapshot = event.packet.snapshot;
  attempts_.push_back(attempt);
}

std::uint64_t PacketSpanTracer::Digest() const {
  sim::TraceDigest digest;
  for (const auto& [id, span] : packets_) {
    digest.Mix(id);
    digest.MixSigned(span.created);
    digest.MixSigned(span.delivered);
    digest.MixSigned(span.dropped);
    digest.MixSigned(span.hops);
    for (const Hop& hop : span.enqueues) {
      digest.MixSigned(hop.node);
      digest.MixSigned(hop.at);
      digest.MixSigned(hop.queue_depth);
    }
  }
  for (const Attempt& attempt : attempts_) {
    digest.MixSigned(attempt.transmitter);
    digest.MixSigned(attempt.receiver);
    digest.MixSigned(attempt.start);
    digest.MixSigned(attempt.end);
    digest.Mix(static_cast<std::uint64_t>(attempt.outcome));
    digest.MixSigned(attempt.packet_origin);
    digest.MixSigned(attempt.packet_snapshot);
  }
  for (const FreezeSpan& freeze : freezes_) {
    digest.MixSigned(freeze.node);
    digest.MixSigned(freeze.begin);
    digest.MixSigned(freeze.end);
  }
  return digest.value();
}

std::vector<ChromeTraceEvent> PacketSpanTracer::ToChromeEvents() const {
  std::vector<ChromeTraceEvent> events;
  events.reserve(2 * packets_.size() + attempts_.size() + freezes_.size());
  for (const auto& [id, span] : packets_) {
    ChromeTraceEvent begin;
    begin.name = "packet";
    begin.category = "packet";
    begin.phase = ChromeTraceEvent::Phase::kAsyncBegin;
    begin.ts_us = ToMicros(span.created);
    begin.tid = span.origin;
    begin.id = id;
    begin.args.emplace_back("origin", std::to_string(span.origin));
    begin.args.emplace_back("snapshot", std::to_string(span.snapshot));
    events.push_back(std::move(begin));
    for (const Hop& hop : span.enqueues) {
      ChromeTraceEvent enq;
      enq.name = "enqueue";
      enq.category = "packet";
      enq.phase = ChromeTraceEvent::Phase::kInstant;
      enq.ts_us = ToMicros(hop.at);
      enq.tid = hop.node;
      enq.args.emplace_back("origin", std::to_string(span.origin));
      enq.args.emplace_back("queue_depth", std::to_string(hop.queue_depth));
      events.push_back(std::move(enq));
    }
    if (span.terminal()) {
      ChromeTraceEvent end;
      end.name = "packet";
      end.category = "packet";
      end.phase = ChromeTraceEvent::Phase::kAsyncEnd;
      end.ts_us = ToMicros(span.delivered >= 0 ? span.delivered : span.dropped);
      end.tid = span.origin;
      end.id = id;
      end.args.emplace_back("outcome",
                            span.delivered >= 0 ? "delivered" : "dropped");
      if (span.delivered >= 0) {
        end.args.emplace_back("hops", std::to_string(span.hops));
        end.args.emplace_back("delay_ns", std::to_string(span.delivery_delay()));
      }
      events.push_back(std::move(end));
    }
  }
  for (const Attempt& attempt : attempts_) {
    ChromeTraceEvent tx;
    tx.name = std::string("tx:") + mac::ToString(attempt.outcome);
    tx.category = "tx";
    tx.phase = ChromeTraceEvent::Phase::kComplete;
    tx.ts_us = ToMicros(attempt.start);
    tx.dur_us = ToMicros(attempt.end - attempt.start);
    tx.tid = attempt.transmitter;
    tx.args.emplace_back("receiver", std::to_string(attempt.receiver));
    tx.args.emplace_back("origin", std::to_string(attempt.packet_origin));
    tx.args.emplace_back("snapshot", std::to_string(attempt.packet_snapshot));
    events.push_back(std::move(tx));
  }
  for (const FreezeSpan& freeze : freezes_) {
    ChromeTraceEvent span;
    span.name = "freeze";
    span.category = "mac";
    span.phase = ChromeTraceEvent::Phase::kComplete;
    span.ts_us = ToMicros(freeze.begin);
    span.dur_us = ToMicros(freeze.end - freeze.begin);
    span.tid = freeze.node;
    events.push_back(std::move(span));
  }
  return events;
}

void PacketSpanTracer::WriteChromeTrace(std::ostream& out) const {
  obs::WriteChromeTrace(ToChromeEvents(), out);
}

}  // namespace crn::obs
