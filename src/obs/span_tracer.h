// Packet-lifecycle span tracer — the second half of the observability
// layer. Attached to a CollectionMac it records, in simulation time, one
// span per packet (created → delivered/dropped, with every relay enqueue in
// between), one span per transmission attempt, and one span per
// carrier-sense freeze interval. The in-memory records are exact (TimeNs),
// so a packet's delivery delay can be reconstructed to the nanosecond; the
// Chrome trace-event export (chrome_trace.h) renders the same records for
// chrome://tracing / Perfetto.
//
// Determinism: records are stored in emission order (packets keyed by a
// sorted map), timestamps are simulation time only, and Digest() folds
// everything through the same FNV-1a scheme as the invariant auditor — two
// runs of one seed produce identical digests.
#ifndef CRN_OBS_SPAN_TRACER_H_
#define CRN_OBS_SPAN_TRACER_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "mac/collection_mac.h"
#include "mac/packet.h"
#include "obs/chrome_trace.h"
#include "sim/time.h"

namespace crn::obs {

class PacketSpanTracer {
 public:
  // One enqueue instant at a relay on the packet's route.
  struct Hop {
    mac::NodeId node = -1;
    sim::TimeNs at = 0;
    std::int64_t queue_depth = 0;
  };

  // Full lifecycle of one packet, identified by (origin, snapshot).
  struct PacketSpan {
    mac::NodeId origin = -1;
    std::int32_t snapshot = 0;
    sim::TimeNs created = -1;
    sim::TimeNs delivered = -1;  // -1 unless it reached the base station
    sim::TimeNs dropped = -1;    // -1 unless lost with a failed node
    std::int32_t hops = 0;       // hop count at delivery
    std::vector<Hop> enqueues;   // relay arrivals, in order

    [[nodiscard]] bool terminal() const { return delivered >= 0 || dropped >= 0; }
    // Exact end-to-end delay in ns; -1 while in flight or dropped.
    [[nodiscard]] sim::TimeNs delivery_delay() const {
      return delivered >= 0 ? delivered - created : -1;
    }
  };

  // One transmission attempt (any outcome), as seen by the TxEvent feed.
  struct Attempt {
    mac::NodeId transmitter = -1;
    mac::NodeId receiver = -1;
    sim::TimeNs start = 0;
    sim::TimeNs end = 0;
    mac::TxOutcome outcome = mac::TxOutcome::kSuccess;
    mac::NodeId packet_origin = -1;
    std::int32_t packet_snapshot = 0;
  };

  // One closed carrier-sense freeze interval (backoff countdown paused).
  struct FreezeSpan {
    mac::NodeId node = -1;
    sim::TimeNs begin = 0;
    sim::TimeNs end = 0;
  };

  // Registers lifecycle + tx observers on `mac`; call before the run. The
  // tracer must outlive the run.
  void Attach(mac::CollectionMac& mac);

  // Stable per-packet correlation id: (snapshot << 32) | origin.
  [[nodiscard]] static std::uint64_t PacketId(mac::NodeId origin,
                                              std::int32_t snapshot) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(snapshot)) << 32) |
           static_cast<std::uint32_t>(origin);
  }

  [[nodiscard]] const std::map<std::uint64_t, PacketSpan>& packets() const {
    return packets_;
  }
  [[nodiscard]] const std::vector<Attempt>& attempts() const { return attempts_; }
  [[nodiscard]] const std::vector<FreezeSpan>& freezes() const { return freezes_; }

  // Order-sensitive FNV-1a digest over every recorded span. Simulation-time
  // only — equal digests certify identical trace streams.
  [[nodiscard]] std::uint64_t Digest() const;

  // Chrome trace-event rendering: an async b/e span per packet (pid 1, id =
  // PacketId), an "X" slice per attempt and per freeze on the transmitter's
  // tid, an instant per relay enqueue. ts is sim-time microseconds.
  [[nodiscard]] std::vector<ChromeTraceEvent> ToChromeEvents() const;
  void WriteChromeTrace(std::ostream& out) const;

 private:
  void OnLifecycle(const mac::LifecycleEvent& event);
  void OnTxEvent(const mac::TxEvent& event);

  std::map<std::uint64_t, PacketSpan> packets_;
  std::vector<Attempt> attempts_;
  std::vector<FreezeSpan> freezes_;
  // Per-node open freeze interval start (-1 = not frozen); grown lazily.
  std::vector<sim::TimeNs> freeze_begin_;
};

}  // namespace crn::obs

#endif  // CRN_OBS_SPAN_TRACER_H_
