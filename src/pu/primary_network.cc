#include "pu/primary_network.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "geom/deployment.h"

namespace crn::pu {

namespace {

constexpr double kGridCellOverRadius = 1.0;

}  // namespace

const char* ToString(ActivityProcess process) {
  switch (process) {
    case ActivityProcess::kIid:
      return "iid";
    case ActivityProcess::kMarkov:
      return "markov";
  }
  return "unknown";
}

PrimaryNetwork::PrimaryNetwork(const PrimaryConfig& config, geom::Aabb area,
                               Rng deployment_rng)
    : PrimaryNetwork(config, area,
                     geom::UniformDeployment(config.count, area, deployment_rng)) {}

PrimaryNetwork::PrimaryNetwork(const PrimaryConfig& config, geom::Aabb area,
                               std::vector<geom::Vec2> positions)
    : config_(config),
      positions_(std::move(positions)),
      grid_(positions_, area, std::max(config.radius * kGridCellOverRadius, 1.0)) {
  CRN_CHECK(config.power > 0.0) << "P_p=" << config.power;
  CRN_CHECK(config.radius > 0.0) << "R=" << config.radius;
  CRN_CHECK(config.activity >= 0.0 && config.activity <= 1.0)
      << "p_t=" << config.activity;
  CRN_CHECK(config.slot > 0) << "slot=" << config.slot
                             << " ns: the PU slot duration must be positive";
  if (config.process == ActivityProcess::kMarkov && config.activity < 1.0) {
    CRN_CHECK(config.mean_burst_slots >= 1.0)
        << "mean_burst_slots=" << config.mean_burst_slots;
    CRN_CHECK(config.activity / (config.mean_burst_slots * (1.0 - config.activity)) <=
              1.0)
        << "activity " << config.activity << " unreachable with mean burst "
        << config.mean_burst_slots << " (idle->active probability exceeds 1)";
  }
  CRN_CHECK(static_cast<std::int32_t>(positions_.size()) == config.count)
      << positions_.size() << " positions for N=" << config.count;
  active_.assign(positions_.size(), 0);
  receiver_.assign(positions_.size(), geom::Vec2{});
}

void PrimaryNetwork::ResampleSlot(Rng& rng) {
  active_list_.clear();
  switch (config_.process) {
    case ActivityProcess::kIid:
      for (PuId id = 0; id < count(); ++id) {
        active_[id] = rng.Bernoulli(config_.activity) ? 1 : 0;
      }
      break;
    case ActivityProcess::kMarkov: {
      // Two-state chain with stationary probability p_t of being active:
      //   P(active -> idle)  = 1/L                    (mean burst L slots)
      //   P(idle  -> active) = p_t / (L (1 - p_t))    (stationarity)
      // The first sampled slot draws from the stationary distribution.
      // Degenerate duty cycles pin the chain to one state.
      const double p_off =
          config_.activity >= 1.0 ? 0.0 : 1.0 / config_.mean_burst_slots;
      const double p_on =
          config_.activity >= 1.0
              ? 1.0
              : config_.activity * p_off / (1.0 - config_.activity);
      for (PuId id = 0; id < count(); ++id) {
        bool is_active;
        if (slots_sampled_ == 0) {
          is_active = rng.Bernoulli(config_.activity);
        } else if (active_[id]) {
          is_active = !rng.Bernoulli(p_off);
        } else {
          is_active = rng.Bernoulli(p_on);
        }
        active_[id] = is_active ? 1 : 0;
      }
      break;
    }
  }
  for (PuId id = 0; id < count(); ++id) {
    if (active_[id]) {
      active_list_.push_back(id);
      ++activations_total_;
    }
  }
  ++slots_sampled_;
}

void PrimaryNetwork::OverrideActivity(double activity) {
  CRN_CHECK(activity >= 0.0 && activity <= 1.0) << "p_t=" << activity;
  if (config_.process == ActivityProcess::kMarkov && activity < 1.0) {
    CRN_CHECK(activity / (config_.mean_burst_slots * (1.0 - activity)) <= 1.0)
        << "activity " << activity << " unreachable with mean burst "
        << config_.mean_burst_slots << " (idle->active probability exceeds 1)";
  }
  config_.activity = activity;
}

void PrimaryNetwork::SampleReceiverPositions(Rng& rng) {
  for (PuId id : active_list_) {
    // Uniform receiver in the disk of radius R (sqrt trick).
    const double rho = config_.radius * std::sqrt(rng.UniformDouble());
    const double theta = rng.UniformDouble(0.0, 2.0 * M_PI);
    receiver_[id] = {positions_[id].x + rho * std::cos(theta),
                     positions_[id].y + rho * std::sin(theta)};
  }
}

}  // namespace crn::pu
