#include "pu/primary_network.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "geom/deployment.h"
#include "sim/checkpoint.h"

namespace crn::pu {

namespace {

constexpr double kGridCellOverRadius = 1.0;

}  // namespace

const char* ToString(ActivityProcess process) {
  switch (process) {
    case ActivityProcess::kIid:
      return "iid";
    case ActivityProcess::kMarkov:
      return "markov";
  }
  return "unknown";
}

PrimaryNetwork::PrimaryNetwork(const PrimaryConfig& config, geom::Aabb area,
                               Rng deployment_rng)
    : PrimaryNetwork(config, area,
                     geom::UniformDeployment(config.count, area, deployment_rng)) {}

PrimaryNetwork::PrimaryNetwork(const PrimaryConfig& config, geom::Aabb area,
                               std::vector<geom::Vec2> positions)
    : config_(config),
      positions_(std::move(positions)),
      grid_(positions_, area, std::max(config.radius * kGridCellOverRadius, 1.0)) {
  CRN_CHECK(config.power > 0.0) << "P_p=" << config.power;
  CRN_CHECK(config.radius > 0.0) << "R=" << config.radius;
  CRN_CHECK(config.activity >= 0.0 && config.activity <= 1.0)
      << "p_t=" << config.activity;
  CRN_CHECK(config.slot > 0) << "slot=" << config.slot
                             << " ns: the PU slot duration must be positive";
  if (config.process == ActivityProcess::kMarkov && config.activity < 1.0) {
    CRN_CHECK(config.mean_burst_slots >= 1.0)
        << "mean_burst_slots=" << config.mean_burst_slots;
    CRN_CHECK(config.activity / (config.mean_burst_slots * (1.0 - config.activity)) <=
              1.0)
        << "activity " << config.activity << " unreachable with mean burst "
        << config.mean_burst_slots << " (idle->active probability exceeds 1)";
  }
  CRN_CHECK(static_cast<std::int32_t>(positions_.size()) == config.count)
      << positions_.size() << " positions for N=" << config.count;
  active_.assign(positions_.size(), 0);
  activity_mask_.assign((positions_.size() + 63) / 64, 0);
  receiver_.assign(positions_.size(), geom::Vec2{});
}

void PrimaryNetwork::ResampleSlot(Rng& rng) {
  switch (config_.process) {
    case ActivityProcess::kIid: {
      // This loop is the single hottest site in long runs (N draws per slot
      // boundary, every slot), so the Bernoulli is hoisted into an integer
      // threshold compare: (x >> 11)·2⁻⁵³ < p  ⟺  (x >> 11) < ⌈p·2⁵³⌉.
      // Both double operations are exact (53-bit integer, power-of-two
      // scale), so the draws are bit-identical to Rng::Bernoulli.
      const double p = config_.activity;
      if (p <= 0.0 || p >= 1.0) {
        // Rng::Bernoulli consumes no draw at the extremes; match that.
        const char pinned = p >= 1.0 ? 1 : 0;
        for (PuId id = 0; id < count(); ++id) active_[id] = pinned;
        PackMaskFromBytes();
        break;
      }
      const std::uint64_t threshold = Rng::BernoulliThreshold(p);
      const PuId n = count();
      // Draw from a local copy of the generator: active_ stores are char
      // writes, which the compiler must otherwise assume may alias the
      // caller's Rng state, forcing a state reload/spill on every draw.
      // The draw loop packs activity into the bitmask in the same pass; the
      // active list is rebuilt afterwards by ctz-scanning the mask words. A
      // per-PU branchy (or even branchless store+bump) append costs ~2.5×
      // as much as the whole draw loop at p_t ≈ 0.3 — the data-dependent
      // branch mispredicts, and the index chain serializes the loop.
      Rng local = rng;
      char* out = active_.data();
      std::uint64_t* mask = activity_mask_.data();
      std::uint64_t word = 0;
      for (PuId id = 0; id < n; ++id) {
        const std::uint64_t is_active = (local() >> 11) < threshold ? 1 : 0;
        out[id] = static_cast<char>(is_active);
        word |= is_active << (id & 63);
        if ((id & 63) == 63) {
          mask[id >> 6] = word;
          word = 0;
        }
      }
      if ((n & 63) != 0) mask[n >> 6] = word;
      rng = local;
      break;
    }
    case ActivityProcess::kMarkov: {
      // Two-state chain with stationary probability p_t of being active:
      //   P(active -> idle)  = 1/L                    (mean burst L slots)
      //   P(idle  -> active) = p_t / (L (1 - p_t))    (stationarity)
      // The first sampled slot draws from the stationary distribution.
      // Degenerate duty cycles pin the chain to one state.
      const double p_off =
          config_.activity >= 1.0 ? 0.0 : 1.0 / config_.mean_burst_slots;
      const double p_on =
          config_.activity >= 1.0
              ? 1.0
              : config_.activity * p_off / (1.0 - config_.activity);
      for (PuId id = 0; id < count(); ++id) {
        bool is_active;
        if (slots_sampled_ == 0) {
          is_active = rng.Bernoulli(config_.activity);
        } else if (active_[id]) {
          is_active = !rng.Bernoulli(p_off);
        } else {
          is_active = rng.Bernoulli(p_on);
        }
        active_[id] = is_active ? 1 : 0;
      }
      PackMaskFromBytes();
      break;
    }
  }
  RebuildActiveList();
  activations_total_ += static_cast<std::int64_t>(active_list_.size());
  ++slots_sampled_;
}

void PrimaryNetwork::PackMaskFromBytes() {
  std::uint64_t* mask = activity_mask_.data();
  const char* bytes = active_.data();
  const PuId n = count();
  std::uint64_t word = 0;
  for (PuId id = 0; id < n; ++id) {
    word |= static_cast<std::uint64_t>(bytes[id] != 0) << (id & 63);
    if ((id & 63) == 63) {
      mask[id >> 6] = word;
      word = 0;
    }
  }
  if ((n & 63) != 0) mask[n >> 6] = word;
}

void PrimaryNetwork::RebuildActiveList() {
  active_list_.resize(active_.size());
  PuId* list = active_list_.data();
  const std::uint64_t* mask = activity_mask_.data();
  std::size_t actives = 0;
  for (std::size_t w = 0; w < activity_mask_.size(); ++w) {
    std::uint64_t bits = mask[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      list[actives++] = static_cast<PuId>(w * 64 + static_cast<std::size_t>(bit));
      bits &= bits - 1;
    }
  }
  active_list_.resize(actives);
}

void PrimaryNetwork::OverrideActivity(double activity) {
  CRN_CHECK(activity >= 0.0 && activity <= 1.0) << "p_t=" << activity;
  if (config_.process == ActivityProcess::kMarkov && activity < 1.0) {
    CRN_CHECK(activity / (config_.mean_burst_slots * (1.0 - activity)) <= 1.0)
        << "activity " << activity << " unreachable with mean burst "
        << config_.mean_burst_slots << " (idle->active probability exceeds 1)";
  }
  config_.activity = activity;
}

void PrimaryNetwork::SaveState(sim::StateWriter& writer) const {
  writer.BeginSection("pu");
  // config_.activity may carry a fault-injection override at checkpoint
  // time; the restored network must resample with the same target.
  writer.WriteDouble(config_.activity);
  writer.WriteI64(slots_sampled_);
  writer.WriteI64(activations_total_);
  writer.WriteU32(static_cast<std::uint32_t>(active_.size()));
  for (const char byte : active_) {
    writer.WriteU8(static_cast<std::uint8_t>(byte));
  }
  // Receiver draws are lazy (audit-only), but the audit stride may span the
  // checkpoint boundary, so the positions must ride along bit-exactly.
  for (const geom::Vec2& receiver : receiver_) {
    writer.WriteDouble(receiver.x);
    writer.WriteDouble(receiver.y);
  }
  writer.EndSection();
}

void PrimaryNetwork::LoadState(sim::StateReader& reader) {
  if (!reader.OpenSection("pu")) return;
  const double activity = reader.ReadDouble();
  const std::int64_t slots_sampled = reader.ReadI64();
  const std::int64_t activations_total = reader.ReadI64();
  const std::uint32_t pu_count = reader.ReadU32();
  if (reader.ok() && pu_count != active_.size()) {
    // Consume nothing further; EndSection will flag the layout mismatch.
    reader.EndSection();
    return;
  }
  std::vector<char> active(active_.size(), 0);
  for (char& byte : active) byte = static_cast<char>(reader.ReadU8());
  std::vector<geom::Vec2> receivers(receiver_.size());
  for (geom::Vec2& receiver : receivers) {
    receiver.x = reader.ReadDouble();
    receiver.y = reader.ReadDouble();
  }
  reader.EndSection();
  if (!reader.ok()) return;
  config_.activity = activity;
  slots_sampled_ = slots_sampled;
  activations_total_ = activations_total;
  active_ = std::move(active);
  receiver_ = std::move(receivers);
  PackMaskFromBytes();
  RebuildActiveList();
}

void PrimaryNetwork::SampleReceiverPositions(Rng& rng) {
  for (PuId id : active_list_) {
    // Uniform receiver in the disk of radius R (sqrt trick).
    const double rho = config_.radius * std::sqrt(rng.UniformDouble());
    const double theta = rng.UniformDouble(0.0, 2.0 * M_PI);
    receiver_[id] = {positions_[id].x + rho * std::cos(theta),
                     positions_[id].y + rho * std::sin(theta)};
  }
}

}  // namespace crn::pu
