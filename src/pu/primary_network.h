// Primary network model (§III): N i.i.d. primary users (PUs) over the
// deployment area; time is slotted with duration τ, and in each slot every
// PU independently transmits with probability p_t (the paper's generalized
// probabilistic activity model). An active PU occupies the spectrum for the
// whole slot and transmits toward a receiver drawn uniformly within its
// transmission radius R (Lemma 2 only assumes D(S_i, S_i') ≤ R).
//
// The class owns PU positions and per-slot activity state; the MAC layer
// queries activity for carrier sensing and the audit layer uses the
// receiver positions to verify SUs never cause unacceptable interference.
#ifndef CRN_PU_PRIMARY_NETWORK_H_
#define CRN_PU_PRIMARY_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/spatial_grid.h"
#include "geom/vec2.h"
#include "sim/time.h"

namespace crn::sim {
class StateReader;
class StateWriter;
}  // namespace crn::sim

namespace crn::pu {

using PuId = std::int32_t;

// Per-slot activity process. The paper uses "a generalized probabilistic
// model ... given a specific probabilistic distribution ... p_t can be
// determined accordingly" (§III); we provide the two standard instances:
//
//   kIid    — every slot is an independent Bernoulli(p_t) draw (the model
//             the paper's evaluation uses);
//   kMarkov — a two-state (Gilbert) on/off chain with the *same* stationary
//             activity p_t but tunable burstiness: active periods last
//             Geometric(mean_burst_slots) slots. Burstier primaries leave
//             longer free runs and longer busy runs at identical duty
//             cycle, reshaping waiting-time tails (ablation A6).
enum class ActivityProcess : std::uint8_t {
  kIid,
  kMarkov,
};

const char* ToString(ActivityProcess process);

struct PrimaryConfig {
  std::int32_t count = 400;       // N
  double power = 10.0;            // P_p
  double radius = 10.0;           // R, max transmission radius
  double activity = 0.3;          // p_t, stationary transmit probability
  sim::TimeNs slot = sim::kMillisecond;  // τ
  ActivityProcess process = ActivityProcess::kIid;
  double mean_burst_slots = 4.0;  // kMarkov: mean active-run length
};

class PrimaryNetwork {
 public:
  // Deploys `config.count` PUs uniformly in `area` using `rng`.
  PrimaryNetwork(const PrimaryConfig& config, geom::Aabb area, Rng deployment_rng);

  // Uses caller-supplied positions (tests, crafted scenarios).
  PrimaryNetwork(const PrimaryConfig& config, geom::Aabb area,
                 std::vector<geom::Vec2> positions);

  [[nodiscard]] const PrimaryConfig& config() const { return config_; }
  [[nodiscard]] std::int32_t count() const {
    return static_cast<std::int32_t>(positions_.size());
  }
  [[nodiscard]] geom::Vec2 position(PuId id) const { return positions_[id]; }
  [[nodiscard]] const std::vector<geom::Vec2>& positions() const { return positions_; }

  // Static spatial index over PU positions; SUs use it once to precompute
  // "PUs within my carrier-sensing range".
  [[nodiscard]] const geom::SpatialGrid& grid() const { return grid_; }

  // Re-samples every PU's activity for the slot starting now. Activity
  // randomness comes from `rng` (a dedicated stream owned by the caller).
  void ResampleSlot(Rng& rng);

  // Fault-injection hook (PU activity perturbation): replaces the per-slot
  // activity p_t from the next ResampleSlot() on. Pass the original value
  // back to end the perturbation window. Markov burst lengths are kept; only
  // the stationary target moves.
  void OverrideActivity(double activity);

  [[nodiscard]] bool IsActive(PuId id) const { return active_[id] != 0; }
  [[nodiscard]] const std::vector<PuId>& active_transmitters() const {
    return active_list_;
  }
  // Per-slot activity as a bitmask (bit id = IsActive(id)), ⌈N/64⌉ words.
  // Carrier-sensing hot loops intersect it with precomputed "PUs near me"
  // masks instead of walking id lists (collection_mac.cc).
  [[nodiscard]] const std::vector<std::uint64_t>& activity_mask() const {
    return activity_mask_;
  }

  // Draws a fresh receiver (uniform in the disk of radius R, per Lemma 2's
  // D(S_i, S_i') ≤ R) for every currently active PU. Lazy by design: only
  // the PU-protection audit needs receivers, so per-slot runs skip the trig
  // entirely; call once per audited slot with a dedicated stream.
  void SampleReceiverPositions(Rng& rng);
  // Receiver of the PU's current transmission; valid only while IsActive(id)
  // and after SampleReceiverPositions() for this slot.
  [[nodiscard]] geom::Vec2 receiver_position(PuId id) const { return receiver_[id]; }

  // Cumulative statistics (for tests validating the Bernoulli process).
  [[nodiscard]] std::int64_t slots_sampled() const { return slots_sampled_; }
  [[nodiscard]] std::int64_t activations_total() const { return activations_total_; }

  // Checkpoint protocol (sim/checkpoint.h, section "pu"): per-slot activity
  // state, receiver draws, cumulative counters, and the (possibly
  // fault-overridden) activity target. Positions and the spatial grid are
  // not serialized — the restore path reconstructs the network from the
  // scenario first, then loads this state on top.
  void SaveState(sim::StateWriter& writer) const;
  void LoadState(sim::StateReader& reader);

 private:
  // Mirrors active_ bytes into activity_mask_ (slow paths; the iid fast
  // path packs the mask during the draw loop itself).
  void PackMaskFromBytes();
  // Rebuilds active_list_ by ctz-scanning activity_mask_.
  void RebuildActiveList();

  PrimaryConfig config_;
  std::vector<geom::Vec2> positions_;
  geom::SpatialGrid grid_;
  std::vector<char> active_;
  std::vector<std::uint64_t> activity_mask_;  // bit-per-PU mirror of active_
  std::vector<PuId> active_list_;
  std::vector<geom::Vec2> receiver_;
  std::int64_t slots_sampled_ = 0;
  std::int64_t activations_total_ = 0;
};

}  // namespace crn::pu

#endif  // CRN_PU_PRIMARY_NETWORK_H_
