#include "routing/coolest.h"

#include <cmath>
#include <limits>
#include <queue>
#include <tuple>

#include "common/check.h"

namespace crn::routing {

const char* ToString(TemperatureMetric metric) {
  switch (metric) {
    case TemperatureMetric::kAccumulated:
      return "accumulated";
    case TemperatureMetric::kHighest:
      return "highest";
    case TemperatureMetric::kMixed:
      return "mixed";
  }
  return "unknown";
}

std::vector<double> NodeTemperatures(const std::vector<geom::Vec2>& positions,
                                     const pu::PrimaryNetwork& primary,
                                     double sensing_range) {
  CRN_CHECK(sensing_range > 0.0);
  std::vector<double> temperatures;
  temperatures.reserve(positions.size());
  const double silence = 1.0 - primary.config().activity;
  for (const geom::Vec2& pos : positions) {
    std::int32_t nearby = 0;
    primary.grid().ForEachInDisk(pos, sensing_range, [&](pu::PuId) { ++nearby; });
    temperatures.push_back(1.0 - std::pow(silence, static_cast<double>(nearby)));
  }
  return temperatures;
}

namespace {

// Composite Dijkstra label; which fields dominate depends on the metric.
struct Label {
  double accumulated = std::numeric_limits<double>::infinity();
  double peak = std::numeric_limits<double>::infinity();
  std::int32_t hops = std::numeric_limits<std::int32_t>::max();

  [[nodiscard]] std::tuple<double, std::int32_t, double> AccKey() const {
    return {accumulated, hops, peak};
  }
  [[nodiscard]] std::tuple<double, std::int32_t, double> PeakKey() const {
    return {peak, hops, accumulated};
  }
  [[nodiscard]] std::tuple<double, double, std::int32_t> MixedKey() const {
    return {peak, accumulated, hops};
  }
};

bool Better(const Label& a, const Label& b, TemperatureMetric metric) {
  switch (metric) {
    case TemperatureMetric::kAccumulated:
      return a.AccKey() < b.AccKey();
    case TemperatureMetric::kHighest:
      return a.PeakKey() < b.PeakKey();
    case TemperatureMetric::kMixed:
      return a.MixedKey() < b.MixedKey();
  }
  return false;
}

}  // namespace

std::vector<graph::NodeId> CoolestNextHops(const graph::UnitDiskGraph& graph,
                                           const std::vector<double>& temperatures,
                                           graph::NodeId sink,
                                           TemperatureMetric metric) {
  const auto n = graph.node_count();
  CRN_CHECK(sink >= 0 && sink < n);
  CRN_CHECK(static_cast<std::int32_t>(temperatures.size()) == n);

  std::vector<Label> best(n);
  std::vector<graph::NodeId> next_hop(n, graph::kInvalidNode);
  std::vector<char> settled(n, 0);
  best[sink] = Label{0.0, 0.0, 0};
  next_hop[sink] = sink;

  // Lazy Dijkstra keyed by the metric; (label-key, node id) makes pops
  // deterministic.
  struct QueueEntry {
    Label label;
    graph::NodeId node;
  };
  auto worse = [metric](const QueueEntry& a, const QueueEntry& b) {
    if (Better(b.label, a.label, metric)) return true;
    if (Better(a.label, b.label, metric)) return false;
    return a.node > b.node;
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, decltype(worse)> queue(worse);
  queue.push({best[sink], sink});

  while (!queue.empty()) {
    const QueueEntry entry = queue.top();
    queue.pop();
    const graph::NodeId u = entry.node;
    if (settled[u]) continue;
    settled[u] = 1;
    for (graph::NodeId v : graph.Neighbors(u)) {
      if (settled[v]) continue;
      // Entering v from the sink side: v's own temperature joins the path.
      Label candidate;
      candidate.accumulated = best[u].accumulated + temperatures[v];
      candidate.peak = std::max(best[u].peak, temperatures[v]);
      candidate.hops = best[u].hops + 1;
      if (Better(candidate, best[v], metric)) {
        best[v] = candidate;
        next_hop[v] = u;
        queue.push({candidate, v});
      }
    }
  }

  for (graph::NodeId v = 0; v < n; ++v) {
    CRN_CHECK(next_hop[v] != graph::kInvalidNode)
        << "node " << v << " cannot reach the base station";
  }
  return next_hop;
}

PathSummary SummarizePath(const std::vector<graph::NodeId>& next_hop,
                          const std::vector<double>& temperatures,
                          graph::NodeId source, graph::NodeId sink) {
  PathSummary summary;
  graph::NodeId cursor = source;
  const auto n = static_cast<std::int32_t>(next_hop.size());
  while (cursor != sink) {
    CRN_CHECK(summary.hops < n) << "next-hop cycle from " << source;
    summary.accumulated += temperatures[cursor];
    summary.highest = std::max(summary.highest, temperatures[cursor]);
    cursor = next_hop[cursor];
    ++summary.hops;
  }
  return summary;
}

}  // namespace crn::routing
