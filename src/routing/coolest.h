// "Coolest path" routing — the paper's baseline, from Huang, Lu, Li & Fang,
// "Coolest Path: Spectrum Mobility Aware Routing Metrics in Cognitive Ad
// Hoc Networks" (ICDCS 2011), the paper's reference [17], modified for
// convergecast ("necessary modification" per §V): every SU routes its
// packets to the base station along the path whose *spectrum temperature*
// is best.
//
// The spectrum temperature of a node is the long-run probability that the
// licensed spectrum around it is occupied by PUs — hotter nodes see fewer
// transmission opportunities. [17] proposes three path metrics, all of
// which we implement:
//   * kAccumulated — minimize the sum of node temperatures along the path
//     (the "lowest total spectrum utilization" path);
//   * kHighest     — minimize the hottest node on the path (bottleneck);
//   * kMixed       — lexicographic: bottleneck first, accumulated second
//     (the "most balanced" path).
//
// Packets then traverse the resulting next-hop tree using the *same* MAC as
// ADDC, so measured differences are attributable to routing structure —
// exactly the comparison the paper's §V makes.
#ifndef CRN_ROUTING_COOLEST_H_
#define CRN_ROUTING_COOLEST_H_

#include <vector>

#include "graph/unit_disk_graph.h"
#include "pu/primary_network.h"

namespace crn::routing {

enum class TemperatureMetric {
  kAccumulated,
  kHighest,
  kMixed,
};

const char* ToString(TemperatureMetric metric);

// Per-node spectrum temperature: 1 − (1 − p_t)^{#PUs within sensing_range},
// i.e. the per-slot probability that at least one PU inside the node's
// carrier-sensing disk is active. This is the model-exact value an SU would
// measure by long-run sensing (kept analytic for determinism).
std::vector<double> NodeTemperatures(const std::vector<geom::Vec2>& positions,
                                     const pu::PrimaryNetwork& primary,
                                     double sensing_range);

// Computes a next-hop-toward-sink table over `graph` optimizing `metric`.
// Ties are broken by hop count and then node id, making the result
// deterministic. next_hop[sink] = sink.
std::vector<graph::NodeId> CoolestNextHops(const graph::UnitDiskGraph& graph,
                                           const std::vector<double>& temperatures,
                                           graph::NodeId sink,
                                           TemperatureMetric metric);

// Path cost diagnostics used by tests and the ablation bench.
struct PathSummary {
  double accumulated = 0.0;
  double highest = 0.0;
  std::int32_t hops = 0;
};

// Follows next_hop from `source` to `sink`, aggregating temperatures of
// every node from `source` (inclusive) up to the sink (exclusive) — the
// same cost model CoolestNextHops optimizes.
PathSummary SummarizePath(const std::vector<graph::NodeId>& next_hop,
                          const std::vector<double>& temperatures,
                          graph::NodeId source, graph::NodeId sink);

}  // namespace crn::routing

#endif  // CRN_ROUTING_COOLEST_H_
