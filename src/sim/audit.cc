#include "sim/audit.h"

#include "common/check.h"

namespace crn::sim {

void EventTimeAuditor::Attach(Simulator& simulator) {
  CRN_CHECK(!attached_) << "EventTimeAuditor attached twice";
  attached_ = true;
  last_time_ = simulator.now();
  simulator.AddEventObserver([this](TimeNs now) {
    ++events_observed_;
    if (now < last_time_) ++violations_;
    last_time_ = now;
  });
}

}  // namespace crn::sim
