// Simulator-level audit primitives.
//
// TraceDigest fingerprints an event stream with 64-bit FNV-1a so two runs
// can be compared for bit-identical behaviour without storing either trace
// (the determinism guarantee every figure-regeneration bench relies on).
// EventTimeAuditor re-verifies, from outside the scheduler, that the
// simulation clock never runs backwards — the property every other layer
// silently assumes. Both are passive observers: attaching them never
// perturbs the event order or any RNG stream.
#ifndef CRN_SIM_AUDIT_H_
#define CRN_SIM_AUDIT_H_

#include <cstdint>
#include <string_view>

#include "sim/simulator.h"
#include "sim/time.h"

namespace crn::sim {

// Order-sensitive 64-bit FNV-1a accumulator. Mixing the same sequence of
// values always yields the same digest; any insertion, deletion, or
// reordering changes it with overwhelming probability.
class TraceDigest {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001B3ULL;

  // Mixes the 8 bytes of `value`, least-significant first.
  void Mix(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (value >> (8 * byte)) & 0xFFU;
      hash_ *= kPrime;
    }
  }

  void MixSigned(std::int64_t value) { Mix(static_cast<std::uint64_t>(value)); }

  // Mixes the exact bit pattern, so ±0, infinities, and NaN payloads all
  // participate — a digest match certifies bit-identical doubles.
  void MixDouble(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }

  void MixString(std::string_view text) {
    for (char c : text) {
      hash_ ^= static_cast<std::uint8_t>(c);
      hash_ *= kPrime;
    }
    Mix(text.size());  // length delimiter: "ab"+"c" != "a"+"bc"
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

  // Checkpoint restore: resumes accumulation from a saved hash value. The
  // digest is a pure fold over the mixed sequence, so restoring the
  // accumulator and replaying the suffix equals digesting the whole run.
  void RestoreValue(std::uint64_t hash) { hash_ = hash; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

// Watches a Simulator and counts events whose timestamp precedes the one
// before it. The scheduler's heap ordering makes violations impossible by
// construction; this auditor keeps that claim machine-checked when the
// scheduler itself is refactored.
class EventTimeAuditor {
 public:
  // Registers on `simulator`; the auditor must outlive every run it
  // observes. Attach at most once.
  void Attach(Simulator& simulator);

  [[nodiscard]] std::uint64_t events_observed() const { return events_observed_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] TimeNs last_time() const { return last_time_; }
  [[nodiscard]] bool ok() const { return violations_ == 0; }

  // Checkpoint restore: reloads the counters saved at checkpoint time
  // (Attach() must still be called on the fresh simulator).
  void RestoreState(std::uint64_t events_observed, std::uint64_t violations,
                    TimeNs last_time) {
    events_observed_ = events_observed;
    violations_ = violations;
    last_time_ = last_time;
  }

 private:
  bool attached_ = false;
  std::uint64_t events_observed_ = 0;
  std::uint64_t violations_ = 0;
  TimeNs last_time_ = 0;
};

}  // namespace crn::sim

#endif  // CRN_SIM_AUDIT_H_
