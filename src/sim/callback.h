// Move-only callable for simulator events, with a small-buffer optimization.
//
// The event core fires tens of millions of callbacks per run; std::function
// heap-allocates its captured state for anything beyond a pointer or two and
// is copyable (forcing capture types to be copyable too). EventFn stores
// captures up to kInlineSize bytes inline in the event slot, falls back to
// one heap allocation for larger states (e.g. a seeded snapshot closure
// capturing a producer vector), and is move-only so ownership of the capture
// is never duplicated.
#ifndef CRN_SIM_CALLBACK_H_
#define CRN_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace crn::sim {

class EventFn {
 public:
  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): callable wrapper, by design.
  EventFn(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() {
    CRN_CHECK(ops_ != nullptr) << "invoking an empty EventFn";
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // Captures up to this many bytes live inline in the event slot.
  static constexpr std::size_t kInlineSize = 48;

 private:
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's state from src's and destroys src's.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static Fn* Inline(void* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }
  template <typename Fn>
  static Fn** Boxed(void* storage) {
    return std::launder(reinterpret_cast<Fn**>(storage));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* storage) { (*Inline<Fn>(storage))(); },
      [](void* src, void* dst) {
        ::new (dst) Fn(std::move(*Inline<Fn>(src)));
        Inline<Fn>(src)->~Fn();
      },
      [](void* storage) { Inline<Fn>(storage)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* storage) { (**Boxed<Fn>(storage))(); },
      [](void* src, void* dst) { ::new (dst) Fn*(*Boxed<Fn>(src)); },
      [](void* storage) { delete *Boxed<Fn>(storage); },
  };

  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
};

}  // namespace crn::sim

#endif  // CRN_SIM_CALLBACK_H_
