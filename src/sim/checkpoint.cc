#include "sim/checkpoint.h"

#include <array>
#include <bit>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace crn::sim {

namespace {

// Envelope size guards: an adversarial blob must not be able to drive a
// huge allocation before its lengths are checked against the bytes that
// actually exist.
constexpr std::size_t kMaxSectionName = 4096;
constexpr std::uint32_t kMaxStringLength = 1U << 30U;

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1U) ^ ((crc & 1U) != 0 ? 0xEDB88320U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

void AppendU32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8U * i)) & 0xFFU));
  }
}

void AppendU64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8U * i)) & 0xFFU));
  }
}

std::string HexU32(std::uint32_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> kTable = MakeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const char byte : data) {
    crc = (crc >> 8U) ^ kTable[(crc ^ static_cast<unsigned char>(byte)) & 0xFFU];
  }
  return crc ^ 0xFFFFFFFFU;
}

void StateWriter::BeginSection(std::string_view name) {
  CRN_CHECK(!in_section_) << "BeginSection(" << name
                          << ") with section '" << current_name_ << "' open";
  CRN_CHECK(!name.empty() && name.size() <= kMaxSectionName);
  current_name_ = std::string(name);
  current_payload_.clear();
  in_section_ = true;
}

void StateWriter::EndSection() {
  CRN_CHECK(in_section_) << "EndSection without BeginSection";
  sections_.push_back(
      Section{std::move(current_name_), std::move(current_payload_)});
  current_name_.clear();
  current_payload_.clear();
  in_section_ = false;
}

void StateWriter::WriteU8(std::uint8_t value) {
  CRN_CHECK(in_section_) << "write outside a section";
  current_payload_.push_back(static_cast<char>(value));
}

void StateWriter::WriteU16(std::uint16_t value) {
  WriteU8(static_cast<std::uint8_t>(value & 0xFFU));
  WriteU8(static_cast<std::uint8_t>((value >> 8U) & 0xFFU));
}

void StateWriter::WriteU32(std::uint32_t value) {
  CRN_CHECK(in_section_) << "write outside a section";
  AppendU32(current_payload_, value);
}

void StateWriter::WriteU64(std::uint64_t value) {
  CRN_CHECK(in_section_) << "write outside a section";
  AppendU64(current_payload_, value);
}

void StateWriter::WriteDouble(double value) {
  WriteU64(std::bit_cast<std::uint64_t>(value));
}

void StateWriter::WriteString(std::string_view value) {
  CRN_CHECK(value.size() < kMaxStringLength);
  WriteU32(static_cast<std::uint32_t>(value.size()));
  CRN_CHECK(in_section_) << "write outside a section";
  current_payload_.append(value.data(), value.size());
}

std::string StateWriter::Finish() {
  CRN_CHECK(!in_section_) << "Finish with section '" << current_name_
                          << "' open";
  std::string blob;
  blob.append(kCheckpointMagic, sizeof kCheckpointMagic);
  AppendU32(blob, kCheckpointVersion);
  AppendU32(blob, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& section : sections_) {
    AppendU32(blob, static_cast<std::uint32_t>(section.name.size()));
    blob.append(section.name);
    AppendU64(blob, section.payload.size());
    AppendU32(blob, Crc32(section.payload));
    blob.append(section.payload);
  }
  sections_.clear();
  return blob;
}

StateReader::StateReader(std::string_view blob) {
  std::size_t pos = 0;
  auto take = [&](std::size_t n) -> const char* {
    if (blob.size() - pos < n) return nullptr;
    const char* p = blob.data() + pos;
    pos += n;
    return p;
  };
  auto read_u32 = [&](std::uint32_t* value) {
    const char* p = take(4);
    if (p == nullptr) return false;
    std::uint32_t out = 0;
    for (int i = 3; i >= 0; --i) {
      out = (out << 8U) | static_cast<unsigned char>(p[i]);
    }
    *value = out;
    return true;
  };
  auto read_u64 = [&](std::uint64_t* value) {
    const char* p = take(8);
    if (p == nullptr) return false;
    std::uint64_t out = 0;
    for (int i = 7; i >= 0; --i) {
      out = (out << 8U) | static_cast<unsigned char>(p[i]);
    }
    *value = out;
    return true;
  };

  const char* magic = take(sizeof kCheckpointMagic);
  if (magic == nullptr ||
      std::memcmp(magic, kCheckpointMagic, sizeof kCheckpointMagic) != 0) {
    Fail(
        "not a CRNCKPT1 checkpoint (bad magic): the file is corrupt, "
        "truncated, or not a checkpoint at all");
    return;
  }
  std::uint32_t version = 0;
  if (!read_u32(&version)) {
    Fail("truncated checkpoint: envelope ends inside the version field");
    return;
  }
  if (version > kCheckpointVersion) {
    std::ostringstream message;
    message << "checkpoint format version " << version
            << " is newer than this binary supports (version "
            << kCheckpointVersion
            << ") — re-create the checkpoint or use a newer build";
    Fail(message.str());
    return;
  }
  std::uint32_t section_count = 0;
  if (!read_u32(&section_count)) {
    Fail("truncated checkpoint: envelope ends inside the section count");
    return;
  }
  for (std::uint32_t i = 0; i < section_count; ++i) {
    std::uint32_t name_length = 0;
    if (!read_u32(&name_length) || name_length == 0 ||
        name_length > kMaxSectionName) {
      Fail("truncated or corrupt checkpoint: bad section name length");
      return;
    }
    const char* name = take(name_length);
    if (name == nullptr) {
      Fail("truncated checkpoint: envelope ends inside a section name");
      return;
    }
    std::uint64_t payload_length = 0;
    std::uint32_t stored_crc = 0;
    if (!read_u64(&payload_length) || !read_u32(&stored_crc)) {
      std::ostringstream message;
      message << "truncated checkpoint: section '"
              << std::string_view(name, name_length)
              << "' ends inside its header";
      Fail(message.str());
      return;
    }
    const char* payload = take(payload_length);
    if (payload == nullptr) {
      std::ostringstream message;
      message << "truncated checkpoint: section '"
              << std::string_view(name, name_length) << "' declares "
              << payload_length << " payload bytes but the file ends early";
      Fail(message.str());
      return;
    }
    const std::string_view payload_view(payload, payload_length);
    const std::uint32_t computed_crc = Crc32(payload_view);
    if (computed_crc != stored_crc) {
      std::ostringstream message;
      message << "corrupt checkpoint: section '"
              << std::string_view(name, name_length) << "' CRC mismatch (stored "
              << HexU32(stored_crc) << ", computed " << HexU32(computed_crc)
              << ")";
      Fail(message.str());
      return;
    }
    sections_.push_back(
        Section{std::string_view(name, name_length), payload_view});
  }
  if (pos != blob.size()) {
    Fail("corrupt checkpoint: trailing bytes after the last section");
  }
}

bool StateReader::HasSection(std::string_view name) const {
  for (const Section& section : sections_) {
    if (section.name == name) return true;
  }
  return false;
}

bool StateReader::OpenSection(std::string_view name) {
  if (!ok()) return false;
  CRN_CHECK(open_ < 0) << "OpenSection(" << name << ") with '"
                       << sections_[static_cast<std::size_t>(open_)].name
                       << "' open";
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].name == name) {
      open_ = static_cast<std::int32_t>(i);
      cursor_ = 0;
      return true;
    }
  }
  std::ostringstream message;
  message << "checkpoint has no section '" << name
          << "' — it was written by an incompatible run configuration";
  Fail(message.str());
  return false;
}

void StateReader::EndSection() {
  if (open_ < 0) return;
  const Section& section = sections_[static_cast<std::size_t>(open_)];
  if (ok() && cursor_ != section.payload.size()) {
    std::ostringstream message;
    message << "checkpoint section '" << section.name << "' has "
            << (section.payload.size() - cursor_)
            << " unread bytes — save/load layout mismatch";
    Fail(message.str());
  }
  open_ = -1;
  cursor_ = 0;
}

void StateReader::Fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
}

const char* StateReader::Take(std::size_t n) {
  if (!ok()) return nullptr;
  if (open_ < 0) {
    Fail("checkpoint read outside any section");
    return nullptr;
  }
  const Section& section = sections_[static_cast<std::size_t>(open_)];
  if (section.payload.size() - cursor_ < n) {
    std::ostringstream message;
    message << "checkpoint section '" << section.name
            << "' is shorter than expected (read past its end)";
    Fail(message.str());
    return nullptr;
  }
  const char* p = section.payload.data() + cursor_;
  cursor_ += n;
  return p;
}

std::uint8_t StateReader::ReadU8() {
  const char* p = Take(1);
  return p == nullptr ? 0 : static_cast<std::uint8_t>(*p);
}

std::uint16_t StateReader::ReadU16() {
  const char* p = Take(2);
  if (p == nullptr) return 0;
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[1])) << 8U));
}

std::uint32_t StateReader::ReadU32() {
  const char* p = Take(4);
  if (p == nullptr) return 0;
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) {
    out = (out << 8U) | static_cast<unsigned char>(p[i]);
  }
  return out;
}

std::uint64_t StateReader::ReadU64() {
  const char* p = Take(8);
  if (p == nullptr) return 0;
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) {
    out = (out << 8U) | static_cast<unsigned char>(p[i]);
  }
  return out;
}

double StateReader::ReadDouble() {
  return std::bit_cast<double>(ReadU64());
}

std::string StateReader::ReadString() {
  const std::uint32_t length = ReadU32();
  if (!ok()) return {};
  if (length >= kMaxStringLength) {
    Fail("corrupt checkpoint: oversized string length");
    return {};
  }
  const char* p = Take(length);
  return p == nullptr ? std::string{} : std::string(p, length);
}

std::size_t StateReader::SectionBytesLeft() const {
  if (open_ < 0) return 0;
  return sections_[static_cast<std::size_t>(open_)].payload.size() - cursor_;
}

}  // namespace crn::sim
