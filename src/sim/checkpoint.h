// Versioned, bit-exact checkpoint envelope (DESIGN.md §14).
//
// A checkpoint is a CRNCKPT1 blob: a fixed magic + format version followed
// by named sections, each carrying its own CRC-32. StateWriter builds the
// blob in memory (no file I/O here — the harness owns atomic persistence);
// StateReader validates the envelope and hands back typed reads.
//
// Integers are little-endian; doubles are bit-cast to u64, so every value
// round-trips bit-exactly — the foundation of the restore guarantee that a
// run checkpointed at event k and resumed produces the same trace/metrics
// digests as the uninterrupted run.
//
// Error handling follows the flight recorder's decode style, not
// exceptions (simulation callbacks must stay noexcept — the
// throw-in-callback lint): the reader latches the first failure, every
// subsequent read returns zero, and ok()/error() report an actionable
// message naming the section and the corruption. Adversarial input
// (truncated, bit-flipped, wrong magic, future version) must fail cleanly —
// never crash or read out of bounds; tests/sim/checkpoint_test.cc and the
// asan/ubsan corpus test pin that.
//
// Components participate by implementing a save/load pair
//   void SaveState(StateWriter& writer) const;
//   void LoadState(StateReader& reader);
// writing one section each (the Checkpointable protocol). Closures are
// never serialized: restore reconstructs components fresh in the original
// bind order, loads their numeric state, and re-registers pending events
// under their original sequence numbers.
#ifndef CRN_SIM_CHECKPOINT_H_
#define CRN_SIM_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace crn::sim {

// Format identity. Bump kCheckpointVersion on any incompatible layout
// change; readers reject newer versions with an actionable message.
inline constexpr char kCheckpointMagic[8] = {'C', 'R', 'N', 'C',
                                             'K', 'P', 'T', '1'};
inline constexpr std::uint32_t kCheckpointVersion = 1;

// CRC-32 (IEEE 802.3 polynomial, reflected) over `data` — the per-section
// integrity check. Exposed for tests and for the harness journal.
std::uint32_t Crc32(std::string_view data);

// Accumulates named sections into one CRNCKPT1 blob. Usage:
//   StateWriter writer;
//   writer.BeginSection("sim.core");
//   writer.WriteU64(...); ...
//   writer.EndSection();
//   ... more sections ...
//   std::string blob = writer.Finish();
class StateWriter {
 public:
  StateWriter() = default;

  void BeginSection(std::string_view name);
  void EndSection();

  void WriteBool(bool value) { WriteU8(value ? 1 : 0); }
  void WriteU8(std::uint8_t value);
  void WriteU16(std::uint16_t value);
  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteI32(std::int32_t value) {
    WriteU32(static_cast<std::uint32_t>(value));
  }
  void WriteI64(std::int64_t value) {
    WriteU64(static_cast<std::uint64_t>(value));
  }
  // Bit-cast through u64: the double round-trips exactly.
  void WriteDouble(double value);
  // Length-prefixed (u32) byte string.
  void WriteString(std::string_view value);

  // Seals the envelope and returns the blob. The writer is spent afterwards.
  [[nodiscard]] std::string Finish();

  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }

 private:
  struct Section {
    std::string name;
    std::string payload;
  };

  std::vector<Section> sections_;
  std::string current_name_;
  std::string current_payload_;
  bool in_section_ = false;
};

// Parses a CRNCKPT1 blob and serves typed reads. The envelope (magic,
// version, section table, per-section CRCs) is validated up front in the
// constructor; typed reads are bounds-checked against the open section.
// After any failure, ok() is false, error() explains what went wrong, and
// every further read returns zero — callers can sequence reads without
// checking each one and inspect ok() once at the end.
class StateReader {
 public:
  // `blob` must outlive the reader (views into it are handed out).
  explicit StateReader(std::string_view blob);

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] bool HasSection(std::string_view name) const;
  // Positions the cursor at the start of `name`'s payload (CRC already
  // verified at construction). Missing section => latched error, false.
  bool OpenSection(std::string_view name);
  // Closes the open section; unread payload bytes are an error (a save/load
  // layout mismatch would otherwise silently misalign every later read).
  void EndSection();

  [[nodiscard]] bool ReadBool() { return ReadU8() != 0; }
  std::uint8_t ReadU8();
  std::uint16_t ReadU16();
  std::uint32_t ReadU32();
  std::uint64_t ReadU64();
  std::int32_t ReadI32() { return static_cast<std::int32_t>(ReadU32()); }
  std::int64_t ReadI64() { return static_cast<std::int64_t>(ReadU64()); }
  double ReadDouble();
  std::string ReadString();

  // Remaining unread bytes of the open section (0 when none is open).
  [[nodiscard]] std::size_t SectionBytesLeft() const;

 private:
  struct Section {
    std::string_view name;
    std::string_view payload;
  };

  void Fail(std::string message);
  // Takes `n` raw bytes from the open section, or fails and returns null.
  const char* Take(std::size_t n);

  std::vector<Section> sections_;
  std::string error_;
  std::int32_t open_ = -1;  // index into sections_, -1 = none
  std::size_t cursor_ = 0;  // read offset within the open section
};

// Convenience pair for the many components that checkpoint RNG streams:
// serializes the four raw xoshiro state words.
inline void WriteRng(StateWriter& writer, const crn::Rng& rng) {
  for (int i = 0; i < 4; ++i) writer.WriteU64(rng.state_word(i));
}
inline void ReadRng(StateReader& reader, crn::Rng& rng) {
  const std::uint64_t s0 = reader.ReadU64();
  const std::uint64_t s1 = reader.ReadU64();
  const std::uint64_t s2 = reader.ReadU64();
  const std::uint64_t s3 = reader.ReadU64();
  rng.RestoreState(s0, s1, s2, s3);
}

}  // namespace crn::sim

#endif  // CRN_SIM_CHECKPOINT_H_
