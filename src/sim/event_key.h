// Shared (time, class, sequence) event ordering.
//
// Every queue in the repo that orders timestamped events — both simulator
// scheduler backends (sim/simulator.h) and the fault-plan timeline compiler
// (faults/fault_plan.cc) — compares through this one key, so same-instant
// tie-breaking has exactly one definition.
#ifndef CRN_SIM_EVENT_KEY_H_
#define CRN_SIM_EVENT_KEY_H_

#include <cstdint>

#include "sim/time.h"

namespace crn::sim {

// Total order: earlier time first, then lower klass, then lower sequence
// number (schedule order). `klass` is a plain integer so any small ordinal
// fits — sim::EventPriority in the scheduler, faults::FaultKind in the
// timeline compiler — without this header depending on either enum.
struct EventKey {
  TimeNs time = 0;
  std::int32_t klass = 0;
  std::uint64_t seq = 0;
};

[[nodiscard]] constexpr bool operator<(const EventKey& a, const EventKey& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.klass != b.klass) return a.klass < b.klass;
  return a.seq < b.seq;
}

[[nodiscard]] constexpr bool operator>(const EventKey& a, const EventKey& b) {
  return b < a;
}

}  // namespace crn::sim

#endif  // CRN_SIM_EVENT_KEY_H_
