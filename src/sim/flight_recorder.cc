#include "sim/flight_recorder.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "sim/checkpoint.h"

namespace crn::sim {

namespace {

// Dump envelope. Fixed little-endian layout so dumps are portable across
// the machines that write and the machines that decode them.
constexpr char kMagic[8] = {'C', 'R', 'N', 'F', 'R', 'E', 'C', '1'};
constexpr std::size_t kRecordBytes = 8 + 8 + 8 + 4 + 2 + 1 + 1;

void WriteU16(std::ostream& out, std::uint16_t value) {
  char bytes[2];
  bytes[0] = static_cast<char>(value & 0xFFU);
  bytes[1] = static_cast<char>((value >> 8U) & 0xFFU);
  out.write(bytes, sizeof bytes);
}

void WriteU32(std::ostream& out, std::uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((value >> (8U * i)) & 0xFFU);
  }
  out.write(bytes, sizeof bytes);
}

void WriteU64(std::ostream& out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8U * i)) & 0xFFU);
  }
  out.write(bytes, sizeof bytes);
}

bool ReadBytes(std::istream& in, char* buffer, std::size_t n) {
  in.read(buffer, static_cast<std::streamsize>(n));
  return in.gcount() == static_cast<std::streamsize>(n);
}

bool ReadU16(std::istream& in, std::uint16_t* value) {
  char bytes[2];
  if (!ReadBytes(in, bytes, sizeof bytes)) return false;
  *value = static_cast<std::uint16_t>(
      static_cast<unsigned char>(bytes[0]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(bytes[1]))
       << 8U));
  return true;
}

bool ReadU32(std::istream& in, std::uint32_t* value) {
  char bytes[4];
  if (!ReadBytes(in, bytes, sizeof bytes)) return false;
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) {
    out = (out << 8U) | static_cast<unsigned char>(bytes[i]);
  }
  *value = out;
  return true;
}

bool ReadU64(std::istream& in, std::uint64_t* value) {
  char bytes[8];
  if (!ReadBytes(in, bytes, sizeof bytes)) return false;
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) {
    out = (out << 8U) | static_cast<unsigned char>(bytes[i]);
  }
  *value = out;
  return true;
}

bool DecodeFail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t depth) {
  ring_.resize(std::max<std::size_t>(depth, 1));
  kind_names_.emplace_back("unnamed");
}

void FlightRecorder::Record(SchedAction action, EventId seq, TimeNs time,
                            std::uint16_t kind, std::int32_t owner,
                            EventId parent_seq) {
  ring_[next_] = FlightRecord{seq, time, parent_seq, owner, kind, action};
  next_ = (next_ + 1 == ring_.size()) ? 0 : next_ + 1;
  count_ = std::min(count_ + 1, ring_.size());
  ++total_;
  if (counters_.size() <= kind) counters_.resize(kind + 1U);
  KindCounters& counts = counters_[kind];
  switch (action) {
    case SchedAction::kArm:
      ++counts.arms;
      break;
    case SchedAction::kReschedule:
      ++counts.reschedules;
      break;
    case SchedAction::kDisarm:
      ++counts.disarms;
      break;
    case SchedAction::kFire:
      ++counts.fires;
      break;
  }
}

void FlightRecorder::SetKindNames(std::vector<std::string> names) {
  kind_names_ = std::move(names);
  if (kind_names_.empty()) kind_names_.emplace_back("unnamed");
}

void FlightRecorder::OnKindRegistered(std::uint16_t id, std::string_view name) {
  if (kind_names_.size() <= id) kind_names_.resize(id + 1U);
  kind_names_[id] = std::string(name);
}

void FlightRecorder::AddFireWall(std::uint16_t kind, double seconds) {
  if (seconds <= 0.0) return;
  if (fire_wall_.size() <= kind) fire_wall_.resize(kind + 1U, 0.0);
  fire_wall_[kind] += seconds;
}

const FlightRecord& FlightRecorder::At(std::size_t i) const {
  CRN_CHECK(i < count_) << "record index " << i << " out of range (size "
                        << count_ << ")";
  const std::size_t oldest = (count_ < ring_.size()) ? 0 : next_;
  return ring_[(oldest + i) % ring_.size()];
}

std::string_view FlightRecorder::KindName(std::uint16_t id) const {
  if (id < kind_names_.size() && !kind_names_[id].empty()) {
    return kind_names_[id];
  }
  return "unnamed";
}

double FlightRecorder::fire_wall_seconds(std::uint16_t kind) const {
  return kind < fire_wall_.size() ? fire_wall_[kind] : 0.0;
}

void FlightRecorder::Clear() {
  next_ = 0;
  count_ = 0;
  total_ = 0;
  counters_.clear();
  fire_wall_.clear();
}

void FlightRecorder::WriteDump(std::ostream& out) const {
  out.write(kMagic, sizeof kMagic);
  WriteU64(out, ring_.size());
  WriteU64(out, total_);
  // Kind table covers both the registry mirror and any id the counters saw.
  const auto kind_count = static_cast<std::uint32_t>(
      std::max(kind_names_.size(), counters_.size()));
  WriteU32(out, kind_count);
  for (std::uint32_t id = 0; id < kind_count; ++id) {
    const std::string_view name =
        KindName(static_cast<std::uint16_t>(id));
    WriteU32(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  for (std::uint32_t id = 0; id < kind_count; ++id) {
    const KindCounters counts =
        id < counters_.size() ? counters_[id] : KindCounters{};
    WriteU64(out, static_cast<std::uint64_t>(counts.arms));
    WriteU64(out, static_cast<std::uint64_t>(counts.reschedules));
    WriteU64(out, static_cast<std::uint64_t>(counts.disarms));
    WriteU64(out, static_cast<std::uint64_t>(counts.fires));
  }
  WriteU64(out, count_);
  for (std::size_t i = 0; i < count_; ++i) {
    const FlightRecord& record = At(i);
    WriteU64(out, record.seq);
    WriteU64(out, static_cast<std::uint64_t>(record.time));
    WriteU64(out, record.parent_seq);
    WriteU32(out, static_cast<std::uint32_t>(record.owner));
    WriteU16(out, record.kind);
    const char tail[2] = {static_cast<char>(record.action), 0};
    out.write(tail, sizeof tail);
  }
}

bool FlightRecorder::ReadDump(std::istream& in, Dump* out,
                              std::string* error) {
  CRN_CHECK(out != nullptr);
  char magic[sizeof kMagic];
  if (!ReadBytes(in, magic, sizeof magic) ||
      !std::equal(std::begin(magic), std::end(magic), std::begin(kMagic))) {
    return DecodeFail(error, "bad magic: not a CRNFREC1 flight dump");
  }
  if (!ReadU64(in, &out->depth) || !ReadU64(in, &out->total_recorded)) {
    return DecodeFail(error, "truncated header");
  }
  std::uint32_t kind_count = 0;
  if (!ReadU32(in, &kind_count)) return DecodeFail(error, "truncated header");
  out->kind_names.clear();
  out->kind_names.reserve(kind_count);
  for (std::uint32_t id = 0; id < kind_count; ++id) {
    std::uint32_t length = 0;
    if (!ReadU32(in, &length) || length > (1U << 20U)) {
      return DecodeFail(error, "truncated or oversized kind name");
    }
    std::string name(length, '\0');
    if (length > 0 && !ReadBytes(in, name.data(), length)) {
      return DecodeFail(error, "truncated kind name");
    }
    out->kind_names.push_back(std::move(name));
  }
  out->counters.clear();
  out->counters.reserve(kind_count);
  for (std::uint32_t id = 0; id < kind_count; ++id) {
    std::uint64_t values[4];
    for (std::uint64_t& value : values) {
      if (!ReadU64(in, &value)) {
        return DecodeFail(error, "truncated counter table");
      }
    }
    out->counters.push_back(
        KindCounters{static_cast<std::int64_t>(values[0]),
                     static_cast<std::int64_t>(values[1]),
                     static_cast<std::int64_t>(values[2]),
                     static_cast<std::int64_t>(values[3])});
  }
  std::uint64_t record_count = 0;
  if (!ReadU64(in, &record_count)) return DecodeFail(error, "truncated header");
  if (record_count > out->depth) {
    return DecodeFail(error, "record count exceeds declared depth");
  }
  out->records.clear();
  out->records.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    FlightRecord record;
    std::uint64_t time = 0;
    std::uint32_t owner = 0;
    char tail[2];
    if (!ReadU64(in, &record.seq) || !ReadU64(in, &time) ||
        !ReadU64(in, &record.parent_seq) || !ReadU32(in, &owner) ||
        !ReadU16(in, &record.kind) || !ReadBytes(in, tail, sizeof tail)) {
      return DecodeFail(error, "truncated record stream");
    }
    record.time = static_cast<TimeNs>(time);
    record.owner = static_cast<std::int32_t>(owner);
    if (static_cast<unsigned char>(tail[0]) >
        static_cast<unsigned char>(SchedAction::kFire)) {
      return DecodeFail(error, "record carries an unknown action code");
    }
    record.action = static_cast<SchedAction>(tail[0]);
    if (record.kind >= kind_count) {
      return DecodeFail(error, "record references an unregistered kind id");
    }
    out->records.push_back(record);
  }
  static_assert(kRecordBytes == 32, "record layout drifted from DESIGN.md");
  return true;
}

void FlightRecorder::SaveState(StateWriter& writer) const {
  writer.BeginSection("flight");
  writer.WriteU64(ring_.size());
  writer.WriteU64(total_);
  writer.WriteU32(static_cast<std::uint32_t>(kind_names_.size()));
  for (const std::string& name : kind_names_) writer.WriteString(name);
  writer.WriteU32(static_cast<std::uint32_t>(counters_.size()));
  for (const KindCounters& counts : counters_) {
    writer.WriteI64(counts.arms);
    writer.WriteI64(counts.reschedules);
    writer.WriteI64(counts.disarms);
    writer.WriteI64(counts.fires);
  }
  writer.WriteU64(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    const FlightRecord& record = At(i);
    writer.WriteU64(record.seq);
    writer.WriteI64(record.time);
    writer.WriteU64(record.parent_seq);
    writer.WriteI32(record.owner);
    writer.WriteU16(record.kind);
    writer.WriteU8(static_cast<std::uint8_t>(record.action));
  }
  writer.EndSection();
}

void FlightRecorder::LoadState(StateReader& reader) {
  if (!reader.OpenSection("flight")) return;
  const std::uint64_t depth = reader.ReadU64();
  const std::uint64_t total = reader.ReadU64();
  const std::uint32_t kind_count = reader.ReadU32();
  std::vector<std::string> names;
  for (std::uint32_t i = 0; i < kind_count && reader.ok(); ++i) {
    names.push_back(reader.ReadString());
  }
  const std::uint32_t counter_count = reader.ReadU32();
  std::vector<KindCounters> counters;
  for (std::uint32_t i = 0; i < counter_count && reader.ok(); ++i) {
    KindCounters counts;
    counts.arms = reader.ReadI64();
    counts.reschedules = reader.ReadI64();
    counts.disarms = reader.ReadI64();
    counts.fires = reader.ReadI64();
    counters.push_back(counts);
  }
  const std::uint64_t record_count = reader.ReadU64();
  std::vector<FlightRecord> records;
  for (std::uint64_t i = 0; i < record_count && reader.ok(); ++i) {
    FlightRecord record;
    record.seq = reader.ReadU64();
    record.time = reader.ReadI64();
    record.parent_seq = reader.ReadU64();
    record.owner = reader.ReadI32();
    record.kind = reader.ReadU16();
    record.action = static_cast<SchedAction>(reader.ReadU8());
    records.push_back(record);
  }
  reader.EndSection();
  if (!reader.ok()) return;
  CRN_CHECK(depth >= 1 && records.size() <= depth)
      << "corrupt flight checkpoint: " << records.size()
      << " records exceed declared depth " << depth;
  // Adopt the saved geometry: records land oldest-first at the ring base,
  // so subsequent Record() calls continue the rotation seamlessly (the dump
  // walks records through At(), which is rotation-invariant).
  ring_.assign(static_cast<std::size_t>(depth), FlightRecord{});
  for (std::size_t i = 0; i < records.size(); ++i) ring_[i] = records[i];
  count_ = records.size();
  next_ = count_ % ring_.size();
  total_ = total;
  kind_names_ = std::move(names);
  if (kind_names_.empty()) kind_names_.emplace_back("unnamed");
  counters_ = std::move(counters);
}

std::string FlightRecorder::FormatRecord(
    const FlightRecord& record, const std::vector<std::string>& kind_names) {
  std::ostringstream line;
  line << "#" << record.seq << " t=" << record.time << "ns "
       << ToString(record.action) << " ";
  if (record.kind < kind_names.size() && !kind_names[record.kind].empty()) {
    line << kind_names[record.kind];
  } else {
    line << "kind" << record.kind;
  }
  line << " node=" << record.owner << " parent=#" << record.parent_seq;
  return line.str();
}

std::string FlightRecorder::FormatTrail(std::size_t max_records) const {
  const std::size_t n = std::min(max_records, count_);
  std::ostringstream out;
  out << "flight recorder trail (last " << n << " of " << total_
      << " recorded):\n";
  for (std::size_t i = count_ - n; i < count_; ++i) {
    out << "  " << FormatRecord(At(i), kind_names_) << "\n";
  }
  return out.str();
}

}  // namespace crn::sim
