// Scheduler flight recorder: a fixed-capacity ring of compact records, one
// per scheduler action (arm/reschedule/disarm/fire), kept alongside — never
// inside — the event queue. The recorder is pure bookkeeping: it observes
// the scheduler through Simulator's gated hooks and can never schedule,
// cancel, or reorder anything, so a run with the recorder attached is
// bit-identical (same trace digest) to the same run without it.
//
// Causality model: while an event's callback executes, the simulator tracks
// that event's sequence number; every arm performed by the callback stamps
// it into the armed slot as `parent_seq`. A fire record therefore carries
// the seq of the event whose handler armed it, and chains remain walkable
// from fire records alone even after the arm records rotate out of the
// ring (parent links point at seqs, not at ring positions).
//
// Wall-time attribution: src/ code must not read wall clocks (the
// `wall-clock` lint rule), so the recorder takes an injected probe —
// installed only by the harness/tools layer — and attributes per-kind
// callback wall time through it. Wall readings live in the recorder and
// the RunProfiler only; they must never reach a MetricsRegistry or digest.
#ifndef CRN_SIM_FLIGHT_RECORDER_H_
#define CRN_SIM_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace crn::sim {

class StateReader;
class StateWriter;

using EventId = std::uint64_t;

enum class SchedAction : std::uint8_t {
  kArm = 0,
  kReschedule = 1,
  kDisarm = 2,
  kFire = 3,
};

inline const char* ToString(SchedAction action) {
  switch (action) {
    case SchedAction::kArm:
      return "arm";
    case SchedAction::kReschedule:
      return "resched";
    case SchedAction::kDisarm:
      return "disarm";
    case SchedAction::kFire:
      return "fire";
  }
  return "?";
}

// One scheduler action. `seq` is the queue entry acted on; `parent_seq` is
// the seq of the event whose callback performed the action (0 = performed
// outside any event, e.g. pre-run setup).
struct FlightRecord {
  EventId seq = 0;
  TimeNs time = 0;
  EventId parent_seq = 0;
  std::int32_t owner = -1;
  std::uint16_t kind = 0;
  SchedAction action = SchedAction::kArm;
};

// Deterministic per-kind action counts — exact functions of (scenario,
// seed); exported as sched.fires{kind=...} etc. Unlike the ring, counters
// cover the whole run (they never rotate out).
struct KindCounters {
  std::int64_t arms = 0;
  std::int64_t reschedules = 0;
  std::int64_t disarms = 0;
  std::int64_t fires = 0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultDepth = 1U << 16U;

  explicit FlightRecorder(std::size_t depth = kDefaultDepth);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // --- scheduler-facing hooks (called by Simulator, gated on attachment) ---

  void Record(SchedAction action, EventId seq, TimeNs time, std::uint16_t kind,
              std::int32_t owner, EventId parent_seq);

  // Kind-name mirror: the registry lives in the Simulator, but the recorder
  // keeps its own copy so dumps and trails stay decodable after the
  // simulator is gone (RunOptions hands the recorder out past run scope).
  void SetKindNames(std::vector<std::string> names);
  void OnKindRegistered(std::uint16_t id, std::string_view name);

  // Wall probe (seconds, arbitrary epoch). Installed by harness/tools code
  // only; without a probe all wall attribution stays zero.
  void set_wall_probe(std::function<double()> probe) {
    wall_probe_ = std::move(probe);
  }
  [[nodiscard]] bool has_wall_probe() const {
    return static_cast<bool>(wall_probe_);
  }
  [[nodiscard]] double WallNow() const {
    return wall_probe_ ? wall_probe_() : 0.0;
  }
  void AddFireWall(std::uint16_t kind, double seconds);

  // --- accessors ---

  [[nodiscard]] std::size_t depth() const { return ring_.size(); }
  // Records currently held (<= depth()).
  [[nodiscard]] std::size_t size() const { return count_; }
  // Records ever written, including ones that rotated out.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  // i-th stored record, oldest first (0 <= i < size()).
  [[nodiscard]] const FlightRecord& At(std::size_t i) const;
  [[nodiscard]] const std::vector<std::string>& kind_names() const {
    return kind_names_;
  }
  [[nodiscard]] std::string_view KindName(std::uint16_t id) const;
  // Per-kind counters, indexed by kind id (size tracks the largest kind
  // seen by Record(), not the full registry).
  [[nodiscard]] const std::vector<KindCounters>& counters() const {
    return counters_;
  }
  // Accumulated callback wall seconds for `kind` (0.0 without a probe).
  [[nodiscard]] double fire_wall_seconds(std::uint16_t kind) const;

  void Clear();

  // --- serialization ---

  // Binary dump: header + kind table + per-kind counters + stored records
  // (oldest first). Fixed little-endian layout, documented in DESIGN.md §13.
  void WriteDump(std::ostream& out) const;

  struct Dump {
    std::uint64_t depth = 0;
    std::uint64_t total_recorded = 0;
    std::vector<std::string> kind_names;
    std::vector<KindCounters> counters;
    std::vector<FlightRecord> records;  // oldest first
  };
  // Decodes a WriteDump() stream. Returns false (and sets *error) on a
  // malformed dump; never throws.
  static bool ReadDump(std::istream& in, Dump* out, std::string* error);

  // Checkpoint protocol (sim/checkpoint.h, section "flight"): ring contents
  // (oldest first), totals, per-kind counters, and the kind-name mirror.
  // Wall attribution (fire_wall_/wall_probe_) is deliberately excluded —
  // wall readings are nondeterministic and must not survive into a resumed
  // run's comparisons.
  void SaveState(StateWriter& writer) const;
  void LoadState(StateReader& reader);

  // Human-readable decode of the newest `max_records` records, oldest
  // first — the "last N" trail printed on invariant violations and escaped
  // exceptions.
  [[nodiscard]] std::string FormatTrail(std::size_t max_records) const;
  static std::string FormatRecord(const FlightRecord& record,
                                  const std::vector<std::string>& kind_names);

 private:
  std::vector<FlightRecord> ring_;
  std::size_t next_ = 0;   // ring slot the next record lands in
  std::size_t count_ = 0;  // stored records (saturates at ring_.size())
  std::uint64_t total_ = 0;
  std::vector<std::string> kind_names_;
  std::vector<KindCounters> counters_;
  std::vector<double> fire_wall_;
  std::function<double()> wall_probe_;
};

}  // namespace crn::sim

#endif  // CRN_SIM_FLIGHT_RECORDER_H_
