#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "sim/checkpoint.h"
#include "sim/flight_recorder.h"

namespace crn::sim {

Simulator::Simulator(SchedulerKind kind) : kind_(kind) {
  if (kind_ == SchedulerKind::kCalendar) {
    cal_buckets_.resize(kMinCalendarBuckets);
    cal_mask_ = kMinCalendarBuckets - 1;
  }
}

std::uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    Slot& s = slots_[slot];
    free_head_ = s.next_free;
    s.next_free = kNoSlot;
    s.flags = kInUse;
    return slot;
  }
  slots_.emplace_back();
  const auto slot = static_cast<std::uint32_t>(slots_.size() - 1);
  slots_[slot].flags = kInUse;
  return slot;
}

void Simulator::FreeSlotNow(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.Reset();
  ++s.generation;  // any entry still in a queue is now stale
  s.flags = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

std::uint32_t Simulator::BindSlot(EventPriority priority, EventFn fn,
                                  std::uint16_t kind, std::int32_t owner) {
  CRN_CHECK(static_cast<bool>(fn));
  const std::uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.priority = priority;
  s.kind = kind;
  s.owner = owner;
  return slot;
}

void Simulator::ArmSlot(std::uint32_t slot, TimeNs when) {
  CRN_CHECK(!in_observer_) << "event observers must not schedule or cancel";
  CRN_CHECK(!restoring_) << "ArmAt during restore — use RestoreArm";
  CRN_CHECK(when >= now_) << "cannot schedule in the past: when=" << when
                          << " now=" << now_;
  Slot& s = slots_[slot];
  const bool rearmed = (s.flags & kArmed) != 0;
  if (rearmed) {
    // Implicit reschedule: the old entry dies by generation bump.
    ++s.generation;
    --pending_;
    ++stats_.cancels;
  }
  s.flags |= kArmed;
  const EventId seq = next_seq_++;
  // Causal bookkeeping is unconditional (two stores); only the ring write
  // is gated, so a recorder attached mid-run still sees correct parents.
  s.pending_seq = seq;
  s.armed_parent = current_fire_seq_;
  Push(QEntry{when, seq, slot, s.generation, s.priority});
  ++pending_;
  if (recorder_ != nullptr) {
    recorder_->Record(rearmed ? SchedAction::kReschedule : SchedAction::kArm,
                      seq, now_, s.kind, s.owner, current_fire_seq_);
  }
}

bool Simulator::DisarmSlot(std::uint32_t slot) {
  CRN_CHECK(!in_observer_) << "event observers must not schedule or cancel";
  Slot& s = slots_[slot];
  if ((s.flags & kArmed) == 0) return false;
  s.flags &= static_cast<std::uint8_t>(~kArmed);
  ++s.generation;
  --pending_;
  ++stats_.cancels;
  if (recorder_ != nullptr) {
    recorder_->Record(SchedAction::kDisarm, s.pending_seq, now_, s.kind,
                      s.owner, current_fire_seq_);
  }
  return true;
}

void Simulator::ReleaseSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if ((s.flags & kArmed) != 0) {
    s.flags &= static_cast<std::uint8_t>(~kArmed);
    ++s.generation;
    --pending_;
    ++stats_.cancels;
    if (recorder_ != nullptr) {
      recorder_->Record(SchedAction::kDisarm, s.pending_seq, now_, s.kind,
                        s.owner, current_fire_seq_);
    }
  }
  if ((s.flags & kExecuting) != 0) {
    // Timer destroyed from inside its own callback (e.g. a transmission
    // torn down by its own end event): free after the callback returns.
    s.flags |= kReleaseDeferred;
    return;
  }
  FreeSlotNow(slot);
}

EventId Simulator::ScheduleOnce(TimeNs when, EventPriority priority,
                                EventFn fn) {
  return ScheduleOnce(when, priority, "unnamed", -1, std::move(fn));
}

EventId Simulator::ScheduleOnce(TimeNs when, EventPriority priority,
                                std::string_view kind, std::int32_t owner,
                                EventFn fn) {
  CRN_CHECK(!in_observer_) << "event observers must not schedule or cancel";
  CRN_CHECK(!restoring_) << "ScheduleOnce during restore — use RestoreOnce";
  CRN_CHECK(when >= now_) << "cannot schedule in the past: when=" << when
                          << " now=" << now_;
  const std::uint32_t slot =
      BindSlot(priority, std::move(fn), RegisterEventKind(kind), owner);
  Slot& s = slots_[slot];
  s.flags |= static_cast<std::uint8_t>(kArmed | kOneShot);
  const EventId seq = next_seq_++;
  s.pending_seq = seq;
  s.armed_parent = current_fire_seq_;
  Push(QEntry{when, seq, slot, s.generation, priority});
  ++pending_;
  if (recorder_ != nullptr) {
    recorder_->Record(SchedAction::kArm, seq, now_, s.kind, s.owner,
                      current_fire_seq_);
  }
  return seq;
}

std::uint16_t Simulator::RegisterEventKind(std::string_view name) {
  CRN_CHECK(!name.empty()) << "event kind name must be non-empty";
  const auto it = kind_ids_.find(name);
  if (it != kind_ids_.end()) return it->second;
  CRN_CHECK(kind_names_.size() < 0xFFFFU) << "event-kind registry full";
  const auto id = static_cast<std::uint16_t>(kind_names_.size());
  kind_names_.emplace_back(name);
  kind_ids_.emplace(kind_names_.back(), id);
  if (recorder_ != nullptr) recorder_->OnKindRegistered(id, name);
  return id;
}

void Simulator::AttachFlightRecorder(FlightRecorder* recorder) {
  recorder_ = recorder;
  if (recorder_ != nullptr) recorder_->SetKindNames(kind_names_);
}

void Simulator::Push(const QEntry& entry) {
  ++stats_.pushes;
  if (kind_ == SchedulerKind::kReference) {
    ref_queue_.push(entry);
  } else {
    CalPush(entry);
  }
}

bool Simulator::PopLive(QEntry* out) {
  if (kind_ == SchedulerKind::kReference) {
    while (!ref_queue_.empty()) {
      const QEntry entry = ref_queue_.top();
      ref_queue_.pop();
      if (!EntryLive(entry)) {
        ++stats_.stale_skips;
        continue;
      }
      ++stats_.pops;
      *out = entry;
      return true;
    }
    return false;
  }
  while (cal_size_ > 0) {
    std::vector<QEntry>* bucket = CalMinBucket();
    const QEntry entry = bucket->back();
    bucket->pop_back();
    --cal_size_;
    CalMaybeShrink();
    if (!EntryLive(entry)) {
      ++stats_.stale_skips;
      continue;
    }
    ++stats_.pops;
    *out = entry;
    return true;
  }
  return false;
}

bool Simulator::PeekLive(QEntry* out) {
  if (kind_ == SchedulerKind::kReference) {
    while (!ref_queue_.empty()) {
      const QEntry entry = ref_queue_.top();
      if (!EntryLive(entry)) {
        ref_queue_.pop();
        ++stats_.stale_skips;
        continue;
      }
      *out = entry;
      return true;
    }
    return false;
  }
  while (cal_size_ > 0) {
    std::vector<QEntry>* bucket = CalMinBucket();
    const QEntry entry = bucket->back();
    if (!EntryLive(entry)) {
      bucket->pop_back();
      --cal_size_;
      ++stats_.stale_skips;
      continue;
    }
    *out = entry;
    return true;
  }
  return false;
}

void Simulator::RunObservers() {
  in_observer_ = true;
  for (const auto& observer : event_observers_) observer(now_);
  in_observer_ = false;
}

void Simulator::Fire(const QEntry& entry) {
  Slot& s = slots_[entry.slot];
  now_ = entry.time;
  --pending_;
  // Capture recorder fields before the one-shot branch frees the slot.
  const std::uint16_t fired_kind = s.kind;
  double fire_wall_begin = 0.0;
  if (recorder_ != nullptr) {
    recorder_->Record(SchedAction::kFire, entry.seq, entry.time, fired_kind,
                      s.owner, s.armed_parent);
    fire_wall_begin = recorder_->WallNow();
  }
  current_fire_seq_ = entry.seq;
  if ((s.flags & kOneShot) != 0) {
    // Move the callback out and free the slot first so the callback may
    // freely schedule (and even land in this same slot) without aliasing.
    EventFn fn = std::move(s.fn);
    FreeSlotNow(entry.slot);
    RunObservers();
    fn();
  } else {
    // Mark unarmed and bump the generation *before* invoking so the
    // callback can re-arm its own timer.
    s.flags &= static_cast<std::uint8_t>(~kArmed);
    ++s.generation;
    s.flags |= kExecuting;
    RunObservers();
    s.fn();
    // The arena is a deque, so `s` is still valid; the callback may have
    // requested this slot's release (Timer destroyed from inside).
    s.flags &= static_cast<std::uint8_t>(~kExecuting);
    if ((s.flags & kReleaseDeferred) != 0) FreeSlotNow(entry.slot);
  }
  current_fire_seq_ = 0;
  if (recorder_ != nullptr && recorder_->has_wall_probe()) {
    recorder_->AddFireWall(fired_kind, recorder_->WallNow() - fire_wall_begin);
  }
  ++events_executed_;
  if (event_limit_ != 0 && events_executed_ > event_limit_) {
    // Thrown from the event *loop*, after the callback returned — never
    // from inside a callback, so no MAC state is left half-applied.
    throw ContractViolation(  // crn-lint-ok: loop guard, not callback code
        "simulator event limit exceeded — runaway event loop?");
  }
}

bool Simulator::ExecuteNext() {
  QEntry entry;
  if (!PopLive(&entry)) return false;
  Fire(entry);
  return true;
}

TimeNs Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && ExecuteNext()) {
  }
  return now_;
}

TimeNs Simulator::RunUntil(TimeNs deadline) {
  stopped_ = false;
  QEntry entry;
  while (!stopped_ && PeekLive(&entry)) {
    if (entry.time > deadline) break;
    ExecuteNext();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

RunStatus Simulator::RunUntilEvents(std::uint64_t event_target) {
  stopped_ = false;
  while (!stopped_) {
    if (events_executed_ >= event_target) {
      // Decide paused-vs-drained from the live count, never by peeking:
      // PeekLive discards stale entries without the shrink check, which
      // would fork the calendar resize schedule (and sched_stats) from the
      // uninterrupted run's.
      return pending_ > 0 ? RunStatus::kPaused : RunStatus::kDrained;
    }
    if (!ExecuteNext()) return RunStatus::kDrained;
  }
  return RunStatus::kStopped;
}

void Simulator::SaveState(StateWriter& writer) const {
  CRN_CHECK(current_fire_seq_ == 0)
      << "SaveState from inside an event callback";

  writer.BeginSection("sim.registry");
  writer.WriteU32(static_cast<std::uint32_t>(kind_names_.size()));
  for (const std::string& name : kind_names_) writer.WriteString(name);
  writer.EndSection();

  // Collect every queue entry — live and stale — in seq order (the save-side
  // mirror of FinishRestore). Stale entries ride along so the resumed run's
  // stale-skip count and calendar occupancy match the uninterrupted run.
  std::vector<QEntry> entries;
  if (kind_ == SchedulerKind::kReference) {
    auto copy = ref_queue_;
    entries.reserve(copy.size());
    while (!copy.empty()) {
      entries.push_back(copy.top());
      copy.pop();
    }
  } else {
    entries.reserve(cal_size_);
    for (const std::vector<QEntry>& bucket : cal_buckets_) {
      entries.insert(entries.end(), bucket.begin(), bucket.end());
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const QEntry& a, const QEntry& b) { return a.seq < b.seq; });

  std::size_t live = 0;
  for (const QEntry& entry : entries) {
    if (EntryLive(entry)) ++live;
  }
  CRN_CHECK(live == pending_)
      << "live queue entries (" << live << ") disagree with pending ("
      << pending_ << ") at checkpoint";

  writer.BeginSection("sim.core");
  writer.WriteU8(static_cast<std::uint8_t>(kind_));
  writer.WriteI64(now_);
  writer.WriteU64(next_seq_);
  writer.WriteU64(events_executed_);
  writer.WriteI64(stats_.pushes);
  writer.WriteI64(stats_.pops);
  writer.WriteI64(stats_.cancels);
  writer.WriteI64(stats_.stale_skips);
  writer.WriteI64(stats_.bucket_resizes);
  writer.WriteI32(cal_shift_);
  writer.WriteU64(cal_tick_);
  writer.WriteU64(static_cast<std::uint64_t>(cal_buckets_.size()));
  writer.WriteU64(static_cast<std::uint64_t>(entries.size()));
  for (const QEntry& entry : entries) {
    const bool is_live = EntryLive(entry);
    writer.WriteI64(entry.time);
    writer.WriteU64(entry.seq);
    writer.WriteU64(is_live ? slots_[entry.slot].armed_parent : 0);
    writer.WriteU8(static_cast<std::uint8_t>(entry.priority));
    writer.WriteBool(is_live);
  }
  writer.EndSection();
}

void Simulator::LoadRegistry(StateReader& reader) {
  CRN_CHECK(kind_names_.size() == 1 && next_seq_ == 1)
      << "LoadRegistry requires a fresh simulator";
  if (!reader.OpenSection("sim.registry")) return;
  const std::uint32_t count = reader.ReadU32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = reader.ReadString();
    if (!reader.ok()) break;
    if (i == 0) {
      CRN_CHECK(name == "unnamed") << "corrupt kind registry";
      continue;
    }
    // Pre-populating in saved order means components re-binding in the
    // original construction order get their original kind ids back.
    const std::uint16_t id = RegisterEventKind(name);
    CRN_CHECK(id == i) << "kind registry restore produced id " << id
                       << " for '" << name << "' (expected " << i << ")";
  }
  reader.EndSection();
}

void Simulator::BeginRestore(StateReader& reader) {
  CRN_CHECK(!restoring_) << "BeginRestore called twice";
  CRN_CHECK(events_executed_ == 0 && pending_ == 0 && next_seq_ == 1)
      << "BeginRestore requires a fresh simulator";
  if (!reader.OpenSection("sim.core")) return;

  const auto saved_kind = static_cast<SchedulerKind>(reader.ReadU8());
  const TimeNs saved_now = reader.ReadI64();
  const EventId saved_next_seq = reader.ReadU64();
  const std::uint64_t saved_events = reader.ReadU64();
  SchedStats saved_stats;
  saved_stats.pushes = reader.ReadI64();
  saved_stats.pops = reader.ReadI64();
  saved_stats.cancels = reader.ReadI64();
  saved_stats.stale_skips = reader.ReadI64();
  saved_stats.bucket_resizes = reader.ReadI64();
  const std::int32_t saved_shift = reader.ReadI32();
  const std::uint64_t saved_tick = reader.ReadU64();
  const std::uint64_t bucket_count = reader.ReadU64();
  const std::uint64_t entry_count = reader.ReadU64();
  staged_entries_.clear();
  for (std::uint64_t i = 0; i < entry_count && reader.ok(); ++i) {
    SavedEntry entry;
    entry.time = reader.ReadI64();
    entry.seq = reader.ReadU64();
    entry.armed_parent = reader.ReadU64();
    entry.priority = static_cast<EventPriority>(reader.ReadU8());
    entry.live = reader.ReadBool();
    staged_entries_.push_back(entry);
  }
  reader.EndSection();
  if (!reader.ok()) return;  // caller surfaces reader.error()

  CRN_CHECK(saved_kind == kind_)
      << "checkpoint was taken with the " << ToString(saved_kind)
      << " scheduler but this run uses " << ToString(kind_)
      << " — restore with the same --scheduler";
  if (kind_ == SchedulerKind::kCalendar) {
    CRN_CHECK(bucket_count >= kMinCalendarBuckets &&
              (bucket_count & (bucket_count - 1)) == 0)
        << "checkpoint calendar geometry is invalid (" << bucket_count
        << " buckets)";
    // Geometry must be restored exactly: the resize schedule (a CI-gated
    // work counter) depends on the (size, bucket-count) trajectory.
    cal_buckets_.assign(static_cast<std::size_t>(bucket_count), {});
    cal_mask_ = bucket_count - 1;
    cal_shift_ = saved_shift;
    cal_size_ = 0;
  }
  now_ = saved_now;
  next_seq_ = saved_next_seq;
  events_executed_ = saved_events;
  saved_stats_ = saved_stats;
  saved_cal_tick_ = saved_tick;
  saved_cal_size_ = staged_entries_.size();

  // The sentinel slot stale entries are re-pushed against: bound (kind 0,
  // never armed, never fired) so its generation stays fixed and any entry
  // carrying generation+1 is permanently stale.
  sentinel_slot_ = BindSlot(EventPriority::kDefault, EventFn([] {}));
  restoring_ = true;
}

void Simulator::RestoreArmSlot(std::uint32_t slot, EventId seq) {
  CRN_CHECK(restoring_)
      << "RestoreArm outside BeginRestore..FinishRestore";
  CRN_CHECK(seq != 0 && seq < next_seq_)
      << "RestoreArm seq " << seq << " out of checkpoint range";
  Slot& s = slots_[slot];
  CRN_CHECK((s.flags & kArmed) == 0) << "RestoreArm on an armed timer";
  s.flags |= kArmed;
  s.pending_seq = seq;
  const bool inserted = restore_claims_.emplace(seq, slot).second;
  CRN_CHECK(inserted) << "two timers claimed checkpoint seq " << seq;
}

void Simulator::RestoreOnce(EventId seq, EventPriority priority,
                            std::string_view kind, std::int32_t owner,
                            EventFn fn) {
  CRN_CHECK(restoring_)
      << "RestoreOnce outside BeginRestore..FinishRestore";
  const std::uint32_t slot =
      BindSlot(priority, std::move(fn), RegisterEventKind(kind), owner);
  slots_[slot].flags |= kOneShot;
  RestoreArmSlot(slot, seq);
}

void Simulator::FinishRestore() {
  CRN_CHECK(restoring_) << "FinishRestore without BeginRestore";
  const std::uint32_t stale_gen = slots_[sentinel_slot_].generation + 1;
  std::size_t live_count = 0;
  for (const SavedEntry& saved : staged_entries_) {
    QEntry entry{saved.time, saved.seq, sentinel_slot_, stale_gen,
                 saved.priority};
    if (saved.live) {
      const auto it = restore_claims_.find(saved.seq);
      CRN_CHECK(it != restore_claims_.end())
          << "checkpoint queue entry seq " << saved.seq
          << " was never re-claimed — a component failed to restore its "
             "pending timer";
      Slot& s = slots_[it->second];
      CRN_CHECK(s.priority == saved.priority)
          << "timer claiming seq " << saved.seq
          << " re-bound with a different priority than the checkpoint";
      s.armed_parent = saved.armed_parent;
      entry.slot = it->second;
      entry.gen = s.generation;
      restore_claims_.erase(it);
      ++live_count;
    }
    // Bypass Push(): these re-pushes already happened in the original run
    // (the saved work counters cover them), and the calendar geometry is
    // already exact so no resize may trigger.
    if (kind_ == SchedulerKind::kReference) {
      ref_queue_.push(entry);
    } else {
      CalInsert(entry);
    }
  }
  CRN_CHECK(restore_claims_.empty())
      << restore_claims_.size()
      << " RestoreArm claims matched no checkpoint queue entry";
  if (kind_ == SchedulerKind::kCalendar) {
    CRN_CHECK(cal_size_ == saved_cal_size_);
    cal_tick_ = saved_cal_tick_;
  }
  pending_ = live_count;
  stats_ = saved_stats_;
  staged_entries_.clear();
  restoring_ = false;
}

void Simulator::CalPush(const QEntry& entry) {
  if (cal_size_ + 1 > 2 * cal_buckets_.size()) CalResize(cal_size_ + 1);
  CalInsert(entry);
}

void Simulator::CalInsert(const QEntry& entry) {
  const auto tick = static_cast<std::uint64_t>(entry.time) >> cal_shift_;
  // An insert at or behind the cursor (possible after RunUntil advanced the
  // clock through an idle stretch) clamps the cursor back so the entry can
  // never be stranded behind it.
  if (cal_size_ == 0 || tick < cal_tick_) cal_tick_ = tick;
  std::vector<QEntry>& bucket = cal_buckets_[tick & cal_mask_];
  // Keep the bucket sorted descending by key: back() is the bucket minimum.
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), entry,
      [](const QEntry& a, const QEntry& b) { return b.key() < a.key(); });
  bucket.insert(pos, entry);
  ++cal_size_;
}

auto Simulator::CalMinBucket() -> std::vector<QEntry>* {
  // Dense path: walk the bucket ring one tick at a time. Each tick maps to
  // exactly one bucket, and a bucket's back() is its minimum, so the first
  // back() matching the cursor tick is the global minimum.
  for (std::size_t i = 0; i < cal_buckets_.size(); ++i) {
    std::vector<QEntry>& bucket = cal_buckets_[cal_tick_ & cal_mask_];
    if (!bucket.empty() &&
        (static_cast<std::uint64_t>(bucket.back().time) >> cal_shift_) ==
            cal_tick_) {
      return &bucket;
    }
    ++cal_tick_;
  }
  // Sparse horizon: no event within one full ring rotation of the cursor.
  // Jump the cursor straight to the global minimum (this direct scan is the
  // engine's sparse-queue fallback — O(buckets), amortized by the jump).
  std::vector<QEntry>* best = nullptr;
  for (std::vector<QEntry>& bucket : cal_buckets_) {
    if (bucket.empty()) continue;
    if (best == nullptr || bucket.back().key() < best->back().key()) {
      best = &bucket;
    }
  }
  CRN_CHECK(best != nullptr) << "CalMinBucket on an empty calendar";
  cal_tick_ = static_cast<std::uint64_t>(best->back().time) >> cal_shift_;
  return best;
}

void Simulator::CalMaybeShrink() {
  if (cal_buckets_.size() > kMinCalendarBuckets &&
      cal_size_ < cal_buckets_.size() / 8) {
    CalResize(std::max(kMinCalendarBuckets, 2 * cal_size_));
  }
}

void Simulator::CalResize(std::size_t min_buckets) {
  ++stats_.bucket_resizes;
  std::vector<QEntry> all;
  all.reserve(cal_size_);
  for (std::vector<QEntry>& bucket : cal_buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  std::size_t nbuckets = kMinCalendarBuckets;
  while (nbuckets < min_buckets) nbuckets <<= 1U;
  if (nbuckets != cal_buckets_.size()) {
    cal_buckets_.assign(nbuckets, {});
    cal_mask_ = nbuckets - 1;
  }
  if (all.size() >= 2) {
    TimeNs min_time = all.front().time;
    TimeNs max_time = all.front().time;
    for (const QEntry& entry : all) {
      min_time = std::min(min_time, entry.time);
      max_time = std::max(max_time, entry.time);
    }
    // Bucket width ≈ the mean inter-event gap (rounded up to a power of
    // two), so the dense-path cursor sees about one event per tick. All
    // inputs are deterministic, so the resize schedule is too.
    const std::uint64_t gap =
        static_cast<std::uint64_t>(max_time - min_time) / (all.size() - 1);
    int shift = 0;
    while (shift < kMaxCalendarShift && (1ULL << shift) < gap) ++shift;
    cal_shift_ = shift;
    cal_tick_ = static_cast<std::uint64_t>(min_time) >> cal_shift_;
  } else if (!all.empty()) {
    cal_tick_ = static_cast<std::uint64_t>(all.front().time) >> cal_shift_;
  }
  cal_size_ = 0;
  for (const QEntry& entry : all) CalInsert(entry);
}

}  // namespace crn::sim
