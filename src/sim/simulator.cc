#include "sim/simulator.h"

#include <utility>

namespace crn::sim {

EventId Simulator::ScheduleAt(TimeNs when, EventPriority priority,
                              std::function<void()> fn) {
  CRN_CHECK(when >= now_) << "cannot schedule in the past: when=" << when
                          << " now=" << now_;
  CRN_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{when, priority, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::Cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Simulator::ExecuteNext() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    if (const auto cancelled_it = cancelled_.find(entry.id);
        cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    const auto callback_it = callbacks_.find(entry.id);
    CRN_CHECK(callback_it != callbacks_.end()) << "event " << entry.id << " lost";
    // Move the callback out before invoking so the callback may freely
    // schedule/cancel without invalidating our iterator.
    std::function<void()> fn = std::move(callback_it->second);
    callbacks_.erase(callback_it);
    now_ = entry.time;
    for (const auto& observer : event_observers_) observer(now_);
    fn();
    ++events_executed_;
    if (event_limit_ != 0 && events_executed_ > event_limit_) {
      // Thrown from the event *loop*, after fn() returned — never from
      // inside a callback, so no MAC state is left half-applied.
      throw ContractViolation(  // crn-lint-ok: loop guard, not callback code
          "simulator event limit exceeded — runaway event loop?");
    }
    return true;
  }
  return false;
}

TimeNs Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && ExecuteNext()) {
  }
  return now_;
}

TimeNs Simulator::RunUntil(TimeNs deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Peek past cancelled entries without executing.
    if (cancelled_.contains(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
      continue;
    }
    if (queue_.top().time > deadline) break;
    ExecuteNext();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace crn::sim
