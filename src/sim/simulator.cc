#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "sim/flight_recorder.h"

namespace crn::sim {

Simulator::Simulator(SchedulerKind kind) : kind_(kind) {
  if (kind_ == SchedulerKind::kCalendar) {
    cal_buckets_.resize(kMinCalendarBuckets);
    cal_mask_ = kMinCalendarBuckets - 1;
  }
}

std::uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    Slot& s = slots_[slot];
    free_head_ = s.next_free;
    s.next_free = kNoSlot;
    s.flags = kInUse;
    return slot;
  }
  slots_.emplace_back();
  const auto slot = static_cast<std::uint32_t>(slots_.size() - 1);
  slots_[slot].flags = kInUse;
  return slot;
}

void Simulator::FreeSlotNow(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.Reset();
  ++s.generation;  // any entry still in a queue is now stale
  s.flags = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

std::uint32_t Simulator::BindSlot(EventPriority priority, EventFn fn,
                                  std::uint16_t kind, std::int32_t owner) {
  CRN_CHECK(static_cast<bool>(fn));
  const std::uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.priority = priority;
  s.kind = kind;
  s.owner = owner;
  return slot;
}

void Simulator::ArmSlot(std::uint32_t slot, TimeNs when) {
  CRN_CHECK(!in_observer_) << "event observers must not schedule or cancel";
  CRN_CHECK(when >= now_) << "cannot schedule in the past: when=" << when
                          << " now=" << now_;
  Slot& s = slots_[slot];
  const bool rearmed = (s.flags & kArmed) != 0;
  if (rearmed) {
    // Implicit reschedule: the old entry dies by generation bump.
    ++s.generation;
    --pending_;
    ++stats_.cancels;
  }
  s.flags |= kArmed;
  const EventId seq = next_seq_++;
  // Causal bookkeeping is unconditional (two stores); only the ring write
  // is gated, so a recorder attached mid-run still sees correct parents.
  s.pending_seq = seq;
  s.armed_parent = current_fire_seq_;
  Push(QEntry{when, seq, slot, s.generation, s.priority});
  ++pending_;
  if (recorder_ != nullptr) {
    recorder_->Record(rearmed ? SchedAction::kReschedule : SchedAction::kArm,
                      seq, now_, s.kind, s.owner, current_fire_seq_);
  }
}

bool Simulator::DisarmSlot(std::uint32_t slot) {
  CRN_CHECK(!in_observer_) << "event observers must not schedule or cancel";
  Slot& s = slots_[slot];
  if ((s.flags & kArmed) == 0) return false;
  s.flags &= static_cast<std::uint8_t>(~kArmed);
  ++s.generation;
  --pending_;
  ++stats_.cancels;
  if (recorder_ != nullptr) {
    recorder_->Record(SchedAction::kDisarm, s.pending_seq, now_, s.kind,
                      s.owner, current_fire_seq_);
  }
  return true;
}

void Simulator::ReleaseSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if ((s.flags & kArmed) != 0) {
    s.flags &= static_cast<std::uint8_t>(~kArmed);
    ++s.generation;
    --pending_;
    ++stats_.cancels;
    if (recorder_ != nullptr) {
      recorder_->Record(SchedAction::kDisarm, s.pending_seq, now_, s.kind,
                        s.owner, current_fire_seq_);
    }
  }
  if ((s.flags & kExecuting) != 0) {
    // Timer destroyed from inside its own callback (e.g. a transmission
    // torn down by its own end event): free after the callback returns.
    s.flags |= kReleaseDeferred;
    return;
  }
  FreeSlotNow(slot);
}

void Simulator::ScheduleOnce(TimeNs when, EventPriority priority, EventFn fn) {
  ScheduleOnce(when, priority, "unnamed", -1, std::move(fn));
}

void Simulator::ScheduleOnce(TimeNs when, EventPriority priority,
                             std::string_view kind, std::int32_t owner,
                             EventFn fn) {
  CRN_CHECK(!in_observer_) << "event observers must not schedule or cancel";
  CRN_CHECK(when >= now_) << "cannot schedule in the past: when=" << when
                          << " now=" << now_;
  const std::uint32_t slot =
      BindSlot(priority, std::move(fn), RegisterEventKind(kind), owner);
  Slot& s = slots_[slot];
  s.flags |= static_cast<std::uint8_t>(kArmed | kOneShot);
  const EventId seq = next_seq_++;
  s.pending_seq = seq;
  s.armed_parent = current_fire_seq_;
  Push(QEntry{when, seq, slot, s.generation, priority});
  ++pending_;
  if (recorder_ != nullptr) {
    recorder_->Record(SchedAction::kArm, seq, now_, s.kind, s.owner,
                      current_fire_seq_);
  }
}

std::uint16_t Simulator::RegisterEventKind(std::string_view name) {
  CRN_CHECK(!name.empty()) << "event kind name must be non-empty";
  const auto it = kind_ids_.find(name);
  if (it != kind_ids_.end()) return it->second;
  CRN_CHECK(kind_names_.size() < 0xFFFFU) << "event-kind registry full";
  const auto id = static_cast<std::uint16_t>(kind_names_.size());
  kind_names_.emplace_back(name);
  kind_ids_.emplace(kind_names_.back(), id);
  if (recorder_ != nullptr) recorder_->OnKindRegistered(id, name);
  return id;
}

void Simulator::AttachFlightRecorder(FlightRecorder* recorder) {
  recorder_ = recorder;
  if (recorder_ != nullptr) recorder_->SetKindNames(kind_names_);
}

void Simulator::Push(const QEntry& entry) {
  ++stats_.pushes;
  if (kind_ == SchedulerKind::kReference) {
    ref_queue_.push(entry);
  } else {
    CalPush(entry);
  }
}

bool Simulator::PopLive(QEntry* out) {
  if (kind_ == SchedulerKind::kReference) {
    while (!ref_queue_.empty()) {
      const QEntry entry = ref_queue_.top();
      ref_queue_.pop();
      if (!EntryLive(entry)) {
        ++stats_.stale_skips;
        continue;
      }
      ++stats_.pops;
      *out = entry;
      return true;
    }
    return false;
  }
  while (cal_size_ > 0) {
    std::vector<QEntry>* bucket = CalMinBucket();
    const QEntry entry = bucket->back();
    bucket->pop_back();
    --cal_size_;
    CalMaybeShrink();
    if (!EntryLive(entry)) {
      ++stats_.stale_skips;
      continue;
    }
    ++stats_.pops;
    *out = entry;
    return true;
  }
  return false;
}

bool Simulator::PeekLive(QEntry* out) {
  if (kind_ == SchedulerKind::kReference) {
    while (!ref_queue_.empty()) {
      const QEntry entry = ref_queue_.top();
      if (!EntryLive(entry)) {
        ref_queue_.pop();
        ++stats_.stale_skips;
        continue;
      }
      *out = entry;
      return true;
    }
    return false;
  }
  while (cal_size_ > 0) {
    std::vector<QEntry>* bucket = CalMinBucket();
    const QEntry entry = bucket->back();
    if (!EntryLive(entry)) {
      bucket->pop_back();
      --cal_size_;
      ++stats_.stale_skips;
      continue;
    }
    *out = entry;
    return true;
  }
  return false;
}

void Simulator::RunObservers() {
  in_observer_ = true;
  for (const auto& observer : event_observers_) observer(now_);
  in_observer_ = false;
}

void Simulator::Fire(const QEntry& entry) {
  Slot& s = slots_[entry.slot];
  now_ = entry.time;
  --pending_;
  // Capture recorder fields before the one-shot branch frees the slot.
  const std::uint16_t fired_kind = s.kind;
  double fire_wall_begin = 0.0;
  if (recorder_ != nullptr) {
    recorder_->Record(SchedAction::kFire, entry.seq, entry.time, fired_kind,
                      s.owner, s.armed_parent);
    fire_wall_begin = recorder_->WallNow();
  }
  current_fire_seq_ = entry.seq;
  if ((s.flags & kOneShot) != 0) {
    // Move the callback out and free the slot first so the callback may
    // freely schedule (and even land in this same slot) without aliasing.
    EventFn fn = std::move(s.fn);
    FreeSlotNow(entry.slot);
    RunObservers();
    fn();
  } else {
    // Mark unarmed and bump the generation *before* invoking so the
    // callback can re-arm its own timer.
    s.flags &= static_cast<std::uint8_t>(~kArmed);
    ++s.generation;
    s.flags |= kExecuting;
    RunObservers();
    s.fn();
    // The arena is a deque, so `s` is still valid; the callback may have
    // requested this slot's release (Timer destroyed from inside).
    s.flags &= static_cast<std::uint8_t>(~kExecuting);
    if ((s.flags & kReleaseDeferred) != 0) FreeSlotNow(entry.slot);
  }
  current_fire_seq_ = 0;
  if (recorder_ != nullptr && recorder_->has_wall_probe()) {
    recorder_->AddFireWall(fired_kind, recorder_->WallNow() - fire_wall_begin);
  }
  ++events_executed_;
  if (event_limit_ != 0 && events_executed_ > event_limit_) {
    // Thrown from the event *loop*, after the callback returned — never
    // from inside a callback, so no MAC state is left half-applied.
    throw ContractViolation(  // crn-lint-ok: loop guard, not callback code
        "simulator event limit exceeded — runaway event loop?");
  }
}

bool Simulator::ExecuteNext() {
  QEntry entry;
  if (!PopLive(&entry)) return false;
  Fire(entry);
  return true;
}

TimeNs Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && ExecuteNext()) {
  }
  return now_;
}

TimeNs Simulator::RunUntil(TimeNs deadline) {
  stopped_ = false;
  QEntry entry;
  while (!stopped_ && PeekLive(&entry)) {
    if (entry.time > deadline) break;
    ExecuteNext();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

void Simulator::CalPush(const QEntry& entry) {
  if (cal_size_ + 1 > 2 * cal_buckets_.size()) CalResize(cal_size_ + 1);
  CalInsert(entry);
}

void Simulator::CalInsert(const QEntry& entry) {
  const auto tick = static_cast<std::uint64_t>(entry.time) >> cal_shift_;
  // An insert at or behind the cursor (possible after RunUntil advanced the
  // clock through an idle stretch) clamps the cursor back so the entry can
  // never be stranded behind it.
  if (cal_size_ == 0 || tick < cal_tick_) cal_tick_ = tick;
  std::vector<QEntry>& bucket = cal_buckets_[tick & cal_mask_];
  // Keep the bucket sorted descending by key: back() is the bucket minimum.
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), entry,
      [](const QEntry& a, const QEntry& b) { return b.key() < a.key(); });
  bucket.insert(pos, entry);
  ++cal_size_;
}

auto Simulator::CalMinBucket() -> std::vector<QEntry>* {
  // Dense path: walk the bucket ring one tick at a time. Each tick maps to
  // exactly one bucket, and a bucket's back() is its minimum, so the first
  // back() matching the cursor tick is the global minimum.
  for (std::size_t i = 0; i < cal_buckets_.size(); ++i) {
    std::vector<QEntry>& bucket = cal_buckets_[cal_tick_ & cal_mask_];
    if (!bucket.empty() &&
        (static_cast<std::uint64_t>(bucket.back().time) >> cal_shift_) ==
            cal_tick_) {
      return &bucket;
    }
    ++cal_tick_;
  }
  // Sparse horizon: no event within one full ring rotation of the cursor.
  // Jump the cursor straight to the global minimum (this direct scan is the
  // engine's sparse-queue fallback — O(buckets), amortized by the jump).
  std::vector<QEntry>* best = nullptr;
  for (std::vector<QEntry>& bucket : cal_buckets_) {
    if (bucket.empty()) continue;
    if (best == nullptr || bucket.back().key() < best->back().key()) {
      best = &bucket;
    }
  }
  CRN_CHECK(best != nullptr) << "CalMinBucket on an empty calendar";
  cal_tick_ = static_cast<std::uint64_t>(best->back().time) >> cal_shift_;
  return best;
}

void Simulator::CalMaybeShrink() {
  if (cal_buckets_.size() > kMinCalendarBuckets &&
      cal_size_ < cal_buckets_.size() / 8) {
    CalResize(std::max(kMinCalendarBuckets, 2 * cal_size_));
  }
}

void Simulator::CalResize(std::size_t min_buckets) {
  ++stats_.bucket_resizes;
  std::vector<QEntry> all;
  all.reserve(cal_size_);
  for (std::vector<QEntry>& bucket : cal_buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  std::size_t nbuckets = kMinCalendarBuckets;
  while (nbuckets < min_buckets) nbuckets <<= 1U;
  if (nbuckets != cal_buckets_.size()) {
    cal_buckets_.assign(nbuckets, {});
    cal_mask_ = nbuckets - 1;
  }
  if (all.size() >= 2) {
    TimeNs min_time = all.front().time;
    TimeNs max_time = all.front().time;
    for (const QEntry& entry : all) {
      min_time = std::min(min_time, entry.time);
      max_time = std::max(max_time, entry.time);
    }
    // Bucket width ≈ the mean inter-event gap (rounded up to a power of
    // two), so the dense-path cursor sees about one event per tick. All
    // inputs are deterministic, so the resize schedule is too.
    const std::uint64_t gap =
        static_cast<std::uint64_t>(max_time - min_time) / (all.size() - 1);
    int shift = 0;
    while (shift < kMaxCalendarShift && (1ULL << shift) < gap) ++shift;
    cal_shift_ = shift;
    cal_tick_ = static_cast<std::uint64_t>(min_time) >> cal_shift_;
  } else if (!all.empty()) {
    cal_tick_ = static_cast<std::uint64_t>(all.front().time) >> cal_shift_;
  }
  cal_size_ = 0;
  for (const QEntry& entry : all) CalInsert(entry);
}

}  // namespace crn::sim
