// Deterministic discrete-event simulator with a typed timer API.
//
// Events fire in (time, priority, sequence) order — sim/event_key.h is the
// single definition of that order; priority breaks same-instant ties between
// event *kinds* (e.g. a transmission that ends exactly at a slot boundary
// completes before the new slot's primary-user state applies), and the
// monotone sequence number makes everything else deterministic.
//
// Scheduling surface:
//   * Timer — a move-only handle over an arena slot. Bind() once with a
//     priority and callback, then ArmAt()/ArmAfter()/Disarm() freely:
//     cancel and reschedule are O(1) generation bumps, no hash lookups, and
//     the bound callback is allocated exactly once for the timer's lifetime.
//   * PeriodicTimer — a self-re-arming Timer for slot boundaries. The next
//     occurrence is scheduled after the callback returns (so events the
//     callback schedules take earlier sequence numbers), and Stop() from
//     inside the callback suppresses the re-arm without consuming a
//     sequence number.
//   * ScheduleOnce()/ScheduleOnceAfter() — fire-and-forget one-shots for
//     cold paths (fault timelines, audit strides, snapshot seeds).
//
// Engine: an arena-backed event store (slot + generation liveness, so a
// cancelled or re-armed event is a stale queue entry skipped on pop) under
// one of two queue backends selected by SchedulerKind:
//   * kCalendar — a bucketed calendar queue; O(1) amortized push/pop under
//     the backoff-freeze timer churn CollectionMac generates, with a
//     global-min cursor jump as the sparse-horizon fallback.
//   * kReference — the pre-overhaul binary heap, kept so A/B runs can prove
//     the calendar queue pops in exactly the same order (trace digests must
//     be bit-identical; mirrors the SirEngine::kDirect pattern).
#ifndef CRN_SIM_SIMULATOR_H_
#define CRN_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "sim/callback.h"
#include "sim/event_key.h"
#include "sim/time.h"

namespace crn::sim {

// Same-instant ordering between event kinds; lower fires first.
enum class EventPriority : std::int8_t {
  kTransmissionEnd = 0,  // receptions complete before the slot flips
  kSlotBoundary = 1,     // primary-user state changes
  kTimerExpiry = 2,      // SU backoff expirations observe the new slot state
  kDefault = 3,
};

// Strictly increasing per-schedule sequence number (the EventKey tie-break).
using EventId = std::uint64_t;

// Queue backend. kReference exists for determinism A/B tests only — both
// backends implement the exact same (time, priority, seq) total order.
enum class SchedulerKind : std::uint8_t {
  kCalendar = 0,
  kReference = 1,
};

inline const char* ToString(SchedulerKind kind) {
  return kind == SchedulerKind::kCalendar ? "calendar" : "reference";
}

// Deterministic scheduler work counters — exact functions of (scenario,
// seed), exported as perf.sched_* metrics and budget-gated in CI.
struct SchedStats {
  std::int64_t pushes = 0;          // queue entries enqueued
  std::int64_t pops = 0;            // live entries dequeued (events fired)
  std::int64_t cancels = 0;         // disarms/releases of a pending event
  std::int64_t stale_skips = 0;     // dead entries discarded on pop
  std::int64_t bucket_resizes = 0;  // calendar-queue reorganizations
};

// How a bounded run segment ended (RunUntilEvents): the queue drained, a
// callback called Stop(), or the event budget was reached with live events
// still pending — the checkpoint boundary.
enum class RunStatus : std::uint8_t { kDrained, kStopped, kPaused };

class Timer;
class PeriodicTimer;
class FlightRecorder;
class StateReader;
class StateWriter;

class Simulator {
 public:
  explicit Simulator(SchedulerKind kind = SchedulerKind::kCalendar);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  // Exact count of live pending events (armed timers + unfired one-shots);
  // maintained directly, so cancel-after-pop interleavings cannot skew it.
  [[nodiscard]] std::size_t pending_count() const { return pending_; }
  [[nodiscard]] SchedulerKind scheduler_kind() const { return kind_; }
  [[nodiscard]] const SchedStats& sched_stats() const { return stats_; }

  // Schedules a fire-and-forget `fn` at absolute time `when` (≥ now).
  // Returns the event's sequence number so owners that must survive a
  // checkpoint can re-register the pending one-shot under the same id.
  EventId ScheduleOnce(TimeNs when, EventPriority priority, EventFn fn);

  // Kind/owner-tagged one-shot: identical scheduling semantics, but the
  // event carries a registered kind name and owner node for the flight
  // recorder (src/mac must use this form — `unnamed-timer-kind` rule).
  EventId ScheduleOnce(TimeNs when, EventPriority priority,
                       std::string_view kind, std::int32_t owner, EventFn fn);

  // Schedules a fire-and-forget `fn` after `delay` (≥ 0) from now.
  EventId ScheduleOnceAfter(TimeNs delay, EventPriority priority, EventFn fn) {
    CRN_CHECK(delay >= 0) << "delay=" << delay;
    return ScheduleOnce(now_ + delay, priority, std::move(fn));
  }

  EventId ScheduleOnceAfter(TimeNs delay, EventPriority priority,
                            std::string_view kind, std::int32_t owner,
                            EventFn fn) {
    CRN_CHECK(delay >= 0) << "delay=" << delay;
    return ScheduleOnce(now_ + delay, priority, kind, owner, std::move(fn));
  }

  // Interns `name` (non-empty) into the event-kind registry and returns its
  // stable id. Id 0 is pre-registered as "unnamed" for untagged events.
  // Registration is bind-time (cold-path) work; ids are dense and
  // deterministic — they follow registration order, which follows
  // construction order.
  std::uint16_t RegisterEventKind(std::string_view name);
  [[nodiscard]] const std::vector<std::string>& kind_names() const {
    return kind_names_;
  }

  // Attaches (or detaches, with nullptr) a flight recorder. Every scheduler
  // action hook is gated on this pointer, so a detached run pays one
  // branch per action and records nothing. Attaching mirrors the kind
  // registry into the recorder so dumps outlive the simulator.
  void AttachFlightRecorder(FlightRecorder* recorder);
  [[nodiscard]] FlightRecorder* flight_recorder() const { return recorder_; }

  // Runs until the queue drains or `Stop()` is called. Returns the final
  // simulation time.
  TimeNs Run();

  // Runs until simulated time would exceed `deadline`; events at exactly
  // `deadline` still fire. Returns current time.
  TimeNs RunUntil(TimeNs deadline);

  // Runs until events_executed() reaches `event_target` (a cumulative
  // count), the queue drains, or Stop() is called. Pausing happens strictly
  // between events — current_fire_seq_ is 0 and no callback is mid-flight —
  // so a checkpoint taken at the pause captures a consistent state.
  RunStatus RunUntilEvents(std::uint64_t event_target);

  // --- checkpoint/restore (sim/checkpoint.h, DESIGN.md §14) -------------
  // Writes the event-kind registry ("sim.registry") and the full scheduler
  // state ("sim.core"): clock, sequence counter, executed-event count, work
  // counters, calendar geometry, and every queue entry — live entries keyed
  // by the sequence number their component will re-claim on restore, stale
  // entries kept so post-restore stale-skip counts stay exact. Callable
  // only between events (never from inside a callback).
  void SaveState(StateWriter& writer) const;

  // Restore happens in four phases, in this order:
  //   1. LoadRegistry() — pre-populates the kind registry so components
  //      re-Binding in construction order get their original kind ids;
  //   2. BeginRestore() — loads clock/counters/geometry and stages the
  //      saved queue entries;
  //   3. components re-register every pending event under its original
  //      sequence number (Timer::RestoreArm / RestoreOnce);
  //   4. FinishRestore() — pushes the staged entries against the claimed
  //      slots (CRN_CHECK: every live entry must have been claimed) and
  //      reinstates the saved work counters.
  void LoadRegistry(StateReader& reader);
  void BeginRestore(StateReader& reader);
  // Re-registers a pending one-shot under its saved sequence number. The
  // fire time lives in the staged queue entry; only the callback and its
  // tagging are supplied fresh.
  void RestoreOnce(EventId seq, EventPriority priority, std::string_view kind,
                   std::int32_t owner, EventFn fn);
  void FinishRestore();
  [[nodiscard]] bool restoring() const { return restoring_; }

  // Stops Run()/RunUntil() after the current event completes.
  void Stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  // Hard safety limit on total executed events; a run exceeding it throws
  // (catches accidental infinite event loops in tests). 0 = unlimited.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  // Registers an observer fired once per executed event, after the clock
  // advances and before the callback runs. Observers must not schedule or
  // cancel events (enforced with CRN_CHECK); they exist for audit layers
  // (sim/audit.h) that verify clock monotonicity or fingerprint the event
  // stream.
  void AddEventObserver(std::function<void(TimeNs)> observer) {
    CRN_CHECK(observer != nullptr);
    event_observers_.push_back(std::move(observer));
  }

 private:
  friend class Timer;
  friend class PeriodicTimer;

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFU;
  static constexpr std::size_t kMinCalendarBuckets = 16;
  static constexpr int kInitialCalendarShift = 20;  // ~1 ms buckets
  static constexpr int kMaxCalendarShift = 40;

  enum SlotFlags : std::uint8_t {
    kInUse = 1U << 0U,
    kArmed = 1U << 1U,
    kOneShot = 1U << 2U,
    kExecuting = 1U << 3U,
    kReleaseDeferred = 1U << 4U,
  };

  // Arena slot: callback + priority bound once, generation bumped on every
  // cancel/re-arm/fire so stale queue entries die by comparison, never by
  // lookup. Slots are recycled through a free list; generations survive
  // recycling so entries from a previous tenant can never fire.
  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    // Flight-recorder bookkeeping: the seq of the currently armed entry and
    // the seq of the event whose callback armed it (the causal parent).
    EventId pending_seq = 0;
    EventId armed_parent = 0;
    std::int32_t owner = -1;
    std::uint16_t kind = 0;
    EventPriority priority = EventPriority::kDefault;
    std::uint8_t flags = 0;
  };

  // Queue entry (POD, ~32 B): everything pop needs to order and to check
  // liveness against the arena.
  struct QEntry {
    TimeNs time;
    EventId seq;
    std::uint32_t slot;
    std::uint32_t gen;
    EventPriority priority;

    [[nodiscard]] EventKey key() const {
      return EventKey{time, static_cast<std::int32_t>(priority), seq};
    }
  };
  struct QEntryGreater {
    bool operator()(const QEntry& a, const QEntry& b) const {
      return a.key() > b.key();
    }
  };

  [[nodiscard]] bool EntryLive(const QEntry& e) const {
    return slots_[e.slot].generation == e.gen;
  }

  std::uint32_t AllocSlot();
  void FreeSlotNow(std::uint32_t slot);
  // Timer-facing: bind/arm/disarm/release one slot.
  std::uint32_t BindSlot(EventPriority priority, EventFn fn,
                         std::uint16_t kind = 0, std::int32_t owner = -1);
  void ArmSlot(std::uint32_t slot, TimeNs when);
  bool DisarmSlot(std::uint32_t slot);
  void ReleaseSlot(std::uint32_t slot);
  [[nodiscard]] bool SlotArmed(std::uint32_t slot) const {
    return (slots_[slot].flags & kArmed) != 0;
  }
  [[nodiscard]] EventId SlotPendingSeq(std::uint32_t slot) const {
    return SlotArmed(slot) ? slots_[slot].pending_seq : 0;
  }
  // Restore-path arming: marks the slot armed under the saved sequence
  // number without consuming next_seq_, pushing, or recording — the queue
  // entry is pushed by FinishRestore once every claim is in.
  void RestoreArmSlot(std::uint32_t slot, EventId seq);

  void Push(const QEntry& entry);
  bool PopLive(QEntry* out);
  bool PeekLive(QEntry* out);
  void Fire(const QEntry& entry);
  bool ExecuteNext();
  void RunObservers();

  // Calendar backend.
  void CalPush(const QEntry& entry);
  void CalInsert(const QEntry& entry);
  std::vector<QEntry>* CalMinBucket();
  void CalResize(std::size_t min_buckets);
  void CalMaybeShrink();

  SchedulerKind kind_;
  TimeNs now_ = 0;
  EventId next_seq_ = 1;
  // Seq of the event whose callback is executing (0 outside callbacks) —
  // the causal parent stamped into every arm the callback performs.
  EventId current_fire_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_limit_ = 0;
  std::size_t pending_ = 0;
  bool stopped_ = false;
  bool in_observer_ = false;
  SchedStats stats_;

  // Arena. A deque so slots never relocate: the engine invokes a repeating
  // timer's callback in place, and the callback may allocate new slots.
  std::deque<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;

  // Calendar queue: power-of-two bucket ring, bucket width 1<<cal_shift_ ns,
  // each bucket sorted descending by EventKey so back() is its minimum.
  // cal_tick_ is the cursor (time >> cal_shift_); inserts clamp it back so
  // an event can never land behind the cursor and be missed.
  std::vector<std::vector<QEntry>> cal_buckets_;
  std::uint64_t cal_tick_ = 0;
  std::uint64_t cal_mask_ = 0;
  int cal_shift_ = kInitialCalendarShift;
  std::size_t cal_size_ = 0;

  // Reference backend (binary heap over the same key).
  std::priority_queue<QEntry, std::vector<QEntry>, QEntryGreater> ref_queue_;

  std::vector<std::function<void(TimeNs)>> event_observers_;

  // Event-kind registry (id 0 = "unnamed") + optional flight recorder.
  std::vector<std::string> kind_names_{"unnamed"};
  std::map<std::string, std::uint16_t, std::less<>> kind_ids_{{"unnamed", 0}};
  FlightRecorder* recorder_ = nullptr;

  // --- restore staging (BeginRestore .. FinishRestore) ------------------
  // A saved queue entry. Live entries are matched to the slot that claimed
  // their seq; stale entries are re-pushed against the dead sentinel slot so
  // post-restore pops skip them exactly as the uninterrupted run would.
  struct SavedEntry {
    TimeNs time = 0;
    EventId seq = 0;
    EventId armed_parent = 0;
    EventPriority priority = EventPriority::kDefault;
    bool live = false;
  };
  bool restoring_ = false;
  std::vector<SavedEntry> staged_entries_;
  std::map<EventId, std::uint32_t> restore_claims_;  // seq -> armed slot
  std::uint32_t sentinel_slot_ = kNoSlot;
  SchedStats saved_stats_;
  std::uint64_t saved_cal_tick_ = 0;
  std::size_t saved_cal_size_ = 0;
};

// Move-only handle to one arena slot. Bind() allocates the slot and stores
// the callback + priority once; ArmAt()/ArmAfter() (re)schedule it, Disarm()
// cancels, and destruction releases the slot (cancelling any pending fire).
// Destroying a Timer from inside its own callback is safe: the release is
// deferred until the callback returns.
class Timer {
 public:
  Timer() = default;
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&& other) noexcept : sim_(other.sim_), slot_(other.slot_) {
    other.sim_ = nullptr;
    other.slot_ = Simulator::kNoSlot;
  }
  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      Release();
      sim_ = other.sim_;
      slot_ = other.slot_;
      other.sim_ = nullptr;
      other.slot_ = Simulator::kNoSlot;
    }
    return *this;
  }
  ~Timer() { Release(); }

  // Allocates the slot and stores `fn` + `priority` for the timer's
  // lifetime. A Timer is bound at most once.
  void Bind(Simulator& sim, EventPriority priority, EventFn fn) {
    CRN_CHECK(sim_ == nullptr) << "Timer is already bound";
    sim_ = &sim;
    slot_ = sim.BindSlot(priority, std::move(fn));
  }

  // Kind/owner-tagged bind: registers `kind` (non-empty) and stamps it plus
  // the owning node id into every record this timer produces. The flight
  // recorder's causality threading needs no further cooperation from the
  // call site — parent links come from the arming context automatically.
  void Bind(Simulator& sim, EventPriority priority, std::string_view kind,
            std::int32_t owner, EventFn fn) {
    CRN_CHECK(sim_ == nullptr) << "Timer is already bound";
    sim_ = &sim;
    slot_ =
        sim.BindSlot(priority, std::move(fn), sim.RegisterEventKind(kind), owner);
  }

  [[nodiscard]] bool bound() const { return sim_ != nullptr; }
  [[nodiscard]] bool armed() const {
    return sim_ != nullptr && sim_->SlotArmed(slot_);
  }

  // Sequence number of the pending fire (0 when unarmed) — what a component
  // saves so the restore path can re-claim the exact queue entry.
  [[nodiscard]] EventId pending_seq() const {
    return sim_ == nullptr ? 0 : sim_->SlotPendingSeq(slot_);
  }

  // Restore-path arm: re-claims the saved sequence number. Valid only
  // between Simulator::BeginRestore and FinishRestore.
  void RestoreArm(EventId seq) {
    CRN_CHECK(sim_ != nullptr) << "RestoreArm on an unbound Timer";
    sim_->RestoreArmSlot(slot_, seq);
  }

  // Schedules the bound callback at absolute time `when` (≥ now). If the
  // timer is already armed this is an O(1) reschedule.
  void ArmAt(TimeNs when) {
    CRN_CHECK(sim_ != nullptr) << "ArmAt on an unbound Timer";
    sim_->ArmSlot(slot_, when);
  }

  // Schedules the bound callback after `delay` (≥ 0) from now.
  void ArmAfter(TimeNs delay) {
    CRN_CHECK(delay >= 0) << "delay=" << delay;
    CRN_CHECK(sim_ != nullptr) << "ArmAfter on an unbound Timer";
    sim_->ArmSlot(slot_, sim_->now() + delay);
  }

  // Cancels the pending fire, if any. Returns whether the timer was armed.
  bool Disarm() {
    CRN_CHECK(sim_ != nullptr) << "Disarm on an unbound Timer";
    return sim_->DisarmSlot(slot_);
  }

  // Returns the timer to the unbound state, cancelling any pending fire and
  // releasing the arena slot. Equivalent to destruction; idempotent.
  void Release() {
    if (sim_ != nullptr) {
      sim_->ReleaseSlot(slot_);
      sim_ = nullptr;
      slot_ = Simulator::kNoSlot;
    }
  }

 private:
  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = Simulator::kNoSlot;
};

// A Timer that re-arms itself every `period` after the callback returns —
// the re-arm consumes the next sequence number *after* any events the
// callback scheduled, which is what slot-boundary determinism requires.
// Stop() from inside the callback suppresses the re-arm. Non-movable: the
// internal trampoline captures `this`.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  PeriodicTimer(PeriodicTimer&&) = delete;
  PeriodicTimer& operator=(PeriodicTimer&&) = delete;

  void Bind(Simulator& sim, EventPriority priority, EventFn fn) {
    CRN_CHECK(static_cast<bool>(fn));
    fn_ = std::move(fn);
    timer_.Bind(sim, priority, EventFn([this] { OnFire(); }));
  }

  void Bind(Simulator& sim, EventPriority priority, std::string_view kind,
            std::int32_t owner, EventFn fn) {
    CRN_CHECK(static_cast<bool>(fn));
    fn_ = std::move(fn);
    timer_.Bind(sim, priority, kind, owner, EventFn([this] { OnFire(); }));
  }

  [[nodiscard]] bool bound() const { return timer_.bound(); }

  // Fires first at absolute time `first`, then every `period` until Stop().
  void Start(TimeNs first, TimeNs period) {
    CRN_CHECK(period > 0) << "period=" << period;
    period_ = period;
    running_ = true;
    timer_.ArmAt(first);
  }

  void Stop() {
    running_ = false;
    timer_.Disarm();
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] TimeNs period() const { return period_; }
  [[nodiscard]] EventId pending_seq() const { return timer_.pending_seq(); }

  // Restore-path start: resumes the period and re-claims the pending fire's
  // saved sequence number. A running PeriodicTimer is always armed between
  // events, so a checkpointed one always has a pending seq to re-claim.
  void RestoreRunning(TimeNs period, EventId seq) {
    CRN_CHECK(period > 0) << "period=" << period;
    period_ = period;
    running_ = true;
    timer_.RestoreArm(seq);
  }

 private:
  void OnFire() {
    fn_();
    if (running_) timer_.ArmAfter(period_);
  }

  Timer timer_;
  EventFn fn_;
  TimeNs period_ = 0;
  bool running_ = false;
};

}  // namespace crn::sim

#endif  // CRN_SIM_SIMULATOR_H_
