// Deterministic discrete-event simulator.
//
// Events fire in (time, priority, sequence) order; priority breaks
// same-instant ties between event *kinds* (e.g. a transmission that ends
// exactly at a slot boundary completes before the new slot's primary-user
// state applies), and the monotone sequence number makes everything else
// deterministic. Scheduled events can be cancelled; cancellation is lazy
// (cancelled entries are skipped on pop), which keeps Cancel O(1).
#ifndef CRN_SIM_SIMULATOR_H_
#define CRN_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "sim/time.h"

namespace crn::sim {

// Same-instant ordering between event kinds; lower fires first.
enum class EventPriority : std::int8_t {
  kTransmissionEnd = 0,  // receptions complete before the slot flips
  kSlotBoundary = 1,     // primary-user state changes
  kTimerExpiry = 2,      // SU backoff expirations observe the new slot state
  kDefault = 3,
};

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  [[nodiscard]] std::size_t pending_count() const { return queue_.size() - cancelled_.size(); }

  // Schedules `fn` at absolute time `when` (≥ now). Returns an id usable
  // with Cancel().
  EventId ScheduleAt(TimeNs when, EventPriority priority, std::function<void()> fn);

  // Schedules `fn` after `delay` (≥ 0) from now.
  EventId ScheduleAfter(TimeNs delay, EventPriority priority, std::function<void()> fn) {
    CRN_CHECK(delay >= 0) << "delay=" << delay;
    return ScheduleAt(now_ + delay, priority, std::move(fn));
  }

  // Cancels a pending event. Cancelling an already-fired or already-
  // cancelled id is a no-op (returns false).
  bool Cancel(EventId id);

  // Runs until the queue drains or `Stop()` is called. Returns the final
  // simulation time.
  TimeNs Run();

  // Runs until simulated time would exceed `deadline`; events at exactly
  // `deadline` still fire. Returns current time.
  TimeNs RunUntil(TimeNs deadline);

  // Stops Run()/RunUntil() after the current event completes.
  void Stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  // Hard safety limit on total executed events; a run exceeding it throws
  // (catches accidental infinite event loops in tests). 0 = unlimited.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  // Registers an observer fired once per executed event, after the clock
  // advances and before the callback runs. Observers must not schedule or
  // cancel events; they exist for audit layers (sim/audit.h) that verify
  // clock monotonicity or fingerprint the event stream.
  void AddEventObserver(std::function<void(TimeNs)> observer) {
    CRN_CHECK(observer != nullptr);
    event_observers_.push_back(std::move(observer));
  }

 private:
  struct Entry {
    TimeNs time;
    EventPriority priority;
    EventId id;  // doubles as the sequence number (strictly increasing)
    // Ordering for a max-heap turned min-heap: later entries are "less".
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (priority != other.priority) return priority > other.priority;
      return id > other.id;
    }
  };

  bool ExecuteNext();

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_limit_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry> queue_;
  // id -> callback for pending events; erased on fire/cancel. Lookup-only
  // containers: never iterated, so their unordered layout cannot leak into
  // simulation-visible state.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  std::unordered_set<EventId> cancelled_;
  std::vector<std::function<void(TimeNs)>> event_observers_;
};

}  // namespace crn::sim

#endif  // CRN_SIM_SIMULATOR_H_
