// Simulation clock. All times are signed 64-bit nanoseconds, which keeps
// event ordering exact (no floating-point ties) while leaving headroom for
// ~292 years of simulated time.
#ifndef CRN_SIM_TIME_H_
#define CRN_SIM_TIME_H_

#include <cstdint>

namespace crn::sim {

using TimeNs = std::int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

constexpr double ToMilliseconds(TimeNs t) { return static_cast<double>(t) / kMillisecond; }
constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / kSecond; }
constexpr TimeNs FromMilliseconds(double ms) {
  return static_cast<TimeNs>(ms * static_cast<double>(kMillisecond));
}

}  // namespace crn::sim

#endif  // CRN_SIM_TIME_H_
