// Physical (SIR) interference model of §III.
//
// A transmission from x to y with power P succeeds iff
//     P·D(x,y)^{-α} / Σ_{other active transmitters k} P_k·D(k,y)^{-α} ≥ η
// where the sum runs over *all* concurrently active transmitters, primary
// and secondary (eqs. (1)–(2) of the paper). With no interferers the SIR is
// +∞ (the model has no noise floor, matching the paper).
#ifndef CRN_SPECTRUM_INTERFERENCE_H_
#define CRN_SPECTRUM_INTERFERENCE_H_

#include <limits>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "geom/vec2.h"

namespace crn::spectrum {

// Path-loss law P·d^{-α}. The paper requires α > 2 for its zeta-function
// bound to converge; we enforce that here as well.
class PathLoss {
 public:
  explicit PathLoss(double alpha)
      : alpha_(alpha), neg_half_alpha_(-alpha / 2.0), alpha_is_four_(alpha == 4.0) {
    CRN_CHECK(alpha > 2.0) << "path loss exponent must exceed 2 (paper §III)";
  }

  [[nodiscard]] double alpha() const { return alpha_; }

  // Received power at distance `distance` from a transmitter of power
  // `power`. Distances below kMinDistance are clamped to keep the model
  // finite for co-located points (cannot occur for distinct deployed nodes
  // with probability 1, but guards degenerate configs).
  [[nodiscard]] double ReceivedPower(double power, double distance) const {
    return ReceivedPowerSquared(power, distance * distance);
  }

  // Same, from a *squared* distance — the hot-path form: P·(d²)^{-α/2}
  // needs no sqrt, and α = 4 (the paper's default) reduces to a division.
  [[nodiscard]] double ReceivedPowerSquared(double power, double distance_sq) const {
    CRN_DCHECK(power >= 0.0);
    const double d2 =
        distance_sq < kMinDistance * kMinDistance ? kMinDistance * kMinDistance
                                                  : distance_sq;
    if (alpha_is_four_) return power / (d2 * d2);
    return power * std::pow(d2, neg_half_alpha_);
  }

  static constexpr double kMinDistance = 1e-6;

 private:
  double alpha_;
  double neg_half_alpha_;
  bool alpha_is_four_;
};

// One active transmitter as seen by the SIR evaluator.
struct ActiveTransmitter {
  geom::Vec2 position;
  double power = 0.0;
};

// Stateless SIR computations over explicit transmitter lists. The MAC layer
// keeps the active lists; this class owns only the math, so it is trivially
// testable against hand-computed values.
class SirEvaluator {
 public:
  explicit SirEvaluator(PathLoss path_loss) : path_loss_(path_loss) {}

  [[nodiscard]] const PathLoss& path_loss() const { return path_loss_; }

  // SIR at `receiver` for the signal from `transmitter` with `signal_power`,
  // against the interference of every entry in `interferers` (the intended
  // transmitter must NOT be in the list). Returns +inf when interference
  // is zero.
  [[nodiscard]] double ComputeSir(geom::Vec2 transmitter, double signal_power,
                                  geom::Vec2 receiver,
                                  const std::vector<ActiveTransmitter>& interferers) const {
    const double signal = path_loss_.ReceivedPowerSquared(
        signal_power, geom::DistanceSquared(transmitter, receiver));
    const double interference = AggregateInterference(receiver, interferers);
    if (interference <= 0.0) return std::numeric_limits<double>::infinity();
    return signal / interference;
  }

  // Aggregate interference power at `receiver` from `interferers`. Uses the
  // sqrt-free ReceivedPowerSquared form throughout — the same expression
  // the MAC hot path evaluates, so values agree bit-for-bit with it.
  [[nodiscard]] double AggregateInterference(
      geom::Vec2 receiver, const std::vector<ActiveTransmitter>& interferers) const {
    double interference = 0.0;
    for (const ActiveTransmitter& it : interferers) {
      interference += path_loss_.ReceivedPowerSquared(
          it.power, geom::DistanceSquared(it.position, receiver));
    }
    return interference;
  }

  // Success predicate: SIR ≥ threshold.
  [[nodiscard]] bool TransmissionSucceeds(geom::Vec2 transmitter, double signal_power,
                                          geom::Vec2 receiver, SirThreshold threshold,
                                          const std::vector<ActiveTransmitter>& interferers) const {
    return ComputeSir(transmitter, signal_power, receiver, interferers) >= threshold.linear();
  }

 private:
  PathLoss path_loss_;
};

}  // namespace crn::spectrum

#endif  // CRN_SPECTRUM_INTERFERENCE_H_
