// Interference-field engine: pairwise-gain caching with event-driven SIR
// reevaluation bookkeeping (DESIGN.md §10).
//
// Deployments are static, so the received power P·d^{-α} of every ordered
// (transmitter, receiver) pair is a run constant. PairGainCache computes
// each gain once, on first use, and EvaluateSir becomes a fixed-order sum
// of cached doubles. Because a cached gain is the *same double* the direct
// expression produces (ReceivedPowerSquared over DistanceSquared, identical
// inputs), and the summation order never changes, the cached engine is
// bit-identical to the direct one — min-SIR floors, trace digests and all.
// tests/mac/sir_engine_test.cc pins that equivalence over randomized
// scenarios; tests/spectrum/interference_field_test.cc pins the gains.
//
// Epoch counters support the MAC's dirty-set reevaluation:
//  * change_epoch advances on every event that can LOWER an ongoing
//    reception's SIR (an SU transmission starting, the active-PU set
//    changing). A transmission refloored at epoch E can skip any later
//    refloor still at epoch E: its interferer set has only shrunk since
//    (ends and aborts remove terms; all terms are nonnegative), so its SIR
//    only rose and min(min_sir, sir_now) == min_sir exactly — the skip is
//    bit-exact, not approximate.
//  * pu_epoch advances only when the active-PU set changes. The field sums
//    PU interference first (ascending PU id, the active-list order) and
//    memoizes that prefix per receiver (PuInterference); while pu_epoch is
//    unchanged the memo is the exact same prefix sum a recomputation would
//    produce — and ADDC's sibling serialization makes same-receiver,
//    same-slot evaluations the dominant pattern.
// NotePuSample compares the freshly sampled active list against the
// previous slot's and leaves both epochs alone when the set is unchanged —
// at low activity most slots change nothing and whole refloors vanish.
//
// SirEngine::kDirect computes every gain from positions on every use (no
// cache, no skips, no memos) while keeping the identical summation order —
// the reference the property tests and bench_sim_throughput compare
// against. All work is tallied in FieldWork; the counts are pure functions
// of (scenario, seed), so perf regressions are caught by exact counter
// comparison (tools/bench_delta.py) instead of wall-clock thresholds.
#ifndef CRN_SPECTRUM_INTERFERENCE_FIELD_H_
#define CRN_SPECTRUM_INTERFERENCE_FIELD_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "geom/vec2.h"
#include "sim/checkpoint.h"
#include "spectrum/interference.h"

namespace crn::spectrum {

// Which SIR evaluation engine a run uses. Both produce bit-identical
// results; kDirect exists as the reference/baseline for property tests and
// for before/after work accounting in the throughput bench.
enum class SirEngine : std::uint8_t { kCached, kDirect };

inline const char* ToString(SirEngine engine) {
  return engine == SirEngine::kCached ? "cached" : "direct";
}

// Deterministic work tally for SIR evaluation. Every field is an exact,
// seed-stable operation count (never a wall-clock quantity); RunWithNextHops
// exports them as perf.* counters when a MetricsRegistry is attached.
struct FieldWork {
  std::int64_t sir_evaluations = 0;     // full SIR computations performed
  // Interference terms computed from geometry — one DistanceSquared +
  // ReceivedPowerSquared per count. Cached-gain reads do NOT count here
  // (they are gain_cache_hits): this is the model-evaluation work the
  // engine actually performs, the quantity the ≥3× bench criterion and the
  // CI budget are pinned on.
  std::int64_t sir_terms_evaluated = 0;
  std::int64_t gain_cache_hits = 0;     // cached-gain reads
  std::int64_t gain_cache_misses = 0;   // first-use gain computations
  std::int64_t reeval_skipped = 0;      // refloors skipped via change_epoch
  std::int64_t pu_partials_reused = 0;  // per-receiver PU sums reused via pu_epoch
  std::int64_t su_resumes = 0;          // append-incremental interference resumes
  std::int64_t bound_skips = 0;         // refloors skipped via the SIR lower bound
};

// Lazy receiver-major cache of P·d^{-α} for every ordered (tx, rx) pair
// between two static position sets. Rows materialize on a receiver's first
// lookup — only nodes that actually receive (relays, parents) ever pay for
// one. A quiet NaN marks absent entries; real gains are strictly positive
// (positive power, distance clamped at PathLoss::kMinDistance).
class PairGainCache {
 public:
  PairGainCache(PathLoss loss, double tx_power, std::vector<geom::Vec2> tx_positions,
                std::vector<geom::Vec2> rx_positions)
      : loss_(loss),
        power_(tx_power),
        tx_(std::move(tx_positions)),
        rx_(std::move(rx_positions)),
        rows_(rx_.size()) {
    CRN_CHECK(power_ > 0.0) << "tx power must be positive, got " << power_;
  }

  // Cached lookup; computes and stores the gain on first use.
  [[nodiscard]] double Gain(std::int32_t tx, std::int32_t rx, FieldWork& work) {
    std::vector<double>& row = rows_[static_cast<std::size_t>(rx)];
    if (row.empty()) {
      row.assign(tx_.size(), std::numeric_limits<double>::quiet_NaN());
    }
    double& slot = row[static_cast<std::size_t>(tx)];
    if (std::isnan(slot)) {
      ++work.gain_cache_misses;
      ++work.sir_terms_evaluated;
      slot = Direct(tx, rx);
    } else {
      ++work.gain_cache_hits;
    }
    return slot;
  }

  // The uncached expression — the exact double a Gain() entry holds.
  [[nodiscard]] double Direct(std::int32_t tx, std::int32_t rx) const {
    return loss_.ReceivedPowerSquared(
        power_, geom::DistanceSquared(tx_[static_cast<std::size_t>(tx)],
                                      rx_[static_cast<std::size_t>(rx)]));
  }

  [[nodiscard]] std::int64_t allocated_rows() const {
    std::int64_t rows = 0;
    for (const std::vector<double>& row : rows_) {
      if (!row.empty()) ++rows;
    }
    return rows;
  }

  // Checkpoint support (writes into the caller's open section). Gains are
  // pure functions of the static positions, so only the materialization
  // pattern is serialized — which rows exist and which entries are present —
  // plus an FNV digest of the cached values. LoadFrom re-derives every
  // present entry through Direct() (never Gain(): the rebuild must not
  // perturb the FieldWork counters) and verifies the digest, proving the
  // rebuilt cache is bit-identical to the checkpointed one.
  void SaveTo(sim::StateWriter& writer) const {
    writer.WriteU32(static_cast<std::uint32_t>(rows_.size()));
    writer.WriteU32(static_cast<std::uint32_t>(tx_.size()));
    std::uint64_t digest = 0xCBF29CE484222325ULL;
    for (const std::vector<double>& row : rows_) {
      writer.WriteBool(!row.empty());
      if (row.empty()) continue;
      for (const double value : row) {
        writer.WriteBool(!std::isnan(value));
        if (std::isnan(value)) continue;
        std::uint64_t bits = 0;
        __builtin_memcpy(&bits, &value, sizeof bits);
        digest = (digest ^ bits) * 0x100000001B3ULL;
      }
    }
    writer.WriteU64(digest);
  }

  void LoadFrom(sim::StateReader& reader) {
    const std::uint32_t rx_count = reader.ReadU32();
    const std::uint32_t tx_count = reader.ReadU32();
    if (reader.ok() && (rx_count != rows_.size() || tx_count != tx_.size())) {
      return;  // scenario mismatch; EndSection flags the misalignment
    }
    std::uint64_t digest = 0xCBF29CE484222325ULL;
    for (std::size_t rx = 0; rx < rows_.size() && reader.ok(); ++rx) {
      std::vector<double>& row = rows_[rx];
      row.clear();
      if (!reader.ReadBool()) continue;
      row.assign(tx_.size(), std::numeric_limits<double>::quiet_NaN());
      for (std::size_t tx = 0; tx < tx_.size(); ++tx) {
        if (!reader.ReadBool()) continue;
        const double value = Direct(static_cast<std::int32_t>(tx),
                                    static_cast<std::int32_t>(rx));
        row[tx] = value;
        std::uint64_t bits = 0;
        __builtin_memcpy(&bits, &value, sizeof bits);
        digest = (digest ^ bits) * 0x100000001B3ULL;
      }
    }
    const std::uint64_t saved_digest = reader.ReadU64();
    if (!reader.ok()) return;
    CRN_CHECK(digest == saved_digest)
        << "rebuilt gain cache diverges from the checkpoint (digest "
        << digest << " vs saved " << saved_digest
        << ") — the restored scenario's positions differ from the "
           "checkpointed run's";
  }

 private:
  PathLoss loss_;
  double power_;
  std::vector<geom::Vec2> tx_;
  std::vector<geom::Vec2> rx_;
  std::vector<std::vector<double>> rows_;  // rx-major, lazily allocated
};

// The per-run interference field: SU→SU and PU→SU gain caches plus the
// epoch counters driving the MAC's dirty-set reevaluation. Owns copies of
// the (static) position sets, so it has no lifetime coupling to the MAC's
// vectors.
class InterferenceField {
 public:
  InterferenceField(PathLoss loss, SirEngine engine,
                    const std::vector<geom::Vec2>& su_positions, double su_power,
                    const std::vector<geom::Vec2>& pu_positions, double pu_power)
      : engine_(engine),
        su_gains_(loss, su_power, su_positions, su_positions),
        pu_gains_(pu_positions.empty()
                      ? PairGainCache(loss, su_power, {}, su_positions)
                      : PairGainCache(loss, pu_power, pu_positions, su_positions)),
        pu_sum_(su_positions.size(), 0.0),
        pu_sum_epoch_(su_positions.size(), -1) {}

  [[nodiscard]] SirEngine engine() const { return engine_; }
  [[nodiscard]] FieldWork& work() { return work_; }
  [[nodiscard]] const FieldWork& work() const { return work_; }

  // Received power of SU `tx`'s signal at SU `rx`'s position.
  [[nodiscard]] double SuGain(std::int32_t tx, std::int32_t rx) {
    if (engine_ == SirEngine::kCached) return su_gains_.Gain(tx, rx, work_);
    ++work_.sir_terms_evaluated;
    return su_gains_.Direct(tx, rx);
  }

  // Received power of PU `pu`'s signal at SU `rx`'s position.
  [[nodiscard]] double PuGain(std::int32_t pu, std::int32_t rx) {
    if (engine_ == SirEngine::kCached) return pu_gains_.Gain(pu, rx, work_);
    ++work_.sir_terms_evaluated;
    return pu_gains_.Direct(pu, rx);
  }

  // Aggregate PU interference at SU `rx` from `active_pus` (ascending PU
  // id — the PrimaryNetwork active-list order). The cached engine memoizes
  // the sum per receiver, keyed on pu_epoch: ADDC serializes siblings onto
  // the same parent, so within one slot many evaluations target the same
  // receiver and the memoized double — produced by the identical fixed-order
  // sum — is bit-exact to reuse. The direct engine re-sums every time.
  [[nodiscard]] double PuInterference(std::int32_t rx,
                                      const std::vector<std::int32_t>& active_pus) {
    const auto receiver = static_cast<std::size_t>(rx);
    if (engine_ == SirEngine::kCached && pu_sum_epoch_[receiver] == pu_epoch_) {
      ++work_.pu_partials_reused;
      return pu_sum_[receiver];
    }
    double sum = 0.0;
    for (const std::int32_t pu : active_pus) sum += PuGain(pu, rx);
    if (engine_ == SirEngine::kCached) {
      pu_sum_[receiver] = sum;
      pu_sum_epoch_[receiver] = pu_epoch_;
    }
    return sum;
  }

  // Epoch of the last SIR-lowering event. See the header comment for the
  // exact-skip argument.
  [[nodiscard]] std::int64_t change_epoch() const { return change_epoch_; }
  // Epoch of the last active-PU-set change (invalidates PU prefix memos).
  [[nodiscard]] std::int64_t pu_epoch() const { return pu_epoch_; }

  // A new SU transmission went on the air: every ongoing reception gained
  // an interference term.
  void NoteSuInterfererAdded() { ++change_epoch_; }

  // An SU transmission left the air. The MAC removes it from its active
  // list by swap-and-pop, which reorders the list — stored interference
  // sums built over a prefix of the old order can no longer be extended
  // exactly, so this epoch invalidates them. (It does NOT bump
  // change_epoch: a removal can only raise SIRs, which is what makes the
  // refloor skip exact.)
  void NoteSuInterfererRemoved() { ++shrink_epoch_; }

  // Epoch of the last SU-interferer removal (invalidates append-
  // incremental interference memos).
  [[nodiscard]] std::int64_t shrink_epoch() const { return shrink_epoch_; }

  // A slot boundary resampled PU activity. Bumps both epochs only when the
  // active set actually differs from the previous slot's (the list is in
  // ascending PU id order, so vector equality is set equality). Returns
  // whether it changed.
  bool NotePuSample(const std::vector<std::int32_t>& active) {
    if (active == previous_active_pus_) return false;
    previous_active_pus_ = active;
    ++change_epoch_;
    ++pu_epoch_;
    return true;
  }

  [[nodiscard]] std::int64_t su_rows_allocated() const {
    return su_gains_.allocated_rows();
  }

  // Checkpoint protocol (sim/checkpoint.h, section "field"): work counters,
  // the three epochs, the previous active-PU list, the per-receiver PU-sum
  // memos, and both gain caches' materialization patterns (values are
  // recomputed and digest-verified, see PairGainCache::SaveTo).
  void SaveState(sim::StateWriter& writer) const {
    writer.BeginSection("field");
    writer.WriteI64(work_.sir_evaluations);
    writer.WriteI64(work_.sir_terms_evaluated);
    writer.WriteI64(work_.gain_cache_hits);
    writer.WriteI64(work_.gain_cache_misses);
    writer.WriteI64(work_.reeval_skipped);
    writer.WriteI64(work_.pu_partials_reused);
    writer.WriteI64(work_.su_resumes);
    writer.WriteI64(work_.bound_skips);
    writer.WriteI64(change_epoch_);
    writer.WriteI64(pu_epoch_);
    writer.WriteI64(shrink_epoch_);
    writer.WriteU32(static_cast<std::uint32_t>(previous_active_pus_.size()));
    for (const std::int32_t pu : previous_active_pus_) writer.WriteI32(pu);
    writer.WriteU32(static_cast<std::uint32_t>(pu_sum_.size()));
    for (std::size_t i = 0; i < pu_sum_.size(); ++i) {
      writer.WriteDouble(pu_sum_[i]);
      writer.WriteI64(pu_sum_epoch_[i]);
    }
    su_gains_.SaveTo(writer);
    pu_gains_.SaveTo(writer);
    writer.EndSection();
  }

  void LoadState(sim::StateReader& reader) {
    if (!reader.OpenSection("field")) return;
    FieldWork work;
    work.sir_evaluations = reader.ReadI64();
    work.sir_terms_evaluated = reader.ReadI64();
    work.gain_cache_hits = reader.ReadI64();
    work.gain_cache_misses = reader.ReadI64();
    work.reeval_skipped = reader.ReadI64();
    work.pu_partials_reused = reader.ReadI64();
    work.su_resumes = reader.ReadI64();
    work.bound_skips = reader.ReadI64();
    const std::int64_t change_epoch = reader.ReadI64();
    const std::int64_t pu_epoch = reader.ReadI64();
    const std::int64_t shrink_epoch = reader.ReadI64();
    std::vector<std::int32_t> previous(reader.ReadU32());
    for (std::int32_t& pu : previous) pu = reader.ReadI32();
    const std::uint32_t sum_count = reader.ReadU32();
    if (reader.ok() && sum_count != pu_sum_.size()) {
      reader.EndSection();
      return;
    }
    std::vector<double> sums(pu_sum_.size(), 0.0);
    std::vector<std::int64_t> sum_epochs(pu_sum_epoch_.size(), -1);
    for (std::size_t i = 0; i < sums.size(); ++i) {
      sums[i] = reader.ReadDouble();
      sum_epochs[i] = reader.ReadI64();
    }
    su_gains_.LoadFrom(reader);
    pu_gains_.LoadFrom(reader);
    reader.EndSection();
    if (!reader.ok()) return;
    work_ = work;
    change_epoch_ = change_epoch;
    pu_epoch_ = pu_epoch;
    shrink_epoch_ = shrink_epoch;
    previous_active_pus_ = std::move(previous);
    pu_sum_ = std::move(sums);
    pu_sum_epoch_ = std::move(sum_epochs);
  }

 private:
  SirEngine engine_;
  FieldWork work_;
  PairGainCache su_gains_;
  PairGainCache pu_gains_;
  std::int64_t change_epoch_ = 0;
  std::int64_t pu_epoch_ = 0;
  std::int64_t shrink_epoch_ = 0;
  std::vector<std::int32_t> previous_active_pus_;
  // Per-receiver PU interference sums, valid while pu_sum_epoch_ matches
  // pu_epoch_ (kCached only).
  std::vector<double> pu_sum_;
  std::vector<std::int64_t> pu_sum_epoch_;
};

}  // namespace crn::spectrum

#endif  // CRN_SPECTRUM_INTERFERENCE_FIELD_H_
