// CRN_DCHECK's compiled-away contract, verified independently of the build
// mode: this TU forces NDEBUG before including check.h, so these tests pin
// the release-build behaviour even when the suite is built as Debug (e.g.
// under the asan-ubsan preset). The macro must erase the condition AND any
// streamed message entirely — evaluating either would make hot-path DCHECKs
// have observable side effects that differ between build modes, which is a
// determinism bug, not just a performance one.
#ifndef NDEBUG
#define NDEBUG 1
#endif
#include "common/check.h"

#include <gtest/gtest.h>

namespace crn {
namespace {

TEST(CheckNdebugTest, DcheckDoesNotEvaluateCondition) {
  int evaluations = 0;
  auto touch = [&] {
    ++evaluations;
    return false;
  };
  CRN_DCHECK(touch());
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckNdebugTest, DcheckDoesNotEvaluateStreamedMessage) {
  int evaluations = 0;
  auto describe = [&] {
    ++evaluations;
    return "expensive context";
  };
  CRN_DCHECK(false) << describe();
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckNdebugTest, DcheckNeverThrows) {
  EXPECT_NO_THROW(CRN_DCHECK(false) << "never materialises");
}

TEST(CheckNdebugTest, CheckStaysActiveUnderNdebug) {
  // CRN_CHECK must never compile away: it guards contracts whose violation
  // corrupts simulation results silently.
  EXPECT_THROW(CRN_CHECK(false), ContractViolation);
  int evaluations = 0;
  auto touch = [&] {
    ++evaluations;
    return true;
  };
  CRN_CHECK(touch());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace crn
