#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

namespace crn {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(CRN_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingConditionThrowsContractViolation) {
  EXPECT_THROW(CRN_CHECK(false), ContractViolation);
}

TEST(CheckTest, MessageContainsExpressionAndContext) {
  try {
    const int value = 41;
    CRN_CHECK(value == 42) << "value=" << value;
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value == 42"), std::string::npos);
    EXPECT_NE(what.find("value=41"), std::string::npos);
    EXPECT_NE(what.find("check_test.cc"), std::string::npos);
  }
}

TEST(CheckTest, StreamedMessageNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto side_effect = [&]() {
    ++evaluations;
    return "boom";
  };
  CRN_CHECK(true) << side_effect();
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckTest, DcheckActiveMatchesBuildMode) {
#ifdef NDEBUG
  EXPECT_NO_THROW(CRN_DCHECK(false));
#else
  EXPECT_THROW(CRN_DCHECK(false), ContractViolation);
#endif
}

TEST(CheckTest, DestructorCheckThrowsWhenNoExceptionInFlight) {
  // With no exception unwinding, a failing check inside a destructor takes
  // the normal throwing path (the destructor must opt in via
  // noexcept(false), as check.h's contract documents).
  struct Guard {
    ~Guard() noexcept(false) { CRN_CHECK(false) << "plain destructor failure"; }
  };
  EXPECT_THROW({ Guard guard; }, ContractViolation);
}

TEST(CheckDeathTest, FailureDuringUnwindingTerminatesWithMessage) {
  // A check that fails while another exception is unwinding the stack must
  // not throw a second exception (instant std::terminate with the
  // diagnostic lost); check.h routes it to stderr + deliberate terminate.
  EXPECT_DEATH(
      {
        struct Guard {
          ~Guard() { CRN_CHECK(false) << "failure during unwind"; }
        };
        try {
          Guard guard;
          throw std::runtime_error("primary exception");
        } catch (const std::runtime_error&) {
        }
      },
      "failure during unwind.*during active stack unwinding");
}

}  // namespace
}  // namespace crn
