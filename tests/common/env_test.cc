#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace crn {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  void TearDown() override {
    ::unsetenv("CRN_TEST_VAR");
  }
};

TEST_F(EnvTest, MissingReturnsNullopt) {
  ::unsetenv("CRN_TEST_VAR");
  EXPECT_FALSE(GetEnv("CRN_TEST_VAR").has_value());
}

TEST_F(EnvTest, EmptyTreatedAsMissing) {
  SetEnv("CRN_TEST_VAR", "");
  EXPECT_FALSE(GetEnv("CRN_TEST_VAR").has_value());
}

TEST_F(EnvTest, IntParsing) {
  SetEnv("CRN_TEST_VAR", "42");
  EXPECT_EQ(GetEnvInt("CRN_TEST_VAR", 7), 42);
  SetEnv("CRN_TEST_VAR", "-3");
  EXPECT_EQ(GetEnvInt("CRN_TEST_VAR", 7), -3);
  SetEnv("CRN_TEST_VAR", "12abc");
  EXPECT_EQ(GetEnvInt("CRN_TEST_VAR", 7), 7);  // malformed -> fallback
  ::unsetenv("CRN_TEST_VAR");
  EXPECT_EQ(GetEnvInt("CRN_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, DoubleParsing) {
  SetEnv("CRN_TEST_VAR", "0.25");
  EXPECT_DOUBLE_EQ(GetEnvDouble("CRN_TEST_VAR", 1.0), 0.25);
  SetEnv("CRN_TEST_VAR", "nope");
  EXPECT_DOUBLE_EQ(GetEnvDouble("CRN_TEST_VAR", 1.0), 1.0);
}

TEST_F(EnvTest, BoolParsing) {
  for (const char* truthy : {"1", "true", "yes", "on"}) {
    SetEnv("CRN_TEST_VAR", truthy);
    EXPECT_TRUE(GetEnvBool("CRN_TEST_VAR", false)) << truthy;
  }
  for (const char* falsy : {"0", "false", "no", "off"}) {
    SetEnv("CRN_TEST_VAR", falsy);
    EXPECT_FALSE(GetEnvBool("CRN_TEST_VAR", true)) << falsy;
  }
  SetEnv("CRN_TEST_VAR", "maybe");
  EXPECT_TRUE(GetEnvBool("CRN_TEST_VAR", true));  // malformed -> fallback
}

}  // namespace
}  // namespace crn
