#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace crn {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, NamedStreamsAreIndependentAndStable) {
  const Rng root(7);
  Rng s1 = root.Stream("deployment");
  Rng s1_again = root.Stream("deployment");
  Rng s2 = root.Stream("pu-activity");
  EXPECT_EQ(s1(), s1_again());
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s1() == s2()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, IndexedStreamsDiffer) {
  const Rng root(7);
  Rng r0 = root.Stream("rep", 0);
  Rng r1 = root.Stream("rep", 1);
  EXPECT_NE(r0(), r1());
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanAndRange) {
  Rng rng(5);
  double sum = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.UniformDouble(10.0, 20.0);
    ASSERT_GE(v, 10.0);
    ASSERT_LT(v, 20.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 15.0, 0.05);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 10k draws
}

TEST(RngTest, UniformIntIsUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformInt(kBound)];
  }
  // Chi-square-ish sanity: each bucket within 5% of expectation.
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBound, kSamples * 0.05 / kBound);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  const int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, HashNameIsStable) {
  EXPECT_EQ(HashName("abc"), HashName("abc"));
  EXPECT_NE(HashName("abc"), HashName("abd"));
  EXPECT_NE(HashName(""), HashName("a"));
}

TEST(RngTest, UniformIntBoundOne) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(std::uint64_t{1}), 0u);
  }
}

}  // namespace
}  // namespace crn
