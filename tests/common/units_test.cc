#include "common/units.h"

#include <gtest/gtest.h>

namespace crn {
namespace {

TEST(UnitsTest, DbToLinearKnownValues) {
  EXPECT_DOUBLE_EQ(DbToLinear(0.0), 1.0);
  EXPECT_DOUBLE_EQ(DbToLinear(10.0), 10.0);
  EXPECT_DOUBLE_EQ(DbToLinear(20.0), 100.0);
  EXPECT_NEAR(DbToLinear(3.0), 1.9953, 1e-4);
  EXPECT_NEAR(DbToLinear(-10.0), 0.1, 1e-12);
}

TEST(UnitsTest, LinearToDbRoundTrip) {
  for (double db : {-20.0, -3.0, 0.0, 8.0, 10.0, 16.0}) {
    EXPECT_NEAR(LinearToDb(DbToLinear(db)), db, 1e-9);
  }
}

TEST(UnitsTest, LinearToDbRejectsNonPositive) {
#ifndef NDEBUG
  EXPECT_THROW(LinearToDb(0.0), ContractViolation);
  EXPECT_THROW(LinearToDb(-1.0), ContractViolation);
#endif
}

TEST(SirThresholdTest, FromDbMatchesLinear) {
  const SirThreshold eta = SirThreshold::FromDb(8.0);
  EXPECT_NEAR(eta.linear(), 6.30957, 1e-4);
  EXPECT_NEAR(eta.db(), 8.0, 1e-9);
}

TEST(SirThresholdTest, FromLinear) {
  const SirThreshold eta = SirThreshold::FromLinear(4.0);
  EXPECT_DOUBLE_EQ(eta.linear(), 4.0);
  EXPECT_NEAR(eta.db(), 6.0206, 1e-4);
}

TEST(SirThresholdTest, RejectsNonPositive) {
  EXPECT_THROW(SirThreshold::FromLinear(0.0), ContractViolation);
  EXPECT_THROW(SirThreshold::FromLinear(-2.0), ContractViolation);
}

}  // namespace
}  // namespace crn
