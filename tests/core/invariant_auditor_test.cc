// Runtime invariant auditor: clean runs audit green, seeded violations are
// caught, and attaching the auditor never perturbs the simulation.
#include "core/invariant_auditor.h"

#include <gtest/gtest.h>

#include <string>

#include "core/collection.h"
#include "core/scenario.h"

namespace crn::core {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);  // n = 200
  config.seed = 23;
  return config;
}

// A configuration where every invariant provably holds: the corrected c2
// guarantees Lemma 2, and low p_t keeps the corrected PCR simulable.
ScenarioConfig ProtectedConfig() {
  ScenarioConfig config = SmallConfig();
  config.c2_variant = C2Variant::kCorrected;
  config.pu_activity = 0.05;
  return config;
}

TEST(InvariantAuditorTest, CleanRunReportsOkWithFullCoverage) {
  const Scenario scenario(ProtectedConfig(), 0);
  RunOptions options;
  AuditReport report;
  options.audit_report = &report;
  const CollectionResult result = RunAddc(scenario, options);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // ok() must mean "checked and passed", not "checked nothing".
  EXPECT_GT(report.events_observed, 0u);
  EXPECT_GT(report.tx_starts, 0);
  EXPECT_GT(report.separation_checks, 0);
  EXPECT_GT(report.receptions_checked, 0);
  EXPECT_GT(report.pu_checks, 0);
  EXPECT_GE(report.routing_audits, 1);
  EXPECT_NE(report.trace_digest, 0u);
  EXPECT_NE(report.Summary().find("OK"), std::string::npos);
}

TEST(InvariantAuditorTest, AttachmentDoesNotPerturbTheRun) {
  // The auditor draws from its own RNG stream and never schedules events;
  // an audited run must be bit-identical to an unaudited one.
  const Scenario scenario(SmallConfig(), 0);
  const CollectionResult plain = RunAddc(scenario);
  RunOptions options;
  AuditReport report;
  options.audit_report = &report;
  const CollectionResult audited = RunAddc(scenario, options);
  EXPECT_EQ(plain.mac.finish_time, audited.mac.finish_time);
  EXPECT_EQ(plain.mac.attempts, audited.mac.attempts);
  EXPECT_EQ(plain.mac.outcomes, audited.mac.outcomes);
  EXPECT_EQ(plain.delay_ms, audited.delay_ms);
}

TEST(InvariantAuditorTest, FlagsSeededSeparationViolation) {
  // Raising the required separation far beyond the deployment area makes
  // every concurrent transmission pair a violation — proving the check
  // actually fires (a silently broken check would stay green forever).
  const Scenario scenario(SmallConfig(), 0);
  RunOptions options;
  AuditReport report;
  options.audit_report = &report;
  options.audit.min_separation = scenario.config().area_side * 100.0;
  const CollectionResult result = RunAddc(scenario, options);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(report.separation_violations, 0);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.first_violations.empty());
  EXPECT_NE(report.Summary().find("VIOLATIONS"), std::string::npos);
}

TEST(InvariantAuditorTest, FlagsViolationsWhenSensingIsBlind) {
  // missed_detection = 1.0 makes carrier sensing useless: SUs transmit on
  // top of PUs and each other, so the SIR / PU-protection invariants break
  // and the auditor must see it.
  const Scenario scenario(SmallConfig(), 0);
  RunOptions options;
  options.sensing_missed_detection = 1.0;
  AuditReport report;
  options.audit_report = &report;
  RunAddc(scenario, options);
  EXPECT_GT(report.su_sir_violations + report.pu_protection_violations, 0)
      << report.Summary();
  EXPECT_FALSE(report.ok());
}

TEST(InvariantAuditorTest, RecordedViolationDescriptionsAreCapped) {
  const Scenario scenario(SmallConfig(), 0);
  RunOptions options;
  AuditReport report;
  options.audit_report = &report;
  options.audit.min_separation = scenario.config().area_side * 100.0;
  options.audit.max_recorded_violations = 2;
  RunAddc(scenario, options);
  ASSERT_GT(report.separation_violations, 2);  // counters stay exact
  EXPECT_EQ(report.first_violations.size(), 2u);  // descriptions are capped
}

TEST(InvariantAuditorTest, TraceDigestSeparatesRepetitions) {
  RunOptions options;
  AuditReport first;
  options.audit_report = &first;
  RunAddc(Scenario(SmallConfig(), 0), options);
  AuditReport second;
  options.audit_report = &second;
  RunAddc(Scenario(SmallConfig(), 1), options);
  EXPECT_NE(first.trace_digest, second.trace_digest)
      << "different repetitions must not collide";
}

TEST(InvariantAuditorTest, SeparationCheckAutoDisabledUnderConventionalMac) {
  // Conventional-MAC emulation collides deliberately (slotted backoff);
  // pairwise separation is not an invariant there and must not be checked.
  const Scenario scenario(SmallConfig(), 0);
  RunOptions options;
  options.backoff_granularity = scenario.config().contention_window / 8;
  AuditReport report;
  options.audit_report = &report;
  RunAddc(scenario, options);
  EXPECT_EQ(report.separation_checks, 0);
  EXPECT_EQ(report.separation_violations, 0);
}

}  // namespace
}  // namespace crn::core
