#include "core/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace crn::core {
namespace {

TEST(JainIndexTest, PerfectFairness) {
  const std::vector<double> equal{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(JainIndex(equal), 1.0);
}

TEST(JainIndexTest, MaximalUnfairness) {
  const std::vector<double> skewed{10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(JainIndex(skewed), 0.25);  // 1/k
}

TEST(JainIndexTest, KnownMixedValue) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  // (6)² / (3·14) = 36/42.
  EXPECT_NEAR(JainIndex(values), 36.0 / 42.0, 1e-12);
}

TEST(JainIndexTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(JainIndex(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex(std::vector<double>{7.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(JainIndexTest, RejectsNegativeValues) {
  EXPECT_THROW(JainIndex(std::vector<double>{1.0, -1.0}), ContractViolation);
}

TEST(JainIndexTest, ScaleInvariance) {
  const std::vector<double> a{1.0, 2.0, 5.0};
  const std::vector<double> b{10.0, 20.0, 50.0};
  EXPECT_NEAR(JainIndex(a), JainIndex(b), 1e-12);
}

TEST(SummarizeTest, BasicStatistics) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SampleStats stats = Summarize(values);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_NEAR(stats.stddev, 2.1381, 1e-4);  // unbiased (n-1)
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 9.0);
  EXPECT_EQ(stats.count, 8u);
}

TEST(SummarizeTest, SingleValue) {
  const SampleStats stats = Summarize(std::vector<double>{3.5});
  EXPECT_DOUBLE_EQ(stats.mean, 3.5);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_EQ(stats.count, 1u);
}

TEST(SummarizeTest, Empty) {
  const SampleStats stats = Summarize(std::vector<double>{});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

}  // namespace
}  // namespace crn::core
