#include "core/pcr.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace crn::core {
namespace {

PcrParams Fig4Defaults(double alpha = 4.0) {
  PcrParams params;
  params.pu_power = 10.0;
  params.su_power = 10.0;
  params.pu_radius = 12.0;
  params.su_radius = 10.0;
  params.eta_p = SirThreshold::FromDb(10.0);
  params.eta_s = SirThreshold::FromDb(10.0);
  params.alpha = alpha;
  return params;
}

TEST(C2Test, PaperValueAlphaFour) {
  // c2 = 6 + 6(√3/2)^{-4}(1/2 − 1) = 6 − 6·(16/9)·0.5 = 6 − 16/3.
  EXPECT_NEAR(C2(4.0, C2Variant::kPaper), 6.0 - 16.0 / 3.0, 1e-12);
}

TEST(C2Test, PaperValueAlphaThree) {
  // At α = 3 the (1/(α−2) − 1) term vanishes: c2 = 6 exactly.
  EXPECT_DOUBLE_EQ(C2(3.0, C2Variant::kPaper), 6.0);
}

TEST(C2Test, CorrectedValueAlphaFour) {
  // c2 = 6 + 6(√3/2)^{-4}/2 = 6 + 16/3.
  EXPECT_NEAR(C2(4.0, C2Variant::kCorrected), 6.0 + 16.0 / 3.0, 1e-12);
}

TEST(C2Test, CorrectedAlwaysExceedsPaper) {
  for (double alpha : {2.5, 3.0, 3.5, 4.0}) {
    EXPECT_GT(C2(alpha, C2Variant::kCorrected), C2(alpha, C2Variant::kPaper));
  }
}

// The erratum itself (DESIGN.md §4): the printed constant goes non-positive
// for α ≳ 4.3, where the formula stops denoting any interference bound.
TEST(C2Test, PaperConstantInvalidForLargeAlpha) {
  EXPECT_THROW(C2(4.5, C2Variant::kPaper), ContractViolation);
  EXPECT_THROW(C2(5.0, C2Variant::kPaper), ContractViolation);
  EXPECT_NO_THROW(C2(4.5, C2Variant::kCorrected));
  EXPECT_NO_THROW(C2(6.0, C2Variant::kCorrected));
}

TEST(C2Test, RejectsAlphaAtOrBelowTwo) {
  EXPECT_THROW(C2(2.0, C2Variant::kCorrected), ContractViolation);
  EXPECT_THROW(C2(1.0, C2Variant::kPaper), ContractViolation);
}

TEST(KappaTest, HandComputedFig6Defaults) {
  // Fig. 6 defaults: η = 8 dB, P_p = P_s, R = r = 10, α = 4.
  PcrParams params = Fig4Defaults();
  params.pu_radius = 10.0;
  params.eta_p = SirThreshold::FromDb(8.0);
  params.eta_s = SirThreshold::FromDb(8.0);
  const double c2 = 6.0 - 16.0 / 3.0;
  const double expected = 1.0 + std::pow(c2 * DbToLinear(8.0), 0.25);
  EXPECT_NEAR(Kappa(params, C2Variant::kPaper), expected, 1e-9);
  EXPECT_NEAR(ProperCarrierSensingRange(params, C2Variant::kPaper), expected * 10.0,
              1e-9);
}

TEST(KappaTest, TakesMaxOfBothConstraints) {
  PcrParams params = Fig4Defaults();
  // R = 12 > r = 10 with equal thresholds: the primary constraint wins.
  EXPECT_NEAR(Kappa(params, C2Variant::kPaper) * params.su_radius,
              PrimaryProtectionRange(params, C2Variant::kPaper), 1e-9);
  // Huge η_s flips it to the secondary constraint.
  params.eta_s = SirThreshold::FromDb(30.0);
  EXPECT_NEAR(Kappa(params, C2Variant::kPaper) * params.su_radius,
              SecondarySuccessRange(params, C2Variant::kPaper), 1e-9);
}

// Fig. 4's claims as assertions.
TEST(KappaTest, Fig4PcrLargerAtAlphaThreeThanFour) {
  for (double eta_db : {4.0, 8.0, 10.0, 16.0}) {
    PcrParams p3 = Fig4Defaults(3.0);
    PcrParams p4 = Fig4Defaults(4.0);
    p3.eta_p = p3.eta_s = SirThreshold::FromDb(eta_db);
    p4.eta_p = p4.eta_s = SirThreshold::FromDb(eta_db);
    for (C2Variant variant : {C2Variant::kPaper, C2Variant::kCorrected}) {
      EXPECT_GT(ProperCarrierSensingRange(p3, variant),
                ProperCarrierSensingRange(p4, variant))
          << "eta=" << eta_db << " variant=" << ToString(variant);
    }
  }
}

TEST(KappaTest, Fig4NonDecreasingInEachParameter) {
  const auto pcr = [](auto mutate, double value) {
    PcrParams params = Fig4Defaults();
    mutate(params, value);
    return ProperCarrierSensingRange(params, C2Variant::kPaper);
  };
  auto check_monotone = [&](auto mutate, std::vector<double> values) {
    double prev = -1.0;
    for (double v : values) {
      const double current = pcr(mutate, v);
      EXPECT_GE(current, prev - 1e-12) << "value " << v;
      prev = current;
    }
  };
  // Power monotonicity holds on the swept side P ≥ the other network's
  // power (below it the formula is U-shaped around P_p = P_s via
  // c1 = P_p/max(P_p,P_s); Fig. 4 sweeps upward from equal powers).
  check_monotone([](PcrParams& p, double v) { p.pu_power = v; },
                 {10, 15, 20, 25, 30});
  check_monotone([](PcrParams& p, double v) { p.su_power = v; },
                 {10, 15, 20, 25, 30});
  check_monotone([](PcrParams& p, double v) { p.eta_p = SirThreshold::FromDb(v); },
                 {4, 6, 8, 10, 12, 14, 16});
  check_monotone([](PcrParams& p, double v) { p.eta_s = SirThreshold::FromDb(v); },
                 {4, 6, 8, 10, 12, 14, 16});
}

TEST(KappaTest, InterferenceMarginGrowsRange) {
  const PcrParams params = Fig4Defaults();
  const double tight = ProperCarrierSensingRange(params, C2Variant::kPaper, 1.0);
  const double margined = ProperCarrierSensingRange(params, C2Variant::kPaper, 2.0);
  EXPECT_GT(margined, tight);
  // The margin enters as margin^{1/α} on the range in excess of R (the
  // primary constraint binds at these defaults): (PCR − R) scales by 2^¼.
  const double r_pu = params.pu_radius;
  EXPECT_NEAR((margined - r_pu) / (tight - r_pu), std::pow(2.0, 0.25), 1e-9);
}

TEST(KappaTest, MarginBelowOneRejected) {
  EXPECT_THROW(ProperCarrierSensingRange(Fig4Defaults(), C2Variant::kPaper, 0.5),
               ContractViolation);
}

TEST(KappaTest, RejectsNonPositivePowersAndRadii) {
  PcrParams params = Fig4Defaults();
  params.pu_power = 0.0;
  EXPECT_THROW(Kappa(params, C2Variant::kPaper), ContractViolation);
  params = Fig4Defaults();
  params.su_radius = 0.0;
  EXPECT_THROW(Kappa(params, C2Variant::kPaper), ContractViolation);
}

TEST(KappaTest, KappaAlwaysAboveOne) {
  for (double alpha : {2.5, 3.0, 3.5, 4.0}) {
    PcrParams params = Fig4Defaults(alpha);
    EXPECT_GT(Kappa(params, C2Variant::kPaper), 1.0);
    EXPECT_GT(Kappa(params, C2Variant::kCorrected), 1.0);
  }
}

}  // namespace
}  // namespace crn::core
