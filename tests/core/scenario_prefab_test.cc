// Scenario-prefab cache contracts: the geometry keying rule (which
// ScenarioConfig fields key a prefab and which must not), build-once
// sharing with deterministic hit/miss/bytes accounting, cached ≡ rebuilt
// bit-identity, and the key-mismatch guard on prefab-sharing Scenarios.
#include "core/scenario_prefab.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/collection.h"
#include "core/scenario.h"

namespace crn::core {
namespace {

ScenarioConfig TinyConfig() {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.05);  // n = 100
  config.seed = 7;
  return config;
}

TEST(PrefabKeyTest, GeometryFieldsKeyThePrefab) {
  const ScenarioConfig base = TinyConfig();
  const PrefabKey key = PrefabKey::Of(base, 3);
  EXPECT_EQ(key, PrefabKey::Of(base, 3));
  EXPECT_NE(key, PrefabKey::Of(base, 4));  // repetition is geometry

  ScenarioConfig changed = base;
  changed.seed += 1;
  EXPECT_NE(key, PrefabKey::Of(changed, 3));
  changed = base;
  changed.num_sus += 1;
  EXPECT_NE(key, PrefabKey::Of(changed, 3));
  changed = base;
  changed.num_pus += 1;
  EXPECT_NE(key, PrefabKey::Of(changed, 3));
  changed = base;
  changed.area_side *= 1.5;
  EXPECT_NE(key, PrefabKey::Of(changed, 3));
  changed = base;
  changed.su_radius *= 1.1;
  EXPECT_NE(key, PrefabKey::Of(changed, 3));
}

TEST(PrefabKeyTest, MacAndSpectrumParametersDoNotKeyThePrefab) {
  // The four Fig.-6 axes that sweep MAC/spectrum parameters only — τ_c,
  // p_a, PU power, SIR thresholds — must map to the same prefab, plus the
  // other simulation-side knobs.
  const ScenarioConfig base = TinyConfig();
  const PrefabKey key = PrefabKey::Of(base, 0);
  ScenarioConfig changed = base;
  changed.contention_window *= 2;
  changed.pu_activity = 0.9;
  changed.pu_power = 25.0;
  changed.eta_p_db = 11.0;
  changed.eta_s_db = 5.0;
  changed.su_power = 3.0;
  changed.alpha = 3.0;
  changed.fairness_wait = false;
  changed.direct_sir_engine = true;
  changed.reference_scheduler = true;
  EXPECT_EQ(key, PrefabKey::Of(changed, 0));
}

TEST(ScenarioPrefabTest, BuildMatchesLegacyScenarioDeployment) {
  const ScenarioConfig config = TinyConfig();
  const auto prefab = ScenarioPrefab::Build(config, 2);
  const Scenario scenario(config, 2);  // builds its own prefab internally
  EXPECT_EQ(prefab->su_positions, scenario.su_positions());
  EXPECT_EQ(prefab->pu_positions, scenario.pu_positions());
  EXPECT_EQ(prefab->graph->StructureDigest(),
            scenario.secondary_graph().StructureDigest());
  EXPECT_EQ(prefab->GeometryDigest(),
            scenario.prefab()->GeometryDigest());
  EXPECT_GT(prefab->ApproxBytes(), 0);
  // The prebuilt tree is the CDS tree the run would have built.
  prefab->tree->Validate(*prefab->graph);
  EXPECT_EQ(prefab->tree->root(), 0);
}

TEST(ScenarioPrefabCacheTest, SharesOneBuildPerKeyWithExactCounters) {
  const ScenarioConfig base = TinyConfig();
  ScenarioPrefabCache cache;
  const auto first = cache.Get(base, 0);
  const auto again = cache.Get(base, 0);
  EXPECT_EQ(first.get(), again.get());  // same immutable object

  ScenarioConfig mac_only = base;
  mac_only.pu_activity = 0.8;  // not geometry → same prefab
  EXPECT_EQ(cache.Get(mac_only, 0).get(), first.get());

  const auto other_rep = cache.Get(base, 1);  // geometry → fresh build
  EXPECT_NE(other_rep.get(), first.get());

  const ScenarioPrefabCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2);  // two distinct keys
  EXPECT_EQ(stats.hits, 2);    // four requests total
  EXPECT_EQ(stats.bytes, first->ApproxBytes() + other_rep->ApproxBytes());
}

TEST(ScenarioPrefabCacheTest, VerifyModeRechecksEveryHit) {
  ScenarioPrefabCache cache(/*verify=*/true);
  const ScenarioConfig config = TinyConfig();
  cache.Get(config, 0);
  cache.Get(config, 0);
  cache.Get(config, 0);
  EXPECT_EQ(cache.stats().verified, 2);
}

TEST(ScenarioPrefabCacheTest, CachedScenarioRunsBitIdenticalToRebuilt) {
  const ScenarioConfig config = TinyConfig();
  ScenarioPrefabCache cache;
  const Scenario rebuilt(config, 0);
  const Scenario cached(config, 0, cache.Get(config, 0));
  RunOptions options;
  AuditReport rebuilt_report;
  options.audit_report = &rebuilt_report;
  const CollectionResult from_rebuilt = RunAddc(rebuilt, options);
  AuditReport cached_report;
  options.audit_report = &cached_report;
  const CollectionResult from_cached = RunAddc(cached, options);
  EXPECT_EQ(rebuilt_report.trace_digest, cached_report.trace_digest);
  EXPECT_DOUBLE_EQ(from_rebuilt.delay_ms, from_cached.delay_ms);
}

TEST(ScenarioTest, PrefabKeyMismatchIsAContractViolation) {
  const ScenarioConfig config = TinyConfig();
  ScenarioConfig other = config;
  other.seed += 1;  // different geometry
  const auto wrong = ScenarioPrefab::Build(other, 0);
  EXPECT_THROW(Scenario(config, 0, wrong), ContractViolation);
  EXPECT_THROW(Scenario(config, 0, nullptr), ContractViolation);
}

}  // namespace
}  // namespace crn::core
