#include "core/scenario.h"

#include <gtest/gtest.h>

#include "geom/deployment.h"

namespace crn::core {
namespace {

ScenarioConfig TinyConfig() {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.05);  // n = 100
  config.seed = 7;
  return config;
}

TEST(ScenarioConfigTest, PaperDefaultsMatchFig6Caption) {
  const ScenarioConfig config = ScenarioConfig::PaperDefaults();
  EXPECT_EQ(config.num_sus, 2000);
  EXPECT_EQ(config.num_pus, 400);
  EXPECT_DOUBLE_EQ(config.area_side, 250.0);
  EXPECT_DOUBLE_EQ(config.alpha, 4.0);
  EXPECT_DOUBLE_EQ(config.pu_activity, 0.3);
  EXPECT_DOUBLE_EQ(config.eta_p_db, 8.0);
  EXPECT_DOUBLE_EQ(config.eta_s_db, 8.0);
  EXPECT_DOUBLE_EQ(config.pu_power, 10.0);
  EXPECT_DOUBLE_EQ(config.su_power, 10.0);
  EXPECT_DOUBLE_EQ(config.pu_radius, 10.0);
  EXPECT_DOUBLE_EQ(config.su_radius, 10.0);
  EXPECT_EQ(config.slot, sim::kMillisecond);
  EXPECT_EQ(config.contention_window, sim::kMillisecond / 2);
}

TEST(ScenarioConfigTest, ScaledDefaultsPreserveDensities) {
  const ScenarioConfig full = ScenarioConfig::PaperDefaults();
  for (double scale : {0.1, 0.25, 0.5, 1.0}) {
    const ScenarioConfig scaled = ScenarioConfig::ScaledDefaults(scale);
    EXPECT_NEAR(scaled.num_sus / scaled.area(), full.num_sus / full.area(),
                0.02 * full.num_sus / full.area())
        << scale;
    EXPECT_NEAR(scaled.num_pus / scaled.area(), full.num_pus / full.area(),
                0.02 * full.num_pus / full.area())
        << scale;
  }
}

TEST(ScenarioConfigTest, ScaledDefaultsRejectBadScale) {
  EXPECT_THROW(ScenarioConfig::ScaledDefaults(0.0), ContractViolation);
  EXPECT_THROW(ScenarioConfig::ScaledDefaults(1.5), ContractViolation);
}

TEST(ScenarioConfigTest, DerivedQuantities) {
  const ScenarioConfig config = ScenarioConfig::PaperDefaults();
  EXPECT_DOUBLE_EQ(config.area(), 62500.0);
  EXPECT_DOUBLE_EQ(config.c0(), 31.25);
}

TEST(ScenarioTest, SinkAtCenterAndAllInsideArea) {
  const Scenario scenario(TinyConfig(), 0);
  EXPECT_EQ(scenario.sink(), 0);
  EXPECT_EQ(scenario.su_positions()[0], scenario.area().Center());
  EXPECT_EQ(scenario.su_positions().size(),
            static_cast<std::size_t>(TinyConfig().num_sus) + 1);
  EXPECT_EQ(scenario.pu_positions().size(),
            static_cast<std::size_t>(TinyConfig().num_pus));
  for (const auto& p : scenario.su_positions()) {
    EXPECT_TRUE(scenario.area().Contains(p));
  }
}

TEST(ScenarioTest, SecondaryGraphIsConnected) {
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    const Scenario scenario(TinyConfig(), rep);
    EXPECT_TRUE(scenario.secondary_graph().IsConnected(0));
  }
}

TEST(ScenarioTest, DeterministicPerSeedAndRepetition) {
  const Scenario a(TinyConfig(), 2);
  const Scenario b(TinyConfig(), 2);
  EXPECT_EQ(a.su_positions(), b.su_positions());
  EXPECT_EQ(a.pu_positions(), b.pu_positions());
  const Scenario c(TinyConfig(), 3);
  EXPECT_NE(a.su_positions(), c.su_positions());
}

TEST(ScenarioTest, DifferentSeedsDifferentDeployments) {
  ScenarioConfig other = TinyConfig();
  other.seed = 8;
  const Scenario a(TinyConfig(), 0);
  const Scenario b(other, 0);
  EXPECT_NE(a.su_positions(), b.su_positions());
}

TEST(ScenarioTest, PcrMatchesKappaTimesRadius) {
  const ScenarioConfig config = TinyConfig();
  const Scenario scenario(config, 0);
  EXPECT_NEAR(scenario.pcr(), scenario.kappa() * config.su_radius, 1e-12);
  EXPECT_NEAR(scenario.kappa(), Kappa(config.MakePcrParams(), config.c2_variant),
              1e-12);
}

TEST(ScenarioTest, SubCriticalDensityFailsLoudly) {
  ScenarioConfig config = TinyConfig();
  config.num_sus = 20;
  config.area_side = 2000.0;  // hopelessly sparse for r = 10
  config.max_deployment_attempts = 5;
  EXPECT_THROW(Scenario(config, 0), ContractViolation);
}

TEST(ScenarioTest, MakePrimaryNetworkUsesDeployedPositions) {
  const Scenario scenario(TinyConfig(), 0);
  const pu::PrimaryNetwork primary = scenario.MakePrimaryNetwork();
  EXPECT_EQ(primary.count(), TinyConfig().num_pus);
  EXPECT_EQ(primary.positions(), scenario.pu_positions());
}

}  // namespace
}  // namespace crn::core
