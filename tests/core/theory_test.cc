#include "core/theory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "sim/time.h"

namespace crn::core {
namespace {

TEST(TheoryTest, BetaMatchesLemma4Formula) {
  EXPECT_NEAR(BetaX(2.43), 2.0 * M_PI * 2.43 * 2.43 / std::sqrt(3.0) + M_PI * 2.43 + 1.0,
              1e-9);
}

TEST(TheoryTest, BackboneWithinPcrBound) {
  // Lemma 5: β_κ + 12·β_{κ+1}.
  const double kappa = 2.43;
  EXPECT_NEAR(BackboneWithinPcrBound(kappa), BetaX(kappa) + 12.0 * BetaX(kappa + 1.0),
              1e-9);
}

TEST(TheoryTest, MaxTreeDegreeBoundFormula) {
  // Lemma 6: log n + π r²(e² − 1)/(2 c0).
  const double bound = MaxTreeDegreeBound(2000, 10.0, 31.25);
  EXPECT_NEAR(bound,
              std::log(2000.0) + M_PI * 100.0 * (std::exp(2.0) - 1.0) / 62.5, 1e-9);
  // The bound grows with n and r, shrinks with c0.
  EXPECT_GT(MaxTreeDegreeBound(4000, 10.0, 31.25), bound);
  EXPECT_GT(MaxTreeDegreeBound(2000, 12.0, 31.25), bound);
  EXPECT_LT(MaxTreeDegreeBound(2000, 10.0, 62.5), bound);
}

TEST(TheoryTest, SpectrumOpportunityKnownValue) {
  // Lemma 7 at Fig. 6 defaults with the paper's κ ≈ 2.432:
  // p_o = 0.7^{π(24.32)²·400/62500}.
  const double pcr = 24.3211;
  const double p_o = SpectrumOpportunityProbability(pcr, 400, 62500.0, 0.3);
  const double exponent = M_PI * pcr * pcr * 400.0 / 62500.0;
  EXPECT_NEAR(p_o, std::pow(0.7, exponent), 1e-12);
  EXPECT_NEAR(p_o, 0.0144, 2e-3);
}

TEST(TheoryTest, SpectrumOpportunityEdgeCases) {
  EXPECT_DOUBLE_EQ(SpectrumOpportunityProbability(10.0, 0, 100.0, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(SpectrumOpportunityProbability(10.0, 100, 100.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(SpectrumOpportunityProbability(10.0, 100, 100.0, 1.0), 0.0);
}

TEST(TheoryTest, SpectrumOpportunityMonotonicity) {
  const double base = SpectrumOpportunityProbability(20.0, 400, 62500.0, 0.3);
  EXPECT_LT(SpectrumOpportunityProbability(25.0, 400, 62500.0, 0.3), base);  // ↑PCR
  EXPECT_LT(SpectrumOpportunityProbability(20.0, 600, 62500.0, 0.3), base);  // ↑N
  EXPECT_LT(SpectrumOpportunityProbability(20.0, 400, 62500.0, 0.4), base);  // ↑p_t
  EXPECT_GT(SpectrumOpportunityProbability(20.0, 400, 90000.0, 0.3), base);  // ↑A
}

TEST(TheoryTest, ExpectedOpportunityWait) {
  EXPECT_EQ(ExpectedOpportunityWait(sim::kMillisecond, 0.5), 2 * sim::kMillisecond);
  EXPECT_EQ(ExpectedOpportunityWait(sim::kMillisecond, 1.0), sim::kMillisecond);
  EXPECT_THROW(ExpectedOpportunityWait(sim::kMillisecond, 0.0), ContractViolation);
}

TEST(TheoryTest, Theorem1BoundFormula) {
  // (2Δβ_κ + 24β_{κ+1} − 1)·τ/p_o.
  const double delta = 10.0;
  const double kappa = 2.43;
  const double p_o = 0.0144;
  const double slots = 2.0 * delta * BetaX(kappa) + 24.0 * BetaX(kappa + 1.0) - 1.0;
  EXPECT_NEAR(static_cast<double>(Theorem1ServiceBound(delta, kappa, sim::kMillisecond, p_o)),
              slots * sim::kMillisecond / p_o, 1e6);
}

TEST(TheoryTest, Lemma8IsTheorem1WithUnitDegree) {
  EXPECT_EQ(Lemma8ServiceBound(2.43, sim::kMillisecond, 0.01),
            Theorem1ServiceBound(1.0, 2.43, sim::kMillisecond, 0.01));
}

TEST(TheoryTest, Theorem2Composition) {
  const double kappa = 2.43;
  const double p_o = 0.0144;
  const sim::TimeNs bound =
      Theorem2DelayBound(2000, 10.0, 15, kappa, sim::kMillisecond, p_o);
  const sim::TimeNs expected =
      Theorem1ServiceBound(10.0, kappa, sim::kMillisecond, p_o) +
      1985 * Lemma8ServiceBound(kappa, sim::kMillisecond, p_o);
  EXPECT_EQ(bound, expected);
}

TEST(TheoryTest, Theorem2BoundGrowsLinearlyInN) {
  const sim::TimeNs b1 = Theorem2DelayBound(1000, 8.0, 10, 2.43, sim::kMillisecond, 0.01);
  const sim::TimeNs b2 = Theorem2DelayBound(2000, 8.0, 10, 2.43, sim::kMillisecond, 0.01);
  // Doubling n roughly doubles the bound (the Theorem 1 head is shared).
  EXPECT_GT(static_cast<double>(b2), 1.8 * static_cast<double>(b1));
  EXPECT_LT(static_cast<double>(b2), 2.2 * static_cast<double>(b1));
}

TEST(TheoryTest, CapacityFractionConsistentWithDelayBound) {
  // Capacity = n·B / delay ≥ p_o·W/(2β_κ+24β_{κ+1}−1); with Δ_b = 0 and the
  // Theorem 1 head ignored the identity is exact in the n → ∞ limit.
  const double kappa = 2.43;
  const double p_o = 0.0144;
  const double fraction = Theorem2CapacityFraction(kappa, p_o);
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, 1.0);
  const double slots = 2.0 * BetaX(kappa) + 24.0 * BetaX(kappa + 1.0) - 1.0;
  EXPECT_NEAR(fraction, p_o / slots, 1e-12);
}

TEST(TheoryTest, OrderOptimalityCapacityImprovesWithPo) {
  EXPECT_GT(Theorem2CapacityFraction(2.43, 0.1), Theorem2CapacityFraction(2.43, 0.01));
  EXPECT_GT(Theorem2CapacityFraction(2.0, 0.01), Theorem2CapacityFraction(3.0, 0.01));
}

TEST(TheoryTest, InvalidArgumentsRejected) {
  EXPECT_THROW(Theorem1ServiceBound(0.5, 2.43, sim::kMillisecond, 0.01),
               ContractViolation);
  EXPECT_THROW(Theorem1ServiceBound(2.0, 2.43, sim::kMillisecond, 0.0),
               ContractViolation);
  EXPECT_THROW(Theorem2DelayBound(0, 2.0, 0, 2.43, sim::kMillisecond, 0.01),
               ContractViolation);
  EXPECT_THROW(Theorem2DelayBound(10, 2.0, 11, 2.43, sim::kMillisecond, 0.01),
               ContractViolation);
  EXPECT_THROW(MaxTreeDegreeBound(0, 10.0, 31.25), ContractViolation);
  EXPECT_THROW(SpectrumOpportunityProbability(0.0, 10, 100.0, 0.3), ContractViolation);
}

}  // namespace
}  // namespace crn::core
