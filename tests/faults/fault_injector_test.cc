// FaultInjector end-to-end behaviour: the empty-plan identity contract,
// crash -> self-healing repair, graceful degradation on partition, sensing
// bursts, PU perturbation, and faulted-run determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/collection.h"
#include "core/scenario.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "graph/cds_tree.h"
#include "graph/unit_disk_graph.h"
#include "mac/collection_mac.h"
#include "obs/metrics.h"
#include "pu/primary_network.h"
#include "sim/simulator.h"

namespace crn::faults {
namespace {

using geom::Aabb;
using geom::Vec2;

FaultPlan MustParse(const std::string& text) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(ParsePlanText(text, plan, error)) << error;
  return plan;
}

// Line 0 <- 1 <- 2: killing node 1 partitions node 2 from the base station.
struct LineRig {
  LineRig(std::int32_t retx_budget = 0)
      : area(Aabb::Square(60.0)),
        positions{{0, 50}, {8, 50}, {16, 50}},
        graph(positions, area, 10.0),
        primary(PuConfig(), area, std::vector<Vec2>{}),
        mac(simulator, primary, positions, area, 0, {0, 0, 1},
            Config(retx_budget), Rng(23)) {}

  static mac::MacConfig Config(std::int32_t retx_budget) {
    mac::MacConfig config;
    config.pcr = 30.0;
    config.audit_stride = 0;
    config.max_sim_time = 30 * sim::kSecond;
    config.dead_hop_retx_budget = retx_budget;
    return config;
  }
  static pu::PrimaryConfig PuConfig() {
    pu::PrimaryConfig config;
    config.count = 0;
    config.activity = 0.0;
    return config;
  }

  Aabb area;
  std::vector<Vec2> positions;
  graph::UnitDiskGraph graph;
  sim::Simulator simulator;
  pu::PrimaryNetwork primary;
  mac::CollectionMac mac;
};

TEST(FaultInjectorTest, EmptyPlanRunIsDigestIdenticalToPlainRun) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.1);
  config.seed = 51;
  const core::Scenario scenario(config, 0);

  core::RunOptions plain;
  core::AuditReport plain_audit;
  obs::MetricsRegistry plain_metrics;
  plain.audit_report = &plain_audit;
  plain.metrics = &plain_metrics;
  const core::CollectionResult plain_result = core::RunAddc(scenario, plain);

  const FaultPlan empty_plan;
  core::RunOptions faulted = plain;
  core::AuditReport faulted_audit;
  obs::MetricsRegistry faulted_metrics;
  FaultReport report;
  faulted.audit_report = &faulted_audit;
  faulted.metrics = &faulted_metrics;
  faulted.faults = &empty_plan;
  faulted.fault_report = &report;
  const core::CollectionResult faulted_result = core::RunAddc(scenario, faulted);

  // The pinned contract: an empty compiled timeline attaches nothing, so
  // trace digest, metric state, and every result field match exactly.
  EXPECT_EQ(plain_audit.trace_digest, faulted_audit.trace_digest);
  EXPECT_EQ(plain_metrics.Digest(), faulted_metrics.Digest());
  EXPECT_EQ(plain_result.delay_ms, faulted_result.delay_ms);
  EXPECT_EQ(plain_result.mac.attempts, faulted_result.mac.attempts);
  EXPECT_EQ(report.injected_total(), 0);
  EXPECT_DOUBLE_EQ(plain_result.delivery_ratio, 1.0);
  EXPECT_DOUBLE_EQ(faulted_result.delivery_ratio, 1.0);
}

TEST(FaultInjectorTest, CrashedConnectorIsHealedAndCollectionCompletes) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.1);
  config.seed = 52;
  // The audit-green regime of the integration suite: corrected c2 at low
  // p_t (the paper's constant leaves the SIR floors slightly short).
  config.c2_variant = core::C2Variant::kCorrected;
  config.pu_activity = 0.05;
  const core::Scenario scenario(config, 0);
  // Pick a backbone connector with children so the crash actually orphans
  // someone and the repair has work to do.
  const graph::CdsTree tree(scenario.secondary_graph(), scenario.sink());
  graph::NodeId victim = graph::kInvalidNode;
  for (graph::NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.role(v) == graph::NodeRole::kConnector && !tree.children(v).empty()) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidNode);

  FaultPlan plan = MustParse("at 50 crash " + std::to_string(victim) +
                             "\noption repair_delay_ms 1\noption retx_budget 16\n");
  core::RunOptions options;
  core::AuditReport audit;
  FaultReport report;
  options.audit_report = &audit;
  options.faults = &plan;
  options.fault_report = &report;
  const core::CollectionResult result = core::RunAddc(scenario, options);

  EXPECT_TRUE(result.completed) << "self-healing must let the run finish";
  EXPECT_TRUE(audit.ok()) << "routing stayed acyclic through the repair: "
                          << audit.Summary();
  EXPECT_EQ(report.injected[static_cast<int>(FaultKind::kCrash)], 1);
  EXPECT_GE(report.repairs_attempted, 1);
  EXPECT_GE(report.reattached_total, 1) << "the victim's children must re-attach";
  EXPECT_EQ(report.orphaned_now, 0);
  EXPECT_LT(result.delivery_ratio, 1.0) << "the victim's own packet died with it";
  EXPECT_GT(result.delivery_ratio, 0.8);
}

TEST(FaultInjectorTest, RecoveryReconcilesAndCountsInReport) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.1);
  config.seed = 53;
  config.c2_variant = core::C2Variant::kCorrected;
  config.pu_activity = 0.05;
  const core::Scenario scenario(config, 0);
  FaultPlan plan = MustParse(
      "at 20 crash 5\n"
      "at 120 recover 5\n"
      "option repair_delay_ms 1\n"
      "option retx_budget 16\n");
  core::RunOptions options;
  core::AuditReport audit;
  FaultReport report;
  options.audit_report = &audit;
  options.faults = &plan;
  options.fault_report = &report;
  const core::CollectionResult result = core::RunAddc(scenario, options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(audit.ok()) << audit.Summary();
  EXPECT_EQ(report.recoveries, 1);
  EXPECT_EQ(report.injected[static_cast<int>(FaultKind::kRecover)], 1);
}

TEST(FaultInjectorTest, UnrepairablePartitionDegradesToPartialDelivery) {
  // Node 1 dies before anything can be delivered; node 2 is partitioned.
  // With a retransmission budget the head packet is dropped after three
  // failed attempts toward the dead hop and the run terminates gracefully.
  LineRig rig(/*retx_budget=*/3);
  FaultPlan plan = MustParse("at 0.05 crash 1\noption repair_delay_ms 1\n");
  obs::MetricsRegistry metrics;
  FaultInjector injector(plan, Rng(9));
  injector.Attach(rig.simulator, rig.mac, rig.graph, &rig.primary, &metrics);
  ASSERT_TRUE(injector.armed());
  rig.mac.StartSnapshotCollection();  // nodes 1 and 2 each seed one packet
  rig.simulator.Run();

  EXPECT_TRUE(rig.mac.finished()) << "loss accounting must close the run";
  const mac::MacStats& stats = rig.mac.stats();
  EXPECT_EQ(stats.packets_seeded, 2);
  EXPECT_EQ(stats.packets_lost, 2);
  EXPECT_EQ(stats.delivered, 0);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 0.0);
  const FaultReport& report = injector.report();
  EXPECT_GE(report.repairs_attempted, 1);
  EXPECT_EQ(report.reattached_total, 0);
  EXPECT_EQ(report.cascade_escalations, 1) << "local repair must escalate";
  EXPECT_EQ(report.orphaned_now, 1) << "node 2 stays partitioned";
  EXPECT_EQ(
      metrics.GetCounter("faults.injected_total", {{"kind", "crash"}}).value(), 1);
  EXPECT_EQ(metrics.GetCounter("repair.reattached_total").value(), 0);
  EXPECT_EQ(metrics.GetGauge("repair.orphaned_now").value(), 1);
}

TEST(FaultInjectorTest, SensingBurstSwapsAndRestoresDetectorRates) {
  LineRig rig;
  FaultPlan plan = MustParse("at 0 sensing_burst 0.5 0.25 10\n");
  FaultInjector injector(plan, Rng(9));
  injector.Attach(rig.simulator, rig.mac, rig.graph, &rig.primary, nullptr);
  std::vector<std::pair<double, double>> probes;
  rig.simulator.ScheduleOnce(5 * sim::kMillisecond, sim::EventPriority::kDefault, [&] {
    probes.emplace_back(rig.mac.config().sensing_false_alarm,
                        rig.mac.config().sensing_missed_detection);
  });
  rig.simulator.ScheduleOnce(15 * sim::kMillisecond, sim::EventPriority::kDefault, [&] {
    probes.emplace_back(rig.mac.config().sensing_false_alarm,
                        rig.mac.config().sensing_missed_detection);
  });
  // No collection: the MAC must not Stop() the simulator before the burst
  // window closes, so the probe at 15 ms observes the restored rates.
  rig.simulator.Run();
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_DOUBLE_EQ(probes[0].first, 0.5);
  EXPECT_DOUBLE_EQ(probes[0].second, 0.25);
  EXPECT_DOUBLE_EQ(probes[1].first, 0.0) << "base rates restored at burst end";
  EXPECT_DOUBLE_EQ(probes[1].second, 0.0);
  EXPECT_EQ(
      injector.report().injected[static_cast<int>(FaultKind::kSensingBurstStart)], 1);
}

TEST(FaultInjectorTest, PuActivityPerturbationIsWindowed) {
  LineRig rig;
  FaultPlan plan = MustParse("at 0 pu_activity 0.9 10\n");
  FaultInjector injector(plan, Rng(9));
  injector.Attach(rig.simulator, rig.mac, rig.graph, &rig.primary, nullptr);
  std::vector<double> probes;
  rig.simulator.ScheduleOnce(5 * sim::kMillisecond, sim::EventPriority::kDefault,
                           [&] { probes.push_back(rig.primary.config().activity); });
  rig.simulator.ScheduleOnce(15 * sim::kMillisecond, sim::EventPriority::kDefault,
                           [&] { probes.push_back(rig.primary.config().activity); });
  rig.simulator.Run();
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_DOUBLE_EQ(probes[0], 0.9);
  EXPECT_DOUBLE_EQ(probes[1], 0.0) << "original duty cycle restored";
}

TEST(FaultInjectorTest, FaultedRunsAreDeterministicInSeed) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.1);
  config.seed = 54;
  config.pu_activity = 0.1;
  const core::Scenario scenario(config, 0);
  FaultPlan plan = MustParse(
      "gen crash 10 100\n"
      "gen sensing_burst 5 0.3 0.1 40\n"
      "option horizon_ms 600\n"
      "option repair_delay_ms 2\n"
      "option retx_budget 8\n");
  core::RunOptions options;
  options.faults = &plan;
  const core::DeterminismReport determinism =
      core::CheckAddcDeterminism(scenario, options);
  EXPECT_TRUE(determinism.identical)
      << std::hex << determinism.first_digest << " vs " << determinism.second_digest;

  FaultReport first_report;
  FaultReport second_report;
  options.fault_report = &first_report;
  const core::CollectionResult first = core::RunAddc(scenario, options);
  options.fault_report = &second_report;
  const core::CollectionResult second = core::RunAddc(scenario, options);
  EXPECT_EQ(first.delay_ms, second.delay_ms);
  EXPECT_EQ(first.mac.attempts, second.mac.attempts);
  EXPECT_DOUBLE_EQ(first.delivery_ratio, second.delivery_ratio);
  EXPECT_EQ(first_report.injected_total(), second_report.injected_total());
  EXPECT_EQ(first_report.reattached_total, second_report.reattached_total);
  EXPECT_GT(first_report.injected_total(), 0) << "the plan must actually fire";
}

}  // namespace
}  // namespace crn::faults
