// FaultPlan parsing and timeline compilation: the declarative fault format,
// its error reporting, and the (plan, seed) -> timeline determinism the
// whole resilience suite rests on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "faults/fault_plan.h"
#include "sim/time.h"

namespace crn::faults {
namespace {

FaultPlan Parse(const std::string& text) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(ParsePlanText(text, plan, error)) << error;
  return plan;
}

std::string ParseError(const std::string& text) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(ParsePlanText(text, plan, error));
  return error;
}

TEST(FaultPlanParseTest, ParsesEveryDirective) {
  const FaultPlan plan = Parse(
      "# resilience scenario\n"
      "at 10 crash 3\n"
      "at 200 recover 3   # comes back\n"
      "at 50 sensing_burst 0.3 0.1 25\n"
      "at 75 pu_activity 0.9 40\n"
      "gen crash 2.5 150\n"
      "gen sensing_burst 4 0.2 0.05 50\n"
      "option horizon_ms 2000\n"
      "option repair_delay_ms 5\n"
      "option retx_budget 8\n");
  // crash + recover + (burst start/end) + (pu start/end) = 6 scripted events.
  ASSERT_EQ(plan.scripted.size(), 6u);
  EXPECT_EQ(plan.scripted[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.scripted[0].time, 10 * sim::kMillisecond);
  EXPECT_EQ(plan.scripted[0].node, 3);
  EXPECT_EQ(plan.scripted[1].kind, FaultKind::kRecover);
  EXPECT_EQ(plan.scripted[2].kind, FaultKind::kSensingBurstStart);
  EXPECT_DOUBLE_EQ(plan.scripted[2].false_alarm, 0.3);
  EXPECT_DOUBLE_EQ(plan.scripted[2].missed_detection, 0.1);
  EXPECT_EQ(plan.scripted[3].kind, FaultKind::kSensingBurstEnd);
  EXPECT_EQ(plan.scripted[3].time, 75 * sim::kMillisecond);
  EXPECT_EQ(plan.scripted[4].kind, FaultKind::kPuActivityStart);
  EXPECT_DOUBLE_EQ(plan.scripted[4].pu_activity, 0.9);
  EXPECT_EQ(plan.scripted[5].kind, FaultKind::kPuActivityEnd);
  ASSERT_EQ(plan.crash_generators.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.crash_generators[0].rate_per_s, 2.5);
  EXPECT_EQ(plan.crash_generators[0].recover_after, 150 * sim::kMillisecond);
  ASSERT_EQ(plan.burst_generators.size(), 1u);
  EXPECT_EQ(plan.burst_generators[0].duration, 50 * sim::kMillisecond);
  EXPECT_EQ(plan.horizon, 2000 * sim::kMillisecond);
  EXPECT_EQ(plan.repair_delay, 5 * sim::kMillisecond);
  EXPECT_EQ(plan.retx_budget, 8);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanParseTest, PermanentCrashGenerator) {
  const FaultPlan plan = Parse("gen crash 1.0 -1\n");
  ASSERT_EQ(plan.crash_generators.size(), 1u);
  EXPECT_LT(plan.crash_generators[0].recover_after, 0);
}

TEST(FaultPlanParseTest, BlankAndCommentOnlyLinesAreIgnored) {
  const FaultPlan plan = Parse("\n   \n# nothing here\n");
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanParseTest, ErrorsCarryLineNumbers) {
  EXPECT_NE(ParseError("at 10 crash\n").find("line 1"), std::string::npos);
  EXPECT_NE(ParseError("at 10 crash 3\nfrobnicate\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(ParseError("at -5 crash 3\n").find(">= 0 ms"), std::string::npos);
  EXPECT_NE(ParseError("at 10 sensing_burst 1.5 0 10\n").find("[0, 1]"),
            std::string::npos);
  EXPECT_NE(ParseError("gen crash 0 100\n").find("> 0"), std::string::npos);
  EXPECT_NE(ParseError("option retx_budget -3\n").find(">= 0"), std::string::npos);
  EXPECT_NE(ParseError("at 10 crash 3 extra\n").find("trailing"),
            std::string::npos);
  EXPECT_NE(ParseError("option unknown_knob 4\n").find("unknown option"),
            std::string::npos);
}

TEST(FaultPlanParseTest, ErrorsCarryTheColumnOfTheOffendingToken) {
  // One malformed instance of every construct; the expected column is the
  // 1-based start of the token the parser rejected (or one past the line
  // end when the token is missing entirely).
  const struct {
    const char* text;
    const char* location;
  } cases[] = {
      // Missing argument: the column points at the line end.
      {"at 10 crash\n", "line 1, column 12"},
      // Non-numeric where a number is due: the column points at the token.
      {"at x crash 3\n", "line 1, column 4"},
      // Out-of-range value: still the value's own column, not the keyword's.
      {"at -5 crash 3\n", "line 1, column 4"},
      {"at 10 sensing_burst 1.5 0 10\n", "line 1, column 21"},
      {"gen crash 0 100\n", "line 1, column 11"},
      {"option retx_budget -3\n", "line 1, column 20"},
      // Unknown names: the column points at the name.
      {"at 10 frobnicate 3\n", "line 1, column 7"},
      {"gen frobnicate 1 2\n", "line 1, column 5"},
      {"option unknown_knob 4\n", "line 1, column 8"},
      {"frobnicate\n", "line 1, column 1"},
      // Trailing junk after a complete directive.
      {"at 10 crash 3 extra\n", "line 1, column 15"},
      // Errors past line one carry that line's number and a fresh column.
      {"at 10 crash 3\ngen crash\n", "line 2, column 10"},
  };
  for (const auto& test_case : cases) {
    const std::string error = ParseError(test_case.text);
    EXPECT_NE(error.find(test_case.location), std::string::npos)
        << "plan <" << test_case.text << "> produced: " << error;
  }
}

TEST(CompileTimelineTest, EmptyPlanCompilesToEmptyTimeline) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(CompileFaultTimeline(plan, Rng(7), 10, 0).empty());
}

TEST(CompileTimelineTest, ScriptedEventsComeOutSorted) {
  FaultPlan plan = Parse(
      "at 30 crash 2\n"
      "at 10 crash 1\n"
      "at 20 recover 1\n");
  const auto timeline = CompileFaultTimeline(plan, Rng(7), 5, 0);
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].node, 1);
  EXPECT_EQ(timeline[0].kind, FaultKind::kCrash);
  EXPECT_EQ(timeline[1].kind, FaultKind::kRecover);
  EXPECT_EQ(timeline[2].node, 2);
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_GE(timeline[i].time, timeline[i - 1].time);
  }
}

TEST(CompileTimelineTest, RejectsContradictoryScripts) {
  {
    const FaultPlan plan = Parse("at 10 crash 2\nat 20 crash 2\n");
    EXPECT_THROW(CompileFaultTimeline(plan, Rng(7), 5, 0), ContractViolation);
  }
  {
    const FaultPlan plan = Parse("at 10 recover 2\n");  // never crashed
    EXPECT_THROW(CompileFaultTimeline(plan, Rng(7), 5, 0), ContractViolation);
  }
  {
    const FaultPlan plan = Parse("at 10 crash 0\n");  // the base station
    EXPECT_THROW(CompileFaultTimeline(plan, Rng(7), 5, 0), ContractViolation);
  }
  {
    const FaultPlan plan = Parse("at 10 crash 9\n");  // out of range
    EXPECT_THROW(CompileFaultTimeline(plan, Rng(7), 5, 0), ContractViolation);
  }
}

TEST(CompileTimelineTest, GeneratorsAreDeterministicInSeed) {
  const FaultPlan plan = Parse(
      "gen crash 20 50\n"
      "gen sensing_burst 10 0.2 0.1 30\n"
      "option horizon_ms 1000\n");
  const auto first = CompileFaultTimeline(plan, Rng(42), 20, 0);
  const auto second = CompileFaultTimeline(plan, Rng(42), 20, 0);
  ASSERT_EQ(first.size(), second.size());
  ASSERT_FALSE(first.empty()) << "rate 20/s over 1 s should produce arrivals";
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].time, second[i].time);
    EXPECT_EQ(first[i].kind, second[i].kind);
    EXPECT_EQ(first[i].node, second[i].node);
  }
  const auto other_seed = CompileFaultTimeline(plan, Rng(43), 20, 0);
  bool differs = other_seed.size() != first.size();
  for (std::size_t i = 0; !differs && i < first.size(); ++i) {
    differs = other_seed[i].time != first[i].time || other_seed[i].node != first[i].node;
  }
  EXPECT_TRUE(differs) << "different seeds should draw different timelines";
}

TEST(CompileTimelineTest, GeneratedCrashesRespectAlivenessAndSink) {
  FaultPlan plan;
  CrashGenerator gen;
  gen.rate_per_s = 100.0;  // far more arrivals than nodes
  gen.recover_after = -1;  // permanent: the live set only shrinks
  plan.crash_generators.push_back(gen);
  plan.horizon = 1 * sim::kSecond;
  const graph::NodeId n = 6;
  const auto timeline = CompileFaultTimeline(plan, Rng(3), n, 0);
  // At most n-1 crashes (sink excluded), each node at most once.
  EXPECT_LE(timeline.size(), static_cast<std::size_t>(n - 1));
  std::vector<int> crashed(n, 0);
  for (const FaultEvent& event : timeline) {
    ASSERT_EQ(event.kind, FaultKind::kCrash);
    EXPECT_NE(event.node, 0) << "the base station must never be a victim";
    EXPECT_EQ(crashed[event.node], 0) << "node " << event.node << " crashed twice";
    crashed[event.node] = 1;
  }
}

TEST(CompileTimelineTest, RecoveryPairsFollowTheirCrashes) {
  FaultPlan plan;
  CrashGenerator gen;
  gen.rate_per_s = 5.0;
  gen.recover_after = 100 * sim::kMillisecond;
  plan.crash_generators.push_back(gen);
  plan.horizon = 2 * sim::kSecond;
  const auto timeline = CompileFaultTimeline(plan, Rng(11), 8, 0);
  std::vector<sim::TimeNs> crash_time(8, -1);
  for (const FaultEvent& event : timeline) {
    if (event.kind == FaultKind::kCrash) {
      crash_time[event.node] = event.time;
    } else if (event.kind == FaultKind::kRecover) {
      ASSERT_GE(crash_time[event.node], 0);
      EXPECT_EQ(event.time, crash_time[event.node] + gen.recover_after);
      crash_time[event.node] = -1;
    }
  }
}

TEST(CompileTimelineTest, BurstsExpandToPairedStartEnd) {
  FaultPlan plan = Parse("gen sensing_burst 8 0.25 0.05 40\noption horizon_ms 1000\n");
  const auto timeline = CompileFaultTimeline(plan, Rng(5), 4, 0);
  ASSERT_FALSE(timeline.empty());
  std::int64_t depth = 0;
  for (const FaultEvent& event : timeline) {
    if (event.kind == FaultKind::kSensingBurstStart) {
      EXPECT_DOUBLE_EQ(event.false_alarm, 0.25);
      EXPECT_DOUBLE_EQ(event.missed_detection, 0.05);
      ++depth;
    } else if (event.kind == FaultKind::kSensingBurstEnd) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0) << "every burst start needs a matching end";
}

}  // namespace
}  // namespace crn::faults
