#include "geom/deployment.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace crn::geom {
namespace {

TEST(DeploymentTest, UniformCountAndBounds) {
  Rng rng(1);
  const Aabb area{{10.0, 20.0}, {30.0, 50.0}};
  const auto points = UniformDeployment(500, area, rng);
  ASSERT_EQ(points.size(), 500u);
  for (const Vec2& p : points) {
    ASSERT_TRUE(area.Contains(p)) << p;
  }
}

TEST(DeploymentTest, UniformCoversAreaEvenly) {
  Rng rng(2);
  const Aabb area = Aabb::Square(100.0);
  const auto points = UniformDeployment(10000, area, rng);
  // Quadrant counts within 5% of each other.
  int quadrant[4] = {0, 0, 0, 0};
  for (const Vec2& p : points) {
    ++quadrant[(p.x >= 50.0 ? 1 : 0) + (p.y >= 50.0 ? 2 : 0)];
  }
  for (int q : quadrant) {
    EXPECT_NEAR(q, 2500, 200);
  }
}

TEST(DeploymentTest, UniformZeroCount) {
  Rng rng(3);
  EXPECT_TRUE(UniformDeployment(0, Aabb::Square(10.0), rng).empty());
}

TEST(DeploymentTest, JitteredGridCountAndBounds) {
  Rng rng(4);
  const Aabb area = Aabb::Square(100.0);
  const auto points = JitteredGridDeployment(37, area, rng);
  ASSERT_EQ(points.size(), 37u);
  for (const Vec2& p : points) {
    ASSERT_TRUE(area.Contains(p));
  }
}

TEST(DeploymentTest, JitteredGridIsWellSpread) {
  Rng rng(5);
  const Aabb area = Aabb::Square(100.0);
  const auto points = JitteredGridDeployment(100, area, rng);  // 10x10 cells
  // One point per 10x10 cell by construction.
  std::vector<int> cells(100, 0);
  for (const Vec2& p : points) {
    const int cx = std::min(9, static_cast<int>(p.x / 10.0));
    const int cy = std::min(9, static_cast<int>(p.y / 10.0));
    ++cells[cy * 10 + cx];
  }
  for (int c : cells) {
    EXPECT_EQ(c, 1);
  }
}

TEST(DeploymentTest, ClusteredStaysInArea) {
  Rng rng(6);
  const Aabb area = Aabb::Square(50.0);
  const auto points = ClusteredDeployment(300, 4, 8.0, area, rng);
  ASSERT_EQ(points.size(), 300u);
  for (const Vec2& p : points) {
    ASSERT_TRUE(area.Contains(p));
  }
}

TEST(DeploymentTest, ClusteredIsActuallyClustered) {
  Rng rng(7);
  const Aabb area = Aabb::Square(1000.0);
  const auto points = ClusteredDeployment(400, 3, 10.0, area, rng);
  // Mean nearest-neighbor distance should be far below the uniform
  // expectation (~0.5/sqrt(density) = ~25 for 400 points on 1000^2).
  double total_nn = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double best = 1e18;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i != j) best = std::min(best, Distance(points[i], points[j]));
    }
    total_nn += best;
  }
  EXPECT_LT(total_nn / points.size(), 5.0);
}

TEST(ConnectivityTest, SinglePointAndEmptyAreConnected) {
  EXPECT_TRUE(IsUnitDiskConnected({}, Aabb::Square(10.0), 1.0));
  EXPECT_TRUE(IsUnitDiskConnected({{5.0, 5.0}}, Aabb::Square(10.0), 1.0));
}

TEST(ConnectivityTest, LineTopology) {
  const std::vector<Vec2> line{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  EXPECT_TRUE(IsUnitDiskConnected(line, Aabb::Square(4.0), 1.0));
  EXPECT_FALSE(IsUnitDiskConnected(line, Aabb::Square(4.0), 0.9));
}

TEST(ConnectivityTest, TwoIslands) {
  const std::vector<Vec2> points{{0, 0}, {1, 0}, {10, 10}, {11, 10}};
  EXPECT_FALSE(IsUnitDiskConnected(points, Aabb::Square(12.0), 2.0));
  EXPECT_TRUE(IsUnitDiskConnected(points, Aabb::Square(12.0), 15.0));
}

TEST(ConnectivityTest, DenseUniformIsConnected) {
  Rng rng(8);
  const Aabb area = Aabb::Square(50.0);
  // 500 nodes, r=10 on 50x50: supercritical by a wide margin.
  const auto points = UniformDeployment(500, area, rng);
  EXPECT_TRUE(IsUnitDiskConnected(points, area, 10.0));
}

}  // namespace
}  // namespace crn::geom
