#include "geom/packing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "geom/vec2.h"

namespace crn::geom {
namespace {

TEST(PackingTest, BetaKnownValues) {
  // β_x = 2πx²/√3 + πx + 1 (Lemma 4).
  EXPECT_DOUBLE_EQ(Beta(0.0), 1.0);
  EXPECT_NEAR(Beta(1.0), 2.0 * M_PI / std::sqrt(3.0) + M_PI + 1.0, 1e-12);
  EXPECT_NEAR(Beta(2.43), 2.0 * M_PI * 2.43 * 2.43 / std::sqrt(3.0) + M_PI * 2.43 + 1.0,
              1e-9);
}

TEST(PackingTest, BetaIsMonotone) {
  double prev = Beta(0.0);
  for (double x = 0.5; x <= 10.0; x += 0.5) {
    const double next = Beta(x);
    EXPECT_GT(next, prev);
    prev = next;
  }
}

// Lemma 4 as a property: no packing of min-distance-1 points inside a disk
// of radius r_d can exceed Beta(r_d). The hexagonal lattice is the densest,
// so checking it is the strongest static witness.
TEST(PackingTest, Lemma4BoundHoldsForHexLattice) {
  for (double r_d : {1.0, 2.0, 3.5, 5.0, 8.0}) {
    const auto lattice = HexPacking(static_cast<std::int64_t>(r_d) + 2, 1.0);
    std::int64_t inside = 1;  // the origin point itself
    for (const Vec2& p : lattice) {
      if (p.Norm() <= r_d) ++inside;
    }
    EXPECT_LE(inside, Beta(r_d)) << "r_d=" << r_d;
  }
}

TEST(PackingTest, HexLayerCounts) {
  EXPECT_EQ(HexLayerCount(1), 6);
  EXPECT_EQ(HexLayerCount(2), 12);
  EXPECT_EQ(HexLayerCount(5), 30);
}

TEST(PackingTest, HexPackingRingSizes) {
  const auto points = HexPacking(3, 2.0);
  EXPECT_EQ(points.size(), 6u + 12u + 18u);
}

TEST(PackingTest, HexPackingPairwiseSeparation) {
  const double sep = 3.0;
  const auto points = HexPacking(3, sep);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_GE(points[i].Norm(), sep - 1e-9) << "origin too close to " << i;
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      ASSERT_GE(Distance(points[i], points[j]), sep - 1e-9) << i << "," << j;
    }
  }
}

TEST(PackingTest, HexPackingLayerDistancesMatchLemma) {
  const double sep = 2.0;
  const auto points = HexPacking(4, sep);
  // Ring l spans indices [6·(l-1)·l/2 ... ), easier: recompute ring by
  // distance and check the lemma's lower bound (√3/2)·l·sep for l ≥ 2.
  std::size_t index = 0;
  for (std::int64_t l = 1; l <= 4; ++l) {
    for (std::int64_t k = 0; k < HexLayerCount(l); ++k, ++index) {
      EXPECT_GE(points[index].Norm(), HexLayerMinDistance(l, sep) - 1e-9)
          << "ring " << l << " point " << k;
    }
  }
}

TEST(PackingTest, HexInterferenceSumDecreasesWithSeparation) {
  const double s1 = HexInterferenceSum(50, 10.0, 0.0, 4.0);
  const double s2 = HexInterferenceSum(50, 20.0, 0.0, 4.0);
  EXPECT_GT(s1, s2);
  EXPECT_GT(s2, 0.0);
}

TEST(PackingTest, HexInterferenceSumConvergesForAlphaAboveTwo) {
  // Truncation at many layers should be close to truncation at fewer when
  // alpha > 2 (the series converges; Lemma 2 relies on this).
  const double s100 = HexInterferenceSum(100, 10.0, 0.0, 3.0);
  const double s1000 = HexInterferenceSum(1000, 10.0, 0.0, 3.0);
  EXPECT_NEAR(s1000, s100, s100 * 0.01);
}

TEST(PackingTest, HexInterferenceSumRejectsBadInputs) {
  EXPECT_THROW(HexInterferenceSum(10, 5.0, 5.0, 4.0), ContractViolation);
  EXPECT_THROW(HexInterferenceSum(10, 5.0, 0.0, 2.0), ContractViolation);
  EXPECT_THROW(HexLayerMinDistance(0, 1.0), ContractViolation);
}

}  // namespace
}  // namespace crn::geom
