#include "geom/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace crn::geom {
namespace {

std::vector<Vec2> RandomPoints(std::int32_t count, Aabb area, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> points;
  points.reserve(count);
  for (std::int32_t i = 0; i < count; ++i) {
    points.push_back({rng.UniformDouble(area.min.x, area.max.x),
                      rng.UniformDouble(area.min.y, area.max.y)});
  }
  return points;
}

std::vector<std::int32_t> BruteForceDisk(const std::vector<Vec2>& points, Vec2 center,
                                         double radius) {
  std::vector<std::int32_t> result;
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(points.size()); ++i) {
    if (Distance(points[i], center) <= radius) result.push_back(i);
  }
  return result;
}

// Property: grid queries agree with brute force over random point sets,
// query centers, and radii — swept across seeds and cell sizes.
class SpatialGridPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpatialGridPropertyTest, MatchesBruteForce) {
  const Aabb area = Aabb::Square(100.0);
  Rng rng(GetParam() * 977 + 1);
  const auto points = RandomPoints(200, area, GetParam());
  for (double cell_size : {3.0, 10.0, 45.0, 200.0}) {
    const SpatialGrid grid(points, area, cell_size);
    for (int q = 0; q < 20; ++q) {
      const Vec2 center{rng.UniformDouble(-10.0, 110.0), rng.UniformDouble(-10.0, 110.0)};
      const double radius = rng.UniformDouble(0.5, 40.0);
      auto got = grid.QueryDisk(center, radius);
      auto want = BruteForceDisk(points, center, radius);
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, want) << "cell=" << cell_size << " r=" << radius;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialGridPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SpatialGridTest, EmptyPointSet) {
  const SpatialGrid grid({}, Aabb::Square(10.0), 5.0);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.QueryDisk({5.0, 5.0}, 100.0).empty());
}

TEST(SpatialGridTest, BoundaryPointsIncluded) {
  const std::vector<Vec2> points{{0.0, 0.0}, {10.0, 10.0}};
  const SpatialGrid grid(points, Aabb::Square(10.0), 4.0);
  EXPECT_EQ(grid.QueryDisk({0.0, 0.0}, 0.0).size(), 1u);  // exact hit
  EXPECT_EQ(grid.QueryDisk({5.0, 5.0}, 7.08).size(), 2u);
}

TEST(SpatialGridTest, RejectsBadCellSize) {
  EXPECT_THROW(SpatialGrid({}, Aabb::Square(10.0), 0.0), ContractViolation);
  EXPECT_THROW(SpatialGrid({}, Aabb::Square(10.0), -1.0), ContractViolation);
}

TEST(DynamicSpatialGridTest, MembershipLifecycle) {
  const std::vector<Vec2> points{{1, 1}, {2, 2}, {50, 50}, {99, 99}};
  DynamicSpatialGrid grid(points, Aabb::Square(100.0), 10.0);
  EXPECT_EQ(grid.member_count(), 0u);

  grid.Insert(0);
  grid.Insert(2);
  EXPECT_TRUE(grid.Contains(0));
  EXPECT_FALSE(grid.Contains(1));
  EXPECT_EQ(grid.member_count(), 2u);

  std::vector<std::int32_t> hits;
  grid.ForEachMemberInDisk({0, 0}, 5.0, [&](std::int32_t i) { hits.push_back(i); });
  EXPECT_EQ(hits, (std::vector<std::int32_t>{0}));

  grid.Erase(0);
  EXPECT_FALSE(grid.Contains(0));
  hits.clear();
  grid.ForEachMemberInDisk({0, 0}, 200.0, [&](std::int32_t i) { hits.push_back(i); });
  EXPECT_EQ(hits, (std::vector<std::int32_t>{2}));
}

TEST(DynamicSpatialGridTest, DoubleInsertAndEraseAreIdempotent) {
  const std::vector<Vec2> points{{1, 1}, {2, 2}};
  DynamicSpatialGrid grid(points, Aabb::Square(10.0), 5.0);
  grid.Insert(0);
  grid.Insert(0);
  EXPECT_EQ(grid.member_count(), 1u);
  grid.Erase(0);
  grid.Erase(0);
  EXPECT_EQ(grid.member_count(), 0u);
}

TEST(DynamicSpatialGridTest, SwapEraseKeepsOtherMembersFindable) {
  // Points sharing one cell exercise the swap-erase slot fix.
  const std::vector<Vec2> points{{1, 1}, {1.5, 1.5}, {2, 2}};
  DynamicSpatialGrid grid(points, Aabb::Square(10.0), 10.0);
  grid.Insert(0);
  grid.Insert(1);
  grid.Insert(2);
  grid.Erase(0);  // last-inserted member 2 is swapped into slot 0
  grid.Erase(2);
  std::vector<std::int32_t> hits;
  grid.ForEachMemberInDisk({1.5, 1.5}, 5.0, [&](std::int32_t i) { hits.push_back(i); });
  EXPECT_EQ(hits, (std::vector<std::int32_t>{1}));
}

// Property: a random insert/erase workload tracked against a reference set.
TEST(DynamicSpatialGridTest, RandomWorkloadMatchesReference) {
  const Aabb area = Aabb::Square(50.0);
  const auto points = RandomPoints(100, area, 99);
  DynamicSpatialGrid grid(points, area, 7.0);
  std::vector<char> member(points.size(), 0);
  Rng rng(123);
  for (int step = 0; step < 2000; ++step) {
    const auto i = static_cast<std::int32_t>(rng.UniformInt(points.size()));
    if (rng.Bernoulli(0.5)) {
      grid.Insert(i);
      member[i] = 1;
    } else {
      grid.Erase(i);
      member[i] = 0;
    }
    if (step % 100 == 0) {
      const Vec2 center{rng.UniformDouble(0.0, 50.0), rng.UniformDouble(0.0, 50.0)};
      const double radius = rng.UniformDouble(1.0, 25.0);
      std::vector<std::int32_t> got;
      grid.ForEachMemberInDisk(center, radius, [&](std::int32_t v) { got.push_back(v); });
      std::sort(got.begin(), got.end());
      std::vector<std::int32_t> want;
      for (std::int32_t v = 0; v < static_cast<std::int32_t>(points.size()); ++v) {
        if (member[v] && Distance(points[v], center) <= radius) want.push_back(v);
      }
      ASSERT_EQ(got, want) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace crn::geom
