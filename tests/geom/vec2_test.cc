#include "geom/vec2.h"

#include <gtest/gtest.h>

namespace crn::geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
}

TEST(Vec2Test, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot({1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(a.NormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
}

TEST(Vec2Test, DistanceMatchesPythagoras) {
  EXPECT_DOUBLE_EQ(Distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({1.0, 1.0}, {4.0, 5.0}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({2.0, 2.0}, {2.0, 2.0}), 0.0);
}

TEST(AabbTest, Dimensions) {
  const Aabb box{{1.0, 2.0}, {4.0, 6.0}};
  EXPECT_DOUBLE_EQ(box.Width(), 3.0);
  EXPECT_DOUBLE_EQ(box.Height(), 4.0);
  EXPECT_DOUBLE_EQ(box.Area(), 12.0);
  EXPECT_EQ(box.Center(), (Vec2{2.5, 4.0}));
}

TEST(AabbTest, Contains) {
  const Aabb box = Aabb::Square(10.0);
  EXPECT_TRUE(box.Contains({0.0, 0.0}));    // boundary inclusive
  EXPECT_TRUE(box.Contains({10.0, 10.0}));
  EXPECT_TRUE(box.Contains({5.0, 5.0}));
  EXPECT_FALSE(box.Contains({-0.1, 5.0}));
  EXPECT_FALSE(box.Contains({5.0, 10.1}));
}

TEST(AabbTest, SquareAnchoredAtOrigin) {
  const Aabb box = Aabb::Square(250.0);
  EXPECT_EQ(box.min, (Vec2{0.0, 0.0}));
  EXPECT_EQ(box.max, (Vec2{250.0, 250.0}));
  EXPECT_DOUBLE_EQ(box.Area(), 62500.0);
}

}  // namespace
}  // namespace crn::geom
