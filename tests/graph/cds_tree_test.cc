#include "graph/cds_tree.h"

#include <gtest/gtest.h>

#include <queue>

#include "common/rng.h"
#include "geom/deployment.h"

namespace crn::graph {
namespace {

using geom::Aabb;
using geom::Vec2;

UnitDiskGraph RandomConnectedGraph(std::int32_t count, double side, double radius,
                                   std::uint64_t seed) {
  Rng rng(seed);
  const Aabb area = Aabb::Square(side);
  std::vector<Vec2> points;
  do {
    points = geom::UniformDeployment(count, area, rng);
    points[0] = area.Center();  // root/base station at the center
  } while (!geom::IsUnitDiskConnected(points, area, radius));
  return UnitDiskGraph(points, area, radius);
}

// --- MIS properties over random graphs ------------------------------------

class MisPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MisPropertyTest, IndependentMaximalAndDominating) {
  const UnitDiskGraph graph = RandomConnectedGraph(150, 60.0, 10.0, GetParam());
  const BfsLayering bfs = BreadthFirstLayering(graph, 0);
  const std::vector<char> mis = MaximalIndependentSet(graph, bfs);

  ASSERT_TRUE(mis[0]) << "root (rank 0) must be selected";
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (mis[v]) {
      // Independence: no two adjacent members.
      for (NodeId u : graph.Neighbors(v)) {
        ASSERT_FALSE(mis[u]) << "adjacent MIS nodes " << v << ", " << u;
      }
    } else {
      // Maximality + domination: every non-member has a member neighbor.
      bool dominated = false;
      for (NodeId u : graph.Neighbors(v)) {
        if (mis[u]) {
          dominated = true;
          break;
        }
      }
      ASSERT_TRUE(dominated) << "node " << v << " undominated";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

// --- CDS tree properties ----------------------------------------------------

class CdsTreePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdsTreePropertyTest, ValidatePasses) {
  const UnitDiskGraph graph = RandomConnectedGraph(200, 70.0, 10.0, GetParam());
  const CdsTree tree(graph, 0);
  // Validate() checks: parent edges exist, roles alternate
  // dominatee->dominator->connector->dominator, backbone is a connected
  // dominating set, depths consistent.
  EXPECT_NO_THROW(tree.Validate(graph));
}

TEST_P(CdsTreePropertyTest, EveryNodeReachesRoot) {
  const UnitDiskGraph graph = RandomConnectedGraph(120, 50.0, 9.0, GetParam());
  const CdsTree tree(graph, 0);
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    NodeId cursor = v;
    std::int32_t steps = 0;
    while (cursor != 0) {
      cursor = tree.parent(cursor);
      ASSERT_NE(cursor, kInvalidNode);
      ASSERT_LE(++steps, tree.node_count());
    }
    ASSERT_EQ(steps, tree.depth(v));
  }
}

TEST_P(CdsTreePropertyTest, RoleCountsAddUp) {
  const UnitDiskGraph graph = RandomConnectedGraph(150, 60.0, 10.0, GetParam());
  const CdsTree tree(graph, 0);
  EXPECT_EQ(tree.dominator_count() + tree.connector_count() + tree.dominatee_count(),
            tree.node_count());
  EXPECT_GT(tree.dominator_count(), 0);
  // A multi-hop network needs connectors.
  if (tree.max_depth() > 2) {
    EXPECT_GT(tree.connector_count(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdsTreePropertyTest,
                         ::testing::Values(5, 6, 7, 8, 9, 10, 11, 12));

TEST(CdsTreeTest, TreeDepthTracksBfsDepth) {
  const UnitDiskGraph graph = RandomConnectedGraph(250, 80.0, 10.0, 1234);
  const BfsLayering bfs = BreadthFirstLayering(graph, 0);
  const CdsTree tree(graph, 0);
  // The Wan construction's depth is within a small constant factor of the
  // BFS depth (each backbone step descends at least one level per two
  // hops, dominatee adds one hop).
  EXPECT_LE(tree.max_depth(), 2 * bfs.max_level + 2);
  EXPECT_GE(tree.max_depth(), bfs.max_level);
}

TEST(CdsTreeTest, SingletonGraph) {
  const UnitDiskGraph graph({{5.0, 5.0}}, Aabb::Square(10.0), 1.0);
  const CdsTree tree(graph, 0);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.role(0), NodeRole::kDominator);
  EXPECT_EQ(tree.dominator_count(), 1);
  EXPECT_EQ(tree.max_depth(), 0);
  EXPECT_NO_THROW(tree.Validate(graph));
}

TEST(CdsTreeTest, StarTopology) {
  // Root at center, leaves around it: root dominates everything.
  std::vector<Vec2> points{{5, 5}, {5, 6}, {6, 5}, {4, 5}, {5, 4}};
  const UnitDiskGraph graph(points, Aabb::Square(10.0), 1.5);
  const CdsTree tree(graph, 0);
  EXPECT_EQ(tree.role(0), NodeRole::kDominator);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_EQ(tree.role(v), NodeRole::kDominatee);
    EXPECT_EQ(tree.parent(v), 0);
    EXPECT_EQ(tree.depth(v), 1);
  }
  EXPECT_EQ(tree.max_children(), 4);
}

TEST(CdsTreeTest, PathTopologyAlternatesRoles) {
  // 0 - 1 - 2 - 3 - 4 in a line: MIS by rank picks 0, 2, 4.
  std::vector<Vec2> points{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const UnitDiskGraph graph(points, Aabb::Square(5.0), 1.1);
  const CdsTree tree(graph, 0);
  EXPECT_EQ(tree.role(0), NodeRole::kDominator);
  EXPECT_EQ(tree.role(1), NodeRole::kConnector);
  EXPECT_EQ(tree.role(2), NodeRole::kDominator);
  EXPECT_EQ(tree.role(3), NodeRole::kConnector);
  EXPECT_EQ(tree.role(4), NodeRole::kDominator);
  EXPECT_EQ(tree.parent(1), 0);
  EXPECT_EQ(tree.parent(2), 1);
  EXPECT_NO_THROW(tree.Validate(graph));
}

TEST(CdsTreeTest, DeterministicAcrossRebuilds) {
  const UnitDiskGraph graph = RandomConnectedGraph(100, 45.0, 9.0, 777);
  const CdsTree a(graph, 0);
  const CdsTree b(graph, 0);
  for (NodeId v = 0; v < a.node_count(); ++v) {
    ASSERT_EQ(a.parent(v), b.parent(v));
    ASSERT_EQ(a.role(v), b.role(v));
  }
}

// Lemma 1 (observational): a dominator is adjacent to a bounded number of
// connectors. The exact bound of 12 applies to the specific Wan tree; our
// deterministic variant stays in the same ballpark, and regressions that
// explode connector counts would break the delay analysis, so keep a
// generous ceiling under test.
TEST(CdsTreeTest, DominatorAdjacentConnectorsBounded) {
  const UnitDiskGraph graph = RandomConnectedGraph(300, 90.0, 10.0, 4242);
  const CdsTree tree(graph, 0);
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.role(v) != NodeRole::kDominator) continue;
    std::int32_t adjacent_connectors = 0;
    for (NodeId u : graph.Neighbors(v)) {
      if (tree.role(u) == NodeRole::kConnector) ++adjacent_connectors;
    }
    EXPECT_LE(adjacent_connectors, 20) << "dominator " << v;
  }
}

}  // namespace
}  // namespace crn::graph
