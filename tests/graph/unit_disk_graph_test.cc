#include "graph/unit_disk_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "geom/deployment.h"

namespace crn::graph {
namespace {

using geom::Aabb;
using geom::Vec2;

TEST(UnitDiskGraphTest, LineTopologyEdges) {
  const std::vector<Vec2> line{{0, 0}, {1, 0}, {2, 0}, {3.5, 0}};
  const UnitDiskGraph graph(line, Aabb::Square(4.0), 1.2);
  EXPECT_EQ(graph.node_count(), 4);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(1, 2));
  EXPECT_FALSE(graph.HasEdge(0, 2));
  EXPECT_FALSE(graph.HasEdge(2, 3));  // 1.5 apart > 1.2
  EXPECT_EQ(graph.edge_count(), 2);
  EXPECT_EQ(graph.Degree(1), 2);
  EXPECT_EQ(graph.Degree(3), 0);
}

TEST(UnitDiskGraphTest, EdgeAtExactRadius) {
  const std::vector<Vec2> pair{{0, 0}, {5, 0}};
  const UnitDiskGraph graph(pair, Aabb::Square(5.0), 5.0);
  EXPECT_TRUE(graph.HasEdge(0, 1));  // boundary inclusive
}

TEST(UnitDiskGraphTest, NeighborListsSortedAndSymmetric) {
  Rng rng(1);
  const Aabb area = Aabb::Square(60.0);
  const auto points = geom::UniformDeployment(150, area, rng);
  const UnitDiskGraph graph(points, area, 10.0);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const auto neighbors = graph.Neighbors(v);
    EXPECT_TRUE(std::is_sorted(neighbors.begin(), neighbors.end()));
    for (NodeId u : neighbors) {
      ASSERT_NE(u, v);
      ASSERT_TRUE(graph.HasEdge(u, v)) << "asymmetric edge " << v << "-" << u;
    }
  }
}

TEST(UnitDiskGraphTest, EdgesMatchBruteForce) {
  Rng rng(2);
  const Aabb area = Aabb::Square(40.0);
  const auto points = geom::UniformDeployment(80, area, rng);
  const UnitDiskGraph graph(points, area, 8.0);
  std::int64_t brute_edges = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const bool expect_edge = geom::Distance(points[i], points[j]) <= 8.0;
      if (expect_edge) ++brute_edges;
      ASSERT_EQ(graph.HasEdge(static_cast<NodeId>(i), static_cast<NodeId>(j)),
                expect_edge);
    }
  }
  EXPECT_EQ(graph.edge_count(), brute_edges);
}

TEST(UnitDiskGraphTest, ConnectivityDetection) {
  const std::vector<Vec2> islands{{0, 0}, {1, 0}, {20, 20}, {21, 20}};
  const UnitDiskGraph graph(islands, Aabb::Square(25.0), 2.0);
  EXPECT_FALSE(graph.IsConnected());
  const UnitDiskGraph joined(islands, Aabb::Square(25.0), 30.0);
  EXPECT_TRUE(joined.IsConnected());
}

TEST(BfsLayeringTest, LevelsOnPath) {
  const std::vector<Vec2> line{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const UnitDiskGraph graph(line, Aabb::Square(5.0), 1.1);
  const BfsLayering bfs = BreadthFirstLayering(graph, 0);
  EXPECT_EQ(bfs.level, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(bfs.max_level, 4);
  EXPECT_EQ(bfs.parent[0], kInvalidNode);
  EXPECT_EQ(bfs.parent[3], 2);
  EXPECT_EQ(bfs.order.front(), 0);
}

TEST(BfsLayeringTest, LevelsAreShortestHopDistances) {
  Rng rng(3);
  const Aabb area = Aabb::Square(50.0);
  auto points = geom::UniformDeployment(120, area, rng);
  while (!geom::IsUnitDiskConnected(points, area, 10.0)) {
    points = geom::UniformDeployment(120, area, rng);
  }
  const UnitDiskGraph graph(points, area, 10.0);
  const BfsLayering bfs = BreadthFirstLayering(graph, 0);
  // Every edge spans at most one level, and each non-root node has a
  // neighbor exactly one level down — the defining property of BFS levels.
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    bool has_lower = v == 0;
    for (NodeId u : graph.Neighbors(v)) {
      ASSERT_LE(std::abs(bfs.level[v] - bfs.level[u]), 1);
      if (bfs.level[u] == bfs.level[v] - 1) has_lower = true;
    }
    ASSERT_TRUE(has_lower) << "node " << v;
  }
}

TEST(BfsLayeringTest, ThrowsOnDisconnectedGraph) {
  const std::vector<Vec2> islands{{0, 0}, {20, 20}};
  const UnitDiskGraph graph(islands, Aabb::Square(25.0), 2.0);
  EXPECT_THROW(BreadthFirstLayering(graph, 0), ContractViolation);
}

TEST(BfsLayeringTest, OrderIsLevelMonotone) {
  Rng rng(4);
  const Aabb area = Aabb::Square(40.0);
  std::vector<Vec2> points;
  do {
    points = geom::UniformDeployment(100, area, rng);
  } while (!geom::IsUnitDiskConnected(points, area, 12.0));
  const UnitDiskGraph graph(points, area, 12.0);
  const BfsLayering bfs = BreadthFirstLayering(graph, 0);
  for (std::size_t i = 1; i < bfs.order.size(); ++i) {
    ASSERT_LE(bfs.level[bfs.order[i - 1]], bfs.level[bfs.order[i]]);
  }
}

}  // namespace
}  // namespace crn::graph
