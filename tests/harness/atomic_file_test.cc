// WriteFileAtomic: the write-temp-then-rename helper every artifact writer
// goes through (and the raw-artifact-write lint steers toward). The
// contract under test: on success the destination holds exactly the new
// bytes and no temp file lingers; on failure the destination is untouched.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/atomic_file.h"

namespace crn::harness {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AtomicFileTest, WritesContentsAndLeavesNoTempFile) {
  const std::string path = ::testing::TempDir() + "atomic_file_basic.txt";
  std::string error;
  ASSERT_TRUE(WriteFileAtomic(path, "hello\n", &error)) << error;
  EXPECT_EQ(ReadAll(path), "hello\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicFileTest, OverwriteReplacesTheWholeFile) {
  const std::string path = ::testing::TempDir() + "atomic_file_overwrite.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "a much longer first version\n"));
  ASSERT_TRUE(WriteFileAtomic(path, "short\n"));
  EXPECT_EQ(ReadAll(path), "short\n");
}

TEST(AtomicFileTest, BinaryBytesRoundTripExactly) {
  const std::string path = ::testing::TempDir() + "atomic_file_binary.bin";
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  ASSERT_TRUE(WriteFileAtomic(path, payload));
  EXPECT_EQ(ReadAll(path), payload);
}

TEST(AtomicFileTest, FailureLeavesTheDestinationUntouched) {
  const std::string dir = ::testing::TempDir() + "atomic_file_missing_dir";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/sub/nope.txt";
  std::string error;
  EXPECT_FALSE(WriteFileAtomic(path, "x", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace crn::harness
