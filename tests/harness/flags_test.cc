#include "harness/flags.h"

#include <gtest/gtest.h>

namespace crn::harness {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser flags = Parse({"--n=500", "--pt=0.3", "--name=abc"});
  EXPECT_EQ(flags.GetInt("n", 0), 500);
  EXPECT_DOUBLE_EQ(flags.GetDouble("pt", 0.0), 0.3);
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_TRUE(flags.errors().empty());
  EXPECT_TRUE(flags.UnconsumedFlags().empty());
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser flags = Parse({"--n", "42", "--label", "hello"});
  EXPECT_EQ(flags.GetInt("n", 0), 42);
  EXPECT_EQ(flags.GetString("label", ""), "hello");
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  FlagParser flags = Parse({"--csv", "--verbose"});
  EXPECT_TRUE(flags.GetBool("csv", false));
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(FlagParserTest, BoolValues) {
  FlagParser flags = Parse({"--a=0", "--b=yes", "--c=off"});
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_FALSE(flags.GetBool("c", true));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("s", "d"), "d");
  EXPECT_TRUE(flags.GetBool("b", true));
  EXPECT_FALSE(flags.Has("n"));
}

TEST(FlagParserTest, MalformedValuesReportErrors) {
  FlagParser flags = Parse({"--n=abc", "--x=1.2.3", "--b=maybe"});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 0.5), 0.5);
  EXPECT_TRUE(flags.GetBool("b", true));
  EXPECT_EQ(flags.errors().size(), 3u);
}

TEST(FlagParserTest, UnconsumedFlagsDetected) {
  FlagParser flags = Parse({"--known=1", "--typo=2"});
  flags.GetInt("known", 0);
  const auto unknown = flags.UnconsumedFlags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "--typo");
}

TEST(FlagParserTest, PositionalsCollected) {
  FlagParser flags = Parse({"input.csv", "--n=1", "more"});
  EXPECT_EQ(flags.positionals(),
            (std::vector<std::string>{"input.csv", "more"}));
}

TEST(FlagParserTest, LastValueWinsOnRepeat) {
  FlagParser flags = Parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

}  // namespace
}  // namespace crn::harness
