#include "harness/json_writer.h"

#include <gtest/gtest.h>

#include "harness/profiler.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace crn::harness {
namespace {

TEST(JsonTest, ScalarsSerialize) {
  EXPECT_EQ(Json(true).ToString(), "true");
  EXPECT_EQ(Json(nullptr).ToString(), "null");
  EXPECT_EQ(Json(42).ToString(), "42");
  EXPECT_EQ(Json(2.5).ToString(), "2.5");
  EXPECT_EQ(Json("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Json().ToString(), "null");
}

TEST(JsonTest, ObjectKeepsInsertionOrder) {
  Json json = Json::Object();
  json["zeta"] = 1;
  json["alpha"] = 2;
  const std::string text = json.ToString();
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
}

TEST(JsonTest, OperatorBracketUpdatesExistingKey) {
  Json json = Json::Object();
  json["k"] = 1;
  json["k"] = 2;
  EXPECT_EQ(json.ToString(), "{\n  \"k\": 2\n}");
}

TEST(JsonTest, EmptyContainersStayCompact) {
  EXPECT_EQ(Json::Object().ToString(), "{}");
  EXPECT_EQ(Json::Array().ToString(), "[]");
}

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak\t"), "line\\nbreak\\t");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonTest, NumbersUseShortestRoundTrip) {
  EXPECT_EQ(FormatJsonNumber(0.5), "0.5");
  EXPECT_EQ(FormatJsonNumber(0.25), "0.25");
  EXPECT_EQ(FormatJsonNumber(std::nan("")), "null");
  EXPECT_EQ(FormatJsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonTest, DigestHexIsFixedWidthLowercase) {
  EXPECT_EQ(DigestHex(0xABCULL), "0x0000000000000abc");
  EXPECT_EQ(DigestHex(0xFFFFFFFFFFFFFFFFULL), "0xffffffffffffffff");
}

TEST(JsonTest, SampleStatsIncludeCi95HalfWidth) {
  core::SampleStats stats;
  stats.mean = 10.0;
  stats.stddev = 2.0;
  stats.min = 8.0;
  stats.max = 12.0;
  stats.count = 4;
  const std::string text = ToJson(stats).ToString();
  EXPECT_NE(text.find("\"mean\": 10"), std::string::npos);
  // 1.96 * 2 / sqrt(4)
  EXPECT_NE(text.find("\"ci95\": 1.96"), std::string::npos);
}

TEST(JsonTest, SweepResultSerializesPointsAndDigests) {
  SweepResult result;
  result.title = "t";
  result.parameter_name = "p";
  result.labels = {"A"};
  ComparisonSummary summary;
  summary.addc_trace_digest = 0x12;
  result.summaries = {summary};
  result.trace_digest = 0x34;
  const std::string text = ToJson(result).ToString();
  EXPECT_NE(text.find("\"points\""), std::string::npos);
  EXPECT_NE(text.find("\"label\": \"A\""), std::string::npos);
  EXPECT_NE(text.find("\"addc_trace_digest\": \"0x0000000000000012\""),
            std::string::npos);
  EXPECT_NE(text.find("\"trace_digest\": \"0x0000000000000034\""),
            std::string::npos);
}

TEST(JsonWriterTest, WriteBenchJsonWritesEnvelopeAndSeries) {
  BenchOptions options;
  const std::string path = ::testing::TempDir() + "bench_json_test.json";
  options.json_out = path;
  Json series = Json::Array();
  Json row = Json::Object();
  row["value"] = 1.5;
  series.Push(std::move(row));
  std::ostringstream log;
  ASSERT_TRUE(WriteBenchJson("unit", options, std::move(series), 0.25, log));
  EXPECT_NE(log.str().find(path), std::string::npos);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  // v2 = v1 plus the optional "profile" section; with no profiler attached
  // the document body is exactly the v1 shape.
  EXPECT_NE(text.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_EQ(text.find("\"profile\""), std::string::npos);
  EXPECT_NE(text.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"scale\""), std::string::npos);
  EXPECT_NE(text.find("\"series\""), std::string::npos);
  EXPECT_NE(text.find("\"wall_seconds\": 0.25"), std::string::npos);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(JsonWriterTest, ProfilerAddsProfileSectionAndTrace) {
  BenchOptions options;
  const std::string path = ::testing::TempDir() + "bench_json_profile_test.json";
  const std::string trace_path = ::testing::TempDir() + "bench_trace_test.json";
  options.json_out = path;
  options.trace_out = trace_path;
  RunProfiler profiler;
  profiler.RecordSpan("cells", "cells[0]", 0.0, 1.0, 1);
  profiler.RecordSpan("reduce", "", 1.0, 1.5, 0);
  std::ostringstream log;
  ASSERT_TRUE(WriteBenchJson("unit", options, Json::Array(), 0.25, log,
                             &profiler));
  EXPECT_NE(log.str().find(trace_path), std::string::npos);

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"profile\""), std::string::npos);
  EXPECT_NE(text.find("\"spans_total\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"phase\": \"cells\""), std::string::npos);
  EXPECT_NE(text.find("\"phase\": \"reduce\""), std::string::npos);

  std::ifstream trace_in(trace_path);
  std::stringstream trace_buffer;
  trace_buffer << trace_in.rdbuf();
  const std::string trace = trace_buffer.str();
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

TEST(JsonWriterTest, SweepsOverloadEmitsSweepArray) {
  BenchOptions options;
  const std::string path = ::testing::TempDir() + "bench_json_sweeps_test.json";
  options.json_out = path;
  SweepResult result;
  result.title = "sweep title";
  std::ostringstream log;
  ASSERT_TRUE(WriteBenchJson("unit2", options, {result}, 0.5, log));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"sweeps\""), std::string::npos);
  EXPECT_NE(text.find("\"title\": \"sweep title\""), std::string::npos);
}

}  // namespace
}  // namespace crn::harness
