// The parallel engine's contract: a sweep is bit-identical at any jobs
// value. Every cell deploys its own Scenario from (config.seed, rep) and the
// reduction runs in fixed (point, repetition) order, so jobs=4 must
// reproduce the serial engine exactly — summaries and the auditor's trace
// digests both.
#include <gtest/gtest.h>

#include "harness/profiler.h"
#include "harness/sweep.h"
#include "obs/metrics.h"

namespace crn::harness {
namespace {

SweepSpec TinySpec(std::int32_t jobs) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.05);
  config.seed = 11;
  SweepSpec spec;
  spec.title = "equivalence";
  spec.parameter_name = "p_t";
  spec.points.push_back({"0.3", config});
  config.pu_activity = 0.2;
  spec.points.push_back({"0.2", config});
  spec.repetitions = 2;
  spec.jobs = jobs;
  spec.collect_digests = true;
  return spec;
}

void ExpectStatsIdentical(const core::SampleStats& a, const core::SampleStats& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.count, b.count);
}

TEST(ParallelSweepTest, SerialAndParallelSweepsAreBitIdentical) {
  const SweepResult serial = RunSweep(TinySpec(1));
  const SweepResult parallel = RunSweep(TinySpec(4));
  EXPECT_EQ(serial.jobs, 1);
  EXPECT_EQ(parallel.jobs, 4);
  EXPECT_EQ(serial.labels, parallel.labels);
  ASSERT_EQ(serial.summaries.size(), parallel.summaries.size());
  for (std::size_t i = 0; i < serial.summaries.size(); ++i) {
    const ComparisonSummary& a = serial.summaries[i];
    const ComparisonSummary& b = parallel.summaries[i];
    ExpectStatsIdentical(a.addc_delay_ms, b.addc_delay_ms);
    ExpectStatsIdentical(a.coolest_delay_ms, b.coolest_delay_ms);
    EXPECT_EQ(a.delay_ratio, b.delay_ratio);
    ExpectStatsIdentical(a.addc_capacity, b.addc_capacity);
    ExpectStatsIdentical(a.coolest_capacity, b.coolest_capacity);
    EXPECT_EQ(a.addc_jain_mean, b.addc_jain_mean);
    EXPECT_EQ(a.coolest_jain_mean, b.coolest_jain_mean);
    EXPECT_EQ(a.addc_completed, b.addc_completed);
    EXPECT_EQ(a.coolest_completed, b.coolest_completed);
    EXPECT_EQ(a.su_caused_violations, b.su_caused_violations);
    EXPECT_EQ(a.theorem2_bound_ms_mean, b.theorem2_bound_ms_mean);
    EXPECT_NE(a.addc_trace_digest, 0u);
    EXPECT_EQ(a.addc_trace_digest, b.addc_trace_digest);
  }
  EXPECT_NE(serial.trace_digest, 0u);
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);
}

TEST(ParallelSweepTest, MetricsFoldIsBitIdenticalAcrossJobs) {
  // The observability contract on the sweep engine: per-cell registries are
  // merged in fixed (point, rep) order, so the folded state — digest and
  // full snapshot both — cannot depend on the worker count.
  obs::MetricsRegistry serial_metrics;
  obs::MetricsRegistry parallel_metrics;
  SweepSpec serial_spec = TinySpec(1);
  serial_spec.metrics = &serial_metrics;
  SweepSpec parallel_spec = TinySpec(4);
  parallel_spec.metrics = &parallel_metrics;
  const SweepResult serial = RunSweep(serial_spec);
  const SweepResult parallel = RunSweep(parallel_spec);
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);

  EXPECT_GT(serial_metrics.instrument_count(), 0u);
  EXPECT_NE(serial_metrics.Digest(), 0u);
  EXPECT_EQ(serial_metrics.Digest(), parallel_metrics.Digest());
  const obs::Snapshot a = serial_metrics.Capture(0);
  const obs::Snapshot b = parallel_metrics.Capture(0);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].key, b.entries[i].key);
    EXPECT_EQ(a.entries[i].value, b.entries[i].value);
    EXPECT_EQ(a.entries[i].count, b.entries[i].count);
    EXPECT_EQ(a.entries[i].sum, b.entries[i].sum);
    EXPECT_EQ(a.entries[i].buckets, b.entries[i].buckets);
  }

  // Sanity-check the folded totals: 2 points x 2 reps of ADDC cells, each
  // producing one packet per SU (num_sus excludes the base station).
  const std::int64_t produced_per_cell =
      core::ScenarioConfig::ScaledDefaults(0.05).num_sus;
  EXPECT_EQ(serial_metrics.GetCounter("mac.packets_created_total").value(),
            4 * produced_per_cell);
}

TEST(ParallelSweepTest, AddcOnlyPerfCountersAreJobsInvariant) {
  // The bench_sim_throughput contract: an addc_only sweep's captured perf.*
  // counters are pure functions of (scenario, seed) — the same at any jobs
  // value — which is what lets CI compare them against a committed baseline
  // exactly. Runs both engines as points, like the bench's verification
  // sweep does.
  const auto make = [](std::int32_t jobs, obs::MetricsRegistry* metrics) {
    core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.05);
    config.seed = 11;
    SweepSpec spec;
    spec.title = "engines";
    spec.parameter_name = "engine";
    spec.points.push_back({"cached", config});
    config.direct_sir_engine = true;
    spec.points.push_back({"direct", config});
    spec.repetitions = 2;
    spec.jobs = jobs;
    spec.collect_digests = true;
    spec.addc_only = true;
    spec.metrics = metrics;
    return spec;
  };
  obs::MetricsRegistry serial_metrics;
  obs::MetricsRegistry parallel_metrics;
  const SweepResult serial = RunSweep(make(1, &serial_metrics));
  const SweepResult parallel = RunSweep(make(4, &parallel_metrics));

  // Both engines, same scenarios, same digests — at every jobs value.
  ASSERT_EQ(serial.summaries.size(), 2u);
  EXPECT_NE(serial.summaries[0].addc_trace_digest, 0u);
  EXPECT_EQ(serial.summaries[0].addc_trace_digest,
            serial.summaries[1].addc_trace_digest);
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);

  // The captured counter state is identical and carries the perf.* keys the
  // bench and tools/bench_delta.py consume.
  ASSERT_EQ(serial.metric_values.size(), parallel.metric_values.size());
  ASSERT_FALSE(serial.metric_values.empty());
  bool saw_cached_terms = false;
  bool saw_direct_evals = false;
  for (std::size_t i = 0; i < serial.metric_values.size(); ++i) {
    EXPECT_EQ(serial.metric_values[i].first, parallel.metric_values[i].first);
    EXPECT_EQ(serial.metric_values[i].second, parallel.metric_values[i].second);
    if (serial.metric_values[i].first ==
        "perf.sir_terms_evaluated{engine=cached}") {
      saw_cached_terms = serial.metric_values[i].second > 0;
    }
    if (serial.metric_values[i].first == "perf.sir_evaluations{engine=direct}") {
      saw_direct_evals = serial.metric_values[i].second > 0;
    }
  }
  EXPECT_TRUE(saw_cached_terms);
  EXPECT_TRUE(saw_direct_evals);
}

TEST(ParallelSweepTest, ProfilerIsObservationOnly) {
  // Attaching the wall-clock profiler must not perturb results or digests,
  // and every cell plus the reduce phase must be covered by spans.
  RunProfiler profiler;
  SweepSpec profiled_spec = TinySpec(4);
  profiled_spec.profiler = &profiler;
  const SweepResult profiled = RunSweep(profiled_spec);
  const SweepResult plain = RunSweep(TinySpec(4));
  EXPECT_EQ(profiled.trace_digest, plain.trace_digest);
  ASSERT_EQ(profiled.summaries.size(), plain.summaries.size());
  for (std::size_t i = 0; i < profiled.summaries.size(); ++i) {
    ExpectStatsIdentical(profiled.summaries[i].addc_delay_ms,
                         plain.summaries[i].addc_delay_ms);
  }

  bool saw_cells = false;
  bool saw_reduce = false;
  std::int64_t cell_count = 0;
  for (const RunProfiler::PhaseStats& stats : profiler.PhaseSummary()) {
    if (stats.phase == "cells") {
      saw_cells = true;
      cell_count = stats.count;
    }
    if (stats.phase == "reduce") saw_reduce = true;
  }
  EXPECT_TRUE(saw_cells);
  EXPECT_TRUE(saw_reduce);
  // 2 points x 2 repetitions x 2 algorithms (ADDC and Coolest).
  EXPECT_EQ(cell_count, 8);
}

TEST(ParallelSweepTest, DigestCollectionDoesNotChangeResults) {
  SweepSpec with_digests = TinySpec(1);
  with_digests.points.resize(1);
  with_digests.repetitions = 1;
  SweepSpec without_digests = with_digests;
  without_digests.collect_digests = false;
  const SweepResult audited = RunSweep(with_digests);
  const SweepResult plain = RunSweep(without_digests);
  ExpectStatsIdentical(audited.summaries.front().addc_delay_ms,
                       plain.summaries.front().addc_delay_ms);
  ExpectStatsIdentical(audited.summaries.front().coolest_delay_ms,
                       plain.summaries.front().coolest_delay_ms);
  EXPECT_NE(audited.summaries.front().addc_trace_digest, 0u);
  EXPECT_EQ(plain.summaries.front().addc_trace_digest, 0u);
  EXPECT_EQ(plain.trace_digest, 0u);
}

}  // namespace
}  // namespace crn::harness
