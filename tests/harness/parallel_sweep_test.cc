// The parallel engine's contract: a sweep is bit-identical at any jobs
// value. Every cell deploys its own Scenario from (config.seed, rep) and the
// reduction runs in fixed (point, repetition) order, so jobs=4 must
// reproduce the serial engine exactly — summaries and the auditor's trace
// digests both.
#include <gtest/gtest.h>

#include "harness/profiler.h"
#include "harness/sweep.h"
#include "obs/metrics.h"

namespace crn::harness {
namespace {

SweepSpec TinySpec(std::int32_t jobs) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.05);
  config.seed = 11;
  SweepSpec spec;
  spec.title = "equivalence";
  spec.parameter_name = "p_t";
  spec.points.push_back({"0.3", config});
  config.pu_activity = 0.2;
  spec.points.push_back({"0.2", config});
  spec.repetitions = 2;
  spec.jobs = jobs;
  spec.collect_digests = true;
  return spec;
}

void ExpectStatsIdentical(const core::SampleStats& a, const core::SampleStats& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.count, b.count);
}

TEST(ParallelSweepTest, SerialAndParallelSweepsAreBitIdentical) {
  const SweepResult serial = RunSweep(TinySpec(1));
  const SweepResult parallel = RunSweep(TinySpec(4));
  EXPECT_EQ(serial.jobs, 1);
  EXPECT_EQ(parallel.jobs, 4);
  EXPECT_EQ(serial.labels, parallel.labels);
  ASSERT_EQ(serial.summaries.size(), parallel.summaries.size());
  for (std::size_t i = 0; i < serial.summaries.size(); ++i) {
    const ComparisonSummary& a = serial.summaries[i];
    const ComparisonSummary& b = parallel.summaries[i];
    ExpectStatsIdentical(a.addc_delay_ms, b.addc_delay_ms);
    ExpectStatsIdentical(a.coolest_delay_ms, b.coolest_delay_ms);
    EXPECT_EQ(a.delay_ratio, b.delay_ratio);
    ExpectStatsIdentical(a.addc_capacity, b.addc_capacity);
    ExpectStatsIdentical(a.coolest_capacity, b.coolest_capacity);
    EXPECT_EQ(a.addc_jain_mean, b.addc_jain_mean);
    EXPECT_EQ(a.coolest_jain_mean, b.coolest_jain_mean);
    EXPECT_EQ(a.addc_completed, b.addc_completed);
    EXPECT_EQ(a.coolest_completed, b.coolest_completed);
    EXPECT_EQ(a.su_caused_violations, b.su_caused_violations);
    EXPECT_EQ(a.theorem2_bound_ms_mean, b.theorem2_bound_ms_mean);
    EXPECT_NE(a.addc_trace_digest, 0u);
    EXPECT_EQ(a.addc_trace_digest, b.addc_trace_digest);
  }
  EXPECT_NE(serial.trace_digest, 0u);
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);
}

TEST(ParallelSweepTest, MetricsFoldIsBitIdenticalAcrossJobs) {
  // The observability contract on the sweep engine: per-cell registries are
  // merged in fixed (point, rep) order, so the folded state — digest and
  // full snapshot both — cannot depend on the worker count.
  obs::MetricsRegistry serial_metrics;
  obs::MetricsRegistry parallel_metrics;
  SweepSpec serial_spec = TinySpec(1);
  serial_spec.metrics = &serial_metrics;
  SweepSpec parallel_spec = TinySpec(4);
  parallel_spec.metrics = &parallel_metrics;
  const SweepResult serial = RunSweep(serial_spec);
  const SweepResult parallel = RunSweep(parallel_spec);
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);

  EXPECT_GT(serial_metrics.instrument_count(), 0u);
  EXPECT_NE(serial_metrics.Digest(), 0u);
  EXPECT_EQ(serial_metrics.Digest(), parallel_metrics.Digest());
  const obs::Snapshot a = serial_metrics.Capture(0);
  const obs::Snapshot b = parallel_metrics.Capture(0);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].key, b.entries[i].key);
    EXPECT_EQ(a.entries[i].value, b.entries[i].value);
    EXPECT_EQ(a.entries[i].count, b.entries[i].count);
    EXPECT_EQ(a.entries[i].sum, b.entries[i].sum);
    EXPECT_EQ(a.entries[i].buckets, b.entries[i].buckets);
  }

  // Sanity-check the folded totals: 2 points x 2 reps of ADDC cells, each
  // producing one packet per SU (num_sus excludes the base station).
  const std::int64_t produced_per_cell =
      core::ScenarioConfig::ScaledDefaults(0.05).num_sus;
  EXPECT_EQ(serial_metrics.GetCounter("mac.packets_created_total").value(),
            4 * produced_per_cell);
}

TEST(ParallelSweepTest, AddcOnlyPerfCountersAreJobsInvariant) {
  // The bench_sim_throughput contract: an addc_only sweep's captured perf.*
  // counters are pure functions of (scenario, seed) — the same at any jobs
  // value — which is what lets CI compare them against a committed baseline
  // exactly. Runs both engines as points, like the bench's verification
  // sweep does.
  const auto make = [](std::int32_t jobs, obs::MetricsRegistry* metrics) {
    core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.05);
    config.seed = 11;
    SweepSpec spec;
    spec.title = "engines";
    spec.parameter_name = "engine";
    spec.points.push_back({"cached", config});
    config.direct_sir_engine = true;
    spec.points.push_back({"direct", config});
    spec.repetitions = 2;
    spec.jobs = jobs;
    spec.collect_digests = true;
    spec.addc_only = true;
    spec.metrics = metrics;
    return spec;
  };
  obs::MetricsRegistry serial_metrics;
  obs::MetricsRegistry parallel_metrics;
  const SweepResult serial = RunSweep(make(1, &serial_metrics));
  const SweepResult parallel = RunSweep(make(4, &parallel_metrics));

  // Both engines, same scenarios, same digests — at every jobs value.
  ASSERT_EQ(serial.summaries.size(), 2u);
  EXPECT_NE(serial.summaries[0].addc_trace_digest, 0u);
  EXPECT_EQ(serial.summaries[0].addc_trace_digest,
            serial.summaries[1].addc_trace_digest);
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);

  // The captured counter state is identical and carries the perf.* keys the
  // bench and tools/bench_delta.py consume.
  ASSERT_EQ(serial.metric_values.size(), parallel.metric_values.size());
  ASSERT_FALSE(serial.metric_values.empty());
  bool saw_cached_terms = false;
  bool saw_direct_evals = false;
  for (std::size_t i = 0; i < serial.metric_values.size(); ++i) {
    EXPECT_EQ(serial.metric_values[i].first, parallel.metric_values[i].first);
    EXPECT_EQ(serial.metric_values[i].second, parallel.metric_values[i].second);
    if (serial.metric_values[i].first ==
        "perf.sir_terms_evaluated{engine=cached}") {
      saw_cached_terms = serial.metric_values[i].second > 0;
    }
    if (serial.metric_values[i].first == "perf.sir_evaluations{engine=direct}") {
      saw_direct_evals = serial.metric_values[i].second > 0;
    }
  }
  EXPECT_TRUE(saw_cached_terms);
  EXPECT_TRUE(saw_direct_evals);
}

TEST(ParallelSweepTest, ProfilerIsObservationOnly) {
  // Attaching the wall-clock profiler must not perturb results or digests,
  // and every cell plus the reduce phase must be covered by spans.
  RunProfiler profiler;
  SweepSpec profiled_spec = TinySpec(4);
  profiled_spec.profiler = &profiler;
  const SweepResult profiled = RunSweep(profiled_spec);
  const SweepResult plain = RunSweep(TinySpec(4));
  EXPECT_EQ(profiled.trace_digest, plain.trace_digest);
  ASSERT_EQ(profiled.summaries.size(), plain.summaries.size());
  for (std::size_t i = 0; i < profiled.summaries.size(); ++i) {
    ExpectStatsIdentical(profiled.summaries[i].addc_delay_ms,
                         plain.summaries[i].addc_delay_ms);
  }

  bool saw_cells = false;
  bool saw_reduce = false;
  std::int64_t cell_count = 0;
  for (const RunProfiler::PhaseStats& stats : profiler.PhaseSummary()) {
    if (stats.phase == "cells") {
      saw_cells = true;
      cell_count = stats.count;
    }
    if (stats.phase == "reduce") saw_reduce = true;
  }
  EXPECT_TRUE(saw_cells);
  EXPECT_TRUE(saw_reduce);
  // 2 points x 2 repetitions x 2 algorithms (ADDC and Coolest).
  EXPECT_EQ(cell_count, 8);
}

TEST(ParallelSweepTest, DigestsAndMetricsArePinnedAcrossJobsAndGrain) {
  // The acceptance matrix for the work-stealing engine: trace digests,
  // metric digests (including the prefab counters), and profiler phase
  // counts must be identical at jobs ∈ {1, 2, 4, 8} and at every grain.
  // jobs=1 is the inline serial reference; everything else must match it.
  const auto run = [](std::int32_t jobs, std::int64_t grain,
                      obs::MetricsRegistry* metrics,
                      RunProfiler* profiler) {
    SweepSpec spec = TinySpec(jobs);
    spec.grain = grain;
    spec.metrics = metrics;
    spec.profiler = profiler;
    return RunSweep(spec);
  };
  obs::MetricsRegistry reference_metrics;
  RunProfiler reference_profiler;
  const SweepResult reference =
      run(1, 0, &reference_metrics, &reference_profiler);
  ASSERT_NE(reference.trace_digest, 0u);

  std::int64_t reference_cells = 0;
  for (const RunProfiler::PhaseStats& stats :
       reference_profiler.PhaseSummary()) {
    if (stats.phase == "cells") reference_cells = stats.count;
  }
  EXPECT_EQ(reference_cells, 8);  // 2 points x 2 reps x 2 algorithms

  for (const std::int32_t jobs : {2, 4, 8}) {
    for (const std::int64_t grain :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{2},
          std::int64_t{7}, std::int64_t{1 << 20}}) {
      obs::MetricsRegistry metrics;
      RunProfiler profiler;
      const SweepResult result = run(jobs, grain, &metrics, &profiler);
      EXPECT_EQ(result.trace_digest, reference.trace_digest)
          << "jobs=" << jobs << " grain=" << grain;
      EXPECT_EQ(metrics.Digest(), reference_metrics.Digest())
          << "jobs=" << jobs << " grain=" << grain;
      std::int64_t cells = 0;
      for (const RunProfiler::PhaseStats& stats : profiler.PhaseSummary()) {
        if (stats.phase == "cells") cells = stats.count;
      }
      EXPECT_EQ(cells, reference_cells)
          << "jobs=" << jobs << " grain=" << grain;
    }
  }

  // The prefab counters fold into the registry and are themselves
  // jobs-invariant: 2 distinct (seed, rep) geometries serve all 8 cells.
  EXPECT_EQ(reference_metrics.GetCounter("prefab.misses").value(), 2);
  EXPECT_EQ(reference_metrics.GetCounter("prefab.hits").value(), 6);
  EXPECT_GT(reference_metrics.GetCounter("prefab.bytes").value(), 0);
}

TEST(ParallelSweepTest, PrefabCacheDoesNotChangeAnyDigest) {
  // Cache on (shared immutable prefabs) vs off (every cell deploys its own
  // geometry, the pre-cache behaviour) must be bit-identical — the cache
  // is a pure memoization of a deterministic build.
  SweepSpec cached_spec = TinySpec(4);
  SweepSpec rebuilt_spec = TinySpec(4);
  rebuilt_spec.prefab_cache = false;
  const SweepResult cached = RunSweep(cached_spec);
  const SweepResult rebuilt = RunSweep(rebuilt_spec);
  ASSERT_NE(cached.trace_digest, 0u);
  EXPECT_EQ(cached.trace_digest, rebuilt.trace_digest);
  ASSERT_EQ(cached.summaries.size(), rebuilt.summaries.size());
  for (std::size_t i = 0; i < cached.summaries.size(); ++i) {
    EXPECT_EQ(cached.summaries[i].addc_trace_digest,
              rebuilt.summaries[i].addc_trace_digest);
    ExpectStatsIdentical(cached.summaries[i].addc_delay_ms,
                         rebuilt.summaries[i].addc_delay_ms);
  }

  // With the cache off, no prefab.* metrics may appear — the counters
  // describe cache behaviour, not the sweep.
  obs::MetricsRegistry metrics;
  rebuilt_spec.metrics = &metrics;
  RunSweep(rebuilt_spec);
  for (const obs::SnapshotEntry& entry : metrics.Capture(0).entries) {
    EXPECT_EQ(entry.key.rfind("prefab.", 0), std::string::npos) << entry.key;
  }
}

TEST(ParallelSweepTest, VerifyPrefabsModeRebuildsAndMatchesEveryHit) {
  // The digest-verified equivalence mode from the acceptance criteria:
  // every cache hit rebuilds the geometry from scratch and CRN_CHECKs the
  // GeometryDigest against the shared prefab, as a ctest.
  obs::MetricsRegistry metrics;
  SweepSpec spec = TinySpec(4);
  spec.verify_prefabs = true;
  spec.metrics = &metrics;
  const SweepResult verified = RunSweep(spec);
  const SweepResult plain = RunSweep(TinySpec(4));
  EXPECT_EQ(verified.trace_digest, plain.trace_digest);
  // 8 cells over 2 distinct geometries → 6 hits, each re-verified.
  EXPECT_EQ(metrics.GetCounter("prefab.verified").value(), 6);
}

TEST(ParallelSweepTest, LegacyThreadPoolEngineMatchesWorkStealing) {
  // The A/B contract bench_sweep_scaling relies on: both engines run the
  // same cells and reduce in the same order, so their digests agree.
  SweepSpec legacy_spec = TinySpec(4);
  legacy_spec.engine = ExecutionEngine::kThreadPool;
  const SweepResult legacy = RunSweep(legacy_spec);
  const SweepResult stealing = RunSweep(TinySpec(4));
  ASSERT_NE(legacy.trace_digest, 0u);
  EXPECT_EQ(legacy.trace_digest, stealing.trace_digest);
  // Scheduling diagnostics reflect each engine's dispatch shape.
  EXPECT_EQ(legacy.pool.tasks, stealing.pool.tasks);
  EXPECT_EQ(legacy.pool.chunks, legacy.pool.tasks);  // one submission per cell
  EXPECT_EQ(legacy.pool.steals, 0);
}

TEST(ParallelSweepTest, DigestCollectionDoesNotChangeResults) {
  SweepSpec with_digests = TinySpec(1);
  with_digests.points.resize(1);
  with_digests.repetitions = 1;
  SweepSpec without_digests = with_digests;
  without_digests.collect_digests = false;
  const SweepResult audited = RunSweep(with_digests);
  const SweepResult plain = RunSweep(without_digests);
  ExpectStatsIdentical(audited.summaries.front().addc_delay_ms,
                       plain.summaries.front().addc_delay_ms);
  ExpectStatsIdentical(audited.summaries.front().coolest_delay_ms,
                       plain.summaries.front().coolest_delay_ms);
  EXPECT_NE(audited.summaries.front().addc_trace_digest, 0u);
  EXPECT_EQ(plain.summaries.front().addc_trace_digest, 0u);
  EXPECT_EQ(plain.trace_digest, 0u);
}

}  // namespace
}  // namespace crn::harness
