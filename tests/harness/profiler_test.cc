// Wall-clock run profiler tests: null-safe RAII scopes, span recording from
// pool workers, deterministic phase summaries, and the Chrome trace export.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/profiler.h"

namespace crn::harness {
namespace {

TEST(RunProfilerTest, NullProfilerScopeIsANoOp) {
  // The zero-cost contract: every hook site passes a possibly-null pointer.
  const RunProfiler::Scope outer(nullptr, "cells", "point=0");
  const RunProfiler::Scope inner(nullptr, "reduce");
  SUCCEED();
}

TEST(RunProfilerTest, ScopeRecordsClosedSpan) {
  RunProfiler profiler;
  {
    const RunProfiler::Scope scope(&profiler, "cells", "point=40 rep=2");
  }
  const auto spans = profiler.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].phase, "cells");
  EXPECT_EQ(spans[0].label, "point=40 rep=2");
  EXPECT_LE(spans[0].begin_s, spans[0].end_s);
  EXPECT_EQ(spans[0].worker, 0);  // caller thread, not a pool worker
}

TEST(RunProfilerTest, PhaseSummaryAggregatesSortedByPhase) {
  RunProfiler profiler;
  profiler.RecordSpan("reduce", "", 0.0, 0.25, 0);
  profiler.RecordSpan("cells", "a", 0.0, 1.0, 1);
  profiler.RecordSpan("cells", "b", 1.0, 3.0, 2);
  const auto summary = profiler.PhaseSummary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].phase, "cells");
  EXPECT_EQ(summary[0].count, 2);
  EXPECT_DOUBLE_EQ(summary[0].total_s, 3.0);
  EXPECT_DOUBLE_EQ(summary[0].min_s, 1.0);
  EXPECT_DOUBLE_EQ(summary[0].max_s, 2.0);
  EXPECT_EQ(summary[1].phase, "reduce");
  EXPECT_EQ(summary[1].count, 1);
  EXPECT_DOUBLE_EQ(summary[1].total_s, 0.25);
}

TEST(RunProfilerTest, RunnerProfilesEveryCellOnItsWorker) {
  RunProfiler profiler;
  const ParallelRunner runner(2);
  runner.ForEachIndex(8, [](std::int64_t) {}, &profiler, "cells");
  const auto spans = profiler.spans();
  ASSERT_EQ(spans.size(), 8u);
  for (const RunProfiler::Span& span : spans) {
    EXPECT_EQ(span.phase, "cells");
    EXPECT_EQ(span.label.rfind("cells[", 0), 0u);
    EXPECT_GE(span.worker, 1);  // pool workers are 1-based; 0 = main thread
    EXPECT_LE(span.worker, 2);
    EXPECT_LE(span.begin_s, span.end_s);
  }
}

TEST(RunProfilerTest, SerialRunnerProfilesOnTheCallerThread) {
  RunProfiler profiler;
  const ParallelRunner runner(1);
  runner.ForEachIndex(3, [](std::int64_t) {}, &profiler, "cells");
  const auto spans = profiler.spans();
  ASSERT_EQ(spans.size(), 3u);
  for (const RunProfiler::Span& span : spans) EXPECT_EQ(span.worker, 0);
}

TEST(RunProfilerTest, ChromeTraceExportUsesProfilerTrack) {
  RunProfiler profiler;
  profiler.RecordSpan("cells", "point=40", 0.001, 0.002, 1);
  const auto events = profiler.ToChromeEvents();
  bool saw_slice = false;
  bool saw_thread_name = false;
  for (const obs::ChromeTraceEvent& event : events) {
    if (event.phase == obs::ChromeTraceEvent::Phase::kComplete) {
      saw_slice = true;
      EXPECT_EQ(event.name, "point=40");  // label wins; phase is the category
      EXPECT_EQ(event.category, "cells");
      EXPECT_EQ(event.pid, 2);  // profiler track, distinct from sim-time pid 1
      EXPECT_EQ(event.tid, 1);
      EXPECT_DOUBLE_EQ(event.ts_us, 1000.0);  // 0.001 s -> 1000 us
      EXPECT_DOUBLE_EQ(event.dur_us, 1000.0);
    }
    if (event.phase == obs::ChromeTraceEvent::Phase::kMetadata) {
      saw_thread_name = true;
    }
  }
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_thread_name);

  std::ostringstream out;
  profiler.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(RunProfilerTest, FlightRecorderFoldReportsPerKindFireWall) {
  // The harness is the only layer allowed to hand the recorder a wall
  // clock; the fold then turns per-kind fire attribution into profiler
  // phases that land in the BENCH json profile section via PhaseSummary().
  sim::FlightRecorder recorder(8);
  RunProfiler profiler;
  AttachFlightRecorderProbe(profiler, recorder);
  ASSERT_TRUE(recorder.has_wall_probe());

  recorder.SetKindNames({"unnamed", "mac.tx_end", "mac.idle"});
  recorder.Record(sim::SchedAction::kFire, 1, 10, /*kind=*/1, 0, 0);
  recorder.Record(sim::SchedAction::kFire, 2, 20, /*kind=*/1, 0, 0);
  recorder.AddFireWall(1, 0.5);
  // Kind 2 never fires and accrues no wall — it must not produce a phase.

  FoldFlightRecorderIntoProfiler(recorder, profiler);
  const auto summary = profiler.PhaseSummary();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].phase, "sched.fire:mac.tx_end");
  EXPECT_EQ(summary[0].count, 1);
  EXPECT_DOUBLE_EQ(summary[0].total_s, 0.5);
  // The deterministic fire count rides in the span label.
  ASSERT_EQ(profiler.spans().size(), 1u);
  EXPECT_EQ(profiler.spans()[0].label, "fires=2");
}

}  // namespace
}  // namespace crn::harness
