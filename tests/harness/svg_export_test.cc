#include "harness/svg_export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.h"
#include "graph/cds_tree.h"

namespace crn::harness {
namespace {

std::size_t CountOccurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SvgExportTest, ElementCountsMatchTopology) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.05);
  config.seed = 41;
  const core::Scenario scenario(config, 0);
  const graph::CdsTree tree(scenario.secondary_graph(), scenario.sink());

  SvgOptions options;
  options.pcr_m = scenario.pcr();
  std::ostringstream out;
  WriteSvg(out, scenario.secondary_graph(), &tree, scenario.pu_positions(), options);
  const std::string svg = out.str();

  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One circle per SU + the sink ring + the PCR disk.
  EXPECT_EQ(CountOccurrences(svg, "<circle"),
            static_cast<std::size_t>(scenario.secondary_graph().node_count()) + 2);
  // One line per non-root tree edge.
  EXPECT_EQ(CountOccurrences(svg, "<line"),
            static_cast<std::size_t>(scenario.secondary_graph().node_count()) - 1);
  // One square per PU plus the background and frame rects.
  EXPECT_EQ(CountOccurrences(svg, "<rect"),
            scenario.pu_positions().size() + 2);
  // All three role colors appear.
  EXPECT_NE(svg.find("#1a1a1a"), std::string::npos);
  EXPECT_NE(svg.find("#2a6fdb"), std::string::npos);
  EXPECT_NE(svg.find("#ffffff"), std::string::npos);
}

TEST(SvgExportTest, WorksWithoutTreeOrPus) {
  const std::vector<geom::Vec2> points{{5, 5}, {6, 5}};
  const graph::UnitDiskGraph graph(points, geom::Aabb::Square(10.0), 2.0);
  std::ostringstream out;
  WriteSvg(out, graph, nullptr, {});
  const std::string svg = out.str();
  EXPECT_EQ(CountOccurrences(svg, "<line"), 0u);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 3u);  // 2 nodes + sink ring
}

TEST(SvgExportTest, RejectsBadScale) {
  const graph::UnitDiskGraph graph({{1, 1}}, geom::Aabb::Square(10.0), 2.0);
  std::ostringstream out;
  SvgOptions options;
  options.pixels_per_meter = 0.0;
  EXPECT_THROW(WriteSvg(out, graph, nullptr, {}, options), ContractViolation);
}

}  // namespace
}  // namespace crn::harness
