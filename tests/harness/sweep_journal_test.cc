// SweepJournal + RunJournaled: the crash-safe sweep bookkeeping behind
// addc_sim --journal/--resume. The contract under test: valid records
// replay instead of re-running; torn, foreign, or wrong-fingerprint
// records read as absent (worst case: one re-run, never a wrong result).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "harness/parallel_runner.h"
#include "harness/sweep_journal.h"

namespace crn::harness {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string CellPayload(std::int64_t index) {
  return "result for cell " + std::to_string(index) + "\n";
}

TEST(SweepJournalTest, RecordsPersistAcrossReopen) {
  const std::string dir = FreshDir("journal_reopen");
  {
    const SweepJournal journal(dir, "fp-v1");
    EXPECT_EQ(journal.complete_count(), 0U);
    EXPECT_TRUE(journal.Record(0, CellPayload(0)));
    EXPECT_TRUE(journal.Record(3, CellPayload(3)));
  }
  const SweepJournal reopened(dir, "fp-v1");
  EXPECT_EQ(reopened.complete_count(), 2U);
  EXPECT_TRUE(reopened.IsComplete(0));
  EXPECT_FALSE(reopened.IsComplete(1));
  EXPECT_TRUE(reopened.IsComplete(3));
  ASSERT_NE(reopened.Payload(3), nullptr);
  EXPECT_EQ(*reopened.Payload(3), CellPayload(3));
}

TEST(SweepJournalTest, FingerprintMismatchReadsAsAbsent) {
  const std::string dir = FreshDir("journal_fingerprint");
  {
    const SweepJournal journal(dir, "fp-old");
    EXPECT_TRUE(journal.Record(0, CellPayload(0)));
  }
  // Same directory, different experiment shape: the stale record must not
  // replay into the new sweep.
  const SweepJournal journal(dir, "fp-new");
  EXPECT_EQ(journal.complete_count(), 0U);
  EXPECT_EQ(journal.Payload(0), nullptr);
}

TEST(SweepJournalTest, TornAndForeignRecordsReadAsAbsent) {
  const std::string dir = FreshDir("journal_torn");
  const SweepJournal writer(dir, "fp");
  ASSERT_TRUE(writer.Record(0, CellPayload(0)));
  ASSERT_TRUE(writer.Record(1, CellPayload(1)));

  // Truncate record 0 mid-payload (simulating a non-atomic torn write) and
  // flip a payload byte of record 1 (CRC mismatch).
  {
    std::ifstream in(writer.CellPath(0), std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(writer.CellPath(0),
                      std::ios::binary | std::ios::trunc);
    out << contents.substr(0, contents.size() - 3);
  }
  {
    std::fstream file(writer.CellPath(1),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(-1, std::ios::end);
    file.put('X');
  }
  // Plus assorted non-record debris the scan must skip.
  std::ofstream(dir + "/cell_7.rec.tmp") << "killed mid-write";
  std::ofstream(dir + "/notes.txt") << "not a record";
  std::ofstream(dir + "/cell_x.rec") << "unparseable index";

  const SweepJournal reopened(dir, "fp");
  EXPECT_EQ(reopened.complete_count(), 0U);
  EXPECT_FALSE(reopened.IsComplete(0));
  EXPECT_FALSE(reopened.IsComplete(1));
}

TEST(RunJournaledTest, ReplaysCompleteCellsAndRunsOnlyTheRest) {
  const std::string dir = FreshDir("journal_run");
  const ParallelRunner runner(1);
  {
    const SweepJournal journal(dir, "fp");
    ASSERT_TRUE(journal.Record(1, CellPayload(1)));
    ASSERT_TRUE(journal.Record(2, CellPayload(2)));
  }
  const SweepJournal journal(dir, "fp");
  std::set<std::int64_t> ran;
  std::vector<std::int64_t> replayed_order;
  const std::int64_t replayed = RunJournaled(
      runner, journal, 4,
      [&](std::int64_t index) {
        ran.insert(index);
        return CellPayload(index);
      },
      [&](std::int64_t index, const std::string& payload) {
        EXPECT_EQ(payload, CellPayload(index));
        replayed_order.push_back(index);
      });
  EXPECT_EQ(replayed, 2);
  EXPECT_EQ(replayed_order, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(ran, (std::set<std::int64_t>{0, 3}));

  // The fresh cells were recorded, so a second pass replays everything.
  const SweepJournal completed(dir, "fp");
  EXPECT_EQ(completed.complete_count(), 4U);
  const std::int64_t second = RunJournaled(
      runner, completed, 4,
      [&](std::int64_t index) {
        ADD_FAILURE() << "cell " << index << " re-ran despite its record";
        return CellPayload(index);
      },
      [](std::int64_t, const std::string&) {});
  EXPECT_EQ(second, 4);
}

}  // namespace
}  // namespace crn::harness
