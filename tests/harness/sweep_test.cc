#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

namespace crn::harness {
namespace {

core::ScenarioConfig TinyConfig() {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.05);
  config.seed = 11;
  config.audit_stride = 0;  // keep the test fast
  return config;
}

void ClearBenchEnv() {
  ::unsetenv("CRN_FULL_SCALE");
  ::unsetenv("CRN_SCALE");
  ::unsetenv("CRN_REPS");
  ::unsetenv("CRN_JOBS");
  ::unsetenv("CRN_GRAIN");
  ::unsetenv("CRN_SEED");
  ::unsetenv("CRN_JSON_OUT");
}

// Builds argv with a leading program name and resolves.
BenchOptions Resolve(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  return ResolveBenchOptions(static_cast<int>(args.size()), args.data());
}

TEST(SweepTest, RepeatedComparisonProducesSaneSummary) {
  const ComparisonSummary summary = RunRepeatedComparison(TinyConfig(), 2);
  EXPECT_EQ(summary.addc_delay_ms.count, 2u);
  EXPECT_EQ(summary.coolest_delay_ms.count, 2u);
  EXPECT_EQ(summary.addc_completed, 2);
  EXPECT_EQ(summary.coolest_completed, 2);
  EXPECT_GT(summary.addc_delay_ms.mean, 0.0);
  EXPECT_GT(summary.coolest_delay_ms.mean, 0.0);
  EXPECT_GT(summary.delay_ratio, 0.0);
  EXPECT_GT(summary.addc_capacity.mean, 0.0);
  EXPECT_GT(summary.theorem2_bound_ms_mean, summary.addc_delay_ms.mean)
      << "Theorem 2 upper bound must dominate the measured delay";
  EXPECT_EQ(summary.addc_trace_digest, 0u) << "digests are opt-in";
}

TEST(SweepTest, RunSweepComputesOneSummaryPerPoint) {
  SweepSpec spec;
  spec.title = "test sweep";
  spec.parameter_name = "param";
  core::ScenarioConfig config = TinyConfig();
  spec.points.push_back({"A", config});
  config.pu_activity = 0.2;
  spec.points.push_back({"B", config});
  const SweepResult result = RunSweep(spec);
  ASSERT_EQ(result.summaries.size(), 2u);
  EXPECT_EQ(result.labels, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(result.title, "test sweep");
  EXPECT_EQ(result.seed, 11u);
  EXPECT_EQ(result.jobs, 1);
  EXPECT_EQ(result.trace_digest, 0u) << "digests are opt-in";
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.summaries[0].addc_delay_ms.mean, 0.0);
}

TEST(SweepTest, RenderDelayTablePrintsOneRowPerPoint) {
  // The render phase consumes a plain value — no simulation needed.
  SweepResult result;
  result.title = "test sweep";
  result.parameter_name = "param";
  result.labels = {"A", "B"};
  ComparisonSummary summary;
  summary.addc_delay_ms.mean = 100.0;
  summary.coolest_delay_ms.mean = 250.0;
  summary.delay_ratio = 2.5;
  result.summaries = {summary, summary};
  std::ostringstream out;
  RenderDelayTable(result, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("test sweep"), std::string::npos);
  EXPECT_NE(text.find("| A"), std::string::npos);
  EXPECT_NE(text.find("| B"), std::string::npos);
  EXPECT_NE(text.find("ADDC delay (ms)"), std::string::npos);
  EXPECT_NE(text.find("2.50"), std::string::npos);
}

TEST(BenchOptionsTest, DefaultsAreScaledDown) {
  ClearBenchEnv();
  const BenchOptions options = Resolve({});
  EXPECT_FALSE(options.full_scale);
  EXPECT_EQ(options.base.num_sus, 500);
  EXPECT_EQ(options.base.num_pus, 100);
  EXPECT_EQ(options.repetitions, 3);
  EXPECT_EQ(options.jobs, 0) << "0 = hardware concurrency";
  EXPECT_TRUE(options.json_out.empty());
}

TEST(BenchOptionsTest, FullScaleFlag) {
  ClearBenchEnv();
  const BenchOptions options = Resolve({"--full-scale"});
  EXPECT_TRUE(options.full_scale);
  EXPECT_EQ(options.base.num_sus, 2000);
  EXPECT_EQ(options.repetitions, 10);
}

TEST(BenchOptionsTest, FullScaleEnvFallback) {
  ClearBenchEnv();
  ::setenv("CRN_FULL_SCALE", "1", 1);
  const BenchOptions options = Resolve({});
  EXPECT_TRUE(options.full_scale);
  ClearBenchEnv();
}

TEST(BenchOptionsTest, EnvFallbacksApply) {
  ClearBenchEnv();
  ::setenv("CRN_SCALE", "0.1", 1);
  ::setenv("CRN_REPS", "5", 1);
  ::setenv("CRN_JOBS", "2", 1);
  const BenchOptions options = Resolve({});
  EXPECT_EQ(options.base.num_sus, 200);
  EXPECT_EQ(options.repetitions, 5);
  EXPECT_EQ(options.jobs, 2);
  ClearBenchEnv();
}

TEST(BenchOptionsTest, FlagsOverrideEnvironment) {
  ClearBenchEnv();
  ::setenv("CRN_REPS", "4", 1);
  ::setenv("CRN_JOBS", "2", 1);
  const BenchOptions options =
      Resolve({"--reps=6", "--jobs=3", "--seed=42", "--json-out=out.json"});
  EXPECT_EQ(options.repetitions, 6);
  EXPECT_EQ(options.jobs, 3);
  EXPECT_EQ(options.base.seed, 42u);
  EXPECT_EQ(options.json_out, "out.json");
  ClearBenchEnv();
}

TEST(BenchOptionsTest, GrainFlagAndEnvFallback) {
  ClearBenchEnv();
  EXPECT_EQ(Resolve({}).grain, 0) << "0 = auto (cells / (4 * jobs))";
  ::setenv("CRN_GRAIN", "8", 1);
  EXPECT_EQ(Resolve({}).grain, 8);
  EXPECT_EQ(Resolve({"--grain=3"}).grain, 3) << "flag beats environment";
  ClearBenchEnv();
}

TEST(BenchOptionsTest, HeaderMentionsScaleClaimAndJobs) {
  ClearBenchEnv();
  const BenchOptions options = Resolve({"--jobs=3"});
  std::ostringstream out;
  PrintBenchHeader("Fig. 6(x)", "some claim", options, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Fig. 6(x)"), std::string::npos);
  EXPECT_NE(text.find("some claim"), std::string::npos);
  EXPECT_NE(text.find("scaled-down"), std::string::npos);
  EXPECT_NE(text.find("jobs=3"), std::string::npos);
}

}  // namespace
}  // namespace crn::harness
