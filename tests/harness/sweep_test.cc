#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

namespace crn::harness {
namespace {

core::ScenarioConfig TinyConfig() {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.05);
  config.seed = 11;
  config.audit_stride = 0;  // keep the test fast
  return config;
}

TEST(SweepTest, RepeatedComparisonProducesSaneSummary) {
  const ComparisonSummary summary = RunRepeatedComparison(TinyConfig(), 2);
  EXPECT_EQ(summary.addc_delay_ms.count, 2u);
  EXPECT_EQ(summary.coolest_delay_ms.count, 2u);
  EXPECT_EQ(summary.addc_completed, 2);
  EXPECT_EQ(summary.coolest_completed, 2);
  EXPECT_GT(summary.addc_delay_ms.mean, 0.0);
  EXPECT_GT(summary.coolest_delay_ms.mean, 0.0);
  EXPECT_GT(summary.delay_ratio, 0.0);
  EXPECT_GT(summary.addc_capacity.mean, 0.0);
  EXPECT_GT(summary.theorem2_bound_ms_mean, summary.addc_delay_ms.mean)
      << "Theorem 2 upper bound must dominate the measured delay";
}

TEST(SweepTest, DelaySweepPrintsOneRowPerPoint) {
  std::vector<SweepPoint> points;
  core::ScenarioConfig config = TinyConfig();
  points.push_back({"A", config});
  config.pu_activity = 0.2;
  points.push_back({"B", config});
  std::ostringstream out;
  const auto summaries = RunDelaySweep("test sweep", "param", points, 1, out);
  EXPECT_EQ(summaries.size(), 2u);
  const std::string text = out.str();
  EXPECT_NE(text.find("test sweep"), std::string::npos);
  EXPECT_NE(text.find("| A"), std::string::npos);
  EXPECT_NE(text.find("| B"), std::string::npos);
  EXPECT_NE(text.find("ADDC delay (ms)"), std::string::npos);
}

TEST(BenchScaleTest, DefaultsAreScaledDown) {
  ::unsetenv("CRN_FULL_SCALE");
  ::unsetenv("CRN_SCALE");
  ::unsetenv("CRN_REPS");
  const BenchScale scale = ResolveBenchScale();
  EXPECT_FALSE(scale.full_scale);
  EXPECT_EQ(scale.base.num_sus, 500);
  EXPECT_EQ(scale.base.num_pus, 100);
  EXPECT_EQ(scale.repetitions, 3);
}

TEST(BenchScaleTest, FullScaleEnv) {
  ::setenv("CRN_FULL_SCALE", "1", 1);
  const BenchScale scale = ResolveBenchScale();
  EXPECT_TRUE(scale.full_scale);
  EXPECT_EQ(scale.base.num_sus, 2000);
  EXPECT_EQ(scale.repetitions, 10);
  ::unsetenv("CRN_FULL_SCALE");
}

TEST(BenchScaleTest, RepsOverride) {
  ::setenv("CRN_REPS", "5", 1);
  const BenchScale scale = ResolveBenchScale();
  EXPECT_EQ(scale.repetitions, 5);
  ::unsetenv("CRN_REPS");
}

TEST(BenchScaleTest, ScaleOverride) {
  ::setenv("CRN_SCALE", "0.1", 1);
  const BenchScale scale = ResolveBenchScale();
  EXPECT_EQ(scale.base.num_sus, 200);
  ::unsetenv("CRN_SCALE");
}

TEST(BenchScaleTest, HeaderMentionsScaleAndClaim) {
  ::unsetenv("CRN_FULL_SCALE");
  const BenchScale scale = ResolveBenchScale();
  std::ostringstream out;
  PrintBenchHeader("Fig. 6(x)", "some claim", scale, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Fig. 6(x)"), std::string::npos);
  EXPECT_NE(text.find("some claim"), std::string::npos);
  EXPECT_NE(text.find("scaled-down"), std::string::npos);
}

}  // namespace
}  // namespace crn::harness
