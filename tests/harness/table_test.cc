#include "harness/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace crn::harness {
namespace {

TEST(TableTest, MarkdownLayout) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "12345"});
  std::ostringstream out;
  table.PrintMarkdown(out);
  EXPECT_EQ(out.str(),
            "| name  | value |\n"
            "|-------|-------|\n"
            "| alpha | 1     |\n"
            "| b     | 12345 |\n");
}

TEST(TableTest, CsvLayout) {
  Table table({"a", "b", "c"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({"x", "y", "z"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b,c\n1,2,3\nx,y,z\n");
}

TEST(TableTest, RejectsWrongArity) {
  Table table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), ContractViolation);
  EXPECT_THROW(table.AddRow({"1", "2", "3"}), ContractViolation);
}

TEST(TableTest, EmptyTableStillPrintsHeader) {
  Table table({"x"});
  std::ostringstream out;
  table.PrintMarkdown(out);
  EXPECT_EQ(out.str(), "| x |\n|---|\n");
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(12000.0, 0), "12000");
}

TEST(FormatTest, FormatMeanStd) {
  EXPECT_EQ(FormatMeanStd(10.0, 2.5, 1), "10.0 ± 2.5");
  EXPECT_EQ(FormatMeanStd(100.123, 0.004, 2), "100.12 ± 0.00");
}

}  // namespace
}  // namespace crn::harness
