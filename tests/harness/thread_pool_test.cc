#include "harness/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "harness/parallel_runner.h"

namespace crn::harness {
namespace {

TEST(ThreadPoolTest, SingleWorkerRunsJobsInSubmissionOrder) {
  std::vector<int> order;
  ThreadPool pool(1);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, SubmitReturnsTheJobsValue) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.Submit([]() -> int { throw std::runtime_error("cell failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsEveryQueuedJob) {
  std::atomic<int> done{0};
  ThreadPool pool(2);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { ++done; });
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsAContractViolation) {
  ThreadPool pool(1);
  pool.Shutdown();
  try {
    pool.Submit([] {});
    FAIL() << "expected Submit after Shutdown to CRN_CHECK-fail";
  } catch (const ContractViolation& violation) {
    // The message must tell the caller what happened and what to do.
    EXPECT_NE(std::string(violation.what()).find("after Shutdown()"),
              std::string::npos);
    EXPECT_NE(std::string(violation.what()).find("fresh pool"),
              std::string::npos);
  }
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  std::atomic<int> done{0};
  ThreadPool pool(2);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&done] { ++done; });
  }
  pool.Shutdown();
  pool.Shutdown();  // second call must be a harmless no-op
  EXPECT_EQ(done.load(), 16);
  // The destructor runs Shutdown() a third time on scope exit.
}

TEST(ThreadPoolTest, ThreadCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ParallelRunnerTest, ResolveJobsLiteralAndAuto) {
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(5), 5);
  EXPECT_GE(ResolveJobs(0), 1);
  EXPECT_GE(ResolveJobs(-2), 1);
}

TEST(ParallelRunnerTest, ForEachIndexCoversEveryIndexExactlyOnce) {
  const ParallelRunner runner(4);
  std::vector<int> hits(37, 0);
  runner.ForEachIndex(37, [&](std::int64_t index) {
    ++hits[static_cast<std::size_t>(index)];
  });
  for (const int hit : hits) EXPECT_EQ(hit, 1);
}

TEST(ParallelRunnerTest, LowestIndexExceptionWins) {
  const ParallelRunner runner(4);
  try {
    runner.ForEachIndex(8, [](std::int64_t index) {
      if (index == 2 || index == 5) {
        throw std::runtime_error("cell " + std::to_string(index));
      }
    });
    FAIL() << "expected ForEachIndex to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "cell 2");
  }
}

TEST(ParallelRunnerTest, SingleJobRunsInlineOnTheCallingThread) {
  const ParallelRunner runner(1);
  const std::thread::id caller = std::this_thread::get_id();
  runner.ForEachIndex(4, [&](std::int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

}  // namespace
}  // namespace crn::harness
