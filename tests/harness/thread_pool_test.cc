#include "harness/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/parallel_runner.h"

namespace crn::harness {
namespace {

TEST(ThreadPoolTest, SingleWorkerRunsJobsInSubmissionOrder) {
  std::vector<int> order;
  ThreadPool pool(1);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, SubmitReturnsTheJobsValue) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.Submit([]() -> int { throw std::runtime_error("cell failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsEveryQueuedJob) {
  std::atomic<int> done{0};
  ThreadPool pool(2);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { ++done; });
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, ThreadCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ParallelRunnerTest, ResolveJobsLiteralAndAuto) {
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(5), 5);
  EXPECT_GE(ResolveJobs(0), 1);
  EXPECT_GE(ResolveJobs(-2), 1);
}

TEST(ParallelRunnerTest, ForEachIndexCoversEveryIndexExactlyOnce) {
  const ParallelRunner runner(4);
  std::vector<int> hits(37, 0);
  runner.ForEachIndex(37, [&](std::int64_t index) {
    ++hits[static_cast<std::size_t>(index)];
  });
  for (const int hit : hits) EXPECT_EQ(hit, 1);
}

TEST(ParallelRunnerTest, LowestIndexExceptionWins) {
  const ParallelRunner runner(4);
  try {
    runner.ForEachIndex(8, [](std::int64_t index) {
      if (index == 2 || index == 5) {
        throw std::runtime_error("cell " + std::to_string(index));
      }
    });
    FAIL() << "expected ForEachIndex to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "cell 2");
  }
}

TEST(ParallelRunnerTest, SingleJobRunsInlineOnTheCallingThread) {
  const ParallelRunner runner(1);
  const std::thread::id caller = std::this_thread::get_id();
  runner.ForEachIndex(4, [&](std::int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

}  // namespace
}  // namespace crn::harness
