// Work-stealing engine contracts: exactly-once coverage under concurrent
// owners and thieves, deterministic grain/chunk accounting, lowest-index
// exception propagation, and a many-workers stress shape for the TSAN
// preset (randomized victim order makes every interleaving fair game; the
// per-chunk atomic claim is what TSAN must find sufficient).
#include "harness/work_stealing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace crn::harness {
namespace {

TEST(WorkStealingTest, ResolveGrainLiteralAndAuto) {
  EXPECT_EQ(ResolveGrain(7, 1000, 4), 7);
  EXPECT_EQ(ResolveGrain(1, 1000, 4), 1);
  // Auto: count / (4 * workers), floored at 1.
  EXPECT_EQ(ResolveGrain(0, 1000, 4), 62);
  EXPECT_EQ(ResolveGrain(0, 8, 4), 1);
  EXPECT_EQ(ResolveGrain(-3, 64, 2), 8);
  EXPECT_EQ(ResolveGrain(0, 0, 4), 1);
}

TEST(WorkStealingTest, CoversEveryIndexExactlyOnce) {
  for (const std::int32_t workers : {1, 2, 4, 8}) {
    for (const std::int64_t grain : {std::int64_t{0}, std::int64_t{1},
                                     std::int64_t{3}, std::int64_t{16},
                                     std::int64_t{1000}}) {
      for (const std::int64_t count :
           {std::int64_t{0}, std::int64_t{1}, std::int64_t{37},
            std::int64_t{256}}) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
        const WorkStealingStats stats = RunWorkStealing(
            count, workers, grain, [&](std::int64_t i) {
              hits[static_cast<std::size_t>(i)].fetch_add(1);
            });
        for (const auto& hit : hits) {
          ASSERT_EQ(hit.load(), 1)
              << "workers=" << workers << " grain=" << grain
              << " count=" << count;
        }
        EXPECT_EQ(stats.tasks, count);
      }
    }
  }
}

TEST(WorkStealingTest, ChunkAccountingIsDeterministic) {
  const auto noop = [](std::int64_t) {};
  WorkStealingStats stats = RunWorkStealing(100, 4, 10, noop);
  EXPECT_EQ(stats.tasks, 100);
  EXPECT_EQ(stats.chunks, 10);  // ceil(100 / 10)
  EXPECT_EQ(stats.workers, 4);
  stats = RunWorkStealing(101, 4, 10, noop);
  EXPECT_EQ(stats.chunks, 11);
  // Workers never exceed chunks.
  stats = RunWorkStealing(6, 8, 2, noop);
  EXPECT_EQ(stats.chunks, 3);
  EXPECT_EQ(stats.workers, 3);
  // Empty fan-out: nothing runs, nothing is materialized.
  stats = RunWorkStealing(0, 8, 2, noop);
  EXPECT_EQ(stats.tasks, 0);
  EXPECT_EQ(stats.chunks, 0);
}

TEST(WorkStealingTest, SerialEngineStealsNothing) {
  const WorkStealingStats stats =
      RunWorkStealing(64, 1, 4, [](std::int64_t) {});
  EXPECT_EQ(stats.workers, 1);
  EXPECT_EQ(stats.steals, 0);
}

TEST(WorkStealingTest, StealsAreBoundedByChunks) {
  // Slow first chunk forces the other workers to finish and steal.
  const WorkStealingStats stats =
      RunWorkStealing(512, 8, 1, [](std::int64_t i) {
        if (i == 0) {
          std::atomic<std::int64_t> spin{0};
          while (spin.fetch_add(1) < 2'000'000) {
          }
        }
      });
  EXPECT_EQ(stats.chunks, 512);
  EXPECT_GE(stats.steals, 0);
  EXPECT_LE(stats.steals, stats.chunks);
}

TEST(WorkStealingTest, LowestIndexExceptionWinsAcrossStolenChunks) {
  // grain=1 maximizes stealing; the failing indices straddle worker blocks.
  std::vector<std::atomic<int>> hits(64);
  try {
    RunWorkStealing(64, 8, 1, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
      if (i == 9 || i == 33 || i == 60) {
        throw std::runtime_error("cell " + std::to_string(i));
      }
    });
    FAIL() << "expected RunWorkStealing to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "cell 9");
  }
  // The contract: every cell still ran despite the failures.
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

// Stress shape for the TSAN preset: many workers on tiny chunks, shared
// accumulator via atomics, repeated so the randomized victim order visits
// many interleavings. A claim bug shows up as a sum mismatch (double
// execution) here, and as a data race under TSAN.
TEST(WorkStealingStressTest, ManyProducersAndThievesKeepExactlyOnce) {
  constexpr std::int64_t kCount = 2048;
  for (int round = 0; round < 8; ++round) {
    std::atomic<std::int64_t> sum{0};
    const WorkStealingStats stats =
        RunWorkStealing(kCount, 8, 1, [&](std::int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
    EXPECT_EQ(stats.tasks, kCount);
    EXPECT_LE(stats.steals, stats.chunks);
  }
}

}  // namespace
}  // namespace crn::harness
