// Shared machinery for the checkpoint/restore contract tests: one scenario
// shape, one fault-churn plan, one "run this variant" entry point, and one
// bit-identity assertion — so the in-process resume matrix
// (checkpoint_resume_test.cc) and the SIGKILL crash soak
// (crash_recovery_test.cc) pin exactly the same observable state and can
// never drift apart on what "identical" means.
#ifndef CRN_TESTS_INTEGRATION_CHECKPOINT_HARNESS_H_
#define CRN_TESTS_INTEGRATION_CHECKPOINT_HARNESS_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/collection.h"
#include "core/invariant_auditor.h"
#include "core/scenario.h"
#include "faults/fault_plan.h"
#include "obs/metrics.h"
#include "sim/flight_recorder.h"

namespace crn::core {

struct Variant {
  bool faults = false;
  bool flight = false;
};

// Everything a run leaves behind that the contract pins bit-exactly, plus
// the checkpoints captured along the way (empty on non-checkpointing runs).
struct Captured {
  std::vector<std::pair<std::uint64_t, std::string>> checkpoints;
  AuditReport audit;
  std::uint64_t metrics_digest = 0;
  faults::FaultReport fault_report;
  CollectionResult result;
};

// Crash churn plus sensing bursts, dense enough that checkpoints land with
// pending repair passes and un-fired timeline events in flight.
inline faults::FaultPlan SoakPlan() {
  faults::FaultPlan plan;
  std::string error;
  const bool ok = faults::ParsePlanText(
      "gen crash 25 40\n"
      "gen sensing_burst 10 0.3 0.3 30\n"
      "option horizon_ms 3000\n"
      "option repair_delay_ms 2\n"
      "option retx_budget 6\n",
      plan, error);
  CRN_CHECK(ok) << error;
  return plan;
}

inline Captured RunVariant(std::uint64_t seed, const Variant& variant,
                           std::int64_t checkpoint_every,
                           const std::string* restore_blob) {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);  // n = 200
  config.seed = seed;
  const Scenario scenario(config, 0);

  Captured out;
  obs::MetricsRegistry metrics;
  sim::FlightRecorder recorder;
  const faults::FaultPlan plan = SoakPlan();

  RunOptions options;
  options.audit_report = &out.audit;
  options.metrics = &metrics;
  if (variant.faults) {
    options.faults = &plan;
    options.fault_report = &out.fault_report;
  }
  if (variant.flight) options.flight_recorder = &recorder;
  if (checkpoint_every > 0) {
    options.checkpoint_every_events = checkpoint_every;
    options.checkpoint_sink = [&out](const std::string& blob,
                                     std::uint64_t events) {
      out.checkpoints.emplace_back(events, blob);
    };
  }
  options.restore_blob = restore_blob;
  out.result = RunAddc(scenario, options);
  out.metrics_digest = metrics.Digest();
  return out;
}

// Exact equality everywhere — both runs are the same deterministic
// computation, interrupted or not.
inline void ExpectBitIdentical(const Captured& base, const Captured& other) {
  EXPECT_NE(base.audit.trace_digest, 0U);
  EXPECT_EQ(base.audit.trace_digest, other.audit.trace_digest);
  EXPECT_EQ(base.audit.events_observed, other.audit.events_observed);
  EXPECT_EQ(base.audit.tx_starts, other.audit.tx_starts);
  EXPECT_EQ(base.audit.receptions_checked, other.audit.receptions_checked);
  EXPECT_EQ(base.audit.pu_checks, other.audit.pu_checks);
  EXPECT_EQ(base.audit.total_violations(), other.audit.total_violations());

  EXPECT_NE(base.metrics_digest, 0U);
  EXPECT_EQ(base.metrics_digest, other.metrics_digest);

  EXPECT_EQ(base.result.completed, other.result.completed);
  EXPECT_EQ(base.result.delay_ms, other.result.delay_ms);
  EXPECT_EQ(base.result.capacity_fraction, other.result.capacity_fraction);
  EXPECT_EQ(base.result.avg_hops, other.result.avg_hops);
  EXPECT_EQ(base.result.delivery_ratio, other.result.delivery_ratio);
  EXPECT_EQ(base.result.mac.delivered, other.result.mac.delivered);
  EXPECT_EQ(base.result.mac.attempts, other.result.mac.attempts);
  EXPECT_EQ(base.result.mac.finish_time, other.result.mac.finish_time);

  EXPECT_EQ(base.fault_report.injected_total(),
            other.fault_report.injected_total());
  EXPECT_EQ(base.fault_report.repairs_attempted,
            other.fault_report.repairs_attempted);
  EXPECT_EQ(base.fault_report.reattached_total,
            other.fault_report.reattached_total);
  EXPECT_EQ(base.fault_report.recoveries, other.fault_report.recoveries);
}

}  // namespace crn::core

#endif  // CRN_TESTS_INTEGRATION_CHECKPOINT_HARNESS_H_
