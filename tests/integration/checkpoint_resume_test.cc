// The checkpoint/restore bit-identity contract at full-stack scale
// (DESIGN.md §14): a collection run checkpointed at event k and resumed
// from the blob must finish with the same trace digest, the same metrics
// digest, and the same audit report as the uninterrupted run — across
// seeds, across checkpoint points, with and without fault injection and
// the flight recorder attached. This is the library-level half of the
// recovery story; tests/integration/crash_recovery_test.cc adds the
// SIGKILL-under-fire half on top of the same machinery
// (checkpoint_harness.h).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "core/invariant_auditor.h"
#include "core/scenario.h"

#include "checkpoint_harness.h"

namespace crn::core {
namespace {

TEST(CheckpointResumeTest, TakingCheckpointsDoesNotPerturbTheRun) {
  const Captured pure = RunVariant(41, {}, 0, nullptr);
  const Captured checkpointed = RunVariant(41, {}, 2000, nullptr);
  EXPECT_GE(checkpointed.checkpoints.size(), 2U);
  ExpectBitIdentical(pure, checkpointed);
}

TEST(CheckpointResumeTest, ResumeIsBitIdenticalAcrossSeedsAndPoints) {
  for (const std::uint64_t seed : {41ULL, 42ULL, 43ULL}) {
    const Captured base = RunVariant(seed, {}, 2000, nullptr);
    ASSERT_GE(base.checkpoints.size(), 2U) << "seed " << seed;
    // An early and a mid-run point: pending one-shots and queue content
    // differ materially between the two.
    for (const std::size_t point : {std::size_t{0}, base.checkpoints.size() / 2}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << " resumed from event "
                   << base.checkpoints[point].first);
      const Captured resumed =
          RunVariant(seed, {}, 0, &base.checkpoints[point].second);
      ExpectBitIdentical(base, resumed);
    }
  }
}

TEST(CheckpointResumeTest, ResumeUnderFaultChurnIsBitIdentical) {
  const Variant faulted{/*faults=*/true, /*flight=*/false};
  for (const std::uint64_t seed : {41ULL, 42ULL, 43ULL}) {
    const Captured base = RunVariant(seed, faulted, 2000, nullptr);
    ASSERT_GE(base.checkpoints.size(), 2U) << "seed " << seed;
    EXPECT_GT(base.fault_report.injected_total(), 0) << "seed " << seed;
    for (const std::size_t point : {std::size_t{0}, base.checkpoints.size() / 2}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << " resumed from event "
                   << base.checkpoints[point].first);
      const Captured resumed =
          RunVariant(seed, faulted, 0, &base.checkpoints[point].second);
      ExpectBitIdentical(base, resumed);
    }
  }
}

TEST(CheckpointResumeTest, ResumeWithFlightRecorderIsBitIdentical) {
  // Faults + recorder together: the per-kind scheduler counters feed the
  // metrics digest, so a recorder restore gap would surface here.
  const Variant instrumented{/*faults=*/true, /*flight=*/true};
  const Captured base = RunVariant(41, instrumented, 2000, nullptr);
  ASSERT_GE(base.checkpoints.size(), 2U);
  for (const std::size_t point : {std::size_t{0}, base.checkpoints.size() / 2}) {
    SCOPED_TRACE(::testing::Message() << "resumed from event "
                                      << base.checkpoints[point].first);
    const Captured resumed =
        RunVariant(41, instrumented, 0, &base.checkpoints[point].second);
    ExpectBitIdentical(base, resumed);
  }
}

TEST(CheckpointResumeTest, ResumedRunCanItselfCheckpoint) {
  // A resumed run that keeps checkpointing — the crash soak's steady state:
  // kill, resume, kill again. Its later checkpoints must be usable too.
  const Captured base = RunVariant(42, {}, 2000, nullptr);
  ASSERT_GE(base.checkpoints.size(), 2U);
  const Captured resumed =
      RunVariant(42, {}, 2000, &base.checkpoints[0].second);
  ExpectBitIdentical(base, resumed);
  ASSERT_FALSE(resumed.checkpoints.empty());
  const Captured resumed_again =
      RunVariant(42, {}, 0, &resumed.checkpoints.back().second);
  ExpectBitIdentical(base, resumed_again);
}

TEST(CheckpointResumeTest, RestoreRejectsMismatchedScenario) {
  const Captured base = RunVariant(41, {}, 2000, nullptr);
  ASSERT_FALSE(base.checkpoints.empty());
  EXPECT_THROW(RunVariant(42, {}, 0, &base.checkpoints[0].second),
               ContractViolation);
}

TEST(CheckpointResumeTest, RestoreRejectsMismatchedAttachments) {
  const Captured base = RunVariant(41, {}, 2000, nullptr);
  ASSERT_FALSE(base.checkpoints.empty());
  const Variant faulted{/*faults=*/true, /*flight=*/false};
  EXPECT_THROW(RunVariant(41, faulted, 0, &base.checkpoints[0].second),
               ContractViolation);
}

}  // namespace
}  // namespace crn::core
