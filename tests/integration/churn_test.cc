// Network-dynamics tests: SUs leaving mid-collection with local route
// repair (the §I scenario that motivates distributed operation).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "graph/repair.h"
#include "core/scenario.h"
#include "graph/cds_tree.h"
#include "mac/collection_mac.h"
#include "sim/simulator.h"

namespace crn::core {
namespace {

using geom::Aabb;
using geom::Vec2;
using graph::NodeId;
using graph::PlanCascadeRepair;
using graph::PlanLocalRepair;
using graph::RepairPlan;

// A line 0 <- 1 <- 2 <- 3 <- 4 with a shortcut neighbor: node 2 will fail.
struct ChurnRig {
  ChurnRig()
      : area(Aabb::Square(100.0)),
        positions{{10, 50}, {18, 50}, {26, 50}, {34, 50}, {42, 50}, {26, 44}},
        primary(PuConfig(), area, std::vector<Vec2>{}),
        mac(simulator, primary, positions, area, 0, {0, 0, 1, 2, 3, 1},
            Config(), Rng(23)) {}

  static mac::MacConfig Config() {
    mac::MacConfig config;
    config.pcr = 30.0;
    config.audit_stride = 0;
    config.max_sim_time = 60 * sim::kSecond;
    return config;
  }
  static pu::PrimaryConfig PuConfig() {
    pu::PrimaryConfig config;
    config.count = 0;
    config.activity = 0.0;
    return config;
  }

  Aabb area;
  std::vector<Vec2> positions;
  sim::Simulator simulator;
  pu::PrimaryNetwork primary;
  mac::CollectionMac mac;
};

TEST(ChurnTest, FailedNodeQueueShrinksExpectations) {
  ChurnRig rig;
  rig.mac.StartSnapshotCollection();  // 5 packets
  // Kill node 2 immediately: its own packet dies with it.
  rig.simulator.ScheduleOnce(0, sim::EventPriority::kDefault, [&] {
    rig.mac.FailNode(2);
    // Node 3 routed through 2; re-route via the shortcut node 5 — within
    // range (node 3 at (34,50), node 5 at (26,44): ~10 m if radius allows;
    // the MAC does not enforce radii, routing policy does).
    rig.mac.UpdateNextHop(3, 5);
  });
  rig.simulator.Run();
  EXPECT_TRUE(rig.mac.finished());
  EXPECT_EQ(rig.mac.expected_packets(), 4);
  EXPECT_EQ(rig.mac.stats().delivered, 4);
  EXPECT_LT(rig.mac.delivery_time()[2], 0) << "node 2's packet died with it";
  EXPECT_GE(rig.mac.delivery_time()[4], 0) << "node 4 re-routed via 3 -> 5 -> 1";
}

TEST(ChurnTest, MidFlightFailureCutsTransmission) {
  ChurnRig rig;
  rig.mac.StartCollection({2});
  bool failed_midflight = false;
  rig.mac.AddTxObserver([&](const mac::TxEvent& event) {
    if (event.transmitter == 2 && !failed_midflight &&
        event.outcome == mac::TxOutcome::kAbortedPuReturn) {
      failed_midflight = true;
    }
  });
  // Fail node 2 at 0.35 ms — mid-backoff or mid-transmission.
  rig.simulator.ScheduleOnceAfter(350 * sim::kMicrosecond, sim::EventPriority::kDefault,
                              [&] { rig.mac.FailNode(2); });
  rig.simulator.Run();
  EXPECT_EQ(rig.mac.expected_packets(), 0);
  EXPECT_EQ(rig.mac.stats().delivered, 0);
  EXPECT_TRUE(rig.mac.IsFailed(2));
}

TEST(ChurnTest, TransmissionTowardFailedNodeFails) {
  ChurnRig rig;
  rig.mac.StartCollection({3});  // routes 3 -> 2 -> 1 -> 0
  rig.simulator.ScheduleOnce(0, sim::EventPriority::kDefault,
                           [&] { rig.mac.FailNode(2); });
  // No repair: node 3 keeps failing into the void until the timeout.
  ChurnRig::Config();
  rig.simulator.Run();
  EXPECT_FALSE(rig.mac.finished());
  EXPECT_GT(rig.mac.stats().outcomes[static_cast<int>(mac::TxOutcome::kReceiverBusy)],
            0);
}

TEST(ChurnTest, GuardsRejectIllegalOperations) {
  ChurnRig rig;
  rig.mac.StartSnapshotCollection();
  EXPECT_THROW(rig.mac.FailNode(0), ContractViolation);  // sink
  rig.simulator.ScheduleOnce(0, sim::EventPriority::kDefault, [&] {
    rig.mac.FailNode(2);
    EXPECT_THROW(rig.mac.FailNode(2), ContractViolation);          // twice
    EXPECT_THROW(rig.mac.UpdateNextHop(3, 2), ContractViolation);  // dead hop
    EXPECT_THROW(rig.mac.UpdateNextHop(3, 3), ContractViolation);  // self-loop
    rig.mac.UpdateNextHop(3, 5);  // legal repair: 3 -> 5 -> 1 -> 0
    EXPECT_THROW(rig.mac.UpdateNextHop(5, 4), ContractViolation);  // 3-5-4 cycle
    rig.simulator.Stop();
  });
  rig.simulator.Run();
}

TEST(PlanLocalRepairTest, OrphansReattachToLowerLevelNeighbors) {
  // Deployed scenario: kill one connector, plan repair, verify the plan is
  // level-monotone and complete.
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);
  config.seed = 33;
  const Scenario scenario(config, 0);
  const graph::UnitDiskGraph& graph = scenario.secondary_graph();
  const graph::BfsLayering bfs = BreadthFirstLayering(graph, scenario.sink());
  const graph::CdsTree tree(graph, scenario.sink());
  std::vector<NodeId> next_hop(tree.node_count());
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    next_hop[v] = v == scenario.sink() ? scenario.sink() : tree.parent(v);
  }
  // Pick a connector with children.
  NodeId victim = graph::kInvalidNode;
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.role(v) == graph::NodeRole::kConnector && !tree.children(v).empty()) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidNode);
  std::vector<char> alive(tree.node_count(), 1);
  alive[victim] = 0;
  const RepairPlan plan = PlanLocalRepair(graph, bfs, next_hop, alive, victim);
  EXPECT_TRUE(plan.complete()) << plan.orphaned.size() << " orphans remain";
  // Every direct child is rewired (the rest of the subtree may be too).
  ASSERT_GE(plan.repaired.size(), tree.children(victim).size());
  for (const auto& [node, new_hop] : plan.repaired) {
    EXPECT_TRUE(graph.HasEdge(node, new_hop));
    EXPECT_TRUE(alive[new_hop]);
    EXPECT_NE(new_hop, victim);
    next_hop[node] = new_hop;
  }
  // Applying the plan, every live node routes to the sink without touching
  // the victim, acyclically.
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (!alive[v]) continue;
    NodeId cursor = v;
    std::int32_t steps = 0;
    while (cursor != scenario.sink()) {
      ASSERT_NE(cursor, victim) << "route of " << v << " still passes the victim";
      cursor = next_hop[cursor];
      ASSERT_LE(++steps, tree.node_count()) << "cycle from " << v;
    }
  }
}

TEST(PlanLocalRepairTest, ReportsUnrepairableOrphans) {
  // Line 0 - 1 - 2: node 2's only lower neighbor is 1; kill 1. The planner
  // must not throw — it reports the partition so the caller can degrade
  // gracefully (delivery ratio < 1) instead of aborting the run.
  const std::vector<Vec2> line{{0, 50}, {8, 50}, {16, 50}};
  const graph::UnitDiskGraph graph(line, Aabb::Square(60.0), 10.0);
  const graph::BfsLayering bfs = BreadthFirstLayering(graph, 0);
  std::vector<NodeId> next_hop{0, 0, 1};
  std::vector<char> alive{1, 0, 1};
  const RepairPlan plan = PlanLocalRepair(graph, bfs, next_hop, alive, 1);
  EXPECT_FALSE(plan.complete());
  EXPECT_TRUE(plan.repaired.empty());
  ASSERT_EQ(plan.orphaned.size(), 1u);
  EXPECT_EQ(plan.orphaned[0], 2);
  // Cascade repair sees the same partition — and the same verdict.
  const RepairPlan cascade = PlanCascadeRepair(graph, next_hop, alive, 0);
  EXPECT_TRUE(cascade.repaired.empty());
  ASSERT_EQ(cascade.orphaned.size(), 1u);
  EXPECT_EQ(cascade.orphaned[0], 2);
}

TEST(PlanCascadeRepairTest, RerootsDeepOrphansAcrossMultipleFailures) {
  // Two parallel lines to the sink joined at the far end:
  //   0 <- 1 <- 2 <- 3          (top row, y = 50)
  //   0 <- 4 <- 5 <- 6 <- 7     (bottom row, y = 42; 3 - 7 edge by proximity)
  // Killing 1 AND 2 strands {3}: its only live neighbor is 7, three hops
  // from the sink on the other branch — exactly the multi-hop re-rooting
  // the cascade provides in one pass.
  const std::vector<Vec2> positions{{0, 50},  {9, 50},  {18, 50}, {27, 50},
                                    {0, 42},  {9, 42},  {18, 42}, {27, 42}};
  const graph::UnitDiskGraph graph(positions, Aabb::Square(60.0), 10.0);
  std::vector<NodeId> next_hop{0, 0, 1, 2, 0, 4, 5, 6};
  std::vector<char> alive{1, 0, 0, 1, 1, 1, 1, 1};
  const RepairPlan plan = PlanCascadeRepair(graph, next_hop, alive, 0);
  EXPECT_TRUE(plan.complete());
  // Node 3 re-attaches through its cross-line neighbor 7 (at (27,42)).
  std::vector<NodeId> repaired_hop(graph.node_count(), graph::kInvalidNode);
  for (const auto& [node, new_hop] : plan.repaired) {
    EXPECT_TRUE(graph.HasEdge(node, new_hop));
    EXPECT_TRUE(alive[new_hop]);
    repaired_hop[node] = new_hop;
    next_hop[node] = new_hop;
  }
  EXPECT_EQ(repaired_hop[3], 7);
  // The healed table routes every live node to the sink acyclically.
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (!alive[v]) continue;
    NodeId cursor = v;
    std::int32_t steps = 0;
    while (cursor != 0) {
      ASSERT_TRUE(alive[cursor]);
      cursor = next_hop[cursor];
      ASSERT_LE(++steps, graph.node_count()) << "cycle from " << v;
    }
  }
}

TEST(PlanLocalRepairTest, EndToEndCollectionSurvivesBackboneFailure) {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);
  config.seed = 34;
  config.pu_activity = 0.1;  // keep the test fast
  const Scenario scenario(config, 0);
  const graph::UnitDiskGraph& graph = scenario.secondary_graph();
  const graph::BfsLayering bfs = BreadthFirstLayering(graph, scenario.sink());
  const graph::CdsTree tree(graph, scenario.sink());
  std::vector<NodeId> next_hop(tree.node_count());
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    next_hop[v] = v == scenario.sink() ? scenario.sink() : tree.parent(v);
  }
  NodeId victim = graph::kInvalidNode;
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.role(v) == graph::NodeRole::kConnector && !tree.children(v).empty()) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidNode);

  sim::Simulator simulator;
  pu::PrimaryNetwork primary = scenario.MakePrimaryNetwork();
  mac::MacConfig mac_config;
  mac_config.pcr = scenario.pcr();
  mac_config.audit_stride = 0;
  mac_config.max_sim_time = 600 * sim::kSecond;
  mac::CollectionMac mac(simulator, primary, scenario.su_positions(),
                         scenario.area(), scenario.sink(), next_hop, mac_config,
                         scenario.MakeRunRng().Stream("churn"));
  mac.StartSnapshotCollection();
  // 100 ms in: the connector dies; orphans repair locally.
  simulator.ScheduleOnceAfter(100 * sim::kMillisecond, sim::EventPriority::kDefault, [&] {
    std::vector<char> alive(graph.node_count(), 1);
    alive[victim] = 0;
    const RepairPlan plan = PlanLocalRepair(graph, bfs, next_hop, alive, victim);
    ASSERT_TRUE(plan.complete());
    mac.FailNode(victim);
    for (const auto& [node, new_hop] : plan.repaired) {
      mac.UpdateNextHop(node, new_hop);
    }
  });
  simulator.Run();
  EXPECT_TRUE(mac.finished()) << "surviving packets must still be collected";
  // Everything except (at most) the victim's own packet and whatever was
  // queued at the victim arrives.
  EXPECT_GE(mac.stats().delivered, config.num_sus - 10);
  EXPECT_LE(mac.stats().delivered, config.num_sus - 1);
}

}  // namespace
}  // namespace crn::core
