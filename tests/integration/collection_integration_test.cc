// End-to-end collection runs over deployed scenarios: completion,
// exactly-once delivery, determinism, PU protection, and the paper's
// headline ADDC-vs-Coolest ordering.
#include <gtest/gtest.h>

#include "core/collection.h"
#include "core/scenario.h"
#include "graph/cds_tree.h"

namespace crn::core {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);  // n = 200
  config.seed = 17;
  return config;
}

TEST(CollectionIntegrationTest, AddcCompletesAndDeliversEveryPacket) {
  const Scenario scenario(SmallConfig(), 0);
  const CollectionResult result = RunAddc(scenario);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.mac.delivered, SmallConfig().num_sus);
  EXPECT_FALSE(result.mac.timed_out);
  EXPECT_GT(result.delay_ms, 0.0);
  EXPECT_GT(result.capacity_fraction, 0.0);
  EXPECT_GT(result.avg_hops, 1.0);
  EXPECT_GT(result.jain_delivery_fairness, 0.0);
  EXPECT_LE(result.jain_delivery_fairness, 1.0);
  EXPECT_GT(result.dominators, 0);
  EXPECT_GT(result.connectors, 0);
}

TEST(CollectionIntegrationTest, CoolestCompletesOnSameDeployment) {
  const Scenario scenario(SmallConfig(), 0);
  for (routing::TemperatureMetric metric :
       {routing::TemperatureMetric::kAccumulated, routing::TemperatureMetric::kHighest,
        routing::TemperatureMetric::kMixed}) {
    const CollectionResult result = RunCoolest(scenario, metric);
    EXPECT_TRUE(result.completed) << routing::ToString(metric);
    EXPECT_EQ(result.mac.delivered, SmallConfig().num_sus);
  }
}

TEST(CollectionIntegrationTest, DeterministicAcrossIdenticalRuns) {
  const Scenario scenario(SmallConfig(), 1);
  const CollectionResult a = RunAddc(scenario);
  const CollectionResult b = RunAddc(scenario);
  EXPECT_EQ(a.mac.finish_time, b.mac.finish_time);
  EXPECT_EQ(a.mac.attempts, b.mac.attempts);
  EXPECT_EQ(a.mac.outcomes, b.mac.outcomes);
  const CollectionResult c = RunCoolest(scenario);
  const CollectionResult d = RunCoolest(scenario);
  EXPECT_EQ(c.mac.finish_time, d.mac.finish_time);
}

TEST(CollectionIntegrationTest, RepetitionsDiffer) {
  const CollectionResult a = RunAddc(Scenario(SmallConfig(), 0));
  const CollectionResult b = RunAddc(Scenario(SmallConfig(), 1));
  EXPECT_NE(a.mac.finish_time, b.mac.finish_time);
}

// The paper's headline (§V): ADDC finishes well ahead of Coolest. Averaged
// over repetitions at this scale the ratio sits around 2-4x; assert a
// conservative floor.
TEST(CollectionIntegrationTest, AddcBeatsCoolestOnAverage) {
  double addc_total = 0.0;
  double coolest_total = 0.0;
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    const ComparisonResult result = RunComparison(SmallConfig(), rep);
    ASSERT_TRUE(result.addc.completed);
    ASSERT_TRUE(result.coolest.completed);
    addc_total += result.addc.delay_ms;
    coolest_total += result.coolest.delay_ms;
  }
  EXPECT_GT(coolest_total / addc_total, 1.3)
      << "expected ADDC to finish data collection substantially faster";
}

// PU protection: with the corrected c2 the PCR guarantees Lemma 2, so the
// audit must find zero SU-caused violations. (Run at low p_t where the
// corrected range keeps p_o simulable; see DESIGN.md §4.)
TEST(CollectionIntegrationTest, CorrectedPcrProtectsPrimaryUsers) {
  ScenarioConfig config = SmallConfig();
  config.c2_variant = C2Variant::kCorrected;
  config.pu_activity = 0.05;
  config.audit_stride = 2;
  const Scenario scenario(config, 0);
  const CollectionResult result = RunAddc(scenario);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.mac.audited_pu_receptions, 0);
  EXPECT_EQ(result.mac.su_caused_violations, 0)
      << "Lemma 2 (corrected) must keep SUs harmless to PUs";
}

// Invariant-auditor integration (DESIGN.md §"Correctness tooling"): a full
// protected-regime collection must audit green on every invariant — event
// clock, R-set separation, SU SIR floors, PU protection, routing shape.
TEST(CollectionIntegrationTest, AuditedRunUpholdsConcurrentSetSirInvariants) {
  ScenarioConfig config = SmallConfig();
  config.c2_variant = C2Variant::kCorrected;
  config.pu_activity = 0.05;
  const Scenario scenario(config, 0);
  RunOptions options;
  AuditReport report;
  options.audit_report = &report;
  const CollectionResult result = RunAddc(scenario, options);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.separation_checks, 0);
  EXPECT_GT(report.receptions_checked, 0);
  EXPECT_GT(report.pu_checks, 0);
}

// The digest-based determinism claim, machine-checked end to end: two
// executions of the identical scenario must fold every transmission into
// the same FNV trace digest.
TEST(CollectionIntegrationTest, DualRunTraceDigestsAreIdentical) {
  const DeterminismReport report = CheckAddcDeterminism(Scenario(SmallConfig(), 2));
  EXPECT_TRUE(report.identical)
      << std::hex << report.first_digest << " vs " << report.second_digest;
  EXPECT_NE(report.first_digest, 0u);
}

TEST(CollectionIntegrationTest, CustomNextHopsViaPublicApi) {
  // A BFS shortest-path tree through RunWithNextHops: the extension point
  // examples use for custom routing structures.
  const Scenario scenario(SmallConfig(), 0);
  const graph::BfsLayering bfs =
      BreadthFirstLayering(scenario.secondary_graph(), scenario.sink());
  std::vector<graph::NodeId> next_hop(bfs.parent);
  next_hop[scenario.sink()] = scenario.sink();
  const CollectionResult result = RunWithNextHops(scenario, next_hop, "BFS-SPT");
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.algorithm, "BFS-SPT");
}

TEST(CollectionIntegrationTest, FairnessAblationStillCompletes) {
  ScenarioConfig config = SmallConfig();
  config.fairness_wait = false;
  const CollectionResult result = RunAddc(Scenario(config, 0));
  EXPECT_TRUE(result.completed);
}

TEST(CollectionIntegrationTest, DelayIncreasesWithPuActivity) {
  // Fig. 6(c)'s monotone claim at test scale, single repetition each.
  ScenarioConfig low = SmallConfig();
  low.pu_activity = 0.1;
  ScenarioConfig high = SmallConfig();
  high.pu_activity = 0.4;
  const CollectionResult r_low = RunAddc(Scenario(low, 0));
  const CollectionResult r_high = RunAddc(Scenario(high, 0));
  ASSERT_TRUE(r_low.completed);
  ASSERT_TRUE(r_high.completed);
  EXPECT_GT(r_high.delay_ms, r_low.delay_ms);
}

TEST(CollectionIntegrationTest, SinkDegreeAndDepthReported) {
  const Scenario scenario(SmallConfig(), 0);
  const CollectionResult result = RunAddc(scenario);
  EXPECT_GT(result.sink_degree, 0);
  EXPECT_GT(result.max_route_depth, 1);
  EXPECT_LT(result.max_route_depth, SmallConfig().num_sus);
}

}  // namespace
}  // namespace crn::core
