// The central property of §IV-B (Definitions 4.1–4.3, Lemmas 2–3): with the
// PCR set to κ·r, every R-set — transmitters pairwise at least R_pcr apart —
// is a concurrent set: all transmissions succeed simultaneously under the
// physical interference model.
//
// We attack the property with the adversarial configuration the proofs
// themselves use: a worst-case hexagonal packing of transmitters at exactly
// the PCR separation, with each receiver pushed to its maximum distance
// (R for PUs, r for SUs) *toward* the strongest interferer.
//
// The corrected c2 passes for every receiver; the paper's printed c2 fails
// (DESIGN.md §4), and the failing configuration is pinned as a regression
// witness of the erratum.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/pcr.h"
#include "geom/packing.h"
#include "spectrum/interference.h"

namespace crn {
namespace {

using core::C2Variant;
using core::PcrParams;
using geom::Vec2;

struct Link {
  Vec2 transmitter;
  Vec2 receiver;
  double power = 0.0;
  double eta_linear = 0.0;
};

// Builds the adversarial R-set: a hexagonal packing of `layers` rings at
// separation `pcr` around a center transmitter; roles (PU/SU) alternate by
// index. Every receiver sits at the role's maximum link distance, aimed at
// the center (the densest interference direction); the center's receiver
// aims at its nearest ring-1 neighbor.
std::vector<Link> BuildAdversarialRset(const PcrParams& params, double pcr,
                                       std::int64_t layers) {
  std::vector<Vec2> transmitters{{0.0, 0.0}};
  for (const Vec2& p : geom::HexPacking(layers, pcr)) {
    transmitters.push_back(p);
  }
  std::vector<Link> links;
  links.reserve(transmitters.size());
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    const bool is_pu = i % 2 == 1;  // center is an SU; roles alternate outward
    Link link;
    link.transmitter = transmitters[i];
    link.power = is_pu ? params.pu_power : params.su_power;
    link.eta_linear = is_pu ? params.eta_p.linear() : params.eta_s.linear();
    const double reach = is_pu ? params.pu_radius : params.su_radius;
    Vec2 toward{1.0, 0.0};  // center: aim at the nearest ring-1 interferer
    if (i != 0) {
      const double norm = transmitters[i].Norm();
      toward = {-transmitters[i].x / norm, -transmitters[i].y / norm};
    }
    link.receiver = link.transmitter + toward * reach;
    links.push_back(link);
  }
  return links;
}

// Minimum SIR margin (SIR / η) over all links transmitting concurrently.
double WorstSirMargin(const std::vector<Link>& links, double alpha) {
  const spectrum::SirEvaluator sir{spectrum::PathLoss(alpha)};
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < links.size(); ++i) {
    std::vector<spectrum::ActiveTransmitter> interferers;
    interferers.reserve(links.size() - 1);
    for (std::size_t j = 0; j < links.size(); ++j) {
      if (j != i) interferers.push_back({links[j].transmitter, links[j].power});
    }
    const double value = sir.ComputeSir(links[i].transmitter, links[i].power,
                                        links[i].receiver, interferers);
    worst = std::min(worst, value / links[i].eta_linear);
  }
  return worst;
}

struct ConcurrentSetCase {
  double alpha;
  double eta_db;
  double pu_power;
  double su_power;
};

class ConcurrentSetTest : public ::testing::TestWithParam<ConcurrentSetCase> {
 protected:
  PcrParams Params() const {
    const ConcurrentSetCase& c = GetParam();
    PcrParams params;
    params.alpha = c.alpha;
    params.eta_p = SirThreshold::FromDb(c.eta_db);
    params.eta_s = SirThreshold::FromDb(c.eta_db);
    params.pu_power = c.pu_power;
    params.su_power = c.su_power;
    params.pu_radius = 10.0;
    params.su_radius = 10.0;
    return params;
  }
};

TEST_P(ConcurrentSetTest, CorrectedPcrMakesRsetsConcurrent) {
  const PcrParams params = Params();
  const double pcr = ProperCarrierSensingRange(params, C2Variant::kCorrected);
  const auto links = BuildAdversarialRset(params, pcr, /*layers=*/8);
  EXPECT_GE(WorstSirMargin(links, params.alpha), 1.0)
      << "an R-set at the corrected PCR failed to be a concurrent set";
}

TEST_P(ConcurrentSetTest, SlackVanishesBelowCorrectedPcr) {
  // Concurrency is not a fluke of an oversized range: shrinking the
  // corrected PCR by 40% breaks the property in these adversarial packings.
  const PcrParams params = Params();
  const double pcr = ProperCarrierSensingRange(params, C2Variant::kCorrected);
  const auto links = BuildAdversarialRset(params, 0.6 * pcr, /*layers=*/8);
  EXPECT_LT(WorstSirMargin(links, params.alpha), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConcurrentSetTest,
    ::testing::Values(ConcurrentSetCase{3.0, 8.0, 10.0, 10.0},
                      ConcurrentSetCase{3.5, 8.0, 10.0, 10.0},
                      ConcurrentSetCase{4.0, 8.0, 10.0, 10.0},
                      ConcurrentSetCase{4.0, 6.0, 10.0, 10.0},
                      ConcurrentSetCase{4.0, 10.0, 10.0, 10.0},
                      ConcurrentSetCase{4.0, 8.0, 20.0, 10.0},
                      ConcurrentSetCase{4.0, 8.0, 10.0, 20.0},
                      ConcurrentSetCase{4.5, 8.0, 10.0, 10.0}));

// The erratum witness: at Fig. 6 defaults the paper's printed c2 yields
// a PCR whose adversarial R-set is NOT a concurrent set — a single
// nearest-ring interferer already drives the center link below threshold.
TEST(ConcurrentSetErratumTest, PaperC2FailsAtFig6Defaults) {
  PcrParams params;
  params.alpha = 4.0;
  params.eta_p = SirThreshold::FromDb(8.0);
  params.eta_s = SirThreshold::FromDb(8.0);
  const double pcr = ProperCarrierSensingRange(params, C2Variant::kPaper);
  const auto links = BuildAdversarialRset(params, pcr, /*layers=*/8);
  EXPECT_LT(WorstSirMargin(links, 4.0), 1.0)
      << "expected the printed c2 to under-protect (DESIGN.md §4)";
}

TEST(ConcurrentSetErratumTest, CorrectedFixesTheSameConfiguration) {
  PcrParams params;
  params.alpha = 4.0;
  params.eta_p = SirThreshold::FromDb(8.0);
  params.eta_s = SirThreshold::FromDb(8.0);
  const double pcr = ProperCarrierSensingRange(params, C2Variant::kCorrected);
  const auto links = BuildAdversarialRset(params, pcr, /*layers=*/8);
  EXPECT_GE(WorstSirMargin(links, 4.0), 1.0);
}

}  // namespace
}  // namespace crn
