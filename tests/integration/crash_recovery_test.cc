// The SIGKILL-under-fire half of the recovery story (DESIGN.md §14): a
// forked child runs a checkpointing collection run, lands each checkpoint
// on disk through harness::WriteFileAtomic, and SIGKILLs itself mid-run —
// sometimes before the pending checkpoint is written (the worst honest
// crash: the on-disk blob is one cadence stale), sometimes just after.
// The parent reaps the kill, proves the surviving artifact is complete
// (StateReader validates the envelope and every section CRC on open),
// resumes from it in-process, and requires the finished run to be
// bit-identical to an uninterrupted baseline. Twelve cycles across three
// seeds, both kill timings, with and without fault churn.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/collection.h"
#include "core/invariant_auditor.h"
#include "core/scenario.h"
#include "faults/fault_plan.h"
#include "harness/atomic_file.h"
#include "obs/metrics.h"
#include "sim/checkpoint.h"

#include "checkpoint_harness.h"

namespace crn::core {
namespace {

struct CrashCycle {
  std::uint64_t seed;
  bool faults;
  // Checkpoint cadence is 1000 events; the kill fires at the first sink
  // call with events >= crash_at. kill_before_write crashes are required
  // to leave at least one earlier checkpoint behind (crash_at >= 2000).
  std::uint64_t crash_at;
  bool kill_before_write;
};

// Child body after fork: run with a checkpoint sink that persists each
// blob atomically and raises SIGKILL at the scripted point. Never returns
// through gtest — a run that somehow completes _exits with a sentinel the
// parent flags as "the crash never fired".
void RunChildUntilKilled(const CrashCycle& cycle, const std::string& path) {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);
  config.seed = cycle.seed;
  const Scenario scenario(config, 0);

  AuditReport audit;
  obs::MetricsRegistry metrics;
  faults::FaultReport fault_report;
  const faults::FaultPlan plan = SoakPlan();

  RunOptions options;
  options.audit_report = &audit;
  options.metrics = &metrics;
  if (cycle.faults) {
    options.faults = &plan;
    options.fault_report = &fault_report;
  }
  options.checkpoint_every_events = 1000;
  options.checkpoint_sink = [&](const std::string& blob,
                                std::uint64_t events) {
    if (cycle.kill_before_write && events >= cycle.crash_at) {
      std::raise(SIGKILL);
    }
    std::string error;
    CRN_CHECK(harness::WriteFileAtomic(path, blob, &error)) << error;
    if (!cycle.kill_before_write && events >= cycle.crash_at) {
      std::raise(SIGKILL);
    }
  };
  (void)RunAddc(scenario, options);
}

TEST(CrashRecoveryTest, SigkillSoakResumesAreBitIdentical) {
  const std::string dir = ::testing::TempDir() + "crn_crash_soak";
  std::filesystem::create_directories(dir);

  // 12 seeded kill cycles >= the 10 the acceptance bar asks for; every
  // (seed, faults) baseline is computed once and reused.
  const CrashCycle cycles[] = {
      {41, false, 2000, false}, {41, false, 3000, true},
      {41, true, 4000, false},  {41, true, 3000, true},
      {42, false, 2000, true},  {42, false, 4000, false},
      {42, true, 3000, false},  {42, true, 2000, false},
      {43, false, 3000, false}, {43, false, 4000, true},
      {43, true, 2000, false},  {43, true, 4000, true},
  };

  std::map<std::pair<std::uint64_t, bool>, Captured> baselines;
  int cycle_index = 0;
  for (const CrashCycle& cycle : cycles) {
    SCOPED_TRACE(::testing::Message()
                 << "cycle " << cycle_index << ": seed " << cycle.seed
                 << (cycle.faults ? " faulted" : "") << ", kill "
                 << (cycle.kill_before_write ? "before" : "after")
                 << " write at event " << cycle.crash_at);
    const std::string path =
        dir + "/cycle_" + std::to_string(cycle_index++) + ".ckpt";

    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      RunChildUntilKilled(cycle, path);
      _exit(97);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child was not killed (exit status " << status << ")";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // The kill fires outside the atomic write, so no temp file may linger
    // and the destination must be a complete, self-validating checkpoint.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "no checkpoint survived the kill";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string blob = buffer.str();
    ASSERT_FALSE(blob.empty());
    sim::StateReader reader(blob);
    ASSERT_TRUE(reader.ok()) << reader.error();

    const Variant variant{/*faults=*/cycle.faults, /*flight=*/false};
    const auto key = std::make_pair(cycle.seed, cycle.faults);
    if (baselines.find(key) == baselines.end()) {
      baselines.emplace(key, RunVariant(cycle.seed, variant, 0, nullptr));
    }
    const Captured resumed = RunVariant(cycle.seed, variant, 0, &blob);
    ExpectBitIdentical(baselines.at(key), resumed);
  }
}

}  // namespace
}  // namespace crn::core
