// Randomized churn soak (DESIGN.md §9): dozens of seeded crash/recover
// events drive the self-healing path over a deployed scenario while the
// InvariantAuditor re-verifies the routing table after every repair pass.
// The run must stay invariant-clean, degrade (never hang), and reproduce
// bit-identically from (plan, seed).
#include <gtest/gtest.h>

#include <string>

#include "core/collection.h"
#include "core/scenario.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"

namespace crn::core {
namespace {

faults::FaultPlan SoakPlan() {
  faults::FaultPlan plan;
  std::string error;
  const bool parsed = faults::ParsePlanText(
      "# heavy transient churn: dozens of crashes, each healed twice (crash\n"
      "# + recovery reconcile), every pass audited for routing cycles. The\n"
      "# MAC stops the simulator once collection completes, so the rate is\n"
      "# high enough that 50+ events land before the last packet arrives.\n"
      "gen crash 60 80\n"
      "option horizon_ms 2000\n"
      "option repair_delay_ms 1\n"
      "option retx_budget 8\n",
      plan, error);
  EXPECT_TRUE(parsed) << error;
  return plan;
}

struct SoakOutcome {
  CollectionResult result;
  AuditReport audit;
  faults::FaultReport faults;
};

SoakOutcome RunSoak(std::uint64_t seed, std::uint64_t repetition,
                    const faults::FaultPlan& plan) {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);
  config.seed = seed;
  // The audit-green regime (corrected c2, low p_t): churn, not spectrum
  // pressure, is the subject, and SIR/PU-protection audits must stay clean
  // so any violation is attributable to a repair bug.
  config.c2_variant = C2Variant::kCorrected;
  config.pu_activity = 0.05;
  const Scenario scenario(config, repetition);
  SoakOutcome outcome;
  RunOptions options;
  options.audit_report = &outcome.audit;
  options.faults = &plan;
  options.fault_report = &outcome.faults;
  outcome.result = RunAddc(scenario, options);
  return outcome;
}

TEST(FaultSoakTest, InvariantsHoldUnderFiftyChurnEvents) {
  const faults::FaultPlan plan = SoakPlan();
  const SoakOutcome outcome = RunSoak(71, 0, plan);

  ASSERT_GE(outcome.faults.injected_total(), 50)
      << "the soak must actually churn; got "
      << outcome.faults.Summary();
  EXPECT_GT(outcome.faults.recoveries, 0);
  EXPECT_GE(outcome.faults.repairs_attempted, outcome.faults.recoveries);

  // The auditor walked the routing table after every repair pass and never
  // found a cycle or a live node routing through a dead one (dead next hops
  // are tolerated only in the repair_delay window, which VerifyRouting runs
  // after).
  EXPECT_GT(outcome.audit.routing_audits, 0);
  EXPECT_EQ(outcome.audit.routing_violations, 0);
  EXPECT_TRUE(outcome.audit.ok()) << outcome.audit.Summary();

  // Graceful degradation: the run terminates (losses shrink expectations)
  // and the delivery ratio stays meaningful.
  EXPECT_GT(outcome.result.delivery_ratio, 0.0);
  EXPECT_LE(outcome.result.delivery_ratio, 1.0);
  EXPECT_EQ(outcome.result.mac.packets_seeded,
            outcome.result.mac.delivered + outcome.result.mac.packets_lost);
}

TEST(FaultSoakTest, SoakDigestIsSeedStable) {
  const faults::FaultPlan plan = SoakPlan();
  const SoakOutcome first = RunSoak(72, 0, plan);
  const SoakOutcome again = RunSoak(72, 0, plan);
  ASSERT_GT(first.faults.injected_total(), 0);
  EXPECT_EQ(first.audit.trace_digest, again.audit.trace_digest)
      << "same (plan, seed) must replay the identical faulted trace";
  EXPECT_EQ(first.faults.injected_total(), again.faults.injected_total());
  EXPECT_EQ(first.faults.reattached_total, again.faults.reattached_total);
  EXPECT_EQ(first.result.mac.attempts, again.result.mac.attempts);
  EXPECT_DOUBLE_EQ(first.result.delivery_ratio, again.result.delivery_ratio);

  const SoakOutcome other = RunSoak(72, 1, plan);
  EXPECT_NE(first.audit.trace_digest, other.audit.trace_digest)
      << "a different repetition must draw a different fault timeline";
}

}  // namespace
}  // namespace crn::core
