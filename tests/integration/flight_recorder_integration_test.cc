// Full-stack contracts of the scheduler flight recorder (DESIGN.md §13):
//
//  * observation purity — a run with the recorder attached is bit-identical
//    (same auditor trace digest, same results) to the same run without it;
//  * per-kind sched.* counters exported into the metrics registry agree
//    with the recorder's own counters;
//  * causality — a delivered packet's full lifecycle (snapshot seeding →
//    backoff expiry → transmission end) is reconstructible from a written
//    dump by walking parent_seq links alone;
//  * forensics — an InvariantAuditor violation captures a decoded last-N
//    trail into AuditReport::flight_trail.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/collection.h"
#include "core/invariant_auditor.h"
#include "core/scenario.h"
#include "obs/metrics.h"
#include "sim/flight_recorder.h"

namespace crn::core {
namespace {

ScenarioConfig BaseConfig() {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);  // n = 200
  config.seed = 41;
  return config;
}

TEST(FlightRecorderIntegrationTest, AttachingRecorderIsBitIdentical) {
  AuditReport plain_report;
  AuditReport recorded_report;
  sim::FlightRecorder recorder;

  RunOptions plain;
  plain.audit_report = &plain_report;
  const CollectionResult without =
      RunAddc(Scenario(BaseConfig(), 0), plain);

  RunOptions observed;
  observed.audit_report = &recorded_report;
  observed.flight_recorder = &recorder;
  const CollectionResult with = RunAddc(Scenario(BaseConfig(), 0), observed);

  ASSERT_TRUE(without.completed);
  ASSERT_TRUE(with.completed);
  EXPECT_NE(plain_report.trace_digest, 0U);
  EXPECT_EQ(plain_report.trace_digest, recorded_report.trace_digest);
  EXPECT_EQ(without.delay_ms, with.delay_ms);
  EXPECT_EQ(without.mac.attempts, with.mac.attempts);
  EXPECT_GT(recorder.total_recorded(), 0U);
}

TEST(FlightRecorderIntegrationTest, SchedMetricsMirrorRecorderCounters) {
  sim::FlightRecorder recorder;
  obs::MetricsRegistry metrics;
  RunOptions options;
  options.flight_recorder = &recorder;
  options.metrics = &metrics;
  const CollectionResult result = RunAddc(Scenario(BaseConfig(), 0), options);
  ASSERT_TRUE(result.completed);

  const std::vector<std::string>& names = recorder.kind_names();
  bool saw_named_kind = false;
  for (std::size_t k = 0; k < recorder.counters().size(); ++k) {
    const sim::KindCounters& c = recorder.counters()[k];
    if (c.fires == 0) continue;
    const std::string& name = names[k];
    saw_named_kind = saw_named_kind || name != "unnamed";
    EXPECT_EQ(metrics.GetCounter("sched.fires", {{"kind", name}}).value(),
              c.fires)
        << "kind " << name;
    EXPECT_EQ(metrics.GetCounter("sched.arms", {{"kind", name}}).value(),
              c.arms)
        << "kind " << name;
  }
  EXPECT_TRUE(saw_named_kind);
}

// The acceptance scenario: reconstruct one delivered packet's causal chain
// from the dump alone. A transmission-end fire must chain through a backoff
// expiry (Algorithm 1's carrier-sensed contention) and terminate at the
// snapshot-seeding one-shot, whose own arm happened outside any event
// (parent 0).
TEST(FlightRecorderIntegrationTest, DeliveryChainWalksBackToSnapshotSeed) {
  // A deep ring so rep-0's full action history survives for the walk.
  sim::FlightRecorder recorder(1U << 20U);
  RunOptions options;
  options.flight_recorder = &recorder;
  const CollectionResult result = RunAddc(Scenario(BaseConfig(), 0), options);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(recorder.total_recorded(), recorder.size())
      << "ring too shallow — the chain test needs the whole history";

  std::stringstream stream;
  recorder.WriteDump(stream);
  sim::FlightRecorder::Dump dump;
  std::string error;
  ASSERT_TRUE(sim::FlightRecorder::ReadDump(stream, &dump, &error)) << error;

  std::map<std::string, std::uint16_t> kind_ids;
  for (std::size_t k = 0; k < dump.kind_names.size(); ++k) {
    kind_ids[dump.kind_names[k]] = static_cast<std::uint16_t>(k);
  }
  ASSERT_TRUE(kind_ids.count("mac.tx_end"));
  ASSERT_TRUE(kind_ids.count("mac.backoff_expiry"));
  ASSERT_TRUE(kind_ids.count("mac.seed_snapshot"));

  // Defining record per seq: the fire when present, else the arm. The
  // walk targets the run's FIRST transmission end — its backoff was armed
  // by the snapshot-seeding callback itself, so its chain reaches the
  // generation event (later transmissions root at the pre-run
  // slot-boundary arm instead, since re-contention is driven by slot
  // processing).
  std::map<std::uint64_t, const sim::FlightRecord*> by_seq;
  const sim::FlightRecord* first_tx_end_fire = nullptr;
  for (const sim::FlightRecord& r : dump.records) {
    if (r.action == sim::SchedAction::kDisarm) continue;
    const sim::FlightRecord*& slot = by_seq[r.seq];
    if (slot == nullptr || r.action == sim::SchedAction::kFire) slot = &r;
    if (first_tx_end_fire == nullptr &&
        r.action == sim::SchedAction::kFire &&
        r.kind == kind_ids["mac.tx_end"]) {
      first_tx_end_fire = &r;
    }
  }
  ASSERT_NE(first_tx_end_fire, nullptr);

  // Walk the delivery back to its root through parent_seq alone.
  std::vector<const sim::FlightRecord*> chain;
  bool saw_backoff = false;
  const sim::FlightRecord* cursor = first_tx_end_fire;
  while (true) {
    chain.push_back(cursor);
    saw_backoff =
        saw_backoff || cursor->kind == kind_ids["mac.backoff_expiry"];
    if (cursor->parent_seq == 0) break;
    const auto parent = by_seq.find(cursor->parent_seq);
    ASSERT_NE(parent, by_seq.end())
        << "broken parent link #" << cursor->parent_seq;
    ASSERT_LT(parent->second->seq, cursor->seq) << "causality must point back";
    cursor = parent->second;
  }
  EXPECT_GE(chain.size(), 3U);
  EXPECT_TRUE(saw_backoff)
      << "a delivered transmission must chain through its backoff expiry";
  // The root is the snapshot seeding, armed outside any event callback.
  EXPECT_EQ(chain.back()->kind, kind_ids["mac.seed_snapshot"]);
}

TEST(FlightRecorderIntegrationTest, AuditorViolationCapturesFlightTrail) {
  // An absurd pairwise-separation floor makes the first few concurrent
  // transmissions violate immediately; the bound recorder must deliver the
  // causal trail with the report.
  sim::FlightRecorder recorder;
  AuditReport report;
  RunOptions options;
  options.flight_recorder = &recorder;
  options.audit_report = &report;
  options.audit.check_min_separation = true;
  options.audit.min_separation = 1e9;  // meters — every concurrent pair fails
  RunAddc(Scenario(BaseConfig(), 0), options);

  ASSERT_GT(report.separation_violations, 0);
  ASSERT_FALSE(report.flight_trail.empty());
  EXPECT_NE(report.flight_trail.find("flight recorder trail"),
            std::string::npos);
  EXPECT_NE(report.flight_trail.find("fire"), std::string::npos);
  EXPECT_NE(report.flight_trail.find("mac."), std::string::npos);
}

}  // namespace
}  // namespace crn::core
