// Deployment-scale MAC invariants, checked over full collection runs via
// observers: the properties Algorithm 1's correctness argument rests on.
#include <gtest/gtest.h>

#include <vector>

#include "core/scenario.h"
#include "graph/cds_tree.h"
#include "mac/collection_mac.h"
#include "sim/simulator.h"

namespace crn::mac {
namespace {

struct RunArtifacts {
  std::vector<TxEvent> events;
  bool finished = false;
  MacStats stats;
};

RunArtifacts RunDeployed(std::uint64_t seed, double pu_activity,
                         sim::TimeNs sensing_latency = 0) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.1);
  config.seed = seed;
  config.pu_activity = pu_activity;
  const core::Scenario scenario(config, 0);
  const graph::CdsTree tree(scenario.secondary_graph(), scenario.sink());
  std::vector<NodeId> next_hop(tree.node_count());
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    next_hop[v] = v == scenario.sink() ? scenario.sink() : tree.parent(v);
  }
  sim::Simulator simulator;
  pu::PrimaryNetwork primary = scenario.MakePrimaryNetwork();
  MacConfig mac_config;
  mac_config.pcr = scenario.pcr();
  mac_config.audit_stride = 0;
  mac_config.sensing_latency = sensing_latency;
  mac_config.max_sim_time = 1200 * sim::kSecond;
  CollectionMac mac(simulator, primary, scenario.su_positions(), scenario.area(),
                    scenario.sink(), next_hop, mac_config,
                    scenario.MakeRunRng().Stream("invariants"));
  RunArtifacts artifacts;
  mac.AddTxObserver([&](const TxEvent& event) { artifacts.events.push_back(event); });
  mac.StartSnapshotCollection();
  simulator.Run();
  artifacts.finished = mac.finished();
  artifacts.stats = mac.stats();
  // Keep positions for the separation check.
  return artifacts;
}

// Carrier sensing's defining guarantee: two transmissions overlapping in
// time have transmitters at least the PCR apart (the R-set construction of
// §IV-B realized by the MAC). Requires perfect sensing and zero latency.
class SeparationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeparationPropertyTest, ConcurrentTransmittersArePcrSeparated) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.1);
  config.seed = GetParam();
  const core::Scenario scenario(config, 0);
  const double pcr = scenario.pcr();
  const auto& positions = scenario.su_positions();

  const RunArtifacts artifacts = RunDeployed(GetParam(), 0.2);
  ASSERT_TRUE(artifacts.finished);
  ASSERT_GT(artifacts.events.size(), 100u);

  // Sweep-line over start-sorted events; events arrive in end order, so
  // re-sort by start.
  std::vector<TxEvent> events = artifacts.events;
  std::sort(events.begin(), events.end(),
            [](const TxEvent& a, const TxEvent& b) { return a.start < b.start; });
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size() && events[j].start < events[i].end;
         ++j) {
      const double d = geom::Distance(positions[events[i].transmitter],
                                      positions[events[j].transmitter]);
      ASSERT_GE(d, pcr - 1e-9)
          << "transmitters " << events[i].transmitter << " and "
          << events[j].transmitter << " overlapped at distance " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeparationPropertyTest,
                         ::testing::Values(101, 102, 103, 104));

TEST(MacInvariantsTest, SensingLatencyBreaksSeparation) {
  // The same sweep with a large detection lag must produce at least one
  // sub-PCR overlap — the collision channel of the conventional baseline
  // is real, not an artifact of the checker.
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.1);
  config.seed = 101;
  const core::Scenario scenario(config, 0);
  const double pcr = scenario.pcr();
  const auto& positions = scenario.su_positions();

  const RunArtifacts artifacts =
      RunDeployed(101, 0.2, /*sensing_latency=*/200 * sim::kMicrosecond);
  std::vector<TxEvent> events = artifacts.events;
  std::sort(events.begin(), events.end(),
            [](const TxEvent& a, const TxEvent& b) { return a.start < b.start; });
  bool violation = false;
  for (std::size_t i = 0; i < events.size() && !violation; ++i) {
    for (std::size_t j = i + 1; j < events.size() && events[j].start < events[i].end;
         ++j) {
      if (geom::Distance(positions[events[i].transmitter],
                         positions[events[j].transmitter]) < pcr) {
        violation = true;
        break;
      }
    }
  }
  EXPECT_TRUE(violation);
}

TEST(MacInvariantsTest, AttemptAccountingIsExact) {
  const RunArtifacts artifacts = RunDeployed(105, 0.2);
  ASSERT_TRUE(artifacts.finished);
  std::int64_t per_outcome_total = 0;
  for (std::int64_t count : artifacts.stats.outcomes) per_outcome_total += count;
  EXPECT_EQ(per_outcome_total, artifacts.stats.attempts);
  EXPECT_EQ(static_cast<std::int64_t>(artifacts.events.size()),
            artifacts.stats.attempts);
  // Success events equal successful outcomes equal delivered × hops.
  std::int64_t successes = 0;
  for (const TxEvent& event : artifacts.events) {
    if (event.outcome == TxOutcome::kSuccess) ++successes;
  }
  EXPECT_EQ(successes, artifacts.stats.outcomes[0]);
  EXPECT_EQ(successes, artifacts.stats.delivered_hops_total);
}

TEST(MacInvariantsTest, TransmissionsNeverCrossSlotBoundaries) {
  // With slot-aware deferral (the default), every transmission fits inside
  // one PU slot — the reason the handoff counter stays at zero.
  const RunArtifacts artifacts = RunDeployed(106, 0.3);
  ASSERT_TRUE(artifacts.finished);
  for (const TxEvent& event : artifacts.events) {
    const sim::TimeNs slot_of_start = event.start / sim::kMillisecond;
    const sim::TimeNs slot_of_end = (event.end - 1) / sim::kMillisecond;
    ASSERT_EQ(slot_of_start, slot_of_end)
        << "transmission [" << event.start << ", " << event.end << ") crosses";
  }
  EXPECT_EQ(artifacts.stats.outcomes[static_cast<int>(TxOutcome::kAbortedPuReturn)],
            0);
}

}  // namespace
}  // namespace crn::mac
