// The scheduler-backend bit-identity contract at full-stack scale: an ADDC
// collection run on the calendar queue and one on the reference binary heap
// must produce the same results, the same auditor trace digest, and the
// same scheduler work counters. This is the integration-level counterpart
// of tests/sim/scheduler_fuzz_test.cc — the fuzz test proves pop-order
// equivalence on synthetic op streams, this one proves it on the real
// MAC/routing event mix (slot boundaries, backoff expiries, audit one-shots,
// snapshot seeding) where a divergence would also shift RNG stream
// consumption and corrupt every downstream statistic.
#include <gtest/gtest.h>

#include "core/collection.h"
#include "core/invariant_auditor.h"
#include "core/scenario.h"

namespace crn::core {
namespace {

ScenarioConfig BaseConfig() {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);  // n = 200
  config.seed = 41;
  return config;
}

CollectionResult AuditedRun(ScenarioConfig config, bool reference_scheduler,
                            AuditReport* report) {
  config.reference_scheduler = reference_scheduler;
  RunOptions options;
  options.audit_report = report;
  return RunAddc(Scenario(config, 0), options);
}

TEST(SchedulerDigestTest, CalendarAndReferenceRunsAreBitIdentical) {
  AuditReport calendar_report;
  AuditReport reference_report;
  const CollectionResult calendar =
      AuditedRun(BaseConfig(), /*reference_scheduler=*/false, &calendar_report);
  const CollectionResult reference =
      AuditedRun(BaseConfig(), /*reference_scheduler=*/true, &reference_report);

  ASSERT_TRUE(calendar.completed);
  ASSERT_TRUE(reference.completed);
  EXPECT_NE(calendar_report.trace_digest, 0U);
  EXPECT_EQ(calendar_report.trace_digest, reference_report.trace_digest);
  EXPECT_EQ(calendar_report.events_observed, reference_report.events_observed);

  // Scalar results must agree exactly — not approximately: both runs are
  // the same deterministic computation behind different queue layouts.
  EXPECT_EQ(calendar.delay_ms, reference.delay_ms);
  EXPECT_EQ(calendar.capacity_fraction, reference.capacity_fraction);
  EXPECT_EQ(calendar.avg_hops, reference.avg_hops);
  EXPECT_EQ(calendar.mac.delivered, reference.mac.delivered);
}

}  // namespace
}  // namespace crn::core
