// Validates the paper's analysis (§IV-D) against the simulator: the
// closed-form bounds must dominate the measured behaviour on real runs.
#include <gtest/gtest.h>

#include "core/collection.h"
#include "core/scenario.h"
#include "core/theory.h"
#include "graph/cds_tree.h"

namespace crn::core {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.1);  // n = 200
  config.seed = 31;
  return config;
}

TEST(TheoryValidationTest, MeasuredDelayWithinTheorem2Bound) {
  for (std::uint64_t rep = 0; rep < 2; ++rep) {
    const Scenario scenario(SmallConfig(), rep);
    const CollectionResult result = RunAddc(scenario);
    ASSERT_TRUE(result.completed);
    EXPECT_LT(result.delay_ms, result.theorem2_delay_bound_ms)
        << "rep " << rep << ": Theorem 2 upper bound violated";
    EXPECT_GT(result.theorem1_service_bound_ms, 0.0);
  }
}

TEST(TheoryValidationTest, MeasuredCapacityAboveTheorem2LowerBound) {
  const Scenario scenario(SmallConfig(), 0);
  const CollectionResult result = RunAddc(scenario);
  ASSERT_TRUE(result.completed);
  EXPECT_GE(result.capacity_fraction, result.theorem2_capacity_fraction);
  EXPECT_LE(result.capacity_fraction, 1.0 + 1e-9)
      << "capacity cannot exceed the channel bandwidth W";
}

TEST(TheoryValidationTest, MeasuredSpectrumOpportunityNearLemma7) {
  // The slot-boundary sampling is biased toward SUs that contend longest
  // (they sit in denser PU neighborhoods), so allow a generous band around
  // the homogeneous-field p_o of Lemma 7.
  const Scenario scenario(SmallConfig(), 0);
  const CollectionResult result = RunAddc(scenario);
  ASSERT_GT(result.measured_po, 0.0);
  EXPECT_GT(result.measured_po, result.theory_po / 10.0);
  EXPECT_LT(result.measured_po, result.theory_po * 10.0);
}

TEST(TheoryValidationTest, TreeDegreeWithinLemma6Bound) {
  const ScenarioConfig config = SmallConfig();
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    const Scenario scenario(config, rep);
    const graph::CdsTree tree(scenario.secondary_graph(), scenario.sink());
    const double bound =
        MaxTreeDegreeBound(config.num_sus, config.su_radius, config.c0());
    EXPECT_LE(tree.max_children() + 1, bound) << "rep " << rep;
  }
}

TEST(TheoryValidationTest, BackboneWithinPcrWithinLemma5Bound) {
  const ScenarioConfig config = SmallConfig();
  const Scenario scenario(config, 0);
  const graph::CdsTree tree(scenario.secondary_graph(), scenario.sink());
  const double bound = BackboneWithinPcrBound(scenario.kappa());
  const auto& positions = scenario.su_positions();
  for (graph::NodeId v = 0; v < tree.node_count(); ++v) {
    std::int32_t backbone_in_pcr = 0;
    for (graph::NodeId u = 0; u < tree.node_count(); ++u) {
      if (u != v && tree.IsBackbone(u) &&
          geom::Distance(positions[v], positions[u]) <= scenario.pcr()) {
        ++backbone_in_pcr;
      }
    }
    ASSERT_LE(backbone_in_pcr, bound) << "node " << v;
  }
}

TEST(TheoryValidationTest, DelayScalesRoughlyLinearlyInN) {
  // Theorem 2: delay = O(n·τ/p_o). Halving n (same densities) should
  // roughly halve delay; allow a wide band for the Theorem-1 head and
  // variance.
  ScenarioConfig big = SmallConfig();
  ScenarioConfig small = SmallConfig();
  small.num_sus = big.num_sus / 2;
  small.num_pus = big.num_pus / 2;
  small.area_side = big.area_side / std::sqrt(2.0);
  const CollectionResult rb = RunAddc(Scenario(big, 0));
  const CollectionResult rs = RunAddc(Scenario(small, 0));
  ASSERT_TRUE(rb.completed);
  ASSERT_TRUE(rs.completed);
  const double ratio = rb.delay_ms / rs.delay_ms;
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 4.0);
}

}  // namespace
}  // namespace crn::core
