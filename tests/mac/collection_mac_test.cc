#include "mac/collection_mac.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace crn::mac {
namespace {

using geom::Aabb;
using geom::Vec2;

// Test fixture assembling a CollectionMac over hand-placed nodes/PUs.
struct Harness {
  Harness(std::vector<Vec2> su_positions, std::vector<NodeId> next_hop,
          std::vector<Vec2> pu_positions, double pu_activity, MacConfig config,
          double side = 100.0, std::uint64_t seed = 99)
      : area(Aabb::Square(side)),
        primary(MakePrimary(std::move(pu_positions), pu_activity, config, area)),
        mac(simulator, primary, std::move(su_positions), area, /*sink=*/0,
            std::move(next_hop), config, Rng(seed)) {}

  static pu::PrimaryNetwork MakePrimary(std::vector<Vec2> pu_positions,
                                        double activity, const MacConfig& mac_config,
                                        Aabb area) {
    pu::PrimaryConfig config;
    config.count = static_cast<std::int32_t>(pu_positions.size());
    config.power = 10.0;
    config.radius = 10.0;
    config.activity = activity;
    config.slot = mac_config.slot;
    return pu::PrimaryNetwork(config, area, std::move(pu_positions));
  }

  Aabb area;
  sim::Simulator simulator;
  pu::PrimaryNetwork primary;
  CollectionMac mac;
};

MacConfig BasicConfig() {
  MacConfig config;
  config.pcr = 30.0;
  config.su_power = 10.0;
  config.eta_s = SirThreshold::FromDb(8.0);
  config.audit_stride = 0;
  config.max_sim_time = 60 * sim::kSecond;
  return config;
}

TEST(CollectionMacTest, SingleHopDeliversWithoutPus) {
  // One SU next to the sink, no PUs: delivery within a couple of slots.
  Harness h({{50, 50}, {55, 50}}, {0, 0}, {}, 0.0, BasicConfig());
  h.mac.StartSnapshotCollection();
  h.simulator.Run();
  EXPECT_TRUE(h.mac.finished());
  EXPECT_EQ(h.mac.stats().delivered, 1);
  EXPECT_EQ(h.mac.stats().outcomes[0], 1);  // one success, first try
  EXPECT_EQ(h.mac.stats().attempts, 1);
  EXPECT_LE(h.mac.stats().finish_time, 2 * sim::kMillisecond);
  EXPECT_GE(h.mac.delivery_time()[1], 0);
}

TEST(CollectionMacTest, ChainRelaysAllPackets) {
  // 0 <- 1 <- 2 <- 3: three packets, each relayed hop by hop.
  Harness h({{10, 50}, {18, 50}, {26, 50}, {34, 50}}, {0, 0, 1, 2}, {}, 0.0,
            BasicConfig());
  h.mac.StartSnapshotCollection();
  h.simulator.Run();
  EXPECT_TRUE(h.mac.finished());
  EXPECT_EQ(h.mac.stats().delivered, 3);
  // 3's packet travels 3 hops, 2's 2, 1's 1 = 6 successful transmissions.
  EXPECT_EQ(h.mac.stats().outcomes[0], 6);
  EXPECT_EQ(h.mac.stats().delivered_hops_total, 6);
}

TEST(CollectionMacTest, SelectedProducersOnly) {
  Harness h({{10, 50}, {18, 50}, {26, 50}, {34, 50}}, {0, 0, 1, 2}, {}, 0.0,
            BasicConfig());
  h.mac.StartCollection({3});
  h.simulator.Run();
  EXPECT_TRUE(h.mac.finished());
  EXPECT_EQ(h.mac.expected_packets(), 1);
  EXPECT_EQ(h.mac.stats().delivered, 1);
  EXPECT_LT(h.mac.delivery_time()[1], 0) << "node 1 produced nothing";
  EXPECT_GE(h.mac.delivery_time()[3], 0);
}

TEST(CollectionMacTest, NeighborsNeverTransmitConcurrently) {
  // Five SUs all within one PCR: carrier sensing must serialize them.
  std::vector<Vec2> sus{{50, 50}, {52, 50}, {54, 50}, {50, 52}, {52, 52}, {54, 52}};
  Harness h(sus, {0, 0, 0, 0, 0, 0}, {}, 0.0, BasicConfig());
  std::vector<std::pair<sim::TimeNs, sim::TimeNs>> intervals;
  h.mac.AddTxObserver([&](const TxEvent& event) {
    intervals.emplace_back(event.start, event.end);
  });
  h.mac.StartSnapshotCollection();
  h.simulator.Run();
  EXPECT_TRUE(h.mac.finished());
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    for (std::size_t j = i + 1; j < intervals.size(); ++j) {
      const bool overlap = intervals[i].first < intervals[j].second &&
                           intervals[j].first < intervals[i].second;
      ASSERT_FALSE(overlap) << "transmissions " << i << " and " << j << " overlap";
    }
  }
}

TEST(CollectionMacTest, BlockedByAlwaysActivePu) {
  // A PU with p_t = 1 sits inside the SU's PCR: no opportunity ever
  // appears and the run times out undelivered.
  MacConfig config = BasicConfig();
  config.max_sim_time = 50 * sim::kMillisecond;
  Harness h({{50, 50}, {55, 50}}, {0, 0}, {{60, 50}}, 1.0, config);
  h.mac.StartSnapshotCollection();
  h.simulator.Run();
  EXPECT_FALSE(h.mac.finished());
  EXPECT_TRUE(h.mac.stats().timed_out);
  EXPECT_EQ(h.mac.stats().delivered, 0);
  EXPECT_EQ(h.mac.stats().attempts, 0);
  EXPECT_EQ(h.mac.stats().slot_checks_free, 0);
}

TEST(CollectionMacTest, PuOutsidePcrDoesNotBlock) {
  MacConfig config = BasicConfig();
  // PU at distance 40 > PCR 30 from the transmitter: sensing ignores it.
  Harness h({{50, 50}, {55, 50}}, {0, 0}, {{95, 50}}, 1.0, config);
  h.mac.StartSnapshotCollection();
  h.simulator.Run();
  EXPECT_TRUE(h.mac.finished());
}

TEST(CollectionMacTest, SpectrumHandoffOnPuReturn) {
  // tx_duration spanning a whole slot guarantees every transmission crosses
  // a boundary; with p_t = 0.8 the PU comes back mid-flight with high
  // probability and the SU must abort (spectrum handoff) before eventually
  // finishing. Ten packets make at least one handoff overwhelmingly likely.
  MacConfig config = BasicConfig();
  config.tx_duration = config.slot;  // forces boundary crossing
  config.slot_aware_defer = false;
  config.max_sim_time = 120 * sim::kSecond;
  Harness h({{50, 50}, {55, 50}}, {0, 0}, {{60, 50}}, 0.8, config);
  h.mac.StartCollection(std::vector<NodeId>(10, 1));
  h.simulator.Run();
  EXPECT_TRUE(h.mac.finished());
  EXPECT_GT(h.mac.stats().outcomes[static_cast<int>(TxOutcome::kAbortedPuReturn)], 0)
      << "expected at least one spectrum handoff";
}

TEST(CollectionMacTest, SlotAwareDeferAvoidsAllHandoffs) {
  MacConfig config = BasicConfig();  // defer on, tx fits in slot
  config.max_sim_time = 30 * sim::kSecond;
  Harness h({{50, 50}, {55, 50}}, {0, 0}, {{60, 50}}, 0.5, config);
  h.mac.StartSnapshotCollection();
  h.simulator.Run();
  EXPECT_TRUE(h.mac.finished());
  EXPECT_EQ(h.mac.stats().outcomes[static_cast<int>(TxOutcome::kAbortedPuReturn)], 0);
}

TEST(CollectionMacTest, MeasuredOpportunityTracksPuActivity) {
  // Single contender with exactly one PU in range at p_t = 0.3: over many
  // packets, the free fraction it observes at slot boundaries while
  // contending should track 1 − p_t = 0.7 (Lemma 7 with one PU).
  MacConfig config = BasicConfig();
  config.max_sim_time = 60 * sim::kSecond;
  std::vector<Vec2> sus{{50, 50}, {55, 50}};
  Harness h(sus, {0, 0}, {{60, 50}}, 0.3, config);
  h.mac.StartCollection(std::vector<NodeId>(400, 1));
  h.simulator.Run();
  EXPECT_TRUE(h.mac.finished());
  const auto& stats = h.mac.stats();
  ASSERT_GT(stats.slot_checks_total, 50);
  EXPECT_NEAR(stats.measured_spectrum_opportunity(), 0.7, 0.15);
}

TEST(CollectionMacTest, DeterministicAcrossRuns) {
  auto run = [] {
    MacConfig config = BasicConfig();
    std::vector<Vec2> sus;
    std::vector<NodeId> next_hop;
    for (int i = 0; i < 12; ++i) {
      sus.push_back({10.0 + 7.0 * i, 50.0});
      next_hop.push_back(i == 0 ? 0 : i - 1);
    }
    Harness h(sus, next_hop, {{30, 55}, {70, 45}}, 0.3, config);
    h.mac.StartSnapshotCollection();
    h.simulator.Run();
    return std::make_tuple(h.mac.stats().finish_time, h.mac.stats().attempts,
                           h.mac.stats().outcomes[0]);
  };
  EXPECT_EQ(run(), run());
}

TEST(CollectionMacTest, RejectsBrokenNextHopTables) {
  const std::vector<Vec2> sus{{50, 50}, {55, 50}, {60, 50}};
  // Self-loop.
  EXPECT_THROW(Harness({{50, 50}, {55, 50}}, {0, 1}, {}, 0.0, BasicConfig()),
               ContractViolation);
  // Cycle 1 <-> 2.
  EXPECT_THROW(Harness(sus, {0, 2, 1}, {}, 0.0, BasicConfig()), ContractViolation);
}

// Every MacConfig field is validated at construction with a message naming
// the offending field and value, so a bad sweep axis fails at the source
// instead of corrupting a run. One test per rejected parameter.
std::string RejectionMessage(const MacConfig& config) {
  try {
    Harness h({{50, 50}, {55, 50}}, {0, 0}, {}, 0.0, config);
  } catch (const ContractViolation& violation) {
    return violation.what();
  }
  ADD_FAILURE() << "constructor accepted an invalid MacConfig";
  return {};
}

TEST(MacConfigValidationTest, RejectsUnsetPcr) {
  MacConfig config = BasicConfig();
  config.pcr = 0.0;
  EXPECT_NE(RejectionMessage(config).find("pcr="), std::string::npos);
}

TEST(MacConfigValidationTest, RejectsNonPositiveSuPower) {
  MacConfig config = BasicConfig();
  config.su_power = -1.0;
  EXPECT_NE(RejectionMessage(config).find("su_power="), std::string::npos);
}

TEST(MacConfigValidationTest, RejectsNonPositiveAlpha) {
  MacConfig config = BasicConfig();
  config.alpha = 0.0;
  EXPECT_NE(RejectionMessage(config).find("alpha="), std::string::npos);
}

TEST(MacConfigValidationTest, RejectsNonPositiveSlot) {
  MacConfig config = BasicConfig();
  config.slot = 0;
  EXPECT_NE(RejectionMessage(config).find("slot="), std::string::npos);
}

TEST(MacConfigValidationTest, RejectsContentionWindowOutsideSlot) {
  MacConfig config = BasicConfig();
  config.contention_window = 0;
  EXPECT_NE(RejectionMessage(config).find("contention_window="), std::string::npos);
  config = BasicConfig();
  config.contention_window = config.slot + 1;
  EXPECT_NE(RejectionMessage(config).find("contention_window="), std::string::npos);
}

TEST(MacConfigValidationTest, RejectsNonPositiveTxDuration) {
  MacConfig config = BasicConfig();
  config.tx_duration = 0;
  EXPECT_NE(RejectionMessage(config).find("tx_duration="), std::string::npos);
}

TEST(MacConfigValidationTest, RejectsFalseAlarmOutsideUnitInterval) {
  MacConfig config = BasicConfig();
  config.sensing_false_alarm = 1.5;
  EXPECT_NE(RejectionMessage(config).find("sensing_false_alarm="),
            std::string::npos);
}

TEST(MacConfigValidationTest, RejectsMissedDetectionOutsideUnitInterval) {
  MacConfig config = BasicConfig();
  config.sensing_missed_detection = -0.2;
  EXPECT_NE(RejectionMessage(config).find("sensing_missed_detection="),
            std::string::npos);
}

TEST(MacConfigValidationTest, RejectsNegativeSensingLatency) {
  MacConfig config = BasicConfig();
  config.sensing_latency = -1;
  EXPECT_NE(RejectionMessage(config).find("sensing_latency="), std::string::npos);
}

TEST(MacConfigValidationTest, RejectsNegativeBackoffGranularity) {
  MacConfig config = BasicConfig();
  config.backoff_granularity = -5;
  EXPECT_NE(RejectionMessage(config).find("backoff_granularity="),
            std::string::npos);
}

TEST(MacConfigValidationTest, RejectsNegativeDeadHopRetxBudget) {
  MacConfig config = BasicConfig();
  config.dead_hop_retx_budget = -1;
  EXPECT_NE(RejectionMessage(config).find("dead_hop_retx_budget="),
            std::string::npos);
}

TEST(CollectionMacTest, SinkDoesNotProduce) {
  Harness h({{50, 50}, {55, 50}}, {0, 0}, {}, 0.0, BasicConfig());
  EXPECT_THROW(h.mac.StartCollection({0}), ContractViolation);
}

TEST(CollectionMacTest, PacketHopCountsAccumulate) {
  Harness h({{10, 50}, {18, 50}, {26, 50}, {34, 50}}, {0, 0, 1, 2}, {}, 0.0,
            BasicConfig());
  std::vector<std::int32_t> delivered_hops;
  h.mac.AddTxObserver([&](const TxEvent& event) {
    if (event.outcome == TxOutcome::kSuccess && event.receiver == 0) {
      delivered_hops.push_back(event.packet.hops);
    }
  });
  h.mac.StartSnapshotCollection();
  h.simulator.Run();
  // Hop counts recorded at the last hop: origin 1 arrives with 0 prior
  // hops, origin 2 with 1, origin 3 with 2 (incremented after delivery).
  std::sort(delivered_hops.begin(), delivered_hops.end());
  EXPECT_EQ(delivered_hops, (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(CollectionMacTest, FarApartCellsTransmitConcurrently) {
  // Two independent pairs far beyond the PCR: spatial reuse must allow
  // overlapping transmissions.
  std::vector<Vec2> sus{{10, 10}, {15, 10}, {90, 90}, {85, 90}};
  MacConfig config = BasicConfig();
  config.pcr = 20.0;
  Harness h(sus, {0, 0, 0, 2}, {}, 0.0, config);
  // Route: node 1 -> sink, node 3 -> node 2 -> sink. Node 3 and node 1 are
  // ~113 apart: they can air simultaneously.
  bool overlap_seen = false;
  std::vector<std::pair<sim::TimeNs, sim::TimeNs>> open;
  h.mac.AddTxObserver([&](const TxEvent& event) {
    for (const auto& other : open) {
      if (event.start < other.second && other.first < event.end) overlap_seen = true;
    }
    open.emplace_back(event.start, event.end);
  });
  h.mac.StartSnapshotCollection();
  h.simulator.Run();
  EXPECT_TRUE(h.mac.finished());
  EXPECT_TRUE(overlap_seen) << "no spatial reuse observed";
}

}  // namespace
}  // namespace crn::mac
