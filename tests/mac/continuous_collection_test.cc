// Tests for continuous (multi-snapshot) data collection.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/collection.h"
#include "core/scenario.h"
#include "mac/collection_mac.h"
#include "sim/simulator.h"

namespace crn::mac {
namespace {

using geom::Aabb;
using geom::Vec2;

struct Rig {
  explicit Rig(MacConfig config, std::uint64_t seed = 3)
      : area(Aabb::Square(100.0)),
        primary(MakePuConfig(config), area, std::vector<Vec2>{}),
        mac(simulator, primary, {{50, 50}, {56, 50}, {62, 50}}, area, 0,
            {0, 0, 1}, config, Rng(seed)) {}

  static pu::PrimaryConfig MakePuConfig(const MacConfig& mac_config) {
    pu::PrimaryConfig config;
    config.count = 0;
    config.activity = 0.0;
    config.slot = mac_config.slot;
    return config;
  }

  Aabb area;
  sim::Simulator simulator;
  pu::PrimaryNetwork primary;
  CollectionMac mac;
};

MacConfig Config() {
  MacConfig config;
  config.pcr = 30.0;
  config.audit_stride = 0;
  config.max_sim_time = 120 * sim::kSecond;
  return config;
}

TEST(ContinuousCollectionTest, AllSnapshotsDelivered) {
  Rig rig(Config());
  rig.mac.StartContinuousCollection({1, 2}, 20 * sim::kMillisecond, 5);
  rig.simulator.Run();
  EXPECT_TRUE(rig.mac.finished());
  EXPECT_EQ(rig.mac.expected_packets(), 10);
  EXPECT_EQ(rig.mac.stats().delivered, 10);
}

TEST(ContinuousCollectionTest, SnapshotTimesAreOrderedAndComplete) {
  Rig rig(Config());
  const sim::TimeNs interval = 25 * sim::kMillisecond;
  rig.mac.StartContinuousCollection({1, 2}, interval, 4);
  rig.simulator.Run();
  ASSERT_TRUE(rig.mac.finished());
  const auto& created = rig.mac.snapshot_created_time();
  const auto& finished = rig.mac.snapshot_finish_time();
  ASSERT_EQ(created.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(created[k], static_cast<sim::TimeNs>(k) * interval);
    EXPECT_GT(finished[k], created[k]) << "snapshot " << k;
  }
}

TEST(ContinuousCollectionTest, SingleSnapshotIsTheClassicWorkload) {
  Rig a(Config());
  a.mac.StartSnapshotCollection();
  a.simulator.Run();
  Rig b(Config());
  b.mac.StartContinuousCollection({1, 2}, sim::kMillisecond, 1);
  b.simulator.Run();
  EXPECT_EQ(a.mac.stats().finish_time, b.mac.stats().finish_time);
  EXPECT_EQ(a.mac.stats().attempts, b.mac.stats().attempts);
}

TEST(ContinuousCollectionTest, RejectsBadArguments) {
  Rig rig(Config());
  EXPECT_THROW(rig.mac.StartContinuousCollection({}, sim::kMillisecond, 1),
               ContractViolation);
  EXPECT_THROW(rig.mac.StartContinuousCollection({1}, 0, 1), ContractViolation);
  EXPECT_THROW(rig.mac.StartContinuousCollection({1}, sim::kMillisecond, 0),
               ContractViolation);
  EXPECT_THROW(rig.mac.StartContinuousCollection({0}, sim::kMillisecond, 1),
               ContractViolation);
}

TEST(ContinuousCollectionTest, BacklogCarriesAcrossSnapshots) {
  // Tiny interval: later snapshots arrive while earlier ones still drain;
  // everything must still be delivered exactly once.
  Rig rig(Config());
  rig.mac.StartContinuousCollection({1, 2}, 2 * sim::kMillisecond, 10);
  rig.simulator.Run();
  EXPECT_TRUE(rig.mac.finished());
  EXPECT_EQ(rig.mac.stats().delivered, 20);
}

TEST(RunAddcContinuousTest, SustainableAtGenerousInterval) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.05);
  config.seed = 21;
  config.pu_activity = 0.1;
  const core::Scenario scenario(config, 0);
  const core::CollectionResult single = core::RunAddc(scenario);
  ASSERT_TRUE(single.completed);
  const auto interval =
      static_cast<sim::TimeNs>(sim::FromMilliseconds(single.delay_ms * 3.0));
  const core::ContinuousResult result =
      core::RunAddcContinuous(scenario, interval, 4);
  EXPECT_TRUE(result.aggregate.completed);
  EXPECT_TRUE(result.sustainable);
  EXPECT_EQ(result.snapshot_delay_ms.size(), 4u);
  EXPECT_GT(result.mean_snapshot_delay_ms, 0.0);
}

TEST(RunAddcContinuousTest, OverloadShowsPositiveDrift) {
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(0.05);
  config.seed = 22;
  config.pu_activity = 0.1;
  const core::Scenario scenario(config, 0);
  const core::CollectionResult single = core::RunAddc(scenario);
  ASSERT_TRUE(single.completed);
  // Offer 5x the single-snapshot rate: the backlog must grow.
  const auto interval =
      static_cast<sim::TimeNs>(sim::FromMilliseconds(single.delay_ms / 5.0));
  const core::ContinuousResult result =
      core::RunAddcContinuous(scenario, interval, 6);
  ASSERT_TRUE(result.aggregate.completed);
  EXPECT_GT(result.delay_drift_ms_per_round, 0.0);
  EXPECT_FALSE(result.sustainable);
}

}  // namespace
}  // namespace crn::mac
