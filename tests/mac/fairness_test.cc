// Tests for Algorithm 1's fairness rule (line 12) via Theorem 1's property
// 𝔓, exactly as stated in the paper: once a competing SU s_i sets its
// backoff timer, a neighbor s_j inside its PCR transmits at most two
// packets before s_i transmits one.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "mac/collection_mac.h"
#include "sim/simulator.h"

namespace crn::mac {
namespace {

using geom::Aabb;
using geom::Vec2;

struct Trace {
  struct Success {
    NodeId node;
    sim::TimeNs start;
  };
  std::vector<Success> successes;
  // Per node: times at which a fresh backoff timer was set.
  std::vector<std::vector<sim::TimeNs>> contention_starts;
  bool finished = false;
};

// Two SUs beside the sink, each holding `packets` packets, competing for a
// single spectrum cell — the setting of Theorem 1's proof (a stand-alone
// secondary network, no PUs).
Trace RunHeadToHead(bool fairness_wait, std::int32_t packets, std::uint64_t seed) {
  const Aabb area = Aabb::Square(300.0);
  const std::vector<Vec2> positions{{150, 150}, {155, 150}, {150, 155}};
  const std::vector<NodeId> next_hop{0, 0, 0};

  MacConfig config;
  config.pcr = 40.0;
  config.audit_stride = 0;
  config.fairness_wait = fairness_wait;
  config.max_sim_time = 600 * sim::kSecond;

  pu::PrimaryConfig pu_config;
  pu_config.count = 0;  // stand-alone secondary network
  pu_config.activity = 0.0;
  pu_config.slot = config.slot;

  sim::Simulator simulator;
  pu::PrimaryNetwork primary(pu_config, area, std::vector<Vec2>{});
  CollectionMac mac(simulator, primary, positions, area, 0, next_hop, config,
                    Rng(seed));

  Trace trace;
  trace.contention_starts.resize(positions.size());
  mac.AddTxObserver([&](const TxEvent& event) {
    if (event.outcome == TxOutcome::kSuccess) {
      trace.successes.push_back({event.transmitter, event.start});
    }
  });
  mac.AddContentionObserver([&](NodeId node, sim::TimeNs when) {
    trace.contention_starts[node].push_back(when);
  });
  std::vector<NodeId> producers;
  for (std::int32_t i = 0; i < packets; ++i) {
    producers.push_back(1);
    producers.push_back(2);
  }
  mac.StartCollection(producers);
  simulator.Run();
  trace.finished = mac.finished();
  return trace;
}

// Property 𝔓: for every contention window of `victim` (from setting its
// timer to its next successful transmission), the `rival` transmits at most
// two packets inside that window. Returns the worst count observed.
std::int32_t WorstRivalWins(const Trace& trace, NodeId victim, NodeId rival) {
  std::int32_t worst = 0;
  for (sim::TimeNs timer_set : trace.contention_starts[victim]) {
    // Victim's next success at or after timer_set.
    sim::TimeNs victim_next = -1;
    for (const auto& s : trace.successes) {
      if (s.node == victim && s.start >= timer_set) {
        victim_next = s.start;
        break;
      }
    }
    if (victim_next < 0) continue;  // drained; no competition window
    std::int32_t rival_wins = 0;
    for (const auto& s : trace.successes) {
      if (s.node == rival && s.start >= timer_set && s.start < victim_next) {
        ++rival_wins;
      }
    }
    worst = std::max(worst, rival_wins);
  }
  return worst;
}

class FairnessPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairnessPropertyTest, Theorem1AtMostTwoRivalPackets) {
  const Trace trace = RunHeadToHead(/*fairness_wait=*/true, /*packets=*/40,
                                    GetParam());
  ASSERT_TRUE(trace.finished);
  ASSERT_EQ(trace.successes.size(), 80u);
  EXPECT_LE(WorstRivalWins(trace, 1, 2), 2) << "𝔓 violated against node 1";
  EXPECT_LE(WorstRivalWins(trace, 2, 1), 2) << "𝔓 violated against node 2";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(FairnessTest, BothCompetitorsFinish) {
  for (bool fairness : {true, false}) {
    const Trace trace = RunHeadToHead(fairness, 5, 42);
    EXPECT_TRUE(trace.finished) << "fairness=" << fairness;
  }
}

TEST(FairnessTest, GlobalLeadStaysSmall) {
  // A coarser corollary of 𝔓: across the whole balanced phase the success
  // counts never diverge by more than 𝔓's two packets plus one in-flight
  // window on each side.
  const Trace trace = RunHeadToHead(true, 50, 7);
  ASSERT_TRUE(trace.finished);
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t worst = 0;
  for (const auto& s : trace.successes) {
    (s.node == 1 ? a : b) += 1;
    if (a < 50 && b < 50) worst = std::max(worst, std::abs(a - b));
  }
  EXPECT_LE(worst, 4);
}

TEST(FairnessTest, CompetitorsFinishWithinOneWindowOfEachOther) {
  const Trace trace = RunHeadToHead(true, 30, 13);
  ASSERT_TRUE(trace.finished);
  // The last success of each node should be close in sequence: neither
  // node drains long before the other under the fairness rule.
  std::int32_t last_a = -1;
  std::int32_t last_b = -1;
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(trace.successes.size()); ++i) {
    (trace.successes[i].node == 1 ? last_a : last_b) = i;
  }
  EXPECT_LE(std::abs(last_a - last_b), 6);
}

}  // namespace
}  // namespace crn::mac
