// Tests for imperfect spectrum sensing (false alarms / missed detections).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "mac/collection_mac.h"
#include "sim/simulator.h"

namespace crn::mac {
namespace {

using geom::Aabb;
using geom::Vec2;

struct Rig {
  Rig(std::vector<Vec2> pu_positions, double pu_activity, MacConfig config,
      std::uint64_t seed = 5)
      : area(Aabb::Square(100.0)),
        primary(MakePrimary(std::move(pu_positions), pu_activity, config, area)),
        mac(simulator, primary, {{50, 50}, {55, 50}}, area, 0, {0, 0}, config,
            Rng(seed)) {}

  static pu::PrimaryNetwork MakePrimary(std::vector<Vec2> pu_positions,
                                        double activity, const MacConfig& mac_config,
                                        Aabb area) {
    pu::PrimaryConfig config;
    config.count = static_cast<std::int32_t>(pu_positions.size());
    config.activity = activity;
    config.slot = mac_config.slot;
    return pu::PrimaryNetwork(config, area, std::move(pu_positions));
  }

  Aabb area;
  sim::Simulator simulator;
  pu::PrimaryNetwork primary;
  CollectionMac mac;
};

MacConfig Config() {
  MacConfig config;
  config.pcr = 30.0;
  config.audit_stride = 0;
  config.max_sim_time = 30 * sim::kSecond;
  return config;
}

TEST(SensingErrorTest, CertainFalseAlarmBlocksForever) {
  // Spectrum is physically free (no PUs), but the detector always reads
  // busy: the SU never transmits and the run times out.
  MacConfig config = Config();
  config.sensing_false_alarm = 1.0;
  config.max_sim_time = 2 * sim::kSecond;
  Rig rig({}, 0.0, config);
  rig.mac.StartSnapshotCollection();
  rig.simulator.Run();
  EXPECT_FALSE(rig.mac.finished());
  EXPECT_EQ(rig.mac.stats().attempts, 0);
}

TEST(SensingErrorTest, CertainMissedDetectionTransmitsThroughPu) {
  // A PU with p_t = 1 inside the PCR would block forever under perfect
  // sensing (see CollectionMacTest.BlockedByAlwaysActivePu); with the
  // detector blind, the SU transmits anyway. The PU sits far enough from
  // the receiver that the transmission still succeeds — the harm is on the
  // PU side, which is the point.
  MacConfig config = Config();
  config.sensing_missed_detection = 1.0;
  Rig rig({{78, 50}}, 1.0, config);  // inside SU's PCR (23 m), far from sink
  rig.mac.StartSnapshotCollection();
  rig.simulator.Run();
  EXPECT_TRUE(rig.mac.finished());
  EXPECT_GT(rig.mac.stats().attempts, 0);
}

TEST(SensingErrorTest, PartialFalseAlarmOnlySlowsDown) {
  auto run = [](double false_alarm) {
    MacConfig config = Config();
    config.sensing_false_alarm = false_alarm;
    Rig rig({}, 0.0, config, /*seed=*/11);
    std::vector<NodeId> producers(50, 1);
    rig.mac.StartCollection(producers);
    rig.simulator.Run();
    EXPECT_TRUE(rig.mac.finished()) << "fa=" << false_alarm;
    return rig.mac.stats().finish_time;
  };
  // Free spectrum: false alarms stall the countdown at slot granularity.
  EXPECT_GT(run(0.8), run(0.0));
}

TEST(SensingErrorTest, MeasuredOpportunityReflectsFalseAlarms) {
  // With no PUs and fa = 0.5, half of the slot checks read busy.
  MacConfig config = Config();
  config.sensing_false_alarm = 0.5;
  Rig rig({}, 0.0, config, /*seed=*/13);
  std::vector<NodeId> producers(200, 1);
  rig.mac.StartCollection(producers);
  rig.simulator.Run();
  ASSERT_GT(rig.mac.stats().slot_checks_total, 100);
  EXPECT_NEAR(rig.mac.stats().measured_spectrum_opportunity(), 0.5, 0.1);
}

TEST(SensingErrorTest, PerfectSensingUnchangedByDefault) {
  const MacConfig config = Config();
  EXPECT_DOUBLE_EQ(config.sensing_false_alarm, 0.0);
  EXPECT_DOUBLE_EQ(config.sensing_missed_detection, 0.0);
}

}  // namespace
}  // namespace crn::mac
