// Engine-equivalence property test (DESIGN.md §10): a full ADDC run under
// the cached interference-field engine must be bit-identical to the same
// run under the direct reference engine — trace digests, delays, capacity —
// and the dirty-set bookkeeping must account for every evaluation it skips:
//   evals(cached) + reeval_skipped + bound_skips == evals(direct).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/collection.h"
#include "core/scenario.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace crn::core {
namespace {

struct EngineRun {
  CollectionResult result;
  std::uint64_t digest = 0;
  std::int64_t sir_evaluations = 0;
  std::int64_t sir_terms = 0;
  std::int64_t reeval_skipped = 0;
  std::int64_t bound_skips = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
};

EngineRun RunEngine(ScenarioConfig config, bool direct,
                    const RunOptions& base_options) {
  config.direct_sir_engine = direct;
  const Scenario scenario(config, 0);
  obs::MetricsRegistry metrics;
  AuditReport report;
  RunOptions options = base_options;
  options.audit_report = &report;
  options.metrics = &metrics;
  EngineRun run;
  run.result = RunAddc(scenario, options);
  run.digest = report.trace_digest;
  const obs::Labels engine{{"engine", direct ? "direct" : "cached"}};
  const auto counter = [&](const char* name) {
    return metrics.GetCounter(name, engine).value();
  };
  run.sir_evaluations = counter("perf.sir_evaluations");
  run.sir_terms = counter("perf.sir_terms_evaluated");
  run.reeval_skipped = counter("perf.reeval_skipped");
  run.bound_skips = counter("perf.bound_skips");
  run.cache_hits = counter("perf.gain_cache_hits");
  run.cache_misses = counter("perf.gain_cache_misses");
  return run;
}

void ExpectEnginesEquivalent(const ScenarioConfig& config,
                             const RunOptions& options,
                             const std::string& label) {
  SCOPED_TRACE(label);
  const EngineRun cached = RunEngine(config, /*direct=*/false, options);
  const EngineRun direct = RunEngine(config, /*direct=*/true, options);

  // Bit-identity: same triggers, same floors, same everything.
  ASSERT_NE(cached.digest, 0u);
  EXPECT_EQ(cached.digest, direct.digest);
  EXPECT_EQ(cached.result.delay_ms, direct.result.delay_ms);
  EXPECT_EQ(cached.result.capacity_fraction, direct.result.capacity_fraction);
  EXPECT_EQ(cached.result.mac.attempts, direct.result.mac.attempts);
  EXPECT_EQ(cached.result.mac.delivered, direct.result.mac.delivered);

  // Work accounting: every direct-engine evaluation is either performed or
  // explicitly skipped (epoch skip or bound skip) by the cached engine.
  EXPECT_EQ(cached.sir_evaluations + cached.reeval_skipped + cached.bound_skips,
            direct.sir_evaluations);
  // The direct reference never touches the cache...
  EXPECT_EQ(direct.cache_hits, 0);
  EXPECT_EQ(direct.cache_misses, 0);
  // ...and the cached engine never computes a pair's gain twice.
  EXPECT_EQ(cached.sir_terms, cached.cache_misses);
  EXPECT_LE(cached.sir_terms, direct.sir_terms);
}

ScenarioConfig SmallConfig() {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.02);
  config.seed = 0xE2E5EED;
  return config;
}

TEST(SirEngineTest, CachedMatchesDirectOnDefaultScenario) {
  ExpectEnginesEquivalent(SmallConfig(), RunOptions{}, "default");
}

TEST(SirEngineTest, CachedMatchesDirectOnGeneralAlpha) {
  // alpha != 4 takes PathLoss's std::pow path; the cache must hold the
  // exact doubles that path produces.
  ScenarioConfig config = SmallConfig();
  config.alpha = 3.5;
  ExpectEnginesEquivalent(config, RunOptions{}, "alpha=3.5");
}

TEST(SirEngineTest, CachedMatchesDirectAcrossPuActivity) {
  for (const double activity : {0.05, 0.7}) {
    ScenarioConfig config = SmallConfig();
    config.pu_activity = activity;
    ExpectEnginesEquivalent(config, RunOptions{},
                            "pu_activity=" + std::to_string(activity));
  }
}

TEST(SirEngineTest, CachedMatchesDirectAcrossSeeds) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    ScenarioConfig config = SmallConfig();
    config.seed = seed;
    ExpectEnginesEquivalent(config, RunOptions{},
                            "seed=" + std::to_string(seed));
  }
}

TEST(SirEngineTest, CachedMatchesDirectUnderConventionalMac) {
  // Conventional-MAC emulation lets transmissions cross slot boundaries,
  // which is the regime where the change-epoch skip actually fires (under
  // ADDC's slot-aware defer the active set empties at every boundary).
  ScenarioConfig config = SmallConfig();
  RunOptions options;
  options.backoff_granularity = config.baseline_backoff_granularity;
  options.sensing_latency = config.baseline_sensing_latency;
  options.slot_aware_defer = false;
  ExpectEnginesEquivalent(config, options, "conventional-mac");
}

TEST(SirEngineTest, CachedEngineDoesStrictlyLessGeometryWork) {
  // The perf claim at test scale: the cached engine computes each pair's
  // gain once, so its geometry-term count must fall well below the direct
  // engine's total on any nontrivial run.
  const EngineRun cached = RunEngine(SmallConfig(), false, RunOptions{});
  const EngineRun direct = RunEngine(SmallConfig(), true, RunOptions{});
  ASSERT_GT(direct.sir_terms, 0);
  EXPECT_LT(cached.sir_terms, direct.sir_terms);
  EXPECT_GT(cached.cache_hits, 0);
}

}  // namespace
}  // namespace crn::core
