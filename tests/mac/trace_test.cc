// Tests for the transmission trace recorder.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "mac/collection_mac.h"
#include "mac/trace.h"
#include "sim/simulator.h"

namespace crn::mac {
namespace {

using geom::Aabb;
using geom::Vec2;

struct Rig {
  Rig()
      : area(Aabb::Square(100.0)),
        primary(PuConfig(), area, std::vector<Vec2>{}),
        mac(simulator, primary, {{10, 50}, {18, 50}, {26, 50}}, area, 0, {0, 0, 1},
            Config(), Rng(17)) {}

  static MacConfig Config() {
    MacConfig config;
    config.pcr = 30.0;
    config.audit_stride = 0;
    return config;
  }
  static pu::PrimaryConfig PuConfig() {
    pu::PrimaryConfig config;
    config.count = 0;
    config.activity = 0.0;
    return config;
  }

  Aabb area;
  sim::Simulator simulator;
  pu::PrimaryNetwork primary;
  CollectionMac mac;
};

TEST(TraceRecorderTest, RecordsEveryAttempt) {
  Rig rig;
  TraceRecorder recorder;
  recorder.Attach(rig.mac);
  rig.mac.StartSnapshotCollection();
  rig.simulator.Run();
  ASSERT_TRUE(rig.mac.finished());
  EXPECT_EQ(static_cast<std::int64_t>(recorder.events().size()),
            rig.mac.stats().attempts);
  // Chain 0 <- 1 <- 2: three successful hops expected, no failures (quiet
  // spectrum).
  EXPECT_EQ(recorder.events().size(), 3u);
}

TEST(TraceRecorderTest, CsvHasHeaderAndOneRowPerEvent) {
  Rig rig;
  TraceRecorder recorder;
  recorder.Attach(rig.mac);
  rig.mac.StartSnapshotCollection();
  rig.simulator.Run();
  std::ostringstream out;
  recorder.WriteCsv(out);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, recorder.events().size() + 1);
  EXPECT_EQ(text.rfind("start_ms,end_ms,transmitter,receiver,outcome,origin,"
                       "snapshot,hops,min_sir\n", 0), 0u);
  EXPECT_NE(text.find("success"), std::string::npos);
  EXPECT_NE(text.find("inf"), std::string::npos);  // unopposed receptions
}

TEST(TraceRecorderTest, SummaryCountsAndAirtime) {
  Rig rig;
  TraceRecorder recorder;
  recorder.Attach(rig.mac);
  rig.mac.StartSnapshotCollection();
  rig.simulator.Run();
  const TraceRecorder::Summary summary = recorder.Summarize();
  EXPECT_EQ(summary.attempts, 3);
  EXPECT_EQ(summary.per_outcome[static_cast<int>(TxOutcome::kSuccess)], 3);
  EXPECT_DOUBLE_EQ(
      summary.per_outcome_fraction[static_cast<int>(TxOutcome::kSuccess)], 1.0);
  EXPECT_DOUBLE_EQ(summary.useful_airtime_fraction, 1.0);
  EXPECT_GT(summary.last_end, summary.first_start);
}

TEST(TraceRecorderTest, SummaryOutcomeFractionsSumToOne) {
  TraceRecorder recorder;
  TxEvent event;
  event.start = 100;
  event.end = 200;
  event.outcome = TxOutcome::kSuccess;
  recorder.Record(event);
  event.outcome = TxOutcome::kReceiverBusy;
  recorder.Record(event);
  event.outcome = TxOutcome::kSirFailure;
  recorder.Record(event);
  event.outcome = TxOutcome::kSuccess;
  recorder.Record(event);
  const TraceRecorder::Summary summary = recorder.Summarize();
  EXPECT_EQ(summary.attempts, 4);
  EXPECT_DOUBLE_EQ(
      summary.per_outcome_fraction[static_cast<int>(TxOutcome::kSuccess)], 0.5);
  double total = 0.0;
  for (double fraction : summary.per_outcome_fraction) total += fraction;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(TraceRecorderTest, SummaryDegenerateSingleTimestampIsFinite) {
  // Every attempt shares one instant: timestamps must still be reported and
  // the airtime fraction must be 0, not NaN (total airtime is zero).
  TraceRecorder recorder;
  TxEvent event;
  event.start = 7'000;
  event.end = 7'000;
  event.outcome = TxOutcome::kSuccess;
  recorder.Record(event);
  event.outcome = TxOutcome::kReceiverBusy;
  recorder.Record(event);
  const TraceRecorder::Summary summary = recorder.Summarize();
  EXPECT_EQ(summary.attempts, 2);
  EXPECT_EQ(summary.first_start, 7'000);
  EXPECT_EQ(summary.last_end, 7'000);
  EXPECT_FALSE(std::isnan(summary.useful_airtime_fraction));
  EXPECT_DOUBLE_EQ(summary.useful_airtime_fraction, 0.0);
  EXPECT_DOUBLE_EQ(
      summary.per_outcome_fraction[static_cast<int>(TxOutcome::kSuccess)], 0.5);
}

TEST(TraceRecorderTest, EmptyTrace) {
  TraceRecorder recorder;
  const TraceRecorder::Summary summary = recorder.Summarize();
  EXPECT_EQ(summary.attempts, 0);
  EXPECT_DOUBLE_EQ(summary.useful_airtime_fraction, 0.0);
  std::ostringstream out;
  recorder.WriteCsv(out);
  EXPECT_EQ(out.str(),
            "start_ms,end_ms,transmitter,receiver,outcome,origin,snapshot,hops,"
            "min_sir\n");
}

}  // namespace
}  // namespace crn::mac
