// Tests for the Chrome trace writer's metadata normalization: merged event
// streams may each announce the same threads, and the rendered bytes must
// not depend on which producer's vector was concatenated first.
#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace crn::obs {
namespace {

ChromeTraceEvent Meta(std::int64_t pid, std::int64_t tid,
                      const std::string& value) {
  ChromeTraceEvent event;
  event.name = "thread_name";
  event.category = "__metadata";
  event.phase = ChromeTraceEvent::Phase::kMetadata;
  event.pid = pid;
  event.tid = tid;
  event.args.emplace_back("name", value);
  return event;
}

ChromeTraceEvent Slice(const std::string& name, double ts_us, std::int64_t pid,
                       std::int64_t tid) {
  ChromeTraceEvent event;
  event.name = name;
  event.phase = ChromeTraceEvent::Phase::kComplete;
  event.ts_us = ts_us;
  event.dur_us = 1.0;
  event.pid = pid;
  event.tid = tid;
  return event;
}

std::string Render(const std::vector<ChromeTraceEvent>& events) {
  std::ostringstream out;
  WriteChromeTrace(events, out);
  return out.str();
}

std::size_t CountOccurrences(const std::string& text, const std::string& what) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(what); pos != std::string::npos;
       pos = text.find(what, pos + what.size())) {
    ++count;
  }
  return count;
}

TEST(ChromeTraceTest, DuplicateMetadataCollapsesToOnePerPidTidName) {
  const std::vector<ChromeTraceEvent> events = {
      Meta(2, 0, "main"), Slice("a", 5.0, 2, 0),
      Meta(2, 0, "main"),  // second producer announces the same thread
      Slice("b", 7.0, 2, 0)};
  const std::string rendered = Render(events);
  EXPECT_EQ(CountOccurrences(rendered, "\"thread_name\""), 1u);
  EXPECT_EQ(CountOccurrences(rendered, "\"ph\":\"M\""), 1u);
}

TEST(ChromeTraceTest, FirstMetadataEmissionWinsOnConflict) {
  const std::vector<ChromeTraceEvent> events = {
      Meta(2, 1, "worker-1"), Meta(2, 1, "renamed"), Slice("a", 1.0, 2, 1)};
  const std::string rendered = Render(events);
  EXPECT_NE(rendered.find("worker-1"), std::string::npos);
  EXPECT_EQ(rendered.find("renamed"), std::string::npos);
}

TEST(ChromeTraceTest, RenderedBytesStableAcrossMergeOrder) {
  // Two producers' vectors concatenated both ways: metadata arrives in a
  // different order and duplicated, timeline events keep distinct ts. The
  // writer must normalize both concatenations to identical bytes.
  const std::vector<ChromeTraceEvent> producer_a = {
      Meta(2, 0, "main"), Meta(2, 1, "worker-1"), Slice("a", 5.0, 2, 0),
      Slice("b", 9.0, 2, 1)};
  const std::vector<ChromeTraceEvent> producer_b = {
      Meta(2, 1, "worker-1"), Meta(2, 0, "main"), Slice("c", 7.0, 2, 1)};

  std::vector<ChromeTraceEvent> ab = producer_a;
  ab.insert(ab.end(), producer_b.begin(), producer_b.end());
  std::vector<ChromeTraceEvent> ba = producer_b;
  ba.insert(ba.end(), producer_a.begin(), producer_a.end());

  EXPECT_EQ(Render(ab), Render(ba));
}

TEST(ChromeTraceTest, MetadataOrderedByPidTidNameWithSortedArgs) {
  ChromeTraceEvent multi_arg = Meta(1, 0, "zeta");
  multi_arg.args.emplace_back("alpha", "first");  // deliberately unsorted
  const std::vector<ChromeTraceEvent> events = {
      Meta(3, 0, "late-pid"), Meta(1, 5, "high-tid"), multi_arg,
      Slice("a", 1.0, 1, 0)};
  const std::string rendered = Render(events);
  // (1,0) < (1,5) < (3,0).
  const std::size_t first = rendered.find("zeta");
  const std::size_t second = rendered.find("high-tid");
  const std::size_t third = rendered.find("late-pid");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(third, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
  // Args of the normalized metadata render sorted by key: alpha before name.
  const std::size_t alpha = rendered.find("\"alpha\"");
  const std::size_t name_arg = rendered.find("\"name\":\"zeta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(name_arg, std::string::npos);
  EXPECT_LT(alpha, name_arg);
}

TEST(ChromeTraceTest, TimelineStaysMonotoneAfterMetadata) {
  const std::vector<ChromeTraceEvent> events = {
      Slice("late", 9.0, 2, 0), Meta(2, 0, "main"), Slice("early", 1.0, 2, 0)};
  const std::string rendered = Render(events);
  EXPECT_LT(rendered.find("\"ph\":\"M\""), rendered.find("early"));
  EXPECT_LT(rendered.find("early"), rendered.find("late"));
}

}  // namespace
}  // namespace crn::obs
